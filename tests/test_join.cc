// Tests for the compressed-domain equi-join (query/join.h): directed
// cases pinning each plan shape (fk-right / fk-left / general), a
// randomized property sweep against the row-at-a-time HashJoinRowVec
// oracle across schemas and selectivities, and the engine-level ORDER
// BY interaction.

#include "query/join.h"

#include <algorithm>

#include "common/random.h"
#include "gtest/gtest.h"
#include "query/column_executor.h"
#include "query/query_engine.h"
#include "test_util.h"

namespace cods {
namespace {

using ::cods::testing::MakeTable;
using ::cods::testing::RowToString;

bool RowLessLocal(const Row& a, const Row& b) {
  for (size_t i = 0; i < a.size() && i < b.size(); ++i) {
    if (a[i] < b[i]) return true;
    if (b[i] < a[i]) return false;
  }
  return a.size() < b.size();
}

// Multiset comparison of the compressed join against the row oracle.
void ExpectMatchesOracle(const Table& joined, const std::vector<Row>& left,
                         const std::vector<Row>& right, size_t lj, size_t rj,
                         const std::string& label) {
  std::vector<Row> expected = HashJoinRowVec(left, right, {lj}, {rj});
  std::vector<Row> actual = joined.Materialize();
  ASSERT_EQ(actual.size(), expected.size()) << label;
  std::sort(expected.begin(), expected.end(), RowLessLocal);
  std::sort(actual.begin(), actual.end(), RowLessLocal);
  for (size_t i = 0; i < expected.size(); ++i) {
    ASSERT_EQ(actual[i], expected[i])
        << label << " row " << i << ": " << RowToString(actual[i]) << " vs "
        << RowToString(expected[i]);
  }
}

Schema LeftSchema() {
  return Schema({{"J", DataType::kInt64, false},
                 {"A", DataType::kInt64, false},
                 {"B", DataType::kString, false}},
                {});
}

Schema RightSchema(std::vector<std::string> key = {}) {
  return Schema({{"J", DataType::kInt64, false},
                 {"C", DataType::kString, false}},
                std::move(key));
}

TEST(CompressedJoin, FkRightShapePreservesLeftRowOrder) {
  auto left = MakeTable("L", LeftSchema(),
                        {{Value(int64_t{2}), Value(int64_t{10}), Value("x")},
                         {Value(int64_t{1}), Value(int64_t{11}), Value("y")},
                         {Value(int64_t{2}), Value(int64_t{12}), Value("z")},
                         {Value(int64_t{9}), Value(int64_t{13}), Value("w")}});
  auto right = MakeTable("R", RightSchema(),
                         {{Value(int64_t{1}), Value("one")},
                          {Value(int64_t{2}), Value("two")},
                          {Value(int64_t{3}), Value("three")}});
  JoinStats stats;
  auto joined =
      CompressedEquiJoin(*left, *right, 0, 0, "J", nullptr, &stats);
  ASSERT_TRUE(joined.ok()) << joined.status().ToString();
  EXPECT_EQ(stats.path, "fk-right");
  EXPECT_EQ(stats.matched_values, 2u);
  EXPECT_TRUE((*joined)->ValidateInvariants().ok());
  // Left row order survives; the unmatched J=9 row is dropped.
  std::vector<Row> rows = (*joined)->Materialize();
  ASSERT_EQ(rows.size(), 3u);
  EXPECT_EQ(rows[0], (Row{Value(int64_t{2}), Value(int64_t{10}), Value("x"),
                          Value("two")}));
  EXPECT_EQ(rows[1], (Row{Value(int64_t{1}), Value(int64_t{11}), Value("y"),
                          Value("one")}));
  EXPECT_EQ(rows[2], (Row{Value(int64_t{2}), Value(int64_t{12}), Value("z"),
                          Value("two")}));
  ExpectMatchesOracle(**joined, left->Materialize(), right->Materialize(),
                      0, 0, "fk-right");
}

TEST(CompressedJoin, FkLeftShapeKeepsLeftColumnOrder) {
  // The LEFT side's join values are unique, the right side repeats
  // them: the mirrored key-FK shape scans the right table, but the
  // output schema still lists left columns first.
  auto left = MakeTable("L", LeftSchema(),
                        {{Value(int64_t{1}), Value(int64_t{10}), Value("x")},
                         {Value(int64_t{2}), Value(int64_t{11}), Value("y")}});
  auto right = MakeTable("R", RightSchema(),
                         {{Value(int64_t{2}), Value("a")},
                          {Value(int64_t{2}), Value("b")},
                          {Value(int64_t{1}), Value("c")},
                          {Value(int64_t{7}), Value("d")}});
  JoinStats stats;
  auto joined =
      CompressedEquiJoin(*left, *right, 0, 0, "J", nullptr, &stats);
  ASSERT_TRUE(joined.ok()) << joined.status().ToString();
  EXPECT_EQ(stats.path, "fk-left");
  ASSERT_EQ((*joined)->num_columns(), 4u);
  EXPECT_EQ((*joined)->schema().column(0).name, "L.J");
  EXPECT_EQ((*joined)->schema().column(3).name, "R.C");
  EXPECT_TRUE((*joined)->ValidateInvariants().ok());
  // Output follows right row order (the scanned side).
  std::vector<Row> rows = (*joined)->Materialize();
  ASSERT_EQ(rows.size(), 3u);
  EXPECT_EQ(rows[0], (Row{Value(int64_t{2}), Value(int64_t{11}), Value("y"),
                          Value("a")}));
  ExpectMatchesOracle(**joined, left->Materialize(), right->Materialize(),
                      0, 0, "fk-left");
}

TEST(CompressedJoin, GeneralShapeClustersByJoinValue) {
  auto left = MakeTable("L", LeftSchema(),
                        {{Value(int64_t{1}), Value(int64_t{10}), Value("x")},
                         {Value(int64_t{2}), Value(int64_t{11}), Value("y")},
                         {Value(int64_t{1}), Value(int64_t{12}), Value("z")}});
  auto right = MakeTable("R", RightSchema(),
                         {{Value(int64_t{1}), Value("a")},
                          {Value(int64_t{1}), Value("b")},
                          {Value(int64_t{2}), Value("c")},
                          {Value(int64_t{2}), Value("d")}});
  JoinStats stats;
  auto joined =
      CompressedEquiJoin(*left, *right, 0, 0, "J", nullptr, &stats);
  ASSERT_TRUE(joined.ok()) << joined.status().ToString();
  EXPECT_EQ(stats.path, "general");
  EXPECT_EQ((*joined)->rows(), 2u * 2u + 1u * 2u);
  EXPECT_TRUE((*joined)->ValidateInvariants().ok());
  ExpectMatchesOracle(**joined, left->Materialize(), right->Materialize(),
                      0, 0, "general");
}

TEST(CompressedJoin, EmptyIntersectionYieldsEmptyTable) {
  auto left = MakeTable("L", LeftSchema(),
                        {{Value(int64_t{1}), Value(int64_t{10}), Value("x")}});
  auto right = MakeTable("R", RightSchema(),
                         {{Value(int64_t{5}), Value("a")}});
  auto joined = CompressedEquiJoin(*left, *right, 0, 0, "J");
  ASSERT_TRUE(joined.ok()) << joined.status().ToString();
  EXPECT_EQ((*joined)->rows(), 0u);
  EXPECT_EQ((*joined)->num_columns(), 4u);
  EXPECT_TRUE((*joined)->ValidateInvariants().ok());
}

TEST(CompressedJoin, TypeMismatchErrors) {
  auto left = MakeTable("L", LeftSchema(),
                        {{Value(int64_t{1}), Value(int64_t{10}), Value("x")}});
  auto right = MakeTable("R", RightSchema(),
                         {{Value(int64_t{1}), Value("a")}});
  // Join the int64 J against the string C.
  auto joined = CompressedEquiJoin(*left, *right, 0, 1, "J");
  ASSERT_FALSE(joined.ok());
  EXPECT_TRUE(joined.status().IsTypeError()) << joined.status().ToString();
}

// The property sweep: random schemas and selectivities, every result
// checked against the row-at-a-time oracle and the column invariants.
TEST(CompressedJoin, PropertySweepMatchesRowOracle) {
  for (uint64_t seed = 0; seed < 24; ++seed) {
    Rng rng(seed * 7919 + 13);
    const int64_t domain = 3 + static_cast<int64_t>(rng.Uniform(0, 40));
    const uint64_t left_rows = 1 + rng.Uniform(0, 120);
    const int shape = static_cast<int>(seed % 3);  // 0 fk-right, 1 fk-left,
                                                   // 2 general
    TableBuilder lb("L", LeftSchema());
    for (uint64_t r = 0; r < left_rows; ++r) {
      int64_t j = shape == 1 ? static_cast<int64_t>(r)  // unique left keys
                             : rng.Uniform(0, domain - 1);
      CODS_CHECK_OK(lb.AppendRow(
          {Value(j), Value(rng.Uniform(0, 9)),
           Value("s" + std::to_string(rng.Uniform(0, 4)))}));
    }
    auto left = lb.Finish().ValueOrDie();
    TableBuilder rb("R", RightSchema());
    if (shape == 0) {
      // Unique right keys covering a random fraction of the domain.
      for (int64_t j = 0; j < domain; ++j) {
        if (rng.Uniform(0, 99) < 60) {
          CODS_CHECK_OK(rb.AppendRow(
              {Value(j), Value("c" + std::to_string(j % 7))}));
        }
      }
    } else {
      const uint64_t right_rows = 1 + rng.Uniform(0, 80);
      for (uint64_t r = 0; r < right_rows; ++r) {
        CODS_CHECK_OK(rb.AppendRow(
            {Value(rng.Uniform(0, domain - 1)),
             Value("c" + std::to_string(rng.Uniform(0, 6)))}));
      }
    }
    auto right = rb.Finish().ValueOrDie();
    JoinStats stats;
    auto joined =
        CompressedEquiJoin(*left, *right, 0, 0, "J", nullptr, &stats);
    ASSERT_TRUE(joined.ok())
        << "seed " << seed << ": " << joined.status().ToString();
    EXPECT_TRUE((*joined)->ValidateInvariants().ok()) << "seed " << seed;
    // The count-only plan agrees with the materialized cardinality.
    EXPECT_EQ(CompressedEquiJoinCount(*left, *right, 0, 0).ValueOrDie(),
              (*joined)->rows())
        << "seed " << seed;
    ExpectMatchesOracle(**joined, left->Materialize(), right->Materialize(),
                        0, 0, "seed " + std::to_string(seed) + " (path " +
                                  stats.path + ")");
    // The engine-level pipeline over the same join: WHERE + ORDER BY +
    // LIMIT agree with sorting/filtering the oracle rows.
    Catalog catalog;
    CODS_CHECK_OK(catalog.AddTable(left));
    CODS_CHECK_OK(catalog.AddTable(right));
    QueryEngine engine(&catalog);
    QueryRequest req = QueryRequest::Select(
        "L", {},
        Expr::Compare("A", CompareOp::kGe, Value(int64_t{3})), "sel");
    req.JoinOn("R", "L.J", "R.J");
    req.OrderBy("A", seed % 2 == 1);
    auto sorted = engine.Execute(req);
    ASSERT_TRUE(sorted.ok())
        << "seed " << seed << ": " << sorted.status().ToString();
    std::vector<Row> oracle =
        HashJoinRowVec(left->Materialize(), right->Materialize(), {0}, {0});
    oracle.erase(std::remove_if(oracle.begin(), oracle.end(),
                                [](const Row& row) {
                                  return row[1] < Value(int64_t{3});
                                }),
                 oracle.end());
    std::vector<Row> got = sorted->table->Materialize();
    ASSERT_EQ(got.size(), oracle.size()) << "seed " << seed;
    // The A-column sequence must be sorted in the requested direction.
    for (size_t i = 1; i < got.size(); ++i) {
      const Value& prev = got[i - 1][1];
      const Value& cur = got[i][1];
      if (seed % 2 == 1) {
        EXPECT_FALSE(prev < cur) << "seed " << seed << " row " << i;
      } else {
        EXPECT_FALSE(cur < prev) << "seed " << seed << " row " << i;
      }
    }
    // And the multisets agree.
    std::sort(oracle.begin(), oracle.end(), RowLessLocal);
    std::sort(got.begin(), got.end(), RowLessLocal);
    EXPECT_EQ(got, oracle) << "seed " << seed;
  }
}

}  // namespace
}  // namespace cods

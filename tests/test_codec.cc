// Tests for the density-adaptive bitmap codec: the representation rule,
// every kernel verified against the WAH oracle across all representation
// pairs (randomized property sweep), serde round trips for v1/v2/v3
// images, and corruption injection — a mutated image must surface as
// Status::Corruption, never as silently wrong data.

#include "bitmap/codec.h"

#include <algorithm>
#include <cstdio>
#include <set>

#include "bitmap/wah_filter.h"
#include "bitmap/wah_ops.h"
#include "common/random.h"
#include "gtest/gtest.h"
#include "storage/serde.h"
#include "test_util.h"

namespace cods {
namespace {

using ::cods::testing::ExpectSameContent;
using ::cods::testing::Figure1TableR;
using ::cods::testing::RandomFdTable;

// Sample exactly `ones` distinct positions in [0, size), so the
// representation each density class maps to is guaranteed, not merely
// likely.
std::vector<uint32_t> SamplePositions(uint64_t size, uint64_t ones,
                                      uint64_t seed) {
  Rng rng(seed);
  std::set<uint32_t> picked;
  while (picked.size() < ones) {
    picked.insert(
        static_cast<uint32_t>(rng.Uniform(0, static_cast<int64_t>(size) - 1)));
  }
  return std::vector<uint32_t>(picked.begin(), picked.end());
}

WahBitmap WahFromU32(const std::vector<uint32_t>& positions, uint64_t size) {
  std::vector<uint64_t> wide(positions.begin(), positions.end());
  return WahBitmap::FromPositions(wide, size);
}

ValueBitmap MakeRandom(uint64_t size, uint64_t ones, uint64_t seed) {
  return ValueBitmap::FromPositions(SamplePositions(size, ones, seed), size);
}

// The density classes the sweep crosses. For size 4096: empty and full
// stay on WAH (homogeneous), 30 ones <= 4096/64 picks the array, 400 is
// the mixed WAH regime, 2000 >= 1024 picks the bitset.
constexpr uint64_t kSweepSize = 4096;
struct DensityClass {
  uint64_t ones;
  BitmapRep rep;
};
const DensityClass kClasses[] = {
    {0, BitmapRep::kWah},     {30, BitmapRep::kArray},
    {400, BitmapRep::kWah},   {2000, BitmapRep::kBitset},
    {4096, BitmapRep::kWah},
};

TEST(ChooseRep, DensityThresholds) {
  // Homogeneous bitmaps stay on WAH regardless of density class.
  EXPECT_EQ(ChooseBitmapRep(0, 1000), BitmapRep::kWah);
  EXPECT_EQ(ChooseBitmapRep(1000, 1000), BitmapRep::kWah);
  EXPECT_EQ(ChooseBitmapRep(0, 0), BitmapRep::kWah);
  // Sparse boundary: ones <= size/64.
  EXPECT_EQ(ChooseBitmapRep(15, 1000), BitmapRep::kArray);
  EXPECT_EQ(ChooseBitmapRep(16, 1024), BitmapRep::kArray);
  EXPECT_EQ(ChooseBitmapRep(17, 1024), BitmapRep::kWah);
  // Dense boundary: ones >= (size+3)/4.
  EXPECT_EQ(ChooseBitmapRep(255, 1024), BitmapRep::kWah);
  EXPECT_EQ(ChooseBitmapRep(256, 1024), BitmapRep::kBitset);
  // Positions are uint32_t: huge bitmaps never choose the array.
  EXPECT_EQ(ChooseBitmapRep(2, (uint64_t{1} << 33)), BitmapRep::kWah);
}

TEST(ValueBitmap, ConstructorsAgreeAndAreCanonical) {
  for (const DensityClass& c : kClasses) {
    std::vector<uint32_t> positions = SamplePositions(kSweepSize, c.ones, 7);
    ValueBitmap from_positions =
        ValueBitmap::FromPositions(positions, kSweepSize);
    ValueBitmap from_wah =
        ValueBitmap::FromWah(WahFromU32(positions, kSweepSize));
    std::vector<uint64_t> words((kSweepSize + 63) / 64, 0);
    for (uint32_t p : positions) words[p / 64] |= uint64_t{1} << (p % 64);
    ValueBitmap from_words = ValueBitmap::FromDenseWords(words, kSweepSize);

    EXPECT_EQ(from_positions.rep(), c.rep) << c.ones;
    EXPECT_EQ(from_positions, from_wah) << c.ones;
    EXPECT_EQ(from_positions, from_words) << c.ones;
    EXPECT_EQ(from_positions.CountOnes(), c.ones);
    EXPECT_TRUE(from_positions.Validate(kSweepSize).ok());
    EXPECT_EQ(from_positions.ToWah(), WahFromU32(positions, kSweepSize));
  }
}

TEST(ValueBitmap, PointQueriesMatchOracle) {
  for (const DensityClass& c : kClasses) {
    std::vector<uint32_t> positions = SamplePositions(kSweepSize, c.ones, 11);
    ValueBitmap vb = ValueBitmap::FromPositions(positions, kSweepSize);
    WahBitmap oracle = WahFromU32(positions, kSweepSize);
    EXPECT_EQ(vb.FirstSetBit(), oracle.FirstSetBit());
    EXPECT_EQ(vb.SetPositions(), oracle.SetPositions());
    Rng rng(13);
    for (int i = 0; i < 64; ++i) {
      uint64_t pos = static_cast<uint64_t>(
          rng.Uniform(0, static_cast<int64_t>(kSweepSize) - 1));
      EXPECT_EQ(vb.Get(pos), oracle.Get(pos));
    }
    std::vector<uint64_t> collected;
    vb.ForEachSetBit([&](uint64_t pos) { collected.push_back(pos); });
    EXPECT_EQ(collected, oracle.SetPositions());
  }
}

// The core property sweep: every pairwise kernel against the WAH oracle
// across the full representation cross product, several seeds each.
TEST(CodecKernels, PairwiseSweepVsWahOracle) {
  for (uint64_t seed = 1; seed <= 3; ++seed) {
    for (const DensityClass& ca : kClasses) {
      for (const DensityClass& cb : kClasses) {
        ValueBitmap a = MakeRandom(kSweepSize, ca.ones, seed * 101 + ca.ones);
        ValueBitmap b = MakeRandom(kSweepSize, cb.ones, seed * 977 + cb.ones);
        WahBitmap wa = a.ToWah();
        WahBitmap wb = b.ToWah();
        SCOPED_TRACE(a.ToString() + " x " + b.ToString());

        EXPECT_EQ(CodecAnd(a, b), ValueBitmap::FromWah(WahAnd(wa, wb)));
        EXPECT_EQ(CodecOr(a, b), ValueBitmap::FromWah(WahOr(wa, wb)));
        EXPECT_EQ(CodecNot(a), ValueBitmap::FromWah(WahNot(wa)));
        EXPECT_EQ(CodecAndCount(a, b), WahAndCount(wa, wb));

        // Interchange-form kernels against a WAH selection.
        WahBitmap selection;
        {
          Rng rng(seed * 31 + ca.ones + cb.ones);
          for (uint64_t i = 0; i < kSweepSize; ++i) {
            selection.AppendBit(rng.NextBool(0.2));
          }
        }
        EXPECT_EQ(CodecAndWah(a, selection), WahAnd(wa, selection));
        EXPECT_EQ(CodecAndCountWah(a, selection),
                  WahAndCount(wa, selection));
      }
    }
  }
}

TEST(CodecKernels, OrManyMixedRepsVsOracle) {
  for (uint64_t seed = 1; seed <= 4; ++seed) {
    std::vector<ValueBitmap> vbs;
    for (const DensityClass& c : kClasses) {
      vbs.push_back(MakeRandom(kSweepSize, c.ones, seed * 53 + c.ones));
      vbs.push_back(MakeRandom(kSweepSize, c.ones, seed * 59 + c.ones + 1));
    }
    std::vector<const ValueBitmap*> operands;
    std::vector<WahBitmap> wahs;
    for (const ValueBitmap& vb : vbs) {
      operands.push_back(&vb);
      wahs.push_back(vb.ToWah());
    }
    std::vector<const WahBitmap*> wah_ptrs;
    for (const WahBitmap& w : wahs) wah_ptrs.push_back(&w);

    WahBitmap oracle = WahOrMany(wah_ptrs, kSweepSize);
    EXPECT_EQ(CodecOrManyWah(operands, kSweepSize), oracle);
    EXPECT_EQ(CodecOrManyCount(operands, kSweepSize), oracle.CountOnes());

    // Subsets exercise the all-WAH fast path and single-operand cases.
    std::vector<const ValueBitmap*> just_wah = {operands[4], operands[5]};
    EXPECT_EQ(CodecOrManyWah(just_wah, kSweepSize),
              WahOr(*wah_ptrs[4], *wah_ptrs[5]));
    std::vector<const ValueBitmap*> one = {operands[2]};
    EXPECT_EQ(CodecOrManyWah(one, kSweepSize), wahs[2]);
    EXPECT_EQ(CodecOrManyWah({}, kSweepSize).CountOnes(), 0u);
    EXPECT_EQ(CodecOrManyWah({}, kSweepSize).size(), kSweepSize);
  }
}

TEST(CodecKernels, FilterMatchesCompressedOracle) {
  Rng rng(21);
  std::vector<uint64_t> kept;
  for (uint64_t i = 0; i < kSweepSize; ++i) {
    if (rng.NextBool(0.3)) kept.push_back(i);
  }
  WahPositionFilter filter(kept, kSweepSize);
  for (const DensityClass& c : kClasses) {
    ValueBitmap vb = MakeRandom(kSweepSize, c.ones, 87 + c.ones);
    ValueBitmap filtered = CodecFilter(filter, vb);
    WahBitmap oracle = filter.Filter(vb.ToWah());
    EXPECT_EQ(filtered, ValueBitmap::FromWah(oracle)) << vb.ToString();
    EXPECT_TRUE(filtered.Validate(kept.size()).ok());
  }
}

TEST(CodecKernels, AppendToWahMatchesConcat) {
  WahBitmap acc = WahBitmap::FromPositions({1, 63, 200}, 300);
  for (const DensityClass& c : kClasses) {
    ValueBitmap vb = MakeRandom(kSweepSize, c.ones, 33 + c.ones);
    WahBitmap via_append = acc;
    vb.AppendToWah(&via_append);
    WahBitmap via_concat = acc;
    via_concat.Concat(vb.ToWah());
    EXPECT_EQ(via_append, via_concat) << vb.ToString();
  }
}

TEST(ValueBitmap, FromRawPartsRejectsNonCanonical) {
  // Wrong representation for the density: 3 ones in 4096 bits must be an
  // array, not a bitset.
  std::vector<uint64_t> words(kSweepSize / 64, 0);
  words[0] = 0b111;
  EXPECT_FALSE(ValueBitmap::FromRawParts(BitmapRep::kBitset, kSweepSize, {},
                                         WahBitmap(), words)
                   .ok());
  // Unsorted positions.
  EXPECT_FALSE(ValueBitmap::FromRawParts(BitmapRep::kArray, kSweepSize,
                                         {9, 3}, WahBitmap(), {})
                   .ok());
  // Out-of-range position.
  EXPECT_FALSE(ValueBitmap::FromRawParts(BitmapRep::kArray, kSweepSize,
                                         {static_cast<uint32_t>(kSweepSize)},
                                         WahBitmap(), {})
                   .ok());
  // Bitset with nonzero slack bits above size.
  std::vector<uint64_t> slack(2, ~uint64_t{0});
  EXPECT_FALSE(ValueBitmap::FromRawParts(BitmapRep::kBitset, 100, {},
                                         WahBitmap(), slack)
                   .ok());
  // A canonical payload round-trips.
  std::vector<uint32_t> sparse = {1, 2, 3};
  EXPECT_TRUE(ValueBitmap::FromRawParts(BitmapRep::kArray, kSweepSize, sparse,
                                        WahBitmap(), {})
                  .ok());
}

// ---- Serde ---------------------------------------------------------------

TEST(CodecSerde, ValueBitmapRoundTripEveryRep) {
  for (const DensityClass& c : kClasses) {
    ValueBitmap vb = MakeRandom(kSweepSize, c.ones, 5 + c.ones);
    BinaryWriter w;
    WriteValueBitmap(vb, &w);
    BinaryReader r(w.buffer());
    ValueBitmap back = ReadValueBitmap(&r, kSweepSize).ValueOrDie();
    EXPECT_EQ(back, vb);
    EXPECT_TRUE(r.AtEnd());
  }
}

TEST(CodecSerde, RejectsUnknownTag) {
  BinaryWriter w;
  w.U8(7);  // not a BitmapRep
  BinaryReader r(w.buffer());
  EXPECT_TRUE(ReadValueBitmap(&r, kSweepSize).status().IsCorruption());
}

TEST(CodecSerde, CatalogV3RoundTrip) {
  Catalog catalog;
  ASSERT_TRUE(catalog.AddTable(Figure1TableR()).ok());
  ASSERT_TRUE(catalog.AddTable(RandomFdTable(800, 40, 9)->WithName("X")).ok());
  std::vector<uint8_t> image = SerializeCatalogV3(catalog, /*wal_lsn=*/77);
  uint64_t lsn = 0;
  Catalog back = DeserializeCatalog(image, &lsn).ValueOrDie();
  EXPECT_EQ(lsn, 77u);
  for (const std::string& name : catalog.TableNames()) {
    ExpectSameContent(*catalog.GetTable(name).ValueOrDie(),
                      *back.GetTable(name).ValueOrDie());
  }
}

TEST(CodecSerde, OlderImageVersionsStayReadable) {
  Catalog catalog;
  ASSERT_TRUE(catalog.AddTable(RandomFdTable(500, 25, 3)).ok());
  for (std::vector<uint8_t> image :
       {SerializeCatalog(catalog), SerializeCatalogV2(catalog, 5)}) {
    Catalog back = DeserializeCatalog(image).ValueOrDie();
    ExpectSameContent(*catalog.GetTable("R").ValueOrDie(),
                      *back.GetTable("R").ValueOrDie());
    // Reloaded bitmaps land in their canonical codec representations.
    auto col = back.GetTable("R").ValueOrDie()->column(0);
    for (Vid v = 0; v < col->distinct_count(); ++v) {
      EXPECT_TRUE(col->bitmap(v).Validate(col->rows()).ok());
    }
  }
}

TEST(CodecSerde, V3BitFlipsAreDetected) {
  Catalog catalog;
  ASSERT_TRUE(catalog.AddTable(RandomFdTable(300, 17, 4)).ok());
  std::vector<uint8_t> image = SerializeCatalogV3(catalog, 123);
  Rng rng(99);
  for (int trial = 0; trial < 200; ++trial) {
    std::vector<uint8_t> bad = image;
    size_t byte = static_cast<size_t>(
        rng.Uniform(0, static_cast<int64_t>(bad.size()) - 1));
    bad[byte] ^= static_cast<uint8_t>(1u << rng.Uniform(0, 7));
    Result<Catalog> r = DeserializeCatalog(bad);
    // The footer CRC covers every preceding byte, so any single-bit
    // flip — header, payload, or the footer itself — must error.
    EXPECT_FALSE(r.ok()) << "flip at byte " << byte << " went undetected";
  }
}

TEST(CodecSerde, V3TruncationsAreDetected) {
  Catalog catalog;
  ASSERT_TRUE(catalog.AddTable(Figure1TableR()).ok());
  std::vector<uint8_t> image = SerializeCatalogV3(catalog, 9);
  for (size_t len = 0; len < image.size(); ++len) {
    std::vector<uint8_t> prefix(image.begin(), image.begin() + len);
    EXPECT_FALSE(DeserializeCatalog(prefix).ok()) << "prefix length " << len;
  }
}

TEST(CodecStatsTest, PopcountHitsAccumulate) {
  uint64_t before =
      GlobalCodecStats().popcount_hits.load(std::memory_order_relaxed);
  ValueBitmap vb = MakeRandom(kSweepSize, 30, 1);
  (void)vb.CountOnes();
  (void)vb.CountOnes();
  uint64_t after =
      GlobalCodecStats().popcount_hits.load(std::memory_order_relaxed);
  EXPECT_GE(after - before, 2u);
}

}  // namespace
}  // namespace cods

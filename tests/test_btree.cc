// Tests for the B+ tree index, including randomized property tests
// against std::multimap.

#include "rowstore/btree_index.h"

#include <map>

#include "common/random.h"
#include "gtest/gtest.h"

namespace cods {
namespace {

Row IntKey(int64_t v) { return Row{Value(v)}; }

TEST(RowLess, LexicographicWithPrefixes) {
  EXPECT_TRUE(RowLess({Value(int64_t{1})}, {Value(int64_t{2})}));
  EXPECT_TRUE(RowLess({Value(int64_t{1})},
                      {Value(int64_t{1}), Value(int64_t{0})}));
  EXPECT_FALSE(RowLess({Value(int64_t{2})}, {Value(int64_t{1})}));
  EXPECT_FALSE(RowLess({Value("a")}, {Value("a")}));
}

TEST(BTree, EmptyTree) {
  BTreeIndex tree({0});
  EXPECT_EQ(tree.size(), 0u);
  EXPECT_EQ(tree.height(), 1u);
  EXPECT_TRUE(tree.Lookup(IntKey(5)).empty());
  EXPECT_TRUE(tree.ScanAll().empty());
  EXPECT_TRUE(tree.Validate().ok());
}

TEST(BTree, InsertAndLookup) {
  BTreeIndex tree({0});
  for (int64_t i = 0; i < 100; ++i) {
    tree.Insert(IntKey(i), RowId{0, static_cast<uint16_t>(i)});
  }
  EXPECT_EQ(tree.size(), 100u);
  EXPECT_TRUE(tree.Validate().ok());
  for (int64_t i = 0; i < 100; ++i) {
    std::vector<RowId> hits = tree.Lookup(IntKey(i));
    ASSERT_EQ(hits.size(), 1u) << i;
    EXPECT_EQ(hits[0].slot, static_cast<uint16_t>(i));
  }
  EXPECT_TRUE(tree.Lookup(IntKey(100)).empty());
}

TEST(BTree, SplitsGrowHeight) {
  BTreeIndex tree({0});
  for (int64_t i = 0; i < 10000; ++i) {
    tree.Insert(IntKey(i), RowId{0, 0});
  }
  EXPECT_GE(tree.height(), 3u);
  EXPECT_TRUE(tree.Validate().ok());
}

TEST(BTree, DuplicateKeysAllFound) {
  BTreeIndex tree({0});
  // 200 duplicates of one key interleaved with other keys — duplicates
  // will straddle leaf splits.
  for (int i = 0; i < 200; ++i) {
    tree.Insert(IntKey(42), RowId{1, static_cast<uint16_t>(i)});
    tree.Insert(IntKey(i), RowId{2, static_cast<uint16_t>(i)});
  }
  std::vector<RowId> hits = tree.Lookup(IntKey(42));
  // 200 dupes + the i==42 insert.
  EXPECT_EQ(hits.size(), 201u);
  EXPECT_TRUE(tree.Validate().ok());
}

TEST(BTree, ScanRangeInclusive) {
  BTreeIndex tree({0});
  for (int64_t i = 0; i < 100; i += 2) {
    tree.Insert(IntKey(i), RowId{0, 0});
  }
  auto hits = tree.ScanRange(IntKey(10), IntKey(20));
  ASSERT_EQ(hits.size(), 6u);  // 10,12,...,20
  EXPECT_EQ(hits.front().first, IntKey(10));
  EXPECT_EQ(hits.back().first, IntKey(20));
}

TEST(BTree, ScanAllSorted) {
  BTreeIndex tree({0});
  Rng rng(21);
  for (int i = 0; i < 5000; ++i) {
    tree.Insert(IntKey(rng.Uniform(0, 1000)), RowId{0, 0});
  }
  auto all = tree.ScanAll();
  EXPECT_EQ(all.size(), 5000u);
  for (size_t i = 1; i < all.size(); ++i) {
    EXPECT_FALSE(RowLess(all[i].first, all[i - 1].first));
  }
}

TEST(BTree, CompositeKeys) {
  BTreeIndex tree({0, 1});
  tree.Insert({Value(int64_t{1}), Value("a")}, RowId{0, 1});
  tree.Insert({Value(int64_t{1}), Value("b")}, RowId{0, 2});
  tree.Insert({Value(int64_t{2}), Value("a")}, RowId{0, 3});
  EXPECT_EQ(tree.Lookup({Value(int64_t{1}), Value("b")}).size(), 1u);
  EXPECT_EQ(tree.Lookup({Value(int64_t{1}), Value("c")}).size(), 0u);
  EXPECT_TRUE(tree.Validate().ok());
}

// ---- Randomized property tests against std::multimap. ----------------------

struct BTreeParam {
  int inserts;
  int64_t key_range;  // small range → heavy duplication
};

class BTreeProperty : public ::testing::TestWithParam<BTreeParam> {};

TEST_P(BTreeProperty, AgreesWithMultimap) {
  const BTreeParam p = GetParam();
  Rng rng(static_cast<uint64_t>(p.inserts * 31 + p.key_range));
  BTreeIndex tree({0});
  std::multimap<int64_t, uint32_t> oracle;
  for (int i = 0; i < p.inserts; ++i) {
    int64_t key = rng.Uniform(0, p.key_range - 1);
    tree.Insert(IntKey(key), RowId{static_cast<uint32_t>(i), 0});
    oracle.emplace(key, static_cast<uint32_t>(i));
  }
  ASSERT_TRUE(tree.Validate().ok());
  EXPECT_EQ(tree.size(), oracle.size());

  // Point lookups agree (as multisets of row ids).
  for (int64_t key = -1; key <= p.key_range; ++key) {
    std::vector<RowId> hits = tree.Lookup(IntKey(key));
    auto [lo, hi] = oracle.equal_range(key);
    std::multiset<uint32_t> expected, got;
    for (auto it = lo; it != hi; ++it) expected.insert(it->second);
    for (RowId rid : hits) got.insert(rid.page);
    EXPECT_EQ(got, expected) << "key " << key;
  }

  // Range scans agree in size and ordering.
  int64_t lo_key = p.key_range / 4;
  int64_t hi_key = p.key_range / 2;
  auto range = tree.ScanRange(IntKey(lo_key), IntKey(hi_key));
  size_t expected_count = 0;
  for (auto it = oracle.lower_bound(lo_key);
       it != oracle.upper_bound(hi_key); ++it) {
    ++expected_count;
  }
  EXPECT_EQ(range.size(), expected_count);
}

INSTANTIATE_TEST_SUITE_P(
    Grid, BTreeProperty,
    ::testing::Values(BTreeParam{10, 5}, BTreeParam{100, 10},
                      BTreeParam{1000, 7}, BTreeParam{1000, 1000},
                      BTreeParam{5000, 3}, BTreeParam{20000, 500},
                      BTreeParam{20000, 1000000}),
    [](const ::testing::TestParamInfo<BTreeParam>& info) {
      return "i" + std::to_string(info.param.inserts) + "_k" +
             std::to_string(info.param.key_range);
    });

}  // namespace
}  // namespace cods

// Tests for the evolution status observers.

#include "evolution/observer.h"

#include "common/logging.h"
#include "gtest/gtest.h"

namespace cods {
namespace {

TEST(RecordingObserver, CapturesStepsInOrder) {
  RecordingObserver observer;
  observer.OnStepBegin("OP", "step1", "detail1");
  observer.OnStepEnd("OP", "step1", 0.5);
  observer.OnStepBegin("OP", "step2", "");
  observer.OnStepEnd("OP", "step2", 0.25);
  ASSERT_EQ(observer.steps().size(), 2u);
  EXPECT_EQ(observer.steps()[0].step, "step1");
  EXPECT_EQ(observer.steps()[0].detail, "detail1");
  EXPECT_DOUBLE_EQ(observer.steps()[0].seconds, 0.5);
  EXPECT_DOUBLE_EQ(observer.TotalSeconds(), 0.75);
  EXPECT_TRUE(observer.HasStep("step2"));
  EXPECT_FALSE(observer.HasStep("missing"));
}

TEST(RecordingObserver, EndAttachesToMostRecentMatchingBegin) {
  RecordingObserver observer;
  // Nested same-named steps: the end must bind to the latest begin.
  observer.OnStepBegin("A", "filter", "first");
  observer.OnStepBegin("A", "filter", "second");
  observer.OnStepEnd("A", "filter", 1.0);
  EXPECT_DOUBLE_EQ(observer.steps()[1].seconds, 1.0);
  EXPECT_DOUBLE_EQ(observer.steps()[0].seconds, 0.0);
  // An end with no matching begin is ignored.
  observer.OnStepEnd("B", "nope", 9.0);
  EXPECT_DOUBLE_EQ(observer.TotalSeconds(), 1.0);
}

TEST(ScopedStep, ReportsBeginAndTimedEnd) {
  RecordingObserver observer;
  {
    ScopedStep step(&observer, "OP", "work", "doing things");
    ASSERT_EQ(observer.steps().size(), 1u);
    EXPECT_DOUBLE_EQ(observer.steps()[0].seconds, 0.0);  // not ended yet
  }
  ASSERT_EQ(observer.steps().size(), 1u);
  EXPECT_GE(observer.steps()[0].seconds, 0.0);
  EXPECT_EQ(observer.steps()[0].detail, "doing things");
}

TEST(ScopedStep, NullObserverIsNoOp) {
  // Must not crash.
  ScopedStep step(nullptr, "OP", "work");
}

TEST(LoggingObserver, WritesWithoutCrashing) {
  // Route through the log at a level that is filtered out, then visible.
  LogLevel before = GetLogLevel();
  SetLogLevel(LogLevel::kError);
  LoggingObserver observer;
  observer.OnStepBegin("OP", "step", "detail");
  observer.OnStepEnd("OP", "step", 0.1);
  SetLogLevel(before);
}

}  // namespace
}  // namespace cods

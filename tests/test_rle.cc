// Tests for the run-length codec used by sorted columns.

#include "bitmap/rle.h"

#include "common/random.h"
#include "gtest/gtest.h"

namespace cods {
namespace {

TEST(Rle, EmptyVector) {
  RleVector rle;
  EXPECT_EQ(rle.size(), 0u);
  EXPECT_EQ(rle.NumRuns(), 0u);
  EXPECT_TRUE(rle.Decode().empty());
}

TEST(Rle, AppendMergesEqualNeighbors) {
  RleVector rle;
  rle.Append(7);
  rle.Append(7);
  rle.Append(8);
  rle.Append(7);
  EXPECT_EQ(rle.size(), 4u);
  EXPECT_EQ(rle.NumRuns(), 3u);
  EXPECT_EQ(rle.Decode(), (std::vector<uint32_t>{7, 7, 8, 7}));
}

TEST(Rle, AppendRunAndGet) {
  RleVector rle;
  rle.AppendRun(1, 100);
  rle.AppendRun(2, 50);
  rle.AppendRun(1, 1);
  EXPECT_EQ(rle.size(), 151u);
  EXPECT_EQ(rle.Get(0), 1u);
  EXPECT_EQ(rle.Get(99), 1u);
  EXPECT_EQ(rle.Get(100), 2u);
  EXPECT_EQ(rle.Get(149), 2u);
  EXPECT_EQ(rle.Get(150), 1u);
}

TEST(Rle, ZeroLengthRunIgnored) {
  RleVector rle;
  rle.AppendRun(5, 0);
  EXPECT_EQ(rle.size(), 0u);
  EXPECT_EQ(rle.NumRuns(), 0u);
}

TEST(Rle, EncodeDecodeRoundTrip) {
  Rng rng(17);
  std::vector<uint32_t> values;
  for (int run = 0; run < 200; ++run) {
    uint32_t v = static_cast<uint32_t>(rng.Uniform(0, 5));
    uint64_t len = static_cast<uint64_t>(rng.Uniform(1, 20));
    values.insert(values.end(), len, v);
  }
  RleVector rle = RleVector::Encode(values);
  EXPECT_EQ(rle.Decode(), values);
  EXPECT_EQ(rle.size(), values.size());
  for (int i = 0; i < 100; ++i) {
    uint64_t pos = static_cast<uint64_t>(
        rng.Uniform(0, static_cast<int64_t>(values.size()) - 1));
    EXPECT_EQ(rle.Get(pos), values[pos]);
  }
}

TEST(Rle, SortedDataCompressesWell) {
  std::vector<uint32_t> sorted;
  for (uint32_t v = 0; v < 10; ++v) sorted.insert(sorted.end(), 1000, v);
  RleVector rle = RleVector::Encode(sorted);
  EXPECT_EQ(rle.NumRuns(), 10u);
  EXPECT_LT(rle.SizeBytes(), sorted.size() * sizeof(uint32_t) / 100);
}

}  // namespace
}  // namespace cods

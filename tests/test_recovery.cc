// The crash-safety proof for the durability subsystem: a randomized SMO
// workload (data-moving operators over real tables, mid-script
// failures, version marks, auto-checkpoints) runs under
// FaultInjectionEnv and is crashed at EVERY fault-relevant operation
// across several configurations — hundreds of distinct crash points.
// After each crash, re-opening the directory with a clean env must
// yield a catalog byte-identical (serialized image, WAH code words
// included) to a state the workload legitimately reached:
//   * at least everything acknowledged before the crash (no committed
//     script lost), and
//   * at most the state of the one mutation in flight (nothing
//     uncommitted beyond it visible).
// Separate tests cover damaged checkpoints (must fail Open loudly,
// never open silently wrong) and failed fsyncs (poison, unack,
// recover).

#include <cstdint>
#include <string>
#include <vector>

#include "common/env.h"
#include "durability/checkpoint.h"
#include "durability/db.h"
#include "durability/wal.h"
#include "gtest/gtest.h"
#include "smo/parser.h"
#include "storage/serde.h"
#include "test_util.h"

namespace cods {
namespace {

using ::cods::testing::Figure1TableR;
using ::cods::testing::RandomFdTable;

// The oracle image of a db: its currently served root, serialized.
std::vector<uint8_t> ImageOf(DurableDb& db) {
  return SerializeCatalog(MaterializeCatalog(db.GetSnapshot().root()));
}

void CleanDir(Env* env, const std::string& dir) {
  ASSERT_TRUE(env->CreateDirIfMissing(dir).ok());
  // Named, not a temporary: ValueOrDie()&& returns a reference into the
  // Result, which a range-for over a temporary would leave dangling.
  Result<std::vector<std::string>> names = env->ListDir(dir);
  ASSERT_TRUE(names.ok());
  for (const std::string& name : names.ValueOrDie()) {
    ASSERT_TRUE(env->DeleteFile(dir + "/" + name).ok());
  }
}

// One workload step: a statement script or a version mark.
struct Mutation {
  bool is_mark = false;
  std::string text;
};

// A fixed, deterministic workload exercising every operator class over
// real data (R: 7 rows of strings, F: 120 rows with an FD), including a
// script that fails at its second statement — its applied=1 prefix must
// survive crashes like any committed script.
std::vector<Mutation> Workload() {
  return {
      {false, "COPY TABLE R TO R1;"},
      {false,
       "DECOMPOSE TABLE R1 INTO S(Employee, Skill), "
       "T(Employee, Address) KEY(Employee);"},
      {true, "after decompose"},
      {false,
       "ADD COLUMN Level INT64 TO S DEFAULT 1; "
       "RENAME COLUMN Address TO Addr IN T;"},
      {false, "PARTITION TABLE F INTO Fs, Fb WHERE K < 5;"},
      {false,
       "COPY TABLE Fs TO F2; DROP TABLE missing_table; DROP TABLE F2;"},
      {false, "DROP TABLE F2;"},
      {false, "UNION TABLES Fs, Fb INTO F;"},
      {true, "rebuilt F"},
      {false, "ADD COLUMN tag STRING TO F DEFAULT 'x';"},
      {false, "RENAME TABLE F TO F_final; COPY TABLE R TO R2;"},
      {false, "DROP COLUMN Skill FROM S;"},
  };
}

// Oracle indices: image 0 = empty, image 1 = after the seed checkpoint,
// image 2+m = after mutation m. `acked` is the highest index known
// durable when the run ended; `attempted` the highest index possibly
// durable (the mutation in flight at the crash).
struct RunOutcome {
  int acked = 0;
  int attempted = 0;
};

RunOutcome RunWorkload(Env* env, const std::string& dir, uint64_t threshold,
                       bool planned,
                       std::vector<std::vector<uint8_t>>* images = nullptr) {
  RunOutcome out;
  DurableDbOptions opts;
  opts.auto_checkpoint_wal_bytes = threshold;
  auto opened = DurableDb::Open(env, dir, opts);
  if (!opened.ok()) return out;
  DurableDb* db = opened.ValueOrDie().get();
  if (images != nullptr) images->push_back(ImageOf(*db));

  // Seed with real data. Raw table loads are not WAL-replayable, so —
  // exactly like the shell's .load — a checkpoint makes them durable.
  out.attempted = 1;
  Status seed = [&]() -> Status {
    CODS_RETURN_NOT_OK(db->versions()->Apply([](TableStore& store) {
      CODS_RETURN_NOT_OK(store.AddTable(Figure1TableR()));
      return store.AddTable(RandomFdTable(120, 10, 5)->WithName("F"));
    }));
    return db->Checkpoint();
  }();
  if (images != nullptr) images->push_back(ImageOf(*db));
  if (!seed.ok() || !db->GetStats().healthy) return out;
  out.acked = 1;

  std::vector<Mutation> mutations = Workload();
  for (size_t m = 0; m < mutations.size(); ++m) {
    if (!db->GetStats().healthy) break;
    out.attempted = static_cast<int>(2 + m);
    if (mutations[m].is_mark) {
      db->CommitVersion(mutations[m].text).IgnoreError();
    } else {
      std::vector<Smo> script =
          ParseSmoScript(mutations[m].text).ValueOrDie();
      // Script statuses are ignored on purpose: one workload script
      // fails in memory, and under a crash any call may error — what
      // matters for the oracle is the durable state, tracked below.
      if (planned) {
        db->ApplyScriptPlanned(script).IgnoreError();
      } else {
        db->ApplyScript(script).IgnoreError();
      }
    }
    if (images != nullptr) {
      images->push_back(ImageOf(*db));
    }
    if (db->GetStats().healthy) out.acked = out.attempted;
  }
  return out;
}

TEST(RecoverySweep, EveryCrashPointRecoversCommittedState) {
  Env* base = Env::Default();
  std::string root = ::testing::TempDir() + "cods_recovery_sweep";
  ASSERT_TRUE(base->CreateDirIfMissing(root).ok());

  // The oracle: every state the workload passes through, as serialized
  // images. Thresholds/planning change I/O schedules, never the logical
  // state, so one oracle serves all configurations.
  std::vector<std::vector<uint8_t>> images;
  {
    std::string dir = root + "/oracle";
    CleanDir(base, dir);
    RunOutcome o = RunWorkload(base, dir, 0, false, &images);
    ASSERT_EQ(o.acked, o.attempted);  // no faults: everything acked
    ASSERT_EQ(images.size(), size_t{2} + Workload().size());
  }

  struct Config {
    uint64_t threshold;  // auto-checkpoint trigger (1 = every script)
    bool planned;
    uint64_t seed;
    const char* tag;
  };
  int points = 0;
  for (const Config& cfg :
       {Config{0, false, 101, "plain"}, Config{1, false, 202, "ckpt"},
        Config{600, true, 303, "planned"}}) {
    // Count the fault-relevant ops of a crash-free run.
    std::string count_dir = root + "/count_" + cfg.tag;
    CleanDir(base, count_dir);
    FaultInjectionEnv counter(base, cfg.seed);
    RunWorkload(&counter, count_dir, cfg.threshold, cfg.planned);
    const uint64_t total = counter.op_count();
    ASSERT_GT(total, 30u) << cfg.tag;

    std::string dir = root + std::string("/run_") + cfg.tag;
    for (uint64_t k = 1; k <= total; ++k) {
      CleanDir(base, dir);
      FaultInjectionEnv fenv(base, cfg.seed * 7919 + k);
      fenv.SetCrashAtOp(k);
      RunOutcome o =
          RunWorkload(&fenv, dir, cfg.threshold, cfg.planned);
      EXPECT_TRUE(fenv.crashed()) << cfg.tag << " k=" << k;

      // The post-crash mount: a clean env over the damaged directory.
      auto recovered = DurableDb::Open(base, dir);
      ASSERT_TRUE(recovered.ok())
          << cfg.tag << " k=" << k << ": " << recovered.status().ToString();
      std::vector<uint8_t> image = ImageOf(*recovered.ValueOrDie());
      ASSERT_LT(static_cast<size_t>(o.attempted), images.size());
      bool matched = false;
      for (int j = o.acked; j <= o.attempted && !matched; ++j) {
        matched = images[static_cast<size_t>(j)] == image;
      }
      EXPECT_TRUE(matched)
          << cfg.tag << " k=" << k << ": recovered state matches none of "
          << "images [" << o.acked << ", " << o.attempted << "]";
      ++points;

      // The recovered db must be fully usable: commit one more script
      // durably and see it after yet another reopen.
      if (k % 5 == 0) {
        std::vector<Smo> probe =
            ParseSmoScript("CREATE TABLE ZZZ_probe (a INT64);").ValueOrDie();
        ASSERT_TRUE(recovered.ValueOrDie()->ApplyScript(probe).ok());
        auto again = DurableDb::Open(base, dir);
        ASSERT_TRUE(again.ok());
        EXPECT_TRUE(
            again.ValueOrDie()->GetSnapshot().root().HasTable("ZZZ_probe"));
      }
    }
  }
  // The acceptance bar: hundreds of distinct crash points, all green.
  EXPECT_GE(points, 200);
}

TEST(RecoveryTest, DamagedCheckpointFailsOpenLoudly) {
  Env* env = Env::Default();
  std::string dir = ::testing::TempDir() + "cods_recovery_ckpt";
  CleanDir(env, dir);
  {
    auto db = DurableDb::Open(env, dir).ValueOrDie();
    ASSERT_TRUE(db->versions()
                    ->Apply([](TableStore& store) {
                      return store.AddTable(Figure1TableR());
                    })
                    .ok());
    ASSERT_TRUE(db->Checkpoint().ok());
  }
  std::string path = dir + "/" + kCheckpointFileName;
  std::vector<uint8_t> good = env->ReadFile(path).ValueOrDie();

  Rng rng(13);
  for (int trial = 0; trial < 80; ++trial) {
    std::vector<uint8_t> bad = good;
    size_t byte = static_cast<size_t>(
        rng.Uniform(0, static_cast<int64_t>(bad.size()) - 1));
    bad[byte] ^= static_cast<uint8_t>(1u << rng.Uniform(0, 7));
    ASSERT_TRUE(WriteFile(env, path, bad).ok());
    auto opened = DurableDb::Open(env, dir);
    // The v2 footer checksum catches every single-bit flip; silently
    // opening an empty or wrong catalog would be data loss.
    EXPECT_FALSE(opened.ok()) << "flip at byte " << byte << " opened";
  }
  for (size_t cut = 0; cut < good.size(); cut += 7) {
    ASSERT_TRUE(
        WriteFile(env, path,
                  std::vector<uint8_t>(good.begin(),
                                       good.begin() +
                                           static_cast<ptrdiff_t>(cut)))
            .ok());
    EXPECT_FALSE(DurableDb::Open(env, dir).ok()) << "truncated at " << cut;
  }
  // Restored, it opens again.
  ASSERT_TRUE(WriteFile(env, path, good).ok());
  auto opened = DurableDb::Open(env, dir);
  ASSERT_TRUE(opened.ok()) << opened.status().ToString();
  EXPECT_TRUE(opened.ValueOrDie()->GetSnapshot().root().HasTable("R"));
}

TEST(RecoveryTest, CorruptWalBeforeCommitPointFailsOpen) {
  Env* env = Env::Default();
  std::string dir = ::testing::TempDir() + "cods_recovery_walcorrupt";
  CleanDir(env, dir);
  {
    auto db = DurableDb::Open(env, dir).ValueOrDie();
    std::vector<Smo> s1 =
        ParseSmoScript("CREATE TABLE A (x INT64);").ValueOrDie();
    std::vector<Smo> s2 =
        ParseSmoScript("CREATE TABLE B (y STRING);").ValueOrDie();
    ASSERT_TRUE(db->ApplyScript(s1).ok());
    ASSERT_TRUE(db->ApplyScript(s2).ok());
  }
  std::string path = dir + "/" + kWalFileName;
  std::vector<uint8_t> good = env->ReadFile(path).ValueOrDie();
  WalContents wal = ReadWal(env, path).ValueOrDie();
  ASSERT_EQ(wal.entries.size(), 2u);
  // Damage strictly inside the FIRST committed script: synced history.
  std::vector<uint8_t> bad = good;
  bad[wal.entries[0].end_offset / 2] ^= 0x10;
  ASSERT_TRUE(WriteFile(env, path, bad).ok());
  auto opened = DurableDb::Open(env, dir);
  ASSERT_FALSE(opened.ok());
  EXPECT_TRUE(opened.status().IsCorruption()) << opened.status().ToString();
}

TEST(RecoveryTest, FailedFsyncPoisonsAndRecoversWithoutAck) {
  Env* base = Env::Default();
  std::string dir = ::testing::TempDir() + "cods_recovery_fsync";
  CleanDir(base, dir);
  std::vector<Smo> s1 =
      ParseSmoScript("CREATE TABLE A (x INT64);").ValueOrDie();
  std::vector<Smo> s2 =
      ParseSmoScript("CREATE TABLE B (y STRING);").ValueOrDie();
  std::vector<Smo> s3 =
      ParseSmoScript("CREATE TABLE C (z DOUBLE);").ValueOrDie();

  FaultInjectionEnv fenv(base, 77);
  DurableDbOptions opts;
  opts.auto_checkpoint_wal_bytes = 0;
  auto db = DurableDb::Open(&fenv, dir, opts).ValueOrDie();
  ASSERT_TRUE(db->ApplyScript(s1).ok());
  fenv.FailNextSyncs(1);
  Status st = db->ApplyScript(s2);
  // The commit fsync failed: the script must NOT be acknowledged, and
  // the db must refuse further mutations with the original error.
  EXPECT_TRUE(st.IsIOError()) << st.ToString();
  EXPECT_FALSE(db->GetStats().healthy);
  EXPECT_TRUE(db->ApplyScript(s3).IsIOError());
  EXPECT_TRUE(db->Checkpoint().IsIOError());
  EXPECT_FALSE(db->CommitVersion("nope").ok());

  // Recovery: script 1 must be there; script 2 is commit-uncertain (the
  // record reached the file, only its durability ack failed); script 3
  // must NOT be there.
  auto recovered = DurableDb::Open(base, dir).ValueOrDie();
  EXPECT_TRUE(recovered->GetSnapshot().root().HasTable("A"));
  EXPECT_FALSE(recovered->GetSnapshot().root().HasTable("C"));
}

}  // namespace
}  // namespace cods

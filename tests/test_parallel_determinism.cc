// Determinism suite for the parallel execution subsystem: every rewired
// hot path must produce BIT-IDENTICAL output at threads ∈ {1, 2, 8}.
// WahBitmap's canonical form makes this checkable as plain representation
// equality (operator== compares code words), so the comparisons below
// are exact, not just logical.

#include <memory>
#include <vector>

#include "evolution/decompose.h"
#include "evolution/engine.h"
#include "evolution/merge.h"
#include "evolution/simple_ops.h"
#include "exec/exec.h"
#include "gtest/gtest.h"
#include "query/column_executor.h"
#include "query/column_select.h"
#include "query/join.h"
#include "query/query_engine.h"
#include "workload/generator.h"

namespace cods {
namespace {

constexpr int kThreadCounts[] = {1, 2, 8};

std::shared_ptr<const Table> TestTable(uint64_t rows = 30'000,
                                       uint64_t distinct = 500) {
  WorkloadSpec spec;
  spec.num_rows = rows;
  spec.num_distinct = distinct;
  spec.payload_distinct = 100;
  spec.dependent_distinct = 50;
  auto r = GenerateEvolutionTable(spec);
  CODS_CHECK(r.ok()) << r.status().ToString();
  return r.ValueOrDie();
}

// Exact (code-word-level) table equality.
void ExpectTablesIdentical(const Table& a, const Table& b,
                           const std::string& label) {
  ASSERT_EQ(a.rows(), b.rows()) << label;
  ASSERT_EQ(a.num_columns(), b.num_columns()) << label;
  for (size_t i = 0; i < a.num_columns(); ++i) {
    const Column& ca = *a.column(i);
    const Column& cb = *b.column(i);
    ASSERT_EQ(ca.encoding(), cb.encoding()) << label << " col " << i;
    ASSERT_EQ(ca.distinct_count(), cb.distinct_count())
        << label << " col " << i;
    if (ca.encoding() != ColumnEncoding::kWahBitmap) continue;
    for (Vid v = 0; v < ca.distinct_count(); ++v) {
      ASSERT_EQ(ca.dict().value(v), cb.dict().value(v))
          << label << " col " << i << " vid " << v;
      EXPECT_TRUE(ca.bitmap(v) == cb.bitmap(v))
          << label << ": column " << i << " vid " << v
          << " bitmaps differ";
    }
  }
}

TEST(ParallelDeterminismTest, Decompose) {
  auto r = TestTable();
  DecomposeOptions serial_opts;
  ExecContext serial(1);
  serial_opts.exec = &serial;
  auto reference =
      CodsDecompose(*r, "S", {kKeyColumn, kPayloadColumn}, {}, "T",
                    {kKeyColumn, kDependentColumn}, {kKeyColumn}, nullptr,
                    serial_opts);
  ASSERT_TRUE(reference.ok()) << reference.status().ToString();
  for (int threads : kThreadCounts) {
    ExecContext ctx(threads);
    DecomposeOptions opts;
    opts.exec = &ctx;
    auto result =
        CodsDecompose(*r, "S", {kKeyColumn, kPayloadColumn}, {}, "T",
                      {kKeyColumn, kDependentColumn}, {kKeyColumn}, nullptr,
                      opts);
    ASSERT_TRUE(result.ok()) << result.status().ToString();
    ExpectTablesIdentical(*reference->s, *result->s,
                          "decompose S @" + std::to_string(threads));
    ExpectTablesIdentical(*reference->t, *result->t,
                          "decompose T @" + std::to_string(threads));
  }
}

TEST(ParallelDeterminismTest, MergeKeyFk) {
  WorkloadSpec spec;
  spec.num_rows = 30'000;
  spec.num_distinct = 500;
  auto pair = GenerateMergePair(spec);
  ASSERT_TRUE(pair.ok());
  ExecContext serial(1);
  auto reference = CodsMergeKeyFk(*pair->s, *pair->t, {kKeyColumn}, {},
                                  "R", nullptr, &serial);
  ASSERT_TRUE(reference.ok()) << reference.status().ToString();
  for (int threads : kThreadCounts) {
    ExecContext ctx(threads);
    auto result = CodsMergeKeyFk(*pair->s, *pair->t, {kKeyColumn}, {},
                                 "R", nullptr, &ctx);
    ASSERT_TRUE(result.ok()) << result.status().ToString();
    ExpectTablesIdentical(**reference, **result,
                          "merge key-fk @" + std::to_string(threads));
  }
}

TEST(ParallelDeterminismTest, MergeGeneral) {
  auto pair = GenerateGeneralMergePair(200, 6, 4);
  ASSERT_TRUE(pair.ok());
  ExecContext serial(1);
  auto reference = CodsMergeGeneral(*pair->s, *pair->t, {"J"}, {}, "R",
                                    nullptr, &serial);
  ASSERT_TRUE(reference.ok()) << reference.status().ToString();
  for (int threads : kThreadCounts) {
    ExecContext ctx(threads);
    auto result = CodsMergeGeneral(*pair->s, *pair->t, {"J"}, {}, "R",
                                   nullptr, &ctx);
    ASSERT_TRUE(result.ok()) << result.status().ToString();
    ExpectTablesIdentical(**reference, **result,
                          "merge general @" + std::to_string(threads));
  }
}

TEST(ParallelDeterminismTest, UnionAndPartition) {
  auto r = TestTable();
  ExecContext serial(1);
  auto ref_union = UnionTablesOp(*r, *r->WithName("R2"), "U", nullptr,
                                 &serial);
  ASSERT_TRUE(ref_union.ok());
  Value pivot(static_cast<int64_t>(250));
  auto ref_part = PartitionTableOp(*r, "A", "B", kKeyColumn, CompareOp::kLt,
                                   pivot, nullptr, &serial);
  ASSERT_TRUE(ref_part.ok());
  for (int threads : kThreadCounts) {
    ExecContext ctx(threads);
    auto u = UnionTablesOp(*r, *r->WithName("R2"), "U", nullptr, &ctx);
    ASSERT_TRUE(u.ok()) << u.status().ToString();
    ExpectTablesIdentical(**ref_union, **u,
                          "union @" + std::to_string(threads));
    auto p = PartitionTableOp(*r, "A", "B", kKeyColumn, CompareOp::kLt,
                              pivot, nullptr, &ctx);
    ASSERT_TRUE(p.ok()) << p.status().ToString();
    ExpectTablesIdentical(*ref_part->matching, *p->matching,
                          "partition matching @" + std::to_string(threads));
    ExpectTablesIdentical(*ref_part->rest, *p->rest,
                          "partition rest @" + std::to_string(threads));
  }
}

TEST(ParallelDeterminismTest, QueryPaths) {
  auto r = TestTable();
  std::vector<ColumnPredicate> preds{
      ColumnPredicate::Compare(kKeyColumn, CompareOp::kLt,
                               Value(static_cast<int64_t>(300))),
      ColumnPredicate::Compare(kPayloadColumn, CompareOp::kGe,
                               Value(static_cast<int64_t>(20))),
  };
  ExecContext serial(1);
  auto ref_conj = EvalConjunction(*r, preds, &serial);
  auto ref_disj = EvalDisjunction(*r, preds, &serial);
  auto ref_count = CountWhere(*r, preds, &serial);
  auto ref_select = SelectWhere(*r, preds, "sel", &serial);
  auto ref_group = GroupBySum(*r, kDependentColumn, kPayloadColumn,
                              &serial);
  ASSERT_TRUE(ref_conj.ok() && ref_disj.ok() && ref_count.ok() &&
              ref_select.ok() && ref_group.ok());
  for (int threads : kThreadCounts) {
    ExecContext ctx(threads);
    auto conj = EvalConjunction(*r, preds, &ctx);
    ASSERT_TRUE(conj.ok());
    EXPECT_TRUE(*ref_conj == *conj) << "conjunction @" << threads;
    auto disj = EvalDisjunction(*r, preds, &ctx);
    ASSERT_TRUE(disj.ok());
    EXPECT_TRUE(*ref_disj == *disj) << "disjunction @" << threads;
    auto count = CountWhere(*r, preds, &ctx);
    ASSERT_TRUE(count.ok());
    EXPECT_EQ(*ref_count, *count) << "count @" << threads;
    auto sel = SelectWhere(*r, preds, "sel", &ctx);
    ASSERT_TRUE(sel.ok());
    ExpectTablesIdentical(**ref_select, **sel,
                          "select @" + std::to_string(threads));
    auto group = GroupBySum(*r, kDependentColumn, kPayloadColumn, &ctx);
    ASSERT_TRUE(group.ok());
    ASSERT_EQ(ref_group->size(), group->size());
    for (size_t i = 0; i < group->size(); ++i) {
      EXPECT_EQ((*ref_group)[i].first, (*group)[i].first);
      // Bit-identical doubles: same AND-count sequence, same summation
      // order per group.
      EXPECT_EQ((*ref_group)[i].second, (*group)[i].second)
          << "group " << i << " @" << threads;
    }
  }
}

TEST(ParallelDeterminismTest, NestedExpressionEvaluation) {
  // The expression AST path: leaves evaluate in parallel (one task per
  // leaf) and combine through the k-way kernels; nested NOT/AND/OR
  // results must be code-word identical at every thread count, for both
  // the materializing and the count-only plans, and through the full
  // QueryEngine request path.
  auto r = TestTable();
  ExprPtr expr = Expr::Or(
      {Expr::And(
           {Expr::Compare(kKeyColumn, CompareOp::kLt,
                          Value(static_cast<int64_t>(300))),
            Expr::Not(Expr::In(kPayloadColumn,
                               {Value(static_cast<int64_t>(1)),
                                Value(static_cast<int64_t>(2)),
                                Value(static_cast<int64_t>(3))}))}),
       Expr::And({Expr::Between(kDependentColumn,
                                Value(static_cast<int64_t>(10)),
                                Value(static_cast<int64_t>(20))),
                  Expr::Not(Expr::And(
                      {Expr::Compare(kKeyColumn, CompareOp::kGe,
                                     Value(static_cast<int64_t>(100))),
                       Expr::Compare(kPayloadColumn, CompareOp::kNe,
                                     Value(static_cast<int64_t>(7)))}))})});
  ExecContext serial(1);
  auto ref_bm = EvalExpr(*r, expr, &serial);
  auto ref_count = EvalExprCount(*r, expr, &serial);
  auto ref_select = QueryEngine::SelectRows(*r, {kKeyColumn, kPayloadColumn},
                                            expr, "sel", &serial);
  auto ref_group = QueryEngine::GroupBySumRows(*r, kDependentColumn,
                                               kPayloadColumn, expr, &serial);
  ASSERT_TRUE(ref_bm.ok() && ref_count.ok() && ref_select.ok() &&
              ref_group.ok());
  EXPECT_EQ(*ref_count, ref_bm->CountOnes());
  for (int threads : kThreadCounts) {
    ExecContext ctx(threads);
    auto bm = EvalExpr(*r, expr, &ctx);
    ASSERT_TRUE(bm.ok());
    EXPECT_TRUE(*ref_bm == *bm) << "expr bitmap @" << threads;
    auto count = EvalExprCount(*r, expr, &ctx);
    ASSERT_TRUE(count.ok());
    EXPECT_EQ(*ref_count, *count) << "expr count @" << threads;
    auto sel = QueryEngine::SelectRows(*r, {kKeyColumn, kPayloadColumn},
                                       expr, "sel", &ctx);
    ASSERT_TRUE(sel.ok());
    ExpectTablesIdentical(**ref_select, **sel,
                          "expr select @" + std::to_string(threads));
    auto group = QueryEngine::GroupBySumRows(*r, kDependentColumn,
                                             kPayloadColumn, expr, &ctx);
    ASSERT_TRUE(group.ok());
    ASSERT_EQ(ref_group->size(), group->size());
    for (size_t i = 0; i < group->size(); ++i) {
      // Bit-identical doubles: same AND-count sequence, same summation
      // order per group.
      EXPECT_EQ((*ref_group)[i], (*group)[i])
          << "expr group " << i << " @" << threads;
    }
  }
}

TEST(ParallelDeterminismTest, CompressedJoinPaths) {
  // Both join shapes must be code-word identical at every thread
  // count: the key-FK shape (position filters + gathered payload) and
  // the general value-clustered shape.
  WorkloadSpec spec;
  spec.num_rows = 30'000;
  spec.num_distinct = 500;
  auto fk_pair = GenerateMergePair(spec);
  ASSERT_TRUE(fk_pair.ok());
  auto general_pair = GenerateGeneralMergePair(200, 6, 4);
  ASSERT_TRUE(general_pair.ok());
  ExecContext serial(1);
  JoinStats ref_fk_stats, ref_gen_stats;
  auto ref_fk = CompressedEquiJoin(*fk_pair->s, *fk_pair->t, 0, 0, "J",
                                   &serial, &ref_fk_stats);
  auto ref_gen = CompressedEquiJoin(*general_pair->s, *general_pair->t, 0, 0,
                                    "J", &serial, &ref_gen_stats);
  ASSERT_TRUE(ref_fk.ok()) << ref_fk.status().ToString();
  ASSERT_TRUE(ref_gen.ok()) << ref_gen.status().ToString();
  EXPECT_EQ(ref_fk_stats.path, "fk-right");
  EXPECT_EQ(ref_gen_stats.path, "general");
  for (int threads : kThreadCounts) {
    ExecContext ctx(threads);
    JoinStats stats;
    auto fk = CompressedEquiJoin(*fk_pair->s, *fk_pair->t, 0, 0, "J", &ctx,
                                 &stats);
    ASSERT_TRUE(fk.ok()) << fk.status().ToString();
    EXPECT_EQ(stats.path, ref_fk_stats.path) << threads;
    ExpectTablesIdentical(**ref_fk, **fk,
                          "join fk @" + std::to_string(threads));
    auto gen = CompressedEquiJoin(*general_pair->s, *general_pair->t, 0, 0,
                                  "J", &ctx);
    ASSERT_TRUE(gen.ok()) << gen.status().ToString();
    ExpectTablesIdentical(**ref_gen, **gen,
                          "join general @" + std::to_string(threads));
  }
}

TEST(ParallelDeterminismTest, OrderByLimitAndMultiAggregate) {
  auto r = TestTable();
  ExprPtr where = Expr::Compare(kKeyColumn, CompareOp::kLt,
                                Value(static_cast<int64_t>(300)));
  std::vector<AggregateSpec> aggs{
      AggregateSpec::Sum(kPayloadColumn), AggregateSpec::Count(),
      AggregateSpec::Min(kPayloadColumn), AggregateSpec::Max(kPayloadColumn),
      AggregateSpec::Avg(kPayloadColumn)};
  ExecContext serial(1);
  auto ref_sorted = QueryEngine::SortRows(*r, kPayloadColumn, true, 5'000,
                                          "sorted", &serial);
  auto ref_group = QueryEngine::GroupByRows(*r, kDependentColumn, aggs,
                                            where, &serial);
  ASSERT_TRUE(ref_sorted.ok()) << ref_sorted.status().ToString();
  ASSERT_TRUE(ref_group.ok()) << ref_group.status().ToString();
  for (int threads : kThreadCounts) {
    ExecContext ctx(threads);
    auto sorted = QueryEngine::SortRows(*r, kPayloadColumn, true, 5'000,
                                        "sorted", &ctx);
    ASSERT_TRUE(sorted.ok());
    ExpectTablesIdentical(**ref_sorted, **sorted,
                          "order-by @" + std::to_string(threads));
    auto group = QueryEngine::GroupByRows(*r, kDependentColumn, aggs, where,
                                          &ctx);
    ASSERT_TRUE(group.ok());
    ASSERT_EQ(ref_group->size(), group->size());
    for (size_t i = 0; i < group->size(); ++i) {
      // Bit-identical Values: same AND-count sequence, same summation
      // order per group, at every thread count.
      EXPECT_TRUE((*ref_group)[i] == (*group)[i])
          << "multi-agg group " << i << " @" << threads;
    }
  }
}

TEST(ParallelDeterminismTest, RowsToColumnTableAndValidate) {
  auto r = TestTable();
  std::vector<Row> rows = r->Materialize();
  ExecContext serial(1);
  auto reference = RowsToColumnTable("rebuilt", r->schema(), rows, &serial);
  ASSERT_TRUE(reference.ok()) << reference.status().ToString();
  for (int threads : kThreadCounts) {
    ExecContext ctx(threads);
    auto result = RowsToColumnTable("rebuilt", r->schema(), rows, &ctx);
    ASSERT_TRUE(result.ok()) << result.status().ToString();
    ExpectTablesIdentical(**reference, **result,
                          "rows-to-column @" + std::to_string(threads));
    Status st = (*result)->ValidateInvariants(&ctx);
    EXPECT_TRUE(st.ok()) << st.ToString();
  }
}

TEST(ParallelDeterminismTest, EngineEndToEndScript) {
  // The full engine pipeline at num_threads = 1 vs 8: DECOMPOSE, then
  // MERGE back, with validation on (exercising parallel
  // ValidateInvariants on every produced table).
  auto run_with = [&](int threads) -> std::shared_ptr<const Table> {
    Catalog catalog;
    CODS_CHECK_OK(catalog.AddTable(TestTable()));
    EngineOptions options;
    options.num_threads = threads;
    options.validate_outputs = true;
    EvolutionEngine engine(&catalog, nullptr, options);
    CODS_CHECK_OK(engine.Apply(Smo::DecomposeTable(
        "R", "S", {kKeyColumn, kPayloadColumn}, {}, "T",
        {kKeyColumn, kDependentColumn}, {kKeyColumn})));
    CODS_CHECK_OK(
        engine.Apply(Smo::MergeTables("S", "T", "R", {kKeyColumn}, {})));
    return catalog.GetTable("R").ValueOrDie();
  };
  auto reference = run_with(1);
  for (int threads : {2, 8}) {
    auto result = run_with(threads);
    ExpectTablesIdentical(*reference, *result,
                          "engine script @" + std::to_string(threads));
  }
}

TEST(ParallelDeterminismTest, PlannedScriptExecution) {
  // Script-level determinism: the planner + task-graph executor must
  // produce a catalog code-word-identical to serial ApplyAll at every
  // thread count. The script mixes independent DECOMPOSEs (overlap),
  // a partition/union diamond, and schema-only ops.
  auto fresh_catalog = []() {
    auto catalog = std::make_unique<Catalog>();
    CODS_CHECK_OK(catalog->AddTable(TestTable()->WithName("R0")));
    CODS_CHECK_OK(catalog->AddTable(TestTable()->WithName("R1")));
    return catalog;
  };
  std::vector<Smo> script;
  for (int i = 0; i < 2; ++i) {
    std::string n = std::to_string(i);
    script.push_back(Smo::DecomposeTable(
        "R" + n, "S" + n, {kKeyColumn, kPayloadColumn}, {}, "T" + n,
        {kKeyColumn, kDependentColumn}, {kKeyColumn}));
  }
  script.push_back(Smo::MergeTables("S0", "T0", "R0", {kKeyColumn}, {}));
  script.push_back(Smo::PartitionTable("S1", "S1lo", "S1hi", kKeyColumn,
                                       CompareOp::kLt,
                                       Value(static_cast<int64_t>(250))));
  script.push_back(Smo::UnionTables("S1lo", "S1hi", "S1"));
  script.push_back(Smo::RenameTable("T1", "T1v2"));
  script.push_back(Smo::CopyTable("R0", "R0backup"));

  auto serial_catalog = fresh_catalog();
  {
    EngineOptions options;
    options.num_threads = 1;
    options.validate_outputs = true;
    EvolutionEngine engine(serial_catalog.get(), nullptr, options);
    CODS_CHECK_OK(engine.ApplyAll(script));
  }

  for (int threads : kThreadCounts) {
    auto catalog = fresh_catalog();
    EngineOptions options;
    options.num_threads = threads;
    options.validate_outputs = true;
    options.plan_scripts = true;  // ApplyAll routes through the planner
    EvolutionEngine engine(catalog.get(), nullptr, options);
    Status st = engine.ApplyAll(script);
    ASSERT_TRUE(st.ok()) << st.ToString();
    ASSERT_EQ(serial_catalog->TableNames(), catalog->TableNames())
        << "planned script @" << threads;
    for (const std::string& name : serial_catalog->TableNames()) {
      ExpectTablesIdentical(*serial_catalog->GetTable(name).ValueOrDie(),
                            *catalog->GetTable(name).ValueOrDie(),
                            "planned script table " + name + " @" +
                                std::to_string(threads));
    }
  }
}

}  // namespace
}  // namespace cods

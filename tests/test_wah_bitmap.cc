// Unit and property tests for the WAH compressed bitmap: append paths,
// canonical form, point/bulk reads, iterators, and randomized
// equivalence against the uncompressed oracle.

#include "bitmap/wah_bitmap.h"

#include <vector>

#include "bitmap/plain_bitmap.h"
#include "common/random.h"
#include "gtest/gtest.h"

namespace cods {
namespace {

TEST(WahBitmap, EmptyBitmap) {
  WahBitmap bm;
  EXPECT_EQ(bm.size(), 0u);
  EXPECT_TRUE(bm.empty());
  EXPECT_EQ(bm.CountOnes(), 0u);
  EXPECT_EQ(bm.FirstSetBit(), 0u);
  EXPECT_TRUE(bm.ToBools().empty());
}

TEST(WahBitmap, AppendSingleBits) {
  WahBitmap bm;
  bm.AppendBit(true);
  bm.AppendBit(false);
  bm.AppendBit(true);
  EXPECT_EQ(bm.size(), 3u);
  EXPECT_TRUE(bm.Get(0));
  EXPECT_FALSE(bm.Get(1));
  EXPECT_TRUE(bm.Get(2));
  EXPECT_EQ(bm.CountOnes(), 2u);
}

TEST(WahBitmap, AppendRunCrossesGroupBoundary) {
  WahBitmap bm;
  bm.AppendRun(true, 100);
  bm.AppendRun(false, 100);
  EXPECT_EQ(bm.size(), 200u);
  EXPECT_EQ(bm.CountOnes(), 100u);
  for (uint64_t i = 0; i < 100; ++i) {
    EXPECT_TRUE(bm.Get(i)) << i;
    EXPECT_FALSE(bm.Get(100 + i)) << i;
  }
}

TEST(WahBitmap, LongZeroRunCompressesToOneWord) {
  WahBitmap bm;
  bm.AppendRun(false, 63 * 1000);
  // One fill word covering 1000 groups.
  EXPECT_EQ(bm.NumWords(), 1u);
  EXPECT_EQ(bm.size(), 63u * 1000);
  EXPECT_EQ(bm.CountOnes(), 0u);
}

TEST(WahBitmap, LongOneRunCompressesToOneWord) {
  WahBitmap bm;
  bm.AppendRun(true, 63 * 500);
  EXPECT_EQ(bm.NumWords(), 1u);
  EXPECT_EQ(bm.CountOnes(), 63u * 500);
  EXPECT_EQ(bm.FirstSetBit(), 0u);
}

TEST(WahBitmap, AdjacentFillsMerge) {
  WahBitmap bm;
  bm.AppendRun(false, 63);
  bm.AppendRun(false, 63 * 2);
  bm.AppendRun(false, 63 * 3);
  EXPECT_EQ(bm.NumWords(), 1u);
  EXPECT_EQ(wah::FillGroups(bm.words()[0]), 6u);
}

TEST(WahBitmap, CompletedHomogeneousLiteralBecomesFill) {
  WahBitmap bm;
  for (int i = 0; i < 63; ++i) bm.AppendBit(true);
  ASSERT_EQ(bm.NumWords(), 1u);
  EXPECT_TRUE(wah::IsFill(bm.words()[0]));
  EXPECT_TRUE(wah::FillValue(bm.words()[0]));
}

TEST(WahBitmap, AppendSetBitPadsZeros) {
  WahBitmap bm;
  bm.AppendSetBit(1000);
  EXPECT_EQ(bm.size(), 1001u);
  EXPECT_EQ(bm.CountOnes(), 1u);
  EXPECT_EQ(bm.FirstSetBit(), 1000u);
  EXPECT_FALSE(bm.Get(999));
  EXPECT_TRUE(bm.Get(1000));
}

TEST(WahBitmap, FromPositionsRoundTrip) {
  std::vector<uint64_t> positions = {0, 5, 62, 63, 64, 200, 1000, 12345};
  WahBitmap bm = WahBitmap::FromPositions(positions, 20000);
  EXPECT_EQ(bm.size(), 20000u);
  EXPECT_EQ(bm.CountOnes(), positions.size());
  EXPECT_EQ(bm.SetPositions(), positions);
}

TEST(WahBitmap, FromBoolsRoundTrip) {
  std::vector<bool> bits;
  Rng rng(7);
  for (int i = 0; i < 500; ++i) bits.push_back(rng.NextBool(0.3));
  WahBitmap bm = WahBitmap::FromBools(bits);
  EXPECT_EQ(bm.ToBools(), bits);
}

TEST(WahBitmap, EqualsComparesContent) {
  WahBitmap a = WahBitmap::FromPositions({1, 2, 3}, 100);
  WahBitmap b = WahBitmap::FromPositions({1, 2, 3}, 100);
  WahBitmap c = WahBitmap::FromPositions({1, 2, 4}, 100);
  EXPECT_EQ(a, b);
  EXPECT_FALSE(a.Equals(c));
}

TEST(WahBitmap, CanonicalFormIndependentOfAppendPath) {
  // Bit-by-bit vs run appends must produce identical words.
  WahBitmap by_bits;
  for (int i = 0; i < 200; ++i) by_bits.AppendBit(i >= 50 && i < 150);
  WahBitmap by_runs;
  by_runs.AppendRun(false, 50);
  by_runs.AppendRun(true, 100);
  by_runs.AppendRun(false, 50);
  EXPECT_EQ(by_bits, by_runs);
  EXPECT_EQ(by_bits.words(), by_runs.words());
}

TEST(WahBitmap, ConcatMatchesAppendedContent) {
  WahBitmap a = WahBitmap::FromPositions({0, 70, 99}, 100);
  WahBitmap b = WahBitmap::FromPositions({5, 63}, 200);
  WahBitmap joined = a;
  joined.Concat(b);
  EXPECT_EQ(joined.size(), 300u);
  EXPECT_EQ(joined.SetPositions(),
            (std::vector<uint64_t>{0, 70, 99, 105, 163}));
}

TEST(WahBitmap, ConcatWithEmptySides) {
  WahBitmap a = WahBitmap::FromPositions({1}, 10);
  WahBitmap empty;
  WahBitmap left = a;
  left.Concat(empty);
  EXPECT_EQ(left, a);
  WahBitmap right = empty;
  right.Concat(a);
  EXPECT_EQ(right, a);
}

TEST(WahBitmap, ConcatGroupAlignedSplicesWords) {
  // Left side ends exactly on a group boundary: the word-splice fast
  // path must produce the same canonical form as bit-by-bit appending.
  WahBitmap left;
  left.AppendRun(false, 63 * 4);
  left.AppendSetBit(63 * 4);       // literal group with one bit...
  left.AppendRun(false, 63 - 1);   // ...completed to the boundary
  ASSERT_EQ(left.size() % 63, 0u);
  WahBitmap right;
  right.AppendRun(true, 63 * 2);
  right.AppendSetBit(63 * 2 + 5);
  right.AppendRun(false, 40);      // partial tail carried over
  WahBitmap joined = left;
  joined.Concat(right);

  WahBitmap oracle;
  std::vector<bool> bits = left.ToBools();
  std::vector<bool> rbits = right.ToBools();
  bits.insert(bits.end(), rbits.begin(), rbits.end());
  EXPECT_EQ(joined, WahBitmap::FromBools(bits));
  EXPECT_EQ(joined.words(), WahBitmap::FromBools(bits).words());
}

TEST(WahBitmap, ConcatMergesBoundaryFills) {
  WahBitmap left, right;
  left.AppendRun(false, 63 * 3);
  right.AppendRun(false, 63 * 5);
  WahBitmap joined = left;
  joined.Concat(right);
  EXPECT_EQ(joined.NumWords(), 1u);  // single merged zero fill
  EXPECT_EQ(joined.size(), 63u * 8);
}

TEST(WahBitmap, ConcatSelfDoubles) {
  WahBitmap a = WahBitmap::FromPositions({2, 64, 100}, 130);
  WahBitmap expected = a;
  expected.Concat(WahBitmap(a));
  a.Concat(a);
  EXPECT_EQ(a, expected);
  EXPECT_EQ(a.SetPositions(),
            (std::vector<uint64_t>{2, 64, 100, 132, 194, 230}));
}

TEST(WahBitmap, AppendBitsMatchesBitByBit) {
  for (uint64_t lead : {0ull, 1ull, 62ull, 63ull, 100ull}) {
    WahBitmap via_bits, via_words;
    via_bits.AppendRun(true, lead);
    via_words.AppendRun(true, lead);
    const uint64_t payload = 0x5a5a5a5a5a5a5a5aull & wah::kPayloadMask;
    for (uint64_t nbits : {1ull, 17ull, 63ull}) {
      via_words.AppendBits(payload, nbits);
      for (uint64_t i = 0; i < nbits; ++i) {
        via_bits.AppendBit((payload >> i) & 1);
      }
    }
    EXPECT_EQ(via_words, via_bits) << "lead=" << lead;
  }
}

TEST(WahBitmap, IsAllZerosAndAllOnes) {
  WahBitmap empty;
  EXPECT_TRUE(empty.IsAllZeros());
  EXPECT_TRUE(empty.IsAllOnes());  // vacuously

  WahBitmap zeros;
  zeros.AppendRun(false, 63 * 100 + 3);
  EXPECT_TRUE(zeros.IsAllZeros());
  EXPECT_FALSE(zeros.IsAllOnes());

  WahBitmap ones;
  ones.AppendRun(true, 63 * 100 + 3);
  EXPECT_FALSE(ones.IsAllZeros());
  EXPECT_TRUE(ones.IsAllOnes());

  WahBitmap one_bit = WahBitmap::FromPositions({63 * 99}, 63 * 100);
  EXPECT_FALSE(one_bit.IsAllZeros());
  EXPECT_FALSE(one_bit.IsAllOnes());

  // Set bit only in the partial tail.
  WahBitmap tail_bit = WahBitmap::FromPositions({63 * 2 + 1}, 63 * 2 + 10);
  EXPECT_FALSE(tail_bit.IsAllZeros());
}

TEST(WahBitmap, ReserveDoesNotChangeContent) {
  WahBitmap a = WahBitmap::FromPositions({1, 200, 4000}, 5000);
  WahBitmap b = a;
  b.Reserve(1024);
  EXPECT_EQ(a, b);
  b.AppendRun(true, 10);
  EXPECT_EQ(b.size(), 5010u);
}

TEST(WahBitmap, FirstSetBitOnAllZeros) {
  WahBitmap bm;
  bm.AppendRun(false, 500);
  EXPECT_EQ(bm.FirstSetBit(), 500u);  // == size(): no set bit
}

TEST(WahDecoder, WalksRunsAndLiterals) {
  WahBitmap bm;
  bm.AppendRun(false, 63 * 4);
  bm.AppendBit(true);
  bm.AppendRun(false, 62);  // completes a literal group with one set bit
  bm.AppendRun(true, 63 * 2);
  WahDecoder dec(bm);
  ASSERT_FALSE(dec.exhausted());
  EXPECT_TRUE(dec.is_fill());
  EXPECT_FALSE(dec.fill_value());
  EXPECT_EQ(dec.remaining_groups(), 4u);
  dec.Consume(4);
  ASSERT_FALSE(dec.exhausted());
  EXPECT_FALSE(dec.is_fill());
  EXPECT_EQ(dec.group_payload(), 1u);
  dec.Consume(1);
  ASSERT_FALSE(dec.exhausted());
  EXPECT_TRUE(dec.is_fill());
  EXPECT_TRUE(dec.fill_value());
  dec.Consume(2);
  EXPECT_TRUE(dec.exhausted());
}

TEST(WahDecoder, PartialConsumeOfFill) {
  WahBitmap bm;
  bm.AppendRun(false, 63 * 10);
  WahDecoder dec(bm);
  dec.Consume(3);
  EXPECT_EQ(dec.remaining_groups(), 7u);
  dec.Consume(7);
  EXPECT_TRUE(dec.exhausted());
}

TEST(WahSetBitIterator, EnumeratesAllSetBits) {
  std::vector<uint64_t> positions = {3, 62, 63, 126, 500, 501, 502, 9999};
  WahBitmap bm = WahBitmap::FromPositions(positions, 10000);
  WahSetBitIterator it(bm);
  std::vector<uint64_t> got;
  uint64_t pos;
  while (it.Next(&pos)) got.push_back(pos);
  EXPECT_EQ(got, positions);
}

TEST(WahRunIterator, ProducesMaximalRuns) {
  WahBitmap bm;
  bm.AppendRun(false, 100);
  bm.AppendRun(true, 200);
  bm.AppendRun(false, 63);
  bm.AppendRun(true, 1);
  WahRunIterator it(bm);
  WahRunIterator::Run run;
  ASSERT_TRUE(it.Next(&run));
  EXPECT_EQ(run.value, false);
  EXPECT_EQ(run.start, 0u);
  EXPECT_EQ(run.length, 100u);
  ASSERT_TRUE(it.Next(&run));
  EXPECT_EQ(run.value, true);
  EXPECT_EQ(run.start, 100u);
  EXPECT_EQ(run.length, 200u);
  ASSERT_TRUE(it.Next(&run));
  EXPECT_EQ(run.value, false);
  EXPECT_EQ(run.length, 63u);
  ASSERT_TRUE(it.Next(&run));
  EXPECT_EQ(run.value, true);
  EXPECT_EQ(run.length, 1u);
  EXPECT_FALSE(it.Next(&run));
}

TEST(WahRunIterator, RunsPartitionTheDomain) {
  Rng rng(11);
  WahBitmap bm;
  for (int i = 0; i < 1000; ++i) bm.AppendBit(rng.NextBool(0.5));
  WahRunIterator it(bm);
  WahRunIterator::Run run;
  uint64_t expected_start = 0;
  bool last_value = false;
  bool first = true;
  while (it.Next(&run)) {
    EXPECT_EQ(run.start, expected_start);
    EXPECT_GT(run.length, 0u);
    if (!first) EXPECT_NE(run.value, last_value) << "runs must alternate";
    expected_start += run.length;
    last_value = run.value;
    first = false;
  }
  EXPECT_EQ(expected_start, bm.size());
}

// ---- Property sweep: WAH must agree with the plain-bitmap oracle over a
// grid of sizes and densities.

struct WahParam {
  uint64_t size;
  double density;
};

class WahProperty : public ::testing::TestWithParam<WahParam> {};

TEST_P(WahProperty, MatchesPlainOracle) {
  const WahParam p = GetParam();
  Rng rng(p.size * 1000 + static_cast<uint64_t>(p.density * 100));
  PlainBitmap plain(p.size);
  WahBitmap wah;
  for (uint64_t i = 0; i < p.size; ++i) {
    bool bit = rng.NextBool(p.density);
    if (bit) plain.Set(i);
    wah.AppendBit(bit);
  }
  EXPECT_EQ(wah.size(), plain.size());
  EXPECT_EQ(wah.CountOnes(), plain.CountOnes());
  // Point reads agree on a sample.
  for (int i = 0; i < 100 && p.size > 0; ++i) {
    uint64_t pos = static_cast<uint64_t>(
        rng.Uniform(0, static_cast<int64_t>(p.size) - 1));
    EXPECT_EQ(wah.Get(pos), plain.Get(pos)) << pos;
  }
  // Round trips.
  EXPECT_EQ(PlainBitmap::FromWah(wah).words(), plain.words());
  EXPECT_EQ(plain.ToWah(), wah);
  // Set-position stream agrees.
  std::vector<uint64_t> expected;
  for (uint64_t i = 0; i < p.size; ++i) {
    if (plain.Get(i)) expected.push_back(i);
  }
  EXPECT_EQ(wah.SetPositions(), expected);
}

TEST_P(WahProperty, SparseBitmapsStaySmall) {
  const WahParam p = GetParam();
  if (p.density > 0.01 || p.size < 10000) GTEST_SKIP();
  Rng rng(p.size);
  WahBitmap wah;
  uint64_t ones = 0;
  for (uint64_t i = 0; i < p.size; ++i) {
    bool bit = rng.NextBool(p.density);
    wah.AppendBit(bit);
    ones += bit;
  }
  // Each isolated set bit costs at most 3 words (fill, literal, fill).
  EXPECT_LE(wah.NumWords(), 3 * ones + 3);
}

INSTANTIATE_TEST_SUITE_P(
    SizesAndDensities, WahProperty,
    ::testing::Values(WahParam{0, 0.5}, WahParam{1, 0.5}, WahParam{62, 0.5},
                      WahParam{63, 0.5}, WahParam{64, 0.5},
                      WahParam{126, 0.1}, WahParam{1000, 0.0},
                      WahParam{1000, 1.0}, WahParam{1000, 0.5},
                      WahParam{10000, 0.001}, WahParam{10000, 0.01},
                      WahParam{10000, 0.999}, WahParam{100000, 0.0001},
                      WahParam{100000, 0.5}),
    [](const ::testing::TestParamInfo<WahParam>& info) {
      return "n" + std::to_string(info.param.size) + "_d" +
             std::to_string(static_cast<int>(info.param.density * 10000));
    });

}  // namespace
}  // namespace cods

// Tests for the exec-layer dependency-DAG scheduler: ordering, error
// aggregation and skip propagation, cycle rejection, nesting with
// ParallelFor, and the stats contract.

#include "exec/task_graph.h"

#include <atomic>
#include <mutex>
#include <vector>

#include "gtest/gtest.h"

namespace cods {
namespace {

TEST(TaskGraph, EmptyGraphIsOk) {
  TaskGraph graph;
  EXPECT_TRUE(graph.Run(ExecContext(4)).ok());
  EXPECT_EQ(graph.stats().tasks, 0u);
}

TEST(TaskGraph, RespectsDependencyOrder) {
  for (int threads : {1, 2, 8}) {
    TaskGraph graph;
    std::mutex mu;
    std::vector<int> order;
    auto record = [&](int id) {
      return [&, id]() -> Status {
        std::lock_guard<std::mutex> lock(mu);
        order.push_back(id);
        return Status::OK();
      };
    };
    // Diamond: 0 -> {1, 2} -> 3.
    graph.AddTask(record(0));
    graph.AddTask(record(1));
    graph.AddTask(record(2));
    graph.AddTask(record(3));
    graph.AddDependency(1, 0);
    graph.AddDependency(2, 0);
    graph.AddDependency(3, 1);
    graph.AddDependency(3, 2);
    ASSERT_TRUE(graph.Run(ExecContext(threads)).ok()) << threads;
    ASSERT_EQ(order.size(), 4u);
    EXPECT_EQ(order.front(), 0);
    EXPECT_EQ(order.back(), 3);
    EXPECT_EQ(graph.stats().ran, 4u);
    EXPECT_EQ(graph.stats().edges, 4u);
  }
}

TEST(TaskGraph, SerialRunsInTopologicalIndexOrder) {
  // At num_threads == 1 the ready queue drains deterministically:
  // index order within each wave of the DAG.
  TaskGraph graph;
  std::vector<int> order;
  auto record = [&](int id) {
    return [&, id]() -> Status {
      order.push_back(id);
      return Status::OK();
    };
  };
  graph.AddTask(record(0));
  graph.AddTask(record(1));
  graph.AddTask(record(2));
  graph.AddDependency(0, 2);  // 2 before 0
  ASSERT_TRUE(graph.Run(ExecContext(1)).ok());
  EXPECT_EQ(order, (std::vector<int>{1, 2, 0}));
  EXPECT_EQ(graph.stats().max_parallel, 1);
}

TEST(TaskGraph, FirstErrorByTaskIndexWins) {
  for (int threads : {1, 8}) {
    TaskGraph graph;
    graph.AddTask([] { return Status::OK(); });
    graph.AddTask([] { return Status::InvalidArgument("first"); }, "alpha");
    graph.AddTask([] { return Status::IOError("second"); });
    Status st = graph.Run(ExecContext(threads));
    ASSERT_FALSE(st.ok());
    EXPECT_TRUE(st.IsInvalidArgument()) << st.ToString();
    EXPECT_NE(st.message().find("task #1 (alpha)"), std::string::npos)
        << st.ToString();
    // Independent tasks all run despite the failure.
    EXPECT_EQ(graph.stats().ran, 3u);
    EXPECT_EQ(graph.stats().skipped, 0u);
  }
}

TEST(TaskGraph, FailurePoisonsDependentsTransitively) {
  for (int threads : {1, 8}) {
    TaskGraph graph;
    std::atomic<int> runs{0};
    auto count = [&]() -> Status {
      runs.fetch_add(1);
      return Status::OK();
    };
    graph.AddTask([] { return Status::IOError("boom"); }, "root");
    graph.AddTask(count);  // independent: runs
    graph.AddTask(count);  // depends on 0: skipped
    graph.AddTask(count);  // depends on 2: skipped transitively
    graph.AddDependency(2, 0);
    graph.AddDependency(3, 2);
    Status st = graph.Run(ExecContext(threads));
    EXPECT_TRUE(st.IsIOError()) << st.ToString();
    EXPECT_EQ(runs.load(), 1);
    EXPECT_EQ(graph.stats().skipped, 2u);
    EXPECT_TRUE(graph.task_status(1).ok());
    EXPECT_TRUE(graph.task_status(2).IsCancelled());
    EXPECT_NE(graph.task_status(2).message().find("task #0 (root)"),
              std::string::npos);
    EXPECT_TRUE(graph.task_status(3).IsCancelled());
  }
}

TEST(TaskGraph, CycleIsRejectedWithoutRunningAnything) {
  TaskGraph graph;
  std::atomic<int> runs{0};
  auto count = [&]() -> Status {
    runs.fetch_add(1);
    return Status::OK();
  };
  graph.AddTask(count);
  graph.AddTask(count);
  graph.AddTask(count);
  graph.AddDependency(1, 0);
  graph.AddDependency(2, 1);
  graph.AddDependency(1, 2);  // 1 <-> 2 cycle
  Status st = graph.Run(ExecContext(4));
  EXPECT_TRUE(st.IsInvalidArgument()) << st.ToString();
  EXPECT_NE(st.message().find("cycle"), std::string::npos);
  EXPECT_EQ(runs.load(), 0);
}

TEST(TaskGraph, TasksMayNestParallelFor) {
  // Graph tasks that themselves fan out over the shared pool must not
  // deadlock (both layers let the claiming thread participate).
  TaskGraph graph;
  std::vector<std::atomic<uint64_t>> sums(4);
  for (int t = 0; t < 4; ++t) {
    graph.AddTask([&sums, t]() -> Status {
      ExecContext inner(4);
      return ParallelFor(inner, 0, 1000, 10, [&sums, t](uint64_t i) {
        sums[static_cast<size_t>(t)].fetch_add(i);
        return Status::OK();
      });
    });
  }
  ASSERT_TRUE(graph.Run(ExecContext(4)).ok());
  for (const auto& s : sums) EXPECT_EQ(s.load(), 999u * 1000 / 2);
}

TEST(TaskGraph, StressManyTasksWithChains) {
  // 200 tasks in 8 chains of 25; every chain must run in order.
  constexpr int kChains = 8;
  constexpr int kLen = 25;
  TaskGraph graph;
  std::vector<std::atomic<int>> progress(kChains);
  std::atomic<bool> order_ok{true};
  for (int c = 0; c < kChains; ++c) {
    for (int s = 0; s < kLen; ++s) {
      int id = graph.AddTask([&progress, &order_ok, c, s]() -> Status {
        if (progress[static_cast<size_t>(c)].fetch_add(1) != s) {
          order_ok.store(false);
        }
        return Status::OK();
      });
      if (s > 0) graph.AddDependency(id, id - 1);
    }
  }
  ASSERT_TRUE(graph.Run(ExecContext(8)).ok());
  EXPECT_TRUE(order_ok.load());
  EXPECT_EQ(graph.stats().ran, static_cast<uint64_t>(kChains * kLen));
  EXPECT_GE(graph.stats().max_parallel, 1);
  EXPECT_GT(graph.stats().wall_seconds, 0.0);
}

TEST(TaskGraph, StatsCountRanAndThreads) {
  TaskGraph graph;
  graph.AddTask([] { return Status::OK(); });
  graph.AddTask([] { return Status::OK(); });
  ASSERT_TRUE(graph.Run(ExecContext(3)).ok());
  const TaskGraphStats& stats = graph.stats();
  EXPECT_EQ(stats.tasks, 2u);
  EXPECT_EQ(stats.ran, 2u);
  EXPECT_EQ(stats.threads, 3);
  EXPECT_GE(stats.max_parallel, 1);
  EXPECT_GE(stats.task_seconds, 0.0);
}

}  // namespace
}  // namespace cods

// Tests for the QueryEngine: typed requests (select / count /
// group-by-sum) executed against the TableStore interface — both the
// live Catalog and a StagedCatalog::View mid-script — plus projection,
// WHERE narrowing, bind-time errors, and request rendering.

#include "query/query_engine.h"

#include "evolution/engine.h"
#include "gtest/gtest.h"
#include "plan/staged_catalog.h"
#include "test_util.h"

namespace cods {
namespace {

using ::cods::testing::Figure1TableR;
using ::cods::testing::MakeTable;

Catalog MakeCatalogWithR() {
  Catalog catalog;
  CODS_CHECK_OK(catalog.AddTable(Figure1TableR()));
  return catalog;
}

ExprPtr JonesExpr() {
  return Expr::Compare("Employee", CompareOp::kEq, Value("Jones"));
}

TEST(QueryEngine, CountAgainstCatalog) {
  Catalog catalog = MakeCatalogWithR();
  QueryEngine engine(&catalog);
  auto result = engine.Execute(QueryRequest::Count("R", JonesExpr()));
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  EXPECT_EQ(result->verb, QueryRequest::Verb::kCount);
  EXPECT_EQ(result->count, 3u);
  // Null WHERE counts everything without touching bitmaps.
  EXPECT_EQ(engine.Execute(QueryRequest::Count("R")).ValueOrDie().count, 7u);
}

TEST(QueryEngine, SelectMaterializesMatchingRows) {
  Catalog catalog = MakeCatalogWithR();
  QueryEngine engine(&catalog);
  auto result = engine.Execute(
      QueryRequest::Select("R", {}, JonesExpr(), "jones"));
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  ASSERT_NE(result->table, nullptr);
  EXPECT_EQ(result->table->name(), "jones");
  EXPECT_EQ(result->table->rows(), 3u);
  EXPECT_TRUE(result->table->ValidateInvariants().ok());
  for (const Row& row : result->table->Materialize()) {
    EXPECT_EQ(row[0], Value("Jones"));
  }
}

TEST(QueryEngine, SelectProjectsColumnsInRequestOrder) {
  Catalog catalog = MakeCatalogWithR();
  QueryEngine engine(&catalog);
  auto result = engine.Execute(QueryRequest::Select(
      "R", {"Skill", "Employee"}, JonesExpr(), "skills"));
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  const Table& t = *result->table;
  ASSERT_EQ(t.num_columns(), 2u);
  EXPECT_EQ(t.schema().column(0).name, "Skill");
  EXPECT_EQ(t.schema().column(1).name, "Employee");
  EXPECT_EQ(t.rows(), 3u);
  EXPECT_EQ(t.GetValue(0, 0), Value("Typing"));
  EXPECT_EQ(t.GetValue(0, 1), Value("Jones"));
}

TEST(QueryEngine, SelectWithoutWhereSharesColumns) {
  Catalog catalog = MakeCatalogWithR();
  QueryEngine engine(&catalog);
  auto result =
      engine.Execute(QueryRequest::Select("R", {"Address"}, nullptr, "a"));
  ASSERT_TRUE(result.ok());
  // Projection without selection is pointer sharing, not a rebuild.
  EXPECT_EQ(result->table->column(0).get(),
            catalog.GetTable("R").ValueOrDie()->column(2).get());
  EXPECT_EQ(result->table->rows(), 7u);
}

TEST(QueryEngine, ProjectionKeepsKeyOnlyWhenRetained) {
  Schema schema({{"k", DataType::kInt64, false},
                 {"v", DataType::kInt64, false}},
                {"k"});
  std::vector<Row> rows;
  for (int64_t i = 0; i < 10; ++i) rows.push_back({Value(i), Value(i % 3)});
  Catalog catalog;
  CODS_CHECK_OK(catalog.AddTable(MakeTable("T", schema, rows)));
  QueryEngine engine(&catalog);
  auto keyed =
      engine.Execute(QueryRequest::Select("T", {"k", "v"}, nullptr, "p1"));
  ASSERT_TRUE(keyed.ok());
  EXPECT_EQ(keyed->table->schema().key(), std::vector<std::string>{"k"});
  auto unkeyed =
      engine.Execute(QueryRequest::Select("T", {"v"}, nullptr, "p2"));
  ASSERT_TRUE(unkeyed.ok());
  EXPECT_TRUE(unkeyed->table->schema().key().empty());
}

TEST(QueryEngine, GroupBySumWithAndWithoutWhere) {
  Schema schema({{"g", DataType::kString, false},
                 {"m", DataType::kInt64, false}},
                {});
  Catalog catalog;
  CODS_CHECK_OK(catalog.AddTable(MakeTable(
      "T", schema,
      {{Value("a"), Value(int64_t{1})},
       {Value("a"), Value(int64_t{2})},
       {Value("b"), Value(int64_t{10})},
       {Value("b"), Value(int64_t{20})},
       {Value("c"), Value(int64_t{5})}})));
  QueryEngine engine(&catalog);
  auto all = engine.Execute(QueryRequest::GroupBySum("T", "g", "m"));
  ASSERT_TRUE(all.ok()) << all.status().ToString();
  ASSERT_EQ(all->groups.size(), 3u);
  EXPECT_EQ(all->groups[0], (std::pair<Value, double>{Value("a"), 3.0}));
  EXPECT_EQ(all->groups[1], (std::pair<Value, double>{Value("b"), 30.0}));
  EXPECT_EQ(all->groups[2], (std::pair<Value, double>{Value("c"), 5.0}));
  // WHERE narrows each group: only m >= 2 rows contribute.
  auto narrowed = engine.Execute(QueryRequest::GroupBySum(
      "T", "g", "m",
      Expr::Compare("m", CompareOp::kGe, Value(int64_t{2}))));
  ASSERT_TRUE(narrowed.ok());
  EXPECT_EQ(narrowed->groups[0].second, 2.0);
  EXPECT_EQ(narrowed->groups[1].second, 30.0);
  EXPECT_EQ(narrowed->groups[2].second, 5.0);
  // A WHERE that leaves a group no qualifying rows drops the group
  // entirely (SQL GROUP BY semantics), rather than reporting a
  // phantom 0.
  auto only_b = engine.Execute(QueryRequest::GroupBySum(
      "T", "g", "m",
      Expr::Compare("m", CompareOp::kGe, Value(int64_t{10}))));
  ASSERT_TRUE(only_b.ok());
  ASSERT_EQ(only_b->groups.size(), 1u);
  EXPECT_EQ(only_b->groups[0], (std::pair<Value, double>{Value("b"), 30.0}));
  // String measures are a type error.
  EXPECT_TRUE(engine.Execute(QueryRequest::GroupBySum("T", "g", "g"))
                  .status()
                  .IsTypeError());
}

TEST(QueryEngine, ErrorsNameTheMissingPiece) {
  Catalog catalog = MakeCatalogWithR();
  QueryEngine engine(&catalog);
  auto no_table = engine.Execute(QueryRequest::Count("Nope"));
  ASSERT_FALSE(no_table.ok());
  EXPECT_NE(no_table.status().message().find("Nope"), std::string::npos);
  // Unknown column binds (and fails) at execution time.
  auto no_column = engine.Execute(QueryRequest::Count(
      "R", Expr::Compare("Ghost", CompareOp::kEq, Value("x"))));
  ASSERT_FALSE(no_column.ok());
  EXPECT_NE(no_column.status().message().find("Ghost"), std::string::npos);
}

TEST(QueryEngine, RunsAgainstStagedCatalogView) {
  // The acceptance shape: the same request answers differently through
  // a StagedCatalog::View that has staged (uncommitted) evolution.
  Catalog catalog = MakeCatalogWithR();
  StagedCatalog staged(&catalog);
  std::vector<CatalogEffect> log;
  StagedCatalog::View view = staged.MakeView(&log);

  // Stage an overlay change: drop R, publish a filtered replacement.
  QueryEngine base_engine(&catalog);
  auto jones = QueryEngine::SelectRows(
      *catalog.GetTable("R").ValueOrDie(), {}, JonesExpr(), "R");
  ASSERT_TRUE(jones.ok());
  view.PutTable(jones.ValueOrDie());

  QueryRequest count_all = QueryRequest::Count("R");
  QueryEngine staged_engine(&view);
  EXPECT_EQ(staged_engine.Execute(count_all).ValueOrDie().count, 3u);
  // The base catalog is untouched until the effects replay.
  EXPECT_EQ(base_engine.Execute(count_all).ValueOrDie().count, 7u);
  ASSERT_EQ(log.size(), 1u);

  // A nested expression executes identically through the view.
  QueryRequest nested = QueryRequest::Count(
      "R", Expr::And({Expr::Compare("Address", CompareOp::kEq,
                                    Value("425 Grant Ave")),
                      Expr::Not(Expr::In("Skill", {Value("Typing")}))}));
  EXPECT_EQ(staged_engine.Execute(nested).ValueOrDie().count, 2u);
}

TEST(QueryEngine, QueryAfterEvolutionSeesNewSchema) {
  // Queries interleave with SMOs against the same catalog: evolve, then
  // query the produced tables through the same store interface.
  Catalog catalog = MakeCatalogWithR();
  EvolutionEngine engine(&catalog, nullptr);
  Status st = engine.ApplyAll({Smo::DecomposeTable(
      "R", "S", {"Employee", "Skill"}, {}, "T", {"Employee", "Address"},
      {"Employee"})});
  ASSERT_TRUE(st.ok()) << st.ToString();
  QueryEngine queries(&catalog);
  auto addresses = queries.Execute(QueryRequest::Select(
      "T", {"Address"},
      Expr::Compare("Employee", CompareOp::kEq, Value("Jones")), "addr"));
  ASSERT_TRUE(addresses.ok()) << addresses.status().ToString();
  EXPECT_EQ(addresses->table->rows(), 1u);
  EXPECT_EQ(addresses->table->GetValue(0, 0), Value("425 Grant Ave"));
}

TEST(QueryEngine, RequestToStringRoundTripsShape) {
  QueryRequest select = QueryRequest::Select(
      "R", {"a", "b"},
      Expr::And({Expr::Compare("a", CompareOp::kEq, Value("x")),
                 Expr::Or({Expr::Compare("b", CompareOp::kGt,
                                         Value(int64_t{3})),
                           Expr::Not(Expr::In("c", {Value(int64_t{1}),
                                                    Value(int64_t{2})}))})}));
  EXPECT_EQ(select.ToString(),
            "SELECT a, b FROM R WHERE a = 'x' AND (b > 3 OR NOT c IN (1, 2))");
  EXPECT_EQ(QueryRequest::Count("R").ToString(), "SELECT COUNT(*) FROM R");
  EXPECT_EQ(QueryRequest::GroupBySum("T", "g", "m").ToString(),
            "SELECT g, SUM(m) FROM T GROUP BY g");
}

}  // namespace
}  // namespace cods

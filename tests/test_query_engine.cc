// Tests for the QueryEngine: typed requests (select / count /
// group-by-sum) executed against the TableStore interface — both the
// live Catalog and a StagedCatalog::View mid-script — plus projection,
// WHERE narrowing, bind-time errors, and request rendering.

#include "query/query_engine.h"

#include "concurrency/snapshot_catalog.h"
#include "evolution/engine.h"
#include "gtest/gtest.h"
#include "plan/staged_catalog.h"
#include "query/join.h"
#include "test_util.h"

namespace cods {
namespace {

using ::cods::testing::Figure1TableR;
using ::cods::testing::MakeTable;

Catalog MakeCatalogWithR() {
  Catalog catalog;
  CODS_CHECK_OK(catalog.AddTable(Figure1TableR()));
  return catalog;
}

ExprPtr JonesExpr() {
  return Expr::Compare("Employee", CompareOp::kEq, Value("Jones"));
}

TEST(QueryEngine, CountAgainstCatalog) {
  Catalog catalog = MakeCatalogWithR();
  QueryEngine engine(&catalog);
  auto result = engine.Execute(QueryRequest::Count("R", JonesExpr()));
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  EXPECT_EQ(result->verb, QueryRequest::Verb::kCount);
  EXPECT_EQ(result->count, 3u);
  // Null WHERE counts everything without touching bitmaps.
  EXPECT_EQ(engine.Execute(QueryRequest::Count("R")).ValueOrDie().count, 7u);
}

TEST(QueryEngine, SelectMaterializesMatchingRows) {
  Catalog catalog = MakeCatalogWithR();
  QueryEngine engine(&catalog);
  auto result = engine.Execute(
      QueryRequest::Select("R", {}, JonesExpr(), "jones"));
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  ASSERT_NE(result->table, nullptr);
  EXPECT_EQ(result->table->name(), "jones");
  EXPECT_EQ(result->table->rows(), 3u);
  EXPECT_TRUE(result->table->ValidateInvariants().ok());
  for (const Row& row : result->table->Materialize()) {
    EXPECT_EQ(row[0], Value("Jones"));
  }
}

TEST(QueryEngine, SelectProjectsColumnsInRequestOrder) {
  Catalog catalog = MakeCatalogWithR();
  QueryEngine engine(&catalog);
  auto result = engine.Execute(QueryRequest::Select(
      "R", {"Skill", "Employee"}, JonesExpr(), "skills"));
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  const Table& t = *result->table;
  ASSERT_EQ(t.num_columns(), 2u);
  EXPECT_EQ(t.schema().column(0).name, "Skill");
  EXPECT_EQ(t.schema().column(1).name, "Employee");
  EXPECT_EQ(t.rows(), 3u);
  EXPECT_EQ(t.GetValue(0, 0), Value("Typing"));
  EXPECT_EQ(t.GetValue(0, 1), Value("Jones"));
}

TEST(QueryEngine, SelectWithoutWhereSharesColumns) {
  Catalog catalog = MakeCatalogWithR();
  QueryEngine engine(&catalog);
  auto result =
      engine.Execute(QueryRequest::Select("R", {"Address"}, nullptr, "a"));
  ASSERT_TRUE(result.ok());
  // Projection without selection is pointer sharing, not a rebuild.
  EXPECT_EQ(result->table->column(0).get(),
            catalog.GetTable("R").ValueOrDie()->column(2).get());
  EXPECT_EQ(result->table->rows(), 7u);
}

TEST(QueryEngine, ProjectionKeepsKeyOnlyWhenRetained) {
  Schema schema({{"k", DataType::kInt64, false},
                 {"v", DataType::kInt64, false}},
                {"k"});
  std::vector<Row> rows;
  for (int64_t i = 0; i < 10; ++i) rows.push_back({Value(i), Value(i % 3)});
  Catalog catalog;
  CODS_CHECK_OK(catalog.AddTable(MakeTable("T", schema, rows)));
  QueryEngine engine(&catalog);
  auto keyed =
      engine.Execute(QueryRequest::Select("T", {"k", "v"}, nullptr, "p1"));
  ASSERT_TRUE(keyed.ok());
  EXPECT_EQ(keyed->table->schema().key(), std::vector<std::string>{"k"});
  auto unkeyed =
      engine.Execute(QueryRequest::Select("T", {"v"}, nullptr, "p2"));
  ASSERT_TRUE(unkeyed.ok());
  EXPECT_TRUE(unkeyed->table->schema().key().empty());
}

TEST(QueryEngine, GroupBySumWithAndWithoutWhere) {
  Schema schema({{"g", DataType::kString, false},
                 {"m", DataType::kInt64, false}},
                {});
  Catalog catalog;
  CODS_CHECK_OK(catalog.AddTable(MakeTable(
      "T", schema,
      {{Value("a"), Value(int64_t{1})},
       {Value("a"), Value(int64_t{2})},
       {Value("b"), Value(int64_t{10})},
       {Value("b"), Value(int64_t{20})},
       {Value("c"), Value(int64_t{5})}})));
  QueryEngine engine(&catalog);
  auto all = engine.Execute(QueryRequest::GroupBySum("T", "g", "m"));
  ASSERT_TRUE(all.ok()) << all.status().ToString();
  ASSERT_EQ(all->groups.size(), 3u);
  EXPECT_EQ(all->groups[0], (GroupRow{Value("a"), {Value(3.0)}}));
  EXPECT_EQ(all->groups[1], (GroupRow{Value("b"), {Value(30.0)}}));
  EXPECT_EQ(all->groups[2], (GroupRow{Value("c"), {Value(5.0)}}));
  // WHERE narrows each group: only m >= 2 rows contribute.
  auto narrowed = engine.Execute(QueryRequest::GroupBySum(
      "T", "g", "m",
      Expr::Compare("m", CompareOp::kGe, Value(int64_t{2}))));
  ASSERT_TRUE(narrowed.ok());
  EXPECT_EQ(narrowed->groups[0].aggregates[0], Value(2.0));
  EXPECT_EQ(narrowed->groups[1].aggregates[0], Value(30.0));
  EXPECT_EQ(narrowed->groups[2].aggregates[0], Value(5.0));
  // A WHERE that leaves a group no qualifying rows drops the group
  // entirely (SQL GROUP BY semantics), rather than reporting a
  // phantom 0.
  auto only_b = engine.Execute(QueryRequest::GroupBySum(
      "T", "g", "m",
      Expr::Compare("m", CompareOp::kGe, Value(int64_t{10}))));
  ASSERT_TRUE(only_b.ok());
  ASSERT_EQ(only_b->groups.size(), 1u);
  EXPECT_EQ(only_b->groups[0], (GroupRow{Value("b"), {Value(30.0)}}));
  // String measures are a type error.
  EXPECT_TRUE(engine.Execute(QueryRequest::GroupBySum("T", "g", "g"))
                  .status()
                  .IsTypeError());
}

TEST(QueryEngine, GroupByMultiAggregate) {
  Schema schema({{"g", DataType::kString, false},
                 {"m", DataType::kInt64, false}},
                {});
  Catalog catalog;
  CODS_CHECK_OK(catalog.AddTable(MakeTable(
      "T", schema,
      {{Value("a"), Value(int64_t{1})},
       {Value("a"), Value(int64_t{2})},
       {Value("b"), Value(int64_t{10})},
       {Value("b"), Value(int64_t{20})},
       {Value("b"), Value(int64_t{30})},
       {Value("c"), Value(int64_t{5})}})));
  QueryEngine engine(&catalog);
  auto result = engine.Execute(QueryRequest::GroupBy(
      "T", "g",
      {AggregateSpec::Sum("m"), AggregateSpec::Count(), AggregateSpec::Min("m"),
       AggregateSpec::Max("m"), AggregateSpec::Avg("m")}));
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  ASSERT_EQ(result->groups.size(), 3u);
  EXPECT_EQ(result->groups[0],
            (GroupRow{Value("a"),
                      {Value(3.0), Value(int64_t{2}), Value(int64_t{1}),
                       Value(int64_t{2}), Value(1.5)}}));
  EXPECT_EQ(result->groups[1],
            (GroupRow{Value("b"),
                      {Value(60.0), Value(int64_t{3}), Value(int64_t{10}),
                       Value(int64_t{30}), Value(20.0)}}));
  EXPECT_EQ(result->groups[2],
            (GroupRow{Value("c"),
                      {Value(5.0), Value(int64_t{1}), Value(int64_t{5}),
                       Value(int64_t{5}), Value(5.0)}}));
  // MIN/MAX run on strings too (total Value order); SUM on a string is
  // still a type error; COUNT(col) equals COUNT(*) (no NULLs).
  auto strings = engine.Execute(QueryRequest::GroupBy(
      "T", "m", {AggregateSpec::Min("g"), AggregateSpec::Count("g")},
      Expr::Compare("m", CompareOp::kLe, Value(int64_t{2}))));
  ASSERT_TRUE(strings.ok()) << strings.status().ToString();
  ASSERT_EQ(strings->groups.size(), 2u);
  EXPECT_EQ(strings->groups[0],
            (GroupRow{Value(int64_t{1}), {Value("a"), Value(int64_t{1})}}));
  EXPECT_TRUE(engine
                  .Execute(QueryRequest::GroupBy("T", "m",
                                                 {AggregateSpec::Avg("g")}))
                  .status()
                  .IsTypeError());
  // An aggregate-free request is rejected.
  EXPECT_FALSE(engine.Execute(QueryRequest::GroupBy("T", "g", {})).ok());
}

TEST(QueryEngine, GroupByDictionaryCompleteGroupsAggregateToNull) {
  // Without a WHERE, output is dictionary-complete: a value with no
  // rows (possible after evolution shares dictionaries) keeps SUM=0 /
  // COUNT=0 — and MIN/MAX/AVG are NULL, not a fabricated value.
  Schema schema({{"g", DataType::kString, false},
                 {"m", DataType::kInt64, false}},
                {});
  Catalog catalog;
  CODS_CHECK_OK(catalog.AddTable(MakeTable(
      "T", schema,
      {{Value("a"), Value(int64_t{4})}, {Value("b"), Value(int64_t{7})}})));
  QueryEngine engine(&catalog);
  auto filtered = QueryEngine::SelectRows(
      *catalog.GetTable("T").ValueOrDie(), {},
      Expr::Compare("g", CompareOp::kNe, Value("b")), "T2");
  ASSERT_TRUE(filtered.ok());
  auto groups = QueryEngine::GroupByRows(
      **filtered, "g",
      {AggregateSpec::Sum("m"), AggregateSpec::Count(), AggregateSpec::Min("m"),
       AggregateSpec::Avg("m")},
      nullptr);
  ASSERT_TRUE(groups.ok()) << groups.status().ToString();
  ASSERT_EQ(groups->size(), 2u);
  EXPECT_EQ((*groups)[0],
            (GroupRow{Value("a"),
                      {Value(4.0), Value(int64_t{1}), Value(int64_t{4}),
                       Value(4.0)}}));
  EXPECT_EQ((*groups)[1],
            (GroupRow{Value("b"),
                      {Value(0.0), Value(int64_t{0}), Value::Null(),
                       Value::Null()}}));
}

TEST(QueryEngine, DuplicateProjectionColumnsAreAnErrorWithPositions) {
  // Defined behavior: a column named twice in the projection — under
  // any pair of references resolving to the same column — errors with
  // both positions, instead of surfacing a schema-construction failure.
  Catalog catalog = MakeCatalogWithR();
  QueryEngine engine(&catalog);
  auto dup = engine.Execute(
      QueryRequest::Select("R", {"Skill", "Employee", "Skill"}, nullptr, "d"));
  ASSERT_FALSE(dup.ok());
  EXPECT_NE(dup.status().message().find("duplicate column 'Skill'"),
            std::string::npos)
      << dup.status().ToString();
  EXPECT_NE(dup.status().message().find("positions 1 and 3"),
            std::string::npos)
      << dup.status().ToString();
  // A qualified and a plain reference to the same column also collide.
  auto mixed = engine.Execute(
      QueryRequest::Select("R", {"R.Skill", "Skill"}, nullptr, "d2"));
  ASSERT_FALSE(mixed.ok());
  EXPECT_NE(mixed.status().message().find("duplicate column 'Skill'"),
            std::string::npos);
}

TEST(QueryEngine, ExplicitlyListedKeyIsProjectedExactlyOnce) {
  Schema schema({{"k", DataType::kInt64, false},
                 {"v", DataType::kInt64, false}},
                {"k"});
  std::vector<Row> rows;
  for (int64_t i = 0; i < 6; ++i) rows.push_back({Value(i), Value(i % 2)});
  Catalog catalog;
  CODS_CHECK_OK(catalog.AddTable(MakeTable("T", schema, rows)));
  QueryEngine engine(&catalog);
  // Naming the key explicitly (even via a qualified reference) yields
  // exactly one key column and keeps the key declaration.
  auto keyed = engine.Execute(
      QueryRequest::Select("T", {"T.k", "v"}, nullptr, "p"));
  ASSERT_TRUE(keyed.ok()) << keyed.status().ToString();
  ASSERT_EQ(keyed->table->num_columns(), 2u);
  EXPECT_EQ(keyed->table->schema().column(0).name, "k");
  EXPECT_EQ(keyed->table->schema().key(), std::vector<std::string>{"k"});
}

TEST(QueryEngine, EmptySelectResultIsARealTableWithSchema) {
  // A filtered-to-empty SELECT returns a real 0-row table whose
  // rendering includes the schema header — distinguishable from a
  // failed query (which returns a Status, never a table).
  Catalog catalog = MakeCatalogWithR();
  QueryEngine engine(&catalog);
  auto empty = engine.Execute(QueryRequest::Select(
      "R", {"Employee"},
      Expr::Compare("Employee", CompareOp::kEq, Value("Nobody")), "none"));
  ASSERT_TRUE(empty.ok()) << empty.status().ToString();
  ASSERT_NE(empty->table, nullptr);
  EXPECT_EQ(empty->table->rows(), 0u);
  EXPECT_EQ(empty->table->num_columns(), 1u);
  std::string rendered = empty->ToString();
  EXPECT_NE(rendered.find("none"), std::string::npos) << rendered;
  EXPECT_NE(rendered.find("Employee"), std::string::npos) << rendered;
  EXPECT_NE(rendered.find("0 rows"), std::string::npos) << rendered;
}

TEST(QueryEngine, ErrorsNameTheMissingPiece) {
  Catalog catalog = MakeCatalogWithR();
  QueryEngine engine(&catalog);
  auto no_table = engine.Execute(QueryRequest::Count("Nope"));
  ASSERT_FALSE(no_table.ok());
  EXPECT_NE(no_table.status().message().find("Nope"), std::string::npos);
  // Unknown column binds (and fails) at execution time.
  auto no_column = engine.Execute(QueryRequest::Count(
      "R", Expr::Compare("Ghost", CompareOp::kEq, Value("x"))));
  ASSERT_FALSE(no_column.ok());
  EXPECT_NE(no_column.status().message().find("Ghost"), std::string::npos);
}

TEST(QueryEngine, RunsAgainstStagedCatalogView) {
  // The acceptance shape: the same request answers differently through
  // a StagedCatalog::View that has staged (uncommitted) evolution.
  Catalog catalog = MakeCatalogWithR();
  StagedCatalog staged(&catalog);
  std::vector<CatalogEffect> log;
  StagedCatalog::View view = staged.MakeView(&log);

  // Stage an overlay change: drop R, publish a filtered replacement.
  QueryEngine base_engine(&catalog);
  auto jones = QueryEngine::SelectRows(
      *catalog.GetTable("R").ValueOrDie(), {}, JonesExpr(), "R");
  ASSERT_TRUE(jones.ok());
  view.PutTable(jones.ValueOrDie());

  QueryRequest count_all = QueryRequest::Count("R");
  QueryEngine staged_engine(&view);
  EXPECT_EQ(staged_engine.Execute(count_all).ValueOrDie().count, 3u);
  // The base catalog is untouched until the effects replay.
  EXPECT_EQ(base_engine.Execute(count_all).ValueOrDie().count, 7u);
  ASSERT_EQ(log.size(), 1u);

  // A nested expression executes identically through the view.
  QueryRequest nested = QueryRequest::Count(
      "R", Expr::And({Expr::Compare("Address", CompareOp::kEq,
                                    Value("425 Grant Ave")),
                      Expr::Not(Expr::In("Skill", {Value("Typing")}))}));
  EXPECT_EQ(staged_engine.Execute(nested).ValueOrDie().count, 2u);
}

TEST(QueryEngine, QueryAfterEvolutionSeesNewSchema) {
  // Queries interleave with SMOs against the same catalog: evolve, then
  // query the produced tables through the same store interface.
  Catalog catalog = MakeCatalogWithR();
  EvolutionEngine engine(&catalog, nullptr);
  Status st = engine.ApplyAll({Smo::DecomposeTable(
      "R", "S", {"Employee", "Skill"}, {}, "T", {"Employee", "Address"},
      {"Employee"})});
  ASSERT_TRUE(st.ok()) << st.ToString();
  QueryEngine queries(&catalog);
  auto addresses = queries.Execute(QueryRequest::Select(
      "T", {"Address"},
      Expr::Compare("Employee", CompareOp::kEq, Value("Jones")), "addr"));
  ASSERT_TRUE(addresses.ok()) << addresses.status().ToString();
  EXPECT_EQ(addresses->table->rows(), 1u);
  EXPECT_EQ(addresses->table->GetValue(0, 0), Value("425 Grant Ave"));
}

Catalog MakeJoinCatalog() {
  Catalog catalog;
  Schema emp({{"Employee", DataType::kString, false},
              {"Skill", DataType::kString, false}},
             {});
  CODS_CHECK_OK(catalog.AddTable(MakeTable(
      "S", emp,
      {{Value("Jones"), Value("Typing")},
       {Value("Jones"), Value("Shorthand")},
       {Value("Ellis"), Value("Alchemy")},
       {Value("Nobody"), Value("Idling")}})));
  Schema addr({{"Employee", DataType::kString, false},
               {"Address", DataType::kString, false}},
              {"Employee"});
  CODS_CHECK_OK(catalog.AddTable(MakeTable(
      "T", addr,
      {{Value("Jones"), Value("425 Grant Ave")},
       {Value("Ellis"), Value("747 Industrial Way")},
       {Value("Harrison"), Value("425 Grant Ave")}})));
  return catalog;
}

TEST(QueryEngine, JoinSelectQualifiesColumnsAndDropsUnmatchedRows) {
  Catalog catalog = MakeJoinCatalog();
  QueryEngine engine(&catalog);
  QueryRequest req = QueryRequest::Select("S", {}, nullptr, "joined");
  req.JoinOn("T", "S.Employee", "T.Employee");
  auto result = engine.Execute(req);
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  const Table& j = *result->table;
  // S's 'Nobody' has no address: inner-join semantics drop the row
  // (MERGE TABLES would raise a foreign-key violation instead).
  EXPECT_EQ(j.rows(), 3u);
  ASSERT_EQ(j.num_columns(), 3u);
  EXPECT_EQ(j.schema().column(0).name, "S.Employee");
  EXPECT_EQ(j.schema().column(1).name, "S.Skill");
  EXPECT_EQ(j.schema().column(2).name, "T.Address");
  EXPECT_TRUE(j.ValidateInvariants().ok());
  EXPECT_EQ(j.GetValue(0, 0), Value("Jones"));
  EXPECT_EQ(j.GetValue(0, 2), Value("425 Grant Ave"));
  EXPECT_EQ(j.GetValue(2, 0), Value("Ellis"));
  EXPECT_EQ(j.GetValue(2, 2), Value("747 Industrial Way"));
}

TEST(QueryEngine, JoinWhereMixesBothSidesAndAliasesTheJoinColumn) {
  Catalog catalog = MakeJoinCatalog();
  QueryEngine engine(&catalog);
  // WHERE references columns of both sides; projection references the
  // ELIDED right join column (T.Employee), which aliases onto
  // S.Employee.
  QueryRequest req = QueryRequest::Select(
      "S", {"T.Employee", "Skill"},
      Expr::And({Expr::Compare("T.Address", CompareOp::kEq,
                               Value("425 Grant Ave")),
                 Expr::Compare("S.Skill", CompareOp::kNe, Value("Typing"))}),
      "mixed");
  req.JoinOn("T", "Employee", "Employee");
  auto result = engine.Execute(req);
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  ASSERT_EQ(result->table->rows(), 1u);
  EXPECT_EQ(result->table->GetValue(0, 0), Value("Jones"));
  EXPECT_EQ(result->table->GetValue(0, 1), Value("Shorthand"));
  // COUNT and GROUP BY run over the join too.
  QueryRequest count = QueryRequest::Count(
      "S", Expr::Compare("T.Address", CompareOp::kEq,
                         Value("425 Grant Ave")));
  count.JoinOn("T", "Employee", "Employee");
  EXPECT_EQ(engine.Execute(count).ValueOrDie().count, 2u);
  QueryRequest grouped = QueryRequest::GroupBy(
      "S", "T.Address", {AggregateSpec::Count()});
  grouped.JoinOn("T", "Employee", "Employee");
  auto groups = engine.Execute(grouped);
  ASSERT_TRUE(groups.ok()) << groups.status().ToString();
  ASSERT_EQ(groups->groups.size(), 2u);
  EXPECT_EQ(groups->groups[0],
            (GroupRow{Value("425 Grant Ave"), {Value(int64_t{2})}}));
  EXPECT_EQ(groups->groups[1],
            (GroupRow{Value("747 Industrial Way"), {Value(int64_t{1})}}));
}

TEST(QueryEngine, JoinRejectsAmbiguityAndSelfJoin) {
  Catalog catalog = MakeJoinCatalog();
  QueryEngine engine(&catalog);
  // Plain 'Employee' is ambiguous across the two sides of the join
  // result — the elided right column aliases, but a plain reference to
  // a column BOTH sides kept must error.
  Schema extra({{"Employee", DataType::kString, false},
                {"Skill", DataType::kString, false}},
               {});
  CODS_CHECK_OK(catalog.AddTable(MakeTable(
      "U", extra, {{Value("Jones"), Value("Typing")}})));
  QueryRequest req = QueryRequest::Select("S", {"Skill"}, nullptr, "x");
  req.JoinOn("U", "S.Employee", "U.Employee");
  auto ambiguous = engine.Execute(req);
  ASSERT_FALSE(ambiguous.ok());
  EXPECT_NE(ambiguous.status().message().find("ambiguous column 'Skill'"),
            std::string::npos)
      << ambiguous.status().ToString();
  QueryRequest self = QueryRequest::Count("S");
  self.JoinOn("S", "Employee", "Employee");
  EXPECT_FALSE(engine.Execute(self).ok());
}

TEST(QueryEngine, BareReferenceToElidedJoinColumnIsAmbiguousWhenShadowed) {
  // O(id, customer_id) JOIN C(id, city) ON O.customer_id = C.id: C.id
  // is elided from the join result, so a bare 'id' would silently
  // suffix-bind to O.id — a DIFFERENT column. SQL semantics: error as
  // ambiguous; qualified references stay exact.
  Schema orders({{"id", DataType::kInt64, false},
                 {"customer_id", DataType::kInt64, false}},
                {"id"});
  Schema customers({{"id", DataType::kInt64, false},
                    {"city", DataType::kString, false}},
                   {"id"});
  Catalog catalog;
  CODS_CHECK_OK(catalog.AddTable(MakeTable(
      "O", orders,
      {{Value(int64_t{100}), Value(int64_t{10})},
       {Value(int64_t{101}), Value(int64_t{20})},
       {Value(int64_t{102}), Value(int64_t{10})}})));
  CODS_CHECK_OK(catalog.AddTable(MakeTable(
      "C", customers,
      {{Value(int64_t{10}), Value("NY")}, {Value(int64_t{20}), Value("SF")}})));
  QueryEngine engine(&catalog);
  QueryRequest bare = QueryRequest::Count(
      "O", Expr::Compare("id", CompareOp::kEq, Value(int64_t{10})));
  bare.JoinOn("C", "O.customer_id", "C.id");
  auto ambiguous = engine.Execute(bare);
  ASSERT_FALSE(ambiguous.ok());
  EXPECT_NE(ambiguous.status().message().find("ambiguous column 'id'"),
            std::string::npos)
      << ambiguous.status().ToString();
  // Qualified: C.id aliases onto the kept join column (= customer_id).
  QueryRequest qualified = QueryRequest::Count(
      "C", Expr::Compare("C.id", CompareOp::kEq, Value(int64_t{10})));
  qualified.JoinOn("O", "C.id", "O.customer_id");
  EXPECT_EQ(engine.Execute(qualified).ValueOrDie().count, 2u);
  // COUNT(*) with no WHERE takes the count-only path: no columns are
  // built, and the answer matches the materializing plan.
  QueryRequest count_all = QueryRequest::Count("O");
  count_all.JoinOn("C", "O.customer_id", "C.id");
  EXPECT_EQ(engine.Execute(count_all).ValueOrDie().count, 3u);
  JoinStats stats;
  EXPECT_EQ(CompressedEquiJoinCount(*catalog.GetTable("O").ValueOrDie(),
                                    *catalog.GetTable("C").ValueOrDie(), 1, 0,
                                    &stats)
                .ValueOrDie(),
            3u);
  EXPECT_EQ(stats.path, "count-only");
}

TEST(QueryEngine, OrderByAndLimit) {
  Schema schema({{"k", DataType::kInt64, false},
                 {"v", DataType::kInt64, false}},
                {});
  Catalog catalog;
  CODS_CHECK_OK(catalog.AddTable(MakeTable(
      "T", schema,
      {{Value(int64_t{0}), Value(int64_t{3})},
       {Value(int64_t{1}), Value(int64_t{1})},
       {Value(int64_t{2}), Value(int64_t{3})},
       {Value(int64_t{3}), Value(int64_t{2})},
       {Value(int64_t{4}), Value(int64_t{1})}})));
  QueryEngine engine(&catalog);
  // Ascending, stable on row position within equal keys.
  QueryRequest asc = QueryRequest::Select("T");
  asc.OrderBy("v");
  auto up = engine.Execute(asc);
  ASSERT_TRUE(up.ok()) << up.status().ToString();
  std::vector<int64_t> ks;
  for (const Row& row : up->table->Materialize()) {
    ks.push_back(row[0].int64());
  }
  EXPECT_EQ(ks, (std::vector<int64_t>{1, 4, 3, 0, 2}));
  // Descending reverses value buckets, not the tiebreak inside them.
  QueryRequest desc = QueryRequest::Select("T");
  desc.OrderBy("v", /*desc=*/true);
  auto down = engine.Execute(desc);
  ASSERT_TRUE(down.ok());
  ks.clear();
  for (const Row& row : down->table->Materialize()) {
    ks.push_back(row[0].int64());
  }
  EXPECT_EQ(ks, (std::vector<int64_t>{0, 2, 3, 1, 4}));
  // LIMIT truncates after the sort; a sort column outside the
  // projection orders the rows but is not part of the result.
  QueryRequest top = QueryRequest::Select("T", {"k"});
  top.OrderBy("v", true).Limit(2);
  auto limited = engine.Execute(top);
  ASSERT_TRUE(limited.ok()) << limited.status().ToString();
  ASSERT_EQ(limited->table->num_columns(), 1u);
  ASSERT_EQ(limited->table->rows(), 2u);
  EXPECT_EQ(limited->table->GetValue(0, 0), Value(int64_t{0}));
  EXPECT_EQ(limited->table->GetValue(1, 0), Value(int64_t{2}));
  // Pure LIMIT keeps input order; LIMIT past the row count is benign;
  // ORDER BY on a count is rejected.
  QueryRequest head = QueryRequest::Select("T");
  head.Limit(3);
  EXPECT_EQ(engine.Execute(head).ValueOrDie().table->rows(), 3u);
  QueryRequest all = QueryRequest::Select("T");
  all.Limit(99);
  EXPECT_EQ(engine.Execute(all).ValueOrDie().table->rows(), 5u);
  QueryRequest bad = QueryRequest::Count("T");
  bad.OrderBy("v");
  EXPECT_FALSE(engine.Execute(bad).ok());
  // A QUALIFIED sort reference binds against the queried table, even
  // though the filtered intermediate is renamed to the output name —
  // with the sort column inside and outside the projection.
  QueryRequest qualified = QueryRequest::Select("T", {"k", "v"});
  qualified.OrderBy("T.v", true).Limit(1);
  auto q = engine.Execute(qualified);
  ASSERT_TRUE(q.ok()) << q.status().ToString();
  EXPECT_EQ(q->table->GetValue(0, 0), Value(int64_t{0}));
  QueryRequest qualified_out = QueryRequest::Select("T", {"k"});
  qualified_out.OrderBy("T.v", true).Limit(1);
  auto q2 = engine.Execute(qualified_out);
  ASSERT_TRUE(q2.ok()) << q2.status().ToString();
  ASSERT_EQ(q2->table->num_columns(), 1u);
  EXPECT_EQ(q2->table->GetValue(0, 0), Value(int64_t{0}));
}

TEST(QueryEngine, OrderByNaNSortsLastAndMixedNumericsInterleave) {
  const double nan = std::numeric_limits<double>::quiet_NaN();
  Schema schema({{"x", DataType::kDouble, false},
                 {"tag", DataType::kInt64, false}},
                {});
  Catalog catalog;
  CODS_CHECK_OK(catalog.AddTable(MakeTable(
      "T", schema,
      {{Value(2.5), Value(int64_t{0})},
       {Value(nan), Value(int64_t{1})},
       {Value(-1.0), Value(int64_t{2})},
       {Value(nan), Value(int64_t{3})},
       {Value(0.5), Value(int64_t{4})}})));
  QueryEngine engine(&catalog);
  QueryRequest asc = QueryRequest::Select("T");
  asc.OrderBy("x");
  auto up = engine.Execute(asc);
  ASSERT_TRUE(up.ok()) << up.status().ToString();
  std::vector<int64_t> tags;
  for (const Row& row : up->table->Materialize()) {
    tags.push_back(row[1].int64());
  }
  // NaNs order after every real number, stable among themselves.
  EXPECT_EQ(tags, (std::vector<int64_t>{2, 4, 0, 1, 3}));
  // DESC: NaNs first (bucket order reversed), tiebreak still by
  // position.
  QueryRequest desc = QueryRequest::Select("T");
  desc.OrderBy("x", true);
  tags.clear();
  for (const Row& row :
       engine.Execute(desc).ValueOrDie().table->Materialize()) {
    tags.push_back(row[1].int64());
  }
  EXPECT_EQ(tags, (std::vector<int64_t>{1, 3, 0, 4, 2}));
}

TEST(QueryEngine, RequestToStringRoundTripsShape) {
  QueryRequest select = QueryRequest::Select(
      "R", {"a", "b"},
      Expr::And({Expr::Compare("a", CompareOp::kEq, Value("x")),
                 Expr::Or({Expr::Compare("b", CompareOp::kGt,
                                         Value(int64_t{3})),
                           Expr::Not(Expr::In("c", {Value(int64_t{1}),
                                                    Value(int64_t{2})}))})}));
  EXPECT_EQ(select.ToString(),
            "SELECT a, b FROM R WHERE a = 'x' AND (b > 3 OR NOT c IN (1, 2))");
  EXPECT_EQ(QueryRequest::Count("R").ToString(), "SELECT COUNT(*) FROM R");
  EXPECT_EQ(QueryRequest::GroupBySum("T", "g", "m").ToString(),
            "SELECT g, SUM(m) FROM T GROUP BY g");
}

// ---- snapshot pinning (src/concurrency/) ----------------------------------
//
// The QueryEngine runs against the TableStore interface, so a pinned
// CatalogRoot is just another store: these cases prove a reader's view
// is the root it pinned, not the root the writer is publishing.

TEST(QueryEngine, PinnedSnapshotKeepsPreEvolutionSchema) {
  SnapshotCatalog serving;
  serving.Reset(MakeCatalogWithR());
  Snapshot pinned = serving.GetSnapshot();

  EvolutionEngine evolution(&serving);
  ASSERT_TRUE(evolution.Apply(Smo::DropColumn("R", "Address")).ok());

  // Through the pin: the old schema, Address included.
  auto old_r = QueryEngine(pinned.store())
                   .Execute(QueryRequest::Select("R"))
                   .ValueOrDie();
  EXPECT_TRUE(old_r.table->schema().HasColumn("Address"));
  // A fresh pin sees the committed evolution.
  Snapshot fresh = serving.GetSnapshot();
  auto new_r = QueryEngine(fresh.store())
                   .Execute(QueryRequest::Select("R"))
                   .ValueOrDie();
  EXPECT_FALSE(new_r.table->schema().HasColumn("Address"));
  EXPECT_EQ(old_r.table->rows(), new_r.table->rows());
}

TEST(QueryEngine, PinnedSnapshotAnswersAfterTableDrop) {
  SnapshotCatalog serving;
  serving.Reset(MakeCatalogWithR());
  Snapshot pinned = serving.GetSnapshot();

  EvolutionEngine evolution(&serving);
  ASSERT_TRUE(evolution.Apply(Smo::DropTable("R")).ok());

  // The dropped table is gone from new pins but fully queryable — data
  // and all — through the old one.
  Snapshot fresh = serving.GetSnapshot();
  EXPECT_TRUE(QueryEngine(fresh.store())
                  .Execute(QueryRequest::Count("R"))
                  .status()
                  .IsKeyError());
  EXPECT_EQ(QueryEngine(pinned.store())
                .Execute(QueryRequest::Count("R", JonesExpr()))
                .ValueOrDie()
                .count,
            3u);
}

TEST(QueryEngine, SnapshotQueriesMatchQuiescedCatalog) {
  // The bit-identical contract: a request through a pinned root equals
  // the same request through a mutable Catalog rebuilt from that root.
  SnapshotCatalog serving;
  serving.Reset(MakeCatalogWithR());
  Snapshot snap = serving.GetSnapshot();
  Catalog quiesced = MaterializeCatalog(snap.root());

  QueryRequest select = QueryRequest::Select("R", {"Skill", "Employee"},
                                             JonesExpr(), "out");
  select.OrderBy("Skill");
  auto live = QueryEngine(snap.store()).Execute(select).ValueOrDie();
  auto still = QueryEngine(&quiesced).Execute(select).ValueOrDie();
  ASSERT_NE(live.table, nullptr);
  ASSERT_NE(still.table, nullptr);
  EXPECT_EQ(live.table->Materialize(), still.table->Materialize());
  EXPECT_EQ(live.ToString(), still.ToString());
}

}  // namespace
}  // namespace cods

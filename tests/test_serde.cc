// Tests for binary persistence: component round trips, whole-database
// save/load, and corruption injection (truncation at every byte prefix,
// random bit flips) — a corrupt image must produce Status::Corruption,
// never a crash or silent bad data.

#include "storage/serde.h"

#include <cstdio>

#include "common/random.h"
#include "evolution/decompose.h"
#include "evolution/simple_ops.h"
#include "gtest/gtest.h"
#include "test_util.h"

namespace cods {
namespace {

using ::cods::testing::ExpectSameContent;
using ::cods::testing::Figure1TableR;
using ::cods::testing::RandomFdTable;

TEST(BinaryRW, PrimitivesRoundTrip) {
  BinaryWriter w;
  w.U8(0xAB);
  w.U32(0xDEADBEEF);
  w.U64(0x0123456789ABCDEFull);
  w.I64(-42);
  w.F64(3.25);
  w.Str("hello");
  w.Str("");
  BinaryReader r(w.buffer());
  EXPECT_EQ(r.U8().ValueOrDie(), 0xAB);
  EXPECT_EQ(r.U32().ValueOrDie(), 0xDEADBEEFu);
  EXPECT_EQ(r.U64().ValueOrDie(), 0x0123456789ABCDEFull);
  EXPECT_EQ(r.I64().ValueOrDie(), -42);
  EXPECT_EQ(r.F64().ValueOrDie(), 3.25);
  EXPECT_EQ(r.Str().ValueOrDie(), "hello");
  EXPECT_EQ(r.Str().ValueOrDie(), "");
  EXPECT_TRUE(r.AtEnd());
  EXPECT_TRUE(r.U8().status().IsCorruption());
}

TEST(BitmapSerde, RoundTrip) {
  Rng rng(3);
  for (double density : {0.0, 0.001, 0.5, 1.0}) {
    WahBitmap bm;
    for (int i = 0; i < 5000; ++i) bm.AppendBit(rng.NextBool(density));
    BinaryWriter w;
    WriteBitmap(bm, &w);
    BinaryReader r(w.buffer());
    WahBitmap back = ReadBitmap(&r).ValueOrDie();
    EXPECT_EQ(back, bm);
    EXPECT_TRUE(r.AtEnd());
  }
}

TEST(BitmapSerde, RejectsInconsistentHeader) {
  WahBitmap bm = WahBitmap::FromPositions({5, 100}, 1000);
  BinaryWriter w;
  WriteBitmap(bm, &w);
  std::vector<uint8_t> bytes = w.buffer();
  bytes[0] ^= 0xFF;  // corrupt num_bits
  BinaryReader r(bytes);
  EXPECT_TRUE(ReadBitmap(&r).status().IsCorruption());
}

TEST(ValueSerde, AllTypesRoundTrip) {
  for (const Value& v : {Value(int64_t{-7}), Value(2.5), Value("text"),
                         Value(std::string())}) {
    BinaryWriter w;
    WriteValue(v, &w);
    BinaryReader r(w.buffer());
    EXPECT_EQ(ReadValue(&r).ValueOrDie(), v);
  }
}

TEST(DictionarySerde, PreservesVidOrder) {
  Dictionary dict;
  dict.GetOrInsert(Value("z"));
  dict.GetOrInsert(Value(int64_t{5}));
  dict.GetOrInsert(Value(1.5));
  BinaryWriter w;
  WriteDictionary(dict, &w);
  BinaryReader r(w.buffer());
  Dictionary back = ReadDictionary(&r).ValueOrDie();
  ASSERT_EQ(back.size(), 3u);
  EXPECT_EQ(back.value(0), Value("z"));
  EXPECT_EQ(back.value(1), Value(int64_t{5}));
  EXPECT_EQ(back.value(2), Value(1.5));
}

TEST(ColumnSerde, WahAndRleRoundTrip) {
  Dictionary dict;
  dict.GetOrInsert(Value(int64_t{10}));
  dict.GetOrInsert(Value(int64_t{20}));
  std::vector<Vid> vids = {0, 0, 1, 0, 1, 1, 1, 0};
  for (auto col : {Column::FromVids(DataType::kInt64, dict, vids),
                   Column::FromVidsRle(DataType::kInt64, dict, vids)}) {
    BinaryWriter w;
    WriteColumn(*col, &w);
    BinaryReader r(w.buffer());
    auto back = ReadColumn(&r).ValueOrDie();
    EXPECT_EQ(back->encoding(), col->encoding());
    EXPECT_EQ(back->DecodeVids(), vids);
    EXPECT_TRUE(back->ValidateInvariants().ok());
  }
}

TEST(TableSerde, RoundTripWithKeysAndMixedTypes) {
  Schema schema({{"id", DataType::kInt64, false},
                 {"name", DataType::kString, false},
                 {"score", DataType::kDouble, false},
                 {"grade", DataType::kInt64, true}},  // sorted → RLE
                {"id"});
  TableBuilder builder("mixed", schema);
  for (int64_t i = 0; i < 500; ++i) {
    ASSERT_TRUE(builder
                    .AppendRow({Value(i), Value("n" + std::to_string(i % 7)),
                                Value(i * 0.5), Value(i / 100)})
                    .ok());
  }
  auto table = builder.Finish().ValueOrDie();
  BinaryWriter w;
  WriteTable(*table, &w);
  BinaryReader r(w.buffer());
  auto back = ReadTable(&r).ValueOrDie();
  EXPECT_EQ(back->name(), "mixed");
  EXPECT_TRUE(back->schema().IsKey({"id"}));
  EXPECT_EQ(back->column(3)->encoding(), ColumnEncoding::kRle);
  ExpectSameContent(*table, *back);
}

TEST(CatalogSerde, WholeDatabaseRoundTrip) {
  Catalog catalog;
  ASSERT_TRUE(catalog.AddTable(Figure1TableR()).ok());
  ASSERT_TRUE(catalog.AddTable(RandomFdTable(800, 40, 9)->WithName("X")).ok());
  std::vector<uint8_t> image = SerializeCatalog(catalog);
  Catalog back = DeserializeCatalog(image).ValueOrDie();
  EXPECT_EQ(back.TableNames(), catalog.TableNames());
  for (const std::string& name : catalog.TableNames()) {
    ExpectSameContent(*catalog.GetTable(name).ValueOrDie(),
                      *back.GetTable(name).ValueOrDie());
  }
}

TEST(CatalogSerde, FileRoundTrip) {
  Catalog catalog;
  ASSERT_TRUE(catalog.AddTable(Figure1TableR()).ok());
  std::string path = ::testing::TempDir() + "/cods_serde_test.db";
  ASSERT_TRUE(SaveCatalog(catalog, path).ok());
  Catalog back = LoadCatalog(path).ValueOrDie();
  ExpectSameContent(*catalog.GetTable("R").ValueOrDie(),
                    *back.GetTable("R").ValueOrDie());
  std::remove(path.c_str());
}

TEST(CatalogSerde, MissingFileIsIOError) {
  EXPECT_TRUE(LoadCatalog("/nonexistent/db.cods").status().IsIOError());
}

TEST(CatalogSerde, RejectsBadMagicAndVersion) {
  Catalog catalog;
  ASSERT_TRUE(catalog.AddTable(Figure1TableR()).ok());
  std::vector<uint8_t> image = SerializeCatalog(catalog);

  std::vector<uint8_t> bad_magic = image;
  bad_magic[0] ^= 1;
  EXPECT_TRUE(DeserializeCatalog(bad_magic).status().IsCorruption());

  std::vector<uint8_t> bad_version = image;
  bad_version[4] = 99;
  EXPECT_TRUE(DeserializeCatalog(bad_version).status().IsCorruption());

  std::vector<uint8_t> trailing = image;
  trailing.push_back(0);
  EXPECT_TRUE(DeserializeCatalog(trailing).status().IsCorruption());
}

// ---- Failure injection -------------------------------------------------------

TEST(CatalogSerde, EveryTruncationFailsCleanly) {
  Catalog catalog;
  ASSERT_TRUE(catalog.AddTable(Figure1TableR()).ok());
  std::vector<uint8_t> image = SerializeCatalog(catalog);
  // Every strict prefix must fail with a Status (usually Corruption),
  // never crash. Step 7 keeps the loop fast while covering all regions.
  for (size_t cut = 0; cut < image.size(); cut += 7) {
    std::vector<uint8_t> prefix(image.begin(),
                                image.begin() + static_cast<ptrdiff_t>(cut));
    Result<Catalog> result = DeserializeCatalog(prefix);
    EXPECT_FALSE(result.ok()) << "prefix of " << cut << " bytes parsed";
  }
}

TEST(CatalogSerde, RandomBitFlipsNeverCrash) {
  Catalog catalog;
  ASSERT_TRUE(catalog.AddTable(RandomFdTable(300, 17, 4)).ok());
  std::vector<uint8_t> image = SerializeCatalog(catalog);
  Rng rng(99);
  int parsed_ok = 0;
  for (int trial = 0; trial < 200; ++trial) {
    std::vector<uint8_t> mutated = image;
    // Flip 1-3 random bits (skip the magic so we exercise deep paths).
    int flips = static_cast<int>(rng.Uniform(1, 3));
    for (int f = 0; f < flips; ++f) {
      size_t byte = static_cast<size_t>(
          rng.Uniform(8, static_cast<int64_t>(mutated.size()) - 1));
      mutated[byte] ^= static_cast<uint8_t>(1 << rng.Uniform(0, 7));
    }
    Result<Catalog> result = DeserializeCatalog(mutated);
    if (result.ok()) {
      // A flip may hit value payload bytes and still form a valid image;
      // invariants must hold regardless (ReadTable validates them).
      ++parsed_ok;
      for (const std::string& name : result.ValueOrDie().TableNames()) {
        EXPECT_TRUE(result.ValueOrDie()
                        .GetTable(name)
                        .ValueOrDie()
                        ->ValidateInvariants()
                        .ok());
      }
    }
  }
  // Most mutations must be caught by structural checks.
  EXPECT_LT(parsed_ok, 100);
}

// ---- Version 2: the checksummed checkpoint format ---------------------------

TEST(CatalogSerdeV2, RoundTripCarriesWalLsn) {
  Catalog catalog;
  ASSERT_TRUE(catalog.AddTable(Figure1TableR()).ok());
  std::vector<uint8_t> v2 = SerializeCatalogV2(catalog, /*wal_lsn=*/4242);
  uint64_t lsn = 0;
  Catalog back = DeserializeCatalog(v2, &lsn).ValueOrDie();
  EXPECT_EQ(lsn, 4242u);
  ExpectSameContent(*catalog.GetTable("R").ValueOrDie(),
                    *back.GetTable("R").ValueOrDie());

  // A v1 image reads through the same entry point and reports LSN 0.
  std::vector<uint8_t> v1 = SerializeCatalog(catalog);
  lsn = 77;
  EXPECT_TRUE(DeserializeCatalog(v1, &lsn).ok());
  EXPECT_EQ(lsn, 0u);
  // The two formats differ exactly by the footer.
  EXPECT_EQ(v2.size(), v1.size() + kCodsFooterSize);
}

TEST(CatalogSerdeV2, EveryTruncationFailsCleanly) {
  Catalog catalog;
  ASSERT_TRUE(catalog.AddTable(Figure1TableR()).ok());
  std::vector<uint8_t> image = SerializeCatalogV2(catalog, 9);
  // Every strict prefix — including cuts inside the footer — must fail
  // with a Status, never crash or parse.
  for (size_t cut = 0; cut < image.size(); cut += 7) {
    std::vector<uint8_t> prefix(image.begin(),
                                image.begin() + static_cast<ptrdiff_t>(cut));
    EXPECT_FALSE(DeserializeCatalog(prefix).ok())
        << "v2 prefix of " << cut << " bytes parsed";
  }
}

TEST(CatalogSerdeV2, SingleBitFlipsAlwaysDetected) {
  // The whole point of the v2 footer: unlike v1 (where a flip in value
  // payload bytes can survive structural checks), EVERY single-bit flip
  // anywhere in a v2 image — header, payload, footer — must error.
  Catalog catalog;
  ASSERT_TRUE(catalog.AddTable(Figure1TableR()).ok());
  std::vector<uint8_t> image = SerializeCatalogV2(catalog, 123);
  for (size_t byte = 0; byte < image.size(); ++byte) {
    for (int bit = 0; bit < 8; ++bit) {
      std::vector<uint8_t> bad = image;
      bad[byte] ^= static_cast<uint8_t>(1u << bit);
      Result<Catalog> r = DeserializeCatalog(bad);
      EXPECT_FALSE(r.ok()) << "flip at byte " << byte << " bit " << bit
                           << " parsed";
    }
  }
}

TEST(SerdeAfterEvolution, EvolvedCatalogSurvivesPersistence) {
  // Evolution outputs share column storage across tables (e.g. a shallow
  // COPY aliases every column of the original); serialization must
  // materialize each table correctly and reload them as independent,
  // valid tables.
  Catalog catalog;
  ASSERT_TRUE(catalog.AddTable(Figure1TableR()).ok());
  auto copy = CopyTableOp(*catalog.GetTable("R").ValueOrDie(), "R2",
                          /*deep=*/false)
                  .ValueOrDie();
  ASSERT_TRUE(catalog.AddTable(copy).ok());
  auto dec = CodsDecompose(*catalog.GetTable("R").ValueOrDie(), "S",
                           {"Employee", "Skill"}, {}, "T",
                           {"Employee", "Address"}, {"Employee"})
                 .ValueOrDie();
  ASSERT_TRUE(catalog.AddTable(dec.s).ok());
  ASSERT_TRUE(catalog.AddTable(dec.t).ok());

  std::vector<uint8_t> image = SerializeCatalog(catalog);
  Catalog back = DeserializeCatalog(image).ValueOrDie();
  EXPECT_EQ(back.TableNames(),
            (std::vector<std::string>{"R", "R2", "S", "T"}));
  for (const std::string& name : back.TableNames()) {
    ExpectSameContent(*catalog.GetTable(name).ValueOrDie(),
                      *back.GetTable(name).ValueOrDie());
  }
}

}  // namespace
}  // namespace cods

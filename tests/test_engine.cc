// Tests for the EvolutionEngine: SMO dispatch, catalog effects, and
// failure handling.

#include "evolution/engine.h"

#include "gtest/gtest.h"
#include "test_util.h"

namespace cods {
namespace {

using ::cods::testing::ExpectSameContent;
using ::cods::testing::Figure1TableR;

class EngineTest : public ::testing::Test {
 protected:
  void SetUp() override {
    ASSERT_TRUE(catalog_.AddTable(Figure1TableR()).ok());
    EngineOptions options;
    options.validate_outputs = true;
    engine_ = std::make_unique<EvolutionEngine>(&catalog_, nullptr, options);
  }

  Catalog catalog_;
  std::unique_ptr<EvolutionEngine> engine_;
};

TEST_F(EngineTest, CreateAndDropTable) {
  Schema schema({{"a", DataType::kInt64, false}});
  ASSERT_TRUE(engine_->Apply(Smo::CreateTable("New", schema)).ok());
  EXPECT_TRUE(catalog_.HasTable("New"));
  EXPECT_TRUE(engine_->Apply(Smo::CreateTable("New", schema))
                  .IsAlreadyExists());
  ASSERT_TRUE(engine_->Apply(Smo::DropTable("New")).ok());
  EXPECT_FALSE(catalog_.HasTable("New"));
  EXPECT_TRUE(engine_->Apply(Smo::DropTable("New")).IsKeyError());
}

TEST_F(EngineTest, RenameAndCopy) {
  ASSERT_TRUE(engine_->Apply(Smo::CopyTable("R", "R2")).ok());
  EXPECT_TRUE(catalog_.HasTable("R"));
  EXPECT_TRUE(catalog_.HasTable("R2"));
  ASSERT_TRUE(engine_->Apply(Smo::RenameTable("R2", "R3")).ok());
  EXPECT_FALSE(catalog_.HasTable("R2"));
  ExpectSameContent(*catalog_.GetTable("R").ValueOrDie(),
                    *catalog_.GetTable("R3").ValueOrDie());
}

TEST_F(EngineTest, DecomposeReplacesInputWithOutputs) {
  Smo smo = Smo::DecomposeTable("R", "S", {"Employee", "Skill"}, {}, "T",
                                {"Employee", "Address"}, {"Employee"});
  ASSERT_TRUE(engine_->Apply(smo).ok());
  EXPECT_FALSE(catalog_.HasTable("R"));
  EXPECT_EQ(catalog_.GetTable("S").ValueOrDie()->rows(), 7u);
  EXPECT_EQ(catalog_.GetTable("T").ValueOrDie()->rows(), 4u);
}

TEST_F(EngineTest, MergeReplacesInputsWithOutput) {
  Smo decompose = Smo::DecomposeTable("R", "S", {"Employee", "Skill"}, {},
                                      "T", {"Employee", "Address"},
                                      {"Employee"});
  ASSERT_TRUE(engine_->Apply(decompose).ok());
  Smo merge = Smo::MergeTables("S", "T", "R", {"Employee"}, {});
  ASSERT_TRUE(engine_->Apply(merge).ok());
  EXPECT_FALSE(catalog_.HasTable("S"));
  EXPECT_FALSE(catalog_.HasTable("T"));
  ExpectSameContent(*Figure1TableR(),
                    *catalog_.GetTable("R").ValueOrDie());
}

TEST_F(EngineTest, UnionAndPartitionRoundTrip) {
  Smo part = Smo::PartitionTable("R", "Grant", "Rest", "Address",
                                 CompareOp::kEq, Value("425 Grant Ave"));
  ASSERT_TRUE(engine_->Apply(part).ok());
  EXPECT_FALSE(catalog_.HasTable("R"));
  EXPECT_EQ(catalog_.GetTable("Grant").ValueOrDie()->rows(), 4u);
  EXPECT_EQ(catalog_.GetTable("Rest").ValueOrDie()->rows(), 3u);

  Smo un = Smo::UnionTables("Grant", "Rest", "R");
  ASSERT_TRUE(engine_->Apply(un).ok());
  EXPECT_FALSE(catalog_.HasTable("Grant"));
  EXPECT_FALSE(catalog_.HasTable("Rest"));
  // Union of the partition is R up to row order.
  auto restored = catalog_.GetTable("R").ValueOrDie();
  EXPECT_EQ(testing::SortedRows(*restored),
            testing::SortedRows(*Figure1TableR()));
}

TEST_F(EngineTest, ColumnOperators) {
  ASSERT_TRUE(engine_
                  ->Apply(Smo::AddColumn("R",
                                         {"Grade", DataType::kInt64, false},
                                         Value(int64_t{0})))
                  .ok());
  EXPECT_EQ(catalog_.GetTable("R").ValueOrDie()->num_columns(), 4u);
  ASSERT_TRUE(
      engine_->Apply(Smo::RenameColumn("R", "Grade", "Level")).ok());
  EXPECT_TRUE(catalog_.GetTable("R")
                  .ValueOrDie()
                  ->schema()
                  .HasColumn("Level"));
  ASSERT_TRUE(engine_->Apply(Smo::DropColumn("R", "Level")).ok());
  EXPECT_EQ(catalog_.GetTable("R").ValueOrDie()->num_columns(), 3u);
}

TEST_F(EngineTest, ApplyAllStopsAtFirstFailure) {
  std::vector<Smo> script = {
      Smo::RenameTable("R", "R1"),
      Smo::DropTable("DoesNotExist"),
      Smo::RenameTable("R1", "R2"),
  };
  Status st = engine_->ApplyAll(script);
  EXPECT_FALSE(st.ok());
  // First op applied, third not reached.
  EXPECT_TRUE(catalog_.HasTable("R1"));
  EXPECT_FALSE(catalog_.HasTable("R2"));
  // The failing SMO is named in the error.
  EXPECT_NE(st.message().find("DROP TABLE DoesNotExist"),
            std::string::npos);
}

TEST_F(EngineTest, DecomposeOutputNameCollisionRejected) {
  Schema schema({{"x", DataType::kInt64, false}});
  ASSERT_TRUE(engine_->Apply(Smo::CreateTable("S", schema)).ok());
  Smo smo = Smo::DecomposeTable("R", "S", {"Employee", "Skill"}, {}, "T",
                                {"Employee", "Address"}, {"Employee"});
  EXPECT_TRUE(engine_->Apply(smo).IsAlreadyExists());
  // R untouched on failure.
  EXPECT_TRUE(catalog_.HasTable("R"));
}

TEST_F(EngineTest, MergeMissingInputFails) {
  Smo merge = Smo::MergeTables("R", "Nope", "X", {"Employee"}, {});
  EXPECT_TRUE(engine_->Apply(merge).IsKeyError());
}

TEST_F(EngineTest, ValidatePreconditionsCatchesLossyDecompose) {
  EngineOptions options;
  options.validate_preconditions = true;
  EvolutionEngine strict(&catalog_, nullptr, options);
  // Employee -> Skill is false, so declaring T(Employee, Skill) keyed on
  // Employee must fail.
  Smo smo = Smo::DecomposeTable("R", "S", {"Employee", "Address"}, {}, "T",
                                {"Employee", "Skill"}, {"Employee"});
  Status st = strict.Apply(smo);
  EXPECT_TRUE(st.IsConstraintViolation()) << st.ToString();
  EXPECT_TRUE(catalog_.HasTable("R"));
}

TEST_F(EngineTest, ObserverSeesSteps) {
  RecordingObserver observer;
  EvolutionEngine engine(&catalog_, &observer, EngineOptions{});
  Smo smo = Smo::DecomposeTable("R", "S", {"Employee", "Skill"}, {}, "T",
                                {"Employee", "Address"}, {"Employee"});
  ASSERT_TRUE(engine.Apply(smo).ok());
  EXPECT_TRUE(observer.HasStep("distinction"));
  EXPECT_TRUE(observer.HasStep("filtering"));
  EXPECT_GE(observer.TotalSeconds(), 0.0);
}

TEST(SmoToString, CoversEveryKind) {
  Schema schema({{"a", DataType::kInt64, false}});
  EXPECT_NE(Smo::CreateTable("T", schema).ToString().find("CREATE TABLE T"),
            std::string::npos);
  EXPECT_EQ(Smo::DropTable("T").ToString(), "DROP TABLE T");
  EXPECT_EQ(Smo::RenameTable("A", "B").ToString(), "RENAME TABLE A TO B");
  EXPECT_EQ(Smo::CopyTable("A", "B").ToString(), "COPY TABLE A TO B");
  EXPECT_EQ(Smo::UnionTables("A", "B", "C").ToString(),
            "UNION TABLES A, B INTO C");
  EXPECT_NE(Smo::PartitionTable("R", "A", "B", "x", CompareOp::kGe,
                                Value(int64_t{3}))
                .ToString()
                .find("WHERE x >= 3"),
            std::string::npos);
  EXPECT_NE(Smo::DecomposeTable("R", "S", {"a"}, {"a"}, "T", {"b"}, {})
                .ToString()
                .find("DECOMPOSE TABLE R INTO S(a) KEY(a), T(b)"),
            std::string::npos);
  EXPECT_NE(Smo::MergeTables("S", "T", "R", {"k"}, {}).ToString().find(
                "MERGE TABLES S, T INTO R ON (k)"),
            std::string::npos);
  EXPECT_NE(Smo::AddColumn("R", {"c", DataType::kInt64, false},
                           Value(int64_t{0}))
                .ToString()
                .find("ADD COLUMN c INT64 TO R DEFAULT 0"),
            std::string::npos);
  EXPECT_EQ(Smo::DropColumn("R", "c").ToString(), "DROP COLUMN c FROM R");
  EXPECT_EQ(Smo::RenameColumn("R", "a", "b").ToString(),
            "RENAME COLUMN a TO b IN R");
}

}  // namespace
}  // namespace cods

// Tests for native bitmap-index selection on the column store, verified
// against naive row-at-a-time filtering.

#include "query/column_select.h"
#include "storage/value_compare.h"

#include "gtest/gtest.h"
#include "test_util.h"
#include "workload/generator.h"

namespace cods {
namespace {

using ::cods::testing::Figure1TableR;
using ::cods::testing::MakeTable;

TEST(ColumnSelect, EqualityPredicate) {
  auto r = Figure1TableR();
  auto sel = EvalPredicate(
                 *r, ColumnPredicate::Compare("Employee", CompareOp::kEq,
                                              Value("Jones")))
                 .ValueOrDie();
  EXPECT_EQ(sel.size(), 7u);
  EXPECT_EQ(sel.SetPositions(), (std::vector<uint64_t>{0, 1, 4}));
}

TEST(ColumnSelect, RangePredicateOnNumbers) {
  Schema schema({{"x", DataType::kInt64, false}});
  std::vector<Row> rows;
  for (int64_t i = 0; i < 100; ++i) rows.push_back({Value(i)});
  auto t = MakeTable("T", schema, rows);
  auto count = CountWhere(*t, {ColumnPredicate::Compare(
                                  "x", CompareOp::kGe, Value(int64_t{90}))})
                   .ValueOrDie();
  EXPECT_EQ(count, 10u);
  count = CountWhere(*t, {ColumnPredicate::Compare("x", CompareOp::kNe,
                                                   Value(int64_t{5}))})
              .ValueOrDie();
  EXPECT_EQ(count, 99u);
}

TEST(ColumnSelect, InPredicate) {
  auto r = Figure1TableR();
  auto count =
      CountWhere(*r, {ColumnPredicate::In(
                         "Employee", {Value("Ellis"), Value("Roberts")})})
          .ValueOrDie();
  EXPECT_EQ(count, 3u);
}

TEST(ColumnSelect, ConjunctionAndShortCircuit) {
  auto r = Figure1TableR();
  std::vector<ColumnPredicate> preds = {
      ColumnPredicate::Compare("Address", CompareOp::kEq,
                               Value("425 Grant Ave")),
      ColumnPredicate::Compare("Skill", CompareOp::kEq,
                               Value("Light Cleaning")),
  };
  EXPECT_EQ(CountWhere(*r, preds).ValueOrDie(), 1u);  // Harrison
  preds.push_back(ColumnPredicate::Compare("Employee", CompareOp::kEq,
                                           Value("Nobody")));
  EXPECT_EQ(CountWhere(*r, preds).ValueOrDie(), 0u);
}

TEST(ColumnSelect, DisjunctionUnionsSelections) {
  auto r = Figure1TableR();
  auto sel =
      EvalDisjunction(*r, {ColumnPredicate::Compare("Employee",
                                                    CompareOp::kEq,
                                                    Value("Roberts")),
                           ColumnPredicate::Compare("Employee",
                                                    CompareOp::kEq,
                                                    Value("Harrison"))})
          .ValueOrDie();
  EXPECT_EQ(sel.CountOnes(), 2u);
}

TEST(ColumnSelect, EmptyPredicateLists) {
  auto r = Figure1TableR();
  EXPECT_EQ(EvalConjunction(*r, {}).ValueOrDie().CountOnes(), 7u);
  EXPECT_EQ(EvalDisjunction(*r, {}).ValueOrDie().CountOnes(), 0u);
}

TEST(ColumnSelect, SelectWhereBuildsValidTable) {
  auto r = Figure1TableR();
  auto jones = SelectWhere(*r,
                           {ColumnPredicate::Compare(
                               "Employee", CompareOp::kEq, Value("Jones"))},
                           "Jones")
                   .ValueOrDie();
  EXPECT_EQ(jones->rows(), 3u);
  EXPECT_TRUE(jones->ValidateInvariants().ok());
  for (const Row& row : jones->Materialize()) {
    EXPECT_EQ(row[0], Value("Jones"));
  }
}

TEST(ColumnSelect, FetchWhereReturnsTuples) {
  auto r = Figure1TableR();
  auto rows = FetchWhere(*r, {ColumnPredicate::Compare(
                                 "Skill", CompareOp::kEq,
                                 Value("Alchemy"))})
                  .ValueOrDie();
  ASSERT_EQ(rows.size(), 1u);
  EXPECT_EQ(rows[0][0], Value("Ellis"));
}

TEST(ColumnSelect, MissingColumnErrors) {
  auto r = Figure1TableR();
  EXPECT_FALSE(EvalPredicate(*r, ColumnPredicate::Compare(
                                     "Nope", CompareOp::kEq, Value("x")))
                   .ok());
}

// ---- Property: bitmap selection equals naive filtering on random data.

struct SelectParam {
  uint64_t rows;
  uint64_t distinct;
  int64_t threshold;
};

class ColumnSelectProperty : public ::testing::TestWithParam<SelectParam> {};

TEST_P(ColumnSelectProperty, AgreesWithNaiveScan) {
  const SelectParam p = GetParam();
  WorkloadSpec spec;
  spec.num_rows = p.rows;
  spec.num_distinct = p.distinct;
  auto r = GenerateEvolutionTable(spec).ValueOrDie();

  for (CompareOp op : {CompareOp::kEq, CompareOp::kLt, CompareOp::kGe,
                       CompareOp::kNe}) {
    std::vector<ColumnPredicate> preds = {
        ColumnPredicate::Compare(kKeyColumn, op, Value(p.threshold))};
    uint64_t fast = CountWhere(*r, preds).ValueOrDie();
    uint64_t naive = 0;
    for (const Row& row : r->Materialize()) {
      if (EvalCompare(row[0], op, Value(p.threshold))) ++naive;
    }
    EXPECT_EQ(fast, naive) << CompareOpToString(op);
  }
}

INSTANTIATE_TEST_SUITE_P(
    Grid, ColumnSelectProperty,
    ::testing::Values(SelectParam{100, 10, 5}, SelectParam{1000, 50, 25},
                      SelectParam{5000, 500, 100},
                      SelectParam{5000, 500, -1},
                      SelectParam{5000, 500, 10000}),
    [](const ::testing::TestParamInfo<SelectParam>& info) {
      std::string t = info.param.threshold < 0
                          ? "neg"
                          : std::to_string(info.param.threshold);
      return "r" + std::to_string(info.param.rows) + "_d" +
             std::to_string(info.param.distinct) + "_t" + t;
    });

}  // namespace
}  // namespace cods

// Tests for the SMO script parser: every statement form, literals,
// comments, and error positions.

#include "smo/parser.h"

#include "gtest/gtest.h"

namespace cods {
namespace {

TEST(Parser, CreateTable) {
  Smo smo = ParseSmoStatement(
                "CREATE TABLE R (Employee STRING, Age INT64, "
                "Score DOUBLE SORTED, KEY(Employee));")
                .ValueOrDie();
  EXPECT_EQ(smo.kind, SmoKind::kCreateTable);
  EXPECT_EQ(smo.out1, "R");
  EXPECT_EQ(smo.schema.num_columns(), 3u);
  EXPECT_EQ(smo.schema.column(1).type, DataType::kInt64);
  EXPECT_TRUE(smo.schema.column(2).sorted);
  EXPECT_TRUE(smo.schema.IsKey({"Employee"}));
}

TEST(Parser, DropAndRenameTable) {
  Smo drop = ParseSmoStatement("DROP TABLE R;").ValueOrDie();
  EXPECT_EQ(drop.kind, SmoKind::kDropTable);
  EXPECT_EQ(drop.table, "R");

  Smo rename = ParseSmoStatement("RENAME TABLE R TO R2;").ValueOrDie();
  EXPECT_EQ(rename.kind, SmoKind::kRenameTable);
  EXPECT_EQ(rename.table, "R");
  EXPECT_EQ(rename.new_name, "R2");
}

TEST(Parser, CopyAndUnion) {
  Smo copy = ParseSmoStatement("COPY TABLE A TO B;").ValueOrDie();
  EXPECT_EQ(copy.kind, SmoKind::kCopyTable);
  EXPECT_EQ(copy.out1, "B");

  Smo u = ParseSmoStatement("UNION TABLES A, B INTO C;").ValueOrDie();
  EXPECT_EQ(u.kind, SmoKind::kUnionTables);
  EXPECT_EQ(u.table, "A");
  EXPECT_EQ(u.table2, "B");
  EXPECT_EQ(u.out1, "C");
}

TEST(Parser, PartitionWithEveryOperator) {
  struct Case {
    const char* text;
    CompareOp op;
  };
  for (const Case& c : {Case{"=", CompareOp::kEq}, Case{"!=", CompareOp::kNe},
                        Case{"<", CompareOp::kLt}, Case{"<=", CompareOp::kLe},
                        Case{">", CompareOp::kGt},
                        Case{">=", CompareOp::kGe}}) {
    std::string stmt = std::string("PARTITION TABLE R INTO A, B WHERE x ") +
                       c.text + " 10;";
    Smo smo = ParseSmoStatement(stmt).ValueOrDie();
    EXPECT_EQ(smo.kind, SmoKind::kPartitionTable);
    EXPECT_EQ(smo.compare_op, c.op) << c.text;
    EXPECT_EQ(smo.literal, Value(int64_t{10}));
  }
}

TEST(Parser, PartitionStringAndDoubleLiterals) {
  Smo s = ParseSmoStatement(
              "PARTITION TABLE R INTO A, B WHERE City = 'New York';")
              .ValueOrDie();
  EXPECT_EQ(s.literal, Value("New York"));
  Smo d = ParseSmoStatement(
              "PARTITION TABLE R INTO A, B WHERE Score >= 3.5;")
              .ValueOrDie();
  EXPECT_EQ(d.literal, Value(3.5));
  Smo n = ParseSmoStatement(
              "PARTITION TABLE R INTO A, B WHERE Delta > -4;")
              .ValueOrDie();
  EXPECT_EQ(n.literal, Value(int64_t{-4}));
}

TEST(Parser, Decompose) {
  Smo smo =
      ParseSmoStatement(
          "DECOMPOSE TABLE R INTO S(Employee, Skill), "
          "T(Employee, Address) KEY(Employee);")
          .ValueOrDie();
  EXPECT_EQ(smo.kind, SmoKind::kDecomposeTable);
  EXPECT_EQ(smo.table, "R");
  EXPECT_EQ(smo.out1, "S");
  EXPECT_EQ(smo.columns1,
            (std::vector<std::string>{"Employee", "Skill"}));
  EXPECT_TRUE(smo.key1.empty());
  EXPECT_EQ(smo.out2, "T");
  EXPECT_EQ(smo.columns2,
            (std::vector<std::string>{"Employee", "Address"}));
  EXPECT_EQ(smo.key2, (std::vector<std::string>{"Employee"}));
}

TEST(Parser, DecomposeWithBothKeys) {
  Smo smo = ParseSmoStatement(
                "DECOMPOSE TABLE R INTO S(a, b) KEY(a, b), T(a, c) KEY(a);")
                .ValueOrDie();
  EXPECT_EQ(smo.key1, (std::vector<std::string>{"a", "b"}));
  EXPECT_EQ(smo.key2, (std::vector<std::string>{"a"}));
}

TEST(Parser, Merge) {
  Smo smo = ParseSmoStatement(
                "MERGE TABLES S, T INTO R ON (Employee) "
                "KEY(Employee, Skill);")
                .ValueOrDie();
  EXPECT_EQ(smo.kind, SmoKind::kMergeTables);
  EXPECT_EQ(smo.table, "S");
  EXPECT_EQ(smo.table2, "T");
  EXPECT_EQ(smo.out1, "R");
  EXPECT_EQ(smo.columns1, (std::vector<std::string>{"Employee"}));
  EXPECT_EQ(smo.key1, (std::vector<std::string>{"Employee", "Skill"}));
}

TEST(Parser, ColumnOperators) {
  Smo add = ParseSmoStatement(
                "ADD COLUMN Address STRING TO R DEFAULT 'unknown';")
                .ValueOrDie();
  EXPECT_EQ(add.kind, SmoKind::kAddColumn);
  EXPECT_EQ(add.column_spec.type, DataType::kString);
  EXPECT_EQ(add.default_value, Value("unknown"));

  Smo add_default = ParseSmoStatement("ADD COLUMN n INT64 TO R;")
                        .ValueOrDie();
  EXPECT_EQ(add_default.default_value, Value(int64_t{0}));

  Smo drop = ParseSmoStatement("DROP COLUMN Address FROM R;").ValueOrDie();
  EXPECT_EQ(drop.kind, SmoKind::kDropColumn);
  EXPECT_EQ(drop.column, "Address");

  Smo rename =
      ParseSmoStatement("RENAME COLUMN Addr TO Address IN R;").ValueOrDie();
  EXPECT_EQ(rename.kind, SmoKind::kRenameColumn);
  EXPECT_EQ(rename.column, "Addr");
  EXPECT_EQ(rename.new_name, "Address");
}

TEST(Parser, KeywordsAreCaseInsensitive) {
  EXPECT_TRUE(ParseSmoStatement("drop table R;").ok());
  EXPECT_TRUE(ParseSmoStatement("Drop Table R").ok());  // ';' optional
}

TEST(Parser, ScriptWithCommentsAndBlankLines) {
  auto script = ParseSmoScript(
                    "-- evolve the employee database\n"
                    "COPY TABLE R TO Backup;\n"
                    "\n"
                    "DECOMPOSE TABLE R INTO S(Employee, Skill),\n"
                    "  T(Employee, Address) KEY(Employee); -- split\n"
                    "RENAME TABLE Backup TO R_v1;\n")
                    .ValueOrDie();
  ASSERT_EQ(script.size(), 3u);
  EXPECT_EQ(script[0].kind, SmoKind::kCopyTable);
  EXPECT_EQ(script[1].kind, SmoKind::kDecomposeTable);
  EXPECT_EQ(script[2].kind, SmoKind::kRenameTable);
}

TEST(Parser, EmptyScriptIsEmpty) {
  EXPECT_TRUE(ParseSmoScript("").ValueOrDie().empty());
  EXPECT_TRUE(ParseSmoScript(" ;; -- nothing\n;").ValueOrDie().empty());
}

TEST(Parser, ErrorsCarryPosition) {
  Status st = ParseSmoScript("DROP TABLE;").status();
  EXPECT_FALSE(st.ok());
  EXPECT_NE(st.message().find("line 1"), std::string::npos);
  EXPECT_NE(st.message().find("expected table name"), std::string::npos);

  st = ParseSmoScript("\n\nFROBNICATE TABLE x;").status();
  EXPECT_NE(st.message().find("line 3"), std::string::npos);
}

TEST(Parser, MalformedStatementsRejected) {
  EXPECT_FALSE(ParseSmoScript("CREATE TABLE T (a BLOB);").ok());
  EXPECT_FALSE(ParseSmoScript("MERGE TABLES S, T INTO R;").ok());  // no ON
  EXPECT_FALSE(ParseSmoScript("DECOMPOSE TABLE R INTO S(a);").ok());
  EXPECT_FALSE(ParseSmoScript("PARTITION TABLE R INTO A, B WHERE x ~ 3;")
                   .ok());
  EXPECT_FALSE(ParseSmoScript("UNION TABLES A B INTO C;").ok());
  EXPECT_FALSE(ParseSmoScript("ADD COLUMN x INT64 TO R DEFAULT 'str';")
                   .ok());  // type mismatch
  EXPECT_FALSE(ParseSmoScript("DROP TABLE 'quoted';").ok());
  EXPECT_FALSE(ParseSmoScript("CREATE TABLE T (a INT64").ok());  // EOF
}

TEST(Parser, UnterminatedStringRejected) {
  Status st =
      ParseSmoScript("PARTITION TABLE R INTO A, B WHERE x = 'oops;").status();
  EXPECT_FALSE(st.ok());
  EXPECT_NE(st.message().find("unterminated"), std::string::npos);
}

TEST(Parser, StatementRequiresExactlyOne) {
  EXPECT_FALSE(ParseSmoStatement("DROP TABLE A; DROP TABLE B;").ok());
  EXPECT_FALSE(ParseSmoStatement("").ok());
}

TEST(Parser, RoundTripThroughToString) {
  // ToString output of parsed SMOs re-parses to the same operator —
  // every statement form, including quoted strings, round-trip doubles,
  // CREATE TABLE schemas with keys, and both DECOMPOSE key positions.
  for (const char* stmt :
       {"DROP TABLE R", "RENAME TABLE A TO B", "COPY TABLE A TO B",
        "UNION TABLES A, B INTO C",
        "MERGE TABLES S, T INTO R ON (k) KEY(k)",
        "MERGE TABLES S, T INTO R ON (a, b)",
        "DROP COLUMN c FROM R", "RENAME COLUMN a TO b IN R",
        "CREATE TABLE T (a INT64, b STRING, c DOUBLE SORTED, KEY(a, b))",
        "CREATE TABLE T (a INT64)",
        "PARTITION TABLE R INTO A, B WHERE x >= 10",
        "PARTITION TABLE R INTO A, B WHERE City = 'New York'",
        "PARTITION TABLE R INTO A, B WHERE Score >= 3.5",
        "PARTITION TABLE R INTO A, B WHERE Score < 0.1",
        "PARTITION TABLE R INTO A, B WHERE Score < 1e25",
        "PARTITION TABLE R INTO A, B WHERE Score > 2.5e-7",
        "PARTITION TABLE R INTO A, B WHERE Delta > -4",
        "DECOMPOSE TABLE R INTO S(a, b) KEY(a, b), T(a, c) KEY(a)",
        "DECOMPOSE TABLE R INTO S(a, b), T(a, c) KEY(a)",
        "ADD COLUMN Address STRING TO R DEFAULT 'unknown'",
        "ADD COLUMN n INT64 TO R",
        "ADD COLUMN f DOUBLE TO R DEFAULT 2.25"}) {
    Smo first = ParseSmoStatement(stmt).ValueOrDie();
    auto reparsed = ParseSmoStatement(first.ToString());
    ASSERT_TRUE(reparsed.ok())
        << stmt << " -> " << first.ToString() << ": "
        << reparsed.status().ToString();
    Smo second = std::move(reparsed).ValueOrDie();
    EXPECT_EQ(first.ToString(), second.ToString()) << stmt;
    EXPECT_EQ(first.kind, second.kind);
    EXPECT_EQ(first.literal, second.literal) << stmt;
    EXPECT_EQ(first.default_value, second.default_value) << stmt;
    EXPECT_EQ(first.columns1, second.columns1) << stmt;
    EXPECT_EQ(first.key1, second.key1) << stmt;
    EXPECT_EQ(first.key2, second.key2) << stmt;
  }
}

TEST(Parser, RoundTripQuotesStringsWithEmbeddedQuotes) {
  Smo first = ParseSmoStatement(
                  "PARTITION TABLE R INTO A, B WHERE x = \"it's\";")
                  .ValueOrDie();
  EXPECT_EQ(first.literal, Value("it's"));
  Smo second = ParseSmoStatement(first.ToString()).ValueOrDie();
  EXPECT_EQ(second.literal, Value("it's"));

  // SQL-style doubling covers strings holding BOTH quote kinds.
  Smo both = Smo::PartitionTable("R", "A", "B", "x", CompareOp::kEq,
                                 Value("it's a \"mix\""));
  Smo reparsed = ParseSmoStatement(both.ToString()).ValueOrDie();
  EXPECT_EQ(reparsed.literal, Value("it's a \"mix\""));

  // Doubled quotes in source text decode to one literal quote.
  Smo doubled = ParseSmoStatement(
                    "PARTITION TABLE R INTO A, B WHERE x = 'it''s';")
                    .ValueOrDie();
  EXPECT_EQ(doubled.literal, Value("it's"));
  // An empty string stays a string literal, not an unterminated one.
  EXPECT_EQ(ParseSmoStatement("PARTITION TABLE R INTO A, B WHERE x = '';")
                .ValueOrDie()
                .literal,
            Value(""));
}

TEST(Parser, ErrorPathsPerStatementForm) {
  struct Case {
    const char* text;
    const char* expect;  // substring of the error message
  };
  for (const Case& c : {
           Case{"CREATE TABLE (a INT64);", "expected table name"},
           Case{"CREATE TABLE T a INT64;", "expected '('"},
           Case{"CREATE TABLE T (a INT64,);", "expected column name"},
           Case{"CREATE TABLE T (KEY());", "expected name"},
           Case{"COPY TABLE A B;", "expected keyword 'TO'"},
           Case{"RENAME TABLE A;", "expected keyword 'TO'"},
           Case{"RENAME COLUMN a TO b;", "expected keyword 'IN'"},
           Case{"UNION TABLES A, B C;", "expected keyword 'INTO'"},
           Case{"PARTITION TABLE R INTO A, B;", "expected keyword 'WHERE'"},
           Case{"PARTITION TABLE R INTO A, B WHERE x <;",
                "expected a literal"},
           Case{"PARTITION TABLE R INTO A, B WHERE x 3;",
                "expected a comparison operator"},
           Case{"DECOMPOSE TABLE R INTO S(a) T(b);", "expected ','"},
           Case{"DECOMPOSE TABLE R INTO S, T(b);", "expected '('"},
           Case{"MERGE TABLES S, T INTO R ON x;", "expected '('"},
           Case{"MERGE TABLES S T INTO R ON (x);", "expected ','"},
           Case{"ADD COLUMN x BLOB TO R;", "unknown data type"},
           Case{"ADD COLUMN x INT64 R;", "expected keyword 'TO'"},
           Case{"DROP COLUMN x R;", "expected keyword 'FROM'"},
           Case{"DROP;", "expected keyword 'COLUMN'"},
       }) {
    Status st = ParseSmoScript(c.text).status();
    ASSERT_FALSE(st.ok()) << c.text;
    EXPECT_NE(st.message().find(c.expect), std::string::npos)
        << c.text << " -> " << st.ToString();
  }
}

TEST(Parser, LexerErrors) {
  EXPECT_NE(ParseSmoScript("DROP TABLE @x;").status().message().find(
                "unexpected character '@'"),
            std::string::npos);
  EXPECT_NE(ParseSmoScript("PARTITION TABLE R INTO A, B WHERE x ! 3;")
                .status()
                .message()
                .find("stray '!'"),
            std::string::npos);
}

TEST(Parser, ErrorPositionsAreExactSourceOffsets) {
  // Positions derive from byte offsets into the SOURCE, so decoded
  // token text (a doubled quote collapsing to one character) cannot
  // skew the reported column of anything after it.
  struct Case {
    const char* text;
    const char* position;  // expected "line L, column C" prefix
  };
  for (const Case& c : {
           // 'it''s' spans source columns 27-33; FROBNICATE starts at 35.
           Case{"SELECT * FROM t WHERE x = 'it''s' FROBNICATE;",
                "line 1, column 35"},
           // Two doubled quotes: 'a''b''c' is source columns 39-47.
           Case{"PARTITION TABLE R INTO A, B WHERE x = 'a''b''c' ~;",
                "line 1, column 49"},
           // A doubled quote inside a multi-line script must not shift
           // positions on LATER lines either.
           Case{"SELECT COUNT(*) FROM t WHERE x = 'it''s';\n"
                "DROP TABLE;",
                "line 2, column 11"},
           // The unterminated-string error points at the opening quote.
           Case{"SELECT * FROM t WHERE x = 'oops;", "line 1, column 27"},
           // Statement-mix errors (SMO-only surface) report the
           // statement start, after a doubled-quote literal.
           Case{"PARTITION TABLE R INTO A, B WHERE x = 'it''s';\n"
                "  SELECT * FROM B;",
                "line 2, column 3"},
       }) {
    Status st = ParseSmoScript(c.text).status();
    ASSERT_FALSE(st.ok()) << c.text;
    EXPECT_NE(st.message().find(c.position), std::string::npos)
        << c.text << " -> " << st.ToString();
  }
}

TEST(Parser, DuplicateSelectColumnErrorCarriesPosition) {
  // The duplicate occurrence's own position is reported (satellite:
  // duplicate projection columns are an error WITH a position).
  Status st = ParseStatementScript("SELECT aa, b,\n  aa FROM t;").status();
  ASSERT_FALSE(st.ok());
  EXPECT_NE(st.message().find("line 2, column 3"), std::string::npos)
      << st.ToString();
  EXPECT_NE(st.message().find("duplicate column 'aa'"), std::string::npos);
}

TEST(Parser, ErrorAtEndOfInputSaysSo) {
  Status st = ParseSmoScript("COPY TABLE A TO").status();
  ASSERT_FALSE(st.ok());
  EXPECT_NE(st.message().find("at end of input"), std::string::npos)
      << st.ToString();
}

// ---- SELECT statements (the query half of the unified grammar) ------------

QueryRequest ParseQuery(const std::string& text) {
  Statement stmt = ParseStatement(text).ValueOrDie();
  EXPECT_EQ(stmt.kind, Statement::Kind::kQuery);
  return stmt.query;
}

TEST(Parser, SelectStar) {
  QueryRequest q = ParseQuery("SELECT * FROM R;");
  EXPECT_EQ(q.verb, QueryRequest::Verb::kSelect);
  EXPECT_EQ(q.table, "R");
  EXPECT_TRUE(q.columns.empty());
  EXPECT_EQ(q.where, nullptr);
}

TEST(Parser, SelectProjectionAndWhere) {
  QueryRequest q = ParseQuery(
      "SELECT Employee, Skill FROM R WHERE Employee = 'Jones';");
  EXPECT_EQ(q.columns, (std::vector<std::string>{"Employee", "Skill"}));
  ASSERT_NE(q.where, nullptr);
  EXPECT_EQ(q.where->kind, ExprKind::kCompare);
  EXPECT_EQ(q.where->ToString(), "Employee = 'Jones'");
}

TEST(Parser, SelectCountStar) {
  QueryRequest q = ParseQuery("SELECT COUNT(*) FROM R WHERE a > 3;");
  EXPECT_EQ(q.verb, QueryRequest::Verb::kCount);
  ASSERT_NE(q.where, nullptr);
}

TEST(Parser, SelectGroupBySumForms) {
  QueryRequest q =
      ParseQuery("SELECT g, SUM(m) FROM T WHERE m > 0 GROUP BY g;");
  EXPECT_EQ(q.verb, QueryRequest::Verb::kGroupBy);
  EXPECT_EQ(q.group_by, "g");
  ASSERT_EQ(q.aggregates.size(), 1u);
  EXPECT_EQ(q.aggregates[0], AggregateSpec::Sum("m"));
  // The bare-SUM form is the same query.
  QueryRequest bare = ParseQuery("SELECT SUM(m) FROM T GROUP BY g;");
  EXPECT_EQ(bare.verb, QueryRequest::Verb::kGroupBy);
  EXPECT_EQ(bare.group_by, "g");
}

TEST(Parser, SelectMultiAggregateList) {
  QueryRequest q = ParseQuery(
      "SELECT g, SUM(m), COUNT(*), MIN(m), MAX(n), AVG(m) FROM T "
      "GROUP BY g;");
  EXPECT_EQ(q.verb, QueryRequest::Verb::kGroupBy);
  EXPECT_EQ(q.group_by, "g");
  ASSERT_EQ(q.aggregates.size(), 5u);
  EXPECT_EQ(q.aggregates[0], AggregateSpec::Sum("m"));
  EXPECT_EQ(q.aggregates[1], AggregateSpec::Count());
  EXPECT_EQ(q.aggregates[2], AggregateSpec::Min("m"));
  EXPECT_EQ(q.aggregates[3], AggregateSpec::Max("n"));
  EXPECT_EQ(q.aggregates[4], AggregateSpec::Avg("m"));
  // COUNT(*) under GROUP BY is the group-by verb, not the count verb.
  QueryRequest counts = ParseQuery("SELECT g, COUNT(*) FROM T GROUP BY g;");
  EXPECT_EQ(counts.verb, QueryRequest::Verb::kGroupBy);
  ASSERT_EQ(counts.aggregates.size(), 1u);
  EXPECT_EQ(counts.aggregates[0], AggregateSpec::Count());
  // COUNT(col) names its column.
  QueryRequest named = ParseQuery("SELECT COUNT(m) FROM T GROUP BY g;");
  ASSERT_EQ(named.aggregates.size(), 1u);
  EXPECT_EQ(named.aggregates[0], AggregateSpec::Count("m"));
}

TEST(Parser, SelectJoinClause) {
  QueryRequest q = ParseQuery(
      "SELECT a.x, b.z FROM a JOIN b ON a.x = b.y WHERE b.z > 3;");
  EXPECT_EQ(q.verb, QueryRequest::Verb::kSelect);
  EXPECT_EQ(q.table, "a");
  EXPECT_EQ(q.join_table, "b");
  EXPECT_EQ(q.join_left, "a.x");
  EXPECT_EQ(q.join_right, "b.y");
  EXPECT_EQ(q.columns, (std::vector<std::string>{"a.x", "b.z"}));
  ASSERT_NE(q.where, nullptr);
  EXPECT_EQ(q.where->column, "b.z");
  // Unqualified ON references parse too.
  QueryRequest plain = ParseQuery("SELECT * FROM a JOIN b ON x = y;");
  EXPECT_EQ(plain.join_left, "x");
  EXPECT_EQ(plain.join_right, "y");
}

TEST(Parser, SelectOrderByAndLimit) {
  QueryRequest q = ParseQuery(
      "SELECT a, b FROM t WHERE a > 1 ORDER BY b DESC LIMIT 10;");
  EXPECT_EQ(q.order_by, "b");
  EXPECT_TRUE(q.order_desc);
  EXPECT_EQ(q.limit, 10);
  // ASC is the (explicit) default; LIMIT works alone.
  QueryRequest asc = ParseQuery("SELECT * FROM t ORDER BY a ASC;");
  EXPECT_EQ(asc.order_by, "a");
  EXPECT_FALSE(asc.order_desc);
  EXPECT_EQ(asc.limit, -1);
  QueryRequest lim = ParseQuery("SELECT * FROM t LIMIT 0;");
  EXPECT_TRUE(lim.order_by.empty());
  EXPECT_EQ(lim.limit, 0);
}

TEST(Parser, NestedWhereExpression) {
  QueryRequest q = ParseQuery(
      "SELECT * FROM t WHERE a = 'x' AND (b > 3 OR NOT c IN (1, 2));");
  ASSERT_NE(q.where, nullptr);
  const Expr& root = *q.where;
  ASSERT_EQ(root.kind, ExprKind::kAnd);
  ASSERT_EQ(root.children.size(), 2u);
  EXPECT_EQ(root.children[0]->kind, ExprKind::kCompare);
  ASSERT_EQ(root.children[1]->kind, ExprKind::kOr);
  EXPECT_EQ(root.children[1]->children[1]->kind, ExprKind::kNot);
  EXPECT_EQ(root.children[1]->children[1]->children[0]->kind, ExprKind::kIn);
}

TEST(Parser, WherePrecedenceNotOverAndOverOr) {
  // a = 1 OR b = 2 AND NOT c = 3  parses as  a=1 OR (b=2 AND (NOT c=3)).
  QueryRequest q =
      ParseQuery("SELECT * FROM t WHERE a = 1 OR b = 2 AND NOT c = 3;");
  const Expr& root = *q.where;
  ASSERT_EQ(root.kind, ExprKind::kOr);
  ASSERT_EQ(root.children.size(), 2u);
  ASSERT_EQ(root.children[1]->kind, ExprKind::kAnd);
  EXPECT_EQ(root.children[1]->children[1]->kind, ExprKind::kNot);
}

TEST(Parser, BetweenBindsFirstAndAsBoundSeparator) {
  QueryRequest q = ParseQuery(
      "SELECT * FROM t WHERE x BETWEEN 1 AND 5 AND y = 2;");
  const Expr& root = *q.where;
  ASSERT_EQ(root.kind, ExprKind::kAnd);
  ASSERT_EQ(root.children.size(), 2u);
  EXPECT_EQ(root.children[0]->kind, ExprKind::kBetween);
  EXPECT_EQ(root.children[0]->between_lo, Value(int64_t{1}));
  EXPECT_EQ(root.children[0]->between_hi, Value(int64_t{5}));
}

TEST(Parser, PostfixNotForms) {
  QueryRequest q = ParseQuery(
      "SELECT * FROM t WHERE x NOT IN ('a') AND y NOT BETWEEN 1 AND 2;");
  const Expr& root = *q.where;
  ASSERT_EQ(root.children.size(), 2u);
  EXPECT_EQ(root.children[0]->kind, ExprKind::kNot);
  EXPECT_EQ(root.children[0]->children[0]->kind, ExprKind::kIn);
  EXPECT_EQ(root.children[1]->kind, ExprKind::kNot);
  EXPECT_EQ(root.children[1]->children[0]->kind, ExprKind::kBetween);
}

TEST(Parser, MixedScriptInterleavesSmosAndQueries) {
  auto script = ParseStatementScript(
                    "COPY TABLE R TO B;\n"
                    "SELECT COUNT(*) FROM B;\n"
                    "DROP TABLE B;\n")
                    .ValueOrDie();
  ASSERT_EQ(script.size(), 3u);
  EXPECT_EQ(script[0].kind, Statement::Kind::kSmo);
  EXPECT_EQ(script[1].kind, Statement::Kind::kQuery);
  EXPECT_EQ(script[2].kind, Statement::Kind::kSmo);
}

TEST(Parser, SmoOnlySurfaceRejectsSelectWithPosition) {
  Status st = ParseSmoScript("DROP TABLE A;\nSELECT * FROM B;").status();
  ASSERT_FALSE(st.ok());
  EXPECT_NE(st.message().find("line 2"), std::string::npos) << st.ToString();
  EXPECT_NE(st.message().find("query"), std::string::npos);
}

TEST(Parser, SelectErrorPaths) {
  struct Case {
    const char* text;
    const char* expect;  // substring of the error message
  };
  for (const Case& c : {
           Case{"SELECT COUNT(*) FROM t WHERE (a = 1;", "expected ')'"},
           Case{"SELECT * FROM t WHERE a = 1);",
                "expected ';' after the SELECT statement"},
           Case{"SELECT * FROM t WHERE ((a = 1 OR b = 2);", "expected ')'"},
           Case{"SELECT * FROM t WHERE x = 'oops;", "unterminated"},
           Case{"SELECT * FROM t WHERE x IN (1, 2;", "expected ')'"},
           Case{"SELECT * FROM t WHERE x IN ();", "expected a literal"},
           Case{"SELECT * FROM t WHERE x BETWEEN 1 5;",
                "expected keyword 'AND'"},
           Case{"SELECT * FROM t WHERE NOT;", "expected column name"},
           Case{"SELECT * FROM t WHERE x NOT = 3;",
                "expected IN or BETWEEN after NOT"},
           Case{"SELECT * FROM t WHERE;", "expected column name"},
           Case{"SELECT * FROM t WHERE x =;", "expected a literal"},
           // FROM lexes as an identifier, so it is eaten as a column
           // name and the real FROM is found missing.
           Case{"SELECT FROM t;", "expected keyword 'FROM'"},
           Case{"SELECT COUNT(x) FROM t;",
                "aggregates need a GROUP BY clause"},
           Case{"SELECT a FROM;", "expected table name"},
           Case{"SELECT a, SUM(m) FROM t;",
                "aggregates need a GROUP BY clause"},
           Case{"SELECT a, SUM(m) FROM t GROUP BY g;",
                "may only name the grouping column"},
           Case{"SELECT a FROM t GROUP BY a;",
                "GROUP BY needs at least one aggregate"},
           Case{"SELECT SUM(*) FROM t GROUP BY g;", "expected column name"},
           Case{"SELECT a, a FROM t;", "duplicate column 'a'"},
           Case{"SELECT b.x, b.x FROM a JOIN b ON k = k;",
                "duplicate column 'b.x'"},
           Case{"SELECT * FROM a JOIN b;", "expected keyword 'ON'"},
           Case{"SELECT * FROM a JOIN b ON x;", "expected '='"},
           Case{"SELECT * FROM a JOIN b ON x = ;", "expected column name"},
           Case{"SELECT * FROM t ORDER a;", "expected keyword 'BY'"},
           Case{"SELECT * FROM t ORDER BY;", "expected column name"},
           Case{"SELECT COUNT(*) FROM t ORDER BY a;",
                "ORDER BY applies to row-returning SELECTs"},
           Case{"SELECT g, SUM(m) FROM t GROUP BY g LIMIT 3;",
                "LIMIT applies to row-returning SELECTs"},
           Case{"SELECT * FROM t LIMIT -1;", "non-negative integer"},
           Case{"SELECT * FROM t LIMIT 2.5;", "non-negative integer"},
           Case{"SELECT * FROM t LIMIT x;", "non-negative integer"},
           // Out-of-range literals keep the positioned diagnostic.
           Case{"SELECT * FROM t LIMIT 99999999999999999999;",
                "column 23: LIMIT wants a non-negative integer"},
       }) {
    Status st = ParseStatementScript(c.text).status();
    ASSERT_FALSE(st.ok()) << c.text;
    EXPECT_NE(st.message().find(c.expect), std::string::npos)
        << c.text << " -> " << st.ToString();
  }
}

TEST(Parser, SelectRoundTripThroughToString) {
  // Statement::ToString of parsed SELECTs re-parses to the same
  // statement, like SMOs (same fixed point: ToString ∘ parse is
  // idempotent and equality is checked on the rendered form).
  for (const char* stmt :
       {"SELECT * FROM R",
        "SELECT a, b FROM R",
        "SELECT * FROM R WHERE a = 'it''s'",
        "SELECT COUNT(*) FROM R",
        "SELECT COUNT(*) FROM R WHERE a = 1 AND b = 2 AND c = 3",
        "SELECT g, SUM(m) FROM T GROUP BY g",
        "SELECT g, SUM(m) FROM T WHERE m > 0.5 GROUP BY g",
        "SELECT * FROM t WHERE a = 'x' AND (b > 3 OR NOT c IN (1, 2))",
        "SELECT * FROM t WHERE x BETWEEN 1 AND 5 AND y NOT BETWEEN 2.5 AND 3",
        "SELECT * FROM t WHERE NOT (a = 1 OR b != 2) AND c IN ('a', 'b')",
        "SELECT * FROM t WHERE NOT NOT a < 1e25",
        "SELECT * FROM t WHERE (a = 1 AND b = 2) OR (a = 3 AND b = 4)",
        "SELECT * FROM a JOIN b ON a.x = b.y",
        "SELECT a.x, b.z FROM a JOIN b ON x = y WHERE b.z > 3",
        "SELECT COUNT(*) FROM a JOIN b ON a.x = b.y WHERE z = 1",
        "SELECT g, SUM(m), COUNT(*), MIN(m), MAX(m), AVG(m) FROM T "
        "GROUP BY g",
        "SELECT g, COUNT(m) FROM a JOIN b ON x = y GROUP BY g",
        "SELECT a, b FROM t ORDER BY b DESC LIMIT 10",
        "SELECT * FROM t WHERE a > 1 ORDER BY a LIMIT 0",
        "SELECT * FROM t LIMIT 7"}) {
    Statement first = ParseStatement(stmt).ValueOrDie();
    auto reparsed = ParseStatement(first.ToString());
    ASSERT_TRUE(reparsed.ok())
        << stmt << " -> " << first.ToString() << ": "
        << reparsed.status().ToString();
    Statement second = std::move(reparsed).ValueOrDie();
    EXPECT_EQ(first.ToString(), second.ToString()) << stmt;
    EXPECT_EQ(second.kind, Statement::Kind::kQuery);
    EXPECT_EQ(first.query.verb, second.query.verb);
    EXPECT_EQ(first.query.table, second.query.table);
    EXPECT_EQ(first.query.columns, second.query.columns);
    EXPECT_EQ(first.query.group_by, second.query.group_by);
    EXPECT_TRUE(first.query.aggregates == second.query.aggregates) << stmt;
    EXPECT_EQ(first.query.join_table, second.query.join_table);
    EXPECT_EQ(first.query.join_left, second.query.join_left);
    EXPECT_EQ(first.query.join_right, second.query.join_right);
    EXPECT_EQ(first.query.order_by, second.query.order_by);
    EXPECT_EQ(first.query.order_desc, second.query.order_desc);
    EXPECT_EQ(first.query.limit, second.query.limit);
    ASSERT_EQ(first.query.where == nullptr, second.query.where == nullptr)
        << stmt;
    if (first.query.where != nullptr) {
      EXPECT_TRUE(ExprEquals(*first.query.where, *second.query.where))
          << stmt << " -> " << first.ToString();
    }
  }
}

TEST(Parser, SmoStatementsRoundTripAsStatements) {
  // The Statement wrapper preserves the SMO round-trip contract.
  Statement stmt =
      ParseStatement("PARTITION TABLE R INTO A, B WHERE x >= 10;")
          .ValueOrDie();
  EXPECT_EQ(stmt.kind, Statement::Kind::kSmo);
  Statement again = ParseStatement(stmt.ToString()).ValueOrDie();
  EXPECT_EQ(stmt.ToString(), again.ToString());
}

}  // namespace
}  // namespace cods

// Tests for the row-store baseline engine: tuple serialization, slotted
// pages, the heap table, and the hash index.

#include <unordered_set>

#include "gtest/gtest.h"
#include "rowstore/hash_index.h"
#include "rowstore/row_table.h"
#include "test_util.h"

namespace cods {
namespace {

TEST(RowSerialization, RoundTripAllTypes) {
  Row row{Value(int64_t{-42}), Value(3.25), Value("hello"), Value::Null(),
          Value(std::string())};
  std::vector<uint8_t> bytes;
  SerializeRow(row, &bytes);
  EXPECT_EQ(bytes.size(), SerializedRowSize(row));
  Row back = DeserializeRow(bytes.data(), bytes.size()).ValueOrDie();
  EXPECT_EQ(back, row);
}

TEST(RowSerialization, TruncationDetected) {
  Row row{Value(int64_t{1}), Value("abc")};
  std::vector<uint8_t> bytes;
  SerializeRow(row, &bytes);
  for (size_t cut : {size_t{0}, size_t{3}, bytes.size() - 1}) {
    EXPECT_TRUE(
        DeserializeRow(bytes.data(), cut).status().IsCorruption())
        << cut;
  }
}

TEST(RowSerialization, TrailingBytesRejected) {
  Row row{Value(int64_t{1})};
  std::vector<uint8_t> bytes;
  SerializeRow(row, &bytes);
  bytes.push_back(0);
  EXPECT_TRUE(DeserializeRow(bytes.data(), bytes.size())
                  .status()
                  .IsCorruption());
}

TEST(Page, InsertUntilFull) {
  Page page;
  std::vector<uint8_t> tuple(100, 0xAB);
  int inserted = 0;
  while (page.Insert(tuple).has_value()) ++inserted;
  // 100-byte tuples + 4-byte slots into an 8 KiB page: ~78.
  EXPECT_GT(inserted, 70);
  EXPECT_LT(inserted, 82);
  EXPECT_EQ(page.slot_count(), inserted);
  auto [data, size] = page.Get(0);
  EXPECT_EQ(size, tuple.size());
  EXPECT_EQ(data[0], 0xAB);
}

TEST(RowTable, InsertScanAndGet) {
  Schema schema({{"id", DataType::kInt64, false},
                 {"name", DataType::kString, false}});
  RowTable table("t", schema);
  std::vector<RowId> rids;
  for (int64_t i = 0; i < 1000; ++i) {
    Row row{Value(i), Value("name" + std::to_string(i))};
    rids.push_back(table.Insert(row).ValueOrDie());
  }
  EXPECT_EQ(table.rows(), 1000u);
  EXPECT_GT(table.num_pages(), 1u);  // must spill across pages

  Row row500 = table.Get(rids[500]).ValueOrDie();
  EXPECT_EQ(row500[0], Value(int64_t{500}));

  uint64_t seen = 0;
  int64_t sum = 0;
  table.Scan([&](RowId, const Row& row) {
    ++seen;
    sum += row[0].int64();
  });
  EXPECT_EQ(seen, 1000u);
  EXPECT_EQ(sum, 999 * 1000 / 2);
}

TEST(RowTable, RejectsBadShapes) {
  Schema schema({{"id", DataType::kInt64, false}});
  RowTable table("t", schema);
  EXPECT_FALSE(table.Insert({Value(int64_t{1}), Value(int64_t{2})}).ok());
  EXPECT_FALSE(table.Get(RowId{99, 0}).ok());
}

TEST(RowTable, ScanPreservesInsertionOrder) {
  Schema schema({{"id", DataType::kInt64, false}});
  RowTable table("t", schema);
  for (int64_t i = 0; i < 500; ++i) {
    ASSERT_TRUE(table.Insert({Value(i)}).ok());
  }
  int64_t expected = 0;
  table.Scan([&](RowId, const Row& row) {
    EXPECT_EQ(row[0].int64(), expected++);
  });
}

TEST(HashIndex, LookupFindsAllDuplicates) {
  Schema schema({{"k", DataType::kInt64, false},
                 {"v", DataType::kInt64, false}});
  RowTable table("t", schema);
  for (int64_t i = 0; i < 300; ++i) {
    ASSERT_TRUE(table.Insert({Value(i % 10), Value(i)}).ok());
  }
  HashIndex index = HashIndex::Build(table, {0});
  EXPECT_EQ(index.size(), 300u);
  std::vector<RowId> hits = index.Lookup({Value(int64_t{3})});
  EXPECT_EQ(hits.size(), 30u);
  for (RowId rid : hits) {
    Row row = table.Get(rid).ValueOrDie();
    EXPECT_EQ(row[0], Value(int64_t{3}));
  }
  EXPECT_TRUE(index.Lookup({Value(int64_t{999})}).empty());
}

TEST(HashIndex, CompositeKeys) {
  Schema schema({{"a", DataType::kInt64, false},
                 {"b", DataType::kString, false},
                 {"c", DataType::kInt64, false}});
  RowTable table("t", schema);
  ASSERT_TRUE(table.Insert({Value(int64_t{1}), Value("x"), Value(int64_t{1})}).ok());
  ASSERT_TRUE(table.Insert({Value(int64_t{1}), Value("y"), Value(int64_t{2})}).ok());
  HashIndex index = HashIndex::Build(table, {0, 1});
  EXPECT_EQ(index.Lookup({Value(int64_t{1}), Value("x")}).size(), 1u);
  EXPECT_EQ(index.Lookup({Value(int64_t{1}), Value("z")}).size(), 0u);
}

}  // namespace
}  // namespace cods

// End-to-end integration tests: the paper's Figure 1 walkthrough driven
// through the script parser and engine, cross-engine equivalence between
// CODS and every query-level baseline, and multi-step evolution chains.

#include "evolution/engine.h"
#include "gtest/gtest.h"
#include "query/query_evolution.h"
#include "smo/parser.h"
#include "storage/csv.h"
#include "test_util.h"
#include "workload/generator.h"

namespace cods {
namespace {

using ::cods::testing::ExpectSameContent;
using ::cods::testing::Figure1TableR;
using ::cods::testing::SortedRows;

TEST(Integration, Figure1ScriptedEvolution) {
  // The full demo flow: load data, run a script, inspect results.
  Catalog catalog;
  ASSERT_TRUE(catalog.AddTable(Figure1TableR()).ok());
  EvolutionEngine engine(&catalog, nullptr,
                         EngineOptions{.validate_preconditions = true,
                                       .validate_outputs = true});

  auto script = ParseSmoScript(
                    "COPY TABLE R TO R_backup;\n"
                    "DECOMPOSE TABLE R INTO S(Employee, Skill), "
                    "T(Employee, Address) KEY(Employee);\n"
                    "MERGE TABLES S, T INTO R2 ON (Employee);\n")
                    .ValueOrDie();
  ASSERT_TRUE(engine.ApplyAll(script).ok());

  // The round trip reproduces the original tuples.
  auto r2 = catalog.GetTable("R2").ValueOrDie();
  ExpectSameContent(*catalog.GetTable("R_backup").ValueOrDie(), *r2);
}

TEST(Integration, SchemaChangeBackAndForthKeepsData) {
  // schema1 -> schema2 -> schema1 (the scenario of §1): repeated
  // decompose/merge cycles must be lossless.
  Catalog catalog;
  ASSERT_TRUE(catalog.AddTable(Figure1TableR()).ok());
  EvolutionEngine engine(&catalog);
  for (int cycle = 0; cycle < 3; ++cycle) {
    ASSERT_TRUE(engine
                    .Apply(Smo::DecomposeTable(
                        "R", "S", {"Employee", "Skill"}, {}, "T",
                        {"Employee", "Address"}, {"Employee"}))
                    .ok())
        << cycle;
    ASSERT_TRUE(
        engine.Apply(Smo::MergeTables("S", "T", "R", {"Employee"}, {}))
            .ok())
        << cycle;
  }
  ExpectSameContent(*Figure1TableR(), *catalog.GetTable("R").ValueOrDie());
}

TEST(Integration, CodsMatchesEveryBaselineOnRandomData) {
  WorkloadSpec spec;
  spec.num_rows = 4000;
  spec.num_distinct = 250;
  auto r = GenerateEvolutionTable(spec).ValueOrDie();

  // CODS data-level path.
  Catalog catalog;
  ASSERT_TRUE(catalog.AddTable(r).ok());
  EvolutionEngine engine(&catalog);
  ASSERT_TRUE(engine
                  .Apply(Smo::DecomposeTable("R", "S", {"K", "V"}, {}, "T",
                                             {"K", "P"}, {"K"}))
                  .ok());
  auto cods_s = catalog.GetTable("S").ValueOrDie();
  auto cods_t = catalog.GetTable("T").ValueOrDie();

  DecomposeSpec spec2;
  spec2.s_columns = {"K", "V"};
  spec2.t_columns = {"K", "P"};
  spec2.t_key = {"K"};

  // M: column-store query level.
  auto m = ColumnQueryLevelDecompose(*r, spec2, "S", "T").ValueOrDie();
  ExpectSameContent(*cods_s, *m.s);
  ExpectSameContent(*cods_t, *m.t);

  // C / C+I / S: row-store baselines.
  auto heap = MaterializeToRowStore(*r).ValueOrDie();
  for (BaselineKind kind :
       {BaselineKind::kRowStore, BaselineKind::kRowStoreIndexed,
        BaselineKind::kRowStoreLite}) {
    auto rowres =
        RowStoreDecompose(*heap, spec2, kind, "S", "T").ValueOrDie();
    auto s_col = RowTableToColumnTable(*rowres.s, "S").ValueOrDie();
    auto t_col = RowTableToColumnTable(*rowres.t, "T").ValueOrDie();
    EXPECT_EQ(SortedRows(*cods_s), SortedRows(*s_col))
        << BaselineKindToString(kind);
    EXPECT_EQ(SortedRows(*cods_t), SortedRows(*t_col))
        << BaselineKindToString(kind);
  }

  // And the merge direction.
  ASSERT_TRUE(
      engine.Apply(Smo::MergeTables("S", "T", "R", {"K"}, {})).ok());
  auto cods_r = catalog.GetTable("R").ValueOrDie();
  ExpectSameContent(*r, *cods_r);
}

TEST(Integration, CsvInOutAroundTheEngine) {
  // Load CSV, evolve, export, reload: data survives the full pipeline.
  const char* csv =
      "Employee,Skill,Address\n"
      "Jones,Typing,425 Grant Ave\n"
      "Jones,Shorthand,425 Grant Ave\n"
      "Ellis,Alchemy,747 Industrial Way\n";
  auto r = CsvToTableInferred(csv, "R").ValueOrDie();
  Catalog catalog;
  ASSERT_TRUE(catalog.AddTable(r).ok());
  EvolutionEngine engine(&catalog);
  ASSERT_TRUE(engine
                  .Apply(Smo::DecomposeTable(
                      "R", "S", {"Employee", "Skill"}, {}, "T",
                      {"Employee", "Address"}, {"Employee"}))
                  .ok());
  auto t = catalog.GetTable("T").ValueOrDie();
  std::string out_csv = TableToCsv(*t);
  EXPECT_NE(out_csv.find("Jones,425 Grant Ave"), std::string::npos);
  EXPECT_NE(out_csv.find("Ellis,747 Industrial Way"), std::string::npos);

  auto reloaded = CsvToTable(out_csv, "T", t->schema()).ValueOrDie();
  ExpectSameContent(*t, *reloaded);
}

TEST(Integration, LongOperatorChain) {
  // A workload-change story: add a column, partition by it, evolve each
  // part, reunite, and clean up — exercising every operator family in
  // one chain with invariant validation on.
  Catalog catalog;
  ASSERT_TRUE(catalog.AddTable(Figure1TableR()).ok());
  EvolutionEngine engine(&catalog, nullptr,
                         EngineOptions{.validate_outputs = true});
  auto script = ParseSmoScript(
                    "ADD COLUMN Grade INT64 TO R DEFAULT 1;\n"
                    "PARTITION TABLE R INTO Grant, Rest "
                    "WHERE Address = '425 Grant Ave';\n"
                    "UNION TABLES Grant, Rest INTO R;\n"
                    "RENAME COLUMN Grade TO Level IN R;\n"
                    "DROP COLUMN Level FROM R;\n"
                    "COPY TABLE R TO Final;\n"
                    "DROP TABLE R;\n")
                    .ValueOrDie();
  ASSERT_TRUE(engine.ApplyAll(script).ok());
  auto final_table = catalog.GetTable("Final").ValueOrDie();
  EXPECT_EQ(SortedRows(*final_table), SortedRows(*Figure1TableR()));
  EXPECT_EQ(catalog.TableNames(), (std::vector<std::string>{"Final"}));
}

TEST(Integration, GeneralMergeAcrossEnginesOnSkewedData) {
  auto pair = GenerateGeneralMergePair(40, 5, 7, 77).ValueOrDie();
  auto cods = CodsMergeGeneral(*pair.s, *pair.t, {"J"}, {}, "R", nullptr)
                  .ValueOrDie();
  auto m = ColumnQueryLevelMerge(*pair.s, *pair.t, {"J"}, {}, "R")
               .ValueOrDie();
  ExpectSameContent(*cods, *m.r);

  auto s_heap = MaterializeToRowStore(*pair.s).ValueOrDie();
  auto t_heap = MaterializeToRowStore(*pair.t).ValueOrDie();
  auto c = RowStoreMerge(*s_heap, *t_heap, {"J"}, {},
                         BaselineKind::kRowStore, "R")
               .ValueOrDie();
  auto c_col = RowTableToColumnTable(*c.r, "R").ValueOrDie();
  EXPECT_EQ(SortedRows(*cods), SortedRows(*c_col));
}

TEST(Integration, EvolutionStatusNarratesTheDemoFlow) {
  // §3's "Tracking Data Evolution Status": the observer must see the
  // data-level steps in order, with detail strings.
  Catalog catalog;
  ASSERT_TRUE(catalog.AddTable(Figure1TableR()).ok());
  RecordingObserver observer;
  EvolutionEngine engine(&catalog, &observer);
  ASSERT_TRUE(engine
                  .Apply(Smo::DecomposeTable(
                      "R", "S", {"Employee", "Skill"}, {}, "T",
                      {"Employee", "Address"}, {"Employee"}))
                  .ok());
  ASSERT_GE(observer.steps().size(), 3u);
  std::vector<std::string> names;
  for (const auto& step : observer.steps()) names.push_back(step.step);
  EXPECT_EQ(names, (std::vector<std::string>{"reuse", "distinction",
                                             "filtering"}));
  EXPECT_NE(observer.steps()[1].detail.find("Employee"),
            std::string::npos);
}

}  // namespace
}  // namespace cods

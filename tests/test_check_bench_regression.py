#!/usr/bin/env python3
"""Unit tests for scripts/check_bench_regression.py — the bench gate is
load-bearing CI infrastructure, so its modes (machine-relative anchor,
best-of-repetitions, noise floor, thread-context skip, and the coarse
absolute wall_ms bound) are pinned here. Registered with ctest as
`test_bench_gate`."""

import json
import os
import subprocess
import sys
import tempfile
import unittest

SCRIPT = os.path.join(
    os.path.dirname(os.path.abspath(__file__)), os.pardir, "scripts",
    "check_bench_regression.py",
)


def bench_doc(series, threads="1", reps=3, wall_ms=None, counters=None):
    """A minimal google-benchmark JSON document. `series` maps name ->
    real_time in us; each series gets `reps` raw repetition entries with
    a tiny jitter so best-of-N has something to pick from. `wall_ms`
    (name -> ms) attaches the run-cost counter; `counters` (name ->
    {counter: value}) attaches arbitrary counters (e.g. the
    larger-is-better queries_per_sec)."""
    benchmarks = []
    for name, us in series.items():
        for rep in range(reps):
            entry = {
                "name": name,
                "run_type": "iteration",
                "repetition_index": rep,
                "real_time": us * (1.0 + 0.01 * rep),
                "cpu_time": us,
                "time_unit": "us",
            }
            if wall_ms is not None:
                entry["wall_ms"] = wall_ms[name] * (1.0 + 0.01 * rep)
            if counters is not None and name in counters:
                for key, value in counters[name].items():
                    # Jitter downward so max-of-reps picks rep 0.
                    entry[key] = value * (1.0 - 0.01 * rep)
            benchmarks.append(entry)
    return {"context": {"cods_threads": threads}, "benchmarks": benchmarks}


class GateTest(unittest.TestCase):
    def run_gate(self, baseline, current, *extra_args):
        """Writes the two docs as BENCH_x.json and runs the gate."""
        with tempfile.TemporaryDirectory() as tmp:
            base_dir = os.path.join(tmp, "baselines")
            cur_dir = os.path.join(tmp, "current")
            os.makedirs(base_dir)
            os.makedirs(cur_dir)
            with open(os.path.join(base_dir, "BENCH_x.json"), "w") as f:
                json.dump(baseline, f)
            with open(os.path.join(cur_dir, "BENCH_x.json"), "w") as f:
                json.dump(current, f)
            proc = subprocess.run(
                [sys.executable, SCRIPT, "--baseline-dir", base_dir,
                 "--current-dir", cur_dir, *extra_args],
                capture_output=True, text=True,
            )
            return proc

    # Enough series that the relative anchor is trusted
    # (>= --min-anchor-series).
    BASE = {"BM_a": 100.0, "BM_b": 200.0, "BM_c": 400.0, "BM_d": 800.0}

    def test_identical_runs_pass(self):
        proc = self.run_gate(bench_doc(self.BASE), bench_doc(self.BASE))
        self.assertEqual(proc.returncode, 0, proc.stdout + proc.stderr)
        self.assertIn("no regressions", proc.stdout)

    def test_single_series_regression_fails(self):
        cur = dict(self.BASE, BM_b=300.0)  # 1.5x, 3 unchanged anchors
        proc = self.run_gate(bench_doc(self.BASE), bench_doc(cur))
        self.assertEqual(proc.returncode, 1, proc.stdout + proc.stderr)
        self.assertIn("BM_b", proc.stdout)

    def test_uniform_shift_cancels_in_relative_mode(self):
        # Every series 2x slower, wall cost doubled: a slower runner, not
        # a regression — the median anchor absorbs it and the 2x wall
        # ratio sits inside the 4x bound.
        cur = {k: v * 2 for k, v in self.BASE.items()}
        wall = {k: 10.0 for k in self.BASE}
        wall2 = {k: 20.0 for k in self.BASE}
        proc = self.run_gate(bench_doc(self.BASE, wall_ms=wall),
                             bench_doc(cur, wall_ms=wall2))
        self.assertEqual(proc.returncode, 0, proc.stdout + proc.stderr)

    def test_wall_bound_catches_across_the_board_collapse(self):
        # Every series AND the wall cost 6x slower: invisible to the
        # relative anchor, caught by the absolute wall_ms backstop.
        cur = {k: v * 6 for k, v in self.BASE.items()}
        wall = {k: 10.0 for k in self.BASE}
        wall6 = {k: 60.0 for k in self.BASE}
        proc = self.run_gate(bench_doc(self.BASE, wall_ms=wall),
                             bench_doc(cur, wall_ms=wall6))
        self.assertEqual(proc.returncode, 1, proc.stdout + proc.stderr)
        self.assertIn("WALL-BOUND", proc.stdout)
        self.assertIn("<total wall_ms>", proc.stdout)

    def test_wall_bound_ignores_added_and_removed_series(self):
        # New heavy series are allowed to appear (same policy as the
        # timing gate), so they must not trip the bound...
        wall = {k: 10.0 for k in self.BASE}
        cur_series = dict(self.BASE, BM_new=5000.0)
        cur_wall = dict(wall, BM_new=500.0)
        proc = self.run_gate(bench_doc(self.BASE, wall_ms=wall),
                             bench_doc(cur_series, wall_ms=cur_wall))
        self.assertEqual(proc.returncode, 0, proc.stdout + proc.stderr)
        self.assertNotIn("WALL-BOUND", proc.stdout)
        # ...and dropping series must not mask a collapse of the rest:
        # half the series disappear while the survivors run 6x slower.
        kept = {"BM_a": 600.0, "BM_b": 1200.0}
        kept_wall = {"BM_a": 60.0, "BM_b": 60.0}
        proc = self.run_gate(bench_doc(self.BASE, wall_ms=wall),
                             bench_doc(kept, wall_ms=kept_wall))
        self.assertEqual(proc.returncode, 1, proc.stdout + proc.stderr)
        self.assertIn("WALL-BOUND", proc.stdout)

    def test_wall_bound_uses_best_of_repetitions(self):
        # Only the LAST repetitions are slow (a noisy tail); min across
        # reps keeps the totals comparable, so the bound must not fire.
        wall = {k: 10.0 for k in self.BASE}
        base = bench_doc(self.BASE, wall_ms=wall)
        cur = bench_doc(self.BASE, wall_ms=wall)
        for entry in cur["benchmarks"]:
            if entry["repetition_index"] == 2:
                entry["wall_ms"] *= 50
        proc = self.run_gate(base, cur)
        self.assertEqual(proc.returncode, 0, proc.stdout + proc.stderr)

    def test_wall_factor_flag_tightens_and_disables(self):
        cur = {k: v * 2 for k, v in self.BASE.items()}
        wall = {k: 10.0 for k in self.BASE}
        wall2 = {k: 20.0 for k in self.BASE}
        base = bench_doc(self.BASE, wall_ms=wall)
        slow = bench_doc(cur, wall_ms=wall2)
        tight = self.run_gate(base, slow, "--wall-factor", "1.5")
        self.assertEqual(tight.returncode, 1, tight.stdout)
        off = self.run_gate(base, slow, "--wall-factor", "0")
        self.assertEqual(off.returncode, 0, off.stdout)

    def test_missing_wall_counters_skip_the_bound(self):
        # Pre-counter baselines must not trip the bound.
        cur = {k: v * 2 for k, v in self.BASE.items()}
        proc = self.run_gate(bench_doc(self.BASE), bench_doc(cur))
        self.assertEqual(proc.returncode, 0, proc.stdout + proc.stderr)
        self.assertNotIn("WALL-BOUND", proc.stdout)

    def test_metric_total_bound_catches_minTime_style_collapse(self):
        # MinTime-driven series keep wall_ms flat when the code slows
        # down (fewer iterations, same loop time) — the summed
        # per-iteration metric still exposes a uniform 6x collapse.
        cur = {k: v * 6 for k, v in self.BASE.items()}
        flat_wall = {k: 10.0 for k in self.BASE}
        proc = self.run_gate(bench_doc(self.BASE, wall_ms=flat_wall),
                             bench_doc(cur, wall_ms=flat_wall))
        self.assertEqual(proc.returncode, 1, proc.stdout + proc.stderr)
        self.assertIn("TOTAL-BOUND", proc.stdout)
        self.assertNotIn("WALL-BOUND", proc.stdout)

    def test_absolute_mode_sees_uniform_shift(self):
        cur = {k: v * 2 for k, v in self.BASE.items()}
        proc = self.run_gate(bench_doc(self.BASE), bench_doc(cur),
                             "--absolute")
        self.assertEqual(proc.returncode, 1, proc.stdout + proc.stderr)

    def test_noise_floor_excludes_tiny_series(self):
        base = dict(self.BASE, BM_tiny=1.0)
        cur = dict(self.BASE, BM_tiny=4.0)  # 4x, but under the 5us floor
        proc = self.run_gate(bench_doc(base), bench_doc(cur))
        self.assertEqual(proc.returncode, 0, proc.stdout + proc.stderr)
        self.assertIn("noise floor", proc.stdout)

    def test_thread_context_mismatch_fails_loudly(self):
        proc = self.run_gate(bench_doc(self.BASE, threads="1"),
                             bench_doc(self.BASE, threads="8"))
        self.assertEqual(proc.returncode, 2, proc.stdout + proc.stderr)
        self.assertIn("cods_threads", proc.stdout + proc.stderr)

    # Four throughput series: enough for the rate anchor to be trusted.
    STORM = {f"BM_storm/readers:{n}": 1000.0 * n for n in (1, 2, 4, 8)}
    RATES = {
        f"BM_storm/readers:{n}": {"queries_per_sec": 500.0 * n}
        for n in (1, 2, 4, 8)
    }

    def test_rate_counter_drop_fails_inverted(self):
        # Throughput FALLING is the regression — a 40% drop on one
        # series against three unchanged anchors must fail.
        cur_rates = {
            k: dict(v) for k, v in self.RATES.items()
        }
        cur_rates["BM_storm/readers:4"]["queries_per_sec"] *= 0.6
        proc = self.run_gate(
            bench_doc(self.STORM, counters=self.RATES),
            bench_doc(self.STORM, counters=cur_rates),
        )
        self.assertEqual(proc.returncode, 1, proc.stdout + proc.stderr)
        self.assertIn("RATE-REG", proc.stdout)
        self.assertIn("queries_per_sec", proc.stdout)

    def test_rate_counter_rise_passes(self):
        # Throughput going UP is never a regression, however large.
        cur_rates = {
            k: {"queries_per_sec": v["queries_per_sec"] * 3}
            for k, v in self.RATES.items()
        }
        proc = self.run_gate(
            bench_doc(self.STORM, counters=self.RATES),
            bench_doc(self.STORM, counters=cur_rates),
        )
        self.assertEqual(proc.returncode, 0, proc.stdout + proc.stderr)

    def test_rate_uniform_shift_cancels_in_relative_mode(self):
        # Every throughput halved: a slower runner; the median rate
        # anchor absorbs it exactly like the timing anchor does.
        cur_rates = {
            k: {"queries_per_sec": v["queries_per_sec"] * 0.5}
            for k, v in self.RATES.items()
        }
        proc = self.run_gate(
            bench_doc(self.STORM, counters=self.RATES),
            bench_doc(self.STORM, counters=cur_rates),
        )
        self.assertEqual(proc.returncode, 0, proc.stdout + proc.stderr)
        self.assertIn("rate-relative mode", proc.stdout)

    def test_rate_series_time_excluded_from_time_gate(self):
        # A throughput series' batch time blowing up must not trip the
        # per-series TIME gate (the counter is the contract there) —
        # here one storm series is 10x slower in real_time while every
        # queries_per_sec counter is unchanged.
        cur_times = dict(self.STORM)
        cur_times["BM_storm/readers:8"] *= 10
        base = bench_doc(self.STORM, counters=self.RATES)
        cur = bench_doc(cur_times, counters=self.RATES)
        proc = self.run_gate(base, cur)
        self.assertEqual(proc.returncode, 0, proc.stdout + proc.stderr)
        self.assertNotIn("REGRESSION", proc.stdout.replace("RATE-REG", ""))

    def test_rate_best_of_repetitions_takes_max(self):
        # One repetition lost to noise reports a terrible rate; max
        # across reps keeps the series comparable.
        base = bench_doc(self.STORM, counters=self.RATES)
        cur = bench_doc(self.STORM, counters=self.RATES)
        for entry in cur["benchmarks"]:
            if entry["repetition_index"] == 2 and "queries_per_sec" in entry:
                entry["queries_per_sec"] *= 0.1
        proc = self.run_gate(base, cur)
        self.assertEqual(proc.returncode, 0, proc.stdout + proc.stderr)

    def test_mixed_file_gates_times_and_rates_independently(self):
        # Latency series and throughput series coexist in one file; a
        # clean run passes both gates, and a latency regression still
        # fails even though the rates are healthy.
        times = dict(self.BASE, **self.STORM)
        base = bench_doc(times, counters=self.RATES)
        proc = self.run_gate(base, bench_doc(times, counters=self.RATES))
        self.assertEqual(proc.returncode, 0, proc.stdout + proc.stderr)
        slow = dict(times, BM_b=times["BM_b"] * 1.5)
        proc = self.run_gate(base, bench_doc(slow, counters=self.RATES))
        self.assertEqual(proc.returncode, 1, proc.stdout + proc.stderr)
        self.assertIn("BM_b", proc.stdout)

    def test_best_of_repetitions_forgives_one_bad_rep(self):
        base = bench_doc(self.BASE)
        cur = bench_doc(self.BASE)
        for entry in cur["benchmarks"]:
            if entry["repetition_index"] == 0:
                entry["real_time"] *= 10  # one repetition lost to noise
        proc = self.run_gate(base, cur)
        self.assertEqual(proc.returncode, 0, proc.stdout + proc.stderr)


if __name__ == "__main__":
    unittest.main()

// Tests for logical operations on compressed bitmaps, including the
// fill-skipping fast paths, verified against the plain-bitmap oracle.

#include "bitmap/wah_ops.h"

#include "bitmap/plain_bitmap.h"
#include "common/random.h"
#include "gtest/gtest.h"

namespace cods {
namespace {

WahBitmap RandomWah(uint64_t size, double density, uint64_t seed) {
  Rng rng(seed);
  WahBitmap bm;
  for (uint64_t i = 0; i < size; ++i) bm.AppendBit(rng.NextBool(density));
  return bm;
}

TEST(WahOps, AndBasic) {
  WahBitmap a = WahBitmap::FromPositions({1, 2, 3, 100}, 200);
  WahBitmap b = WahBitmap::FromPositions({2, 3, 4, 150}, 200);
  WahBitmap c = WahAnd(a, b);
  EXPECT_EQ(c.SetPositions(), (std::vector<uint64_t>{2, 3}));
}

TEST(WahOps, OrBasic) {
  WahBitmap a = WahBitmap::FromPositions({1, 100}, 200);
  WahBitmap b = WahBitmap::FromPositions({2, 150}, 200);
  WahBitmap c = WahOr(a, b);
  EXPECT_EQ(c.SetPositions(), (std::vector<uint64_t>{1, 2, 100, 150}));
}

TEST(WahOps, XorBasic) {
  WahBitmap a = WahBitmap::FromPositions({1, 2}, 100);
  WahBitmap b = WahBitmap::FromPositions({2, 3}, 100);
  EXPECT_EQ(WahXor(a, b).SetPositions(), (std::vector<uint64_t>{1, 3}));
}

TEST(WahOps, AndNotBasic) {
  WahBitmap a = WahBitmap::FromPositions({1, 2, 3}, 100);
  WahBitmap b = WahBitmap::FromPositions({2}, 100);
  EXPECT_EQ(WahAndNot(a, b).SetPositions(), (std::vector<uint64_t>{1, 3}));
}

TEST(WahOps, NotFlipsEverything) {
  WahBitmap a = WahBitmap::FromPositions({0, 99}, 100);
  WahBitmap n = WahNot(a);
  EXPECT_EQ(n.size(), 100u);
  EXPECT_EQ(n.CountOnes(), 98u);
  EXPECT_FALSE(n.Get(0));
  EXPECT_TRUE(n.Get(1));
  EXPECT_FALSE(n.Get(99));
  // Double negation is identity (and representations are canonical).
  EXPECT_EQ(WahNot(n), a);
}

TEST(WahOps, EmptyOperands) {
  WahBitmap a, b;
  EXPECT_EQ(WahAnd(a, b).size(), 0u);
  EXPECT_EQ(WahOr(a, b).size(), 0u);
  EXPECT_EQ(WahNot(a).size(), 0u);
  EXPECT_EQ(WahAndCount(a, b), 0u);
  EXPECT_FALSE(WahIntersects(a, b));
}

TEST(WahOps, ZeroFillSkipsAreTaken) {
  // a is one huge zero fill; AND must stay tiny regardless of b.
  WahBitmap a;
  a.AppendRun(false, 63 * 100000);
  WahBitmap b = RandomWah(63 * 100000, 0.5, 3);
  WahBitmap c = WahAnd(a, b);
  EXPECT_EQ(c.CountOnes(), 0u);
  EXPECT_EQ(c.NumWords(), 1u);  // canonical single zero fill
}

TEST(WahOps, OneFillSaturatesOr) {
  WahBitmap a;
  a.AppendRun(true, 63 * 1000);
  WahBitmap b = RandomWah(63 * 1000, 0.5, 4);
  WahBitmap c = WahOr(a, b);
  EXPECT_EQ(c.CountOnes(), c.size());
  EXPECT_EQ(c.NumWords(), 1u);
}

TEST(WahOps, AndCountMatchesMaterializedAnd) {
  WahBitmap a = RandomWah(5000, 0.3, 5);
  WahBitmap b = RandomWah(5000, 0.3, 6);
  EXPECT_EQ(WahAndCount(a, b), WahAnd(a, b).CountOnes());
}

TEST(WahOps, IntersectsAgreesWithAndCount) {
  WahBitmap a = WahBitmap::FromPositions({4000}, 5000);
  WahBitmap b = WahBitmap::FromPositions({4000}, 5000);
  WahBitmap c = WahBitmap::FromPositions({4001}, 5000);
  EXPECT_TRUE(WahIntersects(a, b));
  EXPECT_FALSE(WahIntersects(a, c));
}

TEST(WahOpsDeath, SizeMismatchIsFatal) {
  WahBitmap a = WahBitmap::FromPositions({1}, 10);
  WahBitmap b = WahBitmap::FromPositions({1}, 11);
  EXPECT_DEATH(WahAnd(a, b), "different sizes");
}

// ---- Property sweep against the plain oracle. ------------------------------

struct OpsParam {
  uint64_t size;
  double da;
  double db;
};

class WahOpsProperty : public ::testing::TestWithParam<OpsParam> {};

TEST_P(WahOpsProperty, AllOpsMatchOracle) {
  const OpsParam p = GetParam();
  WahBitmap a = RandomWah(p.size, p.da, 100 + p.size);
  WahBitmap b = RandomWah(p.size, p.db, 200 + p.size);
  PlainBitmap pa = PlainBitmap::FromWah(a);
  PlainBitmap pb = PlainBitmap::FromWah(b);

  EXPECT_EQ(WahAnd(a, b), pa.And(pb).ToWah());
  EXPECT_EQ(WahOr(a, b), pa.Or(pb).ToWah());
  EXPECT_EQ(WahXor(a, b), pa.Xor(pb).ToWah());
  EXPECT_EQ(WahAndCount(a, b), pa.And(pb).CountOnes());
  EXPECT_EQ(WahIntersects(a, b), pa.And(pb).CountOnes() > 0);

  // AndNot via oracle: a AND (NOT b).
  PlainBitmap not_b(p.size);
  for (uint64_t i = 0; i < p.size; ++i) {
    if (!pb.Get(i)) not_b.Set(i);
  }
  EXPECT_EQ(WahAndNot(a, b), pa.And(not_b).ToWah());
  EXPECT_EQ(WahNot(b), not_b.ToWah());

  // Algebraic identities.
  EXPECT_EQ(WahAnd(a, a), a);
  EXPECT_EQ(WahOr(a, a), a);
  EXPECT_EQ(WahXor(a, a).CountOnes(), 0u);
  EXPECT_EQ(WahAnd(a, b), WahAnd(b, a));
  EXPECT_EQ(WahOr(a, b), WahOr(b, a));
  EXPECT_EQ(WahOr(WahAnd(a, b), WahAndNot(a, b)), a);
}

INSTANTIATE_TEST_SUITE_P(
    Grid, WahOpsProperty,
    ::testing::Values(OpsParam{1, 0.5, 0.5}, OpsParam{63, 0.5, 0.5},
                      OpsParam{64, 0.2, 0.8}, OpsParam{1000, 0.0, 0.5},
                      OpsParam{1000, 1.0, 0.5}, OpsParam{1000, 0.5, 0.5},
                      OpsParam{12345, 0.001, 0.9},
                      OpsParam{12345, 0.01, 0.01},
                      OpsParam{70000, 0.0001, 0.5},
                      OpsParam{70000, 0.3, 0.3}),
    [](const ::testing::TestParamInfo<OpsParam>& info) {
      return "n" + std::to_string(info.param.size) + "_a" +
             std::to_string(static_cast<int>(info.param.da * 10000)) + "_b" +
             std::to_string(static_cast<int>(info.param.db * 10000));
    });

}  // namespace
}  // namespace cods

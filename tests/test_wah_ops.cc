// Tests for logical operations on compressed bitmaps, including the
// fill-skipping fast paths, verified against the plain-bitmap oracle.

#include "bitmap/wah_ops.h"

#include "bitmap/plain_bitmap.h"
#include "common/random.h"
#include "gtest/gtest.h"

namespace cods {
namespace {

WahBitmap RandomWah(uint64_t size, double density, uint64_t seed) {
  Rng rng(seed);
  WahBitmap bm;
  for (uint64_t i = 0; i < size; ++i) bm.AppendBit(rng.NextBool(density));
  return bm;
}

TEST(WahOps, AndBasic) {
  WahBitmap a = WahBitmap::FromPositions({1, 2, 3, 100}, 200);
  WahBitmap b = WahBitmap::FromPositions({2, 3, 4, 150}, 200);
  WahBitmap c = WahAnd(a, b);
  EXPECT_EQ(c.SetPositions(), (std::vector<uint64_t>{2, 3}));
}

TEST(WahOps, OrBasic) {
  WahBitmap a = WahBitmap::FromPositions({1, 100}, 200);
  WahBitmap b = WahBitmap::FromPositions({2, 150}, 200);
  WahBitmap c = WahOr(a, b);
  EXPECT_EQ(c.SetPositions(), (std::vector<uint64_t>{1, 2, 100, 150}));
}

TEST(WahOps, XorBasic) {
  WahBitmap a = WahBitmap::FromPositions({1, 2}, 100);
  WahBitmap b = WahBitmap::FromPositions({2, 3}, 100);
  EXPECT_EQ(WahXor(a, b).SetPositions(), (std::vector<uint64_t>{1, 3}));
}

TEST(WahOps, AndNotBasic) {
  WahBitmap a = WahBitmap::FromPositions({1, 2, 3}, 100);
  WahBitmap b = WahBitmap::FromPositions({2}, 100);
  EXPECT_EQ(WahAndNot(a, b).SetPositions(), (std::vector<uint64_t>{1, 3}));
}

TEST(WahOps, NotFlipsEverything) {
  WahBitmap a = WahBitmap::FromPositions({0, 99}, 100);
  WahBitmap n = WahNot(a);
  EXPECT_EQ(n.size(), 100u);
  EXPECT_EQ(n.CountOnes(), 98u);
  EXPECT_FALSE(n.Get(0));
  EXPECT_TRUE(n.Get(1));
  EXPECT_FALSE(n.Get(99));
  // Double negation is identity (and representations are canonical).
  EXPECT_EQ(WahNot(n), a);
}

TEST(WahOps, EmptyOperands) {
  WahBitmap a, b;
  EXPECT_EQ(WahAnd(a, b).size(), 0u);
  EXPECT_EQ(WahOr(a, b).size(), 0u);
  EXPECT_EQ(WahNot(a).size(), 0u);
  EXPECT_EQ(WahAndCount(a, b), 0u);
  EXPECT_FALSE(WahIntersects(a, b));
}

TEST(WahOps, ZeroFillSkipsAreTaken) {
  // a is one huge zero fill; AND must stay tiny regardless of b.
  WahBitmap a;
  a.AppendRun(false, 63 * 100000);
  WahBitmap b = RandomWah(63 * 100000, 0.5, 3);
  WahBitmap c = WahAnd(a, b);
  EXPECT_EQ(c.CountOnes(), 0u);
  EXPECT_EQ(c.NumWords(), 1u);  // canonical single zero fill
}

TEST(WahOps, OneFillSaturatesOr) {
  WahBitmap a;
  a.AppendRun(true, 63 * 1000);
  WahBitmap b = RandomWah(63 * 1000, 0.5, 4);
  WahBitmap c = WahOr(a, b);
  EXPECT_EQ(c.CountOnes(), c.size());
  EXPECT_EQ(c.NumWords(), 1u);
}

TEST(WahOps, AndCountMatchesMaterializedAnd) {
  WahBitmap a = RandomWah(5000, 0.3, 5);
  WahBitmap b = RandomWah(5000, 0.3, 6);
  EXPECT_EQ(WahAndCount(a, b), WahAnd(a, b).CountOnes());
}

TEST(WahOps, IntersectsAgreesWithAndCount) {
  WahBitmap a = WahBitmap::FromPositions({4000}, 5000);
  WahBitmap b = WahBitmap::FromPositions({4000}, 5000);
  WahBitmap c = WahBitmap::FromPositions({4001}, 5000);
  EXPECT_TRUE(WahIntersects(a, b));
  EXPECT_FALSE(WahIntersects(a, c));
}

TEST(WahOpsDeath, SizeMismatchIsFatal) {
  WahBitmap a = WahBitmap::FromPositions({1}, 10);
  WahBitmap b = WahBitmap::FromPositions({1}, 11);
  EXPECT_DEATH(WahAnd(a, b), "different sizes");
}

// ---- Property sweep against the plain oracle. ------------------------------

struct OpsParam {
  uint64_t size;
  double da;
  double db;
};

class WahOpsProperty : public ::testing::TestWithParam<OpsParam> {};

TEST_P(WahOpsProperty, AllOpsMatchOracle) {
  const OpsParam p = GetParam();
  WahBitmap a = RandomWah(p.size, p.da, 100 + p.size);
  WahBitmap b = RandomWah(p.size, p.db, 200 + p.size);
  PlainBitmap pa = PlainBitmap::FromWah(a);
  PlainBitmap pb = PlainBitmap::FromWah(b);

  EXPECT_EQ(WahAnd(a, b), pa.And(pb).ToWah());
  EXPECT_EQ(WahOr(a, b), pa.Or(pb).ToWah());
  EXPECT_EQ(WahXor(a, b), pa.Xor(pb).ToWah());
  EXPECT_EQ(WahAndCount(a, b), pa.And(pb).CountOnes());
  EXPECT_EQ(WahIntersects(a, b), pa.And(pb).CountOnes() > 0);

  // AndNot via oracle: a AND (NOT b).
  PlainBitmap not_b(p.size);
  for (uint64_t i = 0; i < p.size; ++i) {
    if (!pb.Get(i)) not_b.Set(i);
  }
  EXPECT_EQ(WahAndNot(a, b), pa.And(not_b).ToWah());
  EXPECT_EQ(WahNot(b), not_b.ToWah());

  // Algebraic identities.
  EXPECT_EQ(WahAnd(a, a), a);
  EXPECT_EQ(WahOr(a, a), a);
  EXPECT_EQ(WahXor(a, a).CountOnes(), 0u);
  EXPECT_EQ(WahAnd(a, b), WahAnd(b, a));
  EXPECT_EQ(WahOr(a, b), WahOr(b, a));
  EXPECT_EQ(WahOr(WahAnd(a, b), WahAndNot(a, b)), a);
}

INSTANTIATE_TEST_SUITE_P(
    Grid, WahOpsProperty,
    ::testing::Values(OpsParam{1, 0.5, 0.5}, OpsParam{63, 0.5, 0.5},
                      OpsParam{64, 0.2, 0.8}, OpsParam{1000, 0.0, 0.5},
                      OpsParam{1000, 1.0, 0.5}, OpsParam{1000, 0.5, 0.5},
                      OpsParam{12345, 0.001, 0.9},
                      OpsParam{12345, 0.01, 0.01},
                      OpsParam{70000, 0.0001, 0.5},
                      OpsParam{70000, 0.3, 0.3}),
    [](const ::testing::TestParamInfo<OpsParam>& info) {
      return "n" + std::to_string(info.param.size) + "_a" +
             std::to_string(static_cast<int>(info.param.da * 10000)) + "_b" +
             std::to_string(static_cast<int>(info.param.db * 10000));
    });

// ---- Multi-operand kernels --------------------------------------------------

// Pairwise-fold oracle the k-way kernels must agree with bit for bit.
WahBitmap FoldOr(const std::vector<const WahBitmap*>& ops, uint64_t size) {
  WahBitmap acc;
  acc.AppendRun(false, size);
  for (const WahBitmap* bm : ops) acc = WahOr(acc, *bm);
  return acc;
}

WahBitmap FoldAnd(const std::vector<const WahBitmap*>& ops, uint64_t size) {
  WahBitmap acc;
  acc.AppendRun(true, size);
  for (const WahBitmap* bm : ops) acc = WahAnd(acc, *bm);
  return acc;
}

std::vector<const WahBitmap*> Ptrs(const std::vector<WahBitmap>& bms) {
  std::vector<const WahBitmap*> out;
  for (const WahBitmap& bm : bms) out.push_back(&bm);
  return out;
}

// ToBools oracle: positionwise OR/AND of the decompressed operands.
std::vector<bool> BoolsOr(const std::vector<WahBitmap>& bms, uint64_t size) {
  std::vector<bool> out(size, false);
  for (const WahBitmap& bm : bms) {
    std::vector<bool> bits = bm.ToBools();
    for (uint64_t i = 0; i < size; ++i) out[i] = out[i] || bits[i];
  }
  return out;
}

std::vector<bool> BoolsAnd(const std::vector<WahBitmap>& bms, uint64_t size) {
  std::vector<bool> out(size, true);
  for (const WahBitmap& bm : bms) {
    std::vector<bool> bits = bm.ToBools();
    for (uint64_t i = 0; i < size; ++i) out[i] = out[i] && bits[i];
  }
  return out;
}

TEST(WahManyOps, EmptyOperandListIsFoldIdentity) {
  const std::vector<const WahBitmap*> none;
  WahBitmap union_none = WahOrMany(none, 100);
  EXPECT_EQ(union_none.size(), 100u);
  EXPECT_TRUE(union_none.IsAllZeros());
  WahBitmap inter_none = WahAndMany(none, 100);
  EXPECT_EQ(inter_none.size(), 100u);
  EXPECT_TRUE(inter_none.IsAllOnes());
  EXPECT_EQ(WahOrManyCount(none, 100), 0u);
  EXPECT_EQ(WahAndManyCount(none, 100), 100u);
}

TEST(WahManyOps, SingleOperandIsIdentity) {
  WahBitmap a = RandomWah(10000, 0.1, 11);
  const std::vector<const WahBitmap*> just_a{&a};
  EXPECT_EQ(WahOrMany(just_a, a.size()), a);
  EXPECT_EQ(WahAndMany(just_a, a.size()), a);
  EXPECT_EQ(WahOrManyCount(just_a, a.size()), a.CountOnes());
  EXPECT_EQ(WahAndManyCount(just_a, a.size()), a.CountOnes());
}

TEST(WahManyOps, ValueOverloadsMatchPointerForm) {
  std::vector<WahBitmap> ops;
  for (int i = 0; i < 5; ++i) ops.push_back(RandomWah(4000, 0.1, 60 + i));
  EXPECT_EQ(WahOrMany(ops, 4000), WahOrMany(Ptrs(ops), 4000));
  EXPECT_EQ(WahAndMany(ops, 4000), WahAndMany(Ptrs(ops), 4000));
  EXPECT_EQ(WahOrManyCount(ops, 4000), WahOrManyCount(Ptrs(ops), 4000));
  EXPECT_EQ(WahAndManyCount(ops, 4000), WahAndManyCount(Ptrs(ops), 4000));
}

TEST(WahManyOps, SingleOperandSizeMismatchIsFatal) {
  WahBitmap a = WahBitmap::FromPositions({1}, 10);
  const std::vector<const WahBitmap*> just_a{&a};
  EXPECT_DEATH(WahOrMany(just_a, 11), "k-way op operand");
  EXPECT_DEATH(WahAndManyCount(just_a, 11), "k-way op operand");
}

TEST(WahManyOps, AllZeroFillOperands) {
  const uint64_t size = 63 * 1000 + 17;  // partial tail group
  std::vector<WahBitmap> ops(8);
  for (WahBitmap& bm : ops) bm.AppendRun(false, size);
  WahBitmap u = WahOrMany(Ptrs(ops), size);
  EXPECT_TRUE(u.IsAllZeros());
  EXPECT_EQ(u, ops[0]);  // canonical representation
  EXPECT_EQ(WahAndMany(Ptrs(ops), size), ops[0]);
  EXPECT_EQ(WahOrManyCount(Ptrs(ops), size), 0u);
  EXPECT_EQ(WahAndManyCount(Ptrs(ops), size), 0u);
}

TEST(WahManyOps, AllOneFillOperands) {
  const uint64_t size = 63 * 1000 + 62;
  std::vector<WahBitmap> ops(8);
  for (WahBitmap& bm : ops) bm.AppendRun(true, size);
  EXPECT_EQ(WahOrMany(Ptrs(ops), size), ops[0]);
  EXPECT_EQ(WahAndMany(Ptrs(ops), size), ops[0]);
  EXPECT_EQ(WahOrManyCount(Ptrs(ops), size), size);
  EXPECT_EQ(WahAndManyCount(Ptrs(ops), size), size);
}

TEST(WahManyOps, OneFillAnnihilatesUnionAcrossLiterals) {
  const uint64_t size = 63 * 400;
  std::vector<WahBitmap> ops;
  ops.push_back(RandomWah(size, 0.5, 21));
  WahBitmap ones;
  ones.AppendRun(true, size);
  ops.push_back(std::move(ones));
  ops.push_back(RandomWah(size, 0.5, 22));
  WahBitmap u = WahOrMany(Ptrs(ops), size);
  EXPECT_TRUE(u.IsAllOnes());
  EXPECT_EQ(u.NumWords(), 1u);  // one saturated fill word
}

TEST(WahManyOps, ZeroFillAnnihilatesIntersection) {
  const uint64_t size = 63 * 400 + 5;
  std::vector<WahBitmap> ops;
  ops.push_back(RandomWah(size, 0.9, 23));
  WahBitmap zeros;
  zeros.AppendRun(false, size);
  ops.push_back(std::move(zeros));
  ops.push_back(RandomWah(size, 0.9, 24));
  WahBitmap m = WahAndMany(Ptrs(ops), size);
  EXPECT_TRUE(m.IsAllZeros());
  EXPECT_EQ(WahAndManyCount(Ptrs(ops), size), 0u);
}

TEST(WahManyOps, MixedFillLiteralBoundaries) {
  // Operands engineered so fill runs start and end at different group
  // offsets, forcing run-boundary crossings in the galloping skip.
  const uint64_t size = 63 * 64 + 30;
  std::vector<WahBitmap> ops;
  WahBitmap a;  // zeros, ones block, zeros
  a.AppendRun(false, 63 * 10);
  a.AppendRun(true, 63 * 20);
  a.AppendRun(false, size - a.size());
  ops.push_back(std::move(a));
  WahBitmap b;  // literal-heavy
  b = RandomWah(size, 0.4, 25);
  ops.push_back(std::move(b));
  WahBitmap c;  // ones block overlapping a's tail zeros
  c.AppendRun(false, 63 * 25);
  c.AppendRun(true, 63 * 30);
  c.AppendRun(false, size - c.size());
  ops.push_back(std::move(c));

  EXPECT_EQ(WahOrMany(Ptrs(ops), size), FoldOr(Ptrs(ops), size));
  EXPECT_EQ(WahAndMany(Ptrs(ops), size), FoldAnd(Ptrs(ops), size));
  EXPECT_EQ(WahOrMany(Ptrs(ops), size).ToBools(), BoolsOr(ops, size));
  EXPECT_EQ(WahAndMany(Ptrs(ops), size).ToBools(), BoolsAnd(ops, size));
}

struct ManyParam {
  size_t k;
  uint64_t size;
  double density;
};

class WahManyOpsProperty : public ::testing::TestWithParam<ManyParam> {};

TEST_P(WahManyOpsProperty, MatchesPairwiseFoldAndBoolOracle) {
  const ManyParam p = GetParam();
  std::vector<WahBitmap> ops;
  for (size_t i = 0; i < p.k; ++i) {
    // Mix densities so some operands are sparse (fill-dominated) and
    // some dense (literal-dominated).
    double d = (i % 3 == 0) ? p.density / 10 : p.density;
    ops.push_back(RandomWah(p.size, d, 1000 + 31 * i + p.k));
  }
  std::vector<const WahBitmap*> ptrs = Ptrs(ops);

  WahBitmap union_many = WahOrMany(ptrs, p.size);
  WahBitmap union_fold = FoldOr(ptrs, p.size);
  EXPECT_EQ(union_many, union_fold);  // bit-identical, canonical words
  EXPECT_EQ(union_many.words(), union_fold.words());
  EXPECT_EQ(union_many.ToBools(), BoolsOr(ops, p.size));

  WahBitmap inter_many = WahAndMany(ptrs, p.size);
  WahBitmap inter_fold = FoldAnd(ptrs, p.size);
  EXPECT_EQ(inter_many, inter_fold);
  EXPECT_EQ(inter_many.ToBools(), BoolsAnd(ops, p.size));

  EXPECT_EQ(WahOrManyCount(ptrs, p.size), union_fold.CountOnes());
  EXPECT_EQ(WahAndManyCount(ptrs, p.size), inter_fold.CountOnes());
}

INSTANTIATE_TEST_SUITE_P(
    Grid, WahManyOpsProperty,
    ::testing::Values(ManyParam{1, 1000, 0.3}, ManyParam{2, 12345, 0.1},
                      ManyParam{2, 63, 0.5}, ManyParam{8, 10007, 0.05},
                      ManyParam{8, 63 * 100, 0.3}, ManyParam{64, 5000, 0.02},
                      ManyParam{64, 70001, 0.001}),
    [](const ::testing::TestParamInfo<ManyParam>& info) {
      return "k" + std::to_string(info.param.k) + "_n" +
             std::to_string(info.param.size) + "_d" +
             std::to_string(static_cast<int>(info.param.density * 1000));
    });

TEST(WahManyOps, SizeMismatchIsFatal) {
  WahBitmap a = WahBitmap::FromPositions({1}, 10);
  WahBitmap b = WahBitmap::FromPositions({1}, 11);
  const std::vector<const WahBitmap*> both{&a, &b};
  EXPECT_DEATH(WahOrMany(both, 10), "k-way op operand");
}

// ---- In-place ops -----------------------------------------------------------

TEST(WahInPlaceOps, OrWithMatchesWahOr) {
  WahBitmap a = RandomWah(9000, 0.2, 41);
  WahBitmap b = RandomWah(9000, 0.2, 42);
  WahBitmap expected = WahOr(a, b);
  WahBitmap acc = a;
  acc.OrWith(b);
  EXPECT_EQ(acc, expected);
}

TEST(WahInPlaceOps, AndWithMatchesWahAnd) {
  WahBitmap a = RandomWah(9000, 0.6, 43);
  WahBitmap b = RandomWah(9000, 0.6, 44);
  WahBitmap expected = WahAnd(a, b);
  WahBitmap acc = a;
  acc.AndWith(b);
  EXPECT_EQ(acc, expected);
}

TEST(WahInPlaceOps, FastPathsPreserveSemantics) {
  const uint64_t size = 63 * 50 + 7;
  WahBitmap zeros, ones;
  zeros.AppendRun(false, size);
  ones.AppendRun(true, size);
  WahBitmap mixed = RandomWah(size, 0.3, 45);

  WahBitmap acc = zeros;
  acc.OrWith(mixed);  // empty accumulator absorbs the operand
  EXPECT_EQ(acc, mixed);
  acc.OrWith(zeros);  // zero operand is a no-op
  EXPECT_EQ(acc, mixed);
  acc.OrWith(ones);  // saturating operand
  EXPECT_EQ(acc, ones);
  acc.OrWith(mixed);  // saturated accumulator is a no-op
  EXPECT_EQ(acc, ones);

  acc = ones;
  acc.AndWith(mixed);  // all-ones accumulator absorbs the operand
  EXPECT_EQ(acc, mixed);
  acc.AndWith(ones);  // all-ones operand is a no-op
  EXPECT_EQ(acc, mixed);
  acc.AndWith(zeros);  // annihilating operand
  EXPECT_EQ(acc, zeros);
  acc.AndWith(mixed);  // annihilated accumulator is a no-op
  EXPECT_EQ(acc, zeros);
}

TEST(WahInPlaceOps, FoldViaOrWithMatchesOrMany) {
  const uint64_t size = 12000;
  std::vector<WahBitmap> ops;
  for (int i = 0; i < 6; ++i) ops.push_back(RandomWah(size, 0.05, 50 + i));
  WahBitmap acc;
  acc.AppendRun(false, size);
  for (const WahBitmap& bm : ops) acc.OrWith(bm);
  EXPECT_EQ(acc, WahOrMany(Ptrs(ops), size));
}

TEST(WahInPlaceOps, FoldViaAndWithMatchesAndMany) {
  const uint64_t size = 12000;
  std::vector<WahBitmap> ops;
  for (int i = 0; i < 6; ++i) ops.push_back(RandomWah(size, 0.9, 60 + i));
  WahBitmap acc;
  acc.AppendRun(true, size);
  for (const WahBitmap& bm : ops) acc.AndWith(bm);
  EXPECT_EQ(acc, WahAndMany(Ptrs(ops), size));
}

TEST(WahInPlaceOps, SelfAliasingIsIdempotent) {
  WahBitmap a = RandomWah(9000, 0.3, 70);
  WahBitmap expected = a;
  a.OrWith(a);
  EXPECT_EQ(a, expected);
  a.AndWith(a);
  EXPECT_EQ(a, expected);
}

TEST(WahInPlaceOps, ClearAndSwapPreserveContentSemantics) {
  WahBitmap a = RandomWah(5000, 0.2, 71);
  WahBitmap b = RandomWah(700, 0.8, 72);
  WahBitmap a_copy = a;
  WahBitmap b_copy = b;
  a.Swap(b);
  EXPECT_EQ(a, b_copy);
  EXPECT_EQ(b, a_copy);
  a.Clear();
  EXPECT_EQ(a.size(), 0u);
  EXPECT_EQ(a.NumWords(), 0u);
  // A cleared bitmap rebuilds to canonical form like a fresh one.
  a.AppendRun(true, 700);
  WahBitmap fresh;
  fresh.AppendRun(true, 700);
  EXPECT_EQ(a, fresh);
}

TEST(WahInPlaceOps, ResultStaysCanonical) {
  // The in-place merge appends through the canonicalizing API, so the
  // result compares representation-equal to the pairwise kernel's and
  // to a fresh append of the same logical content.
  for (double d : {0.01, 0.5, 0.99}) {
    WahBitmap a = RandomWah(20000, d, 80);
    WahBitmap b = RandomWah(20000, d, 81);
    WahBitmap acc = a;
    acc.OrWith(b);
    WahBitmap expected = WahOr(a, b);
    ASSERT_EQ(acc.NumWords(), expected.NumWords()) << d;
    EXPECT_EQ(acc, expected) << d;
  }
}

}  // namespace
}  // namespace cods

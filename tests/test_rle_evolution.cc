// Tests for evolution over RLE-encoded (sorted) columns — §2.2 notes
// run-length encoding for sorted columns; the operators must accept such
// tables, use RLE-native fast paths where available, and produce results
// identical to the bitmap-encoded equivalents.

#include "evolution/decompose.h"
#include "evolution/merge.h"
#include "evolution/simple_ops.h"
#include "gtest/gtest.h"
#include "query/column_select.h"
#include "test_util.h"

namespace cods {
namespace {

using ::cods::testing::ExpectSameContent;
using ::cods::testing::SortedRows;

// R(K, V, P) sorted by K, with K and P declared sorted (RLE-encoded);
// FD K -> P holds.
std::shared_ptr<const Table> SortedFdTable(uint64_t rows,
                                           uint64_t distinct) {
  Schema schema({{"K", DataType::kInt64, true},   // sorted → RLE
                 {"V", DataType::kInt64, false},
                 {"P", DataType::kInt64, true}},  // sorted runs too
                {});
  TableBuilder builder("R", schema);
  for (uint64_t r = 0; r < rows; ++r) {
    int64_t k = static_cast<int64_t>(r * distinct / rows);
    EXPECT_TRUE(builder
                    .AppendRow({Value(k), Value(static_cast<int64_t>(r % 5)),
                                Value((k * 3 + 1) % 7)})
                    .ok());
  }
  return builder.Finish().ValueOrDie();
}

// The same data with every column bitmap-encoded.
std::shared_ptr<const Table> AsBitmapTable(const Table& src) {
  auto converted = ReencodeRleToWah(src);
  return converted ? converted : src.WithName(src.name());
}

TEST(RleEvolution, TableUsesRleEncoding) {
  auto r = SortedFdTable(1000, 50);
  EXPECT_EQ(r->column(0)->encoding(), ColumnEncoding::kRle);
  EXPECT_EQ(r->column(1)->encoding(), ColumnEncoding::kWahBitmap);
  EXPECT_EQ(r->column(2)->encoding(), ColumnEncoding::kRle);
  EXPECT_TRUE(r->ValidateInvariants().ok());
}

TEST(RleEvolution, DistinctionUsesRunList) {
  auto r = SortedFdTable(1000, 50);
  auto positions = DistinctionPositions(*r, {"K"}).ValueOrDie();
  EXPECT_EQ(positions.size(), 50u);
  // Sorted input: representative of value k is the first row of its run.
  EXPECT_EQ(positions[0], 0u);
  auto bitmap_version = AsBitmapTable(*r);
  EXPECT_EQ(positions,
            DistinctionPositions(*bitmap_version, {"K"}).ValueOrDie());
}

TEST(RleEvolution, DecomposePreservesRleEncodingAndContent) {
  auto r = SortedFdTable(2000, 40);
  auto rle_result =
      CodsDecompose(*r, "S", {"K", "V"}, {}, "T", {"K", "P"}, {"K"})
          .ValueOrDie();
  auto bm_result = CodsDecompose(*AsBitmapTable(*r), "S", {"K", "V"}, {},
                                 "T", {"K", "P"}, {"K"})
                       .ValueOrDie();
  ExpectSameContent(*rle_result.s, *bm_result.s);
  ExpectSameContent(*rle_result.t, *bm_result.t);
  // The generated T keeps RLE for its sorted columns (native filtering).
  EXPECT_EQ(rle_result.t->column(0)->encoding(), ColumnEncoding::kRle);
  EXPECT_TRUE(rle_result.t->ValidateInvariants().ok());
}

TEST(RleEvolution, MergeAcceptsRleInputs) {
  auto r = SortedFdTable(2000, 40);
  auto dec = CodsDecompose(*r, "S", {"K", "V"}, {}, "T", {"K", "P"}, {"K"})
                 .ValueOrDie();
  auto merged =
      CodsMerge(*dec.s, *dec.t, {"K"}, {}, "R2").ValueOrDie();
  EXPECT_TRUE(merged.used_key_fk);
  EXPECT_EQ(SortedRows(*merged.table), SortedRows(*r));

  auto general =
      CodsMergeGeneral(*dec.s, *dec.t, {"K"}, {}, "R3").ValueOrDie();
  EXPECT_EQ(SortedRows(*general), SortedRows(*r));
}

TEST(RleEvolution, PartitionAndUnionAcceptRleInputs) {
  auto r = SortedFdTable(1000, 20);
  auto part = PartitionTableOp(*r, "Low", "High", "K", CompareOp::kLt,
                               Value(int64_t{10}))
                  .ValueOrDie();
  EXPECT_EQ(part.matching->rows() + part.rest->rows(), 1000u);
  auto u =
      UnionTablesOp(*part.matching, *part.rest, "U", nullptr).ValueOrDie();
  EXPECT_EQ(SortedRows(*u), SortedRows(*r));
}

TEST(GroupBy, CountMatchesValueCounts) {
  auto r = SortedFdTable(1000, 10);
  auto groups = GroupByCount(*r, "K").ValueOrDie();
  ASSERT_EQ(groups.size(), 10u);
  uint64_t total = 0;
  for (const auto& [value, count] : groups) {
    EXPECT_EQ(count, 100u) << value.ToString();
    total += count;
  }
  EXPECT_EQ(total, 1000u);
}

TEST(GroupBy, SumMatchesNaiveAggregation) {
  auto r = testing::RandomFdTable(3000, 30, 5);
  auto sums = GroupBySum(*r, "K", "V").ValueOrDie();
  // Naive oracle over materialized rows.
  std::map<Value, double> expected;
  for (const Row& row : r->Materialize()) {
    expected[row[0]] += static_cast<double>(row[1].int64());
  }
  ASSERT_EQ(sums.size(), expected.size());
  for (const auto& [value, sum] : sums) {
    EXPECT_DOUBLE_EQ(sum, expected.at(value)) << value.ToString();
  }
}

TEST(GroupBy, SumRejectsStringMeasure) {
  auto r = testing::Figure1TableR();
  EXPECT_TRUE(GroupBySum(*r, "Employee", "Skill").status().IsTypeError());
}

}  // namespace
}  // namespace cods

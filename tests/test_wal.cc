// WAL tests: write/read round trips, the commit protocol (applied
// counts, uncommitted trailing scripts), the reader contract — torn or
// corrupt tails truncate cleanly, corruption before the last commit
// point is a hard kCorruption — LSN discipline, sticky writer
// poisoning, and version marks replaying into a VersionedCatalog.

#include "durability/wal.h"

#include <string>
#include <vector>

#include "common/random.h"
#include "concurrency/versioned_catalog.h"
#include "gtest/gtest.h"

namespace cods {
namespace {

class WalTest : public ::testing::Test {
 protected:
  void SetUp() override {
    dir_ = ::testing::TempDir() + "cods_wal_" +
           ::testing::UnitTest::GetInstance()->current_test_info()->name();
    ASSERT_TRUE(Env::Default()->CreateDirIfMissing(dir_).ok());
    path_ = dir_ + "/wal.log";
    if (Env::Default()->FileExists(path_)) {
      ASSERT_TRUE(Env::Default()->DeleteFile(path_).ok());
    }
  }

  std::vector<uint8_t> RawBytes() {
    return Env::Default()->ReadFile(path_).ValueOrDie();
  }

  void WriteRaw(const std::vector<uint8_t>& data) {
    ASSERT_TRUE(WriteFile(Env::Default(), path_, data).ok());
  }

  std::string dir_;
  std::string path_;
};

TEST_F(WalTest, EmptyAndMissingLogs) {
  EXPECT_FALSE(ReadWal(Env::Default(), path_).ok());  // missing: IOError
  WriteRaw({});
  WalContents wal = ReadWal(Env::Default(), path_).ValueOrDie();
  EXPECT_TRUE(wal.entries.empty());
  EXPECT_EQ(wal.max_lsn, 0u);
  EXPECT_EQ(wal.committed_bytes, 0u);
  EXPECT_FALSE(wal.tail_dropped);
}

TEST_F(WalTest, ScriptsAndMarksRoundTrip) {
  {
    auto w = WalWriter::Open(Env::Default(), path_, 1).ValueOrDie();
    ASSERT_TRUE(w->BeginScript().ok());
    ASSERT_TRUE(w->AppendStatement("CREATE TABLE R (a INT64)").ok());
    ASSERT_TRUE(w->AppendStatement("DROP TABLE R").ok());
    ASSERT_TRUE(w->CommitScript(2).ok());
    ASSERT_TRUE(w->AppendVersionMark("v1: empty again").ok());
    ASSERT_TRUE(w->BeginScript().ok());
    ASSERT_TRUE(w->AppendStatement("CREATE TABLE S (b STRING)").ok());
    ASSERT_TRUE(w->CommitScript(0).ok());  // failed before any applied
    EXPECT_EQ(w->next_lsn(), 9u);  // 8 records written
    EXPECT_EQ(w->durable_lsn(), 8u);
    EXPECT_TRUE(w->health().ok());
  }
  WalContents wal = ReadWal(Env::Default(), path_).ValueOrDie();
  ASSERT_EQ(wal.entries.size(), 3u);
  EXPECT_FALSE(wal.tail_dropped);
  EXPECT_EQ(wal.max_lsn, 8u);
  EXPECT_EQ(wal.committed_bytes, RawBytes().size());

  const WalEntry& script = wal.entries[0];
  EXPECT_EQ(script.kind, WalEntry::Kind::kScript);
  EXPECT_EQ(script.begin_lsn, 1u);
  EXPECT_EQ(script.commit_lsn, 4u);
  EXPECT_EQ(script.applied, 2u);
  EXPECT_EQ(script.statements,
            (std::vector<std::string>{"CREATE TABLE R (a INT64)",
                                      "DROP TABLE R"}));

  const WalEntry& mark = wal.entries[1];
  EXPECT_EQ(mark.kind, WalEntry::Kind::kVersionMark);
  EXPECT_EQ(mark.begin_lsn, 5u);
  EXPECT_EQ(mark.commit_lsn, 5u);
  EXPECT_EQ(mark.message, "v1: empty again");

  EXPECT_EQ(wal.entries[2].applied, 0u);
  EXPECT_EQ(wal.entries[2].statements.size(), 1u);
}

TEST_F(WalTest, ReopenContinuesLsnSequence) {
  {
    auto w = WalWriter::Open(Env::Default(), path_, 1).ValueOrDie();
    ASSERT_TRUE(w->AppendVersionMark("one").ok());
  }
  {
    WalContents wal = ReadWal(Env::Default(), path_).ValueOrDie();
    auto w = WalWriter::Open(Env::Default(), path_, wal.max_lsn + 1)
                 .ValueOrDie();
    EXPECT_EQ(w->size_bytes(), RawBytes().size());
    ASSERT_TRUE(w->AppendVersionMark("two").ok());
  }
  WalContents wal = ReadWal(Env::Default(), path_).ValueOrDie();
  ASSERT_EQ(wal.entries.size(), 2u);
  EXPECT_EQ(wal.entries[1].begin_lsn, 2u);
}

TEST_F(WalTest, UncommittedTrailingScriptIsDroppedCleanly) {
  uint64_t committed_size = 0;
  {
    auto w = WalWriter::Open(Env::Default(), path_, 1).ValueOrDie();
    ASSERT_TRUE(w->BeginScript().ok());
    ASSERT_TRUE(w->AppendStatement("CREATE TABLE R (a INT64)").ok());
    ASSERT_TRUE(w->CommitScript(1).ok());
    committed_size = w->size_bytes();
    // A script that never commits (crash before COMMIT).
    ASSERT_TRUE(w->BeginScript().ok());
    ASSERT_TRUE(w->AppendStatement("DROP TABLE R").ok());
  }
  WalContents wal = ReadWal(Env::Default(), path_).ValueOrDie();
  ASSERT_EQ(wal.entries.size(), 1u);
  EXPECT_TRUE(wal.tail_dropped);
  EXPECT_EQ(wal.committed_bytes, committed_size);
  EXPECT_EQ(wal.max_lsn, 3u);
}

TEST_F(WalTest, EveryTruncationPointRecoversThePrefix) {
  // Build a log of 6 committed entries, then cut it at EVERY byte
  // length. The reader must come back with exactly the entries whose
  // end_offset fits the cut — never an error, never a partial entry.
  std::vector<uint64_t> end_offsets;
  {
    auto w = WalWriter::Open(Env::Default(), path_, 1).ValueOrDie();
    for (int i = 0; i < 6; ++i) {
      if (i % 2 == 0) {
        ASSERT_TRUE(w->BeginScript().ok());
        ASSERT_TRUE(w->AppendStatement("CREATE TABLE T" + std::to_string(i) +
                                       " (a INT64)")
                        .ok());
        ASSERT_TRUE(w->CommitScript(1).ok());
      } else {
        ASSERT_TRUE(w->AppendVersionMark("mark " + std::to_string(i)).ok());
      }
      end_offsets.push_back(w->size_bytes());
    }
  }
  std::vector<uint8_t> full = RawBytes();
  {
    WalContents wal = ReadWal(Env::Default(), path_).ValueOrDie();
    ASSERT_EQ(wal.entries.size(), 6u);
    for (size_t i = 0; i < 6; ++i) {
      EXPECT_EQ(wal.entries[i].end_offset, end_offsets[i]);
    }
  }
  for (size_t cut = 0; cut <= full.size(); ++cut) {
    WriteRaw(std::vector<uint8_t>(full.begin(),
                                  full.begin() + static_cast<ptrdiff_t>(cut)));
    Result<WalContents> r = ReadWal(Env::Default(), path_);
    ASSERT_TRUE(r.ok()) << "cut at " << cut << ": " << r.status().ToString();
    size_t expect = 0;
    while (expect < end_offsets.size() && end_offsets[expect] <= cut) {
      ++expect;
    }
    EXPECT_EQ(r.ValueOrDie().entries.size(), expect) << "cut at " << cut;
    EXPECT_EQ(r.ValueOrDie().tail_dropped,
              cut != 0 && cut != full.size() &&
                  (expect == 0 || end_offsets[expect - 1] != cut))
        << "cut at " << cut;
  }
}

TEST_F(WalTest, CorruptionBeforeLastCommitIsHardError) {
  {
    auto w = WalWriter::Open(Env::Default(), path_, 1).ValueOrDie();
    ASSERT_TRUE(w->BeginScript().ok());
    ASSERT_TRUE(w->AppendStatement("CREATE TABLE R (a INT64)").ok());
    ASSERT_TRUE(w->CommitScript(1).ok());
    ASSERT_TRUE(w->AppendVersionMark("later commit point").ok());
  }
  std::vector<uint8_t> full = RawBytes();
  WalContents wal = ReadWal(Env::Default(), path_).ValueOrDie();
  ASSERT_EQ(wal.entries.size(), 2u);
  uint64_t first_end = wal.entries[0].end_offset;

  // A flip anywhere before the FIRST entry's end invalidates a record
  // that a later valid commit point follows: hard corruption.
  Rng rng(21);
  for (int trial = 0; trial < 50; ++trial) {
    std::vector<uint8_t> bad = full;
    size_t byte = static_cast<size_t>(
        rng.Uniform(0, static_cast<int64_t>(first_end) - 1));
    bad[byte] ^= static_cast<uint8_t>(1u << rng.Uniform(0, 7));
    WriteRaw(bad);
    Result<WalContents> r = ReadWal(Env::Default(), path_);
    EXPECT_FALSE(r.ok()) << "flip at " << byte << " parsed";
    if (!r.ok()) {
      EXPECT_TRUE(r.status().IsCorruption()) << r.status().ToString();
    }
  }

  // A flip in the LAST entry damages only the tail: clean truncation.
  for (int trial = 0; trial < 50; ++trial) {
    std::vector<uint8_t> bad = full;
    size_t byte = static_cast<size_t>(rng.Uniform(
        static_cast<int64_t>(first_end), static_cast<int64_t>(full.size()) - 1));
    bad[byte] ^= static_cast<uint8_t>(1u << rng.Uniform(0, 7));
    WriteRaw(bad);
    Result<WalContents> r = ReadWal(Env::Default(), path_);
    ASSERT_TRUE(r.ok()) << "flip at " << byte << ": "
                        << r.status().ToString();
    EXPECT_EQ(r.ValueOrDie().entries.size(), 1u);
    EXPECT_TRUE(r.ValueOrDie().tail_dropped);
    EXPECT_EQ(r.ValueOrDie().committed_bytes, first_end);
  }
}

TEST_F(WalTest, WriterFailuresAreSticky) {
  FaultInjectionEnv fenv(Env::Default(), /*seed=*/3);
  auto w = WalWriter::Open(&fenv, path_, 1).ValueOrDie();
  ASSERT_TRUE(w->BeginScript().ok());
  ASSERT_TRUE(w->AppendStatement("CREATE TABLE R (a INT64)").ok());
  fenv.FailNextSyncs(1);
  Status commit = w->CommitScript(1);
  EXPECT_TRUE(commit.IsIOError());
  EXPECT_EQ(w->durable_lsn(), 0u);
  // Poisoned: every later call returns the original failure, so no
  // record can ever follow the possibly-torn one.
  EXPECT_FALSE(w->health().ok());
  EXPECT_TRUE(w->BeginScript().IsIOError());
  EXPECT_TRUE(w->AppendVersionMark("x").IsIOError());
  // The appends themselves reached the file; only the fsync ack failed.
  // Like a crash between write and acknowledgment, the script is
  // commit-uncertain: the log may legitimately contain it — what the
  // sticky poison guarantees is that nothing was written AFTER it.
  Result<WalContents> r = ReadWal(Env::Default(), path_);
  ASSERT_TRUE(r.ok());
  EXPECT_LE(r.ValueOrDie().entries.size(), 1u);
  EXPECT_EQ(r.ValueOrDie().max_lsn, r.ValueOrDie().entries.empty() ? 0u : 3u);
}

// Directed coverage for the WritableFile::Append call sites in wal.cc:
// a failed WRITE (disk full / EIO, as opposed to the lost fsync ack
// above) must surface as the IOError of the logging call that issued
// it, from each of BeginScript, AppendStatement, and CommitScript —
// never be swallowed into a fake successful commit — and must poison
// the writer exactly like a sync failure.
TEST_F(WalTest, WriterAppendFailuresPropagate) {
  // The writer opens in append mode, so stale logs from a previous run
  // of this binary would pollute each block's reader checks.
  for (const char* name :
       {"/append_fail_begin.log", "/append_fail_stmt.log",
        "/append_fail_commit.log"}) {
    if (Env::Default()->FileExists(dir_ + name)) {
      ASSERT_TRUE(Env::Default()->DeleteFile(dir_ + name).ok());
    }
  }
  {
    const std::string path = dir_ + "/append_fail_begin.log";
    FaultInjectionEnv fenv(Env::Default(), /*seed=*/7);
    auto w = WalWriter::Open(&fenv, path, 1).ValueOrDie();
    fenv.FailNextAppends(1);
    EXPECT_TRUE(w->BeginScript().IsIOError());
    EXPECT_FALSE(w->health().ok());  // sticky, like sync failures
    EXPECT_TRUE(w->BeginScript().IsIOError());
  }
  {
    const std::string path = dir_ + "/append_fail_stmt.log";
    FaultInjectionEnv fenv(Env::Default(), /*seed=*/7);
    auto w = WalWriter::Open(&fenv, path, 1).ValueOrDie();
    ASSERT_TRUE(w->BeginScript().ok());
    fenv.FailNextAppends(1);
    EXPECT_TRUE(w->AppendStatement("CREATE TABLE R (a INT64)").IsIOError());
    EXPECT_TRUE(w->CommitScript(1).IsIOError());  // poisoned
    EXPECT_EQ(w->durable_lsn(), 0u);
  }
  {
    const std::string path = dir_ + "/append_fail_commit.log";
    FaultInjectionEnv fenv(Env::Default(), /*seed=*/7);
    auto w = WalWriter::Open(&fenv, path, 1).ValueOrDie();
    ASSERT_TRUE(w->BeginScript().ok());
    ASSERT_TRUE(w->AppendStatement("CREATE TABLE R (a INT64)").ok());
    fenv.FailNextAppends(1);
    EXPECT_TRUE(w->CommitScript(1).IsIOError());
    EXPECT_EQ(w->durable_lsn(), 0u);
    // The failed commit-record write left no commit on disk: the reader
    // sees the script as an uncommitted tail and replays nothing.
    Result<WalContents> r = ReadWal(Env::Default(), path);
    ASSERT_TRUE(r.ok());
    EXPECT_TRUE(r.ValueOrDie().entries.empty());
    EXPECT_EQ(r.ValueOrDie().committed_bytes, 0u);
  }
}

TEST_F(WalTest, MisuseIsRejected) {
  auto w = WalWriter::Open(Env::Default(), path_, 1).ValueOrDie();
  EXPECT_TRUE(w->AppendStatement("X").IsInvalidArgument());  // no script
  EXPECT_TRUE(w->CommitScript(0).IsInvalidArgument());
  ASSERT_TRUE(w->BeginScript().ok());
  EXPECT_TRUE(w->BeginScript().IsInvalidArgument());  // nested
  EXPECT_TRUE(w->AppendVersionMark("m").IsInvalidArgument());  // inside
  ASSERT_TRUE(w->AppendStatement("CREATE TABLE R (a INT64)").ok());
  ASSERT_TRUE(w->CommitScript(1).ok());
  EXPECT_TRUE(w->health().ok());  // misuse does not poison the writer
}

// Satellite: WAL version marks round-trip into VersionedCatalog — the
// durable version history matches the in-memory one.
TEST_F(WalTest, VersionMarksReplayIntoVersionedCatalog) {
  VersionedCatalog original;
  {
    auto w = WalWriter::Open(Env::Default(), path_, 1).ValueOrDie();
    for (const std::string& msg : {"baseline", "after decompose", "final"}) {
      ASSERT_TRUE(w->AppendVersionMark(msg).ok());
      original.Commit(msg);
    }
  }
  WalContents wal = ReadWal(Env::Default(), path_).ValueOrDie();
  VersionedCatalog replayed;
  for (const WalEntry& entry : wal.entries) {
    ASSERT_EQ(entry.kind, WalEntry::Kind::kVersionMark);
    replayed.Commit(entry.message);
  }
  ASSERT_EQ(replayed.num_versions(), original.num_versions());
  auto original_history = original.History();
  auto replayed_history = replayed.History();
  for (size_t i = 0; i < original_history.size(); ++i) {
    EXPECT_EQ(replayed_history[i].id, original_history[i].id);
    EXPECT_EQ(replayed_history[i].message, original_history[i].message);
  }
}

}  // namespace
}  // namespace cods

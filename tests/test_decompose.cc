// Tests for the data-level decomposition operator: correctness against
// the query-level oracle, column reuse by pointer, distinction, observer
// steps, and randomized property tests.

#include "evolution/decompose.h"

#include "gtest/gtest.h"
#include "query/query_evolution.h"
#include "test_util.h"

namespace cods {
namespace {

using ::cods::testing::ExpectSameContent;
using ::cods::testing::Figure1TableR;
using ::cods::testing::RandomFdTable;
using ::cods::testing::SortedRows;

TEST(Distinction, SingleColumnUsesFirstSetBits) {
  auto r = Figure1TableR();
  // Employees first appear at rows 0 (Jones), 2 (Roberts), 3 (Ellis),
  // 6 (Harrison).
  auto positions = DistinctionPositions(*r, {"Employee"}).ValueOrDie();
  EXPECT_EQ(positions, (std::vector<uint64_t>{0, 2, 3, 6}));
}

TEST(Distinction, CompositeColumns) {
  auto r = Figure1TableR();
  // (Employee, Skill) is unique per row: all 7 positions.
  auto positions =
      DistinctionPositions(*r, {"Employee", "Skill"}).ValueOrDie();
  EXPECT_EQ(positions.size(), 7u);
  // (Employee, Address): same as Employee alone here.
  positions =
      DistinctionPositions(*r, {"Employee", "Address"}).ValueOrDie();
  EXPECT_EQ(positions, (std::vector<uint64_t>{0, 2, 3, 6}));
}

TEST(Distinction, ErrorsOnMissingColumn) {
  auto r = Figure1TableR();
  EXPECT_FALSE(DistinctionPositions(*r, {"Nope"}).ok());
  EXPECT_FALSE(DistinctionPositions(*r, {}).ok());
}

TEST(Decompose, Figure1MatchesThePaper) {
  auto r = Figure1TableR();
  RecordingObserver observer;
  auto result = CodsDecompose(*r, "S", {"Employee", "Skill"}, {}, "T",
                              {"Employee", "Address"}, {"Employee"},
                              &observer)
                    .ValueOrDie();

  // S: unchanged, same 7 tuples.
  EXPECT_EQ(result.s->rows(), 7u);
  EXPECT_EQ(result.s->schema().ColumnNames(),
            (std::vector<std::string>{"Employee", "Skill"}));

  // Property 1: S's columns are literally R's columns (pointer reuse).
  EXPECT_EQ(result.s->column(0).get(), r->column(0).get());
  EXPECT_EQ(result.s->column(1).get(), r->column(1).get());

  // T: one row per employee, with the right addresses.
  EXPECT_EQ(result.t->rows(), 4u);
  EXPECT_EQ(result.distinct_keys, 4u);
  std::vector<Row> t_rows = SortedRows(*result.t);
  EXPECT_EQ(t_rows[1], (Row{Value("Harrison"), Value("425 Grant Ave")}));
  EXPECT_EQ(t_rows[3],
            (Row{Value("Roberts"), Value("747 Industrial Way")}));

  // The demo's status pane sees the paper's step names.
  EXPECT_TRUE(observer.HasStep("distinction"));
  EXPECT_TRUE(observer.HasStep("filtering"));
  EXPECT_TRUE(observer.HasStep("reuse"));

  // Outputs satisfy storage invariants.
  EXPECT_TRUE(result.s->ValidateInvariants().ok());
  EXPECT_TRUE(result.t->ValidateInvariants().ok());
}

TEST(Decompose, SwappedDeclarationGeneratesTheOtherSide) {
  auto r = Figure1TableR();
  // Declare S as the keyed (changed) side instead.
  auto result = CodsDecompose(*r, "S", {"Employee", "Address"},
                              {"Employee"}, "T", {"Employee", "Skill"}, {},
                              nullptr)
                    .ValueOrDie();
  EXPECT_EQ(result.s->rows(), 4u);  // S is generated
  EXPECT_EQ(result.t->rows(), 7u);  // T reuses R
  EXPECT_EQ(result.t->column(0).get(), r->column(0).get());
}

TEST(Decompose, AgreesWithQueryLevelBaseline) {
  auto r = RandomFdTable(2000, 57, 1);
  auto cods_result = CodsDecompose(*r, "S", {"K", "V"}, {}, "T", {"K", "P"},
                                   {"K"}, nullptr)
                         .ValueOrDie();
  DecomposeSpec spec;
  spec.s_columns = {"K", "V"};
  spec.t_columns = {"K", "P"};
  spec.t_key = {"K"};
  auto oracle = ColumnQueryLevelDecompose(*r, spec, "S", "T").ValueOrDie();
  ExpectSameContent(*cods_result.s, *oracle.s);
  ExpectSameContent(*cods_result.t, *oracle.t);
}

TEST(Decompose, ValidateFdAcceptsTrueFd) {
  auto r = Figure1TableR();
  DecomposeOptions options;
  options.validate_fd = true;
  auto result = CodsDecompose(*r, "S", {"Employee", "Skill"}, {}, "T",
                              {"Employee", "Address"}, {"Employee"},
                              nullptr, options);
  EXPECT_TRUE(result.ok()) << result.status().ToString();
}

TEST(Decompose, ValidateFdRejectsFalseDeclaration) {
  auto r = Figure1TableR();
  DecomposeOptions options;
  options.validate_fd = true;
  // Declaring Employee -> Skill (false) must be rejected.
  auto result = CodsDecompose(*r, "S", {"Employee", "Address"}, {}, "T",
                              {"Employee", "Skill"}, {"Employee"}, nullptr,
                              options);
  EXPECT_FALSE(result.ok());
  EXPECT_TRUE(result.status().IsConstraintViolation())
      << result.status().ToString();
}

TEST(Decompose, InfersUnchangedSideWithoutDeclaredKeys) {
  auto r = Figure1TableR();
  // No keys declared at all: the engine checks the data.
  auto result = CodsDecompose(*r, "S", {"Employee", "Skill"}, {}, "T",
                              {"Employee", "Address"}, {}, nullptr)
                    .ValueOrDie();
  EXPECT_EQ(result.s->rows(), 7u);
  EXPECT_EQ(result.t->rows(), 4u);
}

TEST(Decompose, RejectsNonCoveringOrDisjointOutputs) {
  auto r = Figure1TableR();
  EXPECT_TRUE(CodsDecompose(*r, "S", {"Employee"}, {}, "T",
                            {"Address"}, {}, nullptr)
                  .status()
                  .IsConstraintViolation());
  EXPECT_TRUE(CodsDecompose(*r, "S", {"Employee", "Skill"}, {}, "T",
                            {"Address"}, {}, nullptr)
                  .status()
                  .IsConstraintViolation());
}

TEST(Decompose, KeyDeclarationsLandOnOutputs) {
  auto r = Figure1TableR();
  auto result = CodsDecompose(*r, "S", {"Employee", "Skill"},
                              {"Employee", "Skill"}, "T",
                              {"Employee", "Address"}, {"Employee"},
                              nullptr)
                    .ValueOrDie();
  EXPECT_TRUE(result.s->schema().IsKey({"Employee", "Skill"}));
  EXPECT_TRUE(result.t->schema().IsKey({"Employee"}));
}

// ---- Property sweep: CODS decomposition equals the query-level result
// over random tables of varying shape.

struct DecomposeParam {
  uint64_t rows;
  uint64_t distinct;
};

class DecomposeProperty : public ::testing::TestWithParam<DecomposeParam> {};

TEST_P(DecomposeProperty, MatchesOracleAndKeepsInvariants) {
  const DecomposeParam p = GetParam();
  auto r = RandomFdTable(p.rows, p.distinct, p.rows ^ p.distinct);
  auto result = CodsDecompose(*r, "S", {"K", "V"}, {}, "T", {"K", "P"},
                              {"K"}, nullptr)
                    .ValueOrDie();
  EXPECT_EQ(result.t->rows(), p.distinct);
  EXPECT_TRUE(result.s->ValidateInvariants().ok());
  EXPECT_TRUE(result.t->ValidateInvariants().ok());

  DecomposeSpec spec;
  spec.s_columns = {"K", "V"};
  spec.t_columns = {"K", "P"};
  spec.t_key = {"K"};
  auto oracle = ColumnQueryLevelDecompose(*r, spec, "S", "T").ValueOrDie();
  ExpectSameContent(*result.s, *oracle.s);
  ExpectSameContent(*result.t, *oracle.t);
}

INSTANTIATE_TEST_SUITE_P(
    Grid, DecomposeProperty,
    ::testing::Values(DecomposeParam{1, 1}, DecomposeParam{10, 3},
                      DecomposeParam{100, 100}, DecomposeParam{500, 1},
                      DecomposeParam{1000, 7}, DecomposeParam{5000, 400},
                      DecomposeParam{20000, 2000}),
    [](const ::testing::TestParamInfo<DecomposeParam>& info) {
      return "r" + std::to_string(info.param.rows) + "_d" +
             std::to_string(info.param.distinct);
    });

}  // namespace
}  // namespace cods

// Tests for data-level mergence: key–FK fast path, the general two-pass
// algorithm, dispatch, and the decompose∘merge round-trip property.

#include "evolution/merge.h"

#include "evolution/decompose.h"
#include "gtest/gtest.h"
#include "query/query_evolution.h"
#include "test_util.h"
#include "workload/generator.h"

namespace cods {
namespace {

using ::cods::testing::ExpectSameContent;
using ::cods::testing::Figure1TableR;
using ::cods::testing::RandomFdTable;

struct Fig1Pair {
  std::shared_ptr<const Table> s;
  std::shared_ptr<const Table> t;
};

Fig1Pair DecomposedFig1() {
  auto r = Figure1TableR();
  auto result = CodsDecompose(*r, "S", {"Employee", "Skill"}, {}, "T",
                              {"Employee", "Address"}, {"Employee"},
                              nullptr)
                    .ValueOrDie();
  return {result.s, result.t};
}

TEST(MergeKeyFk, RestoresFigure1R) {
  auto [s, t] = DecomposedFig1();
  RecordingObserver observer;
  auto merged =
      CodsMergeKeyFk(*s, *t, {"Employee"}, {}, "R", &observer).ValueOrDie();
  ExpectSameContent(*Figure1TableR(), *merged);
  EXPECT_TRUE(merged->ValidateInvariants().ok());
  EXPECT_TRUE(observer.HasStep("reuse"));
  EXPECT_TRUE(observer.HasStep("append"));

  // Property: S's columns are reused by pointer in the output.
  EXPECT_EQ(merged->column(0).get(), s->column(0).get());
  EXPECT_EQ(merged->column(1).get(), s->column(1).get());
}

TEST(MergeKeyFk, ForeignKeyViolationDetected) {
  auto [s, t] = DecomposedFig1();
  // Drop Harrison from T: S still references him.
  TableBuilder builder("T2", t->schema());
  for (const Row& row : t->Materialize()) {
    if (row[0] != Value("Harrison")) {
      ASSERT_TRUE(builder.AppendRow(row).ok());
    }
  }
  auto t2 = builder.Finish().ValueOrDie();
  auto result = CodsMergeKeyFk(*s, *t2, {"Employee"}, {}, "R", nullptr);
  EXPECT_TRUE(result.status().IsConstraintViolation())
      << result.status().ToString();
}

TEST(MergeGeneral, MatchesNaiveJoinOnFigure1) {
  auto [s, t] = DecomposedFig1();
  auto general =
      CodsMergeGeneral(*s, *t, {"Employee"}, {}, "R", nullptr).ValueOrDie();
  ExpectSameContent(*Figure1TableR(), *general);
  EXPECT_TRUE(general->ValidateInvariants().ok());
}

TEST(MergeGeneral, ManyToManyCrossCounts) {
  // J=v appears s_fanout×t_fanout times in the output.
  auto pair = GenerateGeneralMergePair(10, 3, 4, 7).ValueOrDie();
  auto merged = CodsMergeGeneral(*pair.s, *pair.t, {"J"}, {}, "R", nullptr)
                    .ValueOrDie();
  EXPECT_EQ(merged->rows(), 10u * 3 * 4);
  EXPECT_TRUE(merged->ValidateInvariants().ok());

  // Oracle comparison.
  auto oracle =
      ColumnQueryLevelMerge(*pair.s, *pair.t, {"J"}, {}, "R").ValueOrDie();
  ExpectSameContent(*merged, *oracle.r);
}

TEST(MergeGeneral, PartialOverlapDropsUnmatchedValues) {
  // S has J in [0,10), T has J in [5,15): only [5,10) joins.
  Schema s_schema({{"J", DataType::kInt64, false},
                   {"A", DataType::kInt64, false}});
  Schema t_schema({{"J", DataType::kInt64, false},
                   {"B", DataType::kInt64, false}});
  TableBuilder sb("S", s_schema), tb("T", t_schema);
  for (int64_t j = 0; j < 10; ++j) {
    ASSERT_TRUE(sb.AppendRow({Value(j), Value(j * 10)}).ok());
  }
  for (int64_t j = 5; j < 15; ++j) {
    ASSERT_TRUE(tb.AppendRow({Value(j), Value(j * 100)}).ok());
  }
  auto s = sb.Finish().ValueOrDie();
  auto t = tb.Finish().ValueOrDie();
  auto merged =
      CodsMergeGeneral(*s, *t, {"J"}, {}, "R", nullptr).ValueOrDie();
  EXPECT_EQ(merged->rows(), 5u);
  auto oracle = ColumnQueryLevelMerge(*s, *t, {"J"}, {}, "R").ValueOrDie();
  ExpectSameContent(*merged, *oracle.r);
}

TEST(MergeGeneral, EmptyJoinResult) {
  Schema s_schema({{"J", DataType::kInt64, false},
                   {"A", DataType::kInt64, false}});
  Schema t_schema({{"J", DataType::kInt64, false},
                   {"B", DataType::kInt64, false}});
  TableBuilder sb("S", s_schema), tb("T", t_schema);
  ASSERT_TRUE(sb.AppendRow({Value(int64_t{1}), Value(int64_t{1})}).ok());
  ASSERT_TRUE(tb.AppendRow({Value(int64_t{2}), Value(int64_t{2})}).ok());
  auto s = sb.Finish().ValueOrDie();
  auto t = tb.Finish().ValueOrDie();
  auto merged =
      CodsMergeGeneral(*s, *t, {"J"}, {}, "R", nullptr).ValueOrDie();
  EXPECT_EQ(merged->rows(), 0u);
}

TEST(MergeGeneral, CompositeJoinColumns) {
  Schema s_schema({{"J1", DataType::kInt64, false},
                   {"J2", DataType::kString, false},
                   {"A", DataType::kInt64, false}});
  Schema t_schema({{"J1", DataType::kInt64, false},
                   {"J2", DataType::kString, false},
                   {"B", DataType::kInt64, false}});
  TableBuilder sb("S", s_schema), tb("T", t_schema);
  for (int64_t i = 0; i < 20; ++i) {
    ASSERT_TRUE(sb.AppendRow({Value(i % 3), Value(i % 2 ? "x" : "y"),
                              Value(i)})
                    .ok());
    ASSERT_TRUE(tb.AppendRow({Value(i % 4), Value(i % 2 ? "x" : "y"),
                              Value(i * 7)})
                    .ok());
  }
  auto s = sb.Finish().ValueOrDie();
  auto t = tb.Finish().ValueOrDie();
  auto merged = CodsMergeGeneral(*s, *t, {"J1", "J2"}, {}, "R", nullptr)
                    .ValueOrDie();
  auto oracle =
      ColumnQueryLevelMerge(*s, *t, {"J1", "J2"}, {}, "R").ValueOrDie();
  ExpectSameContent(*merged, *oracle.r);
  EXPECT_TRUE(merged->ValidateInvariants().ok());
}

TEST(MergeDispatch, PicksKeyFkWhenDeclared) {
  auto [s, t] = DecomposedFig1();
  auto result = CodsMerge(*s, *t, {"Employee"}, {}, "R", nullptr)
                    .ValueOrDie();
  EXPECT_TRUE(result.used_key_fk);
  ExpectSameContent(*Figure1TableR(), *result.table);
}

TEST(MergeDispatch, SwapsSidesWhenLeftIsKeyed) {
  auto [s, t] = DecomposedFig1();
  // Pass the keyed table first: dispatcher must still use key–FK by
  // swapping, with output columns T ++ S-payload.
  auto result = CodsMerge(*t, *s, {"Employee"}, {}, "R", nullptr)
                    .ValueOrDie();
  EXPECT_TRUE(result.used_key_fk);
  EXPECT_EQ(result.table->schema().ColumnNames(),
            (std::vector<std::string>{"Employee", "Skill", "Address"}));
  ExpectSameContent(*Figure1TableR(), *result.table);
}

TEST(MergeDispatch, FallsBackToGeneralWithoutKeys) {
  auto pair = GenerateGeneralMergePair(5, 2, 3, 9).ValueOrDie();
  auto result =
      CodsMerge(*pair.s, *pair.t, {"J"}, {}, "R", nullptr).ValueOrDie();
  EXPECT_FALSE(result.used_key_fk);
  EXPECT_EQ(result.table->rows(), 5u * 2 * 3);
}

TEST(MergeDispatch, ForceGeneralOverridesKeyFk) {
  auto [s, t] = DecomposedFig1();
  MergeOptions options;
  options.force_general = true;
  auto result = CodsMerge(*s, *t, {"Employee"}, {}, "R", nullptr, options)
                    .ValueOrDie();
  EXPECT_FALSE(result.used_key_fk);
  ExpectSameContent(*Figure1TableR(), *result.table);
}

TEST(MergeDispatch, ValidateKeyCatchesFalseDeclaration) {
  // T declares key K but contains duplicates.
  Schema t_schema({{"K", DataType::kInt64, false},
                   {"P", DataType::kInt64, false}},
                  {"K"});
  TableBuilder tb("T", t_schema);
  ASSERT_TRUE(tb.AppendRow({Value(int64_t{1}), Value(int64_t{1})}).ok());
  ASSERT_TRUE(tb.AppendRow({Value(int64_t{1}), Value(int64_t{2})}).ok());
  auto t = tb.Finish().ValueOrDie();
  Schema s_schema({{"K", DataType::kInt64, false},
                   {"V", DataType::kInt64, false}});
  TableBuilder sb("S", s_schema);
  ASSERT_TRUE(sb.AppendRow({Value(int64_t{1}), Value(int64_t{5})}).ok());
  auto s = sb.Finish().ValueOrDie();

  MergeOptions options;
  options.validate_key = true;
  auto result = CodsMerge(*s, *t, {"K"}, {}, "R", nullptr, options);
  EXPECT_TRUE(result.status().IsConstraintViolation())
      << result.status().ToString();
}

// ---- Round-trip property: merge(decompose(R)) == R. ------------------------

struct RoundTripParam {
  uint64_t rows;
  uint64_t distinct;
};

class MergeRoundTrip : public ::testing::TestWithParam<RoundTripParam> {};

TEST_P(MergeRoundTrip, DecomposeThenMergeIsIdentity) {
  const RoundTripParam p = GetParam();
  auto r = RandomFdTable(p.rows, p.distinct, p.rows * 13 + p.distinct);
  auto dec = CodsDecompose(*r, "S", {"K", "V"}, {}, "T", {"K", "P"}, {"K"},
                           nullptr)
                 .ValueOrDie();
  auto merged = CodsMerge(*dec.s, *dec.t, {"K"}, {}, "R2", nullptr)
                    .ValueOrDie();
  EXPECT_TRUE(merged.used_key_fk);
  ExpectSameContent(*r, *merged.table);
  EXPECT_TRUE(merged.table->ValidateInvariants().ok());

  // The general algorithm must agree as a multiset too.
  auto general = CodsMergeGeneral(*dec.s, *dec.t, {"K"}, {}, "R3", nullptr)
                     .ValueOrDie();
  ExpectSameContent(*r, *general);
}

INSTANTIATE_TEST_SUITE_P(
    Grid, MergeRoundTrip,
    ::testing::Values(RoundTripParam{1, 1}, RoundTripParam{50, 5},
                      RoundTripParam{100, 100}, RoundTripParam{1000, 31},
                      RoundTripParam{5000, 1250},
                      RoundTripParam{20000, 100}),
    [](const ::testing::TestParamInfo<RoundTripParam>& info) {
      return "r" + std::to_string(info.param.rows) + "_d" +
             std::to_string(info.param.distinct);
    });

}  // namespace
}  // namespace cods

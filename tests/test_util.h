// Shared helpers for the CODS test suite: literal table construction,
// multiset comparison of table contents, and random table generation for
// property tests.

#ifndef CODS_TESTS_TEST_UTIL_H_
#define CODS_TESTS_TEST_UTIL_H_

#include <algorithm>
#include <memory>
#include <string>
#include <vector>

#include "common/random.h"
#include "gtest/gtest.h"
#include "rowstore/btree_index.h"
#include "storage/table.h"

namespace cods::testing {

/// Builds a table from a literal row list. Fails the test on error.
inline std::shared_ptr<const Table> MakeTable(
    const std::string& name, const Schema& schema,
    const std::vector<Row>& rows) {
  TableBuilder builder(name, schema);
  for (const Row& r : rows) {
    Status st = builder.AppendRow(r);
    EXPECT_TRUE(st.ok()) << st.ToString();
  }
  Result<std::shared_ptr<const Table>> table = builder.Finish();
  EXPECT_TRUE(table.ok()) << table.status().ToString();
  return table.ValueOrDie();
}

/// String columns Employee/Skill/Address from the paper's Figure 1.
inline std::shared_ptr<const Table> Figure1TableR() {
  Schema schema({{"Employee", DataType::kString, false},
                 {"Skill", DataType::kString, false},
                 {"Address", DataType::kString, false}},
                {});
  return MakeTable(
      "R", schema,
      {
          {Value("Jones"), Value("Typing"), Value("425 Grant Ave")},
          {Value("Jones"), Value("Shorthand"), Value("425 Grant Ave")},
          {Value("Roberts"), Value("Light Cleaning"),
           Value("747 Industrial Way")},
          {Value("Ellis"), Value("Alchemy"), Value("747 Industrial Way")},
          {Value("Jones"), Value("Whittling"), Value("425 Grant Ave")},
          {Value("Ellis"), Value("Juggling"), Value("747 Industrial Way")},
          {Value("Harrison"), Value("Light Cleaning"),
           Value("425 Grant Ave")},
      });
}

/// Materializes and sorts a table's rows for order-insensitive equality.
inline std::vector<Row> SortedRows(const Table& table) {
  std::vector<Row> rows = table.Materialize();
  std::sort(rows.begin(), rows.end(), RowLess);
  return rows;
}

/// Expects two tables to hold the same multiset of tuples (column order
/// must match; row order may differ).
inline void ExpectSameContent(const Table& a, const Table& b) {
  ASSERT_EQ(a.num_columns(), b.num_columns());
  EXPECT_EQ(a.rows(), b.rows());
  EXPECT_EQ(SortedRows(a), SortedRows(b));
}

/// Renders a row for diagnostics.
inline std::string RowToString(const Row& row) {
  std::string out = "(";
  for (size_t i = 0; i < row.size(); ++i) {
    if (i > 0) out += ", ";
    out += row[i].ToString();
  }
  return out + ")";
}

/// Random table R(K, V, P) with the FD K -> P, for decomposition
/// property tests.
inline std::shared_ptr<const Table> RandomFdTable(uint64_t rows,
                                                  uint64_t distinct_keys,
                                                  uint64_t seed) {
  Rng rng(seed);
  Schema schema({{"K", DataType::kInt64, false},
                 {"V", DataType::kInt64, false},
                 {"P", DataType::kInt64, false}},
                {});
  TableBuilder builder("R", schema);
  for (uint64_t r = 0; r < rows; ++r) {
    int64_t k = r < distinct_keys
                    ? static_cast<int64_t>(r)
                    : rng.Uniform(0, static_cast<int64_t>(distinct_keys) - 1);
    int64_t v = rng.Uniform(0, 9);
    int64_t p = (k * 7 + 3) % 11;  // function of k => FD holds
    Status st = builder.AppendRow({Value(k), Value(v), Value(p)});
    EXPECT_TRUE(st.ok());
  }
  auto table = builder.Finish();
  EXPECT_TRUE(table.ok());
  return table.ValueOrDie();
}

}  // namespace cods::testing

#endif  // CODS_TESTS_TEST_UTIL_H_

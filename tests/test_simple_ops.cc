// Tests for the simple SMOs: create/copy, union, partition, and the
// column-level operators.

#include "evolution/simple_ops.h"

#include "gtest/gtest.h"
#include "test_util.h"

namespace cods {
namespace {

using ::cods::testing::ExpectSameContent;
using ::cods::testing::Figure1TableR;
using ::cods::testing::MakeTable;
using ::cods::testing::SortedRows;

TEST(SimpleOps, MakeEmptyTable) {
  Schema schema({{"a", DataType::kInt64, false},
                 {"b", DataType::kString, false}},
                {"a"});
  auto table = MakeEmptyTable("t", schema).ValueOrDie();
  EXPECT_EQ(table->rows(), 0u);
  EXPECT_EQ(table->num_columns(), 2u);
  EXPECT_TRUE(table->Materialize().empty());
  EXPECT_TRUE(table->ValidateInvariants().ok());
}

TEST(SimpleOps, ShallowCopySharesColumns) {
  auto r = Figure1TableR();
  auto copy = CopyTableOp(*r, "R2", /*deep=*/false).ValueOrDie();
  EXPECT_EQ(copy->name(), "R2");
  EXPECT_EQ(copy->column(0).get(), r->column(0).get());
  ExpectSameContent(*r, *copy);
}

TEST(SimpleOps, DeepCopyDuplicatesStorage) {
  auto r = Figure1TableR();
  auto copy = CopyTableOp(*r, "R2", /*deep=*/true).ValueOrDie();
  EXPECT_NE(copy->column(0).get(), r->column(0).get());
  ExpectSameContent(*r, *copy);
  EXPECT_TRUE(copy->ValidateInvariants().ok());
}

TEST(Union, ConcatenatesTuplesAndDictionaries) {
  Schema schema({{"k", DataType::kInt64, false},
                 {"v", DataType::kString, false}},
                {});
  auto a = MakeTable("A", schema,
                     {{Value(int64_t{1}), Value("x")},
                      {Value(int64_t{2}), Value("y")}});
  auto b = MakeTable("B", schema,
                     {{Value(int64_t{2}), Value("z")},
                      {Value(int64_t{3}), Value("x")}});
  RecordingObserver observer;
  auto u = UnionTablesOp(*a, *b, "U", &observer).ValueOrDie();
  EXPECT_EQ(u->rows(), 4u);
  EXPECT_TRUE(u->ValidateInvariants().ok());
  EXPECT_TRUE(observer.HasStep("concat"));
  std::vector<Row> rows = u->Materialize();
  EXPECT_EQ(rows[0], (Row{Value(int64_t{1}), Value("x")}));
  EXPECT_EQ(rows[2], (Row{Value(int64_t{2}), Value("z")}));
  EXPECT_EQ(rows[3], (Row{Value(int64_t{3}), Value("x")}));
}

TEST(Union, RequiresSameLayout) {
  auto r = Figure1TableR();
  Schema other({{"x", DataType::kInt64, false}});
  auto b = MakeTable("B", other, {{Value(int64_t{1})}});
  EXPECT_FALSE(UnionTablesOp(*r, *b, "U", nullptr).ok());
}

TEST(Union, WithSelfDoublesRows) {
  auto r = Figure1TableR();
  auto u = UnionTablesOp(*r, *r, "U", nullptr).ValueOrDie();
  EXPECT_EQ(u->rows(), 14u);
  EXPECT_TRUE(u->ValidateInvariants().ok());
}

TEST(Partition, SplitsByPredicate) {
  auto r = Figure1TableR();
  RecordingObserver observer;
  auto result = PartitionTableOp(*r, "Grant", "Rest", "Address",
                                 CompareOp::kEq, Value("425 Grant Ave"),
                                 &observer)
                    .ValueOrDie();
  EXPECT_EQ(result.matching->rows(), 4u);
  EXPECT_EQ(result.rest->rows(), 3u);
  EXPECT_TRUE(result.matching->ValidateInvariants().ok());
  EXPECT_TRUE(result.rest->ValidateInvariants().ok());
  EXPECT_TRUE(observer.HasStep("select"));
  EXPECT_TRUE(observer.HasStep("filtering"));
  for (const Row& row : result.matching->Materialize()) {
    EXPECT_EQ(row[2], Value("425 Grant Ave"));
  }
  for (const Row& row : result.rest->Materialize()) {
    EXPECT_NE(row[2], Value("425 Grant Ave"));
  }
}

TEST(Partition, NumericRangePredicates) {
  Schema schema({{"id", DataType::kInt64, false}});
  std::vector<Row> rows;
  for (int64_t i = 0; i < 100; ++i) rows.push_back({Value(i)});
  auto t = MakeTable("T", schema, rows);
  auto result = PartitionTableOp(*t, "Low", "High", "id", CompareOp::kLt,
                                 Value(int64_t{30}), nullptr)
                    .ValueOrDie();
  EXPECT_EQ(result.matching->rows(), 30u);
  EXPECT_EQ(result.rest->rows(), 70u);

  // Union of the parts restores the original multiset.
  auto u = UnionTablesOp(*result.matching, *result.rest, "U", nullptr)
               .ValueOrDie();
  EXPECT_EQ(SortedRows(*u), SortedRows(*t));
}

TEST(Partition, EmptySideIsFine) {
  auto r = Figure1TableR();
  auto result = PartitionTableOp(*r, "None", "All", "Employee",
                                 CompareOp::kEq, Value("Nobody"), nullptr)
                    .ValueOrDie();
  EXPECT_EQ(result.matching->rows(), 0u);
  EXPECT_EQ(result.rest->rows(), 7u);
}

TEST(Partition, MissingColumnErrors) {
  auto r = Figure1TableR();
  EXPECT_FALSE(PartitionTableOp(*r, "A", "B", "Nope", CompareOp::kEq,
                                Value("x"), nullptr)
                   .ok());
}

TEST(AddColumn, ConstantDefaultIsOneFill) {
  auto r = Figure1TableR();
  auto out = AddColumnOp(*r, {"Grade", DataType::kInt64, false},
                         Value(int64_t{1}))
                 .ValueOrDie();
  EXPECT_EQ(out->num_columns(), 4u);
  EXPECT_EQ(out->rows(), 7u);
  // Existing columns reused by pointer; new column is a single bitmap.
  EXPECT_EQ(out->column(0).get(), r->column(0).get());
  auto grade = out->ColumnByName("Grade").ValueOrDie();
  EXPECT_EQ(grade->distinct_count(), 1u);
  // The default column is a single all-ones run: the codec keeps the
  // homogeneous bitmap on WAH (at most one code word regardless of
  // table size — 7 rows fit entirely in the tail group).
  EXPECT_EQ(grade->bitmap(0).rep(), BitmapRep::kWah);
  EXPECT_LE(grade->bitmap(0).wah().NumWords(), 1u);
  EXPECT_EQ(grade->bitmap(0).CountOnes(), 7u);
  EXPECT_TRUE(out->ValidateInvariants().ok());
}

TEST(AddColumn, TypeMismatchRejected) {
  auto r = Figure1TableR();
  EXPECT_FALSE(AddColumnOp(*r, {"Grade", DataType::kInt64, false},
                           Value("not int"))
                   .ok());
}

TEST(AddColumn, WithDataLoadsValues) {
  auto r = Figure1TableR();
  std::vector<Value> grades;
  for (int64_t i = 0; i < 7; ++i) grades.push_back(Value(i % 3));
  auto out = AddColumnWithDataOp(*r, {"Grade", DataType::kInt64, false},
                                 grades)
                 .ValueOrDie();
  EXPECT_EQ(out->GetValue(5, 3), Value(int64_t{5 % 3}));
  EXPECT_TRUE(out->ValidateInvariants().ok());
  // Wrong length rejected.
  EXPECT_FALSE(AddColumnWithDataOp(*r, {"G2", DataType::kInt64, false},
                                   {Value(int64_t{1})})
                   .ok());
}

TEST(DropColumn, RemovesOnlyThatColumn) {
  auto r = Figure1TableR();
  auto out = DropColumnOp(*r, "Address").ValueOrDie();
  EXPECT_EQ(out->num_columns(), 2u);
  EXPECT_EQ(out->column(0).get(), r->column(0).get());
  EXPECT_FALSE(out->schema().HasColumn("Address"));
  EXPECT_FALSE(DropColumnOp(*r, "Nope").ok());
}

TEST(RenameColumn, SchemaOnlyChange) {
  auto r = Figure1TableR();
  auto out = RenameColumnOp(*r, "Address", "Addr").ValueOrDie();
  EXPECT_TRUE(out->schema().HasColumn("Addr"));
  EXPECT_EQ(out->column(2).get(), r->column(2).get());
  EXPECT_FALSE(RenameColumnOp(*r, "Nope", "X").ok());
  EXPECT_FALSE(RenameColumnOp(*r, "Address", "Skill").ok());
}

}  // namespace
}  // namespace cods

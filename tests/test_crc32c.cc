// CRC32C tests: the published known-answer vectors (so the polynomial
// and bit order are provably right, not merely self-consistent),
// incremental Extend equivalence, masking, and error detection.

#include "common/crc32c.h"

#include <cstring>
#include <string>
#include <vector>

#include "common/random.h"
#include "gtest/gtest.h"

namespace cods {
namespace {

uint32_t CrcOf(const std::string& s) {
  return crc32c::Value(s.data(), s.size());
}

TEST(Crc32c, KnownVectors) {
  // The canonical CRC-32C (Castagnoli) check value.
  EXPECT_EQ(CrcOf("123456789"), 0xE3069283u);
  // RFC 3720 (iSCSI) appendix B.4 test patterns.
  std::vector<uint8_t> zeros(32, 0);
  EXPECT_EQ(crc32c::Value(zeros.data(), zeros.size()), 0x8A9136AAu);
  std::vector<uint8_t> ones(32, 0xFF);
  EXPECT_EQ(crc32c::Value(ones.data(), ones.size()), 0x62A8AB43u);
  std::vector<uint8_t> ascending(32);
  for (size_t i = 0; i < 32; ++i) ascending[i] = static_cast<uint8_t>(i);
  EXPECT_EQ(crc32c::Value(ascending.data(), ascending.size()), 0x46DD794Eu);
  EXPECT_EQ(CrcOf(""), 0u);
}

TEST(Crc32c, ExtendMatchesOneShot) {
  Rng rng(7);
  std::string data = rng.NextString(1000);
  uint32_t whole = CrcOf(data);
  // Any split point must give the same value via Extend.
  for (size_t split : {size_t{0}, size_t{1}, size_t{3}, size_t{499},
                       size_t{997}, data.size()}) {
    uint32_t crc = crc32c::Value(data.data(), split);
    crc = crc32c::Extend(crc, data.data() + split, data.size() - split);
    EXPECT_EQ(crc, whole) << "split at " << split;
  }
}

TEST(Crc32c, DistinguishesData) {
  EXPECT_NE(CrcOf("a"), CrcOf("b"));
  EXPECT_NE(CrcOf("hello"), CrcOf("hello "));
}

TEST(Crc32c, SingleBitFlipsAlwaysDetected) {
  Rng rng(11);
  std::string data = rng.NextString(256);
  uint32_t good = CrcOf(data);
  for (size_t byte = 0; byte < data.size(); ++byte) {
    for (int bit = 0; bit < 8; ++bit) {
      std::string bad = data;
      bad[byte] = static_cast<char>(bad[byte] ^ (1 << bit));
      EXPECT_NE(CrcOf(bad), good) << "byte " << byte << " bit " << bit;
    }
  }
}

TEST(Crc32c, MaskRoundTripsAndChangesValue) {
  for (uint32_t crc : {0u, 1u, 0xE3069283u, 0xFFFFFFFFu}) {
    uint32_t masked = crc32c::Mask(crc);
    EXPECT_NE(masked, crc);
    EXPECT_EQ(crc32c::Unmask(masked), crc);
  }
}

}  // namespace
}  // namespace cods

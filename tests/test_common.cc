// Tests for the common runtime: Status/Result, string utilities, and the
// PRNG / Zipf sampler.

#include <set>

#include "common/random.h"
#include "common/result.h"
#include "common/status.h"
#include "common/stopwatch.h"
#include "common/string_util.h"
#include "gtest/gtest.h"

namespace cods {
namespace {

TEST(Status, OkIsDefault) {
  Status st;
  EXPECT_TRUE(st.ok());
  EXPECT_EQ(st.code(), StatusCode::kOk);
  EXPECT_EQ(st.ToString(), "OK");
  EXPECT_TRUE(st.message().empty());
}

TEST(Status, ErrorCarriesCodeAndMessage) {
  Status st = Status::KeyError("no table named 'X'");
  EXPECT_FALSE(st.ok());
  EXPECT_TRUE(st.IsKeyError());
  EXPECT_EQ(st.message(), "no table named 'X'");
  EXPECT_EQ(st.ToString(), "Key error: no table named 'X'");
}

TEST(Status, CopyPreservesState) {
  Status st = Status::IOError("disk gone");
  Status copy = st;
  EXPECT_TRUE(copy.IsIOError());
  EXPECT_EQ(copy.message(), "disk gone");
  Status assigned;
  assigned = st;
  EXPECT_TRUE(assigned.IsIOError());
}

TEST(Status, WithContextPrefixes) {
  Status st = Status::TypeError("bad value").WithContext("column 'a'");
  EXPECT_EQ(st.message(), "column 'a': bad value");
  EXPECT_TRUE(st.IsTypeError());
  EXPECT_TRUE(Status::OK().WithContext("x").ok());
}

TEST(Status, AllCodesHaveNames) {
  for (int c = 0; c <= 9; ++c) {
    EXPECT_STRNE(StatusCodeToString(static_cast<StatusCode>(c)), "Unknown");
  }
}

Result<int> ParsePositive(int x) {
  if (x <= 0) return Status::InvalidArgument("not positive");
  return x;
}

Result<int> Doubled(int x) {
  CODS_ASSIGN_OR_RETURN(int v, ParsePositive(x));
  return v * 2;
}

TEST(Result, HoldsValue) {
  Result<int> r = ParsePositive(5);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r.ValueOrDie(), 5);
  EXPECT_EQ(*r, 5);
  EXPECT_TRUE(r.status().ok());
}

TEST(Result, HoldsError) {
  Result<int> r = ParsePositive(-1);
  EXPECT_FALSE(r.ok());
  EXPECT_TRUE(r.status().IsInvalidArgument());
}

TEST(Result, AssignOrReturnPropagates) {
  EXPECT_EQ(Doubled(21).ValueOrDie(), 42);
  EXPECT_FALSE(Doubled(0).ok());
}

TEST(Result, MoveOnlyValues) {
  Result<std::unique_ptr<int>> r = std::make_unique<int>(7);
  ASSERT_TRUE(r.ok());
  std::unique_ptr<int> v = std::move(r).ValueOrDie();
  EXPECT_EQ(*v, 7);
}

TEST(StringUtil, Split) {
  EXPECT_EQ(Split("a,b,c", ','),
            (std::vector<std::string>{"a", "b", "c"}));
  EXPECT_EQ(Split("a,,c", ','), (std::vector<std::string>{"a", "", "c"}));
  EXPECT_EQ(Split("", ','), (std::vector<std::string>{""}));
}

TEST(StringUtil, Trim) {
  EXPECT_EQ(Trim("  x  "), "x");
  EXPECT_EQ(Trim("x"), "x");
  EXPECT_EQ(Trim("   "), "");
  EXPECT_EQ(Trim("\ta b\n"), "a b");
}

TEST(StringUtil, CaseHelpers) {
  EXPECT_TRUE(EqualsIgnoreCase("DECOMPOSE", "decompose"));
  EXPECT_FALSE(EqualsIgnoreCase("a", "ab"));
  EXPECT_EQ(ToUpper("aBc1"), "ABC1");
  EXPECT_EQ(ToLower("AbC1"), "abc1");
}

TEST(StringUtil, Join) {
  EXPECT_EQ(Join({"a", "b"}, ", "), "a, b");
  EXPECT_EQ(Join({}, ","), "");
}

TEST(StringUtil, NumberSniffing) {
  EXPECT_TRUE(LooksLikeInt("42"));
  EXPECT_TRUE(LooksLikeInt("-42"));
  EXPECT_FALSE(LooksLikeInt("4.2"));
  EXPECT_FALSE(LooksLikeInt("x"));
  EXPECT_FALSE(LooksLikeInt(""));
  EXPECT_TRUE(LooksLikeDouble("4.2"));
  EXPECT_TRUE(LooksLikeDouble("-1e9"));
  EXPECT_FALSE(LooksLikeDouble("42"));  // ints are not doubles here
  EXPECT_FALSE(LooksLikeDouble("abc"));
}

TEST(Rng, UniformStaysInRange) {
  Rng rng(1);
  for (int i = 0; i < 1000; ++i) {
    int64_t v = rng.Uniform(-5, 5);
    EXPECT_GE(v, -5);
    EXPECT_LE(v, 5);
  }
}

TEST(Rng, DeterministicForFixedSeed) {
  Rng a(99), b(99);
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(a.Uniform(0, 1000000), b.Uniform(0, 1000000));
  }
}

TEST(Rng, PermutationIsAPermutation) {
  Rng rng(3);
  std::vector<uint64_t> p = rng.Permutation(100);
  std::set<uint64_t> s(p.begin(), p.end());
  EXPECT_EQ(s.size(), 100u);
  EXPECT_EQ(*s.begin(), 0u);
  EXPECT_EQ(*s.rbegin(), 99u);
}

TEST(Zipf, CoversDomainAndSkews) {
  Rng rng(5);
  ZipfSampler zipf(100, 1.0);
  std::vector<int> counts(100, 0);
  for (int i = 0; i < 20000; ++i) ++counts[zipf.Next(rng)];
  // Rank 0 must be sampled far more often than rank 99.
  EXPECT_GT(counts[0], counts[99] * 5);
  for (uint64_t v : {uint64_t{0}, uint64_t{99}}) {
    EXPECT_GT(counts[v], 0) << v;
  }
}

TEST(Stopwatch, MeasuresElapsedTime) {
  Stopwatch watch;
  volatile uint64_t sink = 0;
  for (uint64_t i = 0; i < 100000; ++i) sink = sink + i;
  EXPECT_GT(watch.ElapsedNanos(), 0);
  EXPECT_GE(watch.ElapsedSeconds(), 0.0);
  double before = watch.ElapsedMillis();
  watch.Reset();
  EXPECT_LE(watch.ElapsedMillis(), before + 1000.0);
}

}  // namespace
}  // namespace cods

// Tests for the MVCC serving core (src/concurrency/): snapshot pinning,
// root immutability, the first-writer-wins commit protocol (overlapping
// write sets abort, disjoint ones rebase), and a raced reader/writer
// stress that proves snapshot isolation — run it under TSan (CI's tsan
// job, CODS_THREADS=8) to certify the memory orderings too.

#include "concurrency/snapshot_catalog.h"

#include <atomic>
#include <thread>
#include <vector>

#include "evolution/engine.h"
#include "gtest/gtest.h"
#include "query/query_engine.h"
#include "test_util.h"

namespace cods {
namespace {

using ::cods::testing::ExpectSameContent;
using ::cods::testing::Figure1TableR;

Catalog SeedCatalog() {
  Catalog catalog;
  CODS_CHECK_OK(catalog.AddTable(Figure1TableR()));
  return catalog;
}

TEST(SnapshotCatalog, StartsEmptyAtRootZero) {
  SnapshotCatalog serving;
  Snapshot snap = serving.GetSnapshot();
  ASSERT_TRUE(snap.valid());
  EXPECT_EQ(snap.id(), 0u);
  EXPECT_EQ(snap.root().size(), 0u);
  SnapshotCatalog::Stats stats = serving.GetStats();
  EXPECT_EQ(stats.root_id, 0u);
  EXPECT_EQ(stats.commits, 0u);
  EXPECT_EQ(stats.live_pins, 1);  // `snap` itself
}

TEST(SnapshotCatalog, CommitPublishesNewRootOldPinsSurvive) {
  SnapshotCatalog serving;
  Snapshot before = serving.GetSnapshot();

  SnapshotCatalog::WriteTxn txn = serving.BeginWrite();
  ASSERT_TRUE(txn.store().AddTable(Figure1TableR()).ok());
  ASSERT_TRUE(serving.Commit(std::move(txn)).ok());

  Snapshot after = serving.GetSnapshot();
  EXPECT_NE(before.id(), after.id());
  EXPECT_FALSE(before.root().HasTable("R"));
  EXPECT_TRUE(after.root().HasTable("R"));
  // The pre-commit pin still answers from its root.
  EXPECT_EQ(before.root().size(), 0u);
  EXPECT_EQ(serving.GetStats().commits, 1u);
}

TEST(SnapshotCatalog, PinGaugeTracksLiveSnapshots) {
  SnapshotCatalog serving;
  EXPECT_EQ(serving.GetStats().live_pins, 0);
  {
    Snapshot a = serving.GetSnapshot();
    Snapshot b = serving.GetSnapshot();
    Snapshot c = a;  // copies share one pin token
    EXPECT_EQ(serving.GetStats().live_pins, 2);
  }
  EXPECT_EQ(serving.GetStats().live_pins, 0);
}

TEST(SnapshotCatalog, PublishedRootsAreImmutable) {
  SnapshotCatalog serving;
  serving.Reset(SeedCatalog());
  Snapshot snap = serving.GetSnapshot();
  // The mutating half of TableStore exists only to satisfy the
  // interface; a published root refuses it.
  CatalogRoot& root = const_cast<CatalogRoot&>(snap.root());
  EXPECT_TRUE(root.AddTable(Figure1TableR()).IsInvalidArgument());
  EXPECT_TRUE(root.DropTable("R").IsInvalidArgument());
  EXPECT_TRUE(root.RenameTable("R", "S").IsInvalidArgument());
}

TEST(SnapshotCatalog, OverlappingWritersFirstWinsSecondAborts) {
  SnapshotCatalog serving;
  serving.Reset(SeedCatalog());

  // Both writers pin the same base and touch the same table.
  SnapshotCatalog::WriteTxn first = serving.BeginWrite();
  SnapshotCatalog::WriteTxn second = serving.BeginWrite();
  ASSERT_TRUE(first.store().DropTable("R").ok());
  ASSERT_TRUE(second.store().RenameTable("R", "S").ok());

  ASSERT_TRUE(serving.Commit(std::move(first)).ok());
  Status st = serving.Commit(std::move(second));
  EXPECT_TRUE(st.IsAborted()) << st.ToString();
  EXPECT_NE(st.message().find("write-write conflict"), std::string::npos)
      << st.ToString();

  SnapshotCatalog::Stats stats = serving.GetStats();
  EXPECT_EQ(stats.aborts, 1u);
  // The loser left no trace: R is dropped, S never appeared.
  Snapshot snap = serving.GetSnapshot();
  EXPECT_FALSE(snap.root().HasTable("R"));
  EXPECT_FALSE(snap.root().HasTable("S"));
}

TEST(SnapshotCatalog, DisjointWritersRebaseAndBothCommit) {
  SnapshotCatalog serving;
  serving.Reset(SeedCatalog());

  SnapshotCatalog::WriteTxn first = serving.BeginWrite();
  SnapshotCatalog::WriteTxn second = serving.BeginWrite();
  ASSERT_TRUE(first.store().AddTable(Figure1TableR()->WithName("A")).ok());
  ASSERT_TRUE(second.store().AddTable(Figure1TableR()->WithName("B")).ok());

  ASSERT_TRUE(serving.Commit(std::move(first)).ok());
  // Disjoint write sets: the second commit rebases onto the first's
  // root instead of aborting.
  Status st = serving.Commit(std::move(second));
  ASSERT_TRUE(st.ok()) << st.ToString();

  Snapshot snap = serving.GetSnapshot();
  EXPECT_TRUE(snap.root().HasTable("A"));
  EXPECT_TRUE(snap.root().HasTable("B"));
  EXPECT_TRUE(snap.root().HasTable("R"));
  EXPECT_EQ(serving.GetStats().aborts, 0u);
}

TEST(SnapshotCatalog, FailedPreSwapHookAbortsThePublish) {
  SnapshotCatalog serving;
  SnapshotCatalog::WriteTxn txn = serving.BeginWrite();
  ASSERT_TRUE(txn.store().AddTable(Figure1TableR()).ok());
  Status st = serving.Commit(std::move(txn), [] {
    return Status::IOError("fsync failed");
  });
  EXPECT_TRUE(st.IsIOError());
  // Durability before visibility: the root never swapped.
  EXPECT_FALSE(serving.GetSnapshot().root().HasTable("R"));
  EXPECT_EQ(serving.GetStats().commits, 0u);
}

TEST(SnapshotCatalog, OldSnapshotSurvivesTableDrop) {
  SnapshotCatalog serving;
  serving.Reset(SeedCatalog());
  Snapshot pinned = serving.GetSnapshot();

  EvolutionEngine engine(&serving);
  ASSERT_TRUE(engine.Apply(Smo::DropTable("R")).ok());

  EXPECT_FALSE(serving.GetSnapshot().root().HasTable("R"));
  // The pinned root keeps the dropped table — and its data — alive.
  ASSERT_TRUE(pinned.root().HasTable("R"));
  ExpectSameContent(*Figure1TableR(),
                    *pinned.root().GetTable("R").ValueOrDie());
}

TEST(SnapshotCatalog, SnapshotOutlivesTheCatalog) {
  Snapshot escaped;
  {
    SnapshotCatalog serving;
    serving.Reset(SeedCatalog());
    escaped = serving.GetSnapshot();
  }
  // The pin accounting object is shared, not borrowed: dropping the
  // snapshot after its SnapshotCatalog died must not crash.
  ASSERT_TRUE(escaped.valid());
  EXPECT_TRUE(escaped.root().HasTable("R"));
}

TEST(SnapshotCatalog, EngineScriptCommitsAtomically) {
  // A multi-statement script through the snapshot-mode engine publishes
  // ONE root carrying every statement's effect.
  SnapshotCatalog serving;
  serving.Reset(SeedCatalog());
  const uint64_t before = serving.GetStats().root_id;

  EvolutionEngine engine(&serving);
  ASSERT_TRUE(engine
                  .ApplyAll({Smo::AddColumn("R", {"P1", DataType::kInt64},
                                            Value(int64_t{1})),
                             Smo::AddColumn("R", {"P2", DataType::kInt64},
                                            Value(int64_t{2}))})
                  .ok());

  SnapshotCatalog::Stats stats = serving.GetStats();
  EXPECT_EQ(stats.root_id, before + 1);  // one swap, not two
  auto r = serving.GetSnapshot().root().GetTable("R").ValueOrDie();
  EXPECT_TRUE(r->schema().HasColumn("P1"));
  EXPECT_TRUE(r->schema().HasColumn("P2"));
}

TEST(SnapshotCatalog, FailedScriptPublishesOnlyTheAppliedPrefix) {
  SnapshotCatalog serving;
  serving.Reset(SeedCatalog());

  EvolutionEngine engine(&serving);
  Status st = engine.ApplyAll({Smo::AddColumn("R", {"P1", DataType::kInt64},
                                              Value(int64_t{1})),
                               Smo::DropColumn("R", "NoSuchColumn")});
  EXPECT_FALSE(st.ok());
  // Statement semantics match the serial engine: the applied prefix
  // commits, the failing statement does not.
  auto r = serving.GetSnapshot().root().GetTable("R").ValueOrDie();
  EXPECT_TRUE(r->schema().HasColumn("P1"));
}

// ---- the raced stress proof -----------------------------------------------
//
// One writer thread commits scripts that each add BOTH columns P1 and P2
// to R, then scripts that drop both — always in one script, so every
// published root must carry both or neither. Reader threads spin pinning
// snapshots and assert (a) the invariant holds on every root they ever
// observe, and (b) a query answered through the pinned snapshot is
// identical to the same query against a quiesced Catalog materialized
// from that root. Run under TSan this also proves the commit/pin path
// has no data races.
TEST(SnapshotCatalogStress, ReadersSeeOnlyCommittedConsistentRoots) {
  SnapshotCatalog serving;
  serving.Reset(SeedCatalog());

  constexpr int kReaders = 4;
  constexpr int kWriterScripts = 60;
  constexpr int kReadsPerReader = 400;

  std::atomic<int> invariant_violations{0};
  std::atomic<int> mismatches{0};
  std::atomic<int> writer_failures{0};
  std::atomic<bool> stop{false};

  std::thread writer([&] {
    EvolutionEngine engine(&serving);
    for (int i = 0; i < kWriterScripts && !stop.load(); ++i) {
      Status st;
      if (i % 2 == 0) {
        st = engine.ApplyAll({Smo::AddColumn("R", {"P1", DataType::kInt64},
                                             Value(int64_t{1})),
                              Smo::AddColumn("R", {"P2", DataType::kInt64},
                                             Value(int64_t{2}))});
      } else {
        st = engine.ApplyAll(
            {Smo::DropColumn("R", "P1"), Smo::DropColumn("R", "P2")});
      }
      if (!st.ok()) writer_failures.fetch_add(1);
    }
  });

  std::vector<std::thread> readers;
  for (int t = 0; t < kReaders; ++t) {
    readers.emplace_back([&] {
      QueryRequest count_jones = QueryRequest::Count(
          "R", Expr::Compare("Employee", CompareOp::kEq, Value("Jones")));
      for (int i = 0; i < kReadsPerReader; ++i) {
        Snapshot snap = serving.GetSnapshot();
        auto r = snap.root().GetTable("R");
        if (!r.ok()) {
          invariant_violations.fetch_add(1);
          continue;
        }
        const Schema& schema = r.ValueOrDie()->schema();
        if (schema.HasColumn("P1") != schema.HasColumn("P2")) {
          invariant_violations.fetch_add(1);  // torn script visible
        }
        // Pinned-vs-quiesced equivalence: the same request through the
        // live pin and through a private materialized copy of the same
        // root must agree exactly, whatever commits meanwhile.
        Catalog quiesced = MaterializeCatalog(snap.root());
        auto live = QueryEngine(snap.store()).Execute(count_jones);
        auto still = QueryEngine(&quiesced).Execute(count_jones);
        if (!live.ok() || !still.ok() ||
            live.ValueOrDie().count != still.ValueOrDie().count ||
            live.ValueOrDie().count != 3u) {
          mismatches.fetch_add(1);
        }
      }
    });
  }
  for (std::thread& t : readers) t.join();
  stop.store(true);
  writer.join();

  EXPECT_EQ(invariant_violations.load(), 0);
  EXPECT_EQ(mismatches.load(), 0);
  EXPECT_EQ(writer_failures.load(), 0);
  EXPECT_GT(serving.GetStats().commits, 1u);
  EXPECT_EQ(serving.GetStats().live_pins, 0);
}

// Two writer threads racing on DISJOINT tables must both make progress
// (rebase, never abort); racing on the SAME table, exactly the losers
// abort and every abort leaves no partial state.
TEST(SnapshotCatalogStress, RacingWritersEitherRebaseOrAbortCleanly) {
  SnapshotCatalog serving;
  {
    Catalog seed;
    CODS_CHECK_OK(seed.AddTable(Figure1TableR()->WithName("X")));
    CODS_CHECK_OK(seed.AddTable(Figure1TableR()->WithName("Y")));
    serving.Reset(seed);
  }

  constexpr int kScriptsPerWriter = 40;
  std::atomic<int> disjoint_aborts{0};
  auto toggler = [&](const std::string& table) {
    EvolutionEngine engine(&serving);
    for (int i = 0; i < kScriptsPerWriter; ++i) {
      Status st = engine.Apply(
          i % 2 == 0 ? Smo::AddColumn(table, {"Tmp", DataType::kInt64},
                                      Value(int64_t{0}))
                     : Smo::DropColumn(table, "Tmp"));
      if (st.IsAborted()) disjoint_aborts.fetch_add(1);
    }
  };
  std::thread wx(toggler, "X");
  std::thread wy(toggler, "Y");
  wx.join();
  wy.join();
  // Disjoint write sets always rebase.
  EXPECT_EQ(disjoint_aborts.load(), 0);
  EXPECT_EQ(serving.GetStats().aborts, 0u);
  EXPECT_EQ(serving.GetStats().commits,
            1u + 2u * kScriptsPerWriter);  // Reset + every toggle

  // Same victim table: conflicts are possible, but every writer either
  // commits whole scripts or aborts without trace — the column set of
  // the final root is one of the two script outcomes.
  std::atomic<int> conflicted{0};
  auto contender = [&] {
    EvolutionEngine engine(&serving);
    for (int i = 0; i < kScriptsPerWriter; ++i) {
      Status st = engine.ApplyAll(
          i % 2 == 0
              ? std::vector<Smo>{Smo::AddColumn("X",
                                                {"C", DataType::kInt64},
                                                Value(int64_t{0}))}
              : std::vector<Smo>{Smo::DropColumn("X", "C")});
      if (st.IsAborted()) conflicted.fetch_add(1);
    }
  };
  std::thread c1(contender);
  std::thread c2(contender);
  c1.join();
  c2.join();
  EXPECT_EQ(serving.GetStats().aborts,
            static_cast<uint64_t>(conflicted.load()));
  auto x = serving.GetSnapshot().root().GetTable("X").ValueOrDie();
  // Whatever interleaving happened, X is a valid table, never torn.
  EXPECT_TRUE(x->ValidateInvariants().ok());
}

}  // namespace
}  // namespace cods

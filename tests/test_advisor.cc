// Tests for the evolution cost advisor: the estimates must reproduce the
// structural asymmetries (data-level ≪ query-level; advantage grows with
// redundancy) that the measured benchmarks show.

#include "evolution/advisor.h"

#include "gtest/gtest.h"
#include "test_util.h"
#include "workload/generator.h"

namespace cods {
namespace {

using ::cods::testing::Figure1TableR;

TEST(Advisor, TupleBytesReflectTypesAndStringLengths) {
  auto r = Figure1TableR();
  uint64_t bytes = EstimateTupleBytes(*r);
  // 3 string columns with multi-byte values: clearly more than the bare
  // framing, clearly less than a kilobyte.
  EXPECT_GT(bytes, 20u);
  EXPECT_LT(bytes, 1024u);

  Schema ints({{"a", DataType::kInt64, false},
               {"b", DataType::kDouble, false}});
  auto t = testing::MakeTable("t", ints, {{Value(int64_t{1}), Value(2.0)}});
  EXPECT_EQ(EstimateTupleBytes(*t), 4u + 2 * 9u);
}

TEST(Advisor, DecomposeRecommendsDataLevel) {
  WorkloadSpec spec;
  spec.num_rows = 20000;
  spec.num_distinct = 100;
  auto r = GenerateEvolutionTable(spec).ValueOrDie();
  auto est = EstimateDecompose(*r, {kKeyColumn, kPayloadColumn},
                               {kKeyColumn, kDependentColumn})
                 .ValueOrDie();
  EXPECT_EQ(est.Recommendation(), EvolutionStrategy::kDataLevel);
  EXPECT_GT(est.Advantage(), 2.0);
  // The query-level estimate includes a full materialization of R.
  EXPECT_GE(est.query_level_read_bytes,
            r->rows() * EstimateTupleBytes(*r));
  // The data-level estimate never charges the unchanged columns.
  EXPECT_LT(est.data_level_read_bytes, r->SizeBytes());
}

TEST(Advisor, AdvantageGrowsWithRedundancy) {
  // Fewer distinct keys → more redundancy removed by T → the data-level
  // write side shrinks while query-level stays dominated by |R|.
  WorkloadSpec spec;
  spec.num_rows = 20000;
  spec.num_distinct = 20;
  auto redundant = GenerateEvolutionTable(spec).ValueOrDie();
  spec.num_distinct = 20000;
  auto unique = GenerateEvolutionTable(spec).ValueOrDie();

  auto est_red = EstimateDecompose(*redundant, {kKeyColumn, kPayloadColumn},
                                   {kKeyColumn, kDependentColumn})
                     .ValueOrDie();
  auto est_uni = EstimateDecompose(*unique, {kKeyColumn, kPayloadColumn},
                                   {kKeyColumn, kDependentColumn})
                     .ValueOrDie();
  EXPECT_GT(est_red.Advantage(), est_uni.Advantage());
}

TEST(Advisor, MergeRecommendsDataLevel) {
  WorkloadSpec spec;
  spec.num_rows = 20000;
  spec.num_distinct = 500;
  auto pair = GenerateMergePair(spec).ValueOrDie();
  auto est = EstimateMerge(*pair.s, *pair.t, {kKeyColumn}).ValueOrDie();
  EXPECT_EQ(est.Recommendation(), EvolutionStrategy::kDataLevel);
  EXPECT_GT(est.Advantage(), 1.5);
}

TEST(Advisor, ReportMentionsBothStrategies) {
  auto r = Figure1TableR();
  auto est = EstimateDecompose(*r, {"Employee", "Skill"},
                               {"Employee", "Address"})
                 .ValueOrDie();
  std::string report = est.ToString();
  EXPECT_NE(report.find("data-level"), std::string::npos);
  EXPECT_NE(report.find("query-level"), std::string::npos);
  EXPECT_NE(report.find("recommendation"), std::string::npos);
}

TEST(Advisor, DisjointDecompositionRejected) {
  auto r = Figure1TableR();
  EXPECT_TRUE(EstimateDecompose(*r, {"Employee"}, {"Skill", "Address"})
                  .status()
                  .IsConstraintViolation());
}

TEST(Advisor, StrategyNames) {
  EXPECT_STREQ(EvolutionStrategyToString(EvolutionStrategy::kDataLevel),
               "data-level (CODS)");
  EXPECT_STREQ(EvolutionStrategyToString(EvolutionStrategy::kQueryLevel),
               "query-level (SQL)");
}

}  // namespace
}  // namespace cods

// Tests for CSV load/save, schema inference, and the table printer.

#include "storage/csv.h"

#include <cstdio>

#include "gtest/gtest.h"
#include "storage/printer.h"
#include "test_util.h"

namespace cods {
namespace {

const char kCsv[] =
    "Employee,Skill,Address\n"
    "Jones,Typing,425 Grant Ave\n"
    "Roberts,Light Cleaning,747 Industrial Way\n";

Schema EmployeeSchema() {
  return Schema({{"Employee", DataType::kString, false},
                 {"Skill", DataType::kString, false},
                 {"Address", DataType::kString, false}},
                {});
}

TEST(Csv, LoadWithExplicitSchema) {
  auto table = CsvToTable(kCsv, "R", EmployeeSchema()).ValueOrDie();
  EXPECT_EQ(table->rows(), 2u);
  EXPECT_EQ(table->GetValue(1, 2), Value("747 Industrial Way"));
}

TEST(Csv, HeaderMismatchRejected) {
  Schema wrong({{"X", DataType::kString, false},
                {"Skill", DataType::kString, false},
                {"Address", DataType::kString, false}});
  EXPECT_FALSE(CsvToTable(kCsv, "R", wrong).ok());
}

TEST(Csv, ArityMismatchRejected) {
  EXPECT_FALSE(
      CsvToTable("a,b\n1\n", "t",
                 Schema({{"a", DataType::kInt64, false},
                         {"b", DataType::kInt64, false}}))
          .ok());
}

TEST(Csv, TypeErrorsSurfaceLine) {
  Schema schema({{"a", DataType::kInt64, false}});
  Status st = CsvToTable("a\n1\nxyz\n", "t", schema).status();
  EXPECT_TRUE(st.IsTypeError()) << st.ToString();
}

TEST(Csv, InferenceDetectsTypes) {
  auto table = CsvToTableInferred(
                   "id,score,name\n"
                   "1,2.5,alice\n"
                   "2,3.5,bob\n",
                   "t")
                   .ValueOrDie();
  EXPECT_EQ(table->schema().column(0).type, DataType::kInt64);
  EXPECT_EQ(table->schema().column(1).type, DataType::kDouble);
  EXPECT_EQ(table->schema().column(2).type, DataType::kString);
  EXPECT_EQ(table->GetValue(1, 0), Value(int64_t{2}));
}

TEST(Csv, InferenceWidensIntToDouble) {
  auto table = CsvToTableInferred("x\n1\n2.5\n", "t").ValueOrDie();
  EXPECT_EQ(table->schema().column(0).type, DataType::kDouble);
}

TEST(Csv, RoundTripThroughText) {
  auto original = testing::Figure1TableR();
  std::string text = TableToCsv(*original);
  auto reloaded = CsvToTable(text, "R", original->schema()).ValueOrDie();
  testing::ExpectSameContent(*original, *reloaded);
}

TEST(Csv, FileRoundTrip) {
  auto original = testing::Figure1TableR();
  std::string path = ::testing::TempDir() + "/cods_csv_test.csv";
  ASSERT_TRUE(WriteCsvFile(*original, path).ok());
  auto reloaded = LoadCsvFile(path, "R", original->schema()).ValueOrDie();
  testing::ExpectSameContent(*original, *reloaded);
  std::remove(path.c_str());
}

TEST(Csv, MissingFileIsIOError) {
  EXPECT_TRUE(LoadCsvFile("/nonexistent/x.csv", "t", EmployeeSchema())
                  .status()
                  .IsIOError());
}

TEST(Printer, RendersHeaderRowsAndFooter) {
  auto r = testing::Figure1TableR();
  std::string text = FormatTable(*r);
  EXPECT_NE(text.find("Employee"), std::string::npos);
  EXPECT_NE(text.find("Jones"), std::string::npos);
  EXPECT_NE(text.find("(7 rows)"), std::string::npos);
}

TEST(Printer, ElidesRowsPastLimit) {
  auto r = testing::Figure1TableR();
  PrintOptions options;
  options.max_rows = 2;
  std::string text = FormatTable(*r, options);
  EXPECT_NE(text.find("... 5 more rows"), std::string::npos);
}

TEST(Printer, StatsShowEncodingAndDistincts) {
  auto r = testing::Figure1TableR();
  std::string text = FormatTableStats(*r);
  EXPECT_NE(text.find("WAH_BITMAP"), std::string::npos);
  EXPECT_NE(text.find("distinct=4"), std::string::npos);  // employees
  // Codec detail: per-column representation mix and the global stats.
  EXPECT_NE(text.find("reps: array="), std::string::npos);
  EXPECT_NE(text.find("bitset-equivalent bytes="), std::string::npos);
  EXPECT_NE(text.find("popcount cache hits="), std::string::npos);
}

}  // namespace
}  // namespace cods

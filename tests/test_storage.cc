// Tests for the column-store engine: values, dictionaries, bitmap
// columns, schemas, tables, catalog, and the row-order scanner.

#include <memory>

#include "gtest/gtest.h"
#include "storage/catalog.h"
#include "storage/scanner.h"
#include "storage/table.h"
#include "test_util.h"

namespace cods {
namespace {

using ::cods::testing::Figure1TableR;
using ::cods::testing::MakeTable;

TEST(Value, TypesAndAccessors) {
  EXPECT_TRUE(Value().is_null());
  EXPECT_EQ(Value(int64_t{42}).int64(), 42);
  EXPECT_EQ(Value(3.5).dbl(), 3.5);
  EXPECT_EQ(Value("abc").str(), "abc");
  EXPECT_EQ(Value(int64_t{42}).type().ValueOrDie(), DataType::kInt64);
  EXPECT_FALSE(Value().type().ok());
}

TEST(Value, ParseByType) {
  EXPECT_EQ(Value::Parse("42", DataType::kInt64).ValueOrDie().int64(), 42);
  EXPECT_EQ(Value::Parse("-7", DataType::kInt64).ValueOrDie().int64(), -7);
  EXPECT_FALSE(Value::Parse("4.2", DataType::kInt64).ok());
  EXPECT_DOUBLE_EQ(Value::Parse("4.5", DataType::kDouble).ValueOrDie().dbl(),
                   4.5);
  EXPECT_FALSE(Value::Parse("xyz", DataType::kDouble).ok());
  EXPECT_EQ(Value::Parse(" hi ", DataType::kString).ValueOrDie().str(),
            " hi ");
}

TEST(Value, OrderingAndEquality) {
  EXPECT_TRUE(Value(int64_t{1}) < Value(int64_t{2}));
  EXPECT_TRUE(Value(int64_t{1}) < Value(1.5));  // cross numeric compare
  EXPECT_TRUE(Value(1.5) < Value(int64_t{2}));
  EXPECT_TRUE(Value() < Value(int64_t{0}));  // null sorts first
  EXPECT_TRUE(Value(int64_t{5}) < Value("a"));  // numbers before strings
  EXPECT_EQ(Value("x"), Value("x"));
  EXPECT_NE(Value(int64_t{1}), Value(1.0));  // distinct alternatives
}

TEST(Value, ToStringRendering) {
  EXPECT_EQ(Value().ToString(), "NULL");
  EXPECT_EQ(Value(int64_t{-3}).ToString(), "-3");
  EXPECT_EQ(Value("hi").ToString(), "hi");
}

TEST(DataTypeNames, RoundTrip) {
  EXPECT_EQ(DataTypeFromString("INT64").ValueOrDie(), DataType::kInt64);
  EXPECT_EQ(DataTypeFromString("int").ValueOrDie(), DataType::kInt64);
  EXPECT_EQ(DataTypeFromString("double").ValueOrDie(), DataType::kDouble);
  EXPECT_EQ(DataTypeFromString("VARCHAR").ValueOrDie(), DataType::kString);
  EXPECT_FALSE(DataTypeFromString("blob").ok());
}

TEST(Dictionary, AssignsDenseIdsInFirstAppearanceOrder) {
  Dictionary dict;
  EXPECT_EQ(dict.GetOrInsert(Value("b")), 0u);
  EXPECT_EQ(dict.GetOrInsert(Value("a")), 1u);
  EXPECT_EQ(dict.GetOrInsert(Value("b")), 0u);
  EXPECT_EQ(dict.size(), 2u);
  EXPECT_EQ(dict.value(0), Value("b"));
  EXPECT_EQ(dict.Lookup(Value("a")).value(), 1u);
  EXPECT_FALSE(dict.Lookup(Value("zzz")).has_value());
}

TEST(Column, FromVidsBuildsPartitioningBitmaps) {
  Dictionary dict;
  dict.GetOrInsert(Value(int64_t{10}));
  dict.GetOrInsert(Value(int64_t{20}));
  std::vector<Vid> vids = {0, 1, 0, 0, 1};
  auto col = Column::FromVids(DataType::kInt64, dict, vids);
  EXPECT_EQ(col->rows(), 5u);
  EXPECT_EQ(col->distinct_count(), 2u);
  EXPECT_EQ(col->bitmap(0).SetPositions(),
            (std::vector<uint64_t>{0, 2, 3}));
  EXPECT_EQ(col->bitmap(1).SetPositions(), (std::vector<uint64_t>{1, 4}));
  EXPECT_EQ(col->DecodeVids(), vids);
  EXPECT_EQ(col->GetValue(3), Value(int64_t{10}));
  EXPECT_EQ(col->ValueCount(0), 3u);
  EXPECT_TRUE(col->ValidateInvariants().ok());
}

TEST(Column, RleEncodingRoundTrip) {
  Dictionary dict;
  dict.GetOrInsert(Value("a"));
  dict.GetOrInsert(Value("b"));
  std::vector<Vid> vids = {0, 0, 0, 1, 1};
  auto col = Column::FromVidsRle(DataType::kString, dict, vids);
  EXPECT_EQ(col->encoding(), ColumnEncoding::kRle);
  EXPECT_EQ(col->DecodeVids(), vids);
  EXPECT_EQ(col->GetValue(4), Value("b"));
  EXPECT_EQ(col->ValueCount(0), 3u);
  EXPECT_TRUE(col->ValidateInvariants().ok());

  auto as_bitmap = col->WithEncoding(ColumnEncoding::kWahBitmap);
  EXPECT_EQ(as_bitmap->encoding(), ColumnEncoding::kWahBitmap);
  EXPECT_EQ(as_bitmap->DecodeVids(), vids);
  EXPECT_TRUE(as_bitmap->ValidateInvariants().ok());
}

TEST(Column, ValidateDetectsCorruption) {
  Dictionary dict;
  dict.GetOrInsert(Value(int64_t{1}));
  dict.GetOrInsert(Value(int64_t{2}));
  // Both bitmaps claim row 0: not a partition.
  std::vector<WahBitmap> bitmaps(2);
  bitmaps[0] = WahBitmap::FromPositions({0}, 2);
  bitmaps[1] = WahBitmap::FromPositions({0}, 2);
  auto col = Column::FromBitmaps(DataType::kInt64, dict, bitmaps, 2);
  EXPECT_FALSE(col->ValidateInvariants().ok());
}

TEST(Schema, MakeValidates) {
  EXPECT_FALSE(Schema::Make({{"a", DataType::kInt64, false},
                             {"a", DataType::kInt64, false}})
                   .ok());
  EXPECT_FALSE(
      Schema::Make({{"a", DataType::kInt64, false}}, {"missing"}).ok());
  EXPECT_FALSE(Schema::Make({{"", DataType::kInt64, false}}).ok());
  auto schema =
      Schema::Make({{"a", DataType::kInt64, false}}, {"a"}).ValueOrDie();
  EXPECT_TRUE(schema.has_key());
  EXPECT_TRUE(schema.IsKey({"a"}));
}

TEST(Schema, ColumnManipulation) {
  Schema schema({{"a", DataType::kInt64, false},
                 {"b", DataType::kString, false}},
                {"a"});
  EXPECT_EQ(schema.ColumnIndex("b").ValueOrDie(), 1u);
  EXPECT_FALSE(schema.ColumnIndex("z").ok());

  Schema renamed = schema.RenameColumn("a", "id").ValueOrDie();
  EXPECT_TRUE(renamed.HasColumn("id"));
  EXPECT_EQ(renamed.key(), (std::vector<std::string>{"id"}));
  EXPECT_FALSE(schema.RenameColumn("a", "b").ok());  // collision
  EXPECT_FALSE(schema.RenameColumn("zz", "y").ok());

  Schema added =
      schema.AddColumn({"c", DataType::kDouble, false}).ValueOrDie();
  EXPECT_EQ(added.num_columns(), 3u);
  EXPECT_FALSE(schema.AddColumn({"a", DataType::kInt64, false}).ok());

  Schema dropped = schema.DropColumn("b").ValueOrDie();
  EXPECT_EQ(dropped.num_columns(), 1u);
  EXPECT_FALSE(schema.DropColumn("a").ok());  // key column
}

TEST(Schema, IsKeyIsOrderInsensitive) {
  Schema schema({{"a", DataType::kInt64, false},
                 {"b", DataType::kInt64, false}},
                {"a", "b"});
  EXPECT_TRUE(schema.IsKey({"b", "a"}));
  EXPECT_FALSE(schema.IsKey({"a"}));
}

TEST(Table, BuilderAndMaterialize) {
  auto r = Figure1TableR();
  EXPECT_EQ(r->rows(), 7u);
  EXPECT_EQ(r->num_columns(), 3u);
  std::vector<Row> rows = r->Materialize();
  ASSERT_EQ(rows.size(), 7u);
  EXPECT_EQ(rows[0][0], Value("Jones"));
  EXPECT_EQ(rows[6][2], Value("425 Grant Ave"));
  EXPECT_EQ(r->GetValue(2, 1), Value("Light Cleaning"));
  EXPECT_TRUE(r->ValidateInvariants().ok());
}

TEST(Table, BuilderRejectsBadRows) {
  Schema schema({{"a", DataType::kInt64, false}});
  TableBuilder builder("t", schema);
  EXPECT_TRUE(builder.AppendRow({Value(int64_t{1})}).ok());
  EXPECT_FALSE(builder.AppendRow({Value("str")}).ok());       // wrong type
  EXPECT_FALSE(builder.AppendRow({Value(int64_t{1}), Value(int64_t{2})}).ok());
  EXPECT_FALSE(builder.AppendRow({Value()}).ok());            // null
}

TEST(Table, MakeValidatesShape) {
  Dictionary dict;
  dict.GetOrInsert(Value(int64_t{1}));
  auto col = Column::FromVids(DataType::kInt64, dict, {0, 0});
  Schema schema({{"a", DataType::kInt64, false}});
  EXPECT_TRUE(Table::Make("t", schema, {col}, 2).ok());
  EXPECT_FALSE(Table::Make("t", schema, {col}, 3).ok());  // row mismatch
  EXPECT_FALSE(Table::Make("t", schema, {}, 2).ok());     // arity mismatch
  Schema wrong({{"a", DataType::kString, false}});
  EXPECT_FALSE(Table::Make("t", wrong, {col}, 2).ok());   // type mismatch
}

TEST(Table, WithNameSharesColumns) {
  auto r = Figure1TableR();
  auto r2 = r->WithName("R2");
  EXPECT_EQ(r2->name(), "R2");
  EXPECT_EQ(r2->column(0).get(), r->column(0).get());
}

TEST(Scanner, DecodesRowOrder) {
  auto r = Figure1TableR();
  TableScanner scanner(*r);
  EXPECT_EQ(scanner.rows(), 7u);
  EXPECT_EQ(scanner.width(), 3u);
  EXPECT_EQ(scanner.GetRow(3),
            (Row{Value("Ellis"), Value("Alchemy"),
                 Value("747 Industrial Way")}));
}

TEST(Scanner, ProjectionScansSubset) {
  auto r = Figure1TableR();
  TableScanner scanner(*r, {2, 0});
  EXPECT_EQ(scanner.width(), 2u);
  EXPECT_EQ(scanner.GetRow(0), (Row{Value("425 Grant Ave"), Value("Jones")}));
}

TEST(Catalog, CrudOperations) {
  Catalog catalog;
  auto r = Figure1TableR();
  EXPECT_TRUE(catalog.AddTable(r).ok());
  EXPECT_TRUE(catalog.AddTable(r).IsAlreadyExists());
  EXPECT_TRUE(catalog.HasTable("R"));
  EXPECT_EQ(catalog.GetTable("R").ValueOrDie()->rows(), 7u);
  EXPECT_TRUE(catalog.GetTable("missing").status().IsKeyError());

  EXPECT_TRUE(catalog.RenameTable("R", "R1").ok());
  EXPECT_FALSE(catalog.HasTable("R"));
  EXPECT_EQ(catalog.GetTable("R1").ValueOrDie()->name(), "R1");
  EXPECT_TRUE(catalog.RenameTable("missing", "x").IsKeyError());

  auto other = Figure1TableR()->WithName("R2");
  EXPECT_TRUE(catalog.AddTable(other).ok());
  EXPECT_FALSE(catalog.RenameTable("R1", "R2").ok());
  EXPECT_EQ(catalog.TableNames(),
            (std::vector<std::string>{"R1", "R2"}));

  EXPECT_TRUE(catalog.DropTable("R1").ok());
  EXPECT_TRUE(catalog.DropTable("R1").IsKeyError());
  EXPECT_EQ(catalog.size(), 1u);
}

TEST(Table, SizeBytesReflectsCompression) {
  // A constant column must compress far better than a high-cardinality
  // one of the same length.
  Schema schema({{"c", DataType::kInt64, false}});
  TableBuilder constant("const", schema);
  TableBuilder distinct("dist", schema);
  for (int64_t i = 0; i < 10000; ++i) {
    ASSERT_TRUE(constant.AppendRow({Value(int64_t{7})}).ok());
    ASSERT_TRUE(distinct.AppendRow({Value(i)}).ok());
  }
  auto tc = constant.Finish().ValueOrDie();
  auto td = distinct.Finish().ValueOrDie();
  EXPECT_LT(tc->SizeBytes() * 10, td->SizeBytes());
}

}  // namespace
}  // namespace cods

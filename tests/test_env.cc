// Env tests: the POSIX implementation's contract (errno detail in
// Statuses, atomic WriteFileAtomic, append mode, truncate, dir listing)
// and the FaultInjectionEnv crash model the recovery harness builds on —
// crash-at-op sweeps, un-synced data loss, torn writes, failed fsyncs.

#include "common/env.h"

#include <string>
#include <vector>

#include "gtest/gtest.h"

namespace cods {
namespace {

std::vector<uint8_t> Bytes(const std::string& s) {
  return std::vector<uint8_t>(s.begin(), s.end());
}

std::string Text(const std::vector<uint8_t>& b) {
  return std::string(b.begin(), b.end());
}

class EnvTest : public ::testing::Test {
 protected:
  void SetUp() override {
    dir_ = ::testing::TempDir() + "cods_env_" +
           ::testing::UnitTest::GetInstance()->current_test_info()->name();
    ASSERT_TRUE(Env::Default()->CreateDirIfMissing(dir_).ok());
    // Named, not a temporary: ValueOrDie()&& returns a reference into
    // the Result, which a range-for over a temporary would leave
    // dangling.
    Result<std::vector<std::string>> names = Env::Default()->ListDir(dir_);
    ASSERT_TRUE(names.ok());
    for (const std::string& name : names.ValueOrDie()) {
      ASSERT_TRUE(Env::Default()->DeleteFile(dir_ + "/" + name).ok());
    }
  }

  std::string Path(const std::string& name) { return dir_ + "/" + name; }

  std::string dir_;
};

TEST_F(EnvTest, WriteReadRoundTrip) {
  Env* env = Env::Default();
  ASSERT_TRUE(WriteFile(env, Path("f"), Bytes("hello world")).ok());
  EXPECT_TRUE(env->FileExists(Path("f")));
  EXPECT_EQ(env->GetFileSize(Path("f")).ValueOrDie(), 11u);
  EXPECT_EQ(Text(env->ReadFile(Path("f")).ValueOrDie()), "hello world");
}

TEST_F(EnvTest, MissingFileErrorsCarryErrnoDetail) {
  Env* env = Env::Default();
  Result<std::vector<uint8_t>> r = env->ReadFile(Path("nope"));
  ASSERT_FALSE(r.ok());
  EXPECT_TRUE(r.status().IsIOError());
  // strerror(ENOENT) in some locale spelling — the point is that the
  // message says more than just the path.
  EXPECT_NE(r.status().message().find("No such file"), std::string::npos)
      << r.status().ToString();
  EXPECT_FALSE(env->FileExists(Path("nope")));
  EXPECT_FALSE(env->GetFileSize(Path("nope")).ok());
  EXPECT_FALSE(env->DeleteFile(Path("nope")).ok());
}

TEST_F(EnvTest, AppendModeContinuesExistingFile) {
  Env* env = Env::Default();
  ASSERT_TRUE(WriteFile(env, Path("log"), Bytes("abc")).ok());
  {
    auto f = env->NewWritableFile(Path("log"), /*append=*/true).ValueOrDie();
    ASSERT_TRUE(f->Append("def", 3).ok());
    ASSERT_TRUE(f->Sync().ok());
    ASSERT_TRUE(f->Close().ok());
  }
  EXPECT_EQ(Text(env->ReadFile(Path("log")).ValueOrDie()), "abcdef");
  {
    // Non-append mode truncates.
    auto f = env->NewWritableFile(Path("log"), /*append=*/false).ValueOrDie();
    ASSERT_TRUE(f->Append("x", 1).ok());
    ASSERT_TRUE(f->Close().ok());
  }
  EXPECT_EQ(Text(env->ReadFile(Path("log")).ValueOrDie()), "x");
}

TEST_F(EnvTest, TruncateAndRename) {
  Env* env = Env::Default();
  ASSERT_TRUE(WriteFile(env, Path("a"), Bytes("0123456789")).ok());
  ASSERT_TRUE(env->TruncateFile(Path("a"), 4).ok());
  EXPECT_EQ(Text(env->ReadFile(Path("a")).ValueOrDie()), "0123");
  ASSERT_TRUE(env->RenameFile(Path("a"), Path("b")).ok());
  EXPECT_FALSE(env->FileExists(Path("a")));
  EXPECT_EQ(Text(env->ReadFile(Path("b")).ValueOrDie()), "0123");
}

TEST_F(EnvTest, ListDirSorted) {
  Env* env = Env::Default();
  ASSERT_TRUE(WriteFile(env, Path("zz"), Bytes("1")).ok());
  ASSERT_TRUE(WriteFile(env, Path("aa"), Bytes("1")).ok());
  EXPECT_EQ(env->ListDir(dir_).ValueOrDie(),
            (std::vector<std::string>{"aa", "zz"}));
  EXPECT_FALSE(env->ListDir(Path("missing")).ok());
}

TEST_F(EnvTest, WriteFileAtomicReplacesAndCleansUp) {
  Env* env = Env::Default();
  ASSERT_TRUE(WriteFile(env, Path("db"), Bytes("old")).ok());
  ASSERT_TRUE(WriteFileAtomic(env, Path("db"), Bytes("new image")).ok());
  EXPECT_EQ(Text(env->ReadFile(Path("db")).ValueOrDie()), "new image");
  EXPECT_FALSE(env->FileExists(Path("db.tmp")));
}

// ---- FaultInjectionEnv -------------------------------------------------------

TEST_F(EnvTest, FaultInjectionPassesThroughWhenDisarmed) {
  FaultInjectionEnv fenv(Env::Default(), /*seed=*/1);
  ASSERT_TRUE(WriteFile(&fenv, Path("f"), Bytes("data")).ok());
  EXPECT_EQ(Text(fenv.ReadFile(Path("f")).ValueOrDie()), "data");
  EXPECT_FALSE(fenv.crashed());
  EXPECT_GT(fenv.op_count(), 0u);
}

TEST_F(EnvTest, CrashDropsUnsyncedSuffixButKeepsSyncedPrefix) {
  // Byte counts differ per seed (drop-all / keep-all / tear), but the
  // synced prefix must survive under every seed.
  for (uint64_t seed = 1; seed <= 20; ++seed) {
    FaultInjectionEnv fenv(Env::Default(), seed);
    auto f = fenv.NewWritableFile(Path("f"), /*append=*/false).ValueOrDie();
    ASSERT_TRUE(f->Append("SYNCED", 6).ok());
    ASSERT_TRUE(f->Sync().ok());
    ASSERT_TRUE(f->Append("unsynced", 8).ok());
    fenv.SetCrashAtOp(fenv.op_count() + 1);  // next op crashes
    EXPECT_FALSE(f->Append("x", 1).ok());
    EXPECT_TRUE(fenv.crashed());
    // Everything after the crash fails.
    EXPECT_FALSE(f->Sync().ok());
    EXPECT_FALSE(fenv.ReadFile(Path("f")).ok());
    EXPECT_FALSE(WriteFile(&fenv, Path("g"), Bytes("y")).ok());

    // A fresh env models the post-crash remount.
    std::vector<uint8_t> back =
        Env::Default()->ReadFile(Path("f")).ValueOrDie();
    ASSERT_GE(back.size(), 6u) << "seed " << seed;
    ASSERT_LE(back.size(), 15u) << "seed " << seed;
    EXPECT_EQ(Text(back).substr(0, 6), "SYNCED") << "seed " << seed;
  }
}

TEST_F(EnvTest, CrashAtOpSweepIsDeterministic) {
  // The same seed + crash point must leave the identical file behind.
  for (int round = 0; round < 2; ++round) {
    FaultInjectionEnv fenv(Env::Default(), /*seed=*/33);
    fenv.SetCrashAtOp(4);
    auto f =
        fenv.NewWritableFile(Path("det" + std::to_string(round)), false)
            .ValueOrDie();                       // op 1
    ASSERT_TRUE(f->Append("aaaa", 4).ok());      // op 2
    ASSERT_TRUE(f->Sync().ok());                 // op 3
    EXPECT_FALSE(f->Append("bbbb", 4).ok());     // op 4: crash
    EXPECT_TRUE(fenv.crashed());
  }
  EXPECT_EQ(Env::Default()->ReadFile(Path("det0")).ValueOrDie(),
            Env::Default()->ReadFile(Path("det1")).ValueOrDie());
}

TEST_F(EnvTest, CrashedRenameDoesNotHappen) {
  FaultInjectionEnv fenv(Env::Default(), /*seed=*/5);
  ASSERT_TRUE(WriteFile(&fenv, Path("src"), Bytes("payload")).ok());
  fenv.SetCrashAtOp(fenv.op_count() + 1);
  EXPECT_FALSE(fenv.RenameFile(Path("src"), Path("dst")).ok());
  EXPECT_TRUE(Env::Default()->FileExists(Path("src")));
  EXPECT_FALSE(Env::Default()->FileExists(Path("dst")));
}

TEST_F(EnvTest, FailNextSyncsInjectsErrorsWithoutCrashing) {
  FaultInjectionEnv fenv(Env::Default(), /*seed=*/9);
  auto f = fenv.NewWritableFile(Path("f"), false).ValueOrDie();
  ASSERT_TRUE(f->Append("abc", 3).ok());
  fenv.FailNextSyncs(2);
  EXPECT_TRUE(f->Sync().IsIOError());
  EXPECT_TRUE(f->Sync().IsIOError());
  EXPECT_FALSE(fenv.crashed());
  EXPECT_TRUE(f->Sync().ok());  // third one goes through
  EXPECT_TRUE(f->Close().ok());
  EXPECT_EQ(Text(fenv.ReadFile(Path("f")).ValueOrDie()), "abc");
}

}  // namespace
}  // namespace cods

// Tests for the query operators (row store and column query-level) and
// the query-level evolution baselines. These baselines double as the
// correctness oracle for the CODS data-level operators, so they must be
// right.

#include <set>

#include "gtest/gtest.h"
#include "query/query_evolution.h"
#include "test_util.h"

namespace cods {
namespace {

using ::cods::testing::ExpectSameContent;
using ::cods::testing::Figure1TableR;
using ::cods::testing::SortedRows;

std::unique_ptr<RowTable> Fig1RowTable() {
  auto r = Figure1TableR();
  return MaterializeToRowStore(*r).ValueOrDie();
}

TEST(RowExecutor, MaterializeRoundTrip) {
  auto r = Figure1TableR();
  auto heap = MaterializeToRowStore(*r).ValueOrDie();
  EXPECT_EQ(heap->rows(), r->rows());
  auto back = RowTableToColumnTable(*heap, "R").ValueOrDie();
  ExpectSameContent(*r, *back);
}

TEST(RowExecutor, Project) {
  auto heap = Fig1RowTable();
  auto s = ProjectRows(*heap, {"Employee", "Skill"}, {}, "S").ValueOrDie();
  EXPECT_EQ(s->rows(), 7u);
  EXPECT_EQ(s->schema().num_columns(), 2u);
  EXPECT_FALSE(ProjectRows(*heap, {"Nope"}, {}, "S").ok());
}

TEST(RowExecutor, DistinctHashAndSortAgree) {
  auto heap = Fig1RowTable();
  auto h = ProjectRowsDistinctHash(*heap, {"Employee", "Address"},
                                   {"Employee"}, "T")
               .ValueOrDie();
  auto s = ProjectRowsDistinctSort(*heap, {"Employee", "Address"},
                                   {"Employee"}, "T")
               .ValueOrDie();
  EXPECT_EQ(h->rows(), 4u);  // 4 employees
  EXPECT_EQ(s->rows(), 4u);
  auto ct_h = RowTableToColumnTable(*h, "T").ValueOrDie();
  auto ct_s = RowTableToColumnTable(*s, "T").ValueOrDie();
  EXPECT_EQ(SortedRows(*ct_h), SortedRows(*ct_s));
}

TEST(RowExecutor, Filter) {
  auto heap = Fig1RowTable();
  auto jones = FilterRows(
                   *heap,
                   [](const Row& row) { return row[0] == Value("Jones"); },
                   "J")
                   .ValueOrDie();
  EXPECT_EQ(jones->rows(), 3u);
}

TEST(RowExecutor, HashJoinMatchesIndexJoin) {
  auto heap = Fig1RowTable();
  auto s = ProjectRows(*heap, {"Employee", "Skill"}, {}, "S").ValueOrDie();
  auto t = ProjectRowsDistinctHash(*heap, {"Employee", "Address"},
                                   {"Employee"}, "T")
               .ValueOrDie();
  auto hash_r =
      HashJoinRows(*s, *t, {"Employee"}, {}, "R1").ValueOrDie();
  auto inl_r =
      IndexNestedLoopJoinRows(*s, *t, {"Employee"}, {}, "R2").ValueOrDie();
  EXPECT_EQ(hash_r->rows(), 7u);
  EXPECT_EQ(inl_r->rows(), 7u);
  auto c1 = RowTableToColumnTable(*hash_r, "R").ValueOrDie();
  auto c2 = RowTableToColumnTable(*inl_r, "R").ValueOrDie();
  EXPECT_EQ(SortedRows(*c1), SortedRows(*c2));
}

TEST(ColumnExecutor, RowVecPipeline) {
  auto r = Figure1TableR();
  std::vector<Row> rows = ScanToRows(*r);
  EXPECT_EQ(rows.size(), 7u);
  std::vector<Row> projected = ProjectRowVec(rows, {0, 2});
  EXPECT_EQ(projected[0], (Row{Value("Jones"), Value("425 Grant Ave")}));
  std::vector<Row> distinct = DistinctRowVec(projected);
  EXPECT_EQ(distinct.size(), 4u);
}

TEST(ColumnExecutor, HashJoinRowVec) {
  std::vector<Row> left = {{Value(int64_t{1}), Value("a")},
                           {Value(int64_t{2}), Value("b")},
                           {Value(int64_t{1}), Value("c")}};
  std::vector<Row> right = {{Value(int64_t{1}), Value("X")},
                            {Value(int64_t{3}), Value("Y")}};
  std::vector<Row> out = HashJoinRowVec(left, right, {0}, {0});
  ASSERT_EQ(out.size(), 2u);
  EXPECT_EQ(out[0], (Row{Value(int64_t{1}), Value("a"), Value("X")}));
  EXPECT_EQ(out[1], (Row{Value(int64_t{1}), Value("c"), Value("X")}));
}

// ---- Baseline evolution drivers. -------------------------------------------

DecomposeSpec Fig1Spec() {
  DecomposeSpec spec;
  spec.s_columns = {"Employee", "Skill"};
  spec.t_columns = {"Employee", "Address"};
  spec.s_key = {};
  spec.t_key = {"Employee"};
  return spec;
}

TEST(QueryEvolution, RowStoreDecomposeProducesFig1Tables) {
  auto heap = Fig1RowTable();
  for (BaselineKind kind :
       {BaselineKind::kRowStore, BaselineKind::kRowStoreIndexed,
        BaselineKind::kRowStoreLite}) {
    auto result =
        RowStoreDecompose(*heap, Fig1Spec(), kind, "S", "T").ValueOrDie();
    EXPECT_EQ(result.s->rows(), 7u) << BaselineKindToString(kind);
    EXPECT_EQ(result.t->rows(), 4u) << BaselineKindToString(kind);
    EXPECT_GE(result.timing.total(), 0.0);
    if (kind == BaselineKind::kRowStoreIndexed) {
      EXPECT_GT(result.timing.index_s, 0.0);
    }
  }
}

TEST(QueryEvolution, RowStoreMergeRestoresR) {
  auto heap = Fig1RowTable();
  auto dec = RowStoreDecompose(*heap, Fig1Spec(), BaselineKind::kRowStore,
                               "S", "T")
                 .ValueOrDie();
  auto merged = RowStoreMerge(*dec.s, *dec.t, {"Employee"}, {},
                              BaselineKind::kRowStore, "R2")
                    .ValueOrDie();
  EXPECT_EQ(merged.r->rows(), 7u);
  auto back = RowTableToColumnTable(*merged.r, "R2").ValueOrDie();
  ExpectSameContent(*Figure1TableR(), *back);
}

TEST(QueryEvolution, ColumnQueryLevelDecomposeAndMerge) {
  auto r = Figure1TableR();
  auto dec = ColumnQueryLevelDecompose(*r, Fig1Spec(), "S", "T").ValueOrDie();
  EXPECT_EQ(dec.s->rows(), 7u);
  EXPECT_EQ(dec.t->rows(), 4u);
  EXPECT_GT(dec.timing.total(), 0.0);

  auto merged =
      ColumnQueryLevelMerge(*dec.s, *dec.t, {"Employee"}, {}, "R2")
          .ValueOrDie();
  ExpectSameContent(*r, *merged.r);
}

TEST(QueryEvolution, RowStoreKindRequiredForRowDrivers) {
  auto heap = Fig1RowTable();
  EXPECT_FALSE(RowStoreDecompose(*heap, Fig1Spec(),
                                 BaselineKind::kColumnQueryLevel, "S", "T")
                   .ok());
  EXPECT_FALSE(RowStoreMerge(*heap, *heap, {"Employee"}, {},
                             BaselineKind::kColumnQueryLevel, "X")
                   .ok());
}

TEST(QueryEvolution, BaselineNamesAreStable) {
  EXPECT_STREQ(BaselineKindToString(BaselineKind::kRowStore),
               "C (row store)");
  EXPECT_STREQ(BaselineKindToString(BaselineKind::kColumnQueryLevel),
               "M (column store, query level)");
}

}  // namespace
}  // namespace cods

// Tests for functional-dependency and lossless-join checks.

#include "evolution/fd.h"

#include "gtest/gtest.h"
#include "test_util.h"

namespace cods {
namespace {

using ::cods::testing::Figure1TableR;
using ::cods::testing::MakeTable;

TEST(Fd, HoldsOnFigure1) {
  auto r = Figure1TableR();
  // Employee -> Address holds in Figure 1.
  EXPECT_TRUE(FunctionalDependencyHolds(*r, {"Employee"}, {"Address"})
                  .ValueOrDie());
  // Employee -> Skill does not (Jones has three skills).
  EXPECT_FALSE(FunctionalDependencyHolds(*r, {"Employee"}, {"Skill"})
                   .ValueOrDie());
  // Address -> Employee does not (two employees share an address).
  EXPECT_FALSE(FunctionalDependencyHolds(*r, {"Address"}, {"Employee"})
                   .ValueOrDie());
}

TEST(Fd, CompositeLhs) {
  auto r = Figure1TableR();
  EXPECT_TRUE(FunctionalDependencyHolds(*r, {"Employee", "Skill"},
                                        {"Address"})
                  .ValueOrDie());
}

TEST(Fd, ErrorsOnBadInput) {
  auto r = Figure1TableR();
  EXPECT_FALSE(FunctionalDependencyHolds(*r, {}, {"Address"}).ok());
  EXPECT_FALSE(FunctionalDependencyHolds(*r, {"Nope"}, {"Address"}).ok());
}

TEST(CandidateKey, DetectsKeysAndNonKeys) {
  auto r = Figure1TableR();
  // (Employee, Skill) is unique in Figure 1; Employee alone is not.
  EXPECT_TRUE(IsCandidateKey(*r, {"Employee", "Skill"}).ValueOrDie());
  EXPECT_FALSE(IsCandidateKey(*r, {"Employee"}).ValueOrDie());
  EXPECT_FALSE(IsCandidateKey(*r, {}).ok());
}

TEST(LosslessCheck, Figure1DecompositionIsLossless) {
  auto r = Figure1TableR();
  // S(Employee, Skill), T(Employee, Address): common attr Employee is a
  // key of T -> S unchanged (+1).
  int side = CheckLosslessDecomposition(*r, {"Employee", "Skill"},
                                        {"Employee", "Address"})
                 .ValueOrDie();
  EXPECT_EQ(side, +1);
  // Swapping the argument order flips the unchanged side.
  side = CheckLosslessDecomposition(*r, {"Employee", "Address"},
                                    {"Employee", "Skill"})
             .ValueOrDie();
  EXPECT_EQ(side, -1);
}

TEST(LosslessCheck, RejectsLossyDecomposition) {
  // Skill <-> Address share nothing functionally: splitting on Employee
  // fails when neither side is determined.
  Schema schema({{"A", DataType::kInt64, false},
                 {"B", DataType::kInt64, false},
                 {"C", DataType::kInt64, false}},
                {});
  auto t = MakeTable(
      "X", schema,
      {{Value(int64_t{1}), Value(int64_t{1}), Value(int64_t{1})},
       {Value(int64_t{1}), Value(int64_t{2}), Value(int64_t{2})},
       {Value(int64_t{1}), Value(int64_t{3}), Value(int64_t{3})}});
  // Common attr A maps to several B and several C: lossy.
  Status st =
      CheckLosslessDecomposition(*t, {"A", "B"}, {"A", "C"}).status();
  EXPECT_TRUE(st.IsConstraintViolation()) << st.ToString();
}

TEST(LosslessCheck, RejectsMissingCoverageAndEmptyIntersection) {
  auto r = Figure1TableR();
  EXPECT_TRUE(CheckLosslessDecomposition(*r, {"Employee"}, {"Address"})
                  .status()
                  .IsConstraintViolation());  // Skill not covered
  EXPECT_TRUE(CheckLosslessDecomposition(*r, {"Employee", "Skill"},
                                         {"Address"})
                  .status()
                  .IsConstraintViolation());  // no common attrs
}

TEST(LosslessCheck, TrivialChangedSideIsJustTheKey) {
  auto r = Figure1TableR();
  // T = (Employee) alone: vacuously determined.
  EXPECT_EQ(CheckLosslessDecomposition(
                *r, {"Employee", "Skill", "Address"}, {"Employee"})
                .ValueOrDie(),
            +1);
}

}  // namespace
}  // namespace cods

// Tests for inverse SMOs and the evolution log: every invertible
// operator, applied and then undone, must restore the catalog's data.

#include "evolution/inverse.h"

#include "evolution/engine.h"
#include "gtest/gtest.h"
#include "test_util.h"

namespace cods {
namespace {

using ::cods::testing::ExpectSameContent;
using ::cods::testing::Figure1TableR;
using ::cods::testing::SortedRows;

TEST(Invertible, Classification) {
  EXPECT_TRUE(IsInvertible(SmoKind::kCreateTable));
  EXPECT_TRUE(IsInvertible(SmoKind::kRenameTable));
  EXPECT_TRUE(IsInvertible(SmoKind::kCopyTable));
  EXPECT_TRUE(IsInvertible(SmoKind::kPartitionTable));
  EXPECT_TRUE(IsInvertible(SmoKind::kDecomposeTable));
  EXPECT_TRUE(IsInvertible(SmoKind::kMergeTables));
  EXPECT_TRUE(IsInvertible(SmoKind::kAddColumn));
  EXPECT_TRUE(IsInvertible(SmoKind::kRenameColumn));
  EXPECT_FALSE(IsInvertible(SmoKind::kDropTable));
  EXPECT_FALSE(IsInvertible(SmoKind::kDropColumn));
  EXPECT_FALSE(IsInvertible(SmoKind::kUnionTables));
}

TEST(Inverse, LossyOperatorsRejected) {
  Catalog catalog;
  ASSERT_TRUE(catalog.AddTable(Figure1TableR()).ok());
  EXPECT_TRUE(InvertSmo(Smo::DropTable("R"), catalog)
                  .status()
                  .IsConstraintViolation());
  EXPECT_TRUE(InvertSmo(Smo::DropColumn("R", "Skill"), catalog)
                  .status()
                  .IsConstraintViolation());
  EXPECT_TRUE(InvertSmo(Smo::UnionTables("A", "B", "C"), catalog)
                  .status()
                  .IsConstraintViolation());
}

TEST(Inverse, SimpleInverses) {
  Catalog catalog;
  ASSERT_TRUE(catalog.AddTable(Figure1TableR()).ok());
  Schema schema({{"a", DataType::kInt64, false}});

  Smo inv = InvertSmo(Smo::CreateTable("X", schema), catalog).ValueOrDie();
  EXPECT_EQ(inv.kind, SmoKind::kDropTable);
  EXPECT_EQ(inv.table, "X");

  inv = InvertSmo(Smo::RenameTable("R", "R2"), catalog).ValueOrDie();
  EXPECT_EQ(inv.ToString(), "RENAME TABLE R2 TO R");

  inv = InvertSmo(Smo::CopyTable("R", "Backup"), catalog).ValueOrDie();
  EXPECT_EQ(inv.ToString(), "DROP TABLE Backup");

  inv = InvertSmo(Smo::AddColumn("R", {"g", DataType::kInt64, false},
                                 Value(int64_t{0})),
                  catalog)
            .ValueOrDie();
  EXPECT_EQ(inv.ToString(), "DROP COLUMN g FROM R");

  inv = InvertSmo(Smo::RenameColumn("R", "Skill", "Ability"), catalog)
            .ValueOrDie();
  EXPECT_EQ(inv.ToString(), "RENAME COLUMN Ability TO Skill IN R");
}

TEST(Inverse, MergeInverseReadsPreStateSchemas) {
  // Build S and T, then invert a MERGE before applying it.
  Catalog catalog;
  ASSERT_TRUE(catalog.AddTable(Figure1TableR()).ok());
  EvolutionEngine engine(&catalog);
  ASSERT_TRUE(engine
                  .Apply(Smo::DecomposeTable(
                      "R", "S", {"Employee", "Skill"}, {}, "T",
                      {"Employee", "Address"}, {"Employee"}))
                  .ok());
  Smo merge = Smo::MergeTables("S", "T", "R", {"Employee"}, {});
  Smo inv = InvertSmo(merge, catalog).ValueOrDie();
  EXPECT_EQ(inv.kind, SmoKind::kDecomposeTable);
  EXPECT_EQ(inv.table, "R");
  EXPECT_EQ(inv.out1, "S");
  EXPECT_EQ(inv.columns1, (std::vector<std::string>{"Employee", "Skill"}));
  EXPECT_EQ(inv.key2, (std::vector<std::string>{"Employee"}));
}

// Round-trip each invertible operator through apply + undo and compare
// data before/after.
class UndoRoundTrip : public ::testing::Test {
 protected:
  void SetUp() override {
    ASSERT_TRUE(catalog_.AddTable(Figure1TableR()).ok());
    engine_ = std::make_unique<EvolutionEngine>(&catalog_);
  }

  void ApplyAndUndo(const Smo& smo) {
    Smo inverse = InvertSmo(smo, catalog_).ValueOrDie();
    ASSERT_TRUE(engine_->Apply(smo).ok()) << smo.ToString();
    ASSERT_TRUE(engine_->Apply(inverse).ok()) << inverse.ToString();
  }

  Catalog catalog_;
  std::unique_ptr<EvolutionEngine> engine_;
};

TEST_F(UndoRoundTrip, RenameTable) {
  ApplyAndUndo(Smo::RenameTable("R", "R2"));
  ExpectSameContent(*Figure1TableR(), *catalog_.GetTable("R").ValueOrDie());
}

TEST_F(UndoRoundTrip, CopyTable) {
  ApplyAndUndo(Smo::CopyTable("R", "Backup"));
  EXPECT_FALSE(catalog_.HasTable("Backup"));
}

TEST_F(UndoRoundTrip, Partition) {
  ApplyAndUndo(Smo::PartitionTable("R", "A", "B", "Address",
                                   CompareOp::kEq,
                                   Value("425 Grant Ave")));
  EXPECT_EQ(SortedRows(*catalog_.GetTable("R").ValueOrDie()),
            SortedRows(*Figure1TableR()));
}

TEST_F(UndoRoundTrip, DecomposeThenUndoMerges) {
  ApplyAndUndo(Smo::DecomposeTable("R", "S", {"Employee", "Skill"}, {},
                                   "T", {"Employee", "Address"},
                                   {"Employee"}));
  ExpectSameContent(*Figure1TableR(),
                    *catalog_.GetTable("R").ValueOrDie());
  EXPECT_FALSE(catalog_.HasTable("S"));
  EXPECT_FALSE(catalog_.HasTable("T"));
}

TEST_F(UndoRoundTrip, AddColumn) {
  ApplyAndUndo(Smo::AddColumn("R", {"g", DataType::kInt64, false},
                              Value(int64_t{9})));
  EXPECT_EQ(catalog_.GetTable("R").ValueOrDie()->num_columns(), 3u);
}

TEST_F(UndoRoundTrip, RenameColumn) {
  ApplyAndUndo(Smo::RenameColumn("R", "Skill", "Ability"));
  EXPECT_TRUE(
      catalog_.GetTable("R").ValueOrDie()->schema().HasColumn("Skill"));
}

TEST(EvolutionLog, RecordsAndUndoesAScript) {
  Catalog catalog;
  ASSERT_TRUE(catalog.AddTable(Figure1TableR()).ok());
  EvolutionEngine engine(&catalog);
  EvolutionLog log;

  std::vector<Smo> script = {
      Smo::CopyTable("R", "Backup"),
      Smo::RenameTable("R", "Employees"),
      Smo::DecomposeTable("Employees", "S", {"Employee", "Skill"}, {}, "T",
                          {"Employee", "Address"}, {"Employee"}),
      Smo::AddColumn("T", {"Zip", DataType::kInt64, false},
                     Value(int64_t{0})),
  };
  for (const Smo& smo : script) {
    ASSERT_TRUE(log.Record(smo, catalog).ok()) << smo.ToString();
    ASSERT_TRUE(engine.Apply(smo).ok()) << smo.ToString();
  }
  EXPECT_EQ(log.size(), 4u);

  // Undo everything: the catalog returns to exactly {R}.
  for (const Smo& smo : log.UndoScript()) {
    ASSERT_TRUE(engine.Apply(smo).ok()) << smo.ToString();
  }
  EXPECT_EQ(catalog.TableNames(), (std::vector<std::string>{"R"}));
  ExpectSameContent(*Figure1TableR(), *catalog.GetTable("R").ValueOrDie());
}

TEST(EvolutionLog, RefusesLossyOps) {
  Catalog catalog;
  ASSERT_TRUE(catalog.AddTable(Figure1TableR()).ok());
  EvolutionLog log;
  EXPECT_FALSE(log.Record(Smo::DropTable("R"), catalog).ok());
  EXPECT_EQ(log.size(), 0u);
  log.Clear();
  EXPECT_TRUE(log.UndoScript().empty());
}

}  // namespace
}  // namespace cods

// Tests for the SMO script planner: read/write-set extraction, DAG
// shape (independence, chains, diamonds, transitive reduction), the
// plan printer, and planned execution's bit-identical-to-serial
// contract in both the success and the mid-script-failure case.

#include "plan/script_planner.h"

#include <memory>
#include <string>
#include <vector>

#include "evolution/engine.h"
#include "gtest/gtest.h"
#include "plan/staged_catalog.h"
#include "smo/parser.h"
#include "workload/generator.h"

namespace cods {
namespace {

using Names = std::vector<std::string>;

std::shared_ptr<const Table> SmallTable(const std::string& name) {
  WorkloadSpec spec;
  spec.num_rows = 5'000;
  spec.num_distinct = 200;
  spec.payload_distinct = 50;
  spec.dependent_distinct = 20;
  auto r = GenerateEvolutionTable(spec);
  CODS_CHECK(r.ok()) << r.status().ToString();
  return r.ValueOrDie()->WithName(name);
}

// Exact (code-word-level) table equality.
void ExpectTablesIdentical(const Table& a, const Table& b,
                           const std::string& label) {
  ASSERT_EQ(a.rows(), b.rows()) << label;
  ASSERT_EQ(a.num_columns(), b.num_columns()) << label;
  for (size_t i = 0; i < a.num_columns(); ++i) {
    const Column& ca = *a.column(i);
    const Column& cb = *b.column(i);
    ASSERT_EQ(ca.encoding(), cb.encoding()) << label << " col " << i;
    ASSERT_EQ(ca.distinct_count(), cb.distinct_count())
        << label << " col " << i;
    if (ca.encoding() != ColumnEncoding::kWahBitmap) continue;
    for (Vid v = 0; v < ca.distinct_count(); ++v) {
      ASSERT_EQ(ca.dict().value(v), cb.dict().value(v))
          << label << " col " << i << " vid " << v;
      EXPECT_TRUE(ca.bitmap(v) == cb.bitmap(v))
          << label << ": column " << i << " vid " << v << " bitmaps differ";
    }
  }
}

// Exact catalog equality: same names, code-word-identical tables.
void ExpectCatalogsIdentical(const Catalog& a, const Catalog& b,
                             const std::string& label) {
  ASSERT_EQ(a.TableNames(), b.TableNames()) << label;
  for (const std::string& name : a.TableNames()) {
    ExpectTablesIdentical(*a.GetTable(name).ValueOrDie(),
                          *b.GetTable(name).ValueOrDie(),
                          label + " table " + name);
  }
}

std::vector<Smo> Parse(const std::string& text) {
  auto script = ParseSmoScript(text);
  CODS_CHECK(script.ok()) << script.status().ToString();
  return std::move(script).ValueOrDie();
}

TEST(SmoTableSets, PerKindReadAndWriteSets) {
  Schema schema({{"a", DataType::kInt64, false}});
  EXPECT_EQ(Smo::CreateTable("T", schema).ReadTables(), Names{});
  EXPECT_EQ(Smo::CreateTable("T", schema).WriteTables(), Names{"T"});
  EXPECT_EQ(Smo::DropTable("T").ReadTables(), Names{});
  EXPECT_EQ(Smo::DropTable("T").WriteTables(), Names{"T"});
  EXPECT_EQ(Smo::RenameTable("A", "B").WriteTables(), (Names{"A", "B"}));
  EXPECT_EQ(Smo::CopyTable("A", "B").ReadTables(), Names{"A"});
  EXPECT_EQ(Smo::CopyTable("A", "B").WriteTables(), Names{"B"});
  EXPECT_EQ(Smo::UnionTables("A", "B", "C").ReadTables(), (Names{"A", "B"}));
  EXPECT_EQ(Smo::UnionTables("A", "B", "C").WriteTables(),
            (Names{"A", "B", "C"}));
  Smo part = Smo::PartitionTable("R", "X", "Y", "c", CompareOp::kLt,
                                 Value(int64_t{1}));
  EXPECT_EQ(part.ReadTables(), Names{"R"});
  EXPECT_EQ(part.WriteTables(), (Names{"R", "X", "Y"}));
  Smo dec = Smo::DecomposeTable("R", "S", {"a"}, {}, "T", {"b"}, {});
  EXPECT_EQ(dec.ReadTables(), Names{"R"});
  EXPECT_EQ(dec.WriteTables(), (Names{"R", "S", "T"}));
  Smo merge = Smo::MergeTables("S", "T", "R", {"k"}, {});
  EXPECT_EQ(merge.ReadTables(), (Names{"S", "T"}));
  EXPECT_EQ(merge.WriteTables(), (Names{"R", "S", "T"}));
  Smo add = Smo::AddColumn("R", {"c", DataType::kInt64, false},
                           Value(int64_t{0}));
  EXPECT_EQ(add.ReadTables(), Names{"R"});
  EXPECT_EQ(add.WriteTables(), Names{"R"});
  EXPECT_EQ(Smo::DropColumn("R", "c").WriteTables(), Names{"R"});
  EXPECT_EQ(Smo::RenameColumn("R", "a", "b").WriteTables(), Names{"R"});
  // In-place decompose (an output reuses the input name) dedupes.
  Smo inplace = Smo::DecomposeTable("R", "R", {"a"}, {}, "T", {"b"}, {});
  EXPECT_EQ(inplace.WriteTables(), (Names{"R", "T"}));
}

TEST(ScriptPlanner, IndependentScriptHasNoEdges) {
  std::vector<Smo> script = Parse(
      "DROP COLUMN a FROM R0; DROP COLUMN a FROM R1; DROP COLUMN a FROM R2;");
  ScriptPlan plan = PlanScript(script);
  EXPECT_EQ(plan.num_edges, 0u);
  ASSERT_EQ(plan.stages.size(), 1u);
  EXPECT_EQ(plan.stages[0], (std::vector<size_t>{0, 1, 2}));
  EXPECT_EQ(plan.critical_path, 1u);
}

TEST(ScriptPlanner, ConflictingScriptIsAChainWithTransitiveReduction) {
  std::vector<Smo> script = Parse(
      "ADD COLUMN x INT64 TO R; DROP COLUMN x FROM R; "
      "RENAME COLUMN K TO K2 IN R;");
  ScriptPlan plan = PlanScript(script);
  EXPECT_EQ(plan.num_edges, 2u);  // 1<-0 and 2<-1; 2<-0 is implied
  EXPECT_EQ(plan.tasks[1].deps, (std::vector<size_t>{0}));
  EXPECT_EQ(plan.tasks[2].deps, (std::vector<size_t>{1}));
  EXPECT_EQ(plan.critical_path, 3u);
}

TEST(ScriptPlanner, ReadersOfOneTableAreIndependent) {
  // Two COPYs read R concurrently; the DROP of R must wait for both.
  std::vector<Smo> script = Parse(
      "COPY TABLE R TO A; COPY TABLE R TO B; DROP TABLE R;");
  ScriptPlan plan = PlanScript(script);
  EXPECT_TRUE(plan.tasks[0].deps.empty());
  EXPECT_TRUE(plan.tasks[1].deps.empty());
  EXPECT_EQ(plan.tasks[2].deps, (std::vector<size_t>{0, 1}));
  EXPECT_EQ(plan.critical_path, 2u);
}

TEST(ScriptPlanner, DiamondShape) {
  std::vector<Smo> script = Parse(
      "PARTITION TABLE R INTO L, H WHERE K < 100;"
      "PARTITION TABLE L INTO L1, L2 WHERE K < 50;"
      "PARTITION TABLE H INTO H1, H2 WHERE K < 150;"
      "UNION TABLES L1, H1 INTO M;"
      "UNION TABLES L2, H2 INTO O;");
  ScriptPlan plan = PlanScript(script);
  EXPECT_EQ(plan.tasks[1].deps, (std::vector<size_t>{0}));
  EXPECT_EQ(plan.tasks[2].deps, (std::vector<size_t>{0}));
  EXPECT_EQ(plan.tasks[3].deps, (std::vector<size_t>{1, 2}));
  EXPECT_EQ(plan.tasks[4].deps, (std::vector<size_t>{1, 2}));
  EXPECT_EQ(plan.num_edges, 6u);
  ASSERT_EQ(plan.stages.size(), 3u);
  EXPECT_EQ(plan.stages[1], (std::vector<size_t>{1, 2}));
  EXPECT_EQ(plan.stages[2], (std::vector<size_t>{3, 4}));
}

TEST(ScriptPlanner, FormatShowsStagesSetsAndDeps) {
  std::vector<Smo> script =
      Parse("COPY TABLE R TO A; DROP COLUMN K FROM A;");
  std::string text = FormatScriptPlan(script, PlanScript(script));
  EXPECT_NE(text.find("2 tasks"), std::string::npos) << text;
  EXPECT_NE(text.find("stage 0:"), std::string::npos) << text;
  EXPECT_NE(text.find("stage 1:"), std::string::npos) << text;
  EXPECT_NE(text.find("reads: R"), std::string::npos) << text;
  EXPECT_NE(text.find("writes: A"), std::string::npos) << text;
  EXPECT_NE(text.find("after: 0"), std::string::npos) << text;
}

// ---- Planned execution vs serial ApplyAll ---------------------------------

std::unique_ptr<Catalog> TwoTableCatalog() {
  auto catalog = std::make_unique<Catalog>();
  CODS_CHECK_OK(catalog->AddTable(SmallTable("R0")));
  CODS_CHECK_OK(catalog->AddTable(SmallTable("R1")));
  return catalog;
}

std::vector<Smo> MixedScript() {
  // Wide + diamond + schema-only ops in one script: two independent
  // DECOMPOSEs, merges back, a rename chain, and a partition/union
  // diamond over R1's halves.
  return Parse(
      "DECOMPOSE TABLE R0 INTO S0(K, V), T0(K, P) KEY(K);"
      "MERGE TABLES S0, T0 INTO R0 ON (K);"
      "PARTITION TABLE R1 INTO A, B WHERE K < 100;"
      "ADD COLUMN tag INT64 TO A DEFAULT 7;"
      "ADD COLUMN tag INT64 TO B DEFAULT 7;"
      "UNION TABLES A, B INTO R1;"
      "RENAME TABLE R0 TO Rz;"
      "COPY TABLE Rz TO R0copy;");
}

TEST(PlannedExecution, BitIdenticalToSerialApplyAll) {
  std::vector<Smo> script = MixedScript();
  auto serial_catalog = TwoTableCatalog();
  EngineOptions serial_opts;
  serial_opts.num_threads = 1;
  EvolutionEngine serial(serial_catalog.get(), nullptr, serial_opts);
  ASSERT_TRUE(serial.ApplyAll(script).ok());

  for (int threads : {1, 2, 8}) {
    auto catalog = TwoTableCatalog();
    EngineOptions options;
    options.num_threads = threads;
    EvolutionEngine engine(catalog.get(), nullptr, options);
    TaskGraphStats stats;
    Status st = engine.ApplyAllPlanned(script, &stats);
    ASSERT_TRUE(st.ok()) << st.ToString();
    EXPECT_EQ(stats.ran, script.size());
    ExpectCatalogsIdentical(*serial_catalog, *catalog,
                            "planned @" + std::to_string(threads));
  }
}

TEST(PlannedExecution, ApplyAllRoutesThroughPlannerWhenEnabled) {
  std::vector<Smo> script = MixedScript();
  auto serial_catalog = TwoTableCatalog();
  EvolutionEngine serial(serial_catalog.get());
  ASSERT_TRUE(serial.ApplyAll(script).ok());

  auto catalog = TwoTableCatalog();
  EngineOptions options;
  options.plan_scripts = true;
  options.num_threads = 4;
  EvolutionEngine engine(catalog.get(), nullptr, options);
  ASSERT_TRUE(engine.ApplyAll(script).ok());
  ExpectCatalogsIdentical(*serial_catalog, *catalog, "plan_scripts");
}

TEST(PlannedExecution, FailureCommitsExactlyTheSerialPrefix) {
  // Operator 1 fails (missing table). Serial ApplyAll stops there; the
  // planner must commit the same prefix — and discard the effects of
  // operator 2, which is independent of the failure and may have run.
  std::vector<Smo> script = Parse(
      "COPY TABLE R0 TO B;"
      "DROP COLUMN K FROM Missing;"
      "COPY TABLE R1 TO C;");

  auto serial_catalog = TwoTableCatalog();
  EngineOptions serial_opts;
  serial_opts.num_threads = 1;
  EvolutionEngine serial(serial_catalog.get(), nullptr, serial_opts);
  Status serial_st = serial.ApplyAll(script);
  ASSERT_FALSE(serial_st.ok());

  for (int threads : {1, 2, 8}) {
    auto catalog = TwoTableCatalog();
    EngineOptions options;
    options.num_threads = threads;
    EvolutionEngine engine(catalog.get(), nullptr, options);
    TaskGraphStats stats;
    Status st = engine.ApplyAllPlanned(script, &stats);
    ASSERT_FALSE(st.ok());
    EXPECT_EQ(st.ToString(), serial_st.ToString()) << threads;
    EXPECT_FALSE(catalog->HasTable("C")) << "discarded effect committed";
    ExpectCatalogsIdentical(*serial_catalog, *catalog,
                            "failure prefix @" + std::to_string(threads));
  }
}

TEST(PlannedExecution, DownstreamOfFailureIsSkippedNotRun) {
  std::vector<Smo> script = Parse(
      "DROP COLUMN K FROM Missing;"
      "COPY TABLE Missing2 TO D;"
      "ADD COLUMN x INT64 TO D;");  // depends on the COPY, must be skipped
  auto catalog = TwoTableCatalog();
  EvolutionEngine engine(catalog.get());
  TaskGraphStats stats;
  Status st = engine.ApplyAllPlanned(script, &stats);
  ASSERT_FALSE(st.ok());
  // First failure in script order is reported.
  EXPECT_NE(st.message().find("Missing"), std::string::npos)
      << st.ToString();
  EXPECT_EQ(stats.skipped, 1u);  // the ADD COLUMN behind the failed COPY
}

TEST(PlannedExecution, CreateDropCreateSameNameStaysOrdered) {
  std::vector<Smo> script = Parse(
      "CREATE TABLE Tmp (x INT64); DROP TABLE Tmp;"
      "CREATE TABLE Tmp (y STRING, KEY(y));");
  for (int threads : {1, 8}) {
    Catalog catalog;
    EngineOptions options;
    options.num_threads = threads;
    EvolutionEngine engine(&catalog, nullptr, options);
    Status st = engine.ApplyAllPlanned(script);
    ASSERT_TRUE(st.ok()) << st.ToString();
    auto t = catalog.GetTable("Tmp");
    ASSERT_TRUE(t.ok());
    EXPECT_EQ(t.ValueOrDie()->schema().column(0).name, "y");
  }
}

TEST(StagedCatalogTest, OverlayMirrorsCatalogSemantics) {
  Catalog base;
  CODS_CHECK_OK(base.AddTable(SmallTable("R")));
  StagedCatalog staged(&base);
  std::vector<CatalogEffect> log;
  StagedCatalog::View view = staged.MakeView(&log);

  // Reads fall through to the base.
  EXPECT_TRUE(view.HasTable("R"));
  EXPECT_FALSE(view.HasTable("X"));
  EXPECT_EQ(view.GetTable("X").status().ToString(),
            base.GetTable("X").status().ToString());

  // Mutations shadow the base without touching it.
  EXPECT_TRUE(view.DropTable("R").ok());
  EXPECT_FALSE(view.HasTable("R"));
  EXPECT_TRUE(base.HasTable("R"));
  EXPECT_TRUE(view.DropTable("R").IsKeyError());
  EXPECT_TRUE(view.AddTable(SmallTable("R")).ok());
  EXPECT_TRUE(view.AddTable(SmallTable("R")).IsAlreadyExists());
  EXPECT_TRUE(view.RenameTable("R", "R2").ok());
  EXPECT_FALSE(view.HasTable("R"));
  EXPECT_TRUE(view.HasTable("R2"));
  EXPECT_TRUE(view.RenameTable("nope", "x").IsKeyError());

  // Replaying the log onto a copy of the base reproduces the overlay.
  Catalog target;
  CODS_CHECK_OK(target.AddTable(base.GetTable("R").ValueOrDie()));
  for (const CatalogEffect& effect : log) {
    ASSERT_TRUE(ApplyEffect(effect, &target).ok());
  }
  EXPECT_FALSE(target.HasTable("R"));
  EXPECT_TRUE(target.HasTable("R2"));
}

}  // namespace
}  // namespace cods

// Tests for the versioned catalog: snapshots, time travel, checkout,
// and the storage-sharing accounting that makes versioning cheap.

#include "concurrency/versioned_catalog.h"

#include "evolution/engine.h"
#include "gtest/gtest.h"
#include "test_util.h"

namespace cods {
namespace {

using ::cods::testing::ExpectSameContent;
using ::cods::testing::Figure1TableR;

TEST(VersionedCatalog, CommitAndHistory) {
  VersionedCatalog vc;
  ASSERT_TRUE(vc.Apply([](TableStore& store) {
              return store.AddTable(Figure1TableR());
            }).ok());
  uint64_t v1 = vc.Commit("initial load");
  EXPECT_EQ(v1, 1u);

  EvolutionEngine engine(vc.serving());
  ASSERT_TRUE(engine
                  .Apply(Smo::DecomposeTable(
                      "R", "S", {"Employee", "Skill"}, {}, "T",
                      {"Employee", "Address"}, {"Employee"}))
                  .ok());
  uint64_t v2 = vc.Commit("decompose R");
  EXPECT_EQ(v2, 2u);

  auto history = vc.History();
  ASSERT_EQ(history.size(), 2u);
  EXPECT_EQ(history[0].message, "initial load");
  EXPECT_EQ(history[0].table_names, (std::vector<std::string>{"R"}));
  EXPECT_EQ(history[0].total_rows, 7u);
  EXPECT_EQ(history[1].table_names, (std::vector<std::string>{"S", "T"}));
  EXPECT_EQ(history[1].total_rows, 11u);  // 7 + 4
}

TEST(VersionedCatalog, OldVersionsStayQueryable) {
  VersionedCatalog vc;
  ASSERT_TRUE(vc.Apply([](TableStore& store) {
              return store.AddTable(Figure1TableR());
            }).ok());
  vc.Commit("v1");
  EvolutionEngine engine(vc.serving());
  ASSERT_TRUE(engine.Apply(Smo::DropColumn("R", "Address")).ok());
  vc.Commit("v2: dropped Address");

  // Version 1 still has the Address column, with its data.
  auto old_r = vc.GetTableAt(1, "R").ValueOrDie();
  EXPECT_TRUE(old_r->schema().HasColumn("Address"));
  ExpectSameContent(*Figure1TableR(), *old_r);
  // Version 2 does not.
  EXPECT_FALSE(
      vc.GetTableAt(2, "R").ValueOrDie()->schema().HasColumn("Address"));
}

TEST(VersionedCatalog, CheckoutRestoresWorkingState) {
  VersionedCatalog vc;
  ASSERT_TRUE(vc.Apply([](TableStore& store) {
              return store.AddTable(Figure1TableR());
            }).ok());
  vc.Commit("v1");
  EvolutionEngine engine(vc.serving());
  ASSERT_TRUE(engine
                  .Apply(Smo::DecomposeTable(
                      "R", "S", {"Employee", "Skill"}, {}, "T",
                      {"Employee", "Address"}, {"Employee"}))
                  .ok());
  vc.Commit("v2");

  ASSERT_TRUE(vc.Checkout(1).ok());
  EXPECT_EQ(vc.GetSnapshot().root().TableNames(),
            (std::vector<std::string>{"R"}));
  ExpectSameContent(*Figure1TableR(),
                    *vc.GetSnapshot().root().GetTable("R").ValueOrDie());
  // History is untouched by checkout.
  EXPECT_EQ(vc.num_versions(), 2u);
  EXPECT_EQ(vc.TableNamesAt(2).ValueOrDie(),
            (std::vector<std::string>{"S", "T"}));
}

TEST(VersionedCatalog, BadVersionIdsRejected) {
  VersionedCatalog vc;
  vc.Commit("empty");
  EXPECT_TRUE(vc.GetTableAt(0, "R").status().IsOutOfRange());
  EXPECT_TRUE(vc.GetTableAt(2, "R").status().IsOutOfRange());
  EXPECT_TRUE(vc.Checkout(5).IsOutOfRange());
  EXPECT_TRUE(vc.GetTableAt(1, "R").status().IsKeyError());
}

TEST(VersionedCatalog, VersionsShareColumnStorage) {
  // Ten versions that each rename the table: naive accounting charges
  // the data ten times, unique accounting once.
  VersionedCatalog vc;
  ASSERT_TRUE(vc.Apply([](TableStore& store) {
              return store.AddTable(Figure1TableR());
            }).ok());
  vc.Commit("v1");
  for (int i = 0; i < 9; ++i) {
    EvolutionEngine engine(vc.serving());
    std::string from = i == 0 ? "R" : "R" + std::to_string(i);
    std::string to = "R" + std::to_string(i + 1);
    ASSERT_TRUE(engine.Apply(Smo::RenameTable(from, to)).ok());
    vc.Commit("rename to " + to);
  }
  auto stats = vc.ComputeStorageStats();
  EXPECT_GT(stats.naive_bytes, stats.unique_bytes * 9);
}

TEST(VersionedCatalog, DecomposeSharesUnchangedColumns) {
  // After decompose, version 2's S shares columns with version 1's R:
  // unique bytes grow only by the generated T (plus nothing for S).
  VersionedCatalog vc;
  ASSERT_TRUE(vc.Apply([](TableStore& store) {
              return store.AddTable(Figure1TableR());
            }).ok());
  vc.Commit("v1");
  auto v1_stats = vc.ComputeStorageStats();

  EvolutionEngine engine(vc.serving());
  ASSERT_TRUE(engine
                  .Apply(Smo::DecomposeTable(
                      "R", "S", {"Employee", "Skill"}, {}, "T",
                      {"Employee", "Address"}, {"Employee"}))
                  .ok());
  vc.Commit("v2");
  auto v2_stats = vc.ComputeStorageStats();
  // S reuses R's Employee and Skill columns: the unique growth is less
  // than R's total size (it is only T's small columns).
  EXPECT_LT(v2_stats.unique_bytes - v1_stats.unique_bytes,
            v1_stats.unique_bytes);
}

}  // namespace
}  // namespace cods

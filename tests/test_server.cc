// The server subsystem: wire codec round-trips, exhaustive
// StatusCode<->wire mapping, hostile-input frame decoding (torn frames,
// oversized prefixes, CRC flips, seeded fuzz), admission-control
// bounds, and full loopback integration — execute/prepare over TCP,
// shared-eval batching, prepared-statement invalidation across online
// schema evolution, heavy-flood no-starvation, statement timeouts, and
// graceful shutdown that never drops an acked durable commit.

#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <algorithm>
#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstring>
#include <filesystem>
#include <memory>
#include <mutex>
#include <random>
#include <set>
#include <string>
#include <thread>
#include <vector>

#include "common/env.h"
#include "durability/db.h"
#include "concurrency/versioned_catalog.h"
#include "gtest/gtest.h"
#include "query/expr.h"
#include "server/admission.h"
#include "server/client.h"
#include "server/prepared.h"
#include "server/server.h"
#include "server/wire.h"
#include "test_util.h"
#include "workload/generator.h"

namespace cods {
namespace {

using server::AdmissionController;
using server::AdmissionOptions;
using server::AdmissionTask;
using server::Client;
using server::DecodeStatus;
using server::Frame;
using server::FrameType;
using server::Lane;
using server::WireResponse;

// ---- Wire primitives ------------------------------------------------------

TEST(Wire, PrimitivesRoundTrip) {
  std::string buf;
  server::PutFixed32(&buf, 0xDEADBEEFu);
  server::PutFixed64(&buf, 0x0123456789ABCDEFull);
  server::PutLengthPrefixed(&buf, "hello");
  server::PutValue(&buf, Value());
  server::PutValue(&buf, Value(int64_t{-42}));
  server::PutValue(&buf, Value(2.25));
  server::PutValue(&buf, Value("it's"));

  std::string_view in = buf;
  uint32_t u32 = 0;
  uint64_t u64 = 0;
  std::string_view s;
  Value v;
  ASSERT_TRUE(server::GetFixed32(&in, &u32));
  EXPECT_EQ(u32, 0xDEADBEEFu);
  ASSERT_TRUE(server::GetFixed64(&in, &u64));
  EXPECT_EQ(u64, 0x0123456789ABCDEFull);
  ASSERT_TRUE(server::GetLengthPrefixed(&in, &s));
  EXPECT_EQ(s, "hello");
  ASSERT_TRUE(server::GetValue(&in, &v));
  EXPECT_TRUE(v.is_null());
  ASSERT_TRUE(server::GetValue(&in, &v));
  EXPECT_EQ(v, Value(int64_t{-42}));
  ASSERT_TRUE(server::GetValue(&in, &v));
  EXPECT_EQ(v, Value(2.25));
  ASSERT_TRUE(server::GetValue(&in, &v));
  EXPECT_EQ(v, Value("it's"));
  EXPECT_TRUE(in.empty());

  // Truncations fail cleanly at every cut point.
  for (size_t cut = 0; cut < buf.size(); ++cut) {
    std::string_view t(buf.data(), cut);
    uint32_t a;
    uint64_t b;
    std::string_view c;
    Value d;
    // At most some prefix of the fields decodes; no Get* may read past
    // the truncated view (ASan-checked).
    while (server::GetFixed32(&t, &a) && server::GetFixed64(&t, &b) &&
           server::GetLengthPrefixed(&t, &c) && server::GetValue(&t, &d)) {
      break;
    }
  }
}

TEST(Wire, FrameRoundTrip) {
  std::string buf;
  server::EncodeFrame(&buf, FrameType::kExecute, 42, "SELECT 1");
  server::EncodeFrame(&buf, FrameType::kPong, 43, "");

  Frame frame;
  size_t consumed = 0;
  Status error;
  ASSERT_EQ(server::DecodeFrame(buf, server::kDefaultMaxFrameBytes, &frame,
                                &consumed, &error),
            DecodeStatus::kFrame);
  EXPECT_EQ(frame.type, FrameType::kExecute);
  EXPECT_EQ(frame.request_id, 42u);
  EXPECT_EQ(frame.body, "SELECT 1");

  std::string rest = buf.substr(consumed);
  ASSERT_EQ(server::DecodeFrame(rest, server::kDefaultMaxFrameBytes, &frame,
                                &consumed, &error),
            DecodeStatus::kFrame);
  EXPECT_EQ(frame.type, FrameType::kPong);
  EXPECT_EQ(frame.request_id, 43u);
  EXPECT_TRUE(frame.body.empty());
  EXPECT_EQ(consumed, rest.size());
}

// Satellite (b): every StatusCode has a name, a distinct wire code, and
// a lossless round-trip; unknown wire codes decode to a typed
// corruption, never a crash or a silent kOk.
TEST(Wire, StatusCodeMappingIsExhaustive) {
  std::set<uint32_t> wire_codes;
  for (int c = 0; c < kNumStatusCodes; ++c) {
    StatusCode code = static_cast<StatusCode>(c);
    EXPECT_STRNE(StatusCodeToString(code), "Unknown")
        << "StatusCode " << c << " has no name";
    uint32_t wire = server::WireErrorCode(code);
    wire_codes.insert(wire);
    bool known = false;
    EXPECT_EQ(server::StatusCodeFromWire(wire, &known), code)
        << "wire code " << wire << " does not round-trip";
    EXPECT_TRUE(known);
  }
  EXPECT_EQ(wire_codes.size(), static_cast<size_t>(kNumStatusCodes))
      << "two StatusCodes share a wire code";
  EXPECT_EQ(server::WireErrorCode(StatusCode::kOk), 0u);

  bool known = true;
  EXPECT_EQ(server::StatusCodeFromWire(0xFFFFu, &known),
            StatusCode::kCorruption);
  EXPECT_FALSE(known);
}

TEST(Wire, ErrorResponseCarriesTypedStatus) {
  std::string bytes =
      server::EncodeError(7, Status::KeyError("no such column: Zip"));
  Frame frame;
  size_t consumed = 0;
  Status error;
  ASSERT_EQ(server::DecodeFrame(bytes, server::kDefaultMaxFrameBytes, &frame,
                                &consumed, &error),
            DecodeStatus::kFrame);
  auto resp = server::DecodeResponse(frame);
  ASSERT_TRUE(resp.ok()) << resp.status().ToString();
  EXPECT_EQ(resp.ValueOrDie().type, FrameType::kError);
  EXPECT_EQ(resp.ValueOrDie().request_id, 7u);
  EXPECT_TRUE(resp.ValueOrDie().error.IsKeyError());
  EXPECT_NE(resp.ValueOrDie().error.ToString().find("Zip"),
            std::string::npos);
}

TEST(Wire, ResponseRoundTrips) {
  struct Case {
    std::string bytes;
    FrameType want;
  };
  for (const Case& c : {
           Case{server::EncodeHelloOk(1, 99), FrameType::kHelloOk},
           Case{server::EncodeResultOk(2, "OK"), FrameType::kResultOk},
           Case{server::EncodeResultCount(3, 12), FrameType::kResultCount},
           Case{server::EncodePong(4), FrameType::kPong},
           Case{server::EncodePrepareOk(5, 8, 2), FrameType::kPrepareOk},
       }) {
    Frame frame;
    size_t consumed = 0;
    Status error;
    ASSERT_EQ(server::DecodeFrame(c.bytes, server::kDefaultMaxFrameBytes,
                                  &frame, &consumed, &error),
              DecodeStatus::kFrame);
    auto resp = server::DecodeResponse(frame);
    ASSERT_TRUE(resp.ok()) << resp.status().ToString();
    EXPECT_EQ(resp.ValueOrDie().type, c.want);
  }
  std::string count = server::EncodeResultCount(3, 12);
  Frame frame;
  size_t consumed = 0;
  Status error;
  ASSERT_EQ(server::DecodeFrame(count, server::kDefaultMaxFrameBytes, &frame,
                                &consumed, &error),
            DecodeStatus::kFrame);
  EXPECT_EQ(server::DecodeResponse(frame).ValueOrDie().count, 12u);
}

// Satellite (c): torn frames ask for more bytes; every single-bit
// corruption of a valid frame is detected (never decodes as a frame).
TEST(Wire, TornAndCorruptFrames) {
  std::string bytes;
  server::EncodeFrame(&bytes, FrameType::kExecute, 9, "SELECT * FROM R;");

  Frame frame;
  size_t consumed = 0;
  Status error;
  for (size_t cut = 0; cut < bytes.size(); ++cut) {
    EXPECT_EQ(server::DecodeFrame(std::string_view(bytes.data(), cut),
                                  server::kDefaultMaxFrameBytes, &frame,
                                  &consumed, &error),
              DecodeStatus::kNeedMore)
        << "prefix of " << cut << " bytes";
  }
  for (size_t i = 0; i < bytes.size(); ++i) {
    for (int bit = 0; bit < 8; ++bit) {
      std::string flipped = bytes;
      flipped[i] = static_cast<char>(flipped[i] ^ (1 << bit));
      DecodeStatus ds = server::DecodeFrame(
          flipped, server::kDefaultMaxFrameBytes, &frame, &consumed, &error);
      EXPECT_NE(ds, DecodeStatus::kFrame)
          << "bit " << bit << " of byte " << i << " undetected";
    }
  }
}

TEST(Wire, OversizedAndUndersizedPrefixesAreErrors) {
  Frame frame;
  size_t consumed = 0;
  Status error;

  // Length prefix far past the cap: typed error, no allocation attempt.
  std::string huge;
  server::PutFixed32(&huge, 0x7FFFFFFFu);
  server::PutFixed32(&huge, 0);  // bogus CRC; length check fires first
  EXPECT_EQ(server::DecodeFrame(huge, server::kDefaultMaxFrameBytes, &frame,
                                &consumed, &error),
            DecodeStatus::kError);
  EXPECT_TRUE(error.IsInvalidArgument()) << error.ToString();

  // Length below the minimum payload (type + request id).
  std::string tiny;
  server::PutFixed32(&tiny, 1);
  server::PutFixed32(&tiny, 0);
  EXPECT_EQ(server::DecodeFrame(tiny, server::kDefaultMaxFrameBytes, &frame,
                                &consumed, &error),
            DecodeStatus::kError);
  EXPECT_TRUE(error.IsInvalidArgument()) << error.ToString();
}

// Satellite (c): the seeded fuzz loop. No input may crash, hang, or
// over-read the decoder; garbage after a valid frame never corrupts the
// frame in front of it.
TEST(Wire, SeededFuzzDecodeNeverCrashes) {
  std::mt19937 rng(0xC0D5u);
  Frame frame;
  size_t consumed = 0;
  Status error;
  for (int iter = 0; iter < 5000; ++iter) {
    size_t len = rng() % 96;
    std::string buf(len, '\0');
    for (char& c : buf) c = static_cast<char>(rng());
    DecodeStatus ds = server::DecodeFrame(
        buf, server::kDefaultMaxFrameBytes, &frame, &consumed, &error);
    if (ds == DecodeStatus::kFrame) {
      EXPECT_LE(consumed, buf.size());
    }
  }
  for (int iter = 0; iter < 200; ++iter) {
    std::string buf;
    server::EncodeFrame(&buf, FrameType::kPing, rng(), "");
    size_t tail = rng() % 32;
    for (size_t i = 0; i < tail; ++i) {
      buf.push_back(static_cast<char>(rng()));
    }
    ASSERT_EQ(server::DecodeFrame(buf, server::kDefaultMaxFrameBytes, &frame,
                                  &consumed, &error),
              DecodeStatus::kFrame);
    EXPECT_EQ(frame.type, FrameType::kPing);
  }
}

// ---- Placeholder rewriting ------------------------------------------------

TEST(Prepared, RewritePlaceholders) {
  uint32_t n = 0;
  auto rewritten = server::RewritePlaceholders(
      "SELECT * FROM R WHERE a = $1 AND b = $2;", &n);
  ASSERT_TRUE(rewritten.ok()) << rewritten.status().ToString();
  EXPECT_EQ(n, 2u);
  // Each placeholder became a sentinel string literal.
  EXPECT_EQ(std::count(rewritten.ValueOrDie().begin(),
                       rewritten.ValueOrDie().end(),
                       server::kParamSentinelPrefix),
            2);

  // `$1` inside a string literal (with quote doubling) is literal text.
  auto quoted = server::RewritePlaceholders(
      "SELECT * FROM R WHERE a = 'it''s $1';", &n);
  ASSERT_TRUE(quoted.ok()) << quoted.status().ToString();
  EXPECT_EQ(n, 0u);
  EXPECT_EQ(quoted.ValueOrDie(), "SELECT * FROM R WHERE a = 'it''s $1';");

  // The sentinel byte is reserved in input text.
  EXPECT_FALSE(server::RewritePlaceholders("SELECT '\x01$1';", &n).ok());
  // Parameter indexes are bounded.
  EXPECT_FALSE(
      server::RewritePlaceholders("SELECT * FROM R WHERE a = $1000;", &n)
          .ok());
}

// ---- Admission classification and bounds ---------------------------------

TEST(Admission, EstimatesFromPopcountHistograms) {
  auto table = testing::Figure1TableR();  // 7 rows; Jones x3, Ellis x2
  auto eq = [](const char* col, const char* v) {
    return Expr::Compare(col, CompareOp::kEq, Value(v));
  };
  EXPECT_EQ(server::EstimateExprRows(*table, eq("Employee", "Jones")), 3u);
  EXPECT_EQ(server::EstimateExprRows(*table, eq("Employee", "Nobody")), 0u);
  EXPECT_EQ(server::EstimateExprRows(
                *table, Expr::Not(eq("Employee", "Jones"))),
            4u);
  {
    std::vector<ExprPtr> both;
    both.push_back(eq("Employee", "Jones"));
    both.push_back(eq("Skill", "Typing"));
    EXPECT_EQ(server::EstimateExprRows(*table, Expr::And(std::move(both))),
              1u);  // min(3, 1)
  }
  {
    std::vector<ExprPtr> either;
    either.push_back(eq("Employee", "Jones"));
    either.push_back(eq("Employee", "Ellis"));
    EXPECT_EQ(server::EstimateExprRows(*table, Expr::Or(std::move(either))),
              5u);  // 3 + 2
  }
  // Unknown column: conservative full-table estimate.
  EXPECT_EQ(server::EstimateExprRows(*table, eq("Nope", "x")), 7u);
  // Null where: full table.
  EXPECT_EQ(server::EstimateExprRows(*table, nullptr), 7u);
}

TEST(Admission, ClassifyStatement) {
  Catalog seed;
  CODS_CHECK_OK(seed.AddTable(testing::Figure1TableR()));
  SnapshotCatalog serving;
  serving.Reset(seed);
  Snapshot snap = serving.GetSnapshot();

  auto classify = [&](const std::string& text, uint64_t threshold) {
    auto stmt = ParseStatement(text);
    CODS_CHECK(stmt.ok()) << stmt.status().ToString();
    return server::ClassifyStatement(stmt.ValueOrDie(), snap.root(),
                                     threshold);
  };
  // SMOs and analytic shapes are heavy regardless of estimates.
  EXPECT_EQ(classify("DROP COLUMN Address FROM R;", 1 << 20), Lane::kHeavy);
  EXPECT_EQ(classify("SELECT Employee, COUNT(*) FROM R GROUP BY Employee;",
                     1 << 20),
            Lane::kHeavy);
  EXPECT_EQ(classify("SELECT * FROM R ORDER BY Employee;", 1 << 20),
            Lane::kHeavy);
  EXPECT_EQ(classify("SELECT * FROM R;", 1 << 20), Lane::kHeavy);
  // A bare COUNT is O(1) on the row count: point.
  EXPECT_EQ(classify("SELECT COUNT(*) FROM R;", 1), Lane::kPoint);
  // Threshold splits on the estimate (Jones matches 3 rows).
  const std::string jones =
      "SELECT COUNT(*) FROM R WHERE Employee = 'Jones';";
  uint64_t est = 0;
  auto stmt = ParseStatement(jones).ValueOrDie();
  EXPECT_EQ(server::ClassifyStatement(stmt, snap.root(), 10, &est),
            Lane::kPoint);
  EXPECT_EQ(est, 3u);
  EXPECT_EQ(server::ClassifyStatement(stmt, snap.root(), 2, &est),
            Lane::kHeavy);
  // Unknown table: point (it fails fast at execution).
  EXPECT_EQ(classify("SELECT COUNT(*) FROM Nope WHERE a = 1;", 1),
            Lane::kPoint);
}

TEST(Admission, BoundedQueueBackpressureAndDrain) {
  std::mutex mu;
  std::condition_variable cv;
  bool entered = false;
  bool release = false;
  std::atomic<int> ran{0};

  AdmissionOptions options;
  options.point_workers = 1;
  options.heavy_workers = 1;
  options.queue_limit = 2;
  options.max_batch = 1;
  AdmissionController ctrl(
      [&](Lane, std::vector<AdmissionTask> tasks) {
        {
          std::unique_lock<std::mutex> lk(mu);
          entered = true;
          cv.notify_all();
          cv.wait(lk, [&] { return release; });
        }
        ran += static_cast<int>(tasks.size());
      },
      options);

  auto task = [] {
    return AdmissionTask{std::make_shared<int>(0),
                         std::chrono::steady_clock::time_point::max()};
  };
  ASSERT_TRUE(ctrl.Submit(Lane::kPoint, task()).ok());
  {
    // Wait for the single point worker to pull the task and block.
    std::unique_lock<std::mutex> lk(mu);
    cv.wait(lk, [&] { return entered; });
  }
  ASSERT_TRUE(ctrl.Submit(Lane::kPoint, task()).ok());
  ASSERT_TRUE(ctrl.Submit(Lane::kPoint, task()).ok());
  // Queue is at its limit of 2: backpressure, not an unbounded queue.
  Status full = ctrl.Submit(Lane::kPoint, task());
  EXPECT_TRUE(full.IsUnavailable()) << full.ToString();
  // The heavy lane has its own queue and worker budget.
  EXPECT_TRUE(ctrl.Submit(Lane::kHeavy, task()).ok());

  {
    std::unique_lock<std::mutex> lk(mu);
    release = true;
    cv.notify_all();
  }
  ctrl.Drain();
  EXPECT_EQ(ran.load(), 4);  // 3 point + 1 heavy; the rejected one never ran

  // After Drain, intake stays closed.
  EXPECT_TRUE(ctrl.Submit(Lane::kPoint, task()).IsUnavailable());

  server::AdmissionStats stats = ctrl.GetStats();
  EXPECT_EQ(stats.point.submitted, 3u);
  EXPECT_EQ(stats.point.rejected_full, 1u);
  EXPECT_EQ(stats.point.executed, 3u);
  EXPECT_EQ(stats.heavy.executed, 1u);
}

// ---- Loopback integration -------------------------------------------------

// An in-process server over a seeded in-memory catalog.
struct TestServer {
  explicit TestServer(server::ServerOptions options = {},
                      bool with_big_table = false) {
    Catalog seed;
    CODS_CHECK_OK(seed.AddTable(testing::Figure1TableR()));
    if (with_big_table) {
      WorkloadSpec spec;
      spec.num_rows = 20'000;
      spec.num_distinct = 2'000;
      auto big = GenerateEvolutionTable(spec, "B");
      CODS_CHECK(big.ok()) << big.status().ToString();
      CODS_CHECK_OK(seed.AddTable(big.ValueOrDie()));
    }
    catalog.Reset(seed);
    options.port = 0;
    srv = std::make_unique<server::Server>(&catalog, options);
    CODS_CHECK_OK(srv->Start());
  }
  ~TestServer() { srv->Shutdown(); }

  std::unique_ptr<Client> Connect() {
    auto client = Client::Connect("127.0.0.1", srv->port());
    CODS_CHECK(client.ok()) << client.status().ToString();
    return std::move(client).ValueOrDie();
  }

  VersionedCatalog catalog;
  std::unique_ptr<server::Server> srv;
};

TEST(Server, HelloPingGoodbye) {
  TestServer ts;
  auto a = ts.Connect();
  EXPECT_NE(a->session_id(), 0u);
  EXPECT_TRUE(a->Ping().ok());
  auto b = ts.Connect();
  EXPECT_NE(b->session_id(), a->session_id());
  a->Close();
  EXPECT_TRUE(b->Ping().ok());  // unaffected by a's goodbye
}

TEST(Server, ExecutesStatementsOverLoopback) {
  TestServer ts;
  auto client = ts.Connect();

  auto count = client->Execute(
      "SELECT COUNT(*) FROM R WHERE Employee = 'Jones';");
  ASSERT_TRUE(count.ok()) << count.status().ToString();
  ASSERT_EQ(count.ValueOrDie().type, FrameType::kResultCount)
      << server::FormatWireResponse(count.ValueOrDie());
  EXPECT_EQ(count.ValueOrDie().count, 3u);

  auto select = client->Execute(
      "SELECT Employee, Skill FROM R WHERE Address = '425 Grant Ave';");
  ASSERT_TRUE(select.ok()) << select.status().ToString();
  ASSERT_EQ(select.ValueOrDie().type, FrameType::kResultTable);
  EXPECT_EQ(select.ValueOrDie().columns,
            (std::vector<std::string>{"Employee", "Skill"}));
  EXPECT_EQ(select.ValueOrDie().rows.size(), 4u);

  auto groups = client->Execute(
      "SELECT Employee, COUNT(*) FROM R GROUP BY Employee;");
  ASSERT_TRUE(groups.ok()) << groups.status().ToString();
  ASSERT_EQ(groups.ValueOrDie().type, FrameType::kResultGroups);
  EXPECT_EQ(groups.ValueOrDie().group_rows.size(), 4u);  // 4 employees

  // An SMO through the wire becomes visible to the next statement.
  auto smo = client->Execute("ADD COLUMN Pay INT64 TO R DEFAULT 7;");
  ASSERT_TRUE(smo.ok()) << smo.status().ToString();
  ASSERT_EQ(smo.ValueOrDie().type, FrameType::kResultOk)
      << server::FormatWireResponse(smo.ValueOrDie());
  auto paid = client->Execute("SELECT COUNT(*) FROM R WHERE Pay = 7;");
  ASSERT_TRUE(paid.ok()) << paid.status().ToString();
  EXPECT_EQ(paid.ValueOrDie().count, 7u);
}

TEST(Server, StatementErrorsAreTypedNotFatal) {
  TestServer ts;
  auto client = ts.Connect();

  auto missing = client->Execute("SELECT COUNT(*) FROM Nope;");
  ASSERT_TRUE(missing.ok()) << missing.status().ToString();
  ASSERT_EQ(missing.ValueOrDie().type, FrameType::kError);
  EXPECT_TRUE(missing.ValueOrDie().error.IsKeyError())
      << missing.ValueOrDie().error.ToString();

  auto garbage = client->Execute("FROBNICATE THE BITS;");
  ASSERT_TRUE(garbage.ok()) << garbage.status().ToString();
  ASSERT_EQ(garbage.ValueOrDie().type, FrameType::kError);

  // The session survives statement errors.
  auto ok = client->Execute("SELECT COUNT(*) FROM R;");
  ASSERT_TRUE(ok.ok()) << ok.status().ToString();
  EXPECT_EQ(ok.ValueOrDie().count, 7u);
}

// Compatible pipelined statements against the same root share one
// compressed eval; the counters prove it.
TEST(Server, PipelinedStatementsShareEvals) {
  TestServer ts;
  auto client = ts.Connect();

  uint64_t hits = 0;
  for (int attempt = 0; attempt < 5 && hits == 0; ++attempt) {
    std::vector<std::string> texts(
        32, "SELECT COUNT(*) FROM R WHERE Employee = 'Jones';");
    auto responses = client->ExecuteBatch(texts);
    ASSERT_TRUE(responses.ok()) << responses.status().ToString();
    for (const WireResponse& resp : responses.ValueOrDie()) {
      ASSERT_EQ(resp.type, FrameType::kResultCount)
          << server::FormatWireResponse(resp);
      EXPECT_EQ(resp.count, 3u);
    }
    hits = ts.srv->GetStats().batch.batch_hits;
  }
  EXPECT_GT(hits, 0u) << "pipelined identical statements never shared";
}

TEST(Server, PreparedStatements) {
  TestServer ts;
  auto client = ts.Connect();

  auto prep = client->Prepare(
      "SELECT COUNT(*) FROM R WHERE Employee = $1;");
  ASSERT_TRUE(prep.ok()) << prep.status().ToString();
  ASSERT_EQ(prep.ValueOrDie().type, FrameType::kPrepareOk)
      << server::FormatWireResponse(prep.ValueOrDie());
  EXPECT_EQ(prep.ValueOrDie().n_params, 1u);
  uint64_t stmt_id = prep.ValueOrDie().stmt_id;

  auto jones = client->ExecutePrepared(stmt_id, {Value("Jones")});
  ASSERT_TRUE(jones.ok()) << jones.status().ToString();
  ASSERT_EQ(jones.ValueOrDie().type, FrameType::kResultCount)
      << server::FormatWireResponse(jones.ValueOrDie());
  EXPECT_EQ(jones.ValueOrDie().count, 3u);
  auto ellis = client->ExecutePrepared(stmt_id, {Value("Ellis")});
  ASSERT_TRUE(ellis.ok());
  EXPECT_EQ(ellis.ValueOrDie().count, 2u);

  // Arity mismatch and unknown ids are typed errors.
  auto none = client->ExecutePrepared(stmt_id, {});
  ASSERT_TRUE(none.ok());
  EXPECT_EQ(none.ValueOrDie().type, FrameType::kError);
  auto unknown = client->ExecutePrepared(9999, {Value("x")});
  ASSERT_TRUE(unknown.ok());
  EXPECT_EQ(unknown.ValueOrDie().type, FrameType::kError);
  EXPECT_TRUE(unknown.ValueOrDie().error.IsKeyError());

  // SMOs do not take parameters.
  auto smo = client->Prepare("DROP COLUMN $1 FROM R;");
  ASSERT_TRUE(smo.ok());
  EXPECT_EQ(smo.ValueOrDie().type, FrameType::kError);

  auto closed = client->ClosePrepared(stmt_id);
  ASSERT_TRUE(closed.ok());
  EXPECT_EQ(closed.ValueOrDie().type, FrameType::kResultOk);
  auto after = client->ExecutePrepared(stmt_id, {Value("Jones")});
  ASSERT_TRUE(after.ok());
  EXPECT_EQ(after.ValueOrDie().type, FrameType::kError);
}

// Satellite (d): a prepared statement never answers from a stale
// resolution after the schema evolves. Unrelated evolution re-resolves
// silently; dropping or renaming a referenced column is a typed error.
TEST(Server, PreparedInvalidationAcrossSchemaEvolution) {
  TestServer ts;
  auto client = ts.Connect();

  auto prep =
      client->Prepare("SELECT COUNT(*) FROM R WHERE Address = $1;");
  ASSERT_TRUE(prep.ok()) << prep.status().ToString();
  ASSERT_EQ(prep.ValueOrDie().type, FrameType::kPrepareOk)
      << server::FormatWireResponse(prep.ValueOrDie());
  uint64_t stmt_id = prep.ValueOrDie().stmt_id;

  auto before =
      client->ExecutePrepared(stmt_id, {Value("425 Grant Ave")});
  ASSERT_TRUE(before.ok());
  ASSERT_EQ(before.ValueOrDie().type, FrameType::kResultCount);
  EXPECT_EQ(before.ValueOrDie().count, 4u);

  // Unrelated evolution: the entry re-resolves silently on the new root
  // and keeps answering correctly.
  auto unrelated = client->Execute("ADD COLUMN Grade INT64 TO R DEFAULT 1;");
  ASSERT_TRUE(unrelated.ok());
  ASSERT_EQ(unrelated.ValueOrDie().type, FrameType::kResultOk);
  auto still = client->ExecutePrepared(stmt_id, {Value("425 Grant Ave")});
  ASSERT_TRUE(still.ok());
  ASSERT_EQ(still.ValueOrDie().type, FrameType::kResultCount)
      << server::FormatWireResponse(still.ValueOrDie());
  EXPECT_EQ(still.ValueOrDie().count, 4u);

  // Renaming the referenced column invalidates: typed error, never a
  // stale answer.
  auto rename = client->Execute("RENAME COLUMN Address TO Addr IN R;");
  ASSERT_TRUE(rename.ok());
  ASSERT_EQ(rename.ValueOrDie().type, FrameType::kResultOk);
  auto stale = client->ExecutePrepared(stmt_id, {Value("425 Grant Ave")});
  ASSERT_TRUE(stale.ok());
  ASSERT_EQ(stale.ValueOrDie().type, FrameType::kError)
      << server::FormatWireResponse(stale.ValueOrDie());
  EXPECT_TRUE(stale.ValueOrDie().error.IsKeyError())
      << stale.ValueOrDie().error.ToString();
  EXPECT_NE(stale.ValueOrDie().error.ToString().find("invalidated"),
            std::string::npos)
      << stale.ValueOrDie().error.ToString();

  // Re-preparing against the new schema works.
  auto reprep = client->Prepare("SELECT COUNT(*) FROM R WHERE Addr = $1;");
  ASSERT_TRUE(reprep.ok());
  ASSERT_EQ(reprep.ValueOrDie().type, FrameType::kPrepareOk);
  auto fresh = client->ExecutePrepared(reprep.ValueOrDie().stmt_id,
                                       {Value("425 Grant Ave")});
  ASSERT_TRUE(fresh.ok());
  EXPECT_EQ(fresh.ValueOrDie().count, 4u);

  // Dropping the column invalidates the re-prepared entry too.
  auto drop = client->Execute("DROP COLUMN Addr FROM R;");
  ASSERT_TRUE(drop.ok());
  ASSERT_EQ(drop.ValueOrDie().type, FrameType::kResultOk);
  auto dropped = client->ExecutePrepared(reprep.ValueOrDie().stmt_id,
                                         {Value("425 Grant Ave")});
  ASSERT_TRUE(dropped.ok());
  ASSERT_EQ(dropped.ValueOrDie().type, FrameType::kError);
  EXPECT_TRUE(dropped.ValueOrDie().error.IsKeyError());
}

// Satellite (c), live-socket half: hostile bytes get a typed error and
// a clean close; the server survives and keeps serving new sessions.
TEST(Server, HostileBytesCloseConnectionCleanly) {
  TestServer ts;

  {
    // An HTTP request's first bytes decode as an absurd length prefix.
    auto victim = ts.Connect();
    ASSERT_TRUE(victim->SendRaw("GET / HTTP/1.1\r\nHost: x\r\n\r\n").ok());
    auto resp = victim->ReceiveAny();
    ASSERT_TRUE(resp.ok()) << resp.status().ToString();
    EXPECT_EQ(resp.ValueOrDie().type, FrameType::kError);
    // The server closes after flushing the error.
    auto eof = victim->ReceiveAny();
    EXPECT_FALSE(eof.ok());
  }
  {
    // A CRC flip is a typed corruption error.
    auto victim = ts.Connect();
    std::string ping = server::EncodePing(5);
    ping[ping.size() - 1] =
        static_cast<char>(ping[ping.size() - 1] ^ 0x20);
    ASSERT_TRUE(victim->SendRaw(ping).ok());
    auto resp = victim->ReceiveAny();
    ASSERT_TRUE(resp.ok()) << resp.status().ToString();
    ASSERT_EQ(resp.ValueOrDie().type, FrameType::kError);
    EXPECT_TRUE(resp.ValueOrDie().error.IsCorruption())
        << resp.ValueOrDie().error.ToString();
    EXPECT_FALSE(victim->ReceiveAny().ok());
  }

  // The server is unharmed.
  auto fresh = ts.Connect();
  EXPECT_TRUE(fresh->Ping().ok());
  EXPECT_GE(ts.srv->GetStats().protocol_errors, 2u);
}

// Satellite (c), fuzz half: seeded garbage blasted at raw sockets (no
// handshake) never crashes or wedges the server.
TEST(Server, SeededSocketFuzzLoop) {
  TestServer ts;
  std::mt19937 rng(0xFADEu);
  for (int iter = 0; iter < 30; ++iter) {
    int fd = socket(AF_INET, SOCK_STREAM, 0);
    ASSERT_GE(fd, 0);
    sockaddr_in addr;
    memset(&addr, 0, sizeof addr);
    addr.sin_family = AF_INET;
    addr.sin_port = htons(ts.srv->port());
    ASSERT_EQ(inet_pton(AF_INET, "127.0.0.1", &addr.sin_addr), 1);
    ASSERT_EQ(connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof addr),
              0);
    size_t len = 1 + rng() % 128;
    std::string garbage(len, '\0');
    for (char& c : garbage) c = static_cast<char>(rng());
    (void)send(fd, garbage.data(), garbage.size(), MSG_NOSIGNAL);
    close(fd);
  }
  // Still serving after the storm.
  auto client = ts.Connect();
  EXPECT_TRUE(client->Ping().ok());
  auto count = client->Execute("SELECT COUNT(*) FROM R;");
  ASSERT_TRUE(count.ok()) << count.status().ToString();
  EXPECT_EQ(count.ValueOrDie().count, 7u);
}

// The acceptance's directed starvation test: a heavy-analytic flood
// saturating the heavy lane cannot keep point statements from
// answering well within their timeout.
TEST(Server, HeavyFloodDoesNotStarvePointQueries) {
  server::ServerOptions options;
  options.point_workers = 1;
  options.heavy_workers = 1;
  options.statement_timeout_ms = 30'000;
  TestServer ts(options, /*with_big_table=*/true);

  auto flooder = ts.Connect();
  std::vector<uint64_t> flood_ids;
  std::string flood;
  for (int i = 0; i < 48; ++i) {
    flood_ids.push_back(flooder->NextRequestId());
    flood += server::EncodeExecute(flood_ids.back(),
                                   "SELECT K, COUNT(*) FROM B GROUP BY K;");
  }
  ASSERT_TRUE(flooder->SendRaw(flood).ok());

  // While the heavy lane chews, point statements keep flowing.
  auto pointer = ts.Connect();
  auto t0 = std::chrono::steady_clock::now();
  for (int i = 0; i < 10; ++i) {
    auto resp = pointer->Execute(
        "SELECT COUNT(*) FROM R WHERE Employee = 'Jones';");
    ASSERT_TRUE(resp.ok()) << resp.status().ToString();
    ASSERT_EQ(resp.ValueOrDie().type, FrameType::kResultCount)
        << server::FormatWireResponse(resp.ValueOrDie());
    EXPECT_EQ(resp.ValueOrDie().count, 3u);
  }
  double point_ms = std::chrono::duration<double, std::milli>(
                        std::chrono::steady_clock::now() - t0)
                        .count();
  EXPECT_LT(point_ms, 10'000.0)
      << "point statements queued behind the heavy flood";

  for (uint64_t id : flood_ids) {
    auto resp = flooder->ReceiveFor(id);
    ASSERT_TRUE(resp.ok()) << resp.status().ToString();
    EXPECT_EQ(resp.ValueOrDie().type, FrameType::kResultGroups)
        << server::FormatWireResponse(resp.ValueOrDie());
  }
  EXPECT_EQ(ts.srv->GetStats().statements_timed_out, 0u);
  EXPECT_GE(ts.srv->GetStats().admission.heavy.submitted, 48u);
}

// Statements still queued past their deadline answer kTimedOut instead
// of executing late.
TEST(Server, QueuedStatementsTimeOut) {
  server::ServerOptions options;
  options.point_workers = 1;
  options.heavy_workers = 1;
  options.max_batch = 1;
  options.statement_timeout_ms = 1;
  TestServer ts(options, /*with_big_table=*/true);

  auto client = ts.Connect();
  std::vector<uint64_t> ids;
  std::string out;
  for (int i = 0; i < 60; ++i) {
    ids.push_back(client->NextRequestId());
    out += server::EncodeExecute(ids.back(),
                                 "SELECT K, COUNT(*) FROM B GROUP BY K;");
  }
  ASSERT_TRUE(client->SendRaw(out).ok());

  int timed_out = 0;
  for (uint64_t id : ids) {
    auto resp = client->ReceiveFor(id);
    ASSERT_TRUE(resp.ok()) << resp.status().ToString();
    if (resp.ValueOrDie().type == FrameType::kError) {
      EXPECT_TRUE(resp.ValueOrDie().error.IsTimedOut())
          << resp.ValueOrDie().error.ToString();
      ++timed_out;
    }
  }
  EXPECT_GT(timed_out, 0) << "1ms deadline never fired across 60 queued "
                             "heavy statements";
  EXPECT_EQ(ts.srv->GetStats().statements_timed_out,
            static_cast<uint64_t>(timed_out));
}

// Graceful shutdown: every admitted statement executes, every response
// flushes, and an acked SMO is crash-durable across reopen.
TEST(Server, GracefulShutdownDrainsAndPersistsAckedCommits) {
  std::string dir = ::testing::TempDir() + "cods_server_shutdown";
  std::error_code ec;
  std::filesystem::remove_all(dir, ec);
  Env* env = Env::Default();

  auto db = DurableDb::Open(env, dir);
  ASSERT_TRUE(db.ok()) << db.status().ToString();
  server::ServerOptions options;
  auto srv = std::make_unique<server::Server>(db.ValueOrDie().get(), options);
  ASSERT_TRUE(srv->Start().ok());

  auto client = Client::Connect("127.0.0.1", srv->port());
  ASSERT_TRUE(client.ok()) << client.status().ToString();
  Client* c = client.ValueOrDie().get();

  // An acked SMO: by the time the response arrives, the WAL commit has
  // been fsync'd (DurableDb's contract), so shutdown must not lose it.
  auto created = c->Execute("CREATE TABLE Durable (a INT64, b STRING);");
  ASSERT_TRUE(created.ok()) << created.status().ToString();
  ASSERT_EQ(created.ValueOrDie().type, FrameType::kResultOk)
      << server::FormatWireResponse(created.ValueOrDie());

  // Pipeline statements, wait until all are admitted, then shut down:
  // drain must answer every one of them before the socket closes.
  std::vector<uint64_t> ids;
  std::string out;
  for (int i = 0; i < 8; ++i) {
    ids.push_back(c->NextRequestId());
    out +=
        server::EncodeExecute(ids.back(), "SELECT COUNT(*) FROM Durable;");
  }
  ASSERT_TRUE(c->SendRaw(out).ok());
  for (int spin = 0; spin < 1000; ++spin) {
    server::AdmissionStats stats = srv->GetStats().admission;
    if (stats.point.submitted + stats.heavy.submitted >= 9) break;
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  srv->Shutdown();
  for (uint64_t id : ids) {
    auto resp = c->ReceiveFor(id);
    ASSERT_TRUE(resp.ok()) << resp.status().ToString();
    ASSERT_EQ(resp.ValueOrDie().type, FrameType::kResultCount)
        << server::FormatWireResponse(resp.ValueOrDie());
    EXPECT_EQ(resp.ValueOrDie().count, 0u);  // Durable is empty
  }
  c->Close();
  srv.reset();

  // Reopen: the acked commit survived.
  db = DurableDb::Open(env, dir);
  ASSERT_TRUE(db.ok()) << db.status().ToString();
  EXPECT_TRUE(
      db.ValueOrDie()->GetSnapshot().root().HasTable("Durable"));
}

}  // namespace
}  // namespace cods

// Tests for recursive multi-way decomposition.

#include "evolution/multi_decompose.h"

#include "evolution/merge.h"
#include "gtest/gtest.h"
#include "test_util.h"

namespace cods {
namespace {

using ::cods::testing::ExpectSameContent;
using ::cods::testing::MakeTable;

// R(OrderId, Product, Category, Region, RegionManager): Product →
// Category and Region → RegionManager, so R splits three ways.
std::shared_ptr<const Table> WideTable() {
  Schema schema({{"OrderId", DataType::kInt64, false},
                 {"Product", DataType::kInt64, false},
                 {"Category", DataType::kInt64, false},
                 {"Region", DataType::kInt64, false},
                 {"Manager", DataType::kString, false}},
                {"OrderId"});
  std::vector<Row> rows;
  for (int64_t i = 0; i < 200; ++i) {
    int64_t product = i % 20;
    int64_t region = i % 4;
    rows.push_back({Value(i), Value(product), Value(product / 5),
                    Value(region),
                    Value("mgr" + std::to_string(region))});
  }
  return MakeTable("R", schema, rows);
}

TEST(MultiDecompose, ThreeWaySplit) {
  auto r = WideTable();
  auto result =
      CodsDecomposeMulti(
          *r, {{"Facts", {"OrderId", "Product", "Region"}, {"OrderId"}},
               {"Products", {"Product", "Category"}, {"Product"}},
               {"Regions", {"Region", "Manager"}, {"Region"}}})
          .ValueOrDie();
  ASSERT_EQ(result.size(), 3u);
  EXPECT_EQ(result[0]->name(), "Facts");
  EXPECT_EQ(result[0]->rows(), 200u);
  EXPECT_EQ(result[1]->name(), "Products");
  EXPECT_EQ(result[1]->rows(), 20u);
  EXPECT_EQ(result[2]->name(), "Regions");
  EXPECT_EQ(result[2]->rows(), 4u);
  for (const auto& t : result) {
    EXPECT_TRUE(t->ValidateInvariants().ok()) << t->name();
  }
  // The fact side reuses R's columns by pointer.
  EXPECT_EQ(result[0]->ColumnByName("OrderId").ValueOrDie().get(),
            r->ColumnByName("OrderId").ValueOrDie().get());
}

TEST(MultiDecompose, MergingBackRestoresR) {
  auto r = WideTable();
  auto result =
      CodsDecomposeMulti(
          *r, {{"Facts", {"OrderId", "Product", "Region"}, {"OrderId"}},
               {"Products", {"Product", "Category"}, {"Product"}},
               {"Regions", {"Region", "Manager"}, {"Region"}}})
          .ValueOrDie();
  // Reassemble: Facts ⋈ Products ⋈ Regions.
  auto step1 = CodsMerge(*result[0], *result[1], {"Product"}, {"OrderId"},
                         "tmp")
                   .ValueOrDie();
  auto step2 = CodsMerge(*step1.table, *result[2], {"Region"}, {"OrderId"},
                         "R2")
                   .ValueOrDie();
  // Column order differs from R; compare projected onto R's order.
  ASSERT_EQ(step2.table->rows(), r->rows());
  std::vector<Row> expected = r->Materialize();
  std::vector<Row> actual;
  for (const Row& row : step2.table->Materialize()) {
    // step2 columns: OrderId, Product, Region, Category, Manager.
    actual.push_back({row[0], row[1], row[3], row[2], row[4]});
  }
  std::sort(expected.begin(), expected.end(), RowLess);
  std::sort(actual.begin(), actual.end(), RowLess);
  EXPECT_EQ(actual, expected);
}

TEST(MultiDecompose, RejectsBadSpecs) {
  auto r = WideTable();
  // Fewer than two outputs.
  EXPECT_FALSE(
      CodsDecomposeMulti(*r, {{"A", {"OrderId"}, {}}}).ok());
  // Missing coverage (Manager nowhere).
  EXPECT_TRUE(CodsDecomposeMulti(
                  *r, {{"Facts", {"OrderId", "Product", "Region"}, {}},
                       {"Products", {"Product", "Category"}, {"Product"}}})
                  .status()
                  .IsConstraintViolation());
  // Output sharing nothing with the rest.
  EXPECT_FALSE(
      CodsDecomposeMulti(
          *r,
          {{"Facts", {"OrderId", "Product", "Category", "Region"}, {}},
           {"Lonely", {"Manager"}, {"Manager"}}})
          .ok());
}

TEST(MultiDecompose, TwoWayMatchesBinaryDecompose) {
  auto r = testing::Figure1TableR();
  auto multi = CodsDecomposeMulti(
                   *r, {{"S", {"Employee", "Skill"}, {}},
                        {"T", {"Employee", "Address"}, {"Employee"}}})
                   .ValueOrDie();
  auto binary = CodsDecompose(*r, "S", {"Employee", "Skill"}, {}, "T",
                              {"Employee", "Address"}, {"Employee"})
                    .ValueOrDie();
  ExpectSameContent(*multi[0], *binary.s);
  ExpectSameContent(*multi[1], *binary.t);
}

}  // namespace
}  // namespace cods

// Tests for the parallel execution layer: ThreadPool, ExecContext
// resolution, ParallelFor scheduling / error aggregation / nesting, and
// the chunked parallel bitmap builder. The threading-heavy cases double
// as the TSan stress suite (the CI tsan job runs the whole ctest list).

#include <atomic>
#include <condition_variable>
#include <mutex>
#include <numeric>
#include <vector>

#include "common/logging.h"
#include "exec/exec.h"
#include "exec/parallel_build.h"
#include "exec/thread_pool.h"
#include "gtest/gtest.h"

namespace cods {
namespace {

TEST(ThreadPoolTest, RunsSubmittedTasks) {
  ThreadPool pool(3);
  EXPECT_EQ(pool.num_threads(), 3);
  constexpr int kTasks = 100;
  std::atomic<int> done{0};
  std::mutex mu;
  std::condition_variable cv;
  for (int i = 0; i < kTasks; ++i) {
    pool.Submit([&] {
      if (done.fetch_add(1) + 1 == kTasks) {
        std::lock_guard<std::mutex> lock(mu);
        cv.notify_all();
      }
    });
  }
  std::unique_lock<std::mutex> lock(mu);
  cv.wait(lock, [&] { return done.load() == kTasks; });
  EXPECT_EQ(done.load(), kTasks);
}

TEST(ThreadPoolTest, EnsureThreadsGrows) {
  ThreadPool pool(1);
  pool.EnsureThreads(4);
  EXPECT_EQ(pool.num_threads(), 4);
  pool.EnsureThreads(2);  // never shrinks
  EXPECT_EQ(pool.num_threads(), 4);
}

TEST(ExecContextTest, ExplicitThreadCount) {
  EXPECT_EQ(ExecContext(5).num_threads(), 5);
  EXPECT_TRUE(ExecContext(1).serial());
  EXPECT_FALSE(ExecContext(2).serial());
}

TEST(ExecContextTest, DefaultOverride) {
  SetDefaultThreads(3);
  EXPECT_EQ(ExecContext().num_threads(), 3);
  EXPECT_EQ(ResolveContext(nullptr).num_threads(), 3);
  ExecContext two(2);
  EXPECT_EQ(ResolveContext(&two).num_threads(), 2);
  SetDefaultThreads(0);
  EXPECT_GE(ExecContext().num_threads(), 1);
}

void CheckCoversAllIndices(int threads, uint64_t n, uint64_t grain) {
  ExecContext ctx(threads);
  std::vector<int> hits(n, 0);
  Status st = ParallelFor(ctx, 0, n, grain, [&](uint64_t i) {
    ++hits[i];
    return Status::OK();
  });
  ASSERT_TRUE(st.ok()) << st.ToString();
  for (uint64_t i = 0; i < n; ++i) {
    EXPECT_EQ(hits[i], 1) << "index " << i;
  }
}

TEST(ParallelForTest, CoversEveryIndexExactlyOnce) {
  for (int threads : {1, 2, 8}) {
    for (uint64_t n : {0ull, 1ull, 7ull, 64ull, 1000ull}) {
      for (uint64_t grain : {1ull, 3ull, 64ull, 10000ull}) {
        CheckCoversAllIndices(threads, n, grain);
      }
    }
  }
}

TEST(ParallelForTest, ChunkedSeesContiguousDisjointRanges) {
  ExecContext ctx(4);
  constexpr uint64_t kN = 1000;
  std::vector<int> hits(kN, 0);
  std::atomic<int> chunks{0};
  Status st = ParallelForChunked(
      ctx, 0, kN, 10, [&](uint64_t lo, uint64_t hi) {
        EXPECT_LT(lo, hi);
        for (uint64_t i = lo; i < hi; ++i) ++hits[i];
        chunks.fetch_add(1);
        return Status::OK();
      });
  ASSERT_TRUE(st.ok());
  EXPECT_GT(chunks.load(), 1);
  for (uint64_t i = 0; i < kN; ++i) EXPECT_EQ(hits[i], 1);
}

TEST(ParallelForTest, ReturnsFirstErrorInIndexOrder) {
  // Every chunk runs; the Status of the lowest failing index wins, no
  // matter which worker finishes first.
  for (int threads : {1, 2, 8}) {
    ExecContext ctx(threads);
    std::atomic<uint64_t> ran{0};
    Status st = ParallelFor(ctx, 0, 100, 1, [&](uint64_t i) -> Status {
      ran.fetch_add(1);
      if (i == 7 || i == 93) {
        return Status::InvalidArgument("boom at " + std::to_string(i));
      }
      return Status::OK();
    });
    EXPECT_FALSE(st.ok());
    EXPECT_EQ(st.message(), "boom at 7") << "threads=" << threads;
    if (threads == 1) {
      // Serial fallback short-circuits after the first failure.
      EXPECT_EQ(ran.load(), 8u);
    } else {
      // Parallel: every chunk runs (only the failing chunk stops at its
      // first error), so indices well past the failure were visited.
      EXPECT_GT(ran.load(), 50u);
    }
  }
}

TEST(ParallelForTest, NestedParallelForDoesNotDeadlock) {
  ExecContext ctx(4);
  constexpr uint64_t kOuter = 16;
  constexpr uint64_t kInner = 64;
  std::vector<uint64_t> sums(kOuter, 0);
  Status st = ParallelFor(ctx, 0, kOuter, 1, [&](uint64_t o) -> Status {
    std::vector<uint64_t> inner(kInner, 0);
    CODS_RETURN_NOT_OK(ParallelFor(ctx, 0, kInner, 4, [&](uint64_t i) {
      inner[i] = o * 1000 + i;
      return Status::OK();
    }));
    sums[o] = std::accumulate(inner.begin(), inner.end(), uint64_t{0});
    return Status::OK();
  });
  ASSERT_TRUE(st.ok()) << st.ToString();
  for (uint64_t o = 0; o < kOuter; ++o) {
    EXPECT_EQ(sums[o], o * 1000 * kInner + kInner * (kInner - 1) / 2);
  }
}

TEST(ParallelForTest, NestedErrorPropagatesThroughOuterRegion) {
  ExecContext ctx(8);
  Status st = ParallelFor(ctx, 0, 8, 1, [&](uint64_t o) -> Status {
    return ParallelFor(ctx, 0, 32, 1, [&](uint64_t i) -> Status {
      if (o == 3 && i == 17) return Status::IOError("inner failure");
      return Status::OK();
    });
  });
  EXPECT_FALSE(st.ok());
  EXPECT_TRUE(st.IsIOError());
  EXPECT_EQ(st.message(), "inner failure");
}

TEST(ParallelForTest, RepeatedRegionsStress) {
  // Many short regions back to back: exercises pool task recycling and
  // the completion handshake under contention (TSan food).
  ExecContext ctx(8);
  for (int round = 0; round < 200; ++round) {
    std::atomic<uint64_t> sum{0};
    Status st = ParallelForChunked(ctx, 0, 64, 1, [&](uint64_t lo,
                                                      uint64_t hi) {
      uint64_t local = 0;
      for (uint64_t i = lo; i < hi; ++i) local += i;
      sum.fetch_add(local, std::memory_order_relaxed);
      return Status::OK();
    });
    ASSERT_TRUE(st.ok());
    ASSERT_EQ(sum.load(), 64u * 63 / 2);
  }
}

std::vector<Vid> RandomVids(uint64_t rows, Vid num_values, uint64_t seed) {
  std::vector<Vid> vids(rows);
  uint64_t state = seed;
  for (uint64_t r = 0; r < rows; ++r) {
    state = state * 6364136223846793005ull + 1442695040888963407ull;
    // Mix of short runs and scattered values.
    vids[r] = (state >> 33) % 4 == 0 ? vids[r > 0 ? r - 1 : 0]
                                     : static_cast<Vid>((state >> 17) %
                                                        num_values);
  }
  return vids;
}

TEST(ParallelBuildTest, MatchesSerialBitForBit) {
  constexpr uint64_t kRows = 40'000;
  constexpr Vid kValues = 97;
  std::vector<Vid> vids = RandomVids(kRows, kValues, 4242);
  ExecContext serial(1);
  std::vector<WahBitmap> reference =
      BuildValueBitmaps(serial, vids.data(), kRows, kValues);
  ASSERT_EQ(reference.size(), kValues);
  uint64_t ones = 0;
  for (const WahBitmap& bm : reference) {
    ASSERT_EQ(bm.size(), kRows);
    ones += bm.CountOnes();
  }
  EXPECT_EQ(ones, kRows);
  for (int threads : {2, 3, 8}) {
    ExecContext ctx(threads);
    std::vector<WahBitmap> parallel =
        BuildValueBitmaps(ctx, vids.data(), kRows, kValues);
    ASSERT_EQ(parallel.size(), reference.size());
    for (Vid v = 0; v < kValues; ++v) {
      EXPECT_TRUE(parallel[v] == reference[v])
          << "vid " << v << " differs at threads=" << threads;
    }
  }
}

TEST(ParallelBuildTest, TinyAndEmptyInputs) {
  ExecContext ctx(8);
  std::vector<WahBitmap> empty = BuildValueBitmaps(ctx, nullptr, 0, 5);
  ASSERT_EQ(empty.size(), 5u);
  for (const WahBitmap& bm : empty) EXPECT_EQ(bm.size(), 0u);
  std::vector<Vid> one{3};
  std::vector<WahBitmap> tiny = BuildValueBitmaps(ctx, one.data(), 1, 5);
  ASSERT_EQ(tiny.size(), 5u);
  EXPECT_TRUE(tiny[3].Get(0));
  EXPECT_EQ(tiny[2].CountOnes(), 0u);
}

TEST(LoggingTest, ConcurrentLoggingIsSerialized) {
  // Worker threads log through the sink; whole lines must arrive one at
  // a time (the mutex in the sink path). Counting via an atomic keeps
  // the test sink trivially reentrant-free.
  static std::atomic<int> lines{0};
  SetLogSink([](LogLevel, const char*) { lines.fetch_add(1); });
  ExecContext ctx(8);
  Status st = ParallelFor(ctx, 0, 64, 1, [&](uint64_t i) {
    CODS_LOG(Info) << "worker line " << i;
    return Status::OK();
  });
  SetLogSink(nullptr);
  ASSERT_TRUE(st.ok());
  EXPECT_EQ(lines.load(), 64);
}

}  // namespace
}  // namespace cods

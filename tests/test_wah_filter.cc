// Tests for position-list filtering on compressed bitmaps — the
// "bitmap filtering" primitive of the decomposition operator.

#include "bitmap/wah_filter.h"

#include "common/random.h"
#include "gtest/gtest.h"

namespace cods {
namespace {

WahBitmap RandomWah(uint64_t size, double density, uint64_t seed) {
  Rng rng(seed);
  WahBitmap bm;
  for (uint64_t i = 0; i < size; ++i) bm.AppendBit(rng.NextBool(density));
  return bm;
}

TEST(WahFilter, EmptyPositionList) {
  WahBitmap src = RandomWah(1000, 0.5, 1);
  WahBitmap out = WahFilterPositions(src, {});
  EXPECT_EQ(out.size(), 0u);
}

TEST(WahFilter, SingletonPositions) {
  WahBitmap src = WahBitmap::FromPositions({10, 20}, 100);
  EXPECT_EQ(WahFilterPositions(src, {10}).SetPositions(),
            (std::vector<uint64_t>{0}));
  EXPECT_EQ(WahFilterPositions(src, {11}).CountOnes(), 0u);
  EXPECT_EQ(WahFilterPositions(src, {99}).CountOnes(), 0u);
}

TEST(WahFilter, IdentityWhenAllPositionsTaken) {
  WahBitmap src = RandomWah(500, 0.3, 2);
  std::vector<uint64_t> all(500);
  for (uint64_t i = 0; i < 500; ++i) all[i] = i;
  EXPECT_EQ(WahFilterPositions(src, all), src);
}

TEST(WahFilter, PicksBitsInsideFills) {
  WahBitmap src;
  src.AppendRun(false, 1000);
  src.AppendRun(true, 1000);
  src.AppendRun(false, 1000);
  WahBitmap out = WahFilterPositions(src, {500, 1500, 2500});
  EXPECT_EQ(out.ToBools(), (std::vector<bool>{false, true, false}));
}

TEST(WahFilter, OutputLengthEqualsPositionCount) {
  WahBitmap src = RandomWah(10000, 0.01, 3);
  std::vector<uint64_t> positions;
  for (uint64_t i = 0; i < 10000; i += 7) positions.push_back(i);
  WahBitmap out = WahFilterPositions(src, positions);
  EXPECT_EQ(out.size(), positions.size());
}

TEST(WahFilterDeath, PositionPastEndIsFatal) {
  WahBitmap src = RandomWah(100, 0.5, 4);
  EXPECT_DEATH(WahFilterPositions(src, {100}), "past the bitmap");
}

TEST(WahGather, UnsortedPositionsAllowed) {
  WahBitmap src = WahBitmap::FromPositions({1, 3, 5}, 10);
  WahBitmap out = WahGatherPositions(src, {5, 0, 1, 1, 3});
  EXPECT_EQ(out.ToBools(),
            (std::vector<bool>{true, false, true, true, true}));
}

TEST(WahGather, SortedInputMatchesFilter) {
  WahBitmap src = RandomWah(5000, 0.2, 5);
  std::vector<uint64_t> positions;
  for (uint64_t i = 3; i < 5000; i += 11) positions.push_back(i);
  EXPECT_EQ(WahGatherPositions(src, positions),
            WahFilterPositions(src, positions));
}

TEST(WahPositionFilter, ContainsAndRank) {
  std::vector<uint64_t> positions = {0, 5, 63, 64, 999};
  WahPositionFilter filter(positions, 1000);
  EXPECT_EQ(filter.num_positions(), 5u);
  for (size_t i = 0; i < positions.size(); ++i) {
    EXPECT_TRUE(filter.Contains(positions[i]));
    EXPECT_EQ(filter.Rank(positions[i]), i);
  }
  EXPECT_FALSE(filter.Contains(1));
  EXPECT_FALSE(filter.Contains(998));
}

TEST(WahPositionFilter, MatchesStreamingFilter) {
  Rng rng(31);
  WahBitmap src = RandomWah(20000, 0.15, 6);
  std::vector<uint64_t> positions;
  for (uint64_t i = 0; i < 20000; ++i) {
    if (rng.NextBool(0.1)) positions.push_back(i);
  }
  WahPositionFilter filter(positions, 20000);
  EXPECT_EQ(filter.Filter(src), WahFilterPositions(src, positions));
}

TEST(WahPositionFilter, EmptyPositionList) {
  WahPositionFilter filter({}, 100);
  WahBitmap src = RandomWah(100, 0.5, 7);
  EXPECT_EQ(filter.Filter(src).size(), 0u);
}

TEST(WahPositionFilterDeath, DomainMismatchIsFatal) {
  WahPositionFilter filter({1}, 10);
  WahBitmap src = RandomWah(11, 0.5, 8);
  EXPECT_DEATH(filter.Filter(src), "filter domain");
  EXPECT_DEATH(WahPositionFilter({10}, 10), "outside domain");
}

// ---- Property sweep: filter output must equal naive per-position reads.

struct FilterParam {
  uint64_t size;
  double density;
  uint64_t stride;
};

class WahFilterProperty : public ::testing::TestWithParam<FilterParam> {};

TEST_P(WahFilterProperty, MatchesNaiveGather) {
  const FilterParam p = GetParam();
  WahBitmap src = RandomWah(p.size, p.density, p.size + p.stride);
  Rng rng(p.size * 3 + 1);
  std::vector<uint64_t> positions;
  for (uint64_t i = rng.Uniform(0, static_cast<int64_t>(p.stride));
       i < p.size; i += p.stride) {
    positions.push_back(i);
  }
  WahBitmap out = WahFilterPositions(src, positions);
  ASSERT_EQ(out.size(), positions.size());
  std::vector<bool> expected;
  expected.reserve(positions.size());
  for (uint64_t pos : positions) expected.push_back(src.Get(pos));
  EXPECT_EQ(out.ToBools(), expected);
}

INSTANTIATE_TEST_SUITE_P(
    Grid, WahFilterProperty,
    ::testing::Values(FilterParam{100, 0.5, 1}, FilterParam{1000, 0.5, 3},
                      FilterParam{1000, 0.01, 2}, FilterParam{1000, 0.99, 7},
                      FilterParam{63 * 100, 0.0, 5},
                      FilterParam{63 * 100, 1.0, 5},
                      FilterParam{50000, 0.001, 13},
                      FilterParam{50000, 0.3, 63},
                      FilterParam{50000, 0.5, 1000}),
    [](const ::testing::TestParamInfo<FilterParam>& info) {
      return "n" + std::to_string(info.param.size) + "_d" +
             std::to_string(static_cast<int>(info.param.density * 1000)) +
             "_s" + std::to_string(info.param.stride);
    });

}  // namespace
}  // namespace cods

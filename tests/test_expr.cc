// Tests for the composable predicate AST: construction, rendering,
// normalization (De Morgan push-down, comparison negation, same-kind
// flattening), and compressed-domain evaluation checked against a naive
// row-at-a-time oracle.

#include "query/expr.h"
#include "storage/value_compare.h"

#include <cmath>

#include "bitmap/wah_ops.h"
#include "gtest/gtest.h"
#include "test_util.h"
#include "workload/generator.h"

namespace cods {
namespace {

using ::cods::testing::Figure1TableR;
using ::cods::testing::MakeTable;

// Row-at-a-time oracle for arbitrary trees (the slow path the AST
// replaces).
bool NaiveMatches(const Expr& e, const Row& row, const Schema& schema) {
  switch (e.kind) {
    case ExprKind::kCompare:
    case ExprKind::kIn:
    case ExprKind::kBetween: {
      size_t idx = schema.ColumnIndex(e.column).ValueOrDie();
      return e.LeafMatches(row[idx]);
    }
    case ExprKind::kNot:
      return !NaiveMatches(*e.children[0], row, schema);
    case ExprKind::kAnd:
      for (const ExprPtr& c : e.children) {
        if (!NaiveMatches(*c, row, schema)) return false;
      }
      return true;
    case ExprKind::kOr:
      for (const ExprPtr& c : e.children) {
        if (NaiveMatches(*c, row, schema)) return true;
      }
      return false;
  }
  return false;
}

void ExpectAgreesWithNaive(const Table& table, const ExprPtr& expr) {
  auto bm = EvalExpr(table, expr);
  ASSERT_TRUE(bm.ok()) << bm.status().ToString();
  std::vector<uint64_t> selected = bm->SetPositions();
  std::vector<Row> rows = table.Materialize();
  std::vector<uint64_t> naive;
  for (uint64_t r = 0; r < rows.size(); ++r) {
    if (NaiveMatches(*expr, rows[r], table.schema())) naive.push_back(r);
  }
  EXPECT_EQ(selected, naive) << expr->ToString();
  // The count-only path must agree with the materialized one.
  auto count = EvalExprCount(table, expr);
  ASSERT_TRUE(count.ok());
  EXPECT_EQ(*count, naive.size()) << expr->ToString();
}

TEST(Expr, LeafKinds) {
  auto r = Figure1TableR();
  ExpectAgreesWithNaive(
      *r, Expr::Compare("Employee", CompareOp::kEq, Value("Jones")));
  ExpectAgreesWithNaive(
      *r, Expr::In("Employee", {Value("Ellis"), Value("Roberts")}));
  ExpectAgreesWithNaive(*r,
                        Expr::Between("Employee", Value("E"), Value("K")));
}

TEST(Expr, NestedBooleanStructure) {
  auto r = Figure1TableR();
  // a = 'x' AND (b > 3 OR NOT c IN (...)) — the acceptance shape.
  ExpectAgreesWithNaive(
      *r,
      Expr::And({Expr::Compare("Address", CompareOp::kEq,
                               Value("425 Grant Ave")),
                 Expr::Or({Expr::Compare("Skill", CompareOp::kGt,
                                         Value("Typing")),
                           Expr::Not(Expr::In(
                               "Employee",
                               {Value("Jones"), Value("Harrison")}))})}));
  // Deep alternation with double negation.
  ExpectAgreesWithNaive(
      *r, Expr::Not(Expr::Or(
              {Expr::Not(Expr::Compare("Employee", CompareOp::kNe,
                                       Value("Ellis"))),
               Expr::And({Expr::Compare("Skill", CompareOp::kLt,
                                        Value("Juggling")),
                          Expr::Not(Expr::Between("Address", Value("4"),
                                                  Value("5")))})})));
}

TEST(Expr, ToStringRendersGrammar) {
  ExprPtr e = Expr::And(
      {Expr::Compare("a", CompareOp::kEq, Value("x")),
       Expr::Or({Expr::Compare("b", CompareOp::kGt, Value(int64_t{3})),
                 Expr::Not(Expr::In("c", {Value(int64_t{1}),
                                          Value(int64_t{2})}))})});
  EXPECT_EQ(e->ToString(), "a = 'x' AND (b > 3 OR NOT c IN (1, 2))");
  EXPECT_EQ(Expr::Between("x", Value(1.5), Value(int64_t{9}))->ToString(),
            "x BETWEEN 1.5 AND 9");
  EXPECT_EQ(Expr::Not(Expr::And({Expr::Compare("a", CompareOp::kLe,
                                               Value(int64_t{0})),
                                 Expr::Compare("b", CompareOp::kGe,
                                               Value(int64_t{0}))}))
                ->ToString(),
            "NOT (a <= 0 AND b >= 0)");
}

TEST(Expr, NormalizePushesNotThroughDeMorgan) {
  // NOT (a = 1 AND b = 2)  =>  a != 1 OR b != 2 (comparisons absorb).
  ExprPtr e = Expr::Not(
      Expr::And({Expr::Compare("a", CompareOp::kEq, Value(int64_t{1})),
                 Expr::Compare("b", CompareOp::kEq, Value(int64_t{2}))}));
  ExprPtr n = NormalizeExpr(e);
  EXPECT_EQ(n->ToString(), "a != 1 OR b != 2");
  // Double NOT cancels.
  EXPECT_EQ(NormalizeExpr(Expr::Not(Expr::Not(
                              Expr::Compare("a", CompareOp::kLt,
                                            Value(int64_t{5})))))
                ->ToString(),
            "a < 5");
  // NOT over IN survives as a residual complement above the leaf.
  ExprPtr not_in = NormalizeExpr(
      Expr::Not(Expr::In("c", {Value(int64_t{1})})));
  EXPECT_EQ(not_in->kind, ExprKind::kNot);
  EXPECT_EQ(not_in->children[0]->kind, ExprKind::kIn);
}

TEST(Expr, NormalizeFlattensSameKindChildren) {
  // (a AND (b AND c)) AND d  =>  one 4-way AND feeding one k-way kernel.
  auto leaf = [](const char* col) {
    return Expr::Compare(col, CompareOp::kEq, Value(int64_t{0}));
  };
  ExprPtr nested = Expr::And(
      {Expr::And({leaf("a"), Expr::And({leaf("b"), leaf("c")})}), leaf("d")});
  ExprPtr flat = NormalizeExpr(nested);
  EXPECT_EQ(flat->kind, ExprKind::kAnd);
  EXPECT_EQ(flat->children.size(), 4u);
  // De Morgan exposes flattening across the flipped node too:
  // NOT (a OR (b OR c)) => AND of three negated leaves.
  ExprPtr flipped = NormalizeExpr(
      Expr::Not(Expr::Or({leaf("a"), Expr::Or({leaf("b"), leaf("c")})})));
  EXPECT_EQ(flipped->kind, ExprKind::kAnd);
  EXPECT_EQ(flipped->children.size(), 3u);
}

TEST(Expr, NormalizationPreservesSemantics) {
  auto r = Figure1TableR();
  ExprPtr e = Expr::Not(Expr::Or(
      {Expr::Compare("Employee", CompareOp::kEq, Value("Jones")),
       Expr::Not(Expr::And(
           {Expr::In("Skill", {Value("Alchemy"), Value("Juggling")}),
            Expr::Compare("Address", CompareOp::kGt, Value("5"))}))}));
  auto ref = EvalExpr(*r, e);
  auto norm = EvalExpr(*r, NormalizeExpr(e));
  ASSERT_TRUE(ref.ok() && norm.ok());
  EXPECT_TRUE(*ref == *norm);  // code-word identical (canonical form)
}

TEST(Expr, ExprEqualsComparesStructure) {
  ExprPtr a = Expr::And({Expr::Compare("a", CompareOp::kEq, Value("x")),
                         Expr::In("b", {Value(int64_t{1})})});
  ExprPtr b = Expr::And({Expr::Compare("a", CompareOp::kEq, Value("x")),
                         Expr::In("b", {Value(int64_t{1})})});
  ExprPtr c = Expr::And({Expr::Compare("a", CompareOp::kNe, Value("x")),
                         Expr::In("b", {Value(int64_t{1})})});
  EXPECT_TRUE(ExprEquals(*a, *b));
  EXPECT_FALSE(ExprEquals(*a, *c));
}

TEST(Expr, UnknownColumnErrorsAtBindTime) {
  auto r = Figure1TableR();
  auto result = EvalExpr(
      *r, Expr::And({Expr::Compare("Employee", CompareOp::kEq,
                                   Value("Jones")),
                     Expr::Compare("Nope", CompareOp::kEq, Value("x"))}));
  ASSERT_FALSE(result.ok());
  EXPECT_NE(result.status().message().find("Nope"), std::string::npos);
}

TEST(Expr, ComparisonNegationExactAcrossNumericTypes) {
  // EvalCompare derives every operator from the total Value order, so
  // int64 3 vs double 3.0 behaves numerically and NOT-lowering through
  // NegateCompareOp is exact even for cross-type literals.
  Value i3(int64_t{3}), d3(3.0);
  EXPECT_TRUE(EvalCompare(i3, CompareOp::kEq, d3));
  EXPECT_TRUE(EvalCompare(i3, CompareOp::kLe, d3));
  EXPECT_TRUE(EvalCompare(i3, CompareOp::kGe, d3));
  EXPECT_FALSE(EvalCompare(i3, CompareOp::kNe, d3));
  for (CompareOp op : {CompareOp::kEq, CompareOp::kNe, CompareOp::kLt,
                       CompareOp::kLe, CompareOp::kGt, CompareOp::kGe}) {
    for (const Value& lhs : {i3, d3, Value(2.5), Value(int64_t{4})}) {
      EXPECT_EQ(EvalCompare(lhs, NegateCompareOp(op), d3),
                !EvalCompare(lhs, op, d3))
          << CompareOpToString(op) << " on " << lhs.ToString();
    }
  }
  // End to end: NOT K < 3.0 on an int64 column keeps K = 3.
  Schema schema({{"K", DataType::kInt64, false}});
  std::vector<Row> rows;
  for (int64_t i = 0; i < 6; ++i) rows.push_back({Value(i)});
  auto t = MakeTable("T", schema, rows);
  auto count = EvalExprCount(
      *t, Expr::Not(Expr::Compare("K", CompareOp::kLt, Value(3.0))));
  ASSERT_TRUE(count.ok());
  EXPECT_EQ(*count, 3u);  // 3, 4, 5
}

TEST(Expr, NanOrdersTotallyAndEqualsOnlyItself) {
  // Value's order places NaN after every real number (IEEE `<` alone
  // would make NaN order-equal to everything and break both sorting
  // and complement lowering).
  const Value nan(std::nan(""));
  const Value five(5.0);
  EXPECT_FALSE(EvalCompare(nan, CompareOp::kEq, five));
  EXPECT_TRUE(EvalCompare(nan, CompareOp::kNe, five));
  EXPECT_TRUE(EvalCompare(nan, CompareOp::kGt, five));
  EXPECT_TRUE(EvalCompare(nan, CompareOp::kGt, Value(int64_t{5})));
  EXPECT_TRUE(EvalCompare(nan, CompareOp::kEq, nan));
  for (CompareOp op : {CompareOp::kEq, CompareOp::kNe, CompareOp::kLt,
                       CompareOp::kLe, CompareOp::kGt, CompareOp::kGe}) {
    EXPECT_EQ(EvalCompare(nan, NegateCompareOp(op), five),
              !EvalCompare(nan, op, five))
        << CompareOpToString(op);
  }
}

TEST(Expr, NotIsExactComplement) {
  auto r = Figure1TableR();
  ExprPtr inner = Expr::In("Employee", {Value("Jones"), Value("Ellis")});
  auto pos = EvalExpr(*r, inner);
  auto neg = EvalExpr(*r, Expr::Not(inner));
  ASSERT_TRUE(pos.ok() && neg.ok());
  EXPECT_EQ(pos->CountOnes() + neg->CountOnes(), r->rows());
  // Bit-level: the union is all rows, the intersection empty.
  EXPECT_EQ(WahAndCount(*pos, *neg), 0u);
}

// Property sweep on generated data: random-ish nested trees vs naive.
TEST(Expr, PropertySweepOnGeneratedTable) {
  WorkloadSpec spec;
  spec.num_rows = 5000;
  spec.num_distinct = 200;
  spec.payload_distinct = 40;
  spec.dependent_distinct = 12;
  auto r = GenerateEvolutionTable(spec).ValueOrDie();
  for (int64_t pivot : {int64_t{0}, int64_t{17}, int64_t{100}, int64_t{5000}}) {
    ExprPtr e = Expr::Or(
        {Expr::And({Expr::Compare(kKeyColumn, CompareOp::kLt, Value(pivot)),
                    Expr::Not(Expr::Compare(kPayloadColumn, CompareOp::kGe,
                                            Value(int64_t{20})))}),
         Expr::Between(kDependentColumn, Value(int64_t{3}),
                       Value(int64_t{7})),
         Expr::Not(Expr::In(kPayloadColumn,
                            {Value(int64_t{1}), Value(int64_t{2}),
                             Value(pivot)}))});
    ExpectAgreesWithNaive(*r, e);
  }
}

}  // namespace
}  // namespace cods

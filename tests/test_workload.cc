// Tests for the synthetic workload generator.

#include "workload/generator.h"

#include "evolution/fd.h"
#include "gtest/gtest.h"

namespace cods {
namespace {

TEST(Workload, ExactRowAndDistinctCounts) {
  WorkloadSpec spec;
  spec.num_rows = 5000;
  spec.num_distinct = 123;
  auto r = GenerateEvolutionTable(spec).ValueOrDie();
  EXPECT_EQ(r->rows(), 5000u);
  auto key_col = r->ColumnByName(kKeyColumn).ValueOrDie();
  EXPECT_EQ(key_col->distinct_count(), 123u);
  EXPECT_TRUE(r->ValidateInvariants().ok());
}

TEST(Workload, FdHoldsByConstruction) {
  WorkloadSpec spec;
  spec.num_rows = 2000;
  spec.num_distinct = 50;
  auto r = GenerateEvolutionTable(spec).ValueOrDie();
  EXPECT_TRUE(FunctionalDependencyHolds(*r, {kKeyColumn}, {kDependentColumn})
                  .ValueOrDie());
}

TEST(Workload, DeterministicForSeed) {
  WorkloadSpec spec;
  spec.num_rows = 500;
  spec.num_distinct = 20;
  auto a = GenerateEvolutionTable(spec).ValueOrDie();
  auto b = GenerateEvolutionTable(spec).ValueOrDie();
  EXPECT_EQ(a->Materialize(), b->Materialize());
  spec.seed = 43;
  auto c = GenerateEvolutionTable(spec).ValueOrDie();
  EXPECT_NE(a->Materialize(), c->Materialize());
}

TEST(Workload, StringVariant) {
  WorkloadSpec spec;
  spec.num_rows = 300;
  spec.num_distinct = 10;
  spec.integer_values = false;
  auto r = GenerateEvolutionTable(spec).ValueOrDie();
  EXPECT_EQ(r->schema().column(0).type, DataType::kString);
  EXPECT_TRUE(r->GetValue(0, 0).is_string());
}

TEST(Workload, ZipfSkewsKeyFrequencies) {
  WorkloadSpec spec;
  spec.num_rows = 20000;
  spec.num_distinct = 100;
  spec.zipf_s = 1.2;
  auto r = GenerateEvolutionTable(spec).ValueOrDie();
  auto key_col = r->ColumnByName(kKeyColumn).ValueOrDie();
  // Key 0 (hottest rank) must occur much more often than key 99.
  EXPECT_GT(key_col->ValueCount(0), key_col->ValueCount(99) * 3);
}

TEST(Workload, RejectsBadSpecs) {
  WorkloadSpec spec;
  spec.num_rows = 10;
  spec.num_distinct = 20;
  EXPECT_FALSE(GenerateEvolutionTable(spec).ok());
  spec.num_distinct = 0;
  EXPECT_FALSE(GenerateEvolutionTable(spec).ok());
}

TEST(Workload, MergePairIsConsistentWithR) {
  WorkloadSpec spec;
  spec.num_rows = 3000;
  spec.num_distinct = 77;
  auto pair = GenerateMergePair(spec).ValueOrDie();
  EXPECT_EQ(pair.s->rows(), 3000u);
  EXPECT_EQ(pair.t->rows(), 77u);
  EXPECT_TRUE(pair.t->schema().IsKey({kKeyColumn}));
  // T's keys are unique.
  EXPECT_TRUE(IsCandidateKey(*pair.t, {kKeyColumn}).ValueOrDie());
  // Every S key appears in T (FK integrity).
  auto s_keys = pair.s->ColumnByName(kKeyColumn).ValueOrDie();
  auto t_keys = pair.t->ColumnByName(kKeyColumn).ValueOrDie();
  for (const Value& v : s_keys->dict().values()) {
    EXPECT_TRUE(t_keys->dict().Lookup(v).has_value()) << v.ToString();
  }
}

TEST(Workload, GeneralPairFanouts) {
  auto pair = GenerateGeneralMergePair(12, 4, 5, 1).ValueOrDie();
  EXPECT_EQ(pair.s->rows(), 48u);
  EXPECT_EQ(pair.t->rows(), 60u);
  auto j = pair.s->ColumnByName("J").ValueOrDie();
  EXPECT_EQ(j->distinct_count(), 12u);
  EXPECT_EQ(j->ValueCount(0), 4u);
  EXPECT_FALSE(GenerateGeneralMergePair(0, 1, 1).ok());
}

}  // namespace
}  // namespace cods

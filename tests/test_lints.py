#!/usr/bin/env python3
"""Unit tests for the repo's custom linters — scripts/check_layering.py
and scripts/check_determinism_hazards.py gate every CI run, so their
behavior is pinned here: each rule fires on a known-bad snippet and
names the right rule, the justified escape hatch suppresses a finding,
a bare (unjustified) escape hatch is itself an error, and the real tree
passes. Registered with ctest as `test_lints`."""

import os
import subprocess
import sys
import tempfile
import unittest

SCRIPTS = os.path.join(
    os.path.dirname(os.path.abspath(__file__)), os.pardir, "scripts")
LAYERING = os.path.join(SCRIPTS, "check_layering.py")
HAZARDS = os.path.join(SCRIPTS, "check_determinism_hazards.py")
REPO_SRC = os.path.join(
    os.path.dirname(os.path.abspath(__file__)), os.pardir, "src")


def run(script, *args):
    return subprocess.run(
        [sys.executable, script, *args],
        capture_output=True, text=True)


class LayeringTest(unittest.TestCase):
    def make_tree(self, files):
        """Writes {relpath: content} under a temp src/ root."""
        root = tempfile.mkdtemp(prefix="cods_lint_")
        self.addCleanup(lambda: __import__("shutil").rmtree(root))
        for rel, content in files.items():
            path = os.path.join(root, rel)
            os.makedirs(os.path.dirname(path), exist_ok=True)
            with open(path, "w") as f:
                f.write(content)
        return root

    def test_clean_tree_passes(self):
        root = self.make_tree({
            "common/status.h": "#include <string>\n",
            "bitmap/wah.h": '#include "common/status.h"\n',
            "storage/column.h": '#include "bitmap/wah.h"\n'
                                '#include "common/status.h"\n',
        })
        proc = run(LAYERING, root)
        self.assertEqual(proc.returncode, 0, proc.stdout + proc.stderr)

    def test_upward_edge_fails_with_offending_edge(self):
        root = self.make_tree({
            "bitmap/wah.h": '#include "storage/column.h"\n',
            "storage/column.h": "\n",
        })
        proc = run(LAYERING, root)
        self.assertEqual(proc.returncode, 1, proc.stdout)
        self.assertIn("bitmap/wah.h:1", proc.stdout)
        self.assertIn("'bitmap' may not include from 'storage'", proc.stdout)
        # The failure message teaches the DAG.
        self.assertIn("Allowed dependencies", proc.stdout)

    def test_lateral_edge_fails(self):
        # smo and plan are siblings: neither may include the other.
        root = self.make_tree({
            "plan/planner.h": '#include "smo/parser.h"\n',
            "smo/parser.h": "\n",
        })
        proc = run(LAYERING, root)
        self.assertEqual(proc.returncode, 1, proc.stdout)
        self.assertIn("'plan' may not include from 'smo'", proc.stdout)

    def test_self_and_stdlib_includes_ignored(self):
        root = self.make_tree({
            "server/wire.h": "#include <cstdint>\n"
                             '#include "server/session.h"\n',
            "server/session.h": "\n",
        })
        proc = run(LAYERING, root)
        self.assertEqual(proc.returncode, 0, proc.stdout + proc.stderr)

    def test_real_tree_passes(self):
        proc = run(LAYERING, REPO_SRC)
        self.assertEqual(proc.returncode, 0, proc.stdout + proc.stderr)


class HazardsTest(unittest.TestCase):
    def lint_snippet(self, content, name="snippet.cc"):
        path = os.path.join(tempfile.mkdtemp(prefix="cods_lint_"), name)
        self.addCleanup(
            lambda: __import__("shutil").rmtree(os.path.dirname(path)))
        with open(path, "w") as f:
            f.write(content)
        return run(HAZARDS, path)

    def assert_flags(self, content, rule, line=None):
        proc = self.lint_snippet(content)
        self.assertEqual(proc.returncode, 1,
                         f"expected a finding:\n{proc.stdout}{proc.stderr}")
        self.assertIn(f"[{rule}]", proc.stdout)
        if line is not None:
            self.assertIn(f":{line}:", proc.stdout)
        return proc

    def assert_clean(self, content):
        proc = self.lint_snippet(content)
        self.assertEqual(proc.returncode, 0, proc.stdout + proc.stderr)

    # ---- unordered-iteration ------------------------------------------

    def test_range_for_over_unordered_map_flagged(self):
        self.assert_flags(
            "#include <unordered_map>\n"
            "std::unordered_map<int, int> counts;\n"
            "void f() {\n"
            "  for (const auto& [k, v] : counts) { (void)k; (void)v; }\n"
            "}\n",
            "unordered-iteration", line=4)

    def test_begin_iteration_over_unordered_set_flagged(self):
        self.assert_flags(
            "#include <unordered_set>\n"
            "std::unordered_set<std::string, Hash, Eq> seen(16, h, e);\n"
            "void f() {\n"
            "  for (auto it = seen.begin(); it != seen.end(); ++it) {}\n"
            "}\n",
            "unordered-iteration", line=4)

    def test_probing_not_flagged(self):
        self.assert_clean(
            "#include <unordered_map>\n"
            "std::unordered_map<int, int> counts;\n"
            "bool f(int k) {\n"
            "  if (counts.find(k) == counts.end()) return false;\n"
            "  return counts.count(k) > 0 && counts.at(k) != 0;\n"
            "}\n")

    def test_range_for_over_ordered_map_not_flagged(self):
        self.assert_clean(
            "#include <map>\n"
            "std::map<int, int> counts;\n"
            "void f() {\n"
            "  for (const auto& [k, v] : counts) { (void)k; (void)v; }\n"
            "}\n")

    # ---- raw-random ---------------------------------------------------

    def test_rand_flagged(self):
        self.assert_flags("int f() { return rand() % 6; }\n",
                          "raw-random", line=1)

    def test_random_device_flagged(self):
        self.assert_flags(
            "#include <random>\n"
            "std::mt19937_64 Make() { return std::mt19937_64(\n"
            "    std::random_device{}()); }\n",
            "raw-random")

    def test_seeded_engine_not_flagged(self):
        self.assert_clean(
            "#include <random>\n"
            "std::mt19937_64 Make() { return std::mt19937_64(42); }\n")

    # ---- wall-clock ---------------------------------------------------

    def test_clock_now_flagged(self):
        self.assert_flags(
            "#include <chrono>\n"
            "auto T() { return std::chrono::steady_clock::now(); }\n",
            "wall-clock", line=2)

    def test_time_call_flagged(self):
        self.assert_flags(
            "#include <ctime>\n"
            "long T() { return time(nullptr); }\n",
            "wall-clock", line=2)

    def test_clock_in_comment_or_string_not_flagged(self):
        self.assert_clean(
            "// steady_clock::now() is forbidden here\n"
            "const char* kMsg = \"time(nullptr) goes through Stopwatch\";\n")

    # ---- dangling-result ----------------------------------------------

    def test_range_for_over_result_temporary_flagged(self):
        self.assert_flags(
            "void f() {\n"
            "  for (const auto& row : LoadRows(\"t\").ValueOrDie()) {\n"
            "    Use(row);\n"
            "  }\n"
            "}\n",
            "dangling-result", line=2)

    def test_reference_to_result_temporary_flagged(self):
        self.assert_flags(
            "void f() {\n"
            "  const auto& rows = LoadRows(\"t\").ValueOrDie();\n"
            "}\n",
            "dangling-result", line=2)

    def test_named_result_not_flagged(self):
        self.assert_clean(
            "void f() {\n"
            "  auto r = LoadRows(\"t\");\n"
            "  for (const auto& row : r.ValueOrDie()) Use(row);\n"
            "  auto rows = std::move(r).ValueOrDie();\n"
            "}\n")

    # ---- escape hatch -------------------------------------------------

    def test_justified_allow_suppresses(self):
        self.assert_clean(
            "#include <unordered_map>\n"
            "std::unordered_map<int, int> counts;\n"
            "void f(std::vector<int>* out) {\n"
            "  // cods-lint: allow(unordered-iteration): sorted below.\n"
            "  for (const auto& [k, v] : counts) out->push_back(k + v);\n"
            "  std::sort(out->begin(), out->end());\n"
            "}\n")

    def test_allow_on_same_line_suppresses(self):
        self.assert_clean(
            "#include <chrono>\n"
            "auto T() { return std::chrono::steady_clock::now(); }"
            "  // cods-lint: allow(wall-clock): bench helper.\n")

    def test_multiline_justification_covers_statement(self):
        self.assert_clean(
            "#include <chrono>\n"
            "void f() {\n"
            "  // cods-lint: allow(wall-clock): stats only; the duration\n"
            "  // below never influences results.\n"
            "  auto d = std::chrono::duration<double>(\n"
            "      std::chrono::steady_clock::now() - t0);\n"
            "}\n")

    def test_unjustified_allow_is_an_error(self):
        proc = self.lint_snippet(
            "#include <chrono>\n"
            "// cods-lint: allow(wall-clock)\n"
            "auto T() { return std::chrono::steady_clock::now(); }\n")
        self.assertEqual(proc.returncode, 1, proc.stdout)
        self.assertIn("needs a justification", proc.stdout)

    def test_allow_unknown_rule_is_an_error(self):
        proc = self.lint_snippet(
            "// cods-lint: allow(no-such-rule): because reasons.\n"
            "int x = 1;\n")
        self.assertEqual(proc.returncode, 1, proc.stdout)
        self.assertIn("unknown rule", proc.stdout)

    def test_allow_file_suppresses_whole_file(self):
        self.assert_clean(
            "// Timing helper.\n"
            "// cods-lint: allow-file(wall-clock): this is the timing\n"
            "// utility itself.\n"
            "#include <chrono>\n"
            "auto A() { return std::chrono::steady_clock::now(); }\n"
            "auto B() { return std::chrono::system_clock::now(); }\n")

    def test_allow_does_not_suppress_other_rule(self):
        self.assert_flags(
            "#include <chrono>\n"
            "// cods-lint: allow(raw-random): wrong rule for this line.\n"
            "auto T() { return std::chrono::steady_clock::now(); }\n",
            "wall-clock")

    # ---- the real tree ------------------------------------------------

    def test_real_tree_passes(self):
        proc = run(HAZARDS, REPO_SRC)
        self.assertEqual(proc.returncode, 0, proc.stdout + proc.stderr)


if __name__ == "__main__":
    unittest.main()

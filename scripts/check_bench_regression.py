#!/usr/bin/env python3
"""Cross-PR benchmark regression gate.

Compares the BENCH_<name>.json files emitted by the bench binaries
(bench/bench_util.h writes them next to the working directory) against
committed baselines and fails when a tracked metric regressed by more
than the threshold.

Usage:
  check_bench_regression.py --baseline-dir bench/baselines \
      --current-dir . [--threshold 0.15] [--metric real_time] \
      [--absolute] [--wall-factor 4.0] [--update]

Behavior:
  * Only benchmarks present in BOTH files are compared (new series are
    allowed to appear; removed ones are reported as a warning).
  * When raw repetition entries are present, each series is tracked as
    the MIN across repetitions — best-of-N is robust against whole
    repetitions lost to VM steal time or frequency dips, which inflate
    medians. With aggregates-only output, ``_median`` is used instead.
  * Default mode is MACHINE-RELATIVE: the per-file anchor is the MEDIAN
    of the per-series current/baseline ratios, and every series is
    gated on its ratio relative to that anchor. A uniformly faster or
    slower runner moves the median itself and cancels out, while a
    minority of series genuinely changing (one op got 3x faster) leaves
    the median — and therefore the unchanged peers — untouched. This is
    what lets the CI threshold sit at 15% on unpinned runners instead
    of the 50% absolute timings needed. ``--absolute`` restores raw
    metric comparison (also used automatically when fewer than
    ``--min-anchor-series`` common series exist).
  * Runs taken at a different ``cods_threads`` context than the baseline
    are skipped with a warning (timings are not comparable).
  * LARGER-IS-BETTER counters (``--rate-counters``, default
    ``queries_per_sec``): a series carrying one of these counters is a
    throughput series. Its counter is gated with the ratio INVERTED
    (current below baseline is the regression), best-of-repetitions is
    the MAX, and the same median-anchor machine-relative mode applies.
    Its per-iteration time is EXCLUDED from the time-based gate and its
    anchor — a manual-time batch duration is workload bookkeeping, not a
    latency to gate (the throughput counter already covers it).
  * Machine-relative mode is blind to a slowdown hitting the MAJORITY of
    a file's series at once (it folds into the median anchor), so a
    coarse ABSOLUTE sanity bound backs it up: per file, neither the
    total ``wall_ms`` counter nor the summed per-iteration metric (both
    over the series common to both runs, min across repetitions) may
    exceed ``--wall-factor`` (default 4x) times the baseline total. The
    wall total catches run-cost blowups in fixed-iteration series; the
    metric total catches uniform slowdowns in MinTime-driven series,
    whose measured-loop wall time google-benchmark holds constant by
    shrinking the iteration count. The factor is deliberately loose —
    it absorbs runner-speed spread while still catching an
    across-the-board collapse.
  * ``--update`` rewrites the baselines from the current files instead of
    comparing (use after an intentional perf change, and commit them).
  * Exit codes: 0 ok, 1 regression found, 2 usage/IO error.
"""

import argparse
import json
import math
import os
import sys

AGGREGATE_SUFFIXES = ("_mean", "_median", "_stddev", "_cv", "_min", "_max")

TIME_UNIT_TO_US = {"ns": 1e-3, "us": 1.0, "ms": 1e3, "s": 1e6}


def load(path):
    with open(path) as f:
        return json.load(f)


def series(doc, metric):
    """name -> metric value in MICROSECONDS: min across raw repetitions
    when present (best-of-N timing), else the _median aggregate."""
    raw_min = {}
    medians = {}
    for b in doc.get("benchmarks", []):
        name = b.get("name", "")
        unit = TIME_UNIT_TO_US.get(b.get("time_unit", "us"), 1.0)
        if b.get("run_type") == "aggregate":
            if name.endswith("_median"):
                medians[name[: -len("_median")]] = float(b[metric]) * unit
            continue
        if name.endswith(AGGREGATE_SUFFIXES):
            continue
        if metric in b:
            v = float(b[metric]) * unit
            raw_min[name] = min(v, raw_min.get(name, v))
    out = medians
    out.update(raw_min)  # best-of-repetitions wins over the median
    return out


def rate_series(doc, counters):
    """Larger-is-better counter values: ``name[counter]`` -> MAX across
    raw repetitions (best-of-N for throughput is the max), else the
    ``_median`` aggregate. The key carries the counter name so one
    series can gate several counters independently."""
    raw_max = {}
    medians = {}
    for b in doc.get("benchmarks", []):
        name = b.get("name", "")
        if b.get("run_type") == "aggregate":
            if name.endswith("_median"):
                stem = name[: -len("_median")]
                for c in counters:
                    if c in b:
                        medians[f"{stem}[{c}]"] = float(b[c])
            continue
        if name.endswith(AGGREGATE_SUFFIXES):
            continue
        for c in counters:
            if c in b:
                key = f"{name}[{c}]"
                v = float(b[c])
                raw_max[key] = max(v, raw_max.get(key, v))
    out = medians
    out.update(raw_max)
    return out


def rate_carriers(doc, counters):
    """Names of series that carry any larger-is-better counter (their
    time belongs to the throughput gate, not the latency gate)."""
    names = set()
    for b in doc.get("benchmarks", []):
        name = b.get("name", "")
        if b.get("run_type") == "aggregate" or name.endswith(AGGREGATE_SUFFIXES):
            continue
        if any(c in b for c in counters):
            names.add(name)
    return names


def context_threads(doc):
    return doc.get("context", {}).get("cods_threads")


def wall_series_ms(doc):
    """Per-series run cost in milliseconds: the MIN wall_ms across raw
    repetitions (same best-of-N robustness as the timing metric). Empty
    when no series carries the counter (pre-counter baselines)."""
    per_series = {}
    for b in doc.get("benchmarks", []):
        name = b.get("name", "")
        if b.get("run_type") == "aggregate" or name.endswith(AGGREGATE_SUFFIXES):
            continue
        if "wall_ms" in b:
            v = float(b["wall_ms"])
            per_series[name] = min(v, per_series.get(name, v))
    return per_series


def median(values):
    s = sorted(values)
    mid = len(s) // 2
    return s[mid] if len(s) % 2 else math.sqrt(s[mid - 1] * s[mid])


def compare(baseline_path, current_path, threshold, metric, absolute,
            min_anchor_series, noise_floor_us, wall_factor,
            rate_counters=()):
    base = load(baseline_path)
    cur = load(current_path)
    bt, ct = context_threads(base), context_threads(cur)
    if bt is not None and ct is not None and bt != ct:
        print(
            f"SKIP {os.path.basename(current_path)}: cods_threads "
            f"{ct} != baseline {bt}"
        )
        return None
    base_series = series(base, metric)
    cur_series = series(cur, metric)
    # Throughput series (larger-is-better counters) leave the time-based
    # gates entirely — per-series AND the summed-metric bound. Their
    # counter is gated below (inverted) and their run cost still counts
    # against the wall_ms bound.
    throughput = rate_carriers(base, rate_counters) | rate_carriers(
        cur, rate_counters
    )
    regressions = []
    # Coarse absolute sanity bound: a uniform slowdown moves the relative
    # anchor, not the per-series ratios — but it cannot hide from the
    # file's total wall clock. Totals are taken over the series present
    # in BOTH runs, mirroring the timing comparison's added/removed
    # policy (new heavy series must not trip the bound, and dropping
    # series must not mask a collapse of the remainder).
    base_walls, cur_walls = wall_series_ms(base), wall_series_ms(cur)
    wall_common = set(base_walls) & set(cur_walls)
    base_wall = sum(base_walls[n] for n in wall_common)
    cur_wall = sum(cur_walls[n] for n in wall_common)
    if (
        wall_factor is not None
        and wall_common
        and base_wall > 0
        and cur_wall > base_wall * wall_factor
    ):
        ratio = cur_wall / base_wall
        print(
            f"WALL-BOUND {os.path.basename(current_path)}: total wall_ms "
            f"{base_wall:.1f} -> {cur_wall:.1f} ({ratio:.2f}x > "
            f"{wall_factor:g}x bound)"
        )
        regressions.append(("<total wall_ms>", base_wall, cur_wall, ratio))
    # Companion bound on the summed per-iteration metric: MinTime-driven
    # series hold their measured-loop wall time constant by shrinking the
    # iteration count when the code slows down, so a uniform slowdown is
    # invisible to the wall_ms total there — but not to the per-iteration
    # timings themselves, compared absolutely (no anchor) under the same
    # loose factor.
    metric_common = [
        n
        for n in set(base_series) & set(cur_series)
        if base_series[n] > 0 and n not in throughput
    ]
    base_total = sum(base_series[n] for n in metric_common)
    cur_total = sum(cur_series[n] for n in metric_common)
    if (
        wall_factor is not None
        and base_total > 0
        and cur_total > base_total * wall_factor
    ):
        ratio = cur_total / base_total
        print(
            f"TOTAL-BOUND {os.path.basename(current_path)}: total {metric} "
            f"{base_total:.1f} -> {cur_total:.1f}us ({ratio:.2f}x > "
            f"{wall_factor:g}x bound)"
        )
        regressions.append((f"<total {metric}>", base_total, cur_total, ratio))
    missing = sorted(set(base_series) - set(cur_series))
    if missing:
        print(
            f"WARN {os.path.basename(current_path)}: series removed: "
            + ", ".join(missing[:5])
            + ("..." if len(missing) > 5 else "")
        )
    common = sorted(
        name
        for name in set(base_series) & set(cur_series)
        if base_series[name] > 0 and cur_series[name] > 0
        and name not in throughput
    )
    # Sub-floor series cannot be timed to the gate's precision (a
    # handful of microseconds swings tens of percent); excluding them is
    # reported, never silent.
    floored = [n for n in common if base_series[n] < noise_floor_us]
    if floored:
        print(
            f"NOTE {os.path.basename(current_path)}: {len(floored)} series "
            f"under the {noise_floor_us:g}us noise floor not gated: "
            + ", ".join(floored[:4])
            + ("..." if len(floored) > 4 else "")
        )
        common = [n for n in common if n not in set(floored)]

    # Larger-is-better gate: same anchor machinery, ratio inverted —
    # the regression is the CURRENT value falling below the baseline.
    base_rates = rate_series(base, rate_counters)
    cur_rates = rate_series(cur, rate_counters)
    rate_missing = sorted(set(base_rates) - set(cur_rates))
    if rate_missing:
        print(
            f"WARN {os.path.basename(current_path)}: rate counters removed: "
            + ", ".join(rate_missing[:5])
            + ("..." if len(rate_missing) > 5 else "")
        )
    rate_common = sorted(
        k
        for k in set(base_rates) & set(cur_rates)
        if base_rates[k] > 0 and cur_rates[k] > 0
    )
    if rate_common:
        rate_anchor = 1.0
        if not absolute and len(rate_common) >= min_anchor_series:
            rate_anchor = median(
                [cur_rates[k] / base_rates[k] for k in rate_common]
            )
            print(
                f"{os.path.basename(current_path)}: rate-relative mode, "
                f"{rate_anchor:.2f}x median throughput over "
                f"{len(rate_common)} counters"
            )
        for k in rate_common:
            b, c = base_rates[k], cur_rates[k] / rate_anchor
            ratio = b / c  # inverted: larger is better
            status = "OK"
            if ratio > 1.0 + threshold:
                status = "RATE-REG"
                regressions.append((k, b, c, ratio))
            print(
                f"{status:10s} {k:60s} {b:12.3f} -> {c:12.3f} ({ratio:5.2f}x)"
            )

    if not common:
        return regressions

    # Per-file anchor: the median of per-series current/baseline ratios
    # estimates the runs' machine-speed difference. Dividing it out
    # leaves machine-relative shape; being a median, it is immune to a
    # minority of series changing for real (a genuinely 3x-faster op
    # must not make its unchanged peers look like regressions, as a
    # mean-based anchor would).
    anchor = 1.0
    relative = not absolute and len(common) >= min_anchor_series
    if relative:
        anchor = median([cur_series[n] / base_series[n] for n in common])
        print(
            f"{os.path.basename(current_path)}: relative mode, "
            f"{anchor:.2f}x median machine speed over {len(common)} series"
        )
    elif not absolute:
        print(
            f"WARN {os.path.basename(current_path)}: only {len(common)} "
            f"common series (< {min_anchor_series}); comparing absolute "
            "timings"
        )

    for name in common:
        b, c = base_series[name], cur_series[name] / anchor
        ratio = c / b
        status = "OK"
        if ratio > 1.0 + threshold:
            status = "REGRESSION"
            regressions.append((name, b, c, ratio))
        print(f"{status:10s} {name:60s} {b:12.3f} -> {c:12.3f} ({ratio:5.2f}x)")
    return regressions


def main():
    ap = argparse.ArgumentParser(description=__doc__)
    ap.add_argument("--baseline-dir", required=True)
    ap.add_argument("--current-dir", required=True)
    ap.add_argument("--threshold", type=float, default=0.15)
    ap.add_argument("--metric", default="real_time")
    ap.add_argument(
        "--absolute",
        action="store_true",
        help="compare raw metric values instead of machine-relative ratios",
    )
    ap.add_argument(
        "--min-anchor-series",
        type=int,
        default=3,
        help="fewest common series for which the per-run anchor is trusted",
    )
    ap.add_argument(
        "--noise-floor-us",
        type=float,
        default=5.0,
        help="series with a baseline time under this many microseconds "
        "are reported but not gated (too small to time reliably)",
    )
    ap.add_argument(
        "--wall-factor",
        type=float,
        default=4.0,
        help="fail when a file's total wall_ms exceeds this multiple of "
        "the baseline total (absolute backstop for uniform slowdowns "
        "the relative anchor cancels); <= 0 disables",
    )
    ap.add_argument(
        "--rate-counters",
        default="queries_per_sec",
        help="comma-separated larger-is-better counters; series carrying "
        "one are gated on the counter (ratio inverted) instead of time",
    )
    ap.add_argument("--update", action="store_true")
    args = ap.parse_args()
    rate_counters = tuple(
        c for c in args.rate_counters.split(",") if c.strip()
    )

    current = sorted(
        f
        for f in os.listdir(args.current_dir)
        if f.startswith("BENCH_") and f.endswith(".json")
    )
    if not current:
        print(f"no BENCH_*.json files in {args.current_dir}", file=sys.stderr)
        return 2

    if args.update:
        os.makedirs(args.baseline_dir, exist_ok=True)
        for f in current:
            src = os.path.join(args.current_dir, f)
            dst = os.path.join(args.baseline_dir, f)
            with open(src) as i, open(dst, "w") as o:
                o.write(i.read())
            print(f"updated {dst}")
        return 0

    all_regressions = []
    compared = 0
    skipped = 0
    for f in current:
        baseline = os.path.join(args.baseline_dir, f)
        if not os.path.exists(baseline):
            print(f"WARN no baseline for {f}; skipping (commit one with --update)")
            continue
        result = compare(
            baseline, os.path.join(args.current_dir, f), args.threshold,
            args.metric, args.absolute, args.min_anchor_series,
            args.noise_floor_us,
            args.wall_factor if args.wall_factor > 0 else None,
            rate_counters,
        )
        if result is None:  # thread-context mismatch
            skipped += 1
            continue
        compared += 1
        all_regressions += result

    if compared == 0:
        if skipped > 0:
            # Every baseline was skipped for a context mismatch: the gate
            # would silently gate nothing. Fail loudly instead.
            print(
                f"ERROR: all {skipped} baseline(s) skipped on cods_threads "
                "mismatch; pin CODS_THREADS to the baseline context",
                file=sys.stderr,
            )
            return 2
        print("no baselines matched; nothing compared")
        return 0
    if all_regressions:
        mode = "absolute" if args.absolute else "machine-relative"
        print(
            f"\n{len(all_regressions)} regression(s) beyond "
            f"{args.threshold:.0%} on {mode} {args.metric}:"
        )
        for name, b, c, ratio in all_regressions:
            print(f"  {name}: {b:.3f} -> {c:.3f} ({ratio:.2f}x)")
        return 1
    print("\nno regressions")
    return 0


if __name__ == "__main__":
    sys.exit(main())

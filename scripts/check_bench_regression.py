#!/usr/bin/env python3
"""Cross-PR benchmark regression gate.

Compares the BENCH_<name>.json files emitted by the bench binaries
(bench/bench_util.h writes them next to the working directory) against
committed baselines and fails when a tracked metric regressed by more
than the threshold.

Usage:
  check_bench_regression.py --baseline-dir bench/baselines \
      --current-dir . [--threshold 0.15] [--metric real_time] [--update]

Behavior:
  * Only benchmarks present in BOTH files are compared (new series are
    allowed to appear; removed ones are reported as a warning).
  * Aggregate series (``_mean``/``_median``/``_stddev``/``_cv``) are
    compared only via ``_median`` when present; raw series are used
    otherwise.
  * Runs taken at a different ``cods_threads`` context than the baseline
    are skipped with a warning (timings are not comparable).
  * ``--update`` rewrites the baselines from the current files instead of
    comparing (use after an intentional perf change, and commit them).
  * Exit codes: 0 ok, 1 regression found, 2 usage/IO error.
"""

import argparse
import json
import os
import sys

AGGREGATE_SUFFIXES = ("_mean", "_median", "_stddev", "_cv", "_min", "_max")


def load(path):
    with open(path) as f:
        return json.load(f)


def series(doc, metric):
    """name -> metric value, preferring _median aggregates when present."""
    out = {}
    medians = {}
    for b in doc.get("benchmarks", []):
        name = b.get("name", "")
        if b.get("run_type") == "aggregate":
            if name.endswith("_median"):
                medians[name[: -len("_median")]] = float(b[metric])
            continue
        if name.endswith(AGGREGATE_SUFFIXES):
            continue
        if metric in b:
            out[name] = float(b[metric])
    out.update(medians)  # aggregates win over raw iterations
    return out


def context_threads(doc):
    return doc.get("context", {}).get("cods_threads")


def compare(baseline_path, current_path, threshold, metric):
    base = load(baseline_path)
    cur = load(current_path)
    bt, ct = context_threads(base), context_threads(cur)
    if bt is not None and ct is not None and bt != ct:
        print(
            f"SKIP {os.path.basename(current_path)}: cods_threads "
            f"{ct} != baseline {bt}"
        )
        return None
    base_series = series(base, metric)
    cur_series = series(cur, metric)
    regressions = []
    missing = sorted(set(base_series) - set(cur_series))
    if missing:
        print(
            f"WARN {os.path.basename(current_path)}: series removed: "
            + ", ".join(missing[:5])
            + ("..." if len(missing) > 5 else "")
        )
    for name in sorted(set(base_series) & set(cur_series)):
        b, c = base_series[name], cur_series[name]
        if b <= 0:
            continue
        ratio = c / b
        status = "OK"
        if ratio > 1.0 + threshold:
            status = "REGRESSION"
            regressions.append((name, b, c, ratio))
        print(f"{status:10s} {name:60s} {b:12.1f} -> {c:12.1f} ({ratio:5.2f}x)")
    return regressions


def main():
    ap = argparse.ArgumentParser(description=__doc__)
    ap.add_argument("--baseline-dir", required=True)
    ap.add_argument("--current-dir", required=True)
    ap.add_argument("--threshold", type=float, default=0.15)
    ap.add_argument("--metric", default="real_time")
    ap.add_argument("--update", action="store_true")
    args = ap.parse_args()

    current = sorted(
        f
        for f in os.listdir(args.current_dir)
        if f.startswith("BENCH_") and f.endswith(".json")
    )
    if not current:
        print(f"no BENCH_*.json files in {args.current_dir}", file=sys.stderr)
        return 2

    if args.update:
        os.makedirs(args.baseline_dir, exist_ok=True)
        for f in current:
            src = os.path.join(args.current_dir, f)
            dst = os.path.join(args.baseline_dir, f)
            with open(src) as i, open(dst, "w") as o:
                o.write(i.read())
            print(f"updated {dst}")
        return 0

    all_regressions = []
    compared = 0
    skipped = 0
    for f in current:
        baseline = os.path.join(args.baseline_dir, f)
        if not os.path.exists(baseline):
            print(f"WARN no baseline for {f}; skipping (commit one with --update)")
            continue
        result = compare(
            baseline, os.path.join(args.current_dir, f), args.threshold,
            args.metric,
        )
        if result is None:  # thread-context mismatch
            skipped += 1
            continue
        compared += 1
        all_regressions += result

    if compared == 0:
        if skipped > 0:
            # Every baseline was skipped for a context mismatch: the gate
            # would silently gate nothing. Fail loudly instead.
            print(
                f"ERROR: all {skipped} baseline(s) skipped on cods_threads "
                "mismatch; pin CODS_THREADS to the baseline context",
                file=sys.stderr,
            )
            return 2
        print("no baselines matched; nothing compared")
        return 0
    if all_regressions:
        print(
            f"\n{len(all_regressions)} regression(s) beyond "
            f"{args.threshold:.0%} on {args.metric}:"
        )
        for name, b, c, ratio in all_regressions:
            print(f"  {name}: {b:.1f} -> {c:.1f} ({ratio:.2f}x)")
        return 1
    print("\nno regressions")
    return 0


if __name__ == "__main__":
    sys.exit(main())

#!/usr/bin/env bash
# Runs clang-tidy (config: .clang-tidy) over every library source, using
# the compile database from a CMake build directory. The baseline is
# ZERO warnings on src/ — WarningsAsErrors in .clang-tidy makes any
# finding a non-zero exit, so this script is a pass/fail CI gate, not a
# report generator.
#
# Usage: scripts/run_clang_tidy.sh [build-dir]   (default: ./build)
#
# The build dir must have been configured already (any options); the
# tree exports compile_commands.json unconditionally via
# CMAKE_EXPORT_COMPILE_COMMANDS in CMakeLists.txt. Compiling first is
# not required — clang-tidy only needs the command database — but
# generated headers, if the tree ever grows them, would need a build.

set -euo pipefail

ROOT="$(cd "$(dirname "$0")/.." && pwd)"
BUILD="${1:-"$ROOT/build"}"

if ! command -v clang-tidy >/dev/null 2>&1; then
  echo "run_clang_tidy.sh: clang-tidy not found on PATH." >&2
  echo "This gate runs in the CI lint job (which installs it); locally" >&2
  echo "install clang-tidy >= 14 to reproduce." >&2
  exit 2
fi

if [[ ! -f "$BUILD/compile_commands.json" ]]; then
  echo "run_clang_tidy.sh: $BUILD/compile_commands.json not found." >&2
  echo "Configure first: cmake -B \"$BUILD\" -S \"$ROOT\"" >&2
  exit 2
fi

mapfile -t SOURCES < <(find "$ROOT/src" -name '*.cc' | sort)
echo "clang-tidy over ${#SOURCES[@]} sources ($(clang-tidy --version | head -1))"

# run-clang-tidy parallelizes across cores and exits non-zero on any
# finding (WarningsAsErrors); fall back to the serial binary when only
# that is installed.
if command -v run-clang-tidy >/dev/null 2>&1; then
  run-clang-tidy -p "$BUILD" -quiet "${SOURCES[@]}"
else
  clang-tidy -p "$BUILD" --quiet "${SOURCES[@]}"
fi
echo "clang-tidy OK (zero warnings)"

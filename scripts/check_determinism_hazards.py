#!/usr/bin/env python3
"""Determinism-hazard lint for the CODS library sources.

CODS guarantees bit-identical results at every thread count (planned
script execution, parallel column builds, snapshot commits). That
guarantee is easy to lose to an innocent-looking line, so this lint
flags the constructs that historically break it:

  unordered-iteration  Iterating a std::unordered_map / unordered_set
                       (range-for or .begin()). Hash iteration order is
                       unspecified and varies across libstdc++ versions
                       and seeds; anything order-dependent downstream
                       becomes nondeterministic. Probing (find / count /
                       insert / try_emplace, and find()==end() checks)
                       is fine and is not flagged.

  raw-random           rand(), srand(), std::random_device. All
                       randomness goes through the seeded cods::Rng
                       (common/random.h) so workloads replay exactly.

  wall-clock           Clock reads: *_clock::now(), time(), clock(),
                       gettimeofday, clock_gettime, localtime/gmtime.
                       Timing belongs in bench/ (exempt, not scanned) or
                       in explicitly annotated sites — the server's
                       admission deadlines, task-graph stats, the
                       Stopwatch utility itself.

  dangling-result      Binding a reference to, or range-for-ing over,
                       Result<T>::ValueOrDie() called on a TEMPORARY:
                         for (auto& r : Load(path).ValueOrDie()) ...
                       ValueOrDie()&& returns T&& into the temporary
                       Result, which dies at the end of the range-init
                       expression (before C++23 lifetime extension) —
                       the loop walks freed memory. Name the Result
                       first. ValueOrDie() on a named lvalue, including
                       std::move(name).ValueOrDie(), is not flagged.

Escape hatch — a justified annotation on the offending line or on the
line directly above it:

    // cods-lint: allow(<rule>): <why this site is sound>

The justification is mandatory: an allow() with nothing after the colon
(or no colon) is itself an error. A file whose entire purpose is the
hazard (e.g. common/stopwatch.h) may instead carry, in its first 15
lines:

    // cods-lint: allow-file(<rule>): <why>

Usage: check_determinism_hazards.py [path...]
With no arguments, lints src/ of the repo containing this script.
Exit 0 when clean, 1 with one line per finding otherwise.
"""

import os
import re
import sys

RULES = ("unordered-iteration", "raw-random", "wall-clock", "dangling-result")

ALLOW_RE = re.compile(
    r"//\s*cods-lint:\s*allow\(([a-z-]+)\)(?::\s*(\S.*))?")
ALLOW_FILE_RE = re.compile(
    r"//\s*cods-lint:\s*allow-file\(([a-z-]+)\)(?::\s*(\S.*))?")

RAW_RANDOM_RE = re.compile(r"\b(?:rand|srand)\s*\(|\brandom_device\b")
WALL_CLOCK_RE = re.compile(
    r"\b\w*_?[Cc]lock::now\s*\(|\btime\s*\(\s*(?:nullptr|NULL|0|&)"
    r"|\bgettimeofday\s*\(|\bclock_gettime\s*\(|\bclock\s*\(\s*\)"
    r"|\blocaltime|\bgmtime")

# Declarations: std::unordered_map<...> name / std::unordered_set<...> name.
UNORDERED_DECL_RE = re.compile(r"\bunordered_(?:map|set)\s*<")
IDENT_RE = re.compile(r"[A-Za-z_]\w*")

RANGE_FOR_RE = re.compile(r"\bfor\s*\(([^;]*?):([^;]+)\)")
BEGIN_CALL_RE = re.compile(r"\b([A-Za-z_]\w*)\s*\.\s*c?begin\s*\(")

VALUE_OR_DIE_FOR_RE = re.compile(r"\bfor\s*\([^;]*?:\s*(.+?)\.ValueOrDie\(\)")
VALUE_OR_DIE_REF_RE = re.compile(
    r"&\s*[A-Za-z_]\w*\s*=\s*(.+?)\.ValueOrDie\(\)\s*;")
MOVED_NAME_RE = re.compile(r"^(?:std\s*::\s*)?move\s*\(\s*[A-Za-z_]\w*\s*\)$")


def repo_root():
    return os.path.dirname(os.path.dirname(os.path.abspath(__file__)))


def skip_balanced(text, start):
    """Index just past the '>' matching the '<' at text[start]."""
    depth = 0
    for i in range(start, len(text)):
        c = text[i]
        if c == "<":
            depth += 1
        elif c == ">":
            depth -= 1
            if depth == 0:
                return i + 1
    return len(text)


def unordered_names(text):
    """Names of variables/members declared with an unordered container."""
    names = set()
    for m in UNORDERED_DECL_RE.finditer(text):
        close = skip_balanced(text, m.end() - 1)
        ident = IDENT_RE.match(text, pos=_skip_ws(text, close))
        if ident:
            names.add(ident.group(0))
    return names


def _skip_ws(text, i):
    while i < len(text) and text[i].isspace():
        i += 1
    return i


def is_temporary(expr):
    """True if `expr` (the object ValueOrDie is called on) is a temporary:
    anything with a call in it except std::move(<name>)."""
    expr = expr.strip()
    # Peel trailing value-producing chains back to the base object:
    # `Load(p).ValueOrDie()` -> base `Load(p)`. We only get the base here.
    if MOVED_NAME_RE.match(expr):
        return False
    return "(" in expr


def strip_strings_and_comments(line):
    """Blank out string/char literals and // comments so patterns inside
    them don't fire. Keeps the line length (columns stay meaningful)."""
    out = []
    i, n = 0, len(line)
    in_str = None
    while i < n:
        c = line[i]
        if in_str:
            if c == "\\" and i + 1 < n:
                out.append("..")
                i += 2
                continue
            out.append(c if c == in_str else ".")
            if c == in_str:
                in_str = None
            i += 1
            continue
        if c in "\"'":
            in_str = c
            out.append(c)
        elif c == "/" and i + 1 < n and line[i + 1] == "/":
            out.append(" " * (n - i))
            break
        else:
            out.append(c)
        i += 1
    return "".join(out)


def check_file(path, display, errors):
    with open(path, encoding="utf-8") as f:
        raw_lines = f.read().splitlines()

    file_allowed = set()
    for line in raw_lines[:15]:
        m = ALLOW_FILE_RE.search(line)
        if m:
            rule, why = m.group(1), m.group(2)
            if rule not in RULES:
                errors.append(f"{display}: allow-file names unknown rule "
                              f"'{rule}' (rules: {', '.join(RULES)})")
            elif not why:
                errors.append(f"{display}: allow-file({rule}) needs a "
                              f"justification after the colon")
            else:
                file_allowed.add(rule)

    code_lines = [strip_strings_and_comments(l) for l in raw_lines]
    tracked = unordered_names("\n".join(code_lines))

    def allowed(idx, rule):
        if rule in file_allowed:
            return True
        # An annotation covers the whole statement it precedes (or sits
        # on), and justifications may wrap onto several comment lines —
        # so the candidates are: every line of the statement containing
        # `idx`, plus the contiguous comment block directly above it.
        start = idx
        while start > 0:
            raw_prev = raw_lines[start - 1].strip()
            if raw_prev == "" or raw_prev.startswith("//"):
                break
            if code_lines[start - 1].rstrip().endswith((";", "{", "}")):
                break
            start -= 1
        candidates = list(range(start, idx + 1))
        k = start - 1
        while k >= 0 and raw_lines[k].lstrip().startswith("//"):
            candidates.append(k)
            k -= 1
        for j in candidates:
            m = ALLOW_RE.search(raw_lines[j])
            if m and m.group(1) == rule:
                if not m.group(2):
                    errors.append(
                        f"{display}:{j + 1}: allow({rule}) needs a "
                        f"justification after the colon")
                return True  # bad allow already errs; don't double-report
        return False

    def report(idx, rule, what):
        if not allowed(idx, rule):
            errors.append(f"{display}:{idx + 1}: [{rule}] {what}")

    for idx, line in enumerate(code_lines):
        if RAW_RANDOM_RE.search(line):
            report(idx, "raw-random",
                   "rand()/random_device — use the seeded cods::Rng "
                   "(common/random.h)")
        if WALL_CLOCK_RE.search(line):
            report(idx, "wall-clock",
                   "clock read — timing belongs in bench/ or an "
                   "annotated deadline/stats site")
        for m in RANGE_FOR_RE.finditer(line):
            expr = m.group(2).strip()
            base = IDENT_RE.match(expr)
            if base and base.group(0) in tracked:
                report(idx, "unordered-iteration",
                       f"range-for over unordered container "
                       f"'{base.group(0)}' — iteration order is "
                       f"unspecified; copy to a sorted vector first")
            dm = VALUE_OR_DIE_FOR_RE.search(m.group(0))
            if dm and is_temporary(dm.group(1)):
                report(idx, "dangling-result",
                       "range-for over ValueOrDie() of a Result "
                       "temporary — the Result dies before the loop "
                       "body runs; name it first")
        for m in BEGIN_CALL_RE.finditer(line):
            if m.group(1) in tracked:
                report(idx, "unordered-iteration",
                       f"iterating unordered container '{m.group(1)}' "
                       f"via begin() — iteration order is unspecified")
        m = VALUE_OR_DIE_REF_RE.search(line)
        if m and is_temporary(m.group(1)):
            report(idx, "dangling-result",
                   "reference bound to ValueOrDie() of a Result "
                   "temporary — dangles when the statement ends; "
                   "name the Result first")

    # Unused allow() annotations are suppressed hazards waiting to hide a
    # future real one; an allow naming an unknown rule is always an error.
    for idx, line in enumerate(raw_lines):
        m = ALLOW_RE.search(line)
        if m and m.group(1) not in RULES and "allow-file" not in line:
            errors.append(f"{display}:{idx + 1}: allow names unknown rule "
                          f"'{m.group(1)}' (rules: {', '.join(RULES)})")


def main():
    args = sys.argv[1:]
    if not args:
        args = [os.path.join(repo_root(), "src")]
    errors = []
    count = 0
    for arg in args:
        if os.path.isdir(arg):
            base = arg
            for dirpath, _, filenames in os.walk(arg):
                for name in sorted(filenames):
                    if name.endswith((".h", ".cc")):
                        p = os.path.join(dirpath, name)
                        check_file(p, os.path.relpath(p, base), errors)
                        count += 1
        else:
            check_file(arg, arg, errors)
            count += 1
    if errors:
        for e in errors:
            print(e)
        return 1
    print(f"determinism hazards OK ({count} files)")
    return 0


if __name__ == "__main__":
    sys.exit(main())

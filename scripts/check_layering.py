#!/usr/bin/env python3
"""Layering lint: enforces the CODS module dependency DAG.

Every directory under src/ is a layer. A file in layer X may #include
project headers only from X itself or from the layers listed for X in
ALLOWED_DEPS below. The graph is a DAG ordered roughly

    common -> bitmap -> storage -> exec -> {smo, query, evolution}
           -> plan -> concurrency -> durability -> server

with rowstore and workload as small side layers off storage. Tests,
benches, and examples sit outside the library and may include anything.

The check is purely syntactic: it parses `#include "..."` lines (project
includes are always double-quoted and rooted at src/) and maps each
include to the first path component. Angle-bracket includes (the
standard library) are ignored.

Exit status 0 when the tree conforms; 1 with one line per offending
edge otherwise. Run from anywhere; the repo root is located relative to
this script.

There is deliberately NO escape hatch here (unlike
check_determinism_hazards.py): a layering exception is an architecture
change and belongs in ALLOWED_DEPS, in a commit that explains it.
"""

import os
import re
import sys

# Layer -> set of layers its files may #include from (besides itself).
# Keep this map in sync with the architecture section of ROADMAP.md.
ALLOWED_DEPS = {
    "common": set(),
    "bitmap": {"common"},
    "storage": {"common", "bitmap"},
    "exec": {"common", "bitmap", "storage"},
    "rowstore": {"common", "storage"},
    "workload": {"common", "storage"},
    "evolution": {"common", "bitmap", "storage", "exec"},
    "query": {"common", "bitmap", "storage", "exec", "rowstore"},
    "smo": {"common", "evolution", "query"},
    "plan": {"common", "storage", "evolution"},
    "concurrency": {"common", "storage", "evolution", "plan"},
    "durability": {"common", "storage", "evolution", "smo", "concurrency"},
    "server": {
        "common", "bitmap", "storage", "exec", "query", "evolution",
        "smo", "concurrency", "durability",
    },
}

INCLUDE_RE = re.compile(r'^\s*#\s*include\s+"([^"]+)"')


def repo_root():
    return os.path.dirname(os.path.dirname(os.path.abspath(__file__)))


def layer_of(relpath):
    """First path component of a src/-relative path, or None."""
    parts = relpath.split("/")
    return parts[0] if len(parts) > 1 else None


def check_file(path, src_rel, errors):
    layer = layer_of(src_rel)
    if layer is None:
        return  # file directly under src/ (none today) has no layer
    allowed = ALLOWED_DEPS.get(layer)
    if allowed is None:
        errors.append(
            f"{src_rel}: unknown layer '{layer}' — add it to ALLOWED_DEPS "
            f"in {os.path.basename(__file__)}")
        return
    with open(path, encoding="utf-8") as f:
        for lineno, line in enumerate(f, 1):
            m = INCLUDE_RE.match(line)
            if not m:
                continue
            target = layer_of(m.group(1))
            if target is None or target == layer:
                continue
            if target not in ALLOWED_DEPS:
                continue  # not a project layer (e.g. a local header)
            if target not in allowed:
                errors.append(
                    f"src/{src_rel}:{lineno}: layer '{layer}' may not "
                    f"include from '{target}' (#include \"{m.group(1)}\")")


def main():
    # Optional argument: an alternate src/ root (used by tests/test_lints.py
    # to lint synthetic trees with injected violations).
    src = sys.argv[1] if len(sys.argv) > 1 else os.path.join(repo_root(), "src")
    errors = []
    for dirpath, _, filenames in os.walk(src):
        for name in sorted(filenames):
            if not name.endswith((".h", ".cc")):
                continue
            path = os.path.join(dirpath, name)
            check_file(path, os.path.relpath(path, src).replace(os.sep, "/"),
                       errors)
    if errors:
        for e in sorted(errors):
            print(e)
        print()
        print("Allowed dependencies (layer -> may include from):")
        for layer in ALLOWED_DEPS:
            deps = ", ".join(sorted(ALLOWED_DEPS[layer])) or "(nothing)"
            print(f"  {layer:<12} -> {deps}")
        return 1
    print(f"layering OK ({sum(1 for _ in _walk_sources(src))} files)")
    return 0


def _walk_sources(src):
    for dirpath, _, filenames in os.walk(src):
        for name in filenames:
            if name.endswith((".h", ".cc")):
                yield os.path.join(dirpath, name)


if __name__ == "__main__":
    sys.exit(main())

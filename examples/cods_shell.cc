// cods_shell: an interactive (or piped) shell for the CODS platform —
// the command-line counterpart of the paper's demo UI. It combines the
// statement language (SMOs and SELECT queries through one parser) with
// dot-commands for loading data, displaying tables, persistence,
// versioning, and the cost advisor.
//
//   $ ./build/examples/cods_shell            # interactive, in-memory
//   $ ./build/examples/cods_shell --db mydb  # crash-safe directory
//   $ echo 'LOAD r.csv INTO R; ...' | ./build/examples/cods_shell
//
// With --db <dir> the shell opens a durable database directory
// (durability/db.h): recovery replays the WAL onto the last good
// checkpoint at startup, every SMO script and .commit is WAL-logged and
// fsync'd before being acknowledged, and the log auto-checkpoints as it
// grows. `.checkpoint` forces a checkpoint; `.wal` shows durability
// status. `.open`/`.checkout` are refused in --db mode because they
// replace the catalog wholesale, which the statement WAL cannot
// capture.
//
// Commands (';'-terminated SMO or SELECT statements, or one of):
//   .load <csv-path> <table>     load a CSV file (schema inferred)
//   .tables                      list tables
//   .show <table>                display a table
//   .stats <table>               storage statistics
//   .count <table> <col> <op> <lit>   bitmap-index COUNT(*)
//   .advise decompose <t> (cols) (cols)  cost advisor
//   .save <path> / .open <path>  persist / load the whole catalog
//   .commit <msg> / .log / .checkout <v>  versioning
//   .checkpoint / .wal           durability (--db mode)
//   .snapshot                    serving stats: root id, commits, pins
//   .session open|close|run      named pinned snapshots
//   .sessions                    list pinned sessions
//   .undo                        undo the last invertible operator
//   .plan <file|script>          EXPLAIN a script's dependency DAG
//   .runplan <file|script>       execute a script via the planner
//   .help / .quit
//
// Every query pins the current snapshot root for its whole execution
// (one atomic load), so a concurrently committing script never tears a
// result. `.session open` keeps such a pin alive across statements:
// `.session run <name> SELECT ...` reads the database as it was when
// the session was opened, no matter what has evolved since.

#include <unistd.h>

#include <cerrno>
#include <cstdlib>
#include <fstream>
#include <iostream>
#include <map>
#include <memory>
#include <sstream>
#include <string>
#include <system_error>

#include "common/string_util.h"
#include "durability/db.h"
#include "evolution/advisor.h"
#include "evolution/engine.h"
#include "evolution/inverse.h"
#include "concurrency/versioned_catalog.h"
#include "plan/script_planner.h"
#include "query/query_engine.h"
#include "server/client.h"
#include "smo/parser.h"
#include "storage/csv.h"
#include "storage/printer.h"
#include "storage/serde.h"

using namespace cods;

namespace {

// Splits a dot-command into whitespace-separated words, keeping
// parenthesized groups together.
std::vector<std::string> Words(const std::string& line) {
  std::vector<std::string> out;
  std::istringstream in(line);
  std::string w;
  while (in >> w) out.push_back(w);
  return out;
}

std::vector<std::string> ParseNameGroup(const std::string& group) {
  std::string inner = group;
  if (!inner.empty() && inner.front() == '(') inner = inner.substr(1);
  if (!inner.empty() && inner.back() == ')') inner.pop_back();
  std::vector<std::string> names;
  for (const std::string& part : Split(inner, ',')) {
    std::string t(Trim(part));
    if (!t.empty()) names.push_back(t);
  }
  return names;
}

// Reads a whole file through std::ifstream with errno detail on failure.
Result<std::string> SlurpFile(const std::string& path) {
  errno = 0;
  std::ifstream in(path);
  if (!in) {
    std::string detail =
        errno != 0 ? ": " + std::generic_category().message(errno) : "";
    return Status::IOError("cannot open '" + path + "'" + detail);
  }
  std::ostringstream buf;
  buf << in.rdbuf();
  return buf.str();
}

class Shell {
 public:
  // `db` non-null switches the shell to durable (--db) mode; the plain
  // members stay around but unused so both modes share one code path
  // through versions()/ApplySmo().
  explicit Shell(std::unique_ptr<DurableDb> db = nullptr)
      : db_(std::move(db)), engine_(local_versions_.serving(), &observer_) {}

  int Run(std::istream& in, bool interactive) {
    std::string line;
    if (interactive) std::cout << "cods> " << std::flush;
    std::string pending;
    while (std::getline(in, line)) {
      std::string_view trimmed = Trim(line);
      if (!trimmed.empty() && trimmed[0] == '.') {
        if (!DotCommand(std::string(trimmed))) return 0;
      } else {
        pending += line;
        pending += "\n";
        if (trimmed.ends_with(";")) {
          RunScript(pending);
          pending.clear();
        }
      }
      if (interactive) std::cout << "cods> " << std::flush;
    }
    if (!Trim(pending).empty()) RunScript(pending);
    return 0;
  }

 private:
  VersionedCatalog& versions() {
    return db_ != nullptr ? *db_->versions() : local_versions_;
  }

  // One SMO through whichever engine is live: the durable db's (logged,
  // fsync'd) or the plain in-memory one.
  Status ApplySmo(const Smo& smo) {
    if (db_ != nullptr) return db_->ApplyScript({smo});
    return engine_.Apply(smo);
  }

  void RunScript(const std::string& text) {
    auto script = ParseStatementScript(text);
    if (!script.ok()) {
      std::cout << "parse error: " << script.status().ToString() << "\n";
      return;
    }
    for (const Statement& stmt : *script) {
      if (stmt.kind == Statement::Kind::kQuery) {
        Status st = RunQuery(stmt.query);
        if (!st.ok()) {
          std::cout << "error: " << st.ToString() << "\n";
          return;
        }
        continue;
      }
      const Smo& smo = stmt.smo;
      if (IsInvertible(smo.kind)) {
        // Best-effort logging against the pre-application snapshot;
        // lossy ops simply are not undoable.
        log_.Record(smo, versions().GetSnapshot().root()).IgnoreError();
      }
      Status st = ApplySmo(smo);
      if (!st.ok()) {
        std::cout << "error: " << st.ToString() << "\n";
        return;
      }
      std::cout << "ok: " << smo.ToString() << "\n";
    }
  }

  // Executes one SELECT against a freshly pinned snapshot and prints
  // the result: the table itself for a projection, the number for
  // COUNT(*), value/sum lines for GROUP BY.
  Status RunQuery(const QueryRequest& request) {
    return RunQueryOn(versions().GetSnapshot(), request);
  }

  Status RunQueryOn(const Snapshot& snap, const QueryRequest& request) {
    QueryEngine engine(snap.store());
    CODS_ASSIGN_OR_RETURN(QueryResult result, engine.Execute(request));
    switch (result.verb) {
      case QueryRequest::Verb::kSelect:
        std::cout << FormatTable(*result.table);
        break;
      case QueryRequest::Verb::kCount:
        std::cout << result.count << "\n";
        break;
      case QueryRequest::Verb::kGroupBy:
        std::cout << result.ToString();
        break;
    }
    return Status::OK();
  }

  // Returns false to quit.
  bool DotCommand(const std::string& line) {
    std::vector<std::string> w = Words(line);
    const std::string& cmd = w[0];
    if (cmd == ".quit" || cmd == ".exit") return false;
    if (cmd == ".help") {
      std::cout << kHelp;
    } else if (cmd == ".tables") {
      Snapshot snap = versions().GetSnapshot();
      for (const auto& [name, t] : snap.root().tables()) {
        std::cout << "  " << name << " " << t->schema().ToString() << " ["
                  << t->rows() << " rows]\n";
      }
    } else if (cmd == ".load" && w.size() == 4 && w[2] == "INTO") {
      Report(LoadCsv(w[1], w[3]));
    } else if (cmd == ".load" && w.size() == 3) {
      Report(LoadCsv(w[1], w[2]));
    } else if (cmd == ".show" && w.size() == 2) {
      WithTable(w[1], [](const Table& t) {
        std::cout << FormatTable(t);
      });
    } else if (cmd == ".stats" && w.size() == 2) {
      WithTable(w[1], [](const Table& t) {
        std::cout << FormatTableStats(t);
      });
    } else if (cmd == ".count" && w.size() == 5) {
      Report(Count(w[1], w[2], w[3], w[4]));
    } else if (cmd == ".advise" && w.size() == 5 && w[1] == "decompose") {
      Report(Advise(w[2], w[3], w[4]));
    } else if (cmd == ".save" && w.size() == 2) {
      Snapshot snap = versions().GetSnapshot();
      Report(SaveCatalog(MaterializeCatalog(snap.root()), w[1]));
    } else if (cmd == ".open" && w.size() == 2) {
      if (db_ != nullptr) {
        Report(Status::InvalidArgument(
            ".open replaces the catalog outside the WAL; not available "
            "in --db mode"));
      } else {
        Report(Open(w[1]));
      }
    } else if (cmd == ".commit") {
      std::string msg = w.size() > 1 ? line.substr(line.find(w[1])) : "";
      Report(Commit(msg));
    } else if (cmd == ".log") {
      for (const auto& info : versions().History()) {
        std::cout << "  v" << info.id << ": " << info.message << " ("
                  << info.table_names.size() << " tables, "
                  << info.total_rows << " rows)\n";
      }
    } else if (cmd == ".checkout" && w.size() == 2) {
      if (db_ != nullptr) {
        Report(Status::InvalidArgument(
            ".checkout replaces the catalog outside the WAL; not "
            "available in --db mode"));
      } else {
        Report(local_versions_.Checkout(
            std::strtoull(w[1].c_str(), nullptr, 10)));
        log_.Clear();  // the undo log refers to the abandoned timeline
      }
    } else if (cmd == ".checkpoint") {
      if (db_ == nullptr) {
        Report(Status::InvalidArgument(".checkpoint requires --db <dir>"));
      } else {
        Status st = db_->Checkpoint();
        Report(st);
        if (st.ok()) {
          std::cout << "checkpointed at LSN "
                    << db_->GetStats().checkpoint_lsn << "\n";
        }
      }
    } else if (cmd == ".wal") {
      if (db_ == nullptr) {
        Report(Status::InvalidArgument(".wal requires --db <dir>"));
      } else {
        PrintWalStats();
      }
    } else if (cmd == ".snapshot") {
      SnapshotCatalog::Stats s = versions().serving()->GetStats();
      std::cout << "serving root " << s.root_id << " (" << s.tables
                << " tables)\n"
                << "commits: " << s.commits << ", aborts: " << s.aborts
                << ", live pins: " << s.live_pins << "\n";
    } else if (cmd == ".sessions") {
      for (const auto& [name, snap] : sessions_) {
        std::cout << "  " << name << ": root " << snap.id() << " ("
                  << snap.root().size() << " tables)\n";
      }
      if (sessions_.empty()) std::cout << "  (none)\n";
    } else if (cmd == ".session" && w.size() >= 2) {
      Report(Session(w, line));
    } else if (cmd == ".undo") {
      Report(Undo());
    } else if ((cmd == ".plan" || cmd == ".runplan") && w.size() >= 2) {
      Report(Plan(std::string(Trim(line.substr(cmd.size()))),
                  cmd == ".runplan"));
    } else {
      std::cout << "unknown command; try .help\n";
    }
    return true;
  }

  // .session open <name> | .session close <name> |
  // .session run <name> <query;>
  Status Session(const std::vector<std::string>& w, const std::string& line) {
    const std::string& verb = w[1];
    if (verb == "open" && w.size() == 3) {
      Snapshot snap = versions().GetSnapshot();
      std::cout << "session '" << w[2] << "' pinned root " << snap.id()
                << "\n";
      sessions_[w[2]] = std::move(snap);
      return Status::OK();
    }
    if (verb == "close" && w.size() == 3) {
      if (sessions_.erase(w[2]) == 0) {
        return Status::KeyError("no session '" + w[2] + "'");
      }
      return Status::OK();
    }
    if (verb == "run" && w.size() >= 4) {
      auto it = sessions_.find(w[2]);
      if (it == sessions_.end()) {
        return Status::KeyError("no session '" + w[2] + "'");
      }
      // Everything after the session name is the statement text.
      std::string text = line.substr(line.find(w[2]) + w[2].size());
      CODS_ASSIGN_OR_RETURN(auto script, ParseStatementScript(text));
      for (const Statement& stmt : script) {
        if (stmt.kind != Statement::Kind::kQuery) {
          return Status::InvalidArgument(
              "sessions are read pins; SMOs must run on the live catalog");
        }
        CODS_RETURN_NOT_OK(RunQueryOn(it->second, stmt.query));
      }
      return Status::OK();
    }
    return Status::InvalidArgument(
        "usage: .session open <name> | close <name> | run <name> <query;>");
  }

  Status Commit(const std::string& msg) {
    uint64_t v;
    if (db_ != nullptr) {
      CODS_ASSIGN_OR_RETURN(v, db_->CommitVersion(msg));
    } else {
      v = local_versions_.Commit(msg);
    }
    std::cout << "committed version " << v << "\n";
    return Status::OK();
  }

  void PrintWalStats() {
    DurableDbStats s = db_->GetStats();
    std::cout << "wal: " << s.wal_bytes << " bytes, next LSN " << s.next_lsn
              << ", durable LSN " << s.durable_lsn << "\n";
    if (s.checkpoint_exists) {
      std::cout << "checkpoint: covers LSN " << s.checkpoint_lsn << "\n";
    } else {
      std::cout << "checkpoint: none\n";
    }
    std::cout << "recovered at open: " << s.replayed_scripts << " scripts, "
              << s.replayed_version_marks << " version marks"
              << (s.recovered_torn_tail ? ", torn tail truncated" : "")
              << "\n";
    std::cout << "health: " << (s.healthy ? "ok" : s.health_message) << "\n";
  }

  Status LoadCsv(const std::string& path, const std::string& table) {
    CODS_ASSIGN_OR_RETURN(std::string text, SlurpFile(path));
    CODS_ASSIGN_OR_RETURN(auto t, CsvToTableInferred(text, table));
    // Loads go through the snapshot commit protocol like any writer.
    CODS_RETURN_NOT_OK(versions().Apply(
        [&](TableStore& store) { return store.AddTable(t); }));
    std::cout << "loaded " << t->rows() << " rows into " << table << "\n";
    // CSV loads are raw data, not statements — the WAL cannot replay
    // them, so capture the new table in a checkpoint right away.
    if (db_ != nullptr) {
      CODS_RETURN_NOT_OK(db_->Checkpoint());
      std::cout << "checkpointed (loads are not WAL-replayable)\n";
    }
    return Status::OK();
  }

  Status Count(const std::string& table, const std::string& column,
               const std::string& op_text, const std::string& literal) {
    CODS_ASSIGN_OR_RETURN(auto t,
                          versions().GetSnapshot().root().GetTable(table));
    CompareOp op;
    if (op_text == "=") {
      op = CompareOp::kEq;
    } else if (op_text == "!=") {
      op = CompareOp::kNe;
    } else if (op_text == "<") {
      op = CompareOp::kLt;
    } else if (op_text == "<=") {
      op = CompareOp::kLe;
    } else if (op_text == ">") {
      op = CompareOp::kGt;
    } else if (op_text == ">=") {
      op = CompareOp::kGe;
    } else {
      return Status::InvalidArgument("bad operator '" + op_text + "'");
    }
    CODS_ASSIGN_OR_RETURN(size_t col_idx, t->schema().ColumnIndex(column));
    CODS_ASSIGN_OR_RETURN(
        Value lit, Value::Parse(literal, t->schema().column(col_idx).type));
    // Sugar for SELECT COUNT(*) FROM table WHERE column op lit — same
    // engine, same plan.
    return RunQuery(QueryRequest::Count(
        table, Expr::Compare(column, op, std::move(lit))));
  }

  Status Advise(const std::string& table, const std::string& group1,
                const std::string& group2) {
    CODS_ASSIGN_OR_RETURN(auto t,
                          versions().GetSnapshot().root().GetTable(table));
    CODS_ASSIGN_OR_RETURN(auto est,
                          EstimateDecompose(*t, ParseNameGroup(group1),
                                            ParseNameGroup(group2)));
    std::cout << est.ToString() << "\n";
    return Status::OK();
  }

  Status Open(const std::string& path) {
    CODS_ASSIGN_OR_RETURN(Catalog loaded, LoadCatalog(path));
    local_versions_.Reset(loaded);
    log_.Clear();
    std::cout << "opened " << path << " (" << loaded.size() << " tables)\n";
    return Status::OK();
  }

  // `arg` is inline script text when it contains ';', else a path to a
  // script file. Prints the dependency-DAG plan; with `run`, executes it
  // through the planner + task graph (planned runs are not undoable, so
  // the undo log is cleared).
  Status Plan(const std::string& arg, bool run) {
    std::string text = arg;
    if (arg.find(';') == std::string::npos) {
      CODS_ASSIGN_OR_RETURN(text, SlurpFile(arg));
    }
    CODS_ASSIGN_OR_RETURN(std::vector<Smo> script, ParseSmoScript(text));
    ScriptPlan plan = PlanScript(script);
    std::cout << FormatScriptPlan(script, plan);
    if (!run) return Status::OK();
    // Planned runs are not undoable, and even a failed one commits the
    // serial prefix — the undo log is stale either way, so drop it
    // before executing, not only on success.
    log_.Clear();
    TaskGraphStats stats;
    if (db_ != nullptr) {
      CODS_RETURN_NOT_OK(db_->ApplyScriptPlanned(script, &stats));
    } else {
      CODS_RETURN_NOT_OK(engine_.ApplyAllPlanned(script, &stats));
    }
    std::cout << "ok: " << stats.ran << " SMOs on " << stats.threads
              << " threads, peak " << stats.max_parallel
              << " in flight\n";
    return Status::OK();
  }

  Status Undo() {
    if (log_.size() == 0) {
      return Status::InvalidArgument("nothing to undo");
    }
    Smo inverse = log_.UndoScript().front();
    CODS_RETURN_NOT_OK(ApplySmo(inverse));
    std::cout << "undid via: " << inverse.ToString() << "\n";
    // One-shot undo: recording deeper history would need the pre-states
    // of earlier operators, which are gone once undone.
    log_.Clear();
    return Status::OK();
  }

  template <typename Fn>
  void WithTable(const std::string& name, Fn&& fn) {
    auto t = versions().GetSnapshot().root().GetTable(name);
    if (!t.ok()) {
      std::cout << "error: " << t.status().ToString() << "\n";
      return;
    }
    fn(*t.ValueOrDie());
  }

  void Report(const Status& st) {
    if (!st.ok()) std::cout << "error: " << st.ToString() << "\n";
  }

  static constexpr const char* kHelp =
      "Statements end with ';'. SMOs: CREATE/DROP/RENAME/COPY TABLE, UNION\n"
      "TABLES, PARTITION TABLE, DECOMPOSE TABLE, MERGE TABLES, ADD/DROP/\n"
      "RENAME COLUMN. Queries:\n"
      "  SELECT <cols|*> FROM t [JOIN u ON x = y] [WHERE expr]\n"
      "    [ORDER BY c [DESC]] [LIMIT n];\n"
      "  SELECT COUNT(*) FROM t [JOIN u ON x = y] [WHERE expr];\n"
      "  SELECT g, SUM(m), COUNT(*), MIN(m), MAX(m), AVG(m) FROM t\n"
      "    [WHERE expr] GROUP BY g;\n"
      "Joined columns are qualified (t.c); WHERE expressions nest: =, !=,\n"
      "<, <=, >, >=, IN (..), BETWEEN a AND b, NOT, AND, OR, parens — e.g.\n"
      "  SELECT * FROM R JOIN U ON R.k = U.k WHERE a = 'x' AND (b > 3 OR\n"
      "    NOT c IN (1, 2)) ORDER BY b DESC LIMIT 10;\n"
      "Dot commands:\n"
      "  .load <csv> <table>   .tables   .show <t>   .stats <t>\n"
      "  .count <t> <col> <op> <lit>     .advise decompose <t> (c,..) (c,..)\n"
      "  .save <path>  .open <path>  .commit <msg>  .log  .checkout <v>\n"
      "  .checkpoint             force a checkpoint + WAL reset (--db)\n"
      "  .wal                    durability status: LSNs, sizes (--db)\n"
      "  .snapshot               serving stats: root id, commits/aborts,\n"
      "                          live reader pins\n"
      "  .session open <name>    pin the current snapshot under <name>\n"
      "  .session run <name> <query;>  query that pinned snapshot (reads\n"
      "                          the db as of the pin, ignoring later SMOs)\n"
      "  .session close <name>   release the pin\n"
      "  .sessions               list pinned sessions\n"
      "  .plan <file|script>     show a script's dependency-DAG plan\n"
      "  .runplan <file|script>  execute via planner (overlaps SMOs)\n"
      "  .undo  .help  .quit\n"
      "Queries always run on a pinned snapshot root, so a concurrently\n"
      "committing script never tears a result. Started with --db <dir>,\n"
      "every statement is WAL-logged and fsync'd strictly before its root\n"
      "swap becomes visible ('ok'); reopening the directory recovers the\n"
      "committed state, and sessions/.snapshot work the same way.\n"
      "Started with --connect <host:port> the shell is a thin client of a\n"
      "running cods_server instead: statements execute remotely over the\n"
      "checksummed frame protocol on that server's pinned snapshots.\n";

  std::unique_ptr<DurableDb> db_;
  VersionedCatalog local_versions_;
  LoggingObserver observer_;
  EvolutionEngine engine_;
  EvolutionLog log_;
  // Named reader pins (.session); each holds its root alive.
  std::map<std::string, Snapshot> sessions_;
};

}  // namespace

namespace {

// Thin-client mode (--connect host:port): the same statement surface,
// executed remotely over the server/client.h frame protocol. One
// binary exercises both the embedded and the networked path.
int RunConnected(const std::string& host, uint16_t port, bool interactive) {
  auto client_r = server::Client::Connect(host, port);
  if (!client_r.ok()) {
    std::cerr << "connect " << host << ":" << port << ": "
              << client_r.status().ToString() << "\n";
    return 1;
  }
  std::unique_ptr<server::Client> client = std::move(client_r).ValueOrDie();
  std::cout << "connected to " << host << ":" << port << " (session "
            << client->session_id() << ")\n"
            << "statements end with ';'; .ping checks liveness; .quit "
               "disconnects; .help lists the statement grammar\n";
  std::string pending;
  std::string line;
  while (true) {
    if (interactive) {
      std::cout << (pending.empty() ? "cods> " : "  ... ") << std::flush;
    }
    if (!std::getline(std::cin, line)) break;
    if (pending.empty() && !line.empty() && line[0] == '.') {
      if (line == ".quit" || line == ".exit") break;
      if (line == ".ping") {
        Status st = client->Ping();
        std::cout << (st.ok() ? "pong" : st.ToString()) << "\n";
        continue;
      }
      if (line == ".help") {
        std::cout
            << "Remote session: every statement is sent to the server and\n"
               "answered on its pinned snapshot; SMOs are durably committed\n"
               "before 'OK'. Statement grammar matches the embedded shell\n"
               "(SELECT / COUNT / GROUP BY, CREATE TABLE, PARTITION, ...).\n"
               "Dot commands here: .ping  .help  .quit\n";
        continue;
      }
      std::cout << "unknown command in --connect mode; try .help\n";
      continue;
    }
    pending += line;
    pending += '\n';
    // Execute once the buffer ends in ';' (outside the grammar's string
    // literals this is exactly one-or-more statements; the server
    // parses one statement per EXECUTE, so ship them one at a time).
    std::string trimmed = pending;
    while (!trimmed.empty() &&
           (trimmed.back() == '\n' || trimmed.back() == ' ' ||
            trimmed.back() == '\t' || trimmed.back() == '\r')) {
      trimmed.pop_back();
    }
    if (trimmed.empty() || trimmed.back() != ';') continue;
    pending.clear();
    auto resp = client->Execute(trimmed);
    if (!resp.ok()) {
      std::cout << "transport error: " << resp.status().ToString() << "\n";
      return 1;
    }
    std::cout << server::FormatWireResponse(resp.ValueOrDie()) << "\n";
  }
  client->Close();
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  // --threads N: worker count for the parallel execution layer (default:
  // CODS_THREADS env var, else hardware concurrency).
  // --db <dir>: open a crash-safe database directory (WAL + checkpoint).
  // --connect host:port: thin-client mode against a running cods_server.
  std::string db_dir;
  std::string connect;
  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    if (arg.rfind("--threads=", 0) == 0 || arg == "--threads") {
      int threads = 0;
      if (arg == "--threads" && i + 1 < argc) {
        threads = std::atoi(argv[++i]);
      } else if (arg != "--threads") {
        threads = std::atoi(arg.c_str() + 10);
      }
      if (threads <= 0) {
        std::cerr << "--threads wants a positive integer\n";
        return 2;
      }
      SetDefaultThreads(threads);
    } else if (arg.rfind("--db=", 0) == 0) {
      db_dir = arg.substr(5);
    } else if (arg == "--db" && i + 1 < argc) {
      db_dir = argv[++i];
    } else if (arg.rfind("--connect=", 0) == 0) {
      connect = arg.substr(10);
    } else if (arg == "--connect" && i + 1 < argc) {
      connect = argv[++i];
    } else {
      std::cerr << "usage: cods_shell [--threads N] [--db <dir>] "
                   "[--connect <host:port>]\n";
      return 2;
    }
  }
  if (!connect.empty()) {
    if (!db_dir.empty()) {
      std::cerr << "--connect and --db are mutually exclusive\n";
      return 2;
    }
    size_t colon = connect.rfind(':');
    if (colon == std::string::npos || colon == 0 ||
        colon + 1 >= connect.size()) {
      std::cerr << "--connect wants host:port\n";
      return 2;
    }
    int port = std::atoi(connect.c_str() + colon + 1);
    if (port <= 0 || port > 65535) {
      std::cerr << "--connect: bad port\n";
      return 2;
    }
    return RunConnected(connect.substr(0, colon),
                        static_cast<uint16_t>(port), isatty(0));
  }
  std::unique_ptr<DurableDb> db;
  if (!db_dir.empty()) {
    auto opened = DurableDb::Open(Env::Default(), db_dir);
    if (!opened.ok()) {
      std::cerr << "cannot open database '" << db_dir
                << "': " << opened.status().ToString() << "\n";
      return 1;
    }
    db = std::move(opened).ValueOrDie();
    DurableDbStats s = db->GetStats();
    std::cout << "opened durable db '" << db_dir << "' (recovered "
              << s.replayed_scripts << " scripts, "
              << s.replayed_version_marks << " version marks"
              << (s.recovered_torn_tail ? ", torn tail truncated" : "")
              << ")\n";
  }
  bool interactive = isatty(0);
  std::cout << "CODS shell — column-oriented database schema evolution\n"
            << "type .help for commands\n";
  Shell shell(std::move(db));
  return shell.Run(std::cin, interactive);
}

// cods_server: the network front end over a durable database
// directory. Sessions speak the frame protocol of src/server/wire.h
// (use `cods_shell --connect host:port` or the Client library);
// statements run through two-lane admission control; SMO commits are
// WAL-fsync'd before they are acked.
//
// Usage:
//   cods_server --db <dir> [--port N] [--host A] [--point-workers N]
//               [--heavy-workers N] [--statement-timeout-ms N]
//               [--heavy-row-threshold N] [--threads N]
//
// SIGINT / SIGTERM trigger a graceful drain: admitted statements run to
// completion and every response is flushed before sockets close.

#include <csignal>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>

#include <unistd.h>

#include "common/env.h"
#include "durability/db.h"
#include "server/server.h"

namespace {

volatile sig_atomic_t g_stop = 0;

void OnSignal(int) { g_stop = 1; }

void PrintHelp() {
  std::printf(
      "cods_server: serve a CODS database directory over TCP\n"
      "\n"
      "  --db <dir>                 database directory (required; created\n"
      "                             if missing, recovered if present)\n"
      "  --port <n>                 listen port (default 4650; 0 picks an\n"
      "                             ephemeral port, printed at startup)\n"
      "  --host <addr>              listen address (default 127.0.0.1)\n"
      "  --point-workers <n>        point-lane worker slots (default 1)\n"
      "  --heavy-workers <n>        heavy-lane worker slots (default 2)\n"
      "  --statement-timeout-ms <n> per-statement deadline; statements\n"
      "                             still queued past it answer TIMED_OUT\n"
      "                             (default 10000; 0 disables)\n"
      "  --heavy-row-threshold <n>  popcount-estimate split between the\n"
      "                             point and heavy lanes (default 4096)\n"
      "  --threads <n>              exec threads per statement (default 1)\n"
      "  --help                     this text\n"
      "\n"
      "Protocol: length-prefixed CRC32C-checksummed frames carrying\n"
      "statement text or prepared-statement ids + params; responses are\n"
      "matched to requests by id. Connect with:\n"
      "  cods_shell --connect 127.0.0.1:4650\n");
}

}  // namespace

int main(int argc, char** argv) {
  std::string db_dir;
  cods::server::ServerOptions options;
  options.port = 4650;
  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    auto next = [&]() -> const char* {
      if (i + 1 >= argc) {
        std::fprintf(stderr, "missing value for %s\n", arg.c_str());
        std::exit(2);
      }
      return argv[++i];
    };
    if (arg == "--help" || arg == "-h") {
      PrintHelp();
      return 0;
    } else if (arg == "--db") {
      db_dir = next();
    } else if (arg == "--port") {
      options.port = static_cast<uint16_t>(std::atoi(next()));
    } else if (arg == "--host") {
      options.host = next();
    } else if (arg == "--point-workers") {
      options.point_workers = std::atoi(next());
    } else if (arg == "--heavy-workers") {
      options.heavy_workers = std::atoi(next());
    } else if (arg == "--statement-timeout-ms") {
      options.statement_timeout_ms = std::atoi(next());
    } else if (arg == "--heavy-row-threshold") {
      options.heavy_row_threshold =
          static_cast<uint64_t>(std::atoll(next()));
    } else if (arg == "--threads") {
      options.exec_threads = std::atoi(next());
    } else {
      std::fprintf(stderr, "unknown flag %s (try --help)\n", arg.c_str());
      return 2;
    }
  }
  if (db_dir.empty()) {
    std::fprintf(stderr, "cods_server: --db <dir> is required (--help)\n");
    return 2;
  }

  cods::Env* env = cods::Env::Default();
  auto db = cods::DurableDb::Open(env, db_dir);
  if (!db.ok()) {
    std::fprintf(stderr, "open %s: %s\n", db_dir.c_str(),
                 db.status().ToString().c_str());
    return 1;
  }

  cods::server::Server server(db.ValueOrDie().get(), options);
  cods::Status started = server.Start();
  if (!started.ok()) {
    std::fprintf(stderr, "start: %s\n", started.ToString().c_str());
    return 1;
  }
  std::printf("cods_server: serving %s on %s:%u\n", db_dir.c_str(),
              options.host.c_str(), static_cast<unsigned>(server.port()));
  std::fflush(stdout);

  std::signal(SIGINT, OnSignal);
  std::signal(SIGTERM, OnSignal);
  while (!g_stop) {
    usleep(100 * 1000);
  }
  std::printf("cods_server: draining...\n");
  std::fflush(stdout);
  server.Shutdown();
  cods::server::ServerStats stats = server.GetStats();
  std::printf(
      "cods_server: done. sessions=%llu statements_ok=%llu errors=%llu "
      "timed_out=%llu batch_hits=%llu\n",
      static_cast<unsigned long long>(stats.sessions_opened),
      static_cast<unsigned long long>(stats.statements_ok),
      static_cast<unsigned long long>(stats.statements_error),
      static_cast<unsigned long long>(stats.statements_timed_out),
      static_cast<unsigned long long>(stats.batch.batch_hits));
  return 0;
}

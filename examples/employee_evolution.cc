// The paper's §1 walkthrough, scenario 1 ("new information about the
// data"): table R(Employee, Skill) gains an Address attribute; later we
// learn employees have multiple skills, so R is decomposed into
// S(Employee, Skill) and T(Employee, Address) to remove redundancy and
// update anomalies — Figure 1's schema 1 → schema 2 evolution, executed
// at the data level with the evolution status shown step by step.
//
//   $ ./build/examples/employee_evolution

#include <cstdlib>
#include <iostream>

#include "evolution/engine.h"
#include "storage/printer.h"
#include "storage/scanner.h"

using namespace cods;

namespace {

std::shared_ptr<const Table> InitialEmployeeTable() {
  Schema schema({{"Employee", DataType::kString, false},
                 {"Skill", DataType::kString, false}},
                {});
  TableBuilder builder("R", schema);
  const char* rows[][2] = {
      {"Jones", "Typing"},          {"Jones", "Shorthand"},
      {"Roberts", "Light Cleaning"}, {"Ellis", "Alchemy"},
      {"Jones", "Whittling"},       {"Ellis", "Juggling"},
      {"Harrison", "Light Cleaning"}};
  for (auto& r : rows) {
    CODS_CHECK_OK(builder.AppendRow({Value(r[0]), Value(r[1])}));
  }
  return builder.Finish().ValueOrDie();
}

// Address of each employee, as it "emerges" later (paper Figure 1).
Value AddressOf(const Value& employee) {
  const std::string& e = employee.str();
  if (e == "Jones" || e == "Harrison") return Value("425 Grant Ave");
  return Value("747 Industrial Way");
}

}  // namespace

int main() {
  Catalog catalog;
  CODS_CHECK_OK(catalog.AddTable(InitialEmployeeTable()));
  LoggingObserver status;  // the demo's "Data Evolution Status" pane
  EvolutionEngine engine(&catalog, &status,
                         EngineOptions{.validate_preconditions = true});

  std::cout << "== Schema v0: employees and skills ==\n"
            << FormatTable(*catalog.GetTable("R").ValueOrDie()) << "\n";

  // ---- Evolution 1: address information emerges → ADD COLUMN. ----------
  // The demo supports loading per-row data for the new column; here we
  // compute it from the employee attribute.
  {
    auto r = catalog.GetTable("R").ValueOrDie();
    std::vector<Value> addresses;
    TableScanner scanner(*r, {0});
    for (uint64_t row = 0; row < r->rows(); ++row) {
      addresses.push_back(AddressOf(scanner.GetRow(row)[0]));
    }
    auto with_addr = AddColumnWithDataOp(
        *r, {"Address", DataType::kString, false}, addresses);
    CODS_CHECK_OK(with_addr.status());
    catalog.PutTable(with_addr.ValueOrDie());
  }
  std::cout << "== Schema v1: Address column added ==\n"
            << FormatTable(*catalog.GetTable("R").ValueOrDie()) << "\n";

  // ---- Evolution 2: redundancy spotted → DECOMPOSE (schema 1 → 2). -----
  // Addresses repeat once per skill; decomposing on the FD
  // Employee → Address removes the redundancy.
  CODS_CHECK_OK(engine.Apply(Smo::DecomposeTable(
      "R", "S", {"Employee", "Skill"}, {"Employee", "Skill"}, "T",
      {"Employee", "Address"}, {"Employee"})));
  std::cout << "\n== Schema v2: decomposed ==\n"
            << FormatTable(*catalog.GetTable("S").ValueOrDie()) << "\n"
            << FormatTable(*catalog.GetTable("T").ValueOrDie()) << "\n";

  // ---- Evolution 3: workload turns query-heavy → MERGE (schema 2 → 1).
  // Most queries now look up addresses given skills; the join hurts, so
  // evolve back to the wide schema.
  CODS_CHECK_OK(
      engine.Apply(Smo::MergeTables("S", "T", "R", {"Employee"}, {})));
  std::cout << "\n== Schema v3: merged back for the query-heavy workload "
               "==\n"
            << FormatTable(*catalog.GetTable("R").ValueOrDie());

  return EXIT_SUCCESS;
}

// Quickstart: build a table, inspect its compressed storage, run one
// schema evolution, and look at the results.
//
//   $ ./build/examples/quickstart

#include <cstdlib>
#include <iostream>

#include "evolution/engine.h"
#include "storage/csv.h"
#include "storage/printer.h"

using namespace cods;  // examples favor brevity; library code never does this

int main() {
  // 1. Load a small table from CSV (types inferred from the data).
  const char* csv =
      "Employee,Skill,Address\n"
      "Jones,Typing,425 Grant Ave\n"
      "Jones,Shorthand,425 Grant Ave\n"
      "Roberts,Light Cleaning,747 Industrial Way\n"
      "Ellis,Alchemy,747 Industrial Way\n"
      "Jones,Whittling,425 Grant Ave\n"
      "Ellis,Juggling,747 Industrial Way\n"
      "Harrison,Light Cleaning,425 Grant Ave\n";
  auto r = CsvToTableInferred(csv, "R");
  if (!r.ok()) {
    std::cerr << r.status().ToString() << "\n";
    return EXIT_FAILURE;
  }

  std::cout << "Loaded table:\n" << FormatTable(**r) << "\n";
  std::cout << "Storage (each column = dictionary + one WAH bitmap per "
               "distinct value):\n"
            << FormatTableStats(**r) << "\n";

  // 2. Put it in a catalog and evolve the schema at the data level.
  Catalog catalog;
  CODS_CHECK_OK(catalog.AddTable(*r));
  LoggingObserver observer;  // prints each data-evolution step
  EvolutionEngine engine(&catalog, &observer);

  Smo decompose = Smo::DecomposeTable(
      "R", "S", {"Employee", "Skill"}, /*s_key=*/{}, "T",
      {"Employee", "Address"}, /*t_key=*/{"Employee"});
  std::cout << "Executing: " << decompose.ToString() << "\n";
  CODS_CHECK_OK(engine.Apply(decompose));

  // 3. Inspect the outputs. S reused R's columns untouched; T was built
  //    directly from R's compressed bitmaps.
  auto s = catalog.GetTable("S").ValueOrDie();
  auto t = catalog.GetTable("T").ValueOrDie();
  std::cout << "\n" << FormatTable(*s) << "\n" << FormatTable(*t) << "\n";

  // 4. And back: merge S and T into R again (key-foreign key mergence).
  Smo merge = Smo::MergeTables("S", "T", "R", {"Employee"}, {});
  std::cout << "Executing: " << merge.ToString() << "\n";
  CODS_CHECK_OK(engine.Apply(merge));
  std::cout << "\n" << FormatTable(*catalog.GetTable("R").ValueOrDie());
  return EXIT_SUCCESS;
}

// The paper's §1 scenario 2 ("new information about the workload"):
// a data-warehouse fact table evolving between a denormalized wide
// schema (star-ish, good for queries) and a normalized one (snowflake-
// ish, good for updates) as the workload shifts — and back.
//
// Sales(OrderId, Product, Category, Region, Amount) where Product →
// Category. Update-heavy phase: split the product dimension out.
// Query-heavy phase: merge it back in. Timings of both directions are
// reported, including what the query-level approach would have cost.
//
//   $ ./build/examples/warehouse_schema [rows]

#include <cstdlib>
#include <iostream>

#include "common/random.h"
#include "common/stopwatch.h"
#include "evolution/engine.h"
#include "query/query_evolution.h"
#include "storage/printer.h"

using namespace cods;

namespace {

std::shared_ptr<const Table> BuildSales(uint64_t rows) {
  Rng rng(7);
  Schema schema({{"OrderId", DataType::kInt64, false},
                 {"Product", DataType::kInt64, false},
                 {"Category", DataType::kInt64, false},
                 {"Region", DataType::kInt64, false},
                 {"Amount", DataType::kInt64, false}},
                {"OrderId"});
  TableBuilder builder("Sales", schema);
  constexpr int64_t kProducts = 500;
  for (uint64_t i = 0; i < rows; ++i) {
    int64_t product = i < kProducts ? static_cast<int64_t>(i)
                                    : rng.Uniform(0, kProducts - 1);
    int64_t category = product / 25;  // FD Product -> Category
    CODS_CHECK_OK(builder.AppendRow(
        {Value(static_cast<int64_t>(i)), Value(product), Value(category),
         Value(rng.Uniform(0, 7)), Value(rng.Uniform(1, 1000))}));
  }
  return builder.Finish().ValueOrDie();
}

}  // namespace

int main(int argc, char** argv) {
  uint64_t rows = argc > 1 ? std::strtoull(argv[1], nullptr, 10) : 200'000;
  Catalog catalog;
  CODS_CHECK_OK(catalog.AddTable(BuildSales(rows)));
  EvolutionEngine engine(&catalog);

  std::cout << "Fact table (" << rows << " rows):\n"
            << FormatTableStats(*catalog.GetTable("Sales").ValueOrDie())
            << "\n";

  // ---- Update-heavy phase: normalize (wide → snowflake). ---------------
  Stopwatch watch;
  CODS_CHECK_OK(engine.Apply(Smo::DecomposeTable(
      "Sales", "Facts", {"OrderId", "Product", "Region", "Amount"},
      {"OrderId"}, "ProductDim", {"Product", "Category"}, {"Product"})));
  double split_s = watch.ElapsedSeconds();
  std::cout << "Normalized in " << split_s * 1000 << " ms (CODS data "
            << "level):\n"
            << "  Facts: "
            << catalog.GetTable("Facts").ValueOrDie()->rows() << " rows\n"
            << "  ProductDim: "
            << catalog.GetTable("ProductDim").ValueOrDie()->rows()
            << " rows\n\n";

  // ---- Query-heavy phase: denormalize (snowflake → wide). --------------
  watch.Reset();
  CODS_CHECK_OK(engine.Apply(
      Smo::MergeTables("Facts", "ProductDim", "Sales", {"Product"},
                       {"OrderId"})));
  double merge_s = watch.ElapsedSeconds();
  std::cout << "Denormalized in " << merge_s * 1000
            << " ms (key-FK mergence).\n\n";

  // ---- What would the query-level approach have cost? ------------------
  auto sales = catalog.GetTable("Sales").ValueOrDie();
  DecomposeSpec spec;
  spec.s_columns = {"OrderId", "Product", "Region", "Amount"};
  spec.s_key = {"OrderId"};
  spec.t_columns = {"Product", "Category"};
  spec.t_key = {"Product"};
  watch.Reset();
  auto baseline = ColumnQueryLevelDecompose(*sales, spec, "F", "P");
  CODS_CHECK_OK(baseline.status());
  double baseline_s = watch.ElapsedSeconds();
  std::cout << "Query-level decomposition of the same table: "
            << baseline_s * 1000 << " ms ("
            << baseline_s / (split_s > 0 ? split_s : 1e-9)
            << "x slower than data-level)\n"
            << "  breakdown: scan " << baseline->timing.scan_s * 1000
            << " ms, query " << baseline->timing.query_s * 1000
            << " ms, re-compress " << baseline->timing.compress_s * 1000
            << " ms\n";
  return EXIT_SUCCESS;
}

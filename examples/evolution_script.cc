// Script-driven evolution: the CLI equivalent of the CODS demo UI.
// Reads a statement script — SMOs and SELECT queries interleaved
// through the unified parser — from a file argument or a built-in
// sample, executes it against a catalog seeded with the Figure 1 table,
// and narrates every step ("Data Evolution Status" pane; query results
// print inline).
//
//   $ ./build/examples/evolution_script [--plan] [script.smo]
//
// --plan prints the script planner's dependency-DAG (the EXPLAIN view:
// stages, read/write sets, edges) for the script's SMOs instead of
// executing; queries read but never write, so they are listed outside
// the DAG.

#include <cstdlib>
#include <fstream>
#include <iostream>
#include <sstream>

#include "evolution/engine.h"
#include "plan/script_planner.h"
#include "query/query_engine.h"
#include "smo/parser.h"
#include "storage/csv.h"
#include "storage/printer.h"

using namespace cods;

namespace {

const char kSampleScript[] = R"(-- CODS sample evolution script
COPY TABLE R TO R_v1;                       -- keep the old version around
SELECT COUNT(*) FROM R WHERE Skill = 'Light Cleaning'
  OR Address = '425 Grant Ave';             -- query the pre-evolution shape
DECOMPOSE TABLE R INTO S(Employee, Skill),
  T(Employee, Address) KEY(Employee);       -- schema 1 -> schema 2
ADD COLUMN Verified INT64 TO T DEFAULT 0;   -- enrich the new dimension
RENAME COLUMN Verified TO AddressVerified IN T;
PARTITION TABLE S INTO Cleaners, Others
  WHERE Skill = 'Light Cleaning';           -- split off one workload
UNION TABLES Cleaners, Others INTO S;       -- ...and put it back
SELECT Employee FROM S WHERE Skill = 'Light Cleaning'
  AND NOT Employee IN ('Nobody');           -- ...and query the new shape
SELECT S.Employee, Skill, Address FROM S JOIN T ON S.Employee = T.Employee
  WHERE AddressVerified = 0
  ORDER BY Skill DESC LIMIT 4;              -- cross-table, still compressed
SELECT Address, COUNT(*) FROM S JOIN T ON Employee = Employee
  GROUP BY Address;                         -- skills on file per address
)";

const char kSampleData[] =
    "Employee,Skill,Address\n"
    "Jones,Typing,425 Grant Ave\n"
    "Jones,Shorthand,425 Grant Ave\n"
    "Roberts,Light Cleaning,747 Industrial Way\n"
    "Ellis,Alchemy,747 Industrial Way\n"
    "Jones,Whittling,425 Grant Ave\n"
    "Ellis,Juggling,747 Industrial Way\n"
    "Harrison,Light Cleaning,425 Grant Ave\n";

}  // namespace

int main(int argc, char** argv) {
  std::string script_text = kSampleScript;
  bool plan_only = false;
  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    if (arg == "--plan") {
      plan_only = true;
      continue;
    }
    std::ifstream in(arg);
    if (!in) {
      std::cerr << "cannot open script '" << arg << "'\n";
      return EXIT_FAILURE;
    }
    std::ostringstream buf;
    buf << in.rdbuf();
    script_text = buf.str();
  }

  auto script = ParseStatementScript(script_text);
  if (!script.ok()) {
    std::cerr << "parse error: " << script.status().ToString() << "\n";
    return EXIT_FAILURE;
  }

  if (plan_only) {
    std::vector<Smo> smos;
    size_t queries = 0;
    for (const Statement& stmt : *script) {
      if (stmt.kind == Statement::Kind::kSmo) {
        smos.push_back(stmt.smo);
      } else {
        ++queries;
      }
    }
    std::cout << FormatScriptPlan(smos, PlanScript(smos));
    if (queries > 0) {
      std::cout << queries << " quer" << (queries == 1 ? "y" : "ies")
                << " excluded from the DAG (queries read, never write)\n";
    }
    return EXIT_SUCCESS;
  }

  Catalog catalog;
  CODS_CHECK_OK(
      catalog.AddTable(CsvToTableInferred(kSampleData, "R").ValueOrDie()));
  LoggingObserver status;
  EvolutionEngine engine(&catalog, &status,
                         EngineOptions{.validate_preconditions = true,
                                       .validate_outputs = true});
  QueryEngine queries(&catalog);

  std::cout << "Executing " << script->size() << " statements...\n";
  for (const Statement& stmt : *script) {
    std::cout << "\n>>> " << stmt.ToString() << "\n";
    if (stmt.kind == Statement::Kind::kQuery) {
      auto result = queries.Execute(stmt.query);
      if (!result.ok()) {
        std::cerr << "failed: " << result.status().ToString() << "\n";
        return EXIT_FAILURE;
      }
      if (result->verb == QueryRequest::Verb::kSelect) {
        std::cout << FormatTable(*result->table);
      } else {
        std::cout << result->ToString() << "\n";
      }
      continue;
    }
    Status st = engine.Apply(stmt.smo);
    if (!st.ok()) {
      std::cerr << "failed: " << st.ToString() << "\n";
      return EXIT_FAILURE;
    }
  }

  std::cout << "\nFinal catalog:\n";
  for (const std::string& name : catalog.TableNames()) {
    std::cout << "\n"
              << FormatTable(*catalog.GetTable(name).ValueOrDie());
  }
  return EXIT_SUCCESS;
}

// Script-driven evolution: the CLI equivalent of the CODS demo UI.
// Reads an SMO script (from a file argument or a built-in sample),
// executes it against a catalog seeded with the Figure 1 table, and
// narrates every data-evolution step — the "Data Evolution Status" pane.
//
//   $ ./build/examples/evolution_script [--plan] [script.smo]
//
// --plan prints the script planner's dependency-DAG (the EXPLAIN view:
// stages, read/write sets, edges) instead of executing.

#include <cstdlib>
#include <fstream>
#include <iostream>
#include <sstream>

#include "evolution/engine.h"
#include "plan/script_planner.h"
#include "smo/parser.h"
#include "storage/csv.h"
#include "storage/printer.h"

using namespace cods;

namespace {

const char kSampleScript[] = R"(-- CODS sample evolution script
COPY TABLE R TO R_v1;                       -- keep the old version around
DECOMPOSE TABLE R INTO S(Employee, Skill),
  T(Employee, Address) KEY(Employee);       -- schema 1 -> schema 2
ADD COLUMN Verified INT64 TO T DEFAULT 0;   -- enrich the new dimension
RENAME COLUMN Verified TO AddressVerified IN T;
PARTITION TABLE S INTO Cleaners, Others
  WHERE Skill = 'Light Cleaning';           -- split off one workload
UNION TABLES Cleaners, Others INTO S;       -- ...and put it back
)";

const char kSampleData[] =
    "Employee,Skill,Address\n"
    "Jones,Typing,425 Grant Ave\n"
    "Jones,Shorthand,425 Grant Ave\n"
    "Roberts,Light Cleaning,747 Industrial Way\n"
    "Ellis,Alchemy,747 Industrial Way\n"
    "Jones,Whittling,425 Grant Ave\n"
    "Ellis,Juggling,747 Industrial Way\n"
    "Harrison,Light Cleaning,425 Grant Ave\n";

}  // namespace

int main(int argc, char** argv) {
  std::string script_text = kSampleScript;
  bool plan_only = false;
  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    if (arg == "--plan") {
      plan_only = true;
      continue;
    }
    std::ifstream in(arg);
    if (!in) {
      std::cerr << "cannot open script '" << arg << "'\n";
      return EXIT_FAILURE;
    }
    std::ostringstream buf;
    buf << in.rdbuf();
    script_text = buf.str();
  }

  auto script = ParseSmoScript(script_text);
  if (!script.ok()) {
    std::cerr << "parse error: " << script.status().ToString() << "\n";
    return EXIT_FAILURE;
  }

  if (plan_only) {
    std::cout << FormatScriptPlan(*script, PlanScript(*script));
    return EXIT_SUCCESS;
  }

  Catalog catalog;
  CODS_CHECK_OK(
      catalog.AddTable(CsvToTableInferred(kSampleData, "R").ValueOrDie()));
  LoggingObserver status;
  EvolutionEngine engine(&catalog, &status,
                         EngineOptions{.validate_preconditions = true,
                                       .validate_outputs = true});

  std::cout << "Executing " << script->size() << " operators...\n";
  for (const Smo& smo : *script) {
    std::cout << "\n>>> " << smo.ToString() << "\n";
    Status st = engine.Apply(smo);
    if (!st.ok()) {
      std::cerr << "failed: " << st.ToString() << "\n";
      return EXIT_FAILURE;
    }
  }

  std::cout << "\nFinal catalog:\n";
  for (const std::string& name : catalog.TableNames()) {
    std::cout << "\n"
              << FormatTable(*catalog.GetTable(name).ValueOrDie());
  }
  return EXIT_SUCCESS;
}

// The logical write-ahead log: crash durability for statement scripts.
// Because every Smo re-parses from Smo::ToString and the engine is
// deterministic (bit-identical WAH code words for a given statement
// sequence), logging the statement TEXT is a complete redo log: recovery
// replays the committed suffix and lands on exactly the catalog the
// crashed process had acknowledged.
//
// File layout (all integers little-endian, same style as serde.h):
//   wal     := record*
//   record  := length:u32 crc:u32 payload[length]
//   payload := lsn:u64 type:u8 body
//   body    :=                          (type 1, BEGIN — opens a script)
//            | text:str                 (type 2, STATEMENT)
//            | applied:u32              (type 3, COMMIT — closes a script)
//            | message:str              (type 4, VERSION mark)
//   str     := len:u32 byte*
//
// `crc` is the MASKED CRC32C of the payload (common/crc32c.h), so a
// statement that itself quotes WAL bytes cannot reproduce its own stored
// checksum. LSNs increase by exactly 1 per record.
//
// Commit protocol: a script is BEGIN, its STATEMENTs, then COMMIT; the
// writer fsyncs once, after appending COMMIT — the script is committed
// iff its COMMIT record is durable. COMMIT carries `applied`, the number
// of statements that succeeded in memory (< the statement count when the
// script failed mid-way), so replay reproduces failure prefixes without
// re-running the failing statement. A VERSION record is a self-committing
// VersionedCatalog commit mark (also fsync'd).
//
// Reader contract (ReadWal):
//   * A torn or corrupt TAIL — bytes after the last committed record
//     that do not parse, plus any trailing uncommitted script records —
//     is cleanly ignored; `committed_bytes` is the truncation point.
//   * Corruption BEFORE a later entry (a valid BEGIN/VERSION record
//     exists beyond the bad bytes) is a hard kCorruption: the writer
//     fsyncs before each new entry may start, so such damage sits in
//     synced history, and silently dropping it would lose committed
//     scripts. Damage whose only valid successors are the in-flight
//     entry's own STMT/COMMIT records is crash debris — torn tail.

#ifndef CODS_DURABILITY_WAL_H_
#define CODS_DURABILITY_WAL_H_

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "common/env.h"
#include "common/result.h"
#include "common/script_log.h"

namespace cods {

/// Record types (the `type` byte).
enum class WalRecordType : uint8_t {
  kBegin = 1,
  kStatement = 2,
  kCommit = 3,
  kVersionMark = 4,
};

/// One committed unit read back from the log: a statement script or a
/// version mark.
struct WalEntry {
  enum class Kind { kScript, kVersionMark };
  Kind kind = Kind::kScript;
  uint64_t begin_lsn = 0;   // BEGIN record (scripts) or the mark itself
  uint64_t commit_lsn = 0;  // COMMIT record (scripts) or the mark itself
  uint32_t applied = 0;               // kScript: statements that succeeded
  std::vector<std::string> statements;  // kScript
  std::string message;                  // kVersionMark
  uint64_t end_offset = 0;  // file offset just past this entry's records
};

/// Everything committed in a WAL file.
struct WalContents {
  std::vector<WalEntry> entries;
  /// LSN of the last committed record; 0 when the log is empty.
  uint64_t max_lsn = 0;
  /// Clean truncation point: the offset just past the last committed
  /// entry. Bytes beyond it (torn tail, uncommitted script) are not
  /// durable state.
  uint64_t committed_bytes = 0;
  /// True when bytes beyond committed_bytes were ignored.
  bool tail_dropped = false;
};

/// Parses a WAL file under the reader contract above.
Result<WalContents> ReadWal(Env* env, const std::string& path);

/// Appends records to a WAL file. Any I/O failure is sticky: the writer
/// poisons itself and every later call returns the original error, so a
/// half-appended (torn) record can never be followed by more records —
/// the tail stays cleanly truncatable.
class WalWriter : public ScriptLog {
 public:
  /// Opens `path` for appending; new records start at `next_lsn`.
  static Result<std::unique_ptr<WalWriter>> Open(Env* env,
                                                 const std::string& path,
                                                 uint64_t next_lsn);

  /// Opens a script. No fsync (the commit carries it).
  Status BeginScript() override;
  /// Logs one statement of the open script. No fsync.
  Status AppendStatement(const std::string& text) override;
  /// Closes the open script and makes it durable (append + fsync).
  /// `applied` = statements that succeeded in memory.
  Status CommitScript(uint32_t applied) override;
  /// Logs a self-committing VersionedCatalog mark (append + fsync).
  Status AppendVersionMark(const std::string& message);

  /// Next LSN to be assigned.
  uint64_t next_lsn() const { return next_lsn_; }
  /// LSN of the last fsync'd record (0 if none this session).
  uint64_t durable_lsn() const { return durable_lsn_; }
  /// Bytes appended to the file, including pre-existing ones.
  uint64_t size_bytes() const { return size_bytes_; }
  /// Sticky health: OK until the first I/O failure.
  const Status& health() const { return state_; }

 private:
  WalWriter(std::unique_ptr<WritableFile> file, uint64_t next_lsn,
            uint64_t existing_bytes)
      : file_(std::move(file)),
        next_lsn_(next_lsn),
        size_bytes_(existing_bytes) {}

  Status AppendRecord(WalRecordType type,
                      const std::vector<uint8_t>& body);
  Status Sticky(Status st);

  std::unique_ptr<WritableFile> file_;
  uint64_t next_lsn_;
  uint64_t durable_lsn_ = 0;
  uint64_t size_bytes_;
  bool in_script_ = false;
  Status state_;  // sticky
};

}  // namespace cods

#endif  // CODS_DURABILITY_WAL_H_

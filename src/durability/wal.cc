#include "durability/wal.h"

#include "common/crc32c.h"
#include "storage/serde.h"  // BinaryWriter / BinaryReader

namespace cods {

namespace {

constexpr size_t kHeaderSize = 8;  // length:u32 crc:u32
// Sanity cap against corrupted length prefixes (cf. serde.cc).
constexpr uint32_t kMaxRecordLen = 1u << 28;

uint32_t ReadLE32(const uint8_t* p) {
  return static_cast<uint32_t>(p[0]) | (static_cast<uint32_t>(p[1]) << 8) |
         (static_cast<uint32_t>(p[2]) << 16) |
         (static_cast<uint32_t>(p[3]) << 24);
}

struct ParsedRecord {
  uint64_t lsn = 0;
  WalRecordType type = WalRecordType::kBegin;
  std::string text;     // kStatement / kVersionMark
  uint32_t applied = 0;  // kCommit
};

enum class ParseOutcome {
  kOk,
  kIncomplete,  // ran off the end of the file (torn append)
  kBad,         // checksum or structure mismatch
};

ParseOutcome TryParseRecord(const uint8_t* data, size_t size, size_t pos,
                            ParsedRecord* rec, size_t* end) {
  if (pos + kHeaderSize > size) return ParseOutcome::kIncomplete;
  uint32_t len = ReadLE32(data + pos);
  uint32_t stored_crc = ReadLE32(data + pos + 4);
  if (len > kMaxRecordLen) return ParseOutcome::kBad;
  if (pos + kHeaderSize + len > size) return ParseOutcome::kIncomplete;
  const uint8_t* payload = data + pos + kHeaderSize;
  if (crc32c::Mask(crc32c::Value(payload, len)) != stored_crc) {
    return ParseOutcome::kBad;
  }
  BinaryReader in(payload, len);
  auto lsn = in.U64();
  auto type_byte = in.U8();
  if (!lsn.ok() || !type_byte.ok()) return ParseOutcome::kBad;
  rec->lsn = lsn.ValueOrDie();
  switch (type_byte.ValueOrDie()) {
    case static_cast<uint8_t>(WalRecordType::kBegin):
      rec->type = WalRecordType::kBegin;
      break;
    case static_cast<uint8_t>(WalRecordType::kStatement): {
      rec->type = WalRecordType::kStatement;
      auto text = in.Str();
      if (!text.ok()) return ParseOutcome::kBad;
      rec->text = std::move(text).ValueOrDie();
      break;
    }
    case static_cast<uint8_t>(WalRecordType::kCommit): {
      rec->type = WalRecordType::kCommit;
      auto applied = in.U32();
      if (!applied.ok()) return ParseOutcome::kBad;
      rec->applied = applied.ValueOrDie();
      break;
    }
    case static_cast<uint8_t>(WalRecordType::kVersionMark): {
      rec->type = WalRecordType::kVersionMark;
      auto text = in.Str();
      if (!text.ok()) return ParseOutcome::kBad;
      rec->text = std::move(text).ValueOrDie();
      break;
    }
    default:
      return ParseOutcome::kBad;
  }
  if (!in.AtEnd()) return ParseOutcome::kBad;
  *end = pos + kHeaderSize + len;
  return ParseOutcome::kOk;
}

// The torn-tail / hard-corruption distinction. The writer fsyncs after
// every COMMIT and VERSION record before the next entry may start, so
// the un-synced suffix a crash can damage never holds the start of a
// SECOND entry — at most the one in-flight entry's records (whose own
// intact COMMIT may survive a bit flip earlier in the entry). A valid
// BEGIN or VERSION record past the bad bytes therefore proves the
// damage sits in fsynced, committed history: hard corruption. A bare
// STMT/COMMIT tail is the in-flight entry's remnant: torn tail.
bool NewEntryFollows(const uint8_t* data, size_t size, size_t from) {
  ParsedRecord rec;
  size_t end;
  for (size_t pos = from; pos + kHeaderSize <= size; ++pos) {
    if (TryParseRecord(data, size, pos, &rec, &end) == ParseOutcome::kOk &&
        (rec.type == WalRecordType::kBegin ||
         rec.type == WalRecordType::kVersionMark)) {
      return true;
    }
  }
  return false;
}

}  // namespace

Result<WalContents> ReadWal(Env* env, const std::string& path) {
  CODS_ASSIGN_OR_RETURN(std::vector<uint8_t> data, env->ReadFile(path));
  WalContents out;
  const uint8_t* bytes = data.data();
  const size_t size = data.size();

  size_t pos = 0;
  bool have_prev_lsn = false;
  uint64_t prev_lsn = 0;
  bool pending = false;
  WalEntry script;
  bool bad_tail = false;

  while (pos < size) {
    ParsedRecord rec;
    size_t end = 0;
    ParseOutcome outcome = TryParseRecord(bytes, size, pos, &rec, &end);
    if (outcome != ParseOutcome::kOk) {
      if (NewEntryFollows(bytes, size, pos + 1)) {
        return Status::Corruption(
            "WAL '" + path + "' corrupt at offset " + std::to_string(pos) +
            ", before a later entry");
      }
      bad_tail = true;
      break;
    }
    // Valid checksums with broken sequencing mean the log was assembled
    // wrong (mixed files, writer bug) — never a crash artifact.
    if (have_prev_lsn && rec.lsn != prev_lsn + 1) {
      return Status::Corruption(
          "WAL '" + path + "' LSN discontinuity at offset " +
          std::to_string(pos) + ": " + std::to_string(prev_lsn) + " -> " +
          std::to_string(rec.lsn));
    }
    switch (rec.type) {
      case WalRecordType::kBegin:
        if (pending) {
          return Status::Corruption("WAL '" + path +
                                    "': BEGIN inside an open script");
        }
        pending = true;
        script = WalEntry{};
        script.begin_lsn = rec.lsn;
        break;
      case WalRecordType::kStatement:
        if (!pending) {
          return Status::Corruption("WAL '" + path +
                                    "': STATEMENT outside a script");
        }
        script.statements.push_back(std::move(rec.text));
        break;
      case WalRecordType::kCommit:
        if (!pending) {
          return Status::Corruption("WAL '" + path +
                                    "': COMMIT outside a script");
        }
        if (rec.applied > script.statements.size()) {
          return Status::Corruption(
              "WAL '" + path + "': COMMIT applied count " +
              std::to_string(rec.applied) + " exceeds its " +
              std::to_string(script.statements.size()) + " statements");
        }
        script.commit_lsn = rec.lsn;
        script.applied = rec.applied;
        script.end_offset = end;
        out.entries.push_back(std::move(script));
        out.max_lsn = rec.lsn;
        out.committed_bytes = end;
        pending = false;
        break;
      case WalRecordType::kVersionMark: {
        if (pending) {
          return Status::Corruption("WAL '" + path +
                                    "': version mark inside an open script");
        }
        WalEntry mark;
        mark.kind = WalEntry::Kind::kVersionMark;
        mark.begin_lsn = mark.commit_lsn = rec.lsn;
        mark.message = std::move(rec.text);
        mark.end_offset = end;
        out.entries.push_back(std::move(mark));
        out.max_lsn = rec.lsn;
        out.committed_bytes = end;
        break;
      }
    }
    have_prev_lsn = true;
    prev_lsn = rec.lsn;
    pos = end;
  }
  // An uncommitted trailing script (valid records, no COMMIT) is not
  // durable state either — same clean truncation as a torn tail.
  out.tail_dropped = bad_tail || pending || out.committed_bytes < size;
  return out;
}

// ---- WalWriter --------------------------------------------------------------

Result<std::unique_ptr<WalWriter>> WalWriter::Open(Env* env,
                                                   const std::string& path,
                                                   uint64_t next_lsn) {
  uint64_t existing = 0;
  if (env->FileExists(path)) {
    CODS_ASSIGN_OR_RETURN(existing, env->GetFileSize(path));
  }
  CODS_ASSIGN_OR_RETURN(auto file, env->NewWritableFile(path, true));
  return std::unique_ptr<WalWriter>(
      new WalWriter(std::move(file), next_lsn, existing));
}

Status WalWriter::Sticky(Status st) {
  if (!st.ok() && state_.ok()) state_ = st;
  return st;
}

Status WalWriter::AppendRecord(WalRecordType type,
                               const std::vector<uint8_t>& body) {
  if (!state_.ok()) return state_;
  BinaryWriter payload;
  payload.U64(next_lsn_);
  payload.U8(static_cast<uint8_t>(type));
  BinaryWriter rec;
  rec.U32(static_cast<uint32_t>(payload.buffer().size() + body.size()));
  uint32_t crc = crc32c::Value(payload.buffer().data(),
                               payload.buffer().size());
  crc = crc32c::Extend(crc, body.data(), body.size());
  rec.U32(crc32c::Mask(crc));
  CODS_RETURN_NOT_OK(Sticky(
      file_->Append(rec.buffer().data(), rec.buffer().size())));
  CODS_RETURN_NOT_OK(Sticky(
      file_->Append(payload.buffer().data(), payload.buffer().size())));
  if (!body.empty()) {
    CODS_RETURN_NOT_OK(Sticky(file_->Append(body.data(), body.size())));
  }
  size_bytes_ += rec.buffer().size() + payload.buffer().size() + body.size();
  ++next_lsn_;
  return Status::OK();
}

Status WalWriter::BeginScript() {
  if (in_script_) {
    return Status::InvalidArgument("WAL script already open");
  }
  CODS_RETURN_NOT_OK(AppendRecord(WalRecordType::kBegin, {}));
  in_script_ = true;
  return Status::OK();
}

Status WalWriter::AppendStatement(const std::string& text) {
  if (!in_script_) {
    return Status::InvalidArgument("no open WAL script");
  }
  BinaryWriter body;
  body.Str(text);
  return AppendRecord(WalRecordType::kStatement, body.buffer());
}

Status WalWriter::CommitScript(uint32_t applied) {
  if (!in_script_) {
    return Status::InvalidArgument("no open WAL script");
  }
  BinaryWriter body;
  body.U32(applied);
  CODS_RETURN_NOT_OK(AppendRecord(WalRecordType::kCommit, body.buffer()));
  // The script leaves the open state even if the fsync below fails: the
  // writer is poisoned then, and recovery decides from the file.
  in_script_ = false;
  CODS_RETURN_NOT_OK(Sticky(file_->Sync()));
  durable_lsn_ = next_lsn_ - 1;
  return Status::OK();
}

Status WalWriter::AppendVersionMark(const std::string& message) {
  if (in_script_) {
    return Status::InvalidArgument(
        "version mark inside an open WAL script");
  }
  BinaryWriter body;
  body.Str(message);
  CODS_RETURN_NOT_OK(AppendRecord(WalRecordType::kVersionMark, body.buffer()));
  CODS_RETURN_NOT_OK(Sticky(file_->Sync()));
  durable_lsn_ = next_lsn_ - 1;
  return Status::OK();
}

}  // namespace cods

#include "durability/checkpoint.h"

#include "storage/serde.h"

namespace cods {

Status WriteCheckpoint(Env* env, const std::string& dir,
                       const Catalog& catalog, uint64_t wal_lsn) {
  return WriteFileAtomic(env, dir + "/" + kCheckpointFileName,
                         SerializeCatalogV3(catalog, wal_lsn))
      .WithContext("writing checkpoint");
}

Result<CheckpointContents> ReadCheckpoint(Env* env, const std::string& dir) {
  CODS_ASSIGN_OR_RETURN(
      std::vector<uint8_t> image,
      env->ReadFile(dir + "/" + kCheckpointFileName));
  CheckpointContents out;
  CODS_ASSIGN_OR_RETURN(out.catalog,
                        DeserializeCatalog(image, &out.wal_lsn));
  return out;
}

}  // namespace cods

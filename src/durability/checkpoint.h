// Checksummed catalog checkpoints: the durable base image the WAL suffix
// replays onto. A checkpoint is a serde v2 database image (CRC32C
// footer, storage/serde.h) recording the WAL LSN it covers, written
// temp-file → fsync → atomic rename — a crash at any point leaves either
// the previous good checkpoint or the complete new one, never a partial
// image.
//
// Recovery contract: load the last good checkpoint (its covering LSN is
// in the footer), then replay every WAL entry with a commit LSN greater
// than it. By the engine's determinism contract the result is
// bit-identical — per-column WAH code words included — to the catalog
// at the committed-WAL-prefix state.

#ifndef CODS_DURABILITY_CHECKPOINT_H_
#define CODS_DURABILITY_CHECKPOINT_H_

#include <cstdint>
#include <string>

#include "common/env.h"
#include "storage/catalog.h"

namespace cods {

/// File names inside a database directory.
inline constexpr const char* kCheckpointFileName = "CHECKPOINT";
inline constexpr const char* kWalFileName = "wal.log";

/// A loaded checkpoint.
struct CheckpointContents {
  Catalog catalog;
  /// WAL LSN the image covers; entries with commit LSN > this replay.
  uint64_t wal_lsn = 0;
};

/// Atomically (re)writes `dir`/CHECKPOINT covering `wal_lsn`.
Status WriteCheckpoint(Env* env, const std::string& dir,
                       const Catalog& catalog, uint64_t wal_lsn);

/// Loads `dir`/CHECKPOINT, verifying its checksum and table invariants.
Result<CheckpointContents> ReadCheckpoint(Env* env, const std::string& dir);

}  // namespace cods

#endif  // CODS_DURABILITY_CHECKPOINT_H_

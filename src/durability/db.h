// DurableDb: the crash-safe database directory. Ties together the WAL
// (durability/wal.h), checksummed checkpoints (durability/checkpoint.h)
// and the evolution engine's log-before-apply mode into one recovery
// story:
//
//   open  = load last good checkpoint (if any) + replay the WAL suffix
//           whose commit LSNs exceed the checkpoint's covering LSN
//   write = engine stages the script against the current root, then —
//           inside the commit critical section — logs BEGIN/STATEMENT*/
//           COMMIT, fsyncs, and swaps the root; (policy) auto-
//           checkpoints once the WAL grows past a size threshold and
//           resets the log
//
// Invariants proved by tests/test_recovery.cc under FaultInjectionEnv:
// after a crash at ANY operation, re-opening the directory yields a
// catalog bit-identical (WAH code words included) to the state after
// the last committed script — no committed script lost, no uncommitted
// script visible. Damage to synced history (bit flips under the last
// commit point, corrupt checkpoints) surfaces as kCorruption, never as
// silently wrong data.
//
// A WAL I/O failure (failed fsync included) poisons the db: the failed
// script is unacknowledged, and every later mutation returns the
// original error. Re-opening the directory recovers to the last
// durable state. Version history (VersionedCatalog) commits are logged
// as self-committing marks and reproduced by replay; marks older than
// the covering checkpoint are not reconstructed (the checkpoint holds
// only the catalog image).
//
// Concurrent serving: the catalog state lives in the VersionedCatalog's
// SnapshotCatalog core, and the engine runs in snapshot-commit mode —
// reader threads pin roots with GetSnapshot() and query them while
// ApplyScript commits. The WAL COMMIT fsync runs inside the commit
// critical section strictly BEFORE the root swap, so a root readers can
// observe always corresponds to a crash-durable script, and recovery
// and concurrency agree on what "committed" means.

#ifndef CODS_DURABILITY_DB_H_
#define CODS_DURABILITY_DB_H_

#include <memory>
#include <string>
#include <vector>

#include "common/env.h"
#include "durability/wal.h"
#include "evolution/engine.h"
#include "concurrency/versioned_catalog.h"

namespace cods {

struct DurableDbOptions {
  /// Options for the wrapped engine; `wal` is overwritten by DurableDb.
  EngineOptions engine;
  /// Checkpoint + reset the WAL when it exceeds this many bytes
  /// (checked after each committed script). 0 disables the policy.
  uint64_t auto_checkpoint_wal_bytes = 4ull << 20;
};

/// Point-in-time counters for `.wal` / monitoring.
struct DurableDbStats {
  uint64_t next_lsn = 0;
  uint64_t durable_lsn = 0;      // last fsync'd record this session
  uint64_t checkpoint_lsn = 0;   // covering LSN of the last checkpoint
  uint64_t wal_bytes = 0;
  uint64_t replayed_scripts = 0;       // recovered at Open
  uint64_t replayed_version_marks = 0;  // recovered at Open
  bool recovered_torn_tail = false;     // Open truncated a torn tail
  bool checkpoint_exists = false;
  bool healthy = true;
  std::string health_message;           // first I/O failure, if any
};

class DurableDb {
 public:
  /// Opens (creating if needed) the database directory `dir`, running
  /// recovery: checkpoint load, torn-tail truncation, WAL replay.
  static Result<std::unique_ptr<DurableDb>> Open(Env* env,
                                                 const std::string& dir,
                                                 DurableDbOptions options = {});

  DurableDb(const DurableDb&) = delete;
  DurableDb& operator=(const DurableDb&) = delete;

  /// Pins the current committed root for reading: one atomic load,
  /// never blocked by a writer. The snapshot stays consistent (and its
  /// tables alive) however many scripts commit after it.
  Snapshot GetSnapshot() const { return versions_.GetSnapshot(); }
  /// The version history + serving core; commit versions only through
  /// CommitVersion, and route raw (non-statement) mutation through
  /// versions()->Apply — both keep the WAL and the roots in step.
  VersionedCatalog* versions() { return &versions_; }

  /// Durably applies a script: WAL-logged, fsync'd at commit, then
  /// applied. Returns the engine's status; an OK return means the
  /// script is both applied and crash-durable.
  Status ApplyScript(const std::vector<Smo>& script);

  /// ApplyScript through the planner + task graph.
  Status ApplyScriptPlanned(const std::vector<Smo>& script,
                            TaskGraphStats* stats = nullptr);

  /// Durably commits a version snapshot; returns its id.
  Result<uint64_t> CommitVersion(const std::string& message);

  /// Forces a checkpoint covering everything committed so far, then
  /// resets the WAL.
  Status Checkpoint();

  DurableDbStats GetStats() const;

 private:
  DurableDb(Env* env, std::string dir, DurableDbOptions options)
      : env_(env), dir_(std::move(dir)), options_(std::move(options)) {}

  std::string WalPath() const;
  std::string CheckpointPath() const;
  /// Sticky gate: non-OK once any durability operation has failed.
  Status Healthy() const;
  /// (Re)creates the engine bound to the current WAL writer.
  void RebuildEngine();
  void MaybeAutoCheckpoint();

  Env* env_;
  std::string dir_;
  DurableDbOptions options_;
  VersionedCatalog versions_;
  std::unique_ptr<WalWriter> wal_;
  std::unique_ptr<EvolutionEngine> engine_;
  uint64_t checkpoint_lsn_ = 0;
  uint64_t replayed_scripts_ = 0;
  uint64_t replayed_marks_ = 0;
  bool recovered_torn_tail_ = false;
  Status failed_;  // sticky rotation/checkpoint-infrastructure failure
};

}  // namespace cods

#endif  // CODS_DURABILITY_DB_H_

#include "durability/db.h"

#include <algorithm>
#include <utility>

#include "durability/checkpoint.h"
#include "smo/parser.h"

namespace cods {

namespace {

// Replays one committed script entry against the serving core. The
// statements were parsed from engine-produced `Smo::ToString` text and
// succeeded once, so any parse or apply failure here means the log (or
// the code) no longer matches the catalog — a hard corruption, not a
// user error. Replay commits one root per statement; root ids are not
// persisted, so the recovered state (the map contents) is what matters.
Status ReplayScript(const WalEntry& entry, SnapshotCatalog* serving,
                    const EngineOptions& engine_options) {
  EngineOptions opts = engine_options;
  opts.wal = nullptr;  // replay must not re-log
  EvolutionEngine engine(serving, /*observer=*/nullptr, opts);
  for (uint32_t i = 0; i < entry.applied; ++i) {
    CODS_ASSIGN_OR_RETURN(Smo smo, ParseSmoStatement(entry.statements[i]));
    Status st = engine.Apply(smo);
    if (!st.ok()) {
      return Status::Corruption(
          "WAL replay diverged at LSN " + std::to_string(entry.begin_lsn) +
          ", statement " + std::to_string(i) + ": " + st.message());
    }
  }
  return Status::OK();
}

}  // namespace

Result<std::unique_ptr<DurableDb>> DurableDb::Open(Env* env,
                                                   const std::string& dir,
                                                   DurableDbOptions options) {
  CODS_RETURN_NOT_OK(
      env->CreateDirIfMissing(dir).WithContext("opening database directory"));
  std::unique_ptr<DurableDb> db(
      new DurableDb(env, dir, std::move(options)));

  // A crash during WriteCheckpoint can leave its temp file behind; the
  // rename never happened, so it is garbage.
  const std::string stale_tmp = db->CheckpointPath() + ".tmp";
  if (env->FileExists(stale_tmp)) {
    CODS_RETURN_NOT_OK(
        env->DeleteFile(stale_tmp).WithContext("removing stale checkpoint"));
  }

  if (env->FileExists(db->CheckpointPath())) {
    CODS_ASSIGN_OR_RETURN(CheckpointContents ckpt,
                          ReadCheckpoint(env, db->dir_));
    db->versions_.Reset(ckpt.catalog);
    db->checkpoint_lsn_ = ckpt.wal_lsn;
  }

  uint64_t max_lsn = db->checkpoint_lsn_;
  if (env->FileExists(db->WalPath())) {
    CODS_ASSIGN_OR_RETURN(WalContents wal, ReadWal(env, db->WalPath()));
    if (wal.tail_dropped) {
      // Physically discard the torn/uncommitted tail so the reopened
      // writer appends after the last committed record.
      CODS_RETURN_NOT_OK(
          env->TruncateFile(db->WalPath(), wal.committed_bytes)
              .WithContext("truncating torn WAL tail"));
      db->recovered_torn_tail_ = true;
    }
    for (const WalEntry& entry : wal.entries) {
      if (entry.commit_lsn <= db->checkpoint_lsn_) {
        if (entry.begin_lsn > db->checkpoint_lsn_) {
          return Status::Corruption(
              "checkpoint LSN " + std::to_string(db->checkpoint_lsn_) +
              " falls inside WAL entry [" +
              std::to_string(entry.begin_lsn) + ", " +
              std::to_string(entry.commit_lsn) + "]");
        }
        continue;  // already covered by the checkpoint image
      }
      if (entry.kind == WalEntry::Kind::kVersionMark) {
        db->versions_.Commit(entry.message);
        ++db->replayed_marks_;
      } else {
        CODS_RETURN_NOT_OK(ReplayScript(entry, db->versions_.serving(),
                                        db->options_.engine));
        ++db->replayed_scripts_;
      }
    }
    max_lsn = std::max(max_lsn, wal.max_lsn);
  }

  CODS_ASSIGN_OR_RETURN(db->wal_,
                        WalWriter::Open(env, db->WalPath(), max_lsn + 1));
  db->RebuildEngine();
  return db;
}

std::string DurableDb::WalPath() const {
  return dir_ + "/" + kWalFileName;
}

std::string DurableDb::CheckpointPath() const {
  return dir_ + "/" + kCheckpointFileName;
}

Status DurableDb::Healthy() const {
  CODS_RETURN_NOT_OK(failed_);
  return wal_->health();
}

void DurableDb::RebuildEngine() {
  EngineOptions opts = options_.engine;
  opts.wal = wal_.get();
  // Snapshot-commit mode: the engine stages against the serving core's
  // current root and the WAL fsync runs inside the commit critical
  // section, before the root swap.
  engine_ = std::make_unique<EvolutionEngine>(versions_.serving(),
                                              /*observer=*/nullptr, opts);
}

Status DurableDb::ApplyScript(const std::vector<Smo>& script) {
  CODS_RETURN_NOT_OK(Healthy());
  Status st = engine_->ApplyAll(script);
  MaybeAutoCheckpoint();
  return st;
}

Status DurableDb::ApplyScriptPlanned(const std::vector<Smo>& script,
                                     TaskGraphStats* stats) {
  CODS_RETURN_NOT_OK(Healthy());
  Status st = engine_->ApplyAllPlanned(script, stats);
  MaybeAutoCheckpoint();
  return st;
}

Result<uint64_t> DurableDb::CommitVersion(const std::string& message) {
  CODS_RETURN_NOT_OK(Healthy());
  // Mark first: if the append or its fsync fails, the in-memory history
  // is untouched and the writer is poisoned.
  CODS_RETURN_NOT_OK(wal_->AppendVersionMark(message));
  return versions_.Commit(message);
}

Status DurableDb::Checkpoint() {
  CODS_RETURN_NOT_OK(Healthy());
  // Scripts commit at record boundaries and every committed record is
  // fsync'd, so everything up to next_lsn-1 is durable and reflected in
  // the working catalog.
  const uint64_t covering_lsn = wal_->next_lsn() - 1;
  // The image is the currently served root, materialized; pinning the
  // snapshot first keeps it stable while the file is written.
  Snapshot snap = versions_.GetSnapshot();
  CODS_RETURN_NOT_OK(WriteCheckpoint(env_, dir_, MaterializeCatalog(snap.root()),
                                     covering_lsn));
  checkpoint_lsn_ = covering_lsn;
  // Reset the WAL: its entries are all covered now. A crash between the
  // checkpoint rename and the reopen below is safe — recovery skips
  // entries with commit LSN <= the checkpoint's covering LSN.
  const uint64_t next_lsn = wal_->next_lsn();
  wal_.reset();
  Status st = env_->DeleteFile(WalPath()).WithContext("resetting WAL");
  if (st.ok()) {
    Result<std::unique_ptr<WalWriter>> reopened =
        WalWriter::Open(env_, WalPath(), next_lsn);
    if (reopened.ok()) {
      wal_ = std::move(reopened).ValueOrDie();
    } else {
      st = reopened.status();
    }
  }
  if (!st.ok()) {
    // The db has no log to write to; poison it. The directory itself is
    // consistent — reopening recovers from the checkpoint.
    failed_ = st;
    return st;
  }
  RebuildEngine();
  return Status::OK();
}

void DurableDb::MaybeAutoCheckpoint() {
  if (options_.auto_checkpoint_wal_bytes == 0) return;
  if (failed_.ok() && wal_ != nullptr && wal_->health().ok() &&
      wal_->size_bytes() >= options_.auto_checkpoint_wal_bytes) {
    // Best-effort: a failure poisons the db via failed_, and the next
    // mutation reports it.
    Checkpoint().IgnoreError();
  }
}

DurableDbStats DurableDb::GetStats() const {
  DurableDbStats s;
  s.checkpoint_lsn = checkpoint_lsn_;
  s.replayed_scripts = replayed_scripts_;
  s.replayed_version_marks = replayed_marks_;
  s.recovered_torn_tail = recovered_torn_tail_;
  s.checkpoint_exists = env_->FileExists(CheckpointPath());
  if (wal_ != nullptr) {
    s.next_lsn = wal_->next_lsn();
    s.durable_lsn = wal_->durable_lsn();
    s.wal_bytes = wal_->size_bytes();
  }
  Status health = Healthy();
  s.healthy = health.ok();
  if (!s.healthy) s.health_message = health.message();
  return s;
}

}  // namespace cods

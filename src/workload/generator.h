// Synthetic workload generator for the Figure 3 experiments: a table
// R(K, V, P) shaped like the paper's R(Employee, Skill, Address) —
// `num_rows` tuples over `num_distinct` distinct key values, where the
// dependent attribute P is functionally determined by K (so the
// decomposition R → S(K, V), T(K, P) is lossless), and V is a payload
// attribute kept unchanged by the evolution.

#ifndef CODS_WORKLOAD_GENERATOR_H_
#define CODS_WORKLOAD_GENERATOR_H_

#include <memory>
#include <string>

#include "common/random.h"
#include "storage/table.h"

namespace cods {

/// Parameters of the synthetic evolution workload.
struct WorkloadSpec {
  uint64_t num_rows = 1'000'000;   // paper: 10 million
  uint64_t num_distinct = 10'000;  // paper sweep: 100 .. 1M
  /// Distinct values of the payload attribute V.
  uint64_t payload_distinct = 1'000;
  /// Distinct values of the dependent attribute P (addresses); each key
  /// maps to one of these.
  uint64_t dependent_distinct = 1'000;
  /// Key frequency skew: 0 = uniform, else Zipf exponent.
  double zipf_s = 0.0;
  /// Use INT64 attributes (fast paths); false = STRING attributes.
  bool integer_values = true;
  uint64_t seed = 42;
};

/// Column names used by the generated tables.
inline constexpr char kKeyColumn[] = "K";
inline constexpr char kPayloadColumn[] = "V";
inline constexpr char kDependentColumn[] = "P";

/// Generates R(K, V, P) with the FD K → P. The declared key of R is
/// empty (it is a bag of facts, like the paper's R).
Result<std::shared_ptr<const Table>> GenerateEvolutionTable(
    const WorkloadSpec& spec, const std::string& name = "R");

/// Generates the pair (S, T) that decomposing R would produce: S(K, V)
/// with R's multiplicity and T(K, P) with one row per distinct key and
/// declared key K. Used to set up mergence benchmarks directly.
struct GeneratedPair {
  std::shared_ptr<const Table> s;
  std::shared_ptr<const Table> t;
};
Result<GeneratedPair> GenerateMergePair(const WorkloadSpec& spec,
                                        const std::string& s_name = "S",
                                        const std::string& t_name = "T");

/// Generates a general-mergence workload: S(J, A) and T(J, B) where J is
/// a key of neither side; each distinct join value appears `s_fanout`
/// times in S and `t_fanout` times in T.
Result<GeneratedPair> GenerateGeneralMergePair(
    uint64_t num_join_values, uint64_t s_fanout, uint64_t t_fanout,
    uint64_t seed = 42, const std::string& s_name = "S",
    const std::string& t_name = "T");

}  // namespace cods

#endif  // CODS_WORKLOAD_GENERATOR_H_

#include "workload/generator.h"

#include "common/logging.h"

namespace cods {

namespace {

// Value for id `i` of an attribute: integer or a deterministic string.
Value MakeValue(uint64_t i, bool integer_values, const char* prefix) {
  if (integer_values) {
    return Value(static_cast<int64_t>(i));
  }
  return Value(std::string(prefix) + std::to_string(i));
}

Schema MakeRSchema(bool integer_values) {
  DataType t = integer_values ? DataType::kInt64 : DataType::kString;
  return Schema({ColumnSpec{kKeyColumn, t, false},
                 ColumnSpec{kPayloadColumn, t, false},
                 ColumnSpec{kDependentColumn, t, false}},
                {});
}

}  // namespace

Result<std::shared_ptr<const Table>> GenerateEvolutionTable(
    const WorkloadSpec& spec, const std::string& name) {
  if (spec.num_distinct == 0 || spec.num_rows < spec.num_distinct) {
    return Status::InvalidArgument(
        "need num_rows >= num_distinct >= 1 so every key value appears");
  }
  Rng rng(spec.seed);
  std::unique_ptr<ZipfSampler> zipf;
  if (spec.zipf_s > 0) {
    zipf = std::make_unique<ZipfSampler>(spec.num_distinct, spec.zipf_s);
  }
  DataType t = spec.integer_values ? DataType::kInt64 : DataType::kString;
  TableBuilder builder(name, MakeRSchema(spec.integer_values));
  (void)t;
  for (uint64_t r = 0; r < spec.num_rows; ++r) {
    // First pass through the domain guarantees every key appears at
    // least once (so #distinct is exact); afterwards keys are sampled.
    uint64_t key;
    if (r < spec.num_distinct) {
      key = r;
    } else if (zipf != nullptr) {
      key = zipf->Next(rng);
    } else {
      key = static_cast<uint64_t>(
          rng.Uniform(0, static_cast<int64_t>(spec.num_distinct) - 1));
    }
    uint64_t payload = static_cast<uint64_t>(
        rng.Uniform(0, static_cast<int64_t>(spec.payload_distinct) - 1));
    // FD K -> P: the dependent value is a pure function of the key.
    uint64_t dependent =
        (key * 2654435761u) % spec.dependent_distinct;
    Row row{MakeValue(key, spec.integer_values, "key"),
            MakeValue(payload, spec.integer_values, "val"),
            MakeValue(dependent, spec.integer_values, "addr")};
    CODS_RETURN_NOT_OK(builder.AppendRow(row));
  }
  return builder.Finish();
}

Result<GeneratedPair> GenerateMergePair(const WorkloadSpec& spec,
                                        const std::string& s_name,
                                        const std::string& t_name) {
  CODS_ASSIGN_OR_RETURN(auto r, GenerateEvolutionTable(spec, "Rtmp"));
  DataType t = spec.integer_values ? DataType::kInt64 : DataType::kString;

  GeneratedPair out;
  // S(K, V): reuse R's first two columns (same trick CODS itself uses).
  {
    Schema schema({ColumnSpec{kKeyColumn, t, false},
                   ColumnSpec{kPayloadColumn, t, false}},
                  {});
    CODS_ASSIGN_OR_RETURN(
        out.s, Table::Make(s_name, schema, {r->column(0), r->column(1)},
                           r->rows()));
  }
  // T(K, P): one row per distinct key, in key-id order.
  {
    Schema schema({ColumnSpec{kKeyColumn, t, false},
                   ColumnSpec{kDependentColumn, t, false}},
                  {kKeyColumn});
    TableBuilder builder(t_name, schema);
    for (uint64_t key = 0; key < spec.num_distinct; ++key) {
      uint64_t dependent = (key * 2654435761u) % spec.dependent_distinct;
      Row row{MakeValue(key, spec.integer_values, "key"),
              MakeValue(dependent, spec.integer_values, "addr")};
      CODS_RETURN_NOT_OK(builder.AppendRow(row));
    }
    CODS_ASSIGN_OR_RETURN(out.t, builder.Finish());
  }
  return out;
}

Result<GeneratedPair> GenerateGeneralMergePair(uint64_t num_join_values,
                                               uint64_t s_fanout,
                                               uint64_t t_fanout,
                                               uint64_t seed,
                                               const std::string& s_name,
                                               const std::string& t_name) {
  if (num_join_values == 0 || s_fanout == 0 || t_fanout == 0) {
    return Status::InvalidArgument("fanouts and join domain must be >= 1");
  }
  Rng rng(seed);
  GeneratedPair out;
  {
    Schema schema({ColumnSpec{"J", DataType::kInt64, false},
                   ColumnSpec{"A", DataType::kInt64, false}},
                  {});
    TableBuilder builder(s_name, schema);
    for (uint64_t v = 0; v < num_join_values; ++v) {
      for (uint64_t i = 0; i < s_fanout; ++i) {
        Row row{Value(static_cast<int64_t>(v)),
                Value(rng.Uniform(0, 999))};
        CODS_RETURN_NOT_OK(builder.AppendRow(row));
      }
    }
    CODS_ASSIGN_OR_RETURN(out.s, builder.Finish());
  }
  {
    Schema schema({ColumnSpec{"J", DataType::kInt64, false},
                   ColumnSpec{"B", DataType::kInt64, false}},
                  {});
    TableBuilder builder(t_name, schema);
    for (uint64_t v = 0; v < num_join_values; ++v) {
      for (uint64_t i = 0; i < t_fanout; ++i) {
        Row row{Value(static_cast<int64_t>(v)),
                Value(rng.Uniform(0, 999))};
        CODS_RETURN_NOT_OK(builder.AppendRow(row));
      }
    }
    CODS_ASSIGN_OR_RETURN(out.t, builder.Finish());
  }
  return out;
}

}  // namespace cods

// Query-level execution on the column store — the MonetDB-style baseline
// of Figure 2: decompress columns into tuples, run the query pipeline on
// tuple vectors, split the result back into columns and re-compress.
// CODS's whole point is avoiding this round trip; these operators exist
// to measure it.

#ifndef CODS_QUERY_COLUMN_EXECUTOR_H_
#define CODS_QUERY_COLUMN_EXECUTOR_H_

#include <memory>
#include <string>
#include <vector>

#include "exec/exec.h"
#include "storage/table.h"

namespace cods {

/// Decompresses a column table into a tuple vector.
std::vector<Row> ScanToRows(const Table& table);

/// Projects a tuple vector onto `indices`.
std::vector<Row> ProjectRowVec(const std::vector<Row>& rows,
                               const std::vector<size_t>& indices);

/// Hash-deduplicates a tuple vector (keeps first occurrences in order).
std::vector<Row> DistinctRowVec(const std::vector<Row>& rows);

/// Equi-joins two tuple vectors; output rows are left row ++ right
/// payload columns (right columns not in `right_join`).
std::vector<Row> HashJoinRowVec(const std::vector<Row>& left,
                                const std::vector<Row>& right,
                                const std::vector<size_t>& left_join,
                                const std::vector<size_t>& right_join);

/// Splits tuples into columns, dictionary-encodes and WAH-compresses them
/// into a new column table (the "re-compress" stage). Each column
/// encodes and compresses independently, so the work parallelizes one
/// task per column on `ctx`; output is bit-identical at any thread count.
Result<std::shared_ptr<const Table>> RowsToColumnTable(
    const std::string& name, const Schema& schema,
    const std::vector<Row>& rows, const ExecContext* ctx = nullptr);

}  // namespace cods

#endif  // CODS_QUERY_COLUMN_EXECUTOR_H_

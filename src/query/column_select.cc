#include "query/column_select.h"

#include "query/query_engine.h"

namespace cods {

ExprPtr ColumnPredicate::ToExpr() const {
  if (!in_values.empty()) return Expr::In(column, in_values);
  return Expr::Compare(column, op, literal);
}

namespace {

std::vector<ExprPtr> ToLeaves(const std::vector<ColumnPredicate>& preds) {
  std::vector<ExprPtr> leaves;
  leaves.reserve(preds.size());
  for (const ColumnPredicate& p : preds) leaves.push_back(p.ToExpr());
  return leaves;
}

}  // namespace

ExprPtr ConjunctionExpr(const std::vector<ColumnPredicate>& preds) {
  if (preds.empty()) return nullptr;
  return Expr::And(ToLeaves(preds));
}

ExprPtr DisjunctionExpr(const std::vector<ColumnPredicate>& preds) {
  if (preds.empty()) return nullptr;
  return Expr::Or(ToLeaves(preds));
}

Result<WahBitmap> EvalPredicate(const Table& table,
                                const ColumnPredicate& predicate) {
  return EvalExpr(table, predicate.ToExpr());
}

Result<WahBitmap> EvalConjunction(const Table& table,
                                  const std::vector<ColumnPredicate>& preds,
                                  const ExecContext* ctx) {
  if (preds.empty()) {
    // AND of nothing selects everything (the fold identity).
    WahBitmap all;
    all.AppendRun(true, table.rows());
    return all;
  }
  return EvalExpr(table, ConjunctionExpr(preds), ctx);
}

Result<WahBitmap> EvalDisjunction(const Table& table,
                                  const std::vector<ColumnPredicate>& preds,
                                  const ExecContext* ctx) {
  if (preds.empty()) {
    // OR of nothing selects nothing.
    WahBitmap none;
    none.AppendRun(false, table.rows());
    return none;
  }
  return EvalExpr(table, DisjunctionExpr(preds), ctx);
}

Result<uint64_t> CountWhere(const Table& table,
                            const std::vector<ColumnPredicate>& preds,
                            const ExecContext* ctx) {
  return QueryEngine::CountRows(table, ConjunctionExpr(preds), ctx);
}

Result<std::shared_ptr<const Table>> SelectWhere(
    const Table& table, const std::vector<ColumnPredicate>& preds,
    const std::string& out_name, const ExecContext* ctx) {
  return QueryEngine::SelectRows(table, {}, ConjunctionExpr(preds), out_name,
                                 ctx);
}

Result<std::vector<Row>> FetchWhere(
    const Table& table, const std::vector<ColumnPredicate>& preds) {
  CODS_ASSIGN_OR_RETURN(auto selected, SelectWhere(table, preds, "tmp"));
  return selected->Materialize();
}

Result<std::vector<std::pair<Value, uint64_t>>> GroupByCount(
    const Table& table, const std::string& column) {
  CODS_ASSIGN_OR_RETURN(auto col, table.ColumnByName(column));
  std::vector<std::pair<Value, uint64_t>> out;
  out.reserve(col->distinct_count());
  for (Vid vid = 0; vid < col->distinct_count(); ++vid) {
    out.emplace_back(col->dict().value(vid), col->ValueCount(vid));
  }
  return out;
}

Result<std::vector<std::pair<Value, double>>> GroupBySum(
    const Table& table, const std::string& group_column,
    const std::string& measure_column, const ExecContext* ctx) {
  return QueryEngine::GroupBySumRows(table, group_column, measure_column,
                                     nullptr, ctx);
}

}  // namespace cods

#include "query/column_select.h"

#include "bitmap/wah_filter.h"
#include "bitmap/wah_ops.h"

namespace cods {

Result<WahBitmap> EvalPredicate(const Table& table,
                                const ColumnPredicate& predicate) {
  CODS_ASSIGN_OR_RETURN(auto col, table.ColumnByName(predicate.column));
  if (col->encoding() != ColumnEncoding::kWahBitmap) {
    return Status::InvalidArgument(
        "predicates require a WAH-encoded column; re-encode '" +
        predicate.column + "' first");
  }
  auto qualifies = [&](const Value& v) {
    if (!predicate.in_values.empty()) {
      for (const Value& candidate : predicate.in_values) {
        if (v == candidate) return true;
      }
      return false;
    }
    return EvalCompare(v, predicate.op, predicate.literal);
  };
  WahBitmap selection;
  selection.AppendRun(false, table.rows());
  for (Vid vid = 0; vid < col->distinct_count(); ++vid) {
    if (qualifies(col->dict().value(vid))) {
      selection = WahOr(selection, col->bitmap(vid));
    }
  }
  return selection;
}

Result<WahBitmap> EvalConjunction(const Table& table,
                                  const std::vector<ColumnPredicate>& preds) {
  WahBitmap selection;
  selection.AppendRun(true, table.rows());
  for (const ColumnPredicate& pred : preds) {
    CODS_ASSIGN_OR_RETURN(WahBitmap one, EvalPredicate(table, pred));
    selection = WahAnd(selection, one);
    if (selection.CountOnes() == 0) break;  // short-circuit
  }
  return selection;
}

Result<WahBitmap> EvalDisjunction(const Table& table,
                                  const std::vector<ColumnPredicate>& preds) {
  WahBitmap selection;
  selection.AppendRun(false, table.rows());
  for (const ColumnPredicate& pred : preds) {
    CODS_ASSIGN_OR_RETURN(WahBitmap one, EvalPredicate(table, pred));
    selection = WahOr(selection, one);
  }
  return selection;
}

Result<uint64_t> CountWhere(const Table& table,
                            const std::vector<ColumnPredicate>& preds) {
  CODS_ASSIGN_OR_RETURN(WahBitmap selection, EvalConjunction(table, preds));
  return selection.CountOnes();
}

Result<std::shared_ptr<const Table>> SelectWhere(
    const Table& table, const std::vector<ColumnPredicate>& preds,
    const std::string& out_name) {
  CODS_ASSIGN_OR_RETURN(WahBitmap selection, EvalConjunction(table, preds));
  std::vector<uint64_t> positions = selection.SetPositions();
  WahPositionFilter filter(positions, table.rows());
  std::vector<std::shared_ptr<const Column>> cols;
  for (size_t i = 0; i < table.num_columns(); ++i) {
    const Column& c = *table.column(i);
    if (c.encoding() != ColumnEncoding::kWahBitmap) {
      return Status::InvalidArgument(
          "SelectWhere requires WAH-encoded columns");
    }
    std::vector<WahBitmap> filtered;
    filtered.reserve(c.distinct_count());
    for (Vid v = 0; v < c.distinct_count(); ++v) {
      filtered.push_back(filter.Filter(c.bitmap(v)));
    }
    cols.push_back(Column::FromBitmaps(c.type(), c.dict(),
                                       std::move(filtered),
                                       positions.size()));
  }
  // Selection preserves key uniqueness, so the key declaration survives.
  return Table::Make(out_name, table.schema(), std::move(cols),
                     positions.size());
}

Result<std::vector<Row>> FetchWhere(
    const Table& table, const std::vector<ColumnPredicate>& preds) {
  CODS_ASSIGN_OR_RETURN(auto selected, SelectWhere(table, preds, "tmp"));
  return selected->Materialize();
}

Result<std::vector<std::pair<Value, uint64_t>>> GroupByCount(
    const Table& table, const std::string& column) {
  CODS_ASSIGN_OR_RETURN(auto col, table.ColumnByName(column));
  std::vector<std::pair<Value, uint64_t>> out;
  out.reserve(col->distinct_count());
  for (Vid vid = 0; vid < col->distinct_count(); ++vid) {
    out.emplace_back(col->dict().value(vid), col->ValueCount(vid));
  }
  return out;
}

Result<std::vector<std::pair<Value, double>>> GroupBySum(
    const Table& table, const std::string& group_column,
    const std::string& measure_column) {
  CODS_ASSIGN_OR_RETURN(auto group, table.ColumnByName(group_column));
  CODS_ASSIGN_OR_RETURN(auto measure, table.ColumnByName(measure_column));
  if (measure->type() == DataType::kString) {
    return Status::TypeError("SUM needs a numeric measure column");
  }
  if (group->encoding() != ColumnEncoding::kWahBitmap ||
      measure->encoding() != ColumnEncoding::kWahBitmap) {
    return Status::InvalidArgument(
        "GroupBySum requires WAH-encoded columns");
  }
  std::vector<std::pair<Value, double>> out;
  out.reserve(group->distinct_count());
  for (Vid g = 0; g < group->distinct_count(); ++g) {
    double sum = 0;
    for (Vid m = 0; m < measure->distinct_count(); ++m) {
      uint64_t count = WahAndCount(group->bitmap(g), measure->bitmap(m));
      if (count == 0) continue;
      const Value& v = measure->dict().value(m);
      double x = v.is_int64() ? static_cast<double>(v.int64()) : v.dbl();
      sum += x * static_cast<double>(count);
    }
    out.emplace_back(group->dict().value(g), sum);
  }
  return out;
}

}  // namespace cods

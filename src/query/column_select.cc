#include "query/column_select.h"

#include "bitmap/wah_filter.h"
#include "bitmap/wah_ops.h"

namespace cods {

Result<WahBitmap> EvalPredicate(const Table& table,
                                const ColumnPredicate& predicate) {
  CODS_ASSIGN_OR_RETURN(auto col, table.ColumnByName(predicate.column));
  if (col->encoding() != ColumnEncoding::kWahBitmap) {
    return Status::InvalidArgument(
        "predicates require a WAH-encoded column; re-encode '" +
        predicate.column + "' first");
  }
  auto qualifies = [&](const Value& v) {
    if (!predicate.in_values.empty()) {
      for (const Value& candidate : predicate.in_values) {
        if (v == candidate) return true;
      }
      return false;
    }
    return EvalCompare(v, predicate.op, predicate.literal);
  };
  // Single-pass k-way union of the qualifying value bitmaps — one output
  // append stream instead of a pairwise left-fold's k intermediates.
  std::vector<const WahBitmap*> qualifying;
  for (Vid vid = 0; vid < col->distinct_count(); ++vid) {
    if (qualifies(col->dict().value(vid))) {
      qualifying.push_back(&col->bitmap(vid));
    }
  }
  return WahOrMany(qualifying, table.rows());
}

namespace {

// Evaluates every predicate to its selection bitmap. Returns an empty
// vector (and sets *empty) as soon as one predicate selects nothing —
// the conjunction is empty and the remaining predicates never run.
Result<std::vector<WahBitmap>> EvalAllPredicates(
    const Table& table, const std::vector<ColumnPredicate>& preds,
    bool* any_empty) {
  *any_empty = false;
  std::vector<WahBitmap> evaluated;
  evaluated.reserve(preds.size());
  for (const ColumnPredicate& pred : preds) {
    CODS_ASSIGN_OR_RETURN(WahBitmap one, EvalPredicate(table, pred));
    if (one.IsAllZeros()) {  // O(1) emptiness, not a CountOnes() decode
      *any_empty = true;
      return std::vector<WahBitmap>{};
    }
    evaluated.push_back(std::move(one));
  }
  return evaluated;
}

}  // namespace

// Note the short-circuit granularity: the fold this replaces could also
// stop when two individually non-empty predicates intersected to
// nothing, at the price of a full CountOnes() decode per step. Here only
// per-predicate emptiness stops evaluation early; pairwise-disjoint
// operands are instead handled by zero-fill annihilation inside the
// single k-way AND.
Result<WahBitmap> EvalConjunction(const Table& table,
                                  const std::vector<ColumnPredicate>& preds) {
  bool any_empty = false;
  CODS_ASSIGN_OR_RETURN(std::vector<WahBitmap> evaluated,
                        EvalAllPredicates(table, preds, &any_empty));
  if (any_empty) {
    WahBitmap none;
    none.AppendRun(false, table.rows());
    return none;
  }
  return WahAndMany(evaluated, table.rows());
}

Result<WahBitmap> EvalDisjunction(const Table& table,
                                  const std::vector<ColumnPredicate>& preds) {
  // Every predicate is evaluated (so invalid predicates error even when
  // an earlier one already saturated); a saturated operand costs the
  // k-way union nothing thanks to one-fill annihilation.
  std::vector<WahBitmap> evaluated;
  evaluated.reserve(preds.size());
  for (const ColumnPredicate& pred : preds) {
    CODS_ASSIGN_OR_RETURN(WahBitmap one, EvalPredicate(table, pred));
    evaluated.push_back(std::move(one));
  }
  return WahOrMany(evaluated, table.rows());
}

Result<uint64_t> CountWhere(const Table& table,
                            const std::vector<ColumnPredicate>& preds) {
  bool any_empty = false;
  CODS_ASSIGN_OR_RETURN(std::vector<WahBitmap> evaluated,
                        EvalAllPredicates(table, preds, &any_empty));
  if (any_empty) return 0;
  // Count-only kernel: the selection bitmap is never materialized.
  return WahAndManyCount(evaluated, table.rows());
}

Result<std::shared_ptr<const Table>> SelectWhere(
    const Table& table, const std::vector<ColumnPredicate>& preds,
    const std::string& out_name) {
  CODS_ASSIGN_OR_RETURN(WahBitmap selection, EvalConjunction(table, preds));
  std::vector<uint64_t> positions = selection.SetPositions();
  WahPositionFilter filter(positions, table.rows());
  std::vector<std::shared_ptr<const Column>> cols;
  for (size_t i = 0; i < table.num_columns(); ++i) {
    const Column& c = *table.column(i);
    if (c.encoding() != ColumnEncoding::kWahBitmap) {
      return Status::InvalidArgument(
          "SelectWhere requires WAH-encoded columns");
    }
    std::vector<WahBitmap> filtered;
    filtered.reserve(c.distinct_count());
    for (Vid v = 0; v < c.distinct_count(); ++v) {
      filtered.push_back(filter.Filter(c.bitmap(v)));
    }
    cols.push_back(Column::FromBitmaps(c.type(), c.dict(),
                                       std::move(filtered),
                                       positions.size()));
  }
  // Selection preserves key uniqueness, so the key declaration survives.
  return Table::Make(out_name, table.schema(), std::move(cols),
                     positions.size());
}

Result<std::vector<Row>> FetchWhere(
    const Table& table, const std::vector<ColumnPredicate>& preds) {
  CODS_ASSIGN_OR_RETURN(auto selected, SelectWhere(table, preds, "tmp"));
  return selected->Materialize();
}

Result<std::vector<std::pair<Value, uint64_t>>> GroupByCount(
    const Table& table, const std::string& column) {
  CODS_ASSIGN_OR_RETURN(auto col, table.ColumnByName(column));
  std::vector<std::pair<Value, uint64_t>> out;
  out.reserve(col->distinct_count());
  for (Vid vid = 0; vid < col->distinct_count(); ++vid) {
    out.emplace_back(col->dict().value(vid), col->ValueCount(vid));
  }
  return out;
}

Result<std::vector<std::pair<Value, double>>> GroupBySum(
    const Table& table, const std::string& group_column,
    const std::string& measure_column) {
  CODS_ASSIGN_OR_RETURN(auto group, table.ColumnByName(group_column));
  CODS_ASSIGN_OR_RETURN(auto measure, table.ColumnByName(measure_column));
  if (measure->type() == DataType::kString) {
    return Status::TypeError("SUM needs a numeric measure column");
  }
  if (group->encoding() != ColumnEncoding::kWahBitmap ||
      measure->encoding() != ColumnEncoding::kWahBitmap) {
    return Status::InvalidArgument(
        "GroupBySum requires WAH-encoded columns");
  }
  // Hoist per-measure emptiness out of the O(v_group · v_measure) loop
  // and skip empty group bitmaps entirely; the inner combine stays on the
  // count-only kernel (nothing is materialized).
  std::vector<const WahBitmap*> live_measures;
  std::vector<double> measure_values;
  for (Vid m = 0; m < measure->distinct_count(); ++m) {
    if (measure->bitmap(m).IsAllZeros()) continue;
    live_measures.push_back(&measure->bitmap(m));
    const Value& v = measure->dict().value(m);
    measure_values.push_back(v.is_int64() ? static_cast<double>(v.int64())
                                          : v.dbl());
  }
  std::vector<std::pair<Value, double>> out;
  out.reserve(group->distinct_count());
  for (Vid g = 0; g < group->distinct_count(); ++g) {
    double sum = 0;
    if (!group->bitmap(g).IsAllZeros()) {
      for (size_t m = 0; m < live_measures.size(); ++m) {
        uint64_t count = WahAndCount(group->bitmap(g), *live_measures[m]);
        if (count == 0) continue;
        sum += measure_values[m] * static_cast<double>(count);
      }
    }
    out.emplace_back(group->dict().value(g), sum);
  }
  return out;
}

}  // namespace cods

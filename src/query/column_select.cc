#include "query/column_select.h"

#include "bitmap/wah_filter.h"
#include "bitmap/wah_ops.h"
#include "exec/parallel_build.h"

namespace cods {

Result<WahBitmap> EvalPredicate(const Table& table,
                                const ColumnPredicate& predicate) {
  CODS_ASSIGN_OR_RETURN(auto col, table.ColumnByName(predicate.column));
  if (col->encoding() != ColumnEncoding::kWahBitmap) {
    return Status::InvalidArgument(
        "predicates require a WAH-encoded column; re-encode '" +
        predicate.column + "' first");
  }
  auto qualifies = [&](const Value& v) {
    if (!predicate.in_values.empty()) {
      for (const Value& candidate : predicate.in_values) {
        if (v == candidate) return true;
      }
      return false;
    }
    return EvalCompare(v, predicate.op, predicate.literal);
  };
  // Single-pass k-way union of the qualifying value bitmaps — one output
  // append stream instead of a pairwise left-fold's k intermediates.
  std::vector<const WahBitmap*> qualifying;
  for (Vid vid = 0; vid < col->distinct_count(); ++vid) {
    if (qualifies(col->dict().value(vid))) {
      qualifying.push_back(&col->bitmap(vid));
    }
  }
  return WahOrMany(qualifying, table.rows());
}

namespace {

// Evaluates every predicate to its selection bitmap, in parallel on
// `ctx` (one task per predicate — each is an independent k-way union
// over its own column). Every predicate always runs, so invalid
// predicates error identically at every thread count; the first error
// in predicate order wins.
Result<std::vector<WahBitmap>> EvalAllPredicates(
    const ExecContext& ctx, const Table& table,
    const std::vector<ColumnPredicate>& preds) {
  std::vector<Result<WahBitmap>> slots(preds.size(),
                                       Result<WahBitmap>(WahBitmap()));
  Status st = ParallelFor(ctx, 0, preds.size(), 1, [&](uint64_t i) {
    slots[i] = EvalPredicate(table, preds[i]);
    return Status::OK();
  });
  CODS_CHECK(st.ok()) << st.ToString();
  std::vector<WahBitmap> evaluated;
  evaluated.reserve(preds.size());
  for (Result<WahBitmap>& slot : slots) {
    CODS_RETURN_NOT_OK(slot.status());
    evaluated.push_back(std::move(slot).ValueOrDie());
  }
  return evaluated;
}

// True when some evaluated predicate selects nothing (O(1) emptiness
// checks, not CountOnes() decodes).
bool AnyEmpty(const std::vector<WahBitmap>& evaluated) {
  for (const WahBitmap& bm : evaluated) {
    if (bm.IsAllZeros()) return true;
  }
  return false;
}

}  // namespace

// Short-circuit granularity: per-predicate emptiness skips the k-way
// AND entirely; pairwise-disjoint operands are handled by zero-fill
// annihilation inside the single k-way merge. (Unlike the serial fold
// this grew from, every predicate is always *evaluated*, so errors and
// results are independent of thread count.)
Result<WahBitmap> EvalConjunction(const Table& table,
                                  const std::vector<ColumnPredicate>& preds,
                                  const ExecContext* ctx) {
  CODS_ASSIGN_OR_RETURN(
      std::vector<WahBitmap> evaluated,
      EvalAllPredicates(ResolveContext(ctx), table, preds));
  if (AnyEmpty(evaluated)) {
    WahBitmap none;
    none.AppendRun(false, table.rows());
    return none;
  }
  return WahAndMany(evaluated, table.rows());
}

Result<WahBitmap> EvalDisjunction(const Table& table,
                                  const std::vector<ColumnPredicate>& preds,
                                  const ExecContext* ctx) {
  // A saturated operand costs the k-way union nothing thanks to
  // one-fill annihilation.
  CODS_ASSIGN_OR_RETURN(
      std::vector<WahBitmap> evaluated,
      EvalAllPredicates(ResolveContext(ctx), table, preds));
  return WahOrMany(evaluated, table.rows());
}

Result<uint64_t> CountWhere(const Table& table,
                            const std::vector<ColumnPredicate>& preds,
                            const ExecContext* ctx) {
  CODS_ASSIGN_OR_RETURN(
      std::vector<WahBitmap> evaluated,
      EvalAllPredicates(ResolveContext(ctx), table, preds));
  if (AnyEmpty(evaluated)) return 0;
  // Count-only kernel: the selection bitmap is never materialized.
  return WahAndManyCount(evaluated, table.rows());
}

Result<std::shared_ptr<const Table>> SelectWhere(
    const Table& table, const std::vector<ColumnPredicate>& preds,
    const std::string& out_name, const ExecContext* ctx) {
  ExecContext exec = ResolveContext(ctx);
  CODS_ASSIGN_OR_RETURN(WahBitmap selection,
                        EvalConjunction(table, preds, &exec));
  std::vector<uint64_t> positions = selection.SetPositions();
  WahPositionFilter filter(positions, table.rows());
  std::vector<std::shared_ptr<const Column>> cols(table.num_columns());
  // Column tasks nest the per-vid filter tasks inside FilterColumnBitmaps.
  CODS_RETURN_NOT_OK(
      ParallelFor(exec, 0, table.num_columns(), 1, [&](uint64_t i) -> Status {
        CODS_ASSIGN_OR_RETURN(
            cols[i], FilterColumnBitmaps(exec, *table.column(i), filter,
                                         "SelectWhere"));
        return Status::OK();
      }));
  // Selection preserves key uniqueness, so the key declaration survives.
  return Table::Make(out_name, table.schema(), std::move(cols),
                     positions.size());
}

Result<std::vector<Row>> FetchWhere(
    const Table& table, const std::vector<ColumnPredicate>& preds) {
  CODS_ASSIGN_OR_RETURN(auto selected, SelectWhere(table, preds, "tmp"));
  return selected->Materialize();
}

Result<std::vector<std::pair<Value, uint64_t>>> GroupByCount(
    const Table& table, const std::string& column) {
  CODS_ASSIGN_OR_RETURN(auto col, table.ColumnByName(column));
  std::vector<std::pair<Value, uint64_t>> out;
  out.reserve(col->distinct_count());
  for (Vid vid = 0; vid < col->distinct_count(); ++vid) {
    out.emplace_back(col->dict().value(vid), col->ValueCount(vid));
  }
  return out;
}

Result<std::vector<std::pair<Value, double>>> GroupBySum(
    const Table& table, const std::string& group_column,
    const std::string& measure_column, const ExecContext* ctx) {
  CODS_ASSIGN_OR_RETURN(auto group, table.ColumnByName(group_column));
  CODS_ASSIGN_OR_RETURN(auto measure, table.ColumnByName(measure_column));
  if (measure->type() == DataType::kString) {
    return Status::TypeError("SUM needs a numeric measure column");
  }
  if (group->encoding() != ColumnEncoding::kWahBitmap ||
      measure->encoding() != ColumnEncoding::kWahBitmap) {
    return Status::InvalidArgument(
        "GroupBySum requires WAH-encoded columns");
  }
  // Hoist per-measure emptiness out of the O(v_group · v_measure) loop
  // and skip empty group bitmaps entirely; the inner combine stays on the
  // count-only kernel (nothing is materialized).
  std::vector<const WahBitmap*> live_measures;
  std::vector<double> measure_values;
  for (Vid m = 0; m < measure->distinct_count(); ++m) {
    if (measure->bitmap(m).IsAllZeros()) continue;
    live_measures.push_back(&measure->bitmap(m));
    const Value& v = measure->dict().value(m);
    measure_values.push_back(v.is_int64() ? static_cast<double>(v.int64())
                                          : v.dbl());
  }
  // One task per group value: the inner AND-counts are independent, and
  // each group writes its own pre-sized slot, so dictionary order (and
  // floating-point summation order) is preserved at every thread count.
  std::vector<std::pair<Value, double>> out(group->distinct_count());
  Status st = ParallelFor(
      ResolveContext(ctx), 0, group->distinct_count(), 4, [&](uint64_t g) {
        double sum = 0;
        const WahBitmap& gbm = group->bitmap(static_cast<Vid>(g));
        if (!gbm.IsAllZeros()) {
          for (size_t m = 0; m < live_measures.size(); ++m) {
            uint64_t count = WahAndCount(gbm, *live_measures[m]);
            if (count == 0) continue;
            sum += measure_values[m] * static_cast<double>(count);
          }
        }
        out[g] = {group->dict().value(static_cast<Vid>(g)), sum};
        return Status::OK();
      });
  CODS_CHECK(st.ok()) << st.ToString();
  return out;
}

}  // namespace cods

#include "query/query_engine.h"

#include <algorithm>

#include "bitmap/wah_filter.h"
#include "bitmap/wah_ops.h"
#include "common/logging.h"
#include "exec/parallel_build.h"

namespace cods {

QueryRequest QueryRequest::Select(std::string table,
                                  std::vector<std::string> columns,
                                  ExprPtr where, std::string out_name) {
  QueryRequest req;
  req.verb = Verb::kSelect;
  req.table = std::move(table);
  req.columns = std::move(columns);
  req.where = std::move(where);
  req.out_name = std::move(out_name);
  return req;
}

QueryRequest QueryRequest::Count(std::string table, ExprPtr where) {
  QueryRequest req;
  req.verb = Verb::kCount;
  req.table = std::move(table);
  req.where = std::move(where);
  return req;
}

QueryRequest QueryRequest::GroupBySum(std::string table, std::string group_by,
                                      std::string sum_column, ExprPtr where) {
  QueryRequest req;
  req.verb = Verb::kGroupBySum;
  req.table = std::move(table);
  req.group_by = std::move(group_by);
  req.sum_column = std::move(sum_column);
  req.where = std::move(where);
  return req;
}

std::string QueryRequest::ToString() const {
  std::string out = "SELECT ";
  switch (verb) {
    case Verb::kSelect:
      if (columns.empty()) {
        out += "*";
      } else {
        for (size_t i = 0; i < columns.size(); ++i) {
          if (i > 0) out += ", ";
          out += columns[i];
        }
      }
      break;
    case Verb::kCount:
      out += "COUNT(*)";
      break;
    case Verb::kGroupBySum:
      // Canonical form always names the group column in the select list,
      // whether or not the original statement did.
      out += group_by + ", SUM(" + sum_column + ")";
      break;
  }
  out += " FROM " + table;
  if (where != nullptr) out += " WHERE " + where->ToString();
  if (verb == Verb::kGroupBySum) out += " GROUP BY " + group_by;
  return out;
}

std::string QueryResult::ToString() const {
  switch (verb) {
    case QueryRequest::Verb::kCount:
      return std::to_string(count);
    case QueryRequest::Verb::kSelect:
      if (table == nullptr) return "(no result table)";
      return table->name() + ": " + std::to_string(table->rows()) + " row" +
             (table->rows() == 1 ? "" : "s");
    case QueryRequest::Verb::kGroupBySum: {
      std::string out;
      for (const auto& [value, sum] : groups) {
        out += value.ToString() + ": " + std::to_string(sum) + "\n";
      }
      return out;
    }
  }
  return "";
}

Result<QueryResult> QueryEngine::Execute(const QueryRequest& request,
                                         const ExecContext* ctx) const {
  CODS_CHECK(store_ != nullptr) << "QueryEngine needs a TableStore";
  CODS_ASSIGN_OR_RETURN(auto table, store_->GetTable(request.table));
  QueryResult result;
  result.verb = request.verb;
  switch (request.verb) {
    case QueryRequest::Verb::kSelect: {
      CODS_ASSIGN_OR_RETURN(
          result.table, SelectRows(*table, request.columns, request.where,
                                   request.out_name, ctx));
      return result;
    }
    case QueryRequest::Verb::kCount: {
      CODS_ASSIGN_OR_RETURN(result.count,
                            CountRows(*table, request.where, ctx));
      return result;
    }
    case QueryRequest::Verb::kGroupBySum: {
      CODS_ASSIGN_OR_RETURN(
          result.groups,
          GroupBySumRows(*table, request.group_by, request.sum_column,
                         request.where, ctx));
      return result;
    }
  }
  return Status::InvalidArgument("unknown query verb");
}

Result<std::shared_ptr<const Table>> QueryEngine::SelectRows(
    const Table& table, const std::vector<std::string>& columns,
    const ExprPtr& where, const std::string& out_name,
    const ExecContext* ctx) {
  // Resolve the projection to column indices (request order).
  std::vector<size_t> indices;
  if (columns.empty()) {
    indices.resize(table.num_columns());
    for (size_t i = 0; i < indices.size(); ++i) indices[i] = i;
  } else {
    indices.reserve(columns.size());
    for (const std::string& name : columns) {
      CODS_ASSIGN_OR_RETURN(size_t idx, table.schema().ColumnIndex(name));
      indices.push_back(idx);
    }
  }
  std::vector<ColumnSpec> specs;
  specs.reserve(indices.size());
  for (size_t idx : indices) specs.push_back(table.schema().column(idx));
  // Row selection preserves key uniqueness, so the key declaration
  // survives — but only when the projection retains every key column.
  std::vector<std::string> key = table.schema().key();
  for (const std::string& k : key) {
    bool kept = std::any_of(specs.begin(), specs.end(),
                            [&](const ColumnSpec& s) { return s.name == k; });
    if (!kept) {
      key.clear();
      break;
    }
  }
  CODS_ASSIGN_OR_RETURN(Schema schema,
                        Schema::Make(std::move(specs), std::move(key)));

  std::vector<std::shared_ptr<const Column>> cols(indices.size());
  if (where == nullptr) {
    // No predicate: the projection shares the input's columns outright.
    for (size_t i = 0; i < indices.size(); ++i) {
      cols[i] = table.column(indices[i]);
    }
    return Table::Make(out_name, std::move(schema), std::move(cols),
                       table.rows());
  }

  ExecContext exec = ResolveContext(ctx);
  CODS_ASSIGN_OR_RETURN(WahBitmap selection, EvalExpr(table, where, &exec));
  std::vector<uint64_t> positions = selection.SetPositions();
  WahPositionFilter filter(positions, table.rows());
  // Column tasks nest the per-vid filter tasks inside FilterColumnBitmaps.
  CODS_RETURN_NOT_OK(
      ParallelFor(exec, 0, indices.size(), 1, [&](uint64_t i) -> Status {
        CODS_ASSIGN_OR_RETURN(
            cols[i], FilterColumnBitmaps(exec, *table.column(indices[i]),
                                         filter, "SELECT"));
        return Status::OK();
      }));
  return Table::Make(out_name, std::move(schema), std::move(cols),
                     positions.size());
}

Result<uint64_t> QueryEngine::CountRows(const Table& table,
                                        const ExprPtr& where,
                                        const ExecContext* ctx) {
  if (where == nullptr) return table.rows();
  return EvalExprCount(table, where, ctx);
}

Result<std::vector<std::pair<Value, double>>> QueryEngine::GroupBySumRows(
    const Table& table, const std::string& group_by,
    const std::string& sum_column, const ExprPtr& where,
    const ExecContext* ctx) {
  CODS_ASSIGN_OR_RETURN(auto group, table.ColumnByName(group_by));
  CODS_ASSIGN_OR_RETURN(auto measure, table.ColumnByName(sum_column));
  if (measure->type() == DataType::kString) {
    return Status::TypeError("SUM needs a numeric measure column");
  }
  if (group->encoding() != ColumnEncoding::kWahBitmap ||
      measure->encoding() != ColumnEncoding::kWahBitmap) {
    return Status::InvalidArgument(
        "GroupBySum requires WAH-encoded columns");
  }
  ExecContext exec = ResolveContext(ctx);
  // An optional WHERE narrows each group bitmap with ONE compressed AND
  // before the per-measure counts; evaluated once, shared read-only by
  // every group task.
  WahBitmap selection;
  bool filtered = where != nullptr;
  if (filtered) {
    CODS_ASSIGN_OR_RETURN(selection, EvalExpr(table, where, &exec));
  }
  // Hoist per-measure emptiness out of the O(v_group · v_measure) loop
  // and skip empty group bitmaps entirely; the inner combine stays on the
  // count-only kernel (nothing is materialized).
  std::vector<const WahBitmap*> live_measures;
  std::vector<double> measure_values;
  for (Vid m = 0; m < measure->distinct_count(); ++m) {
    if (measure->bitmap(m).IsAllZeros()) continue;
    live_measures.push_back(&measure->bitmap(m));
    const Value& v = measure->dict().value(m);
    measure_values.push_back(v.is_int64() ? static_cast<double>(v.int64())
                                          : v.dbl());
  }
  // One task per group value: the inner AND-counts are independent, and
  // each group writes its own pre-sized slot, so dictionary order (and
  // floating-point summation order) is preserved at every thread count.
  std::vector<std::pair<Value, double>> out(group->distinct_count());
  std::vector<char> qualifies(group->distinct_count(), 1);
  Status st = ParallelFor(
      exec, 0, group->distinct_count(), 4, [&](uint64_t g) {
        double sum = 0;
        const WahBitmap* gbm = &group->bitmap(static_cast<Vid>(g));
        WahBitmap narrowed;
        if (filtered) {
          if (!gbm->IsAllZeros()) {
            narrowed = WahAnd(*gbm, selection);
            gbm = &narrowed;
          }
          if (gbm->IsAllZeros()) {
            // SQL semantics: a WHERE that leaves a group no qualifying
            // rows drops the group (unlike a group genuinely summing
            // to 0, which stays).
            qualifies[g] = 0;
            return Status::OK();
          }
        }
        if (!gbm->IsAllZeros()) {
          for (size_t m = 0; m < live_measures.size(); ++m) {
            uint64_t count = WahAndCount(*gbm, *live_measures[m]);
            if (count == 0) continue;
            sum += measure_values[m] * static_cast<double>(count);
          }
        }
        out[g] = {group->dict().value(static_cast<Vid>(g)), sum};
        return Status::OK();
      });
  CODS_CHECK(st.ok()) << st.ToString();
  if (filtered) {
    // Compact in index order — deterministic at every thread count.
    std::vector<std::pair<Value, double>> kept;
    kept.reserve(out.size());
    for (size_t g = 0; g < out.size(); ++g) {
      if (qualifies[g]) kept.push_back(std::move(out[g]));
    }
    return kept;
  }
  return out;
}

}  // namespace cods

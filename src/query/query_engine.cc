#include "query/query_engine.h"

#include <algorithm>
#include <map>
#include <numeric>

#include "bitmap/codec.h"
#include "bitmap/wah_filter.h"
#include "bitmap/wah_ops.h"
#include "common/logging.h"
#include "exec/parallel_build.h"
#include "query/join.h"

namespace cods {

// ---- AggregateSpec ---------------------------------------------------------

AggregateSpec AggregateSpec::Sum(std::string column) {
  return AggregateSpec{Kind::kSum, std::move(column)};
}
AggregateSpec AggregateSpec::Count(std::string column) {
  return AggregateSpec{Kind::kCount, std::move(column)};
}
AggregateSpec AggregateSpec::Min(std::string column) {
  return AggregateSpec{Kind::kMin, std::move(column)};
}
AggregateSpec AggregateSpec::Max(std::string column) {
  return AggregateSpec{Kind::kMax, std::move(column)};
}
AggregateSpec AggregateSpec::Avg(std::string column) {
  return AggregateSpec{Kind::kAvg, std::move(column)};
}

std::string AggregateSpec::ToString() const {
  const char* name = "?";
  switch (kind) {
    case Kind::kSum:
      name = "SUM";
      break;
    case Kind::kCount:
      name = "COUNT";
      break;
    case Kind::kMin:
      name = "MIN";
      break;
    case Kind::kMax:
      name = "MAX";
      break;
    case Kind::kAvg:
      name = "AVG";
      break;
  }
  return std::string(name) + "(" + (column.empty() ? "*" : column) + ")";
}

bool operator==(const AggregateSpec& a, const AggregateSpec& b) {
  return a.kind == b.kind && a.column == b.column;
}

bool operator==(const GroupRow& a, const GroupRow& b) {
  return a.group == b.group && a.aggregates == b.aggregates;
}

// ---- QueryRequest ----------------------------------------------------------

QueryRequest QueryRequest::Select(std::string table,
                                  std::vector<std::string> columns,
                                  ExprPtr where, std::string out_name) {
  QueryRequest req;
  req.verb = Verb::kSelect;
  req.table = std::move(table);
  req.columns = std::move(columns);
  req.where = std::move(where);
  req.out_name = std::move(out_name);
  return req;
}

QueryRequest QueryRequest::Count(std::string table, ExprPtr where) {
  QueryRequest req;
  req.verb = Verb::kCount;
  req.table = std::move(table);
  req.where = std::move(where);
  return req;
}

QueryRequest QueryRequest::GroupBySum(std::string table, std::string group_by,
                                      std::string sum_column, ExprPtr where) {
  return GroupBy(std::move(table), std::move(group_by),
                 {AggregateSpec::Sum(std::move(sum_column))},
                 std::move(where));
}

QueryRequest QueryRequest::GroupBy(std::string table, std::string group_by,
                                   std::vector<AggregateSpec> aggregates,
                                   ExprPtr where) {
  QueryRequest req;
  req.verb = Verb::kGroupBy;
  req.table = std::move(table);
  req.group_by = std::move(group_by);
  req.aggregates = std::move(aggregates);
  req.where = std::move(where);
  return req;
}

QueryRequest& QueryRequest::JoinOn(std::string join_table_name,
                                   std::string left_ref,
                                   std::string right_ref) {
  join_table = std::move(join_table_name);
  join_left = std::move(left_ref);
  join_right = std::move(right_ref);
  return *this;
}

QueryRequest& QueryRequest::OrderBy(std::string column, bool desc) {
  order_by = std::move(column);
  order_desc = desc;
  return *this;
}

QueryRequest& QueryRequest::Limit(int64_t n) {
  limit = n;
  return *this;
}

std::string QueryRequest::ToString() const {
  std::string out = "SELECT ";
  switch (verb) {
    case Verb::kSelect:
      if (columns.empty()) {
        out += "*";
      } else {
        for (size_t i = 0; i < columns.size(); ++i) {
          if (i > 0) out += ", ";
          out += columns[i];
        }
      }
      break;
    case Verb::kCount:
      out += "COUNT(*)";
      break;
    case Verb::kGroupBy:
      // Canonical form always names the group column in the select list,
      // whether or not the original statement did.
      out += group_by;
      for (const AggregateSpec& agg : aggregates) {
        out += ", " + agg.ToString();
      }
      break;
  }
  out += " FROM " + table;
  if (!join_table.empty()) {
    out += " JOIN " + join_table + " ON " + join_left + " = " + join_right;
  }
  if (where != nullptr) out += " WHERE " + where->ToString();
  if (verb == Verb::kGroupBy) out += " GROUP BY " + group_by;
  if (!order_by.empty()) {
    out += " ORDER BY " + order_by;
    if (order_desc) out += " DESC";
  }
  if (limit >= 0) out += " LIMIT " + std::to_string(limit);
  return out;
}

// ---- QueryResult -----------------------------------------------------------

std::string QueryResult::ToString() const {
  switch (verb) {
    case QueryRequest::Verb::kCount:
      return std::to_string(count);
    case QueryRequest::Verb::kSelect:
      if (table == nullptr) return "(no result table)";
      // The schema header prints even for an empty result, so scripts
      // can tell "0 rows matched" from "the query failed".
      return table->name() + " " + table->schema().ToString() + ": " +
             std::to_string(table->rows()) + " row" +
             (table->rows() == 1 ? "" : "s");
    case QueryRequest::Verb::kGroupBy: {
      std::string out;
      for (const GroupRow& row : groups) {
        out += row.group.ToString() + ":";
        for (size_t a = 0; a < row.aggregates.size(); ++a) {
          out += " ";
          if (aggregates.size() == row.aggregates.size()) {
            out += aggregates[a].ToString() + "=";
          }
          out += row.aggregates[a].ToString();
        }
        out += "\n";
      }
      return out;
    }
  }
  return "";
}

// ---- Reference rewriting (join alias) --------------------------------------

namespace {

// How references rewrite over a join result: exact-match aliases map
// references to the ELIDED right join column onto the kept left one;
// `ambiguous` (if set) is a bare name that silently suffix-binding
// would mis-resolve — SQL requires qualification, so it errors.
struct JoinRefRules {
  std::map<std::string, std::string> alias;
  std::string ambiguous;
  std::string ambiguous_msg;
};

Status RemapRef(std::string* ref, const JoinRefRules& rules) {
  if (!rules.ambiguous.empty() && *ref == rules.ambiguous) {
    return Status::InvalidArgument(rules.ambiguous_msg);
  }
  auto it = rules.alias.find(*ref);
  if (it != rules.alias.end()) *ref = it->second;
  return Status::OK();
}

// Returns `expr` with every leaf column reference remapped through the
// rules (exact match); shares unchanged subtrees.
Result<ExprPtr> RewriteExprRefs(const ExprPtr& expr,
                                const JoinRefRules& rules) {
  if (expr == nullptr) return expr;
  switch (expr->kind) {
    case ExprKind::kCompare:
    case ExprKind::kIn:
    case ExprKind::kBetween: {
      std::string column = expr->column;
      CODS_RETURN_NOT_OK(RemapRef(&column, rules));
      if (column == expr->column) return expr;
      switch (expr->kind) {
        case ExprKind::kCompare:
          return Expr::Compare(std::move(column), expr->op, expr->literal);
        case ExprKind::kIn:
          return Expr::In(std::move(column), expr->in_values);
        default:
          return Expr::Between(std::move(column), expr->between_lo,
                               expr->between_hi);
      }
    }
    case ExprKind::kNot:
    case ExprKind::kAnd:
    case ExprKind::kOr: {
      std::vector<ExprPtr> children;
      children.reserve(expr->children.size());
      bool changed = false;
      for (const ExprPtr& child : expr->children) {
        CODS_ASSIGN_OR_RETURN(ExprPtr rewritten,
                              RewriteExprRefs(child, rules));
        changed |= rewritten != child;
        children.push_back(std::move(rewritten));
      }
      if (!changed) return expr;
      if (expr->kind == ExprKind::kNot) return Expr::Not(children[0]);
      return expr->kind == ExprKind::kAnd ? Expr::And(std::move(children))
                                          : Expr::Or(std::move(children));
    }
  }
  return expr;
}

// Row selection preserves key uniqueness, so a projection keeps the
// key declaration iff it retains EVERY key column (else no key).
std::vector<std::string> RetainedKey(const std::vector<ColumnSpec>& specs,
                                     std::vector<std::string> key) {
  for (const std::string& k : key) {
    bool kept = std::any_of(specs.begin(), specs.end(),
                            [&](const ColumnSpec& s) { return s.name == k; });
    if (!kept) return {};
  }
  return key;
}

}  // namespace

// ---- Execute ---------------------------------------------------------------

Result<QueryResult> QueryEngine::Execute(const QueryRequest& request,
                                         const ExecContext* ctx) const {
  CODS_CHECK(store_ != nullptr) << "QueryEngine needs a TableStore";
  CODS_ASSIGN_OR_RETURN(auto table, store_->GetTable(request.table));
  if (request.verb != QueryRequest::Verb::kSelect &&
      (!request.order_by.empty() || request.limit >= 0)) {
    return Status::InvalidArgument(
        "ORDER BY / LIMIT apply to row-returning SELECTs only");
  }

  std::shared_ptr<const Table> input = table;
  ExprPtr where = request.where;
  std::vector<std::string> columns = request.columns;
  std::string group_by = request.group_by;
  std::vector<AggregateSpec> aggregates = request.aggregates;
  std::string order_by = request.order_by;

  if (!request.join_table.empty()) {
    if (request.join_table == request.table) {
      return Status::InvalidArgument(
          "self-join: '" + request.table +
          "' appears on both sides; COPY TABLE it under a second name "
          "first");
    }
    CODS_ASSIGN_OR_RETURN(auto right, store_->GetTable(request.join_table));
    // Match the ON references to sides: as written first, then swapped.
    Result<size_t> li = table->ResolveColumnRef(request.join_left);
    Result<size_t> ri = right->ResolveColumnRef(request.join_right);
    if (!li.ok() || !ri.ok()) {
      Result<size_t> li2 = table->ResolveColumnRef(request.join_right);
      Result<size_t> ri2 = right->ResolveColumnRef(request.join_left);
      if (li2.ok() && ri2.ok()) {
        li = li2;
        ri = ri2;
      } else {
        return !li.ok() ? li.status() : ri.status();
      }
    }
    if (request.verb == QueryRequest::Verb::kCount && where == nullptr) {
      // COUNT(*) over an unfiltered join never materializes: the
      // vid-intersection's popcount products are the answer.
      QueryResult counted;
      counted.verb = request.verb;
      CODS_ASSIGN_OR_RETURN(
          counted.count,
          CompressedEquiJoinCount(*table, *right, li.ValueOrDie(),
                                  ri.ValueOrDie()));
      return counted;
    }
    CODS_ASSIGN_OR_RETURN(
        input, CompressedEquiJoin(*table, *right, li.ValueOrDie(),
                                  ri.ValueOrDie(),
                                  request.table + "_" + request.join_table,
                                  ctx));
    // The right join column is elided from the join result (its values
    // equal the left one's); alias references to it onto the kept
    // column so WHERE / GROUP BY / ORDER BY / projections still bind.
    // But when a DIFFERENT left column shares the elided column's bare
    // name, a bare reference must error as ambiguous — suffix
    // resolution would silently bind it to the wrong column.
    JoinRefRules rules;
    const std::string kept = request.table + "." +
                             table->schema().column(li.ValueOrDie()).name;
    const std::string& right_col =
        right->schema().column(ri.ValueOrDie()).name;
    rules.alias[request.join_table + "." + right_col] = kept;
    Result<size_t> bare = input->schema().ResolveColumnRef(right_col);
    if (!bare.ok()) {
      rules.alias[right_col] = kept;
    } else if (input->schema().column(bare.ValueOrDie()).name != kept) {
      rules.ambiguous = right_col;
      rules.ambiguous_msg =
          "ambiguous column '" + right_col + "': both " +
          input->schema().column(bare.ValueOrDie()).name +
          " and the elided join column " + request.join_table + "." +
          right_col + " (kept as " + kept + ") match; qualify the reference";
    }
    for (std::string& c : columns) CODS_RETURN_NOT_OK(RemapRef(&c, rules));
    for (AggregateSpec& agg : aggregates) {
      CODS_RETURN_NOT_OK(RemapRef(&agg.column, rules));
    }
    CODS_RETURN_NOT_OK(RemapRef(&group_by, rules));
    CODS_RETURN_NOT_OK(RemapRef(&order_by, rules));
    CODS_ASSIGN_OR_RETURN(where, RewriteExprRefs(where, rules));
  }

  QueryResult result;
  result.verb = request.verb;
  switch (request.verb) {
    case QueryRequest::Verb::kSelect: {
      if (order_by.empty() && request.limit < 0) {
        CODS_ASSIGN_OR_RETURN(
            result.table,
            SelectRows(*input, columns, where, request.out_name, ctx));
        return result;
      }
      // The sort column must survive filtering + projection; append it
      // when the projection would drop it, and strip it afterwards.
      // The reference is canonicalized against the INPUT table here —
      // the filtered intermediate is renamed to out_name, so a
      // `<table>.<col>` reference would no longer strip there.
      std::vector<std::string> exec_cols = columns;
      bool appended = false;
      if (!order_by.empty()) {
        CODS_ASSIGN_OR_RETURN(size_t order_idx,
                              input->ResolveColumnRef(order_by));
        order_by = input->schema().column(order_idx).name;
        if (!columns.empty()) {
          bool present = false;
          for (const std::string& c : columns) {
            Result<size_t> idx = input->ResolveColumnRef(c);
            if (idx.ok() && idx.ValueOrDie() == order_idx) {
              present = true;
              break;
            }
          }
          if (!present) {
            exec_cols.push_back(order_by);
            appended = true;
          }
        }
      }
      CODS_ASSIGN_OR_RETURN(
          auto filtered,
          SelectRows(*input, exec_cols, where, request.out_name, ctx));
      CODS_ASSIGN_OR_RETURN(
          auto sorted,
          SortRows(*filtered, order_by, request.order_desc, request.limit,
                   request.out_name, ctx));
      if (appended) {
        // Strip the helper sort column: a null-WHERE projection of the
        // first n names is pure column-pointer sharing.
        std::vector<std::string> kept_names;
        for (size_t i = 0; i + 1 < sorted->num_columns(); ++i) {
          kept_names.push_back(sorted->schema().column(i).name);
        }
        CODS_ASSIGN_OR_RETURN(
            sorted,
            SelectRows(*sorted, kept_names, nullptr, request.out_name, ctx));
      }
      result.table = sorted;
      return result;
    }
    case QueryRequest::Verb::kCount: {
      CODS_ASSIGN_OR_RETURN(result.count, CountRows(*input, where, ctx));
      return result;
    }
    case QueryRequest::Verb::kGroupBy: {
      CODS_ASSIGN_OR_RETURN(
          result.groups,
          GroupByRows(*input, group_by, aggregates, where, ctx));
      result.aggregates = std::move(aggregates);
      return result;
    }
  }
  return Status::InvalidArgument("unknown query verb");
}

// ---- SELECT ----------------------------------------------------------------

Result<std::shared_ptr<const Table>> QueryEngine::SelectRows(
    const Table& table, const std::vector<std::string>& columns,
    const ExprPtr& where, const std::string& out_name,
    const ExecContext* ctx) {
  // Resolve the projection to column indices (request order). A column
  // named twice — under any pair of references resolving to the same
  // column, including an explicitly-listed key — is an error naming
  // both positions; every retained column is projected exactly once.
  std::vector<size_t> indices;
  if (columns.empty()) {
    indices.resize(table.num_columns());
    std::iota(indices.begin(), indices.end(), size_t{0});
  } else {
    indices.reserve(columns.size());
    for (size_t c = 0; c < columns.size(); ++c) {
      CODS_ASSIGN_OR_RETURN(size_t idx, table.ResolveColumnRef(columns[c]));
      for (size_t prev = 0; prev < indices.size(); ++prev) {
        if (indices[prev] == idx) {
          return Status::InvalidArgument(
              "duplicate column '" + table.schema().column(idx).name +
              "' in the SELECT list (positions " + std::to_string(prev + 1) +
              " and " + std::to_string(c + 1) + ")");
        }
      }
      indices.push_back(idx);
    }
  }
  std::vector<ColumnSpec> specs;
  specs.reserve(indices.size());
  for (size_t idx : indices) specs.push_back(table.schema().column(idx));
  std::vector<std::string> key = RetainedKey(specs, table.schema().key());
  CODS_ASSIGN_OR_RETURN(Schema schema,
                        Schema::Make(std::move(specs), std::move(key)));

  std::vector<std::shared_ptr<const Column>> cols(indices.size());
  if (where == nullptr) {
    // No predicate: the projection shares the input's columns outright.
    for (size_t i = 0; i < indices.size(); ++i) {
      cols[i] = table.column(indices[i]);
    }
    return Table::Make(out_name, std::move(schema), std::move(cols),
                       table.rows());
  }

  ExecContext exec = ResolveContext(ctx);
  CODS_ASSIGN_OR_RETURN(WahBitmap selection, EvalExpr(table, where, &exec));
  std::vector<uint64_t> positions = selection.SetPositions();
  WahPositionFilter filter(positions, table.rows());
  // Column tasks nest the per-vid filter tasks inside FilterColumnBitmaps.
  CODS_RETURN_NOT_OK(
      ParallelFor(exec, 0, indices.size(), 1, [&](uint64_t i) -> Status {
        CODS_ASSIGN_OR_RETURN(
            cols[i], FilterColumnBitmaps(exec, *table.column(indices[i]),
                                         filter, "SELECT"));
        return Status::OK();
      }));
  return Table::Make(out_name, std::move(schema), std::move(cols),
                     positions.size());
}

Result<uint64_t> QueryEngine::CountRows(const Table& table,
                                        const ExprPtr& where,
                                        const ExecContext* ctx) {
  if (where == nullptr) return table.rows();
  return EvalExprCount(table, where, ctx);
}

// ---- GROUP BY --------------------------------------------------------------

Result<std::vector<GroupRow>> QueryEngine::GroupByRows(
    const Table& table, const std::string& group_by,
    const std::vector<AggregateSpec>& aggregates, const ExprPtr& where,
    const ExecContext* ctx) {
  if (aggregates.empty()) {
    return Status::InvalidArgument("GROUP BY needs at least one aggregate");
  }
  CODS_ASSIGN_OR_RETURN(auto group, table.ColumnByRef(group_by));
  if (group->encoding() != ColumnEncoding::kWahBitmap) {
    return Status::InvalidArgument(
        "GROUP BY requires a WAH-encoded group column");
  }
  // Resolve the measure columns, deduplicated: several aggregates over
  // one column share its per-group AND-count pass.
  std::vector<size_t> measure_idx;                        // table indices
  std::vector<std::shared_ptr<const Column>> measures;    // same order
  constexpr size_t kNoMeasure = static_cast<size_t>(-1);
  std::vector<size_t> measure_of_agg(aggregates.size(), kNoMeasure);
  bool need_group_count = false;
  for (size_t a = 0; a < aggregates.size(); ++a) {
    const AggregateSpec& agg = aggregates[a];
    if (agg.kind == AggregateSpec::Kind::kCount) {
      // COUNT(*) and COUNT(col) agree (no NULLs in this engine), but a
      // named column must still exist.
      if (!agg.column.empty()) {
        CODS_RETURN_NOT_OK(table.ResolveColumnRef(agg.column).status());
      }
      need_group_count = true;
      continue;
    }
    if (agg.column.empty()) {
      return Status::InvalidArgument(agg.ToString() + " needs a column");
    }
    CODS_ASSIGN_OR_RETURN(size_t idx, table.ResolveColumnRef(agg.column));
    auto col = table.column(idx);
    if ((agg.kind == AggregateSpec::Kind::kSum ||
         agg.kind == AggregateSpec::Kind::kAvg) &&
        col->type() == DataType::kString) {
      return Status::TypeError(agg.ToString() +
                               " needs a numeric measure column");
    }
    if (col->encoding() != ColumnEncoding::kWahBitmap) {
      return Status::InvalidArgument(
          "aggregates require WAH-encoded measure columns");
    }
    size_t slot = kNoMeasure;
    for (size_t m = 0; m < measure_idx.size(); ++m) {
      if (measure_idx[m] == idx) {
        slot = m;
        break;
      }
    }
    if (slot == kNoMeasure) {
      slot = measures.size();
      measure_idx.push_back(idx);
      measures.push_back(col);
    }
    measure_of_agg[a] = slot;
  }

  ExecContext exec = ResolveContext(ctx);
  // An optional WHERE narrows each group bitmap with ONE compressed AND
  // before the per-measure counts; evaluated once, shared read-only by
  // every group task.
  WahBitmap selection;
  const bool filtered = where != nullptr;
  if (filtered) {
    CODS_ASSIGN_OR_RETURN(selection, EvalExpr(table, where, &exec));
  }
  // Hoist per-measure emptiness out of the O(v_group · v_measure) loop;
  // the inner combine stays on the count-only kernel (nothing is
  // materialized).
  struct LiveMeasure {
    std::vector<const ValueBitmap*> bitmaps;
    std::vector<Vid> vids;
    std::vector<double> numeric;  // 0 for strings (never summed)
  };
  std::vector<LiveMeasure> live(measures.size());
  for (size_t m = 0; m < measures.size(); ++m) {
    const Column& col = *measures[m];
    for (Vid v = 0; v < col.distinct_count(); ++v) {
      if (col.bitmap(v).IsAllZeros()) continue;
      live[m].bitmaps.push_back(&col.bitmap(v));
      live[m].vids.push_back(v);
      const Value& value = col.dict().value(v);
      live[m].numeric.push_back(value.is_int64()
                                    ? static_cast<double>(value.int64())
                                    : value.is_double() ? value.dbl() : 0.0);
    }
  }
  // One task per group value: the inner AND-counts are independent, and
  // each group writes its own pre-sized slot, so dictionary order (and
  // floating-point summation order) is preserved at every thread count.
  std::vector<GroupRow> out(group->distinct_count());
  std::vector<char> qualifies(group->distinct_count(), 1);
  Status st = ParallelFor(
      exec, 0, group->distinct_count(), 4, [&](uint64_t g) {
        const ValueBitmap& gvb = group->bitmap(static_cast<Vid>(g));
        // With a WHERE, the group bitmap narrows to canonical WAH via
        // one codec AND; unfiltered groups stay in their codec container
        // and the inner counts dispatch on the representation pair.
        WahBitmap narrowed;
        bool use_narrowed = false;
        if (filtered) {
          if (!gvb.IsAllZeros()) {
            narrowed = CodecAndWah(gvb, selection);
            use_narrowed = true;
          }
          if (use_narrowed ? narrowed.IsAllZeros() : gvb.IsAllZeros()) {
            // SQL semantics: a WHERE that leaves a group no qualifying
            // rows drops the group (unlike a group genuinely summing
            // to 0, which stays).
            qualifies[g] = 0;
            return Status::OK();
          }
        }
        const bool empty_group =
            use_narrowed ? narrowed.IsAllZeros() : gvb.IsAllZeros();
        const uint64_t group_count =
            need_group_count && !empty_group
                ? (use_narrowed ? narrowed.CountOnes() : gvb.CountOnes())
                : 0;
        struct Acc {
          double sum = 0;
          uint64_t count = 0;
          const Value* min = nullptr;
          const Value* max = nullptr;
        };
        std::vector<Acc> accs(measures.size());
        if (!empty_group) {
          for (size_t m = 0; m < measures.size(); ++m) {
            const LiveMeasure& lm = live[m];
            Acc& acc = accs[m];
            for (size_t i = 0; i < lm.bitmaps.size(); ++i) {
              uint64_t count =
                  use_narrowed ? CodecAndCountWah(*lm.bitmaps[i], narrowed)
                               : CodecAndCount(gvb, *lm.bitmaps[i]);
              if (count == 0) continue;
              acc.sum += lm.numeric[i] * static_cast<double>(count);
              acc.count += count;
              const Value& v = measures[m]->dict().value(lm.vids[i]);
              if (acc.min == nullptr || v < *acc.min) acc.min = &v;
              if (acc.max == nullptr || *acc.max < v) acc.max = &v;
            }
          }
        }
        GroupRow row;
        row.group = group->dict().value(static_cast<Vid>(g));
        row.aggregates.reserve(aggregates.size());
        for (size_t a = 0; a < aggregates.size(); ++a) {
          const size_t m = measure_of_agg[a];
          switch (aggregates[a].kind) {
            case AggregateSpec::Kind::kCount:
              row.aggregates.push_back(
                  Value(static_cast<int64_t>(group_count)));
              break;
            case AggregateSpec::Kind::kSum:
              // An empty (dictionary-complete) group sums to 0, the
              // GroupBySum back-compat behavior.
              row.aggregates.push_back(Value(accs[m].sum));
              break;
            case AggregateSpec::Kind::kAvg:
              // The measure's value bitmaps partition the group's rows,
              // so acc.count is the group row count.
              row.aggregates.push_back(
                  accs[m].count == 0
                      ? Value::Null()
                      : Value(accs[m].sum /
                              static_cast<double>(accs[m].count)));
              break;
            case AggregateSpec::Kind::kMin:
              row.aggregates.push_back(
                  accs[m].min == nullptr ? Value::Null() : *accs[m].min);
              break;
            case AggregateSpec::Kind::kMax:
              row.aggregates.push_back(
                  accs[m].max == nullptr ? Value::Null() : *accs[m].max);
              break;
          }
        }
        out[g] = std::move(row);
        return Status::OK();
      });
  CODS_CHECK(st.ok()) << st.ToString();
  if (filtered) {
    // Compact in index order — deterministic at every thread count.
    std::vector<GroupRow> kept;
    kept.reserve(out.size());
    for (size_t g = 0; g < out.size(); ++g) {
      if (qualifies[g]) kept.push_back(std::move(out[g]));
    }
    return kept;
  }
  return out;
}

Result<std::vector<std::pair<Value, double>>> QueryEngine::GroupBySumRows(
    const Table& table, const std::string& group_by,
    const std::string& sum_column, const ExprPtr& where,
    const ExecContext* ctx) {
  CODS_ASSIGN_OR_RETURN(
      std::vector<GroupRow> rows,
      GroupByRows(table, group_by, {AggregateSpec::Sum(sum_column)}, where,
                  ctx));
  std::vector<std::pair<Value, double>> out;
  out.reserve(rows.size());
  for (GroupRow& row : rows) {
    out.emplace_back(std::move(row.group), row.aggregates[0].dbl());
  }
  return out;
}

// ---- ORDER BY / LIMIT ------------------------------------------------------

Result<std::shared_ptr<const Table>> QueryEngine::SortRows(
    const Table& table, const std::string& order_by, bool desc,
    int64_t limit, const std::string& out_name, const ExecContext* ctx) {
  ExecContext exec = ResolveContext(ctx);
  const uint64_t rows = table.rows();
  const uint64_t keep =
      limit < 0 ? rows : std::min<uint64_t>(static_cast<uint64_t>(limit), rows);
  std::vector<uint64_t> perm;
  size_t sort_idx = static_cast<size_t>(-1);
  std::vector<Vid> sort_vids;  // decoded once, reused by the rebuild loop
  if (order_by.empty()) {
    // Pure LIMIT: the first `keep` rows in input order.
    perm.resize(keep);
    std::iota(perm.begin(), perm.end(), uint64_t{0});
  } else {
    CODS_ASSIGN_OR_RETURN(sort_idx, table.ResolveColumnRef(order_by));
    const Column& sort_col = *table.column(sort_idx);
    sort_vids = sort_col.DecodeVids(&exec);
    const std::vector<Vid>& vids = sort_vids;
    // Rank the dictionary on the total Value order (NaN after every
    // real number); order-equal values (e.g. int64 3 vs double 3.0
    // cannot share a column, but NaNs can) keep dictionary order —
    // stable, so the result is identical at every thread count.
    const Vid distinct = static_cast<Vid>(sort_col.distinct_count());
    std::vector<Vid> by_value(distinct);
    std::iota(by_value.begin(), by_value.end(), Vid{0});
    std::stable_sort(by_value.begin(), by_value.end(), [&](Vid a, Vid b) {
      return sort_col.dict().value(a) < sort_col.dict().value(b);
    });
    // Order-equal dictionary values (NaNs get one dictionary entry per
    // occurrence, since NaN != NaN) SHARE a rank: the tiebreak within a
    // rank is input row position, in both directions — DESC reverses
    // bucket order, never bucket contents.
    std::vector<uint64_t> rank(distinct);
    uint64_t num_ranks = 0;
    for (Vid i = 0; i < distinct; ++i) {
      if (i > 0 && sort_col.dict().value(by_value[i - 1]) <
                       sort_col.dict().value(by_value[i])) {
        ++num_ranks;
      }
      rank[by_value[i]] = num_ranks;
    }
    if (distinct > 0) ++num_ranks;
    // Counting sort of row positions by rank: stable on input position.
    std::vector<uint64_t> counts(num_ranks, 0);
    for (uint64_t r = 0; r < rows; ++r) ++counts[rank[vids[r]]];
    std::vector<uint64_t> offset(num_ranks, 0);
    uint64_t acc = 0;
    if (!desc) {
      for (uint64_t k = 0; k < num_ranks; ++k) {
        offset[k] = acc;
        acc += counts[k];
      }
    } else {
      for (uint64_t k = num_ranks; k-- > 0;) {
        offset[k] = acc;
        acc += counts[k];
      }
    }
    perm.resize(rows);
    for (uint64_t r = 0; r < rows; ++r) {
      perm[offset[rank[vids[r]]]++] = r;
    }
    perm.resize(keep);
  }

  // Rebuild every column compressed from the row → vid gather; one
  // buffer reused across columns bounds memory at O(keep).
  std::vector<std::shared_ptr<const Column>> cols(table.num_columns());
  std::vector<Vid> out_vid_of_row(keep);
  for (size_t c = 0; c < table.num_columns(); ++c) {
    const Column& src = *table.column(c);
    if (keep == 0) {
      cols[c] = Column::FromBitmaps(
          src.type(), src.dict(),
          std::vector<WahBitmap>(src.distinct_count()), 0);
      continue;
    }
    std::vector<Vid> decoded;
    if (c != sort_idx) decoded = src.DecodeVids(&exec);
    const std::vector<Vid>& vids = c == sort_idx ? sort_vids : decoded;
    Status st = ParallelForChunked(
        exec, 0, keep, 4096, [&](uint64_t lo, uint64_t hi) {
          for (uint64_t j = lo; j < hi; ++j) {
            out_vid_of_row[j] = vids[perm[j]];
          }
          return Status::OK();
        });
    CODS_CHECK(st.ok()) << st.ToString();
    std::vector<WahBitmap> bitmaps = BuildValueBitmaps(
        exec, out_vid_of_row.data(), keep, src.distinct_count());
    cols[c] = Column::FromBitmaps(src.type(), src.dict(), std::move(bitmaps),
                                  keep, &exec);
  }
  // Reordering / truncating rows preserves key uniqueness, so the
  // schema (key included) carries over.
  return Table::Make(out_name, table.schema(), std::move(cols), keep);
}

}  // namespace cods

// Query-level data evolution baselines (the C, C+I, S and M series of
// Figure 3). Each driver executes the paper's SQL plan shape —
//   INSERT INTO S SELECT <s-cols> FROM R;
//   INSERT INTO T SELECT DISTINCT <t-cols> FROM R;
// for decomposition, and INSERT INTO R SELECT ... FROM S JOIN T for
// mergence — on the corresponding engine, and reports a per-stage timing
// breakdown so the benches can show where the time goes.

#ifndef CODS_QUERY_QUERY_EVOLUTION_H_
#define CODS_QUERY_QUERY_EVOLUTION_H_

#include <memory>
#include <string>
#include <vector>

#include "query/column_executor.h"
#include "query/row_executor.h"

namespace cods {

/// Which baseline engine executes the evolution.
enum class BaselineKind {
  kRowStore,         // "C"  — hash-based plans, no index maintenance
  kRowStoreIndexed,  // "C+I" — hash-based plans + B+ tree rebuild on outputs
  kRowStoreLite,     // "S"  — sort-based distinct, index-nested-loop join
  kColumnQueryLevel, // "M"  — column store via materialize/re-compress
};

const char* BaselineKindToString(BaselineKind kind);

/// Wall-clock breakdown of one evolution, in seconds.
struct EvolutionTiming {
  double scan_s = 0;      // reading + materializing input tuples
  double query_s = 0;     // distinct / join work
  double load_s = 0;      // inserting result tuples into output storage
  double index_s = 0;     // rebuilding indexes on outputs
  double compress_s = 0;  // dictionary + WAH re-encoding (column baseline)

  double total() const {
    return scan_s + query_s + load_s + index_s + compress_s;
  }
};

/// What to decompose: R(all cols) into S(s_columns) and T(t_columns).
/// `t_key` names the key of the changed table T (the join attributes);
/// it must be a prefix-free subset of both outputs for losslessness.
struct DecomposeSpec {
  std::vector<std::string> s_columns;
  std::vector<std::string> t_columns;
  std::vector<std::string> s_key;  // declared key of S (may be empty)
  std::vector<std::string> t_key;  // declared key of T (the common attrs)
};

/// Row-store decomposition result: two heap tables (+ timing).
struct RowDecomposeResult {
  std::unique_ptr<RowTable> s;
  std::unique_ptr<RowTable> t;
  EvolutionTiming timing;
};

/// Executes decomposition on a row-store heap table. `kind` must be one
/// of the row-store baselines.
Result<RowDecomposeResult> RowStoreDecompose(const RowTable& r,
                                             const DecomposeSpec& spec,
                                             BaselineKind kind,
                                             const std::string& s_name,
                                             const std::string& t_name);

/// Row-store mergence result.
struct RowMergeResult {
  std::unique_ptr<RowTable> r;
  EvolutionTiming timing;
};

/// Executes S JOIN T -> R on a row-store baseline.
Result<RowMergeResult> RowStoreMerge(const RowTable& s, const RowTable& t,
                                     const std::vector<std::string>& join_columns,
                                     const std::vector<std::string>& out_key,
                                     BaselineKind kind,
                                     const std::string& out_name);

/// Column-store query-level decomposition result (the M series).
struct ColumnDecomposeResult {
  std::shared_ptr<const Table> s;
  std::shared_ptr<const Table> t;
  EvolutionTiming timing;
};

/// Executes decomposition on the column store the query-level way:
/// decompress -> project/distinct on tuples -> re-compress.
Result<ColumnDecomposeResult> ColumnQueryLevelDecompose(
    const Table& r, const DecomposeSpec& spec, const std::string& s_name,
    const std::string& t_name);

/// Column-store query-level mergence result.
struct ColumnMergeResult {
  std::shared_ptr<const Table> r;
  EvolutionTiming timing;
};

/// Executes S JOIN T -> R the query-level way on the column store.
Result<ColumnMergeResult> ColumnQueryLevelMerge(
    const Table& s, const Table& t,
    const std::vector<std::string>& join_columns,
    const std::vector<std::string>& out_key, const std::string& out_name);

}  // namespace cods

#endif  // CODS_QUERY_QUERY_EVOLUTION_H_

// The composable predicate AST of the query layer: compare, IN, BETWEEN,
// NOT, and arbitrarily nested AND/OR over single-column leaves. An Expr
// compiles onto the compressed-domain WAH kernels instead of a row scan:
//
//   1. Normalize: NOT is pushed down De Morgan-style (NOT over AND/OR
//      distributes, double NOT cancels) and NOT over a comparison folds
//      into the negated comparison operator (NegateCompareOp), so the
//      only surviving NOTs sit directly over IN/BETWEEN leaves. Same-kind
//      AND/AND and OR/OR children are flattened into one node, exposing
//      the maximal fan-in to the single-pass k-way kernels.
//   2. Leaf evaluation: every leaf is one dictionary scan plus a k-way
//      WahOrMany union of the qualifying value bitmaps. Leaves evaluate
//      in parallel on the ExecContext (one task per leaf, pre-sized
//      slots, first error in leaf order), so results and errors are
//      bit-identical at every thread count.
//   3. Combine: AND/OR nodes feed their children to WahAndMany/WahOrMany
//      (one pass, no pairwise intermediates); a residual NOT is a WahNot
//      complement on top of its leaf. The complement is exact because
//      every row holds exactly one non-null value per column, so a
//      column's value bitmaps partition the row domain.
//
// This is the expression counterpart of the FastBit-style selection the
// free functions in column_select.h provided for flat predicate lists;
// those functions are now thin shims over this AST and the QueryEngine.

#ifndef CODS_QUERY_EXPR_H_
#define CODS_QUERY_EXPR_H_

#include <memory>
#include <string>
#include <vector>

#include "bitmap/wah_bitmap.h"
#include "common/compare.h"
#include "exec/exec.h"
#include "storage/table.h"

namespace cods {

struct Expr;
/// Nodes are immutable and shared; subtrees can be reused across
/// requests (and across threads) freely.
using ExprPtr = std::shared_ptr<const Expr>;

enum class ExprKind { kCompare, kIn, kBetween, kNot, kAnd, kOr };

const char* ExprKindToString(ExprKind kind);

/// One node of a predicate expression. Leaves (kCompare, kIn, kBetween)
/// name a column and carry literals; kNot has exactly one child; kAnd
/// and kOr have one or more. The factories below construct well-formed
/// nodes — use them instead of aggregate initialization.
struct Expr {
  ExprKind kind = ExprKind::kCompare;

  // Leaf payload.
  std::string column;
  CompareOp op = CompareOp::kEq;     // kCompare
  Value literal;                     // kCompare right-hand side
  std::vector<Value> in_values;      // kIn candidate set
  Value between_lo, between_hi;      // kBetween inclusive bounds

  // kNot: exactly one; kAnd/kOr: one or more.
  std::vector<ExprPtr> children;

  // ---- Factories ---------------------------------------------------------
  static ExprPtr Compare(std::string column, CompareOp op, Value literal);
  static ExprPtr In(std::string column, std::vector<Value> values);
  static ExprPtr Between(std::string column, Value lo, Value hi);
  static ExprPtr Not(ExprPtr child);
  static ExprPtr And(std::vector<ExprPtr> children);
  static ExprPtr Or(std::vector<ExprPtr> children);

  /// True when a row whose `column` holds `v` satisfies this LEAF
  /// (kCompare/kIn/kBetween only) — the dictionary-scan qualifier and
  /// the row-level oracle tests check against.
  bool LeafMatches(const Value& v) const;

  /// Renders the expression in the statement grammar of smo/parser.h
  /// ("a = 'x' AND (b > 3 OR NOT c IN (1, 2))"). Minimal parentheses;
  /// the output re-parses to an equivalent expression.
  std::string ToString() const;
};

/// Structural equality (same shape, columns, operators, literals).
bool ExprEquals(const Expr& a, const Expr& b);

/// The normalization pass described above, exposed for tests and for
/// plan display. Idempotent. Never errors: unknown columns are caught
/// at evaluation (bind) time.
ExprPtr NormalizeExpr(const ExprPtr& expr);

/// Evaluates `expr` to a selection bitmap of length table.rows().
/// Normalizes, evaluates every leaf in parallel on `ctx`, and combines
/// with the k-way kernels. Unknown columns and non-WAH-encoded columns
/// error; the first error in leaf order wins at every thread count.
Result<WahBitmap> EvalExpr(const Table& table, const ExprPtr& expr,
                           const ExecContext* ctx = nullptr);

/// Number of selected rows, using the count-only k-way kernels at the
/// root (the selection bitmap of the root node is never materialized
/// when the root is AND/OR after normalization).
Result<uint64_t> EvalExprCount(const Table& table, const ExprPtr& expr,
                               const ExecContext* ctx = nullptr);

}  // namespace cods

#endif  // CODS_QUERY_EXPR_H_

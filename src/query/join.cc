#include "query/join.h"

#include <utility>
#include <vector>

#include "bitmap/codec.h"
#include "bitmap/wah_filter.h"
#include "bitmap/wah_ops.h"
#include "common/logging.h"
#include "exec/parallel_build.h"

namespace cods {

namespace {

// WAH copy of `table` when any column is RLE-encoded; nullptr when it
// is already fully bitmap-encoded. (Query-layer twin of the evolution
// layer's ReencodeRleToWah — query/ does not include evolution/.)
std::shared_ptr<const Table> ReencodeToWah(const Table& table) {
  bool any_rle = false;
  for (size_t i = 0; i < table.num_columns(); ++i) {
    if (table.column(i)->encoding() != ColumnEncoding::kWahBitmap) {
      any_rle = true;
      break;
    }
  }
  if (!any_rle) return nullptr;
  std::vector<std::shared_ptr<const Column>> cols;
  cols.reserve(table.num_columns());
  for (size_t i = 0; i < table.num_columns(); ++i) {
    cols.push_back(table.column(i)->WithEncoding(ColumnEncoding::kWahBitmap));
  }
  auto rebuilt =
      Table::Make(table.name(), table.schema(), std::move(cols), table.rows());
  CODS_CHECK(rebuilt.ok()) << rebuilt.status().ToString();
  return rebuilt.ValueOrDie();
}

// Maps every vid of `from` to the vid of the equal value in `to`, or
// kNoVid when the value is absent there — the dictionary-level
// vid-intersection that classifies the join before any row is touched.
std::vector<Vid> TranslateDict(const Dictionary& from, const Dictionary& to) {
  std::vector<Vid> out(from.size(), kNoVid);
  for (Vid vid = 0; vid < from.size(); ++vid) {
    std::optional<Vid> mapped = to.Lookup(from.value(vid));
    if (mapped.has_value()) out[vid] = *mapped;
  }
  return out;
}

// One matched join value: the vids it holds on each side and the
// per-side row counts.
struct Match {
  Vid left_vid = 0;
  Vid right_vid = 0;
  uint64_t n1 = 0;  // left rows holding the value
  uint64_t n2 = 0;  // right rows holding the value
};

// Appends `count` one-bits at [start, start+count) to a builder whose
// current size must be <= start (zero-padding the gap).
void AppendOnesAt(WahBitmap* bm, uint64_t start, uint64_t count) {
  CODS_DCHECK(bm->size() <= start);
  bm->AppendRun(false, start - bm->size());
  bm->AppendRun(true, count);
}

// Pads every builder to `rows` and wraps them in a Column.
std::shared_ptr<const Column> FinishColumn(DataType type,
                                           const Dictionary& dict,
                                           std::vector<WahBitmap> builders,
                                           uint64_t rows) {
  for (WahBitmap& bm : builders) {
    bm.AppendRun(false, rows - bm.size());
  }
  return Column::FromBitmaps(type, dict, std::move(builders), rows);
}

// Every output column is qualified `<table>.<column>`, the reference
// shape Schema::ResolveColumnRef matches by suffix; the right join
// column is elided (its values equal the left one's).
Result<Schema> QualifiedOutSchema(const Table& left, const Table& right,
                                  size_t right_join) {
  std::vector<ColumnSpec> specs;
  specs.reserve(left.num_columns() + right.num_columns() - 1);
  for (size_t i = 0; i < left.num_columns(); ++i) {
    ColumnSpec spec = left.schema().column(i);
    spec.name = left.name() + "." + spec.name;
    specs.push_back(std::move(spec));
  }
  for (size_t i = 0; i < right.num_columns(); ++i) {
    if (i == right_join) continue;
    ColumnSpec spec = right.schema().column(i);
    spec.name = right.name() + "." + spec.name;
    specs.push_back(std::move(spec));
  }
  return Schema::Make(std::move(specs), {});
}

// ---- Key–FK shape (§2.5.1, SQL semantics) ---------------------------------
//
// Every matched value is unique on the `keyed` side, so each scan row
// has at most one partner. Output rows follow scan row order, filtered
// to rows whose value matched (or the scan columns are reused by
// pointer when every row did).

struct FkOut {
  // All scan-side columns, filtered (or shared) — scan schema order.
  std::vector<std::shared_ptr<const Column>> scan_cols;
  // Keyed-side columns except its join column — keyed schema order.
  std::vector<std::shared_ptr<const Column>> keyed_cols;
  uint64_t rows = 0;
};

Result<FkOut> FkJoin(const ExecContext& exec, const Table& scan,
                     size_t scan_join, const Table& keyed, size_t keyed_join,
                     const std::vector<std::pair<Vid, Vid>>& matches) {
  const Column& sj = *scan.column(scan_join);
  const Column& kj = *keyed.column(keyed_join);
  FkOut out;
  // Scan rows with a partner: one single-pass k-way union of the
  // matched value bitmaps (the vid-intersection, materialized).
  std::vector<const ValueBitmap*> matched;
  matched.reserve(matches.size());
  for (const auto& [sv, kv] : matches) matched.push_back(&sj.bitmap(sv));
  WahBitmap selection = CodecOrManyWah(matched, scan.rows());
  const bool all_rows = selection.IsAllOnes();
  std::vector<uint64_t> positions;
  out.scan_cols.resize(scan.num_columns());
  if (all_rows) {
    // Every scan row matches: reuse the scan columns by pointer (the
    // §2.4 Property 1 move — one pointer copy per column).
    out.rows = scan.rows();
    for (size_t i = 0; i < scan.num_columns(); ++i) {
      out.scan_cols[i] = scan.column(i);
    }
  } else {
    positions = selection.SetPositions();
    out.rows = positions.size();
    WahPositionFilter filter(positions, scan.rows());
    // Column tasks nest the per-vid filter tasks inside
    // FilterColumnBitmaps, exactly as PARTITION and SELECT do.
    CODS_RETURN_NOT_OK(
        ParallelFor(exec, 0, scan.num_columns(), 1, [&](uint64_t i) -> Status {
          CODS_ASSIGN_OR_RETURN(
              out.scan_cols[i],
              FilterColumnBitmaps(exec, *scan.column(i), filter, "JOIN"));
          return Status::OK();
        }));
  }
  if (keyed.num_columns() <= 1) return out;  // nothing to generate
  // The keyed row of each matched scan vid: the single set bit of the
  // keyed value bitmap, probed on compressed words.
  std::vector<uint64_t> keyed_row_of_scan_vid(sj.distinct_count(), 0);
  Status probe_st =
      ParallelFor(exec, 0, matches.size(), 64, [&](uint64_t m) {
        keyed_row_of_scan_vid[matches[m].first] =
            kj.bitmap(matches[m].second).FirstSetBit();
        return Status::OK();
      });
  CODS_CHECK(probe_st.ok()) << probe_st.ToString();
  // Output row -> keyed row, via the scan join column's vids.
  std::vector<Vid> svids = sj.DecodeVids(&exec);
  std::vector<uint64_t> keyed_row_of_out(out.rows);
  Status map_st = ParallelForChunked(
      exec, 0, out.rows, 4096, [&](uint64_t lo, uint64_t hi) {
        for (uint64_t j = lo; j < hi; ++j) {
          uint64_t scan_row = all_rows ? j : positions[j];
          keyed_row_of_out[j] = keyed_row_of_scan_vid[svids[scan_row]];
        }
        return Status::OK();
      });
  CODS_CHECK(map_st.ok()) << map_st.ToString();
  // Generate the keyed payload columns: one row -> vid gather per
  // column, then the chunked parallel builder appends bits in
  // increasing row order (maximal same-value runs append as one fill).
  std::vector<Vid> out_vid_of_row(out.rows);
  for (size_t i = 0; i < keyed.num_columns(); ++i) {
    if (i == keyed_join) continue;
    const Column& src = *keyed.column(i);
    std::vector<Vid> kvids = src.DecodeVids(&exec);
    Status st = ParallelForChunked(
        exec, 0, out.rows, 4096, [&](uint64_t lo, uint64_t hi) {
          for (uint64_t j = lo; j < hi; ++j) {
            out_vid_of_row[j] = kvids[keyed_row_of_out[j]];
          }
          return Status::OK();
        });
    CODS_CHECK(st.ok()) << st.ToString();
    std::vector<WahBitmap> bitmaps = BuildValueBitmaps(
        exec, out_vid_of_row.data(), out.rows, src.distinct_count());
    out.keyed_cols.push_back(Column::FromBitmaps(
        src.type(), src.dict(), std::move(bitmaps), out.rows, &exec));
  }
  return out;
}

// ---- General shape (§2.5.2) ------------------------------------------------
//
// Both sides may carry duplicates: matched value k occupies
// n1(k)·n2(k) consecutive output rows (left rows outer, right rows
// inner), clustered by value in left-dictionary order.

Result<std::shared_ptr<const Table>> GeneralJoin(
    const ExecContext& exec, const Table& left, size_t left_join,
    const Table& right, size_t right_join, const std::vector<Match>& matches,
    Schema out_schema, const std::string& out_name) {
  const uint64_t num = matches.size();
  std::vector<uint64_t> off(num + 1, 0);
  for (uint64_t k = 0; k < num; ++k) {
    off[k + 1] = off[k] + matches[k].n1 * matches[k].n2;
  }
  const uint64_t out_rows = off[num];
  // Per-match row buckets, decoded once from the compressed join
  // columns (set-position streams; one slot per match).
  std::vector<std::vector<uint64_t>> lrows(num), rrows(num);
  Status pos_st = ParallelFor(exec, 0, num, 16, [&](uint64_t k) {
    lrows[k] = left.column(left_join)->bitmap(matches[k].left_vid)
                   .SetPositions();
    rrows[k] = right.column(right_join)->bitmap(matches[k].right_vid)
                   .SetPositions();
    return Status::OK();
  });
  CODS_CHECK(pos_st.ok()) << pos_st.ToString();

  std::vector<std::shared_ptr<const Column>> out_cols;
  out_cols.reserve(left.num_columns() + right.num_columns() - 1);
  // One row -> vid buffer reused across columns bounds memory at
  // O(out_rows) regardless of arity.
  std::vector<Vid> out_vid_of_row(out_rows);
  auto build_mapped = [&](const Column& src, auto&& fill_match) {
    Status st = ParallelFor(exec, 0, num, 64, [&](uint64_t k) {
      fill_match(k);
      return Status::OK();
    });
    CODS_CHECK(st.ok()) << st.ToString();
    std::vector<WahBitmap> bitmaps = BuildValueBitmaps(
        exec, out_vid_of_row.data(), out_rows, src.distinct_count());
    out_cols.push_back(Column::FromBitmaps(src.type(), src.dict(),
                                           std::move(bitmaps), out_rows,
                                           &exec));
  };
  for (size_t i = 0; i < left.num_columns(); ++i) {
    const Column& src = *left.column(i);
    if (i == left_join) {
      // Join column: one fill run per match — cheap enough serially.
      std::vector<WahBitmap> builders(src.distinct_count());
      for (uint64_t k = 0; k < num; ++k) {
        AppendOnesAt(&builders[matches[k].left_vid], off[k],
                     matches[k].n1 * matches[k].n2);
      }
      out_cols.push_back(FinishColumn(src.type(), src.dict(),
                                      std::move(builders), out_rows));
      continue;
    }
    // Left non-join values lay out consecutively, each row's value
    // repeated n2 times.
    std::vector<Vid> vids = src.DecodeVids(&exec);
    build_mapped(src, [&](uint64_t k) {
      for (uint64_t i1 = 0; i1 < matches[k].n1; ++i1) {
        Vid v = vids[lrows[k][i1]];
        uint64_t base = off[k] + i1 * matches[k].n2;
        for (uint64_t j1 = 0; j1 < matches[k].n2; ++j1) {
          out_vid_of_row[base + j1] = v;
        }
      }
    });
  }
  for (size_t i = 0; i < right.num_columns(); ++i) {
    if (i == right_join) continue;
    // Right non-join values repeat at constant stride n2.
    const Column& src = *right.column(i);
    std::vector<Vid> vids = src.DecodeVids(&exec);
    build_mapped(src, [&](uint64_t k) {
      for (uint64_t i1 = 0; i1 < matches[k].n1; ++i1) {
        uint64_t base = off[k] + i1 * matches[k].n2;
        for (uint64_t j1 = 0; j1 < matches[k].n2; ++j1) {
          out_vid_of_row[base + j1] = vids[rrows[k][j1]];
        }
      }
    });
  }
  return Table::Make(out_name, std::move(out_schema), std::move(out_cols),
                     out_rows);
}

// Type agreement of the join columns, with a naming error otherwise.
Status CheckJoinTypes(const Table& left, const Table& right,
                      size_t left_join, size_t right_join) {
  const Column& lcol = *left.column(left_join);
  const Column& rcol = *right.column(right_join);
  if (lcol.type() == rcol.type()) return Status::OK();
  return Status::TypeError(
      "join columns must share a type: " +
      left.name() + "." + left.schema().column(left_join).name + " is " +
      DataTypeToString(lcol.type()) + ", " + right.name() + "." +
      right.schema().column(right_join).name + " is " +
      DataTypeToString(rcol.type()));
}

// Vid-intersection of the join columns: dictionary translate, then
// per-value popcounts on compressed words. The counts both classify
// the join (unique side => key-FK shape) and size the general one —
// and their products Σ n1·n2 ARE the output cardinality, so a
// count-only join stops here.
std::vector<Match> IntersectJoinColumns(const Column& lcol,
                                        const Column& rcol,
                                        bool* left_unique,
                                        bool* right_unique) {
  std::vector<Vid> trans = TranslateDict(lcol.dict(), rcol.dict());
  std::vector<Match> matches;
  *left_unique = *right_unique = true;
  for (Vid lv = 0; lv < lcol.distinct_count(); ++lv) {
    if (trans[lv] == kNoVid) continue;
    Match m;
    m.left_vid = lv;
    m.right_vid = trans[lv];
    m.n1 = lcol.bitmap(m.left_vid).CountOnes();
    if (m.n1 == 0) continue;
    m.n2 = rcol.bitmap(m.right_vid).CountOnes();
    if (m.n2 == 0) continue;
    *left_unique &= m.n1 == 1;
    *right_unique &= m.n2 == 1;
    matches.push_back(m);
  }
  return matches;
}

}  // namespace

Result<uint64_t> CompressedEquiJoinCount(const Table& left,
                                         const Table& right,
                                         size_t left_join, size_t right_join,
                                         JoinStats* stats) {
  CODS_CHECK(left_join < left.num_columns());
  CODS_CHECK(right_join < right.num_columns());
  CODS_RETURN_NOT_OK(CheckJoinTypes(left, right, left_join, right_join));
  // Only the two join columns are touched; re-encode just them if RLE.
  auto lcol = left.column(left_join);
  auto rcol = right.column(right_join);
  if (lcol->encoding() != ColumnEncoding::kWahBitmap) {
    lcol = lcol->WithEncoding(ColumnEncoding::kWahBitmap);
  }
  if (rcol->encoding() != ColumnEncoding::kWahBitmap) {
    rcol = rcol->WithEncoding(ColumnEncoding::kWahBitmap);
  }
  bool left_unique, right_unique;
  std::vector<Match> matches =
      IntersectJoinColumns(*lcol, *rcol, &left_unique, &right_unique);
  if (stats != nullptr) {
    stats->matched_values = matches.size();
    stats->path = "count-only";
  }
  uint64_t count = 0;
  for (const Match& m : matches) count += m.n1 * m.n2;
  return count;
}

Result<std::shared_ptr<const Table>> CompressedEquiJoin(
    const Table& left, const Table& right, size_t left_join,
    size_t right_join, const std::string& out_name, const ExecContext* ctx,
    JoinStats* stats) {
  if (auto l2 = ReencodeToWah(left)) {
    return CompressedEquiJoin(*l2, right, left_join, right_join, out_name,
                              ctx, stats);
  }
  if (auto r2 = ReencodeToWah(right)) {
    return CompressedEquiJoin(left, *r2, left_join, right_join, out_name,
                              ctx, stats);
  }
  CODS_CHECK(left_join < left.num_columns());
  CODS_CHECK(right_join < right.num_columns());
  const Column& lcol = *left.column(left_join);
  const Column& rcol = *right.column(right_join);
  CODS_RETURN_NOT_OK(CheckJoinTypes(left, right, left_join, right_join));
  CODS_ASSIGN_OR_RETURN(Schema out_schema,
                        QualifiedOutSchema(left, right, right_join));
  ExecContext exec = ResolveContext(ctx);

  bool left_unique, right_unique;
  std::vector<Match> matches =
      IntersectJoinColumns(lcol, rcol, &left_unique, &right_unique);
  if (stats != nullptr) stats->matched_values = matches.size();

  if (right_unique) {
    // Left rows each have at most one partner: scan left, generate
    // right's payload — output in left row order.
    if (stats != nullptr) stats->path = "fk-right";
    std::vector<std::pair<Vid, Vid>> fk;
    fk.reserve(matches.size());
    for (const Match& m : matches) fk.emplace_back(m.left_vid, m.right_vid);
    CODS_ASSIGN_OR_RETURN(FkOut fkout,
                          FkJoin(exec, left, left_join, right, right_join, fk));
    std::vector<std::shared_ptr<const Column>> cols = std::move(fkout.scan_cols);
    for (auto& c : fkout.keyed_cols) cols.push_back(std::move(c));
    return Table::Make(out_name, std::move(out_schema), std::move(cols),
                       fkout.rows);
  }
  if (left_unique) {
    // Mirrored: scan right, generate left's payload — output in right
    // row order, but the column order of the result is unchanged (left
    // columns first); the join column's data comes from the scanned
    // right side (equal values by construction).
    if (stats != nullptr) stats->path = "fk-left";
    std::vector<std::pair<Vid, Vid>> fk;
    fk.reserve(matches.size());
    for (const Match& m : matches) fk.emplace_back(m.right_vid, m.left_vid);
    CODS_ASSIGN_OR_RETURN(FkOut fkout,
                          FkJoin(exec, right, right_join, left, left_join, fk));
    std::vector<std::shared_ptr<const Column>> cols;
    cols.reserve(left.num_columns() + right.num_columns() - 1);
    size_t keyed_i = 0;
    for (size_t i = 0; i < left.num_columns(); ++i) {
      if (i == left_join) {
        cols.push_back(fkout.scan_cols[right_join]);
      } else {
        cols.push_back(std::move(fkout.keyed_cols[keyed_i++]));
      }
    }
    for (size_t i = 0; i < right.num_columns(); ++i) {
      if (i == right_join) continue;
      cols.push_back(std::move(fkout.scan_cols[i]));
    }
    return Table::Make(out_name, std::move(out_schema), std::move(cols),
                       fkout.rows);
  }
  if (stats != nullptr) stats->path = "general";
  return GeneralJoin(exec, left, left_join, right, right_join, matches,
                     std::move(out_schema), out_name);
}

}  // namespace cods

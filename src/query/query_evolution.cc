#include "query/query_evolution.h"

#include <algorithm>

#include "common/stopwatch.h"

namespace cods {

const char* BaselineKindToString(BaselineKind kind) {
  switch (kind) {
    case BaselineKind::kRowStore:
      return "C (row store)";
    case BaselineKind::kRowStoreIndexed:
      return "C+I (row store, indexed)";
    case BaselineKind::kRowStoreLite:
      return "S (row store, lite)";
    case BaselineKind::kColumnQueryLevel:
      return "M (column store, query level)";
  }
  return "?";
}

Result<RowDecomposeResult> RowStoreDecompose(const RowTable& r,
                                             const DecomposeSpec& spec,
                                             BaselineKind kind,
                                             const std::string& s_name,
                                             const std::string& t_name) {
  if (kind == BaselineKind::kColumnQueryLevel) {
    return Status::InvalidArgument(
        "RowStoreDecompose requires a row-store baseline kind");
  }
  RowDecomposeResult out;
  Stopwatch watch;

  // INSERT INTO S SELECT <s-cols> FROM R. The unchanged table keeps
  // R's multiplicity, so no DISTINCT.
  CODS_ASSIGN_OR_RETURN(
      out.s, ProjectRows(r, spec.s_columns, spec.s_key, s_name));
  out.timing.load_s += watch.ElapsedSeconds();

  // INSERT INTO T SELECT DISTINCT <t-cols> FROM R.
  watch.Reset();
  if (kind == BaselineKind::kRowStoreLite) {
    CODS_ASSIGN_OR_RETURN(out.t, ProjectRowsDistinctSort(
                                     r, spec.t_columns, spec.t_key, t_name));
  } else {
    CODS_ASSIGN_OR_RETURN(out.t, ProjectRowsDistinctHash(
                                     r, spec.t_columns, spec.t_key, t_name));
  }
  out.timing.query_s += watch.ElapsedSeconds();

  if (kind == BaselineKind::kRowStoreIndexed) {
    // Indexes on the new tables must be rebuilt from scratch (§1).
    watch.Reset();
    if (!spec.s_key.empty()) {
      CODS_ASSIGN_OR_RETURN(std::vector<size_t> s_key_idx,
                            out.s->schema().KeyIndices());
      BTreeIndex s_index = BTreeIndex::Build(*out.s, s_key_idx);
      CODS_CHECK(s_index.size() == out.s->rows());
    }
    if (!spec.t_key.empty()) {
      CODS_ASSIGN_OR_RETURN(std::vector<size_t> t_key_idx,
                            out.t->schema().KeyIndices());
      BTreeIndex t_index = BTreeIndex::Build(*out.t, t_key_idx);
      CODS_CHECK(t_index.size() == out.t->rows());
    }
    out.timing.index_s += watch.ElapsedSeconds();
  }
  return out;
}

Result<RowMergeResult> RowStoreMerge(const RowTable& s, const RowTable& t,
                                     const std::vector<std::string>& join_columns,
                                     const std::vector<std::string>& out_key,
                                     BaselineKind kind,
                                     const std::string& out_name) {
  if (kind == BaselineKind::kColumnQueryLevel) {
    return Status::InvalidArgument(
        "RowStoreMerge requires a row-store baseline kind");
  }
  RowMergeResult out;
  Stopwatch watch;
  if (kind == BaselineKind::kRowStoreLite) {
    CODS_ASSIGN_OR_RETURN(
        out.r,
        IndexNestedLoopJoinRows(s, t, join_columns, out_key, out_name));
  } else {
    CODS_ASSIGN_OR_RETURN(
        out.r, HashJoinRows(s, t, join_columns, out_key, out_name));
  }
  out.timing.query_s += watch.ElapsedSeconds();

  if (kind == BaselineKind::kRowStoreIndexed && !out_key.empty()) {
    watch.Reset();
    CODS_ASSIGN_OR_RETURN(std::vector<size_t> key_idx,
                          out.r->schema().KeyIndices());
    BTreeIndex index = BTreeIndex::Build(*out.r, key_idx);
    CODS_CHECK(index.size() == out.r->rows());
    out.timing.index_s += watch.ElapsedSeconds();
  }
  return out;
}

Result<ColumnDecomposeResult> ColumnQueryLevelDecompose(
    const Table& r, const DecomposeSpec& spec, const std::string& s_name,
    const std::string& t_name) {
  ColumnDecomposeResult out;
  Stopwatch watch;

  // Decompress: materialize the full input as tuples.
  std::vector<Row> tuples = ScanToRows(r);
  out.timing.scan_s += watch.ElapsedSeconds();

  // Query: project (S) and project+distinct (T) on tuple vectors.
  watch.Reset();
  CODS_ASSIGN_OR_RETURN(std::vector<size_t> s_idx, [&]() -> Result<std::vector<size_t>> {
    std::vector<size_t> idx;
    for (const std::string& n : spec.s_columns) {
      CODS_ASSIGN_OR_RETURN(size_t i, r.schema().ColumnIndex(n));
      idx.push_back(i);
    }
    return idx;
  }());
  CODS_ASSIGN_OR_RETURN(std::vector<size_t> t_idx, [&]() -> Result<std::vector<size_t>> {
    std::vector<size_t> idx;
    for (const std::string& n : spec.t_columns) {
      CODS_ASSIGN_OR_RETURN(size_t i, r.schema().ColumnIndex(n));
      idx.push_back(i);
    }
    return idx;
  }());
  std::vector<Row> s_rows = ProjectRowVec(tuples, s_idx);
  std::vector<Row> t_rows = DistinctRowVec(ProjectRowVec(tuples, t_idx));
  out.timing.query_s += watch.ElapsedSeconds();

  // Re-compress: dictionary + WAH encode both outputs.
  watch.Reset();
  CODS_ASSIGN_OR_RETURN(Schema s_schema,
                        SchemaSubset(r.schema(), spec.s_columns, spec.s_key));
  CODS_ASSIGN_OR_RETURN(Schema t_schema,
                        SchemaSubset(r.schema(), spec.t_columns, spec.t_key));
  CODS_ASSIGN_OR_RETURN(out.s, RowsToColumnTable(s_name, s_schema, s_rows));
  CODS_ASSIGN_OR_RETURN(out.t, RowsToColumnTable(t_name, t_schema, t_rows));
  out.timing.compress_s += watch.ElapsedSeconds();
  return out;
}

Result<ColumnMergeResult> ColumnQueryLevelMerge(
    const Table& s, const Table& t,
    const std::vector<std::string>& join_columns,
    const std::vector<std::string>& out_key, const std::string& out_name) {
  ColumnMergeResult out;
  Stopwatch watch;

  std::vector<Row> s_rows = ScanToRows(s);
  std::vector<Row> t_rows = ScanToRows(t);
  out.timing.scan_s += watch.ElapsedSeconds();

  watch.Reset();
  std::vector<size_t> s_join, t_join;
  for (const std::string& n : join_columns) {
    CODS_ASSIGN_OR_RETURN(size_t i, s.schema().ColumnIndex(n));
    s_join.push_back(i);
    CODS_ASSIGN_OR_RETURN(size_t j, t.schema().ColumnIndex(n));
    t_join.push_back(j);
  }
  std::vector<Row> joined = HashJoinRowVec(s_rows, t_rows, s_join, t_join);
  out.timing.query_s += watch.ElapsedSeconds();

  watch.Reset();
  std::vector<ColumnSpec> specs = s.schema().columns();
  for (size_t i = 0; i < t.schema().num_columns(); ++i) {
    if (std::find(t_join.begin(), t_join.end(), i) == t_join.end()) {
      specs.push_back(t.schema().column(i));
    }
  }
  CODS_ASSIGN_OR_RETURN(Schema out_schema,
                        Schema::Make(std::move(specs), out_key));
  CODS_ASSIGN_OR_RETURN(out.r,
                        RowsToColumnTable(out_name, out_schema, joined));
  out.timing.compress_s += watch.ElapsedSeconds();
  return out;
}

}  // namespace cods

#include "query/column_executor.h"

#include <algorithm>
#include <unordered_map>
#include <unordered_set>

#include "storage/scanner.h"

namespace cods {

std::vector<Row> ScanToRows(const Table& table) {
  return table.Materialize();
}

std::vector<Row> ProjectRowVec(const std::vector<Row>& rows,
                               const std::vector<size_t>& indices) {
  std::vector<Row> out;
  out.reserve(rows.size());
  for (const Row& row : rows) {
    Row projected;
    projected.reserve(indices.size());
    for (size_t i : indices) projected.push_back(row[i]);
    out.push_back(std::move(projected));
  }
  return out;
}

std::vector<Row> DistinctRowVec(const std::vector<Row>& rows) {
  std::unordered_set<Row, RowHash, RowEq> seen;
  seen.reserve(rows.size());
  std::vector<Row> out;
  for (const Row& row : rows) {
    if (seen.insert(row).second) out.push_back(row);
  }
  return out;
}

std::vector<Row> HashJoinRowVec(const std::vector<Row>& left,
                                const std::vector<Row>& right,
                                const std::vector<size_t>& left_join,
                                const std::vector<size_t>& right_join) {
  std::unordered_multimap<Row, const Row*, RowHash, RowEq> build;
  build.reserve(right.size());
  auto project = [](const Row& row, const std::vector<size_t>& idx) {
    Row out;
    out.reserve(idx.size());
    for (size_t i : idx) out.push_back(row[i]);
    return out;
  };
  for (const Row& r : right) {
    build.emplace(project(r, right_join), &r);
  }
  std::vector<size_t> right_payload;
  if (!right.empty()) {
    for (size_t i = 0; i < right.front().size(); ++i) {
      if (std::find(right_join.begin(), right_join.end(), i) ==
          right_join.end()) {
        right_payload.push_back(i);
      }
    }
  }
  std::vector<Row> out;
  for (const Row& l : left) {
    Row key = project(l, left_join);
    auto [lo, hi] = build.equal_range(key);
    for (auto it = lo; it != hi; ++it) {
      Row joined = l;
      for (size_t i : right_payload) joined.push_back((*it->second)[i]);
      out.push_back(std::move(joined));
    }
  }
  return out;
}

Result<std::shared_ptr<const Table>> RowsToColumnTable(
    const std::string& name, const Schema& schema,
    const std::vector<Row>& rows, const ExecContext* ctx) {
  ExecContext exec = ResolveContext(ctx);
  // Validation first, row-chunk parallel: chunk-order error aggregation
  // keeps TableBuilder's row-major first-error reporting, and the encode
  // tasks below can then index freely. The per-value rules live in
  // ValidateValueForColumn, shared with TableBuilder::AppendRow.
  CODS_RETURN_NOT_OK(ParallelForChunked(
      exec, 0, rows.size(), 1024,
      [&](uint64_t lo, uint64_t hi) -> Status {
        for (uint64_t r = lo; r < hi; ++r) {
          if (rows[r].size() != schema.num_columns()) {
            return Status::InvalidArgument(
                "row arity " + std::to_string(rows[r].size()) +
                " != schema arity " + std::to_string(schema.num_columns()));
          }
          for (size_t i = 0; i < schema.num_columns(); ++i) {
            CODS_RETURN_NOT_OK(
                ValidateValueForColumn(rows[r][i], schema.column(i)));
          }
        }
        return Status::OK();
      }));
  // One task per column: dictionary-encode its values in row order, then
  // compress (FromVids nests the chunk-parallel bitmap builder).
  std::vector<std::shared_ptr<const Column>> columns(schema.num_columns());
  CODS_RETURN_NOT_OK(ParallelFor(
      exec, 0, schema.num_columns(), 1, [&](uint64_t i) -> Status {
        const ColumnSpec& spec = schema.column(i);
        Dictionary dict;
        std::vector<Vid> vids;
        vids.reserve(rows.size());
        for (const Row& row : rows) {
          vids.push_back(dict.GetOrInsert(row[i]));
        }
        columns[i] = spec.sorted
                         ? Column::FromVidsRle(spec.type, std::move(dict),
                                               vids)
                         : Column::FromVids(spec.type, std::move(dict),
                                            vids, &exec);
        return Status::OK();
      }));
  return Table::Make(name, schema, std::move(columns), rows.size());
}

}  // namespace cods

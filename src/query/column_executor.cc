#include "query/column_executor.h"

#include <algorithm>
#include <unordered_map>
#include <unordered_set>

#include "storage/scanner.h"

namespace cods {

std::vector<Row> ScanToRows(const Table& table) {
  return table.Materialize();
}

std::vector<Row> ProjectRowVec(const std::vector<Row>& rows,
                               const std::vector<size_t>& indices) {
  std::vector<Row> out;
  out.reserve(rows.size());
  for (const Row& row : rows) {
    Row projected;
    projected.reserve(indices.size());
    for (size_t i : indices) projected.push_back(row[i]);
    out.push_back(std::move(projected));
  }
  return out;
}

std::vector<Row> DistinctRowVec(const std::vector<Row>& rows) {
  std::unordered_set<Row, RowHash, RowEq> seen;
  seen.reserve(rows.size());
  std::vector<Row> out;
  for (const Row& row : rows) {
    if (seen.insert(row).second) out.push_back(row);
  }
  return out;
}

std::vector<Row> HashJoinRowVec(const std::vector<Row>& left,
                                const std::vector<Row>& right,
                                const std::vector<size_t>& left_join,
                                const std::vector<size_t>& right_join) {
  std::unordered_multimap<Row, const Row*, RowHash, RowEq> build;
  build.reserve(right.size());
  auto project = [](const Row& row, const std::vector<size_t>& idx) {
    Row out;
    out.reserve(idx.size());
    for (size_t i : idx) out.push_back(row[i]);
    return out;
  };
  for (const Row& r : right) {
    build.emplace(project(r, right_join), &r);
  }
  std::vector<size_t> right_payload;
  if (!right.empty()) {
    for (size_t i = 0; i < right.front().size(); ++i) {
      if (std::find(right_join.begin(), right_join.end(), i) ==
          right_join.end()) {
        right_payload.push_back(i);
      }
    }
  }
  std::vector<Row> out;
  for (const Row& l : left) {
    Row key = project(l, left_join);
    auto [lo, hi] = build.equal_range(key);
    for (auto it = lo; it != hi; ++it) {
      Row joined = l;
      for (size_t i : right_payload) joined.push_back((*it->second)[i]);
      out.push_back(std::move(joined));
    }
  }
  return out;
}

Result<std::shared_ptr<const Table>> RowsToColumnTable(
    const std::string& name, const Schema& schema,
    const std::vector<Row>& rows) {
  TableBuilder builder(name, schema);
  for (const Row& row : rows) {
    CODS_RETURN_NOT_OK(builder.AppendRow(row));
  }
  return builder.Finish();
}

}  // namespace cods

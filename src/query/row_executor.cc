#include "query/row_executor.h"

#include <algorithm>
#include <unordered_map>
#include <unordered_set>

#include "storage/scanner.h"

namespace cods {

namespace {

// Resolves column names to indices in `schema`.
Result<std::vector<size_t>> ResolveColumns(
    const Schema& schema, const std::vector<std::string>& names) {
  std::vector<size_t> out;
  out.reserve(names.size());
  for (const std::string& n : names) {
    CODS_ASSIGN_OR_RETURN(size_t idx, schema.ColumnIndex(n));
    out.push_back(idx);
  }
  return out;
}

Row ProjectRow(const Row& row, const std::vector<size_t>& indices) {
  Row out;
  out.reserve(indices.size());
  for (size_t i : indices) out.push_back(row[i]);
  return out;
}

}  // namespace

Result<std::unique_ptr<RowTable>> MaterializeToRowStore(const Table& table) {
  auto out = std::make_unique<RowTable>(table.name(), table.schema());
  TableScanner scanner(table);
  for (uint64_t r = 0; r < scanner.rows(); ++r) {
    CODS_ASSIGN_OR_RETURN(RowId rid, out->Insert(scanner.GetRow(r)));
    (void)rid;
  }
  return out;
}

Result<std::shared_ptr<const Table>> RowTableToColumnTable(
    const RowTable& table, const std::string& name) {
  TableBuilder builder(name, table.schema());
  Status status = Status::OK();
  table.Scan([&](RowId, const Row& row) {
    if (!status.ok()) return;
    status = builder.AppendRow(row);
  });
  CODS_RETURN_NOT_OK(status);
  return builder.Finish();
}

Result<Schema> SchemaSubset(const Schema& schema,
                            const std::vector<std::string>& columns,
                            const std::vector<std::string>& key) {
  std::vector<ColumnSpec> specs;
  specs.reserve(columns.size());
  for (const std::string& n : columns) {
    CODS_ASSIGN_OR_RETURN(size_t idx, schema.ColumnIndex(n));
    specs.push_back(schema.column(idx));
  }
  return Schema::Make(std::move(specs), key);
}

Result<std::unique_ptr<RowTable>> ProjectRows(
    const RowTable& in, const std::vector<std::string>& columns,
    const std::vector<std::string>& out_key, const std::string& out_name) {
  CODS_ASSIGN_OR_RETURN(std::vector<size_t> indices,
                        ResolveColumns(in.schema(), columns));
  CODS_ASSIGN_OR_RETURN(Schema out_schema,
                        SchemaSubset(in.schema(), columns, out_key));
  auto out = std::make_unique<RowTable>(out_name, std::move(out_schema));
  Status status = Status::OK();
  in.Scan([&](RowId, const Row& row) {
    if (!status.ok()) return;
    status = out->Insert(ProjectRow(row, indices)).status();
  });
  CODS_RETURN_NOT_OK(status);
  return out;
}

Result<std::unique_ptr<RowTable>> ProjectRowsDistinctHash(
    const RowTable& in, const std::vector<std::string>& columns,
    const std::vector<std::string>& out_key, const std::string& out_name) {
  CODS_ASSIGN_OR_RETURN(std::vector<size_t> indices,
                        ResolveColumns(in.schema(), columns));
  CODS_ASSIGN_OR_RETURN(Schema out_schema,
                        SchemaSubset(in.schema(), columns, out_key));
  auto out = std::make_unique<RowTable>(out_name, std::move(out_schema));
  std::unordered_set<Row, RowHash, RowEq> seen;
  Status status = Status::OK();
  in.Scan([&](RowId, const Row& row) {
    if (!status.ok()) return;
    Row projected = ProjectRow(row, indices);
    if (seen.insert(projected).second) {
      status = out->Insert(projected).status();
    }
  });
  CODS_RETURN_NOT_OK(status);
  return out;
}

Result<std::unique_ptr<RowTable>> ProjectRowsDistinctSort(
    const RowTable& in, const std::vector<std::string>& columns,
    const std::vector<std::string>& out_key, const std::string& out_name) {
  CODS_ASSIGN_OR_RETURN(std::vector<size_t> indices,
                        ResolveColumns(in.schema(), columns));
  CODS_ASSIGN_OR_RETURN(Schema out_schema,
                        SchemaSubset(in.schema(), columns, out_key));
  std::vector<Row> rows;
  rows.reserve(in.rows());
  in.Scan([&](RowId, const Row& row) {
    rows.push_back(ProjectRow(row, indices));
  });
  std::sort(rows.begin(), rows.end(), RowLess);
  rows.erase(std::unique(rows.begin(), rows.end()), rows.end());
  auto out = std::make_unique<RowTable>(out_name, std::move(out_schema));
  for (const Row& row : rows) {
    CODS_RETURN_NOT_OK(out->Insert(row).status());
  }
  return out;
}

Result<std::unique_ptr<RowTable>> FilterRows(
    const RowTable& in, const std::function<bool(const Row&)>& pred,
    const std::string& out_name) {
  auto out = std::make_unique<RowTable>(out_name, in.schema());
  Status status = Status::OK();
  in.Scan([&](RowId, const Row& row) {
    if (!status.ok() || !pred(row)) return;
    status = out->Insert(row).status();
  });
  CODS_RETURN_NOT_OK(status);
  return out;
}

namespace {

// Shared output construction for the two join strategies.
struct JoinPlan {
  std::vector<size_t> s_join;     // join column indices in s
  std::vector<size_t> t_join;     // join column indices in t
  std::vector<size_t> t_payload;  // non-join column indices in t
  Schema out_schema;
};

Result<JoinPlan> PlanJoin(const RowTable& s, const RowTable& t,
                          const std::vector<std::string>& join_columns,
                          const std::vector<std::string>& out_key) {
  JoinPlan plan;
  CODS_ASSIGN_OR_RETURN(plan.s_join,
                        ResolveColumns(s.schema(), join_columns));
  CODS_ASSIGN_OR_RETURN(plan.t_join,
                        ResolveColumns(t.schema(), join_columns));
  std::vector<ColumnSpec> specs = s.schema().columns();
  for (size_t i = 0; i < t.schema().num_columns(); ++i) {
    if (std::find(plan.t_join.begin(), plan.t_join.end(), i) ==
        plan.t_join.end()) {
      plan.t_payload.push_back(i);
      specs.push_back(t.schema().column(i));
    }
  }
  CODS_ASSIGN_OR_RETURN(plan.out_schema,
                        Schema::Make(std::move(specs), out_key));
  return plan;
}

Row ConcatJoinRow(const Row& s_row, const Row& t_row,
                  const std::vector<size_t>& t_payload) {
  Row out = s_row;
  out.reserve(s_row.size() + t_payload.size());
  for (size_t i : t_payload) out.push_back(t_row[i]);
  return out;
}

}  // namespace

Result<std::unique_ptr<RowTable>> HashJoinRows(
    const RowTable& s, const RowTable& t,
    const std::vector<std::string>& join_columns,
    const std::vector<std::string>& out_key, const std::string& out_name) {
  CODS_ASSIGN_OR_RETURN(JoinPlan plan,
                        PlanJoin(s, t, join_columns, out_key));
  // Build side: t.
  std::unordered_multimap<Row, Row, RowHash, RowEq> build;
  build.reserve(t.rows());
  t.Scan([&](RowId, const Row& row) {
    build.emplace(ProjectRow(row, plan.t_join), row);
  });
  auto out = std::make_unique<RowTable>(out_name, plan.out_schema);
  Status status = Status::OK();
  s.Scan([&](RowId, const Row& s_row) {
    if (!status.ok()) return;
    Row key = ProjectRow(s_row, plan.s_join);
    auto [lo, hi] = build.equal_range(key);
    for (auto it = lo; it != hi && status.ok(); ++it) {
      status =
          out->Insert(ConcatJoinRow(s_row, it->second, plan.t_payload))
              .status();
    }
  });
  CODS_RETURN_NOT_OK(status);
  return out;
}

Result<std::unique_ptr<RowTable>> IndexNestedLoopJoinRows(
    const RowTable& s, const RowTable& t,
    const std::vector<std::string>& join_columns,
    const std::vector<std::string>& out_key, const std::string& out_name) {
  CODS_ASSIGN_OR_RETURN(JoinPlan plan,
                        PlanJoin(s, t, join_columns, out_key));
  BTreeIndex index = BTreeIndex::Build(t, plan.t_join);
  auto out = std::make_unique<RowTable>(out_name, plan.out_schema);
  Status status = Status::OK();
  s.Scan([&](RowId, const Row& s_row) {
    if (!status.ok()) return;
    Row key = ProjectRow(s_row, plan.s_join);
    for (RowId rid : index.Lookup(key)) {
      Result<Row> t_row = t.Get(rid);
      if (!t_row.ok()) {
        status = t_row.status();
        return;
      }
      status = out->Insert(
                      ConcatJoinRow(s_row, t_row.ValueOrDie(),
                                    plan.t_payload))
                   .status();
      if (!status.ok()) return;
    }
  });
  CODS_RETURN_NOT_OK(status);
  return out;
}

}  // namespace cods

// The unified query front door. A QueryRequest is the typed form of a
// SELECT statement — projection / COUNT(*) / multi-aggregate GROUP BY
// over one table or an equi-join of two — and QueryEngine executes it
// against the TableStore interface (storage/catalog.h). The same
// request therefore runs on the live Catalog or on a
// StagedCatalog::View mid-script: queries and schema evolution share one
// storage contract, one statement parser (smo/parser.h), and the same
// compressed-domain WAH kernels (PAPER.md Figure 2).
//
// Execution shape:
//   * JOIN runs compressed-to-compressed through CompressedEquiJoin
//     (query/join.h): a dictionary vid-intersection classifies the join,
//     the key–FK shape shrinks the scanning side with the PARTITION
//     position-filter builders, the general shape lays value-clustered
//     blocks out as fill runs. The join result carries qualified
//     `<table>.<column>` names; references in the rest of the statement
//     resolve through Schema::ResolveColumnRef.
//   * WHERE compiles through EvalExpr / EvalExprCount — leaves in
//     parallel on the ExecContext, k-way AND/OR combines, count-only
//     kernels when no rows are materialized.
//   * SELECT builds the result compressed-to-compressed through the
//     same position-filter machinery as PARTITION TABLE; a request with
//     no WHERE shares the input's column pointers outright (the §2.4
//     "reuse unchanged columns" move, one pointer copy per column).
//   * GROUP BY runs every aggregate (SUM/COUNT/MIN/MAX/AVG) off ONE
//     compressed AND per (group, measure-value) pair, never
//     materializing rows; a WHERE narrows each group bitmap with one
//     compressed AND first.
//   * ORDER BY sorts on the total Value order (NaN after every real
//     number) with a stable tiebreak on row position; LIMIT truncates
//     before the output columns are built.
//
// Results are bit-identical at every thread count (the determinism
// contract of src/exec/).

#ifndef CODS_QUERY_QUERY_ENGINE_H_
#define CODS_QUERY_QUERY_ENGINE_H_

#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "exec/exec.h"
#include "query/expr.h"
#include "storage/catalog.h"

namespace cods {

/// One aggregate of a GROUP BY select list. `column` is empty only for
/// COUNT(*).
struct AggregateSpec {
  enum class Kind { kSum, kCount, kMin, kMax, kAvg };
  Kind kind = Kind::kSum;
  std::string column;

  static AggregateSpec Sum(std::string column);
  static AggregateSpec Count(std::string column = "");  // "" = COUNT(*)
  static AggregateSpec Min(std::string column);
  static AggregateSpec Max(std::string column);
  static AggregateSpec Avg(std::string column);

  /// "SUM(Salary)", "COUNT(*)" — the statement-grammar rendering.
  std::string ToString() const;
};

bool operator==(const AggregateSpec& a, const AggregateSpec& b);

/// One query, in the shape the statement grammar produces:
///
///   SELECT <columns|*> FROM t [JOIN u ON x = y] [WHERE e]
///     [ORDER BY c [DESC]] [LIMIT n]                        -> kSelect
///   SELECT COUNT(*) FROM t [JOIN u ON x = y] [WHERE e]     -> kCount
///   SELECT [g,] agg, ... FROM t [JOIN u ON x = y] [WHERE e]
///     GROUP BY g                                           -> kGroupBy
struct QueryRequest {
  enum class Verb { kSelect, kCount, kGroupBy };

  Verb verb = Verb::kSelect;
  std::string table;

  /// Optional equi-join: `table JOIN join_table ON join_left =
  /// join_right`. The two references may be qualified (`t.c`); sides
  /// are matched to tables at execution time.
  std::string join_table;
  std::string join_left;
  std::string join_right;

  /// kSelect: projected column references in request order; empty means
  /// all. Duplicates (after resolution) are an error naming the
  /// position.
  std::vector<std::string> columns;

  /// Optional predicate; null selects every row.
  ExprPtr where;

  /// kGroupBy: the grouping column and the aggregate list (request
  /// order).
  std::string group_by;
  std::vector<AggregateSpec> aggregates;

  /// kSelect: optional sort column and direction; rows order on the
  /// total Value order (NaN last ascending), ties broken by input row
  /// position (stable at every thread count).
  std::string order_by;
  bool order_desc = false;

  /// kSelect: maximum rows of the result; negative = no limit.
  int64_t limit = -1;

  /// kSelect: name of the result table.
  std::string out_name = "result";

  // ---- Factories ---------------------------------------------------------
  static QueryRequest Select(std::string table,
                             std::vector<std::string> columns = {},
                             ExprPtr where = nullptr,
                             std::string out_name = "result");
  static QueryRequest Count(std::string table, ExprPtr where = nullptr);
  /// The single-aggregate back-compat shape: SELECT g, SUM(m) ... .
  static QueryRequest GroupBySum(std::string table, std::string group_by,
                                 std::string sum_column,
                                 ExprPtr where = nullptr);
  static QueryRequest GroupBy(std::string table, std::string group_by,
                              std::vector<AggregateSpec> aggregates,
                              ExprPtr where = nullptr);

  /// Adds the join clause to any request shape.
  QueryRequest& JoinOn(std::string join_table, std::string left_ref,
                       std::string right_ref);
  /// Adds ORDER BY / LIMIT to a kSelect request.
  QueryRequest& OrderBy(std::string column, bool desc = false);
  QueryRequest& Limit(int64_t n);

  /// Renders the request in the statement grammar; re-parses to an
  /// equivalent request (the Statement round-trip contract).
  std::string ToString() const;
};

/// One output row of a GROUP BY query: the group value plus one Value
/// per aggregate, in request order. SUM/AVG are doubles, COUNT is an
/// int64, MIN/MAX carry the measure column's type — or NULL for a
/// dictionary value with no rows (only possible without a WHERE, which
/// keeps dictionary-complete output).
struct GroupRow {
  Value group;
  std::vector<Value> aggregates;
};

bool operator==(const GroupRow& a, const GroupRow& b);

/// The result of one request; the member matching the verb is set.
struct QueryResult {
  QueryRequest::Verb verb = QueryRequest::Verb::kSelect;
  std::shared_ptr<const Table> table;                // kSelect
  uint64_t count = 0;                                // kCount
  std::vector<GroupRow> groups;                      // kGroupBy
  std::vector<AggregateSpec> aggregates;             // kGroupBy header

  /// Short human-readable rendering (the shell's default display). A
  /// 0-row SELECT renders its schema header — an empty result is
  /// distinguishable from a failed query.
  std::string ToString() const;
};

/// Executes QueryRequests against a TableStore. Stateless beyond the
/// store pointer; cheap to construct per script or per statement.
class QueryEngine {
 public:
  /// `store` is not owned and must outlive the engine.
  explicit QueryEngine(const TableStore* store) : store_(store) {}

  /// Resolves the request's table(s) in the store and executes. The
  /// request's references bind (column lookup) at execution time, so an
  /// unknown column is a KeyError naming the column.
  Result<QueryResult> Execute(const QueryRequest& request,
                              const ExecContext* ctx = nullptr) const;

  // ---- Table-level entry points ------------------------------------------
  //
  // Execute() resolves the table(s) and dispatches here; the legacy
  // column_select.h shims call these directly with a table in hand.

  /// SELECT <columns> FROM table WHERE where. Null `where` selects all
  /// rows; empty `columns` projects all. A column listed twice (after
  /// reference resolution) is an error naming both positions; the key
  /// declaration survives when every key column is retained — whether
  /// implicitly or listed explicitly, a key column is projected exactly
  /// once.
  static Result<std::shared_ptr<const Table>> SelectRows(
      const Table& table, const std::vector<std::string>& columns,
      const ExprPtr& where, const std::string& out_name,
      const ExecContext* ctx = nullptr);

  /// SELECT COUNT(*) FROM table WHERE where — never materializes rows.
  static Result<uint64_t> CountRows(const Table& table, const ExprPtr& where,
                                    const ExecContext* ctx = nullptr);

  /// SELECT group_by, <aggregates> FROM table WHERE where GROUP BY
  /// group_by. Results are in dictionary (first-appearance) order of
  /// the group column. Without a WHERE every distinct value gets an
  /// entry (zero-count dictionary values included, as GroupByCount
  /// does; their MIN/MAX/AVG are NULL); with a WHERE, groups left
  /// without qualifying rows are omitted (SQL GROUP BY semantics).
  static Result<std::vector<GroupRow>> GroupByRows(
      const Table& table, const std::string& group_by,
      const std::vector<AggregateSpec>& aggregates, const ExprPtr& where,
      const ExecContext* ctx = nullptr);

  /// The single-SUM back-compat wrapper over GroupByRows.
  static Result<std::vector<std::pair<Value, double>>> GroupBySumRows(
      const Table& table, const std::string& group_by,
      const std::string& sum_column, const ExprPtr& where,
      const ExecContext* ctx = nullptr);

  /// ORDER BY order_by [DESC] LIMIT limit over `table`: rows reorder on
  /// the total Value order of the sort column (NaN after every real
  /// number), stable on input row position; a negative limit keeps
  /// everything. `order_by` may be empty (pure LIMIT). Output columns
  /// are rebuilt compressed from row → vid gathers.
  static Result<std::shared_ptr<const Table>> SortRows(
      const Table& table, const std::string& order_by, bool desc,
      int64_t limit, const std::string& out_name,
      const ExecContext* ctx = nullptr);

 private:
  const TableStore* store_;
};

}  // namespace cods

#endif  // CODS_QUERY_QUERY_ENGINE_H_

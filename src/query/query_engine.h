// The unified query front door. A QueryRequest is the typed form of a
// SELECT statement — projection / COUNT(*) / SUM(c) GROUP BY g over one
// table with an optional predicate AST (query/expr.h) — and QueryEngine
// executes it against the TableStore interface (storage/catalog.h). The
// same request therefore runs on the live Catalog or on a
// StagedCatalog::View mid-script: queries and schema evolution share one
// storage contract, one statement parser (smo/parser.h), and the same
// compressed-domain WAH kernels (PAPER.md Figure 2).
//
// Execution shape:
//   * WHERE compiles through EvalExpr / EvalExprCount — leaves in
//     parallel on the ExecContext, k-way AND/OR combines, count-only
//     kernels when no rows are materialized.
//   * SELECT builds the result compressed-to-compressed through the
//     same position-filter machinery as PARTITION TABLE; a request with
//     no WHERE shares the input's column pointers outright (the §2.4
//     "reuse unchanged columns" move, one pointer copy per column).
//   * SUM(c) GROUP BY g runs as compressed AND-counts between group and
//     measure bitmaps, one task per group, never materializing rows; a
//     WHERE narrows each group bitmap with one compressed AND first.
//
// Results are bit-identical at every thread count (the determinism
// contract of src/exec/).

#ifndef CODS_QUERY_QUERY_ENGINE_H_
#define CODS_QUERY_QUERY_ENGINE_H_

#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "exec/exec.h"
#include "query/expr.h"
#include "storage/catalog.h"

namespace cods {

/// One query, in the shape the statement grammar produces:
///
///   SELECT <columns|*>        FROM t [WHERE e]              -> kSelect
///   SELECT COUNT(*)           FROM t [WHERE e]              -> kCount
///   SELECT [g,] SUM(m)        FROM t [WHERE e] GROUP BY g   -> kGroupBySum
struct QueryRequest {
  enum class Verb { kSelect, kCount, kGroupBySum };

  Verb verb = Verb::kSelect;
  std::string table;

  /// kSelect: projected columns in request order; empty means all.
  std::vector<std::string> columns;

  /// Optional predicate; null selects every row.
  ExprPtr where;

  /// kGroupBySum: the grouping column and the summed measure.
  std::string group_by;
  std::string sum_column;

  /// kSelect: name of the result table.
  std::string out_name = "result";

  // ---- Factories ---------------------------------------------------------
  static QueryRequest Select(std::string table,
                             std::vector<std::string> columns = {},
                             ExprPtr where = nullptr,
                             std::string out_name = "result");
  static QueryRequest Count(std::string table, ExprPtr where = nullptr);
  static QueryRequest GroupBySum(std::string table, std::string group_by,
                                 std::string sum_column,
                                 ExprPtr where = nullptr);

  /// Renders the request in the statement grammar; re-parses to an
  /// equivalent request (the Statement round-trip contract).
  std::string ToString() const;
};

/// The result of one request; the member matching the verb is set.
struct QueryResult {
  QueryRequest::Verb verb = QueryRequest::Verb::kSelect;
  std::shared_ptr<const Table> table;                // kSelect
  uint64_t count = 0;                                // kCount
  std::vector<std::pair<Value, double>> groups;      // kGroupBySum

  /// Short human-readable rendering (the shell's default display).
  std::string ToString() const;
};

/// Executes QueryRequests against a TableStore. Stateless beyond the
/// store pointer; cheap to construct per script or per statement.
class QueryEngine {
 public:
  /// `store` is not owned and must outlive the engine.
  explicit QueryEngine(const TableStore* store) : store_(store) {}

  /// Resolves the request's table in the store and executes. The
  /// request's WHERE binds (column lookup) at execution time, so an
  /// unknown column is a KeyError naming the column.
  Result<QueryResult> Execute(const QueryRequest& request,
                              const ExecContext* ctx = nullptr) const;

  // ---- Table-level entry points ------------------------------------------
  //
  // Execute() resolves the table and dispatches here; the legacy
  // column_select.h shims call these directly with a table in hand.

  /// SELECT <columns> FROM table WHERE where. Null `where` selects all
  /// rows; empty `columns` projects all. The key declaration survives
  /// when every key column is retained.
  static Result<std::shared_ptr<const Table>> SelectRows(
      const Table& table, const std::vector<std::string>& columns,
      const ExprPtr& where, const std::string& out_name,
      const ExecContext* ctx = nullptr);

  /// SELECT COUNT(*) FROM table WHERE where — never materializes rows.
  static Result<uint64_t> CountRows(const Table& table, const ExprPtr& where,
                                    const ExecContext* ctx = nullptr);

  /// SELECT group_by, SUM(sum_column) FROM table WHERE where GROUP BY
  /// group_by. Results are in dictionary (first-appearance) order of
  /// the group column. Without a WHERE every distinct value gets an
  /// entry (zero-count dictionary values included, as GroupByCount
  /// does); with a WHERE, groups left without qualifying rows are
  /// omitted (SQL GROUP BY semantics).
  static Result<std::vector<std::pair<Value, double>>> GroupBySumRows(
      const Table& table, const std::string& group_by,
      const std::string& sum_column, const ExprPtr& where,
      const ExecContext* ctx = nullptr);

 private:
  const TableStore* store_;
};

}  // namespace cods

#endif  // CODS_QUERY_QUERY_ENGINE_H_

// Legacy flat-predicate query surface, kept as thin shims over the
// composable predicate AST (query/expr.h) and the QueryEngine
// (query/query_engine.h). A ColumnPredicate list is the degenerate
// one-level conjunction/disjunction; every function below converts to
// an Expr tree and executes through the engine's table-level entry
// points, so old callers and new SELECT statements share one plan shape
// (parallel leaf evaluation, single-pass k-way WAH combines). Prefer
// Expr / QueryRequest in new code.

#ifndef CODS_QUERY_COLUMN_SELECT_H_
#define CODS_QUERY_COLUMN_SELECT_H_

#include <memory>
#include <string>
#include <vector>

#include "bitmap/wah_bitmap.h"
#include "common/compare.h"
#include "exec/exec.h"
#include "query/expr.h"
#include "storage/table.h"

namespace cods {

/// A single-column comparison predicate: `column op literal`, or
/// `column IN (values)` when `in_values` is non-empty (op ignored).
struct ColumnPredicate {
  std::string column;
  CompareOp op = CompareOp::kEq;
  Value literal;
  std::vector<Value> in_values;

  static ColumnPredicate Compare(std::string column, CompareOp op,
                                 Value literal) {
    ColumnPredicate p;
    p.column = std::move(column);
    p.op = op;
    p.literal = std::move(literal);
    return p;
  }
  static ColumnPredicate In(std::string column, std::vector<Value> values) {
    ColumnPredicate p;
    p.column = std::move(column);
    p.in_values = std::move(values);
    return p;
  }

  /// The equivalent AST leaf.
  ExprPtr ToExpr() const;
};

/// AND / OR of a predicate list as an Expr tree; nullptr when the list
/// is empty (the engine's "select everything" WHERE).
ExprPtr ConjunctionExpr(const std::vector<ColumnPredicate>& preds);
ExprPtr DisjunctionExpr(const std::vector<ColumnPredicate>& preds);

/// Evaluates one predicate to a selection bitmap of length table.rows().
/// Cost: dictionary scan + compressed ORs of qualifying value bitmaps.
Result<WahBitmap> EvalPredicate(const Table& table,
                                const ColumnPredicate& predicate);

/// AND of all predicates (all must qualify). Empty list selects all rows.
Result<WahBitmap> EvalConjunction(const Table& table,
                                  const std::vector<ColumnPredicate>& preds,
                                  const ExecContext* ctx = nullptr);

/// OR of all predicates. Empty list selects no rows.
Result<WahBitmap> EvalDisjunction(const Table& table,
                                  const std::vector<ColumnPredicate>& preds,
                                  const ExecContext* ctx = nullptr);

/// SELECT COUNT(*) WHERE all predicates hold — never materializes rows.
Result<uint64_t> CountWhere(const Table& table,
                            const std::vector<ColumnPredicate>& preds,
                            const ExecContext* ctx = nullptr);

/// SELECT * WHERE all predicates hold, as a new column table named
/// `out_name`.
Result<std::shared_ptr<const Table>> SelectWhere(
    const Table& table, const std::vector<ColumnPredicate>& preds,
    const std::string& out_name, const ExecContext* ctx = nullptr);

/// Materializes the selected tuples directly (small results).
Result<std::vector<Row>> FetchWhere(const Table& table,
                                    const std::vector<ColumnPredicate>& preds);

/// SELECT column, COUNT(*) GROUP BY column — per distinct value its
/// multiplicity, straight off the compressed popcounts (no row scan).
/// Results are in dictionary (first-appearance) order.
Result<std::vector<std::pair<Value, uint64_t>>> GroupByCount(
    const Table& table, const std::string& column);

/// SELECT group_column, SUM(measure) GROUP BY group_column, through
/// QueryEngine::GroupBySumRows.
Result<std::vector<std::pair<Value, double>>> GroupBySum(
    const Table& table, const std::string& group_column,
    const std::string& measure_column, const ExecContext* ctx = nullptr);

}  // namespace cods

#endif  // CODS_QUERY_COLUMN_SELECT_H_

// Native query execution on the bitmap-indexed column store: predicates
// evaluate to WAH bitmaps (an OR over the bitmaps of qualifying
// dictionary values — no decompression), combine with compressed AND/OR,
// and materialize only the selected rows. This is the "query execution
// engine" of Figure 2 operating in its element: selection on compressed
// bitmaps, exactly the capability WAH indexes were built for (Wu et al.).

#ifndef CODS_QUERY_COLUMN_SELECT_H_
#define CODS_QUERY_COLUMN_SELECT_H_

#include <memory>
#include <string>
#include <vector>

#include "bitmap/wah_bitmap.h"
#include "evolution/smo.h"  // CompareOp / EvalCompare
#include "exec/exec.h"
#include "storage/table.h"

namespace cods {

/// A single-column comparison predicate: `column op literal`, or
/// `column IN (values)` when `in_values` is non-empty (op ignored).
struct ColumnPredicate {
  std::string column;
  CompareOp op = CompareOp::kEq;
  Value literal;
  std::vector<Value> in_values;

  static ColumnPredicate Compare(std::string column, CompareOp op,
                                 Value literal) {
    ColumnPredicate p;
    p.column = std::move(column);
    p.op = op;
    p.literal = std::move(literal);
    return p;
  }
  static ColumnPredicate In(std::string column, std::vector<Value> values) {
    ColumnPredicate p;
    p.column = std::move(column);
    p.in_values = std::move(values);
    return p;
  }
};

/// Evaluates one predicate to a selection bitmap of length table.rows().
/// Cost: dictionary scan + compressed ORs of qualifying value bitmaps.
Result<WahBitmap> EvalPredicate(const Table& table,
                                const ColumnPredicate& predicate);

/// AND of all predicates (all must qualify). Empty list selects all rows.
/// The per-predicate bitmaps evaluate in parallel on `ctx` and feed one
/// k-way AND; output is bit-identical at every thread count.
Result<WahBitmap> EvalConjunction(const Table& table,
                                  const std::vector<ColumnPredicate>& preds,
                                  const ExecContext* ctx = nullptr);

/// OR of all predicates. Empty list selects no rows. Per-predicate
/// evaluation parallelizes like EvalConjunction.
Result<WahBitmap> EvalDisjunction(const Table& table,
                                  const std::vector<ColumnPredicate>& preds,
                                  const ExecContext* ctx = nullptr);

/// SELECT COUNT(*) WHERE all predicates hold — never materializes rows.
Result<uint64_t> CountWhere(const Table& table,
                            const std::vector<ColumnPredicate>& preds,
                            const ExecContext* ctx = nullptr);

/// SELECT * WHERE all predicates hold, as a new column table named
/// `out_name`. Row selection runs through the same position-filter
/// machinery as PARTITION TABLE, so the result is built compressed-to-
/// compressed.
Result<std::shared_ptr<const Table>> SelectWhere(
    const Table& table, const std::vector<ColumnPredicate>& preds,
    const std::string& out_name, const ExecContext* ctx = nullptr);

/// Materializes the selected tuples directly (small results).
Result<std::vector<Row>> FetchWhere(const Table& table,
                                    const std::vector<ColumnPredicate>& preds);

/// SELECT column, COUNT(*) GROUP BY column — per distinct value its
/// multiplicity, straight off the compressed popcounts (no row scan).
/// Results are in dictionary (first-appearance) order.
Result<std::vector<std::pair<Value, uint64_t>>> GroupByCount(
    const Table& table, const std::string& column);

/// SELECT group_column, SUM(measure) GROUP BY group_column, where
/// `measure` is a numeric column. Computed as compressed AND-counts
/// between group and measure bitmaps: O(v_group · v_measure) bitmap
/// intersections, never materializing rows — efficient when the measure
/// has few distinct values (the dictionary-encoding sweet spot).
/// The per-group intersections run in parallel on `ctx`.
Result<std::vector<std::pair<Value, double>>> GroupBySum(
    const Table& table, const std::string& group_column,
    const std::string& measure_column, const ExecContext* ctx = nullptr);

}  // namespace cods

#endif  // CODS_QUERY_COLUMN_SELECT_H_

// Relational operators over the row store: scan, project, filter,
// distinct (hash- and sort-based), and hash / index-nested-loop joins.
// These implement the query half of "query-level data evolution": the
// paper's baseline executes INSERT INTO ... SELECT ... through exactly
// these operators.

#ifndef CODS_QUERY_ROW_EXECUTOR_H_
#define CODS_QUERY_ROW_EXECUTOR_H_

#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "rowstore/btree_index.h"
#include "rowstore/hash_index.h"
#include "rowstore/row_table.h"
#include "storage/table.h"

namespace cods {

/// Imports a column-store table into the row store by materializing every
/// tuple (used to set up the row-oriented baselines).
Result<std::unique_ptr<RowTable>> MaterializeToRowStore(const Table& table);

/// Re-encodes a row table into a column-store table: dictionary-encode
/// each column and WAH-compress (the "re-compress" stage of Figure 2).
Result<std::shared_ptr<const Table>> RowTableToColumnTable(
    const RowTable& table, const std::string& name);

/// Returns the schema restricted to `columns` (in the given order), with
/// `key` as the declared key.
Result<Schema> SchemaSubset(const Schema& schema,
                            const std::vector<std::string>& columns,
                            const std::vector<std::string>& key);

/// SELECT columns FROM in — projection into a new row table.
Result<std::unique_ptr<RowTable>> ProjectRows(
    const RowTable& in, const std::vector<std::string>& columns,
    const std::vector<std::string>& out_key, const std::string& out_name);

/// SELECT DISTINCT columns FROM in, using a hash set (the commercial-
/// RDBMS plan shape).
Result<std::unique_ptr<RowTable>> ProjectRowsDistinctHash(
    const RowTable& in, const std::vector<std::string>& columns,
    const std::vector<std::string>& out_key, const std::string& out_name);

/// SELECT DISTINCT columns FROM in, by sorting and deduplicating
/// adjacent tuples (the SQLite plan shape).
Result<std::unique_ptr<RowTable>> ProjectRowsDistinctSort(
    const RowTable& in, const std::vector<std::string>& columns,
    const std::vector<std::string>& out_key, const std::string& out_name);

/// SELECT * FROM in WHERE pred — filter into a new row table.
Result<std::unique_ptr<RowTable>> FilterRows(
    const RowTable& in, const std::function<bool(const Row&)>& pred,
    const std::string& out_name);

/// S JOIN T on equality of `join_columns` (present in both inputs).
/// Output schema: all columns of `s`, then T's non-join columns; the
/// declared key of the output is `out_key`. Hash join (build on t).
Result<std::unique_ptr<RowTable>> HashJoinRows(
    const RowTable& s, const RowTable& t,
    const std::vector<std::string>& join_columns,
    const std::vector<std::string>& out_key, const std::string& out_name);

/// Same join executed as an index nested-loop: builds a B+ tree on t's
/// join columns, then probes per s-tuple (the SQLite plan shape).
Result<std::unique_ptr<RowTable>> IndexNestedLoopJoinRows(
    const RowTable& s, const RowTable& t,
    const std::vector<std::string>& join_columns,
    const std::vector<std::string>& out_key, const std::string& out_name);

}  // namespace cods

#endif  // CODS_QUERY_ROW_EXECUTOR_H_

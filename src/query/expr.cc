#include "query/expr.h"

#include <utility>

#include "bitmap/codec.h"
#include "bitmap/wah_ops.h"
#include "common/logging.h"
#include "storage/value_compare.h"

namespace cods {

namespace {

std::shared_ptr<Expr> MakeLeaf(ExprKind kind, std::string column) {
  auto e = std::make_shared<Expr>();
  e->kind = kind;
  e->column = std::move(column);
  return e;
}

// Grammar precedence, used to emit minimal parentheses: OR < AND < NOT
// < leaf. AND/OR are associative, so a same-kind child prints bare (it
// re-parses flattened, which is equivalent).
int Precedence(ExprKind kind) {
  switch (kind) {
    case ExprKind::kOr:
      return 1;
    case ExprKind::kAnd:
      return 2;
    case ExprKind::kNot:
      return 3;
    default:
      return 4;
  }
}

std::string ToStringWithParens(const Expr& child, int parent_prec) {
  std::string s = child.ToString();
  if (Precedence(child.kind) < parent_prec) return "(" + s + ")";
  return s;
}

}  // namespace

const char* ExprKindToString(ExprKind kind) {
  switch (kind) {
    case ExprKind::kCompare:
      return "COMPARE";
    case ExprKind::kIn:
      return "IN";
    case ExprKind::kBetween:
      return "BETWEEN";
    case ExprKind::kNot:
      return "NOT";
    case ExprKind::kAnd:
      return "AND";
    case ExprKind::kOr:
      return "OR";
  }
  return "?";
}

ExprPtr Expr::Compare(std::string column, CompareOp op, Value literal) {
  auto e = MakeLeaf(ExprKind::kCompare, std::move(column));
  e->op = op;
  e->literal = std::move(literal);
  return e;
}

ExprPtr Expr::In(std::string column, std::vector<Value> values) {
  // An empty list would render as "c IN ()", which the grammar rejects
  // — enforce non-emptiness here like And/Or do, so every constructible
  // expression round-trips through ToString.
  CODS_CHECK(!values.empty()) << "IN needs at least one value";
  auto e = MakeLeaf(ExprKind::kIn, std::move(column));
  e->in_values = std::move(values);
  return e;
}

ExprPtr Expr::Between(std::string column, Value lo, Value hi) {
  auto e = MakeLeaf(ExprKind::kBetween, std::move(column));
  e->between_lo = std::move(lo);
  e->between_hi = std::move(hi);
  return e;
}

ExprPtr Expr::Not(ExprPtr child) {
  CODS_CHECK(child != nullptr) << "NOT needs a child expression";
  auto e = std::make_shared<Expr>();
  e->kind = ExprKind::kNot;
  e->children.push_back(std::move(child));
  return e;
}

ExprPtr Expr::And(std::vector<ExprPtr> children) {
  CODS_CHECK(!children.empty()) << "AND needs at least one child";
  for (const ExprPtr& c : children) CODS_CHECK(c != nullptr);
  if (children.size() == 1) return children[0];
  auto e = std::make_shared<Expr>();
  e->kind = ExprKind::kAnd;
  e->children = std::move(children);
  return e;
}

ExprPtr Expr::Or(std::vector<ExprPtr> children) {
  CODS_CHECK(!children.empty()) << "OR needs at least one child";
  for (const ExprPtr& c : children) CODS_CHECK(c != nullptr);
  if (children.size() == 1) return children[0];
  auto e = std::make_shared<Expr>();
  e->kind = ExprKind::kOr;
  e->children = std::move(children);
  return e;
}

bool Expr::LeafMatches(const Value& v) const {
  switch (kind) {
    case ExprKind::kCompare:
      return EvalCompare(v, op, literal);
    case ExprKind::kIn:
      for (const Value& candidate : in_values) {
        // Order-equivalence, like EvalCompare's kEq: int64 3 matches a
        // double 3.0 list entry.
        if (EvalCompare(v, CompareOp::kEq, candidate)) return true;
      }
      return false;
    case ExprKind::kBetween:
      return !(v < between_lo) && !(between_hi < v);
    default:
      CODS_CHECK(false) << "LeafMatches on non-leaf " << ExprKindToString(kind);
      return false;
  }
}

std::string Expr::ToString() const {
  switch (kind) {
    case ExprKind::kCompare:
      return column + " " + CompareOpToString(op) + " " +
             FormatScriptLiteral(literal);
    case ExprKind::kIn: {
      std::string out = column + " IN (";
      for (size_t i = 0; i < in_values.size(); ++i) {
        if (i > 0) out += ", ";
        out += FormatScriptLiteral(in_values[i]);
      }
      return out + ")";
    }
    case ExprKind::kBetween:
      return column + " BETWEEN " + FormatScriptLiteral(between_lo) +
             " AND " + FormatScriptLiteral(between_hi);
    case ExprKind::kNot:
      return "NOT " + ToStringWithParens(*children[0], Precedence(kind));
    case ExprKind::kAnd:
    case ExprKind::kOr: {
      const char* sep = kind == ExprKind::kAnd ? " AND " : " OR ";
      std::string out;
      for (size_t i = 0; i < children.size(); ++i) {
        if (i > 0) out += sep;
        out += ToStringWithParens(*children[i], Precedence(kind));
      }
      return out;
    }
  }
  return "?";
}

bool ExprEquals(const Expr& a, const Expr& b) {
  if (a.kind != b.kind || a.column != b.column || a.op != b.op ||
      a.literal != b.literal || a.in_values != b.in_values ||
      a.between_lo != b.between_lo || a.between_hi != b.between_hi ||
      a.children.size() != b.children.size()) {
    return false;
  }
  for (size_t i = 0; i < a.children.size(); ++i) {
    if (!ExprEquals(*a.children[i], *b.children[i])) return false;
  }
  return true;
}

namespace {

// The recursive normalizer: `negate` carries a pending NOT down the
// tree. Comparisons absorb it (total Value order makes the negated
// operator exact), AND/OR flip De Morgan-style, IN/BETWEEN keep a
// residual NOT directly above the leaf (evaluated as a complement).
ExprPtr Normalize(const ExprPtr& node, bool negate) {
  switch (node->kind) {
    case ExprKind::kCompare:
      if (!negate) return node;
      return Expr::Compare(node->column, NegateCompareOp(node->op),
                           node->literal);
    case ExprKind::kIn:
    case ExprKind::kBetween:
      return negate ? Expr::Not(node) : node;
    case ExprKind::kNot:
      return Normalize(node->children[0], !negate);
    case ExprKind::kAnd:
    case ExprKind::kOr: {
      bool is_and = (node->kind == ExprKind::kAnd) != negate;
      ExprKind kind = is_and ? ExprKind::kAnd : ExprKind::kOr;
      std::vector<ExprPtr> flat;
      flat.reserve(node->children.size());
      for (const ExprPtr& child : node->children) {
        ExprPtr n = Normalize(child, negate);
        if (n->kind == kind) {
          // Same-kind child: splice its children in (flattening), so
          // the whole run feeds ONE k-way kernel call.
          flat.insert(flat.end(), n->children.begin(), n->children.end());
        } else {
          flat.push_back(std::move(n));
        }
      }
      return is_and ? Expr::And(std::move(flat)) : Expr::Or(std::move(flat));
    }
  }
  return node;
}

// Leaves of the normalized tree, in DFS order: kCompare/kIn/kBetween
// nodes, plus kNot nodes (whose single child is an IN/BETWEEN leaf).
// Each OCCURRENCE gets its own slot so evaluation can move results out.
void CollectLeaves(const Expr& node, std::vector<const Expr*>* leaves) {
  switch (node.kind) {
    case ExprKind::kCompare:
    case ExprKind::kIn:
    case ExprKind::kBetween:
    case ExprKind::kNot:
      leaves->push_back(&node);
      return;
    case ExprKind::kAnd:
    case ExprKind::kOr:
      for (const ExprPtr& child : node.children) {
        CollectLeaves(*child, leaves);
      }
      return;
  }
}

// One leaf to its selection bitmap: a dictionary scan collecting the
// qualifying value bitmaps into a single-pass k-way union, then an
// optional complement for a residual NOT.
Result<WahBitmap> EvalLeafBitmap(const Table& table, const Expr& leaf) {
  const Expr* inner = &leaf;
  bool negate = false;
  if (leaf.kind == ExprKind::kNot) {
    negate = true;
    inner = leaf.children[0].get();
  }
  // References bind loosely: exact name, unique qualified suffix, or
  // `<table>.<col>` of the probed table (cross-table WHERE clauses).
  CODS_ASSIGN_OR_RETURN(auto col, table.ColumnByRef(inner->column));
  if (col->encoding() != ColumnEncoding::kWahBitmap) {
    return Status::InvalidArgument(
        "predicates require a WAH-encoded column; re-encode '" +
        inner->column + "' first");
  }
  std::vector<const ValueBitmap*> qualifying;
  for (Vid vid = 0; vid < col->distinct_count(); ++vid) {
    if (inner->LeafMatches(col->dict().value(vid))) {
      qualifying.push_back(&col->bitmap(vid));
    }
  }
  WahBitmap bm = CodecOrManyWah(qualifying, table.rows());
  if (negate) return WahNot(bm);
  return bm;
}

// Evaluates every leaf of the normalized tree in parallel (one task per
// leaf). Every leaf always runs, so invalid leaves error identically at
// every thread count; the first error in DFS leaf order wins.
Result<std::vector<WahBitmap>> EvalAllLeaves(
    const ExecContext& ctx, const Table& table,
    const std::vector<const Expr*>& leaves) {
  std::vector<Result<WahBitmap>> slots(leaves.size(),
                                       Result<WahBitmap>(WahBitmap()));
  Status st = ParallelFor(ctx, 0, leaves.size(), 1, [&](uint64_t i) {
    slots[i] = EvalLeafBitmap(table, *leaves[i]);
    return Status::OK();
  });
  CODS_CHECK(st.ok()) << st.ToString();
  std::vector<WahBitmap> evaluated;
  evaluated.reserve(leaves.size());
  for (Result<WahBitmap>& slot : slots) {
    CODS_RETURN_NOT_OK(slot.status());
    evaluated.push_back(std::move(slot).ValueOrDie());
  }
  return evaluated;
}

// Bottom-up combine over the normalized tree. `cursor` walks the leaf
// slots in the same DFS order CollectLeaves produced; each slot is
// consumed (moved) exactly once.
WahBitmap Combine(const Expr& node, uint64_t rows,
                  std::vector<WahBitmap>& slots, size_t& cursor) {
  switch (node.kind) {
    case ExprKind::kCompare:
    case ExprKind::kIn:
    case ExprKind::kBetween:
    case ExprKind::kNot:
      return std::move(slots[cursor++]);
    case ExprKind::kAnd:
    case ExprKind::kOr: {
      std::vector<WahBitmap> kids;
      kids.reserve(node.children.size());
      for (const ExprPtr& child : node.children) {
        kids.push_back(Combine(*child, rows, slots, cursor));
      }
      if (node.kind == ExprKind::kAnd) {
        // O(1) per-child emptiness skips the k-way AND entirely;
        // pairwise-disjoint operands are handled by zero-fill
        // annihilation inside the single k-way merge.
        for (const WahBitmap& k : kids) {
          if (k.IsAllZeros()) {
            WahBitmap none;
            none.AppendRun(false, rows);
            return none;
          }
        }
        return WahAndMany(kids, rows);
      }
      return WahOrMany(kids, rows);
    }
  }
  return WahBitmap();
}

}  // namespace

ExprPtr NormalizeExpr(const ExprPtr& expr) {
  CODS_CHECK(expr != nullptr) << "NormalizeExpr on null expression";
  return Normalize(expr, false);
}

Result<WahBitmap> EvalExpr(const Table& table, const ExprPtr& expr,
                           const ExecContext* ctx) {
  ExprPtr root = NormalizeExpr(expr);
  std::vector<const Expr*> leaves;
  CollectLeaves(*root, &leaves);
  CODS_ASSIGN_OR_RETURN(
      std::vector<WahBitmap> slots,
      EvalAllLeaves(ResolveContext(ctx), table, leaves));
  size_t cursor = 0;
  return Combine(*root, table.rows(), slots, cursor);
}

Result<uint64_t> EvalExprCount(const Table& table, const ExprPtr& expr,
                               const ExecContext* ctx) {
  ExprPtr root = NormalizeExpr(expr);
  std::vector<const Expr*> leaves;
  CollectLeaves(*root, &leaves);
  CODS_ASSIGN_OR_RETURN(
      std::vector<WahBitmap> slots,
      EvalAllLeaves(ResolveContext(ctx), table, leaves));
  size_t cursor = 0;
  // The root node's bitmap is never materialized: its children combine
  // normally, then the count-only kernel folds them.
  switch (root->kind) {
    case ExprKind::kAnd:
    case ExprKind::kOr: {
      std::vector<WahBitmap> kids;
      kids.reserve(root->children.size());
      for (const ExprPtr& child : root->children) {
        kids.push_back(Combine(*child, table.rows(), slots, cursor));
      }
      if (root->kind == ExprKind::kAnd) {
        for (const WahBitmap& k : kids) {
          if (k.IsAllZeros()) return 0;
        }
        return WahAndManyCount(kids, table.rows());
      }
      return WahOrManyCount(kids, table.rows());
    }
    default:
      return Combine(*root, table.rows(), slots, cursor).CountOnes();
  }
}

}  // namespace cods

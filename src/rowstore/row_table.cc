#include "rowstore/row_table.h"

#include <cstring>

namespace cods {

Page::Page() : data_(kPageSize, 0), free_end_(kPageSize) {}

size_t Page::FreeSpace() const {
  size_t slot_dir_end = static_cast<size_t>(slot_count_) * sizeof(SlotEntry);
  return free_end_ - slot_dir_end;
}

std::optional<uint16_t> Page::Insert(const std::vector<uint8_t>& bytes) {
  size_t needed = bytes.size() + sizeof(SlotEntry);
  if (FreeSpace() < needed || bytes.size() > UINT16_MAX) return std::nullopt;
  free_end_ -= bytes.size();
  std::memcpy(data_.data() + free_end_, bytes.data(), bytes.size());
  SlotEntry entry{static_cast<uint16_t>(free_end_),
                  static_cast<uint16_t>(bytes.size())};
  std::memcpy(data_.data() + slot_count_ * sizeof(SlotEntry), &entry,
              sizeof(entry));
  return slot_count_++;
}

std::pair<const uint8_t*, size_t> Page::Get(uint16_t slot) const {
  CODS_CHECK(slot < slot_count_);
  SlotEntry entry;
  std::memcpy(&entry, data_.data() + slot * sizeof(SlotEntry), sizeof(entry));
  return {data_.data() + entry.offset, entry.length};
}

RowTable::RowTable(std::string name, Schema schema)
    : name_(std::move(name)), schema_(std::move(schema)) {}

Result<RowId> RowTable::Insert(const Row& row) {
  if (row.size() != schema_.num_columns()) {
    return Status::InvalidArgument("row arity does not match schema");
  }
  std::vector<uint8_t> bytes;
  bytes.reserve(SerializedRowSize(row));
  SerializeRow(row, &bytes);
  if (bytes.size() + 8 > Page::kPageSize) {
    return Status::InvalidArgument("tuple larger than a page");
  }
  if (pages_.empty()) pages_.push_back(std::make_unique<Page>());
  std::optional<uint16_t> slot = pages_.back()->Insert(bytes);
  if (!slot.has_value()) {
    pages_.push_back(std::make_unique<Page>());
    slot = pages_.back()->Insert(bytes);
    CODS_CHECK(slot.has_value());
  }
  ++rows_;
  return RowId{static_cast<uint32_t>(pages_.size() - 1), *slot};
}

Result<Row> RowTable::Get(RowId rid) const {
  if (rid.page >= pages_.size()) return Status::OutOfRange("bad page id");
  const Page& page = *pages_[rid.page];
  if (rid.slot >= page.slot_count()) return Status::OutOfRange("bad slot id");
  auto [data, size] = page.Get(rid.slot);
  return DeserializeRow(data, size);
}

}  // namespace cods

// Hash index over a projection of a RowTable's columns. Used by the
// query-level baselines for equality lookups and by the "with indexes"
// configuration, whose evolution cost includes rebuilding indexes from
// scratch on the output tables (§1).

#ifndef CODS_ROWSTORE_HASH_INDEX_H_
#define CODS_ROWSTORE_HASH_INDEX_H_

#include <unordered_map>
#include <vector>

#include "rowstore/row_table.h"

namespace cods {

/// Multimap from key tuples (a projection of each row) to row ids.
class HashIndex {
 public:
  /// `key_columns` are indices into the table's schema.
  explicit HashIndex(std::vector<size_t> key_columns);

  /// Indexes one row (called on insert).
  void Add(const Row& row, RowId rid);

  /// Builds from scratch over an existing table (the rebuild cost the
  /// paper charges to query-level evolution).
  static HashIndex Build(const RowTable& table,
                         std::vector<size_t> key_columns);

  /// Row ids whose key projection equals `key`.
  std::vector<RowId> Lookup(const Row& key) const;

  /// Number of indexed entries.
  size_t size() const { return entries_; }
  const std::vector<size_t>& key_columns() const { return key_columns_; }

 private:
  Row ExtractKey(const Row& row) const;

  std::vector<size_t> key_columns_;
  std::unordered_multimap<Row, RowId, RowHash, RowEq> map_;
  size_t entries_ = 0;
};

}  // namespace cods

#endif  // CODS_ROWSTORE_HASH_INDEX_H_

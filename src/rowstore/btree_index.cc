#include "rowstore/btree_index.h"

#include <algorithm>

namespace cods {

bool RowLess(const Row& a, const Row& b) {
  size_t n = std::min(a.size(), b.size());
  for (size_t i = 0; i < n; ++i) {
    if (a[i] < b[i]) return true;
    if (b[i] < a[i]) return false;
  }
  return a.size() < b.size();
}

BTreeIndex::BTreeIndex(std::vector<size_t> key_columns)
    : key_columns_(std::move(key_columns)),
      root_(std::make_unique<Node>(/*leaf=*/true)) {}

Row BTreeIndex::ExtractKey(const Row& row) const {
  Row key;
  key.reserve(key_columns_.size());
  for (size_t c : key_columns_) {
    CODS_DCHECK(c < row.size());
    key.push_back(row[c]);
  }
  return key;
}

void BTreeIndex::Add(const Row& row, RowId rid) {
  Insert(ExtractKey(row), rid);
}

void BTreeIndex::Insert(const Row& key, RowId rid) {
  std::optional<SplitResult> split = InsertInto(root_.get(), key, rid);
  if (split.has_value()) {
    auto new_root = std::make_unique<Node>(/*leaf=*/false);
    new_root->keys.push_back(std::move(split->separator));
    new_root->children.push_back(std::move(root_));
    new_root->children.push_back(std::move(split->right));
    root_ = std::move(new_root);
    ++height_;
  }
  ++size_;
}

std::optional<BTreeIndex::SplitResult> BTreeIndex::InsertInto(Node* node,
                                                              const Row& key,
                                                              RowId rid) {
  if (node->is_leaf) {
    auto it = std::upper_bound(node->keys.begin(), node->keys.end(), key,
                               RowLess);
    size_t pos = static_cast<size_t>(it - node->keys.begin());
    node->keys.insert(it, key);
    node->values.insert(node->values.begin() + static_cast<ptrdiff_t>(pos),
                        rid);
    return SplitIfNeeded(node);
  }
  // Internal: child i covers keys < keys[i]; duplicates go right via
  // upper_bound so equal keys cluster at the leaf level contiguously.
  auto it = std::upper_bound(node->keys.begin(), node->keys.end(), key,
                             RowLess);
  size_t child = static_cast<size_t>(it - node->keys.begin());
  std::optional<SplitResult> split =
      InsertInto(node->children[child].get(), key, rid);
  if (split.has_value()) {
    node->keys.insert(node->keys.begin() + static_cast<ptrdiff_t>(child),
                      std::move(split->separator));
    node->children.insert(
        node->children.begin() + static_cast<ptrdiff_t>(child) + 1,
        std::move(split->right));
    return SplitIfNeeded(node);
  }
  return std::nullopt;
}

std::optional<BTreeIndex::SplitResult> BTreeIndex::SplitIfNeeded(Node* node) {
  if (node->keys.size() <= kMaxKeys) return std::nullopt;
  size_t mid = node->keys.size() / 2;
  auto right = std::make_unique<Node>(node->is_leaf);
  SplitResult result;
  if (node->is_leaf) {
    // Leaf split: the separator is copied up; the right leaf keeps keys
    // [mid, end).
    result.separator = node->keys[mid];
    right->keys.assign(node->keys.begin() + static_cast<ptrdiff_t>(mid),
                       node->keys.end());
    right->values.assign(node->values.begin() + static_cast<ptrdiff_t>(mid),
                         node->values.end());
    node->keys.resize(mid);
    node->values.resize(mid);
    right->next_leaf = node->next_leaf;
    node->next_leaf = right.get();
  } else {
    // Internal split: the separator moves up.
    result.separator = std::move(node->keys[mid]);
    right->keys.assign(
        std::make_move_iterator(node->keys.begin() +
                                static_cast<ptrdiff_t>(mid) + 1),
        std::make_move_iterator(node->keys.end()));
    right->children.assign(
        std::make_move_iterator(node->children.begin() +
                                static_cast<ptrdiff_t>(mid) + 1),
        std::make_move_iterator(node->children.end()));
    node->keys.resize(mid);
    node->children.resize(mid + 1);
  }
  result.right = std::move(right);
  return result;
}

BTreeIndex BTreeIndex::Build(const RowTable& table,
                             std::vector<size_t> key_columns) {
  BTreeIndex index(std::move(key_columns));
  table.Scan([&](RowId rid, const Row& row) { index.Add(row, rid); });
  return index;
}

const BTreeIndex::Node* BTreeIndex::FindLeaf(const Row& key) const {
  const Node* node = root_.get();
  while (!node->is_leaf) {
    auto it = std::lower_bound(node->keys.begin(), node->keys.end(), key,
                               RowLess);
    size_t child = static_cast<size_t>(it - node->keys.begin());
    node = node->children[child].get();
  }
  return node;
}

std::vector<RowId> BTreeIndex::Lookup(const Row& key) const {
  std::vector<RowId> out;
  // FindLeaf descends left of separators equal to `key`, so the walk
  // starts at the leftmost possible duplicate; equal runs may continue
  // across the leaf chain.
  for (const Node* leaf = FindLeaf(key); leaf != nullptr;
       leaf = leaf->next_leaf) {
    for (size_t i = 0; i < leaf->keys.size(); ++i) {
      if (RowLess(leaf->keys[i], key)) continue;
      if (RowLess(key, leaf->keys[i])) return out;
      out.push_back(leaf->values[i]);
    }
  }
  return out;
}

std::vector<std::pair<Row, RowId>> BTreeIndex::ScanRange(
    const Row& lo, const Row& hi) const {
  std::vector<std::pair<Row, RowId>> out;
  const Node* leaf = FindLeaf(lo);
  while (leaf != nullptr) {
    for (size_t i = 0; i < leaf->keys.size(); ++i) {
      if (RowLess(leaf->keys[i], lo)) continue;
      if (RowLess(hi, leaf->keys[i])) return out;
      out.emplace_back(leaf->keys[i], leaf->values[i]);
    }
    leaf = leaf->next_leaf;
  }
  return out;
}

std::vector<std::pair<Row, RowId>> BTreeIndex::ScanAll() const {
  std::vector<std::pair<Row, RowId>> out;
  out.reserve(size_);
  const Node* node = root_.get();
  while (!node->is_leaf) node = node->children[0].get();
  for (const Node* leaf = node; leaf != nullptr; leaf = leaf->next_leaf) {
    for (size_t i = 0; i < leaf->keys.size(); ++i) {
      out.emplace_back(leaf->keys[i], leaf->values[i]);
    }
  }
  return out;
}

size_t BTreeIndex::LeafDepth() const {
  size_t depth = 0;
  const Node* node = root_.get();
  while (!node->is_leaf) {
    node = node->children[0].get();
    ++depth;
  }
  return depth;
}

Status BTreeIndex::ValidateNode(const Node* node, const Row* lo,
                                const Row* hi, size_t depth,
                                size_t leaf_depth) const {
  for (size_t i = 0; i + 1 < node->keys.size(); ++i) {
    if (RowLess(node->keys[i + 1], node->keys[i])) {
      return Status::Corruption("keys out of order in node");
    }
  }
  if (!node->keys.empty()) {
    if (lo != nullptr && RowLess(node->keys.front(), *lo)) {
      return Status::Corruption("key below subtree lower bound");
    }
    if (hi != nullptr && RowLess(*hi, node->keys.back())) {
      return Status::Corruption("key above subtree upper bound");
    }
  }
  if (node->is_leaf) {
    if (depth != leaf_depth) {
      return Status::Corruption("leaves at unequal depths");
    }
    if (node->keys.size() != node->values.size()) {
      return Status::Corruption("leaf key/value count mismatch");
    }
    return Status::OK();
  }
  if (node->children.size() != node->keys.size() + 1) {
    return Status::Corruption("internal child count mismatch");
  }
  for (size_t i = 0; i < node->children.size(); ++i) {
    const Row* child_lo = (i == 0) ? lo : &node->keys[i - 1];
    const Row* child_hi = (i == node->keys.size()) ? hi : &node->keys[i];
    CODS_RETURN_NOT_OK(ValidateNode(node->children[i].get(), child_lo,
                                    child_hi, depth + 1, leaf_depth));
  }
  return Status::OK();
}

Status BTreeIndex::Validate() const {
  size_t leaf_depth = LeafDepth();
  CODS_RETURN_NOT_OK(ValidateNode(root_.get(), nullptr, nullptr, 0,
                                  leaf_depth));
  // Leaf chain must enumerate exactly size_ entries in sorted order.
  std::vector<std::pair<Row, RowId>> all = ScanAll();
  if (all.size() != size_) {
    return Status::Corruption("leaf chain size " + std::to_string(all.size()) +
                              " != tree size " + std::to_string(size_));
  }
  for (size_t i = 0; i + 1 < all.size(); ++i) {
    if (RowLess(all[i + 1].first, all[i].first)) {
      return Status::Corruption("leaf chain out of order");
    }
  }
  return Status::OK();
}

}  // namespace cods

#include "rowstore/row.h"

#include <cstring>

namespace cods {

namespace {
constexpr uint8_t kTagNull = 0;
constexpr uint8_t kTagInt64 = 1;
constexpr uint8_t kTagDouble = 2;
constexpr uint8_t kTagString = 3;

void PutU64(uint64_t v, std::vector<uint8_t>* out) {
  for (int i = 0; i < 8; ++i) out->push_back(static_cast<uint8_t>(v >> (8 * i)));
}
void PutU32(uint32_t v, std::vector<uint8_t>* out) {
  for (int i = 0; i < 4; ++i) out->push_back(static_cast<uint8_t>(v >> (8 * i)));
}
uint64_t GetU64(const uint8_t* p) {
  uint64_t v = 0;
  for (int i = 0; i < 8; ++i) v |= static_cast<uint64_t>(p[i]) << (8 * i);
  return v;
}
uint32_t GetU32(const uint8_t* p) {
  uint32_t v = 0;
  for (int i = 0; i < 4; ++i) v |= static_cast<uint32_t>(p[i]) << (8 * i);
  return v;
}
}  // namespace

void SerializeRow(const Row& row, std::vector<uint8_t>* out) {
  PutU32(static_cast<uint32_t>(row.size()), out);
  for (const Value& v : row) {
    if (v.is_null()) {
      out->push_back(kTagNull);
    } else if (v.is_int64()) {
      out->push_back(kTagInt64);
      PutU64(static_cast<uint64_t>(v.int64()), out);
    } else if (v.is_double()) {
      out->push_back(kTagDouble);
      uint64_t bits;
      double d = v.dbl();
      std::memcpy(&bits, &d, sizeof(bits));
      PutU64(bits, out);
    } else {
      out->push_back(kTagString);
      const std::string& s = v.str();
      PutU32(static_cast<uint32_t>(s.size()), out);
      out->insert(out->end(), s.begin(), s.end());
    }
  }
}

Result<Row> DeserializeRow(const uint8_t* data, size_t size) {
  size_t off = 0;
  auto need = [&](size_t n) -> bool { return off + n <= size; };
  if (!need(4)) return Status::Corruption("row truncated (arity)");
  uint32_t arity = GetU32(data + off);
  off += 4;
  Row row;
  row.reserve(arity);
  for (uint32_t i = 0; i < arity; ++i) {
    if (!need(1)) return Status::Corruption("row truncated (tag)");
    uint8_t tag = data[off++];
    switch (tag) {
      case kTagNull:
        row.push_back(Value::Null());
        break;
      case kTagInt64: {
        if (!need(8)) return Status::Corruption("row truncated (int64)");
        row.push_back(Value(static_cast<int64_t>(GetU64(data + off))));
        off += 8;
        break;
      }
      case kTagDouble: {
        if (!need(8)) return Status::Corruption("row truncated (double)");
        uint64_t bits = GetU64(data + off);
        off += 8;
        double d;
        std::memcpy(&d, &bits, sizeof(d));
        row.push_back(Value(d));
        break;
      }
      case kTagString: {
        if (!need(4)) return Status::Corruption("row truncated (strlen)");
        uint32_t len = GetU32(data + off);
        off += 4;
        if (!need(len)) return Status::Corruption("row truncated (string)");
        row.push_back(Value(std::string(
            reinterpret_cast<const char*>(data + off), len)));
        off += len;
        break;
      }
      default:
        return Status::Corruption("unknown value tag " + std::to_string(tag));
    }
  }
  if (off != size) return Status::Corruption("trailing bytes after row");
  return row;
}

size_t SerializedRowSize(const Row& row) {
  size_t bytes = 4;
  for (const Value& v : row) {
    bytes += 1;
    if (v.is_int64() || v.is_double()) {
      bytes += 8;
    } else if (v.is_string()) {
      bytes += 4 + v.str().size();
    }
  }
  return bytes;
}

}  // namespace cods

// Slotted-page heap file: the storage layer of the row-oriented baseline
// ("commercial RDBMS" / SQLite stand-ins in Figure 3). Tuples are
// serialized into fixed-size pages with a slot directory; scans walk
// pages in order and deserialize every tuple — which is exactly the data
// access pattern whose cost the query-level evolution approach pays.

#ifndef CODS_ROWSTORE_ROW_TABLE_H_
#define CODS_ROWSTORE_ROW_TABLE_H_

#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "common/logging.h"
#include "rowstore/row.h"
#include "storage/schema.h"

namespace cods {

/// One fixed-size slotted page. Slot directory grows from the front,
/// tuple bytes grow from the back.
class Page {
 public:
  static constexpr size_t kPageSize = 8192;

  Page();

  /// Tries to insert `bytes`; returns the slot or nullopt if full.
  std::optional<uint16_t> Insert(const std::vector<uint8_t>& bytes);

  /// Number of occupied slots.
  uint16_t slot_count() const { return slot_count_; }

  /// Raw bytes of the tuple in `slot`.
  std::pair<const uint8_t*, size_t> Get(uint16_t slot) const;

  /// Bytes still available for one more tuple (payload + slot entry).
  size_t FreeSpace() const;

 private:
  struct SlotEntry {
    uint16_t offset;
    uint16_t length;
  };

  std::vector<uint8_t> data_;
  uint16_t slot_count_ = 0;
  size_t free_end_;  // tuple bytes occupy [free_end_, kPageSize)
};

/// Append-only heap file of rows.
class RowTable {
 public:
  RowTable(std::string name, Schema schema);

  const std::string& name() const { return name_; }
  const Schema& schema() const { return schema_; }
  uint64_t rows() const { return rows_; }
  size_t num_pages() const { return pages_.size(); }

  /// Appends a tuple and returns its address.
  Result<RowId> Insert(const Row& row);

  /// Fetches a tuple by address.
  Result<Row> Get(RowId rid) const;

  /// Calls fn(rid, row) for every tuple in heap order.
  template <typename Fn>
  void Scan(Fn&& fn) const {
    for (uint32_t p = 0; p < pages_.size(); ++p) {
      const Page& page = *pages_[p];
      for (uint16_t s = 0; s < page.slot_count(); ++s) {
        auto [data, size] = page.Get(s);
        Result<Row> row = DeserializeRow(data, size);
        CODS_CHECK(row.ok()) << row.status().ToString();
        fn(RowId{p, s}, row.ValueOrDie());
      }
    }
  }

  /// Total bytes across pages (storage footprint).
  uint64_t SizeBytes() const { return pages_.size() * Page::kPageSize; }

 private:
  std::string name_;
  Schema schema_;
  std::vector<std::unique_ptr<Page>> pages_;
  uint64_t rows_ = 0;
};

}  // namespace cods

#endif  // CODS_ROWSTORE_ROW_TABLE_H_

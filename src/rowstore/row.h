// Tuple serialization for the row-store baseline. The query-level
// baselines pay for materializing every tuple; serializing through a real
// byte format (type tags, length-prefixed strings, slotted pages) keeps
// that cost honest.

#ifndef CODS_ROWSTORE_ROW_H_
#define CODS_ROWSTORE_ROW_H_

#include <cstdint>
#include <string>
#include <vector>

#include "common/result.h"
#include "storage/value.h"

namespace cods {

/// Physical address of a tuple in a heap file.
struct RowId {
  uint32_t page = 0;
  uint16_t slot = 0;

  bool operator==(const RowId& other) const {
    return page == other.page && slot == other.slot;
  }
};

/// Serializes a row: per value a 1-byte type tag, then the payload
/// (int64/double: 8 bytes little-endian; string: u32 length + bytes).
void SerializeRow(const Row& row, std::vector<uint8_t>* out);

/// Deserializes a row previously produced by SerializeRow.
Result<Row> DeserializeRow(const uint8_t* data, size_t size);

/// Serialized size in bytes without materializing the buffer.
size_t SerializedRowSize(const Row& row);

}  // namespace cods

#endif  // CODS_ROWSTORE_ROW_H_

// In-memory B+ tree index over a projection of a RowTable's columns,
// with duplicate-key support and leaf chaining for range scans. This is
// the index the "commercial RDBMS with indexes" baseline (C+I in
// Figure 3) must rebuild from scratch after query-level evolution.

#ifndef CODS_ROWSTORE_BTREE_INDEX_H_
#define CODS_ROWSTORE_BTREE_INDEX_H_

#include <memory>
#include <utility>
#include <vector>

#include "rowstore/row_table.h"

namespace cods {

/// Lexicographic comparison of key tuples.
bool RowLess(const Row& a, const Row& b);

/// B+ tree multimap from key tuples to row ids.
class BTreeIndex {
 public:
  /// Maximum keys per node; 2*kMinKeys.
  static constexpr size_t kMaxKeys = 32;

  /// `key_columns` are indices into the indexed table's schema.
  explicit BTreeIndex(std::vector<size_t> key_columns);

  BTreeIndex(BTreeIndex&&) noexcept = default;
  BTreeIndex& operator=(BTreeIndex&&) noexcept = default;

  /// Indexes one row (extracts the key projection).
  void Add(const Row& row, RowId rid);

  /// Inserts an already-extracted key.
  void Insert(const Row& key, RowId rid);

  /// Builds from scratch over an existing table.
  static BTreeIndex Build(const RowTable& table,
                          std::vector<size_t> key_columns);

  /// Row ids with key exactly `key`.
  std::vector<RowId> Lookup(const Row& key) const;

  /// All (key, rid) pairs with lo <= key <= hi, in key order.
  std::vector<std::pair<Row, RowId>> ScanRange(const Row& lo,
                                               const Row& hi) const;

  /// All (key, rid) pairs in key order.
  std::vector<std::pair<Row, RowId>> ScanAll() const;

  size_t size() const { return size_; }
  size_t height() const { return height_; }
  const std::vector<size_t>& key_columns() const { return key_columns_; }

  /// Structural check: keys sorted in every node, separator invariants
  /// hold, all leaves at the same depth, leaf chain complete.
  Status Validate() const;

 private:
  struct Node {
    bool is_leaf;
    std::vector<Row> keys;
    // Leaf payloads (parallel to keys) when is_leaf.
    std::vector<RowId> values;
    // Children (keys.size() + 1 of them) when internal.
    std::vector<std::unique_ptr<Node>> children;
    Node* next_leaf = nullptr;

    explicit Node(bool leaf) : is_leaf(leaf) {}
  };

  struct SplitResult {
    Row separator;
    std::unique_ptr<Node> right;
  };

  // Inserts into the subtree; returns a split descriptor when the child
  // overflowed.
  std::optional<SplitResult> InsertInto(Node* node, const Row& key,
                                        RowId rid);
  std::optional<SplitResult> SplitIfNeeded(Node* node);

  const Node* FindLeaf(const Row& key) const;
  Status ValidateNode(const Node* node, const Row* lo, const Row* hi,
                      size_t depth, size_t leaf_depth) const;
  size_t LeafDepth() const;

  Row ExtractKey(const Row& row) const;

  std::vector<size_t> key_columns_;
  std::unique_ptr<Node> root_;
  size_t size_ = 0;
  size_t height_ = 1;
};

}  // namespace cods

#endif  // CODS_ROWSTORE_BTREE_INDEX_H_

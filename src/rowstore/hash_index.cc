#include "rowstore/hash_index.h"

namespace cods {

HashIndex::HashIndex(std::vector<size_t> key_columns)
    : key_columns_(std::move(key_columns)) {}

Row HashIndex::ExtractKey(const Row& row) const {
  Row key;
  key.reserve(key_columns_.size());
  for (size_t c : key_columns_) {
    CODS_DCHECK(c < row.size());
    key.push_back(row[c]);
  }
  return key;
}

void HashIndex::Add(const Row& row, RowId rid) {
  map_.emplace(ExtractKey(row), rid);
  ++entries_;
}

HashIndex HashIndex::Build(const RowTable& table,
                           std::vector<size_t> key_columns) {
  HashIndex index(std::move(key_columns));
  table.Scan([&](RowId rid, const Row& row) { index.Add(row, rid); });
  return index;
}

std::vector<RowId> HashIndex::Lookup(const Row& key) const {
  std::vector<RowId> out;
  auto [lo, hi] = map_.equal_range(key);
  for (auto it = lo; it != hi; ++it) out.push_back(it->second);
  return out;
}

}  // namespace cods

#include "bitmap/wah_bitmap.h"

#include <bit>
#include <sstream>

#include "common/result.h"

namespace cods {

namespace {
// Mask with the low `n` bits set (n <= 63).
inline uint64_t LowBits(uint64_t n) {
  return n >= 64 ? ~uint64_t{0} : (uint64_t{1} << n) - 1;
}
}  // namespace

WahBitmap WahBitmap::FromPositions(const std::vector<uint64_t>& set_positions,
                                   uint64_t size) {
  WahBitmap bm;
  for (uint64_t pos : set_positions) {
    CODS_DCHECK(pos < size);
    bm.AppendSetBit(pos);
  }
  CODS_DCHECK(bm.num_bits_ <= size);
  bm.AppendRun(false, size - bm.num_bits_);
  return bm;
}

WahBitmap WahBitmap::FromBools(const std::vector<bool>& bits) {
  WahBitmap bm;
  for (bool b : bits) bm.AppendBit(b);
  return bm;
}

Result<WahBitmap> WahBitmap::FromRawParts(std::vector<uint64_t> words,
                                          uint64_t tail, uint64_t tail_bits,
                                          uint64_t num_bits) {
  if (tail_bits >= kWahGroupBits) {
    return Status::Corruption("WAH tail with " + std::to_string(tail_bits) +
                              " bits (max 62)");
  }
  if (tail_bits < 64 && (tail >> tail_bits) != 0) {
    return Status::Corruption("WAH tail has bits beyond its length");
  }
  uint64_t bits = 0;
  for (uint64_t w : words) {
    if (wah::IsFill(w)) {
      uint64_t groups = wah::FillGroups(w);
      if (groups == 0) return Status::Corruption("zero-length WAH fill");
      bits += groups * kWahGroupBits;
    } else {
      bits += kWahGroupBits;
    }
  }
  if (bits + tail_bits != num_bits) {
    return Status::Corruption(
        "WAH word stream covers " + std::to_string(bits + tail_bits) +
        " bits but header claims " + std::to_string(num_bits));
  }
  WahBitmap bm;
  bm.words_ = std::move(words);
  bm.tail_ = tail;
  bm.tail_bits_ = tail_bits;
  bm.num_bits_ = num_bits;
  // The one place the cached popcount is computed rather than maintained:
  // raw words arrive without a count.
  uint64_t ones = 0;
  for (uint64_t w : bm.words_) {
    if (wah::IsFill(w)) {
      if (wah::FillValue(w)) ones += wah::FillGroups(w) * kWahGroupBits;
    } else {
      ones += static_cast<uint64_t>(std::popcount(wah::Literal(w)));
    }
  }
  ones += static_cast<uint64_t>(std::popcount(bm.tail_));
  bm.ones_ = ones;
  return bm;
}

void WahBitmap::FlushTailGroup() {
  CODS_DCHECK(tail_bits_ == kWahGroupBits);
  if (tail_ == 0) {
    AppendFillGroups(false, 1);
  } else if (tail_ == wah::kPayloadMask) {
    AppendFillGroups(true, 1);
  } else {
    words_.push_back(tail_);
  }
  tail_ = 0;
  tail_bits_ = 0;
}

void WahBitmap::AppendFillGroups(bool value, uint64_t groups) {
  if (groups == 0) return;
  if (!words_.empty() && wah::IsFill(words_.back()) &&
      wah::FillValue(words_.back()) == value) {
    words_.back() += groups;  // count is in the low bits; cannot overflow
                              // in practice (2^62 groups)
    return;
  }
  words_.push_back(wah::MakeFill(value, groups));
}

void WahBitmap::AppendBit(bool value) {
  if (value) {
    tail_ |= uint64_t{1} << tail_bits_;
    ++ones_;
  }
  ++tail_bits_;
  ++num_bits_;
  if (tail_bits_ == kWahGroupBits) FlushTailGroup();
}

void WahBitmap::AppendRun(bool value, uint64_t count) {
  if (value) ones_ += count;
  while (count > 0) {
    if (tail_bits_ == 0 && count >= kWahGroupBits) {
      uint64_t groups = count / kWahGroupBits;
      AppendFillGroups(value, groups);
      uint64_t bits = groups * kWahGroupBits;
      num_bits_ += bits;
      count -= bits;
      continue;
    }
    uint64_t take = kWahGroupBits - tail_bits_;
    if (take > count) take = count;
    if (value) tail_ |= LowBits(take) << tail_bits_;
    tail_bits_ += take;
    num_bits_ += take;
    count -= take;
    if (tail_bits_ == kWahGroupBits) FlushTailGroup();
  }
}

void WahBitmap::AppendSetBit(uint64_t pos) {
  CODS_DCHECK(pos >= num_bits_);
  AppendRun(false, pos - num_bits_);
  AppendBit(true);
}

void WahBitmap::AppendGroup(uint64_t payload) {
  CODS_DCHECK(tail_bits_ == 0);
  payload &= wah::kPayloadMask;
  ones_ += static_cast<uint64_t>(std::popcount(payload));
  if (payload == 0) {
    AppendFillGroups(false, 1);
  } else if (payload == wah::kPayloadMask) {
    AppendFillGroups(true, 1);
  } else {
    words_.push_back(payload);
  }
  num_bits_ += kWahGroupBits;
}

void WahBitmap::AppendBits(uint64_t payload, uint64_t nbits) {
  CODS_DCHECK(nbits <= kWahGroupBits);
  if (nbits == 0) return;
  payload &= LowBits(nbits);
  ones_ += static_cast<uint64_t>(std::popcount(payload));
  uint64_t space = kWahGroupBits - tail_bits_;
  if (nbits < space) {
    tail_ |= payload << tail_bits_;
    tail_bits_ += nbits;
    num_bits_ += nbits;
    return;
  }
  // Complete the current group, flush it, and carry the remainder.
  tail_ |= (payload << tail_bits_) & wah::kPayloadMask;
  tail_bits_ = kWahGroupBits;
  num_bits_ += space;
  FlushTailGroup();
  uint64_t rest = nbits - space;
  if (rest > 0) {
    tail_ = payload >> space;
    tail_bits_ = rest;
    num_bits_ += rest;
  }
}

void WahBitmap::Concat(const WahBitmap& other) {
  if (other.num_bits_ == 0) return;
  if (&other == this) {
    // Self-concat would mutate the source mid-decode; copy first.
    WahBitmap copy = other;
    Concat(copy);
    return;
  }
  if (tail_bits_ == 0) {
    // Group-aligned: splice other's code words directly, merging the fill
    // at the boundary. AppendGroup re-canonicalizes homogeneous literals
    // from non-canonical producers (FromRawParts).
    Reserve(words_.size() + other.words_.size());
    for (uint64_t w : other.words_) {
      if (wah::IsFill(w)) {
        uint64_t groups = wah::FillGroups(w);
        AppendFillGroups(wah::FillValue(w), groups);
        num_bits_ += groups * kWahGroupBits;
        if (wah::FillValue(w)) ones_ += groups * kWahGroupBits;
      } else {
        AppendGroup(w);
      }
    }
    tail_ = other.tail_;
    tail_bits_ = other.tail_bits_;
    num_bits_ += other.tail_bits_;
    ones_ += static_cast<uint64_t>(std::popcount(other.tail_));
    return;
  }
  // Unaligned: stream other's runs, shifting literal groups in whole.
  Reserve(words_.size() + other.words_.size());
  uint64_t bits_left = other.num_bits_;
  WahDecoder dec(other);
  while (bits_left > 0) {
    CODS_DCHECK(!dec.exhausted());
    if (dec.is_fill()) {
      uint64_t groups = dec.remaining_groups();
      uint64_t bits = groups * kWahGroupBits;
      CODS_DCHECK(bits <= bits_left);
      AppendRun(dec.fill_value(), bits);
      dec.Consume(groups);
      bits_left -= bits;
    } else {
      uint64_t bits = bits_left < kWahGroupBits ? bits_left : kWahGroupBits;
      AppendBits(dec.group_payload(), bits);
      dec.Consume(1);
      bits_left -= bits;
    }
  }
}

bool WahBitmap::Get(uint64_t pos) const {
  CODS_DCHECK(pos < num_bits_);
  uint64_t offset = 0;
  for (uint64_t w : words_) {
    uint64_t span = wah::IsFill(w) ? wah::FillGroups(w) * kWahGroupBits
                                   : kWahGroupBits;
    if (pos < offset + span) {
      if (wah::IsFill(w)) return wah::FillValue(w);
      return (wah::Literal(w) >> (pos - offset)) & 1;
    }
    offset += span;
  }
  CODS_DCHECK(pos - offset < tail_bits_);
  return (tail_ >> (pos - offset)) & 1;
}

uint64_t WahBitmap::FirstSetBit() const {
  uint64_t offset = 0;
  for (uint64_t w : words_) {
    if (wah::IsFill(w)) {
      uint64_t span = wah::FillGroups(w) * kWahGroupBits;
      if (wah::FillValue(w)) return offset;
      offset += span;
    } else {
      uint64_t payload = wah::Literal(w);
      if (payload != 0) {
        return offset + static_cast<uint64_t>(std::countr_zero(payload));
      }
      offset += kWahGroupBits;
    }
  }
  if (tail_ != 0) {
    return offset + static_cast<uint64_t>(std::countr_zero(tail_));
  }
  return num_bits_;
}

std::string WahBitmap::ToString() const {
  std::ostringstream out;
  out << "[";
  for (size_t i = 0; i < words_.size(); ++i) {
    if (i > 0) out << "|";
    uint64_t w = words_[i];
    if (wah::IsFill(w)) {
      out << "F" << (wah::FillValue(w) ? 1 : 0) << "x" << wah::FillGroups(w);
    } else {
      out << "L:" << std::popcount(wah::Literal(w)) << "ones";
    }
  }
  out << "]";
  if (tail_bits_ > 0) {
    out << " tail=" << std::popcount(tail_) << "/" << tail_bits_;
  }
  out << " (" << num_bits_ << " bits)";
  return out.str();
}

std::vector<bool> WahBitmap::ToBools() const {
  std::vector<bool> out(num_bits_, false);
  WahSetBitIterator it(*this);
  uint64_t pos;
  while (it.Next(&pos)) out[pos] = true;
  return out;
}

std::vector<uint64_t> WahBitmap::SetPositions() const {
  std::vector<uint64_t> out;
  out.reserve(CountOnes());
  WahSetBitIterator it(*this);
  uint64_t pos;
  while (it.Next(&pos)) out.push_back(pos);
  return out;
}

// ---- WahDecoder ----------------------------------------------------------

WahDecoder::WahDecoder(const WahBitmap& bm) : bm_(&bm) { LoadNext(); }

void WahDecoder::LoadNext() {
  if (word_index_ < bm_->words_.size()) {
    uint64_t w = bm_->words_[word_index_++];
    if (wah::IsFill(w)) {
      is_fill_ = true;
      fill_value_ = wah::FillValue(w);
      remaining_groups_ = wah::FillGroups(w);
      CODS_DCHECK(remaining_groups_ > 0);
    } else {
      is_fill_ = false;
      literal_ = wah::Literal(w);
      remaining_groups_ = 1;
    }
    return;
  }
  if (!tail_emitted_ && bm_->tail_bits_ > 0) {
    tail_emitted_ = true;
    is_fill_ = false;
    literal_ = bm_->tail_;
    remaining_groups_ = 1;
    return;
  }
  exhausted_ = true;
  remaining_groups_ = 0;
}

uint64_t WahDecoder::group_payload() const {
  CODS_DCHECK(!exhausted_);
  if (is_fill_) return fill_value_ ? wah::kPayloadMask : 0;
  return literal_;
}

void WahDecoder::Consume(uint64_t groups) {
  CODS_DCHECK(groups <= remaining_groups_);
  remaining_groups_ -= groups;
  if (remaining_groups_ == 0) LoadNext();
}

// ---- WahSetBitIterator ----------------------------------------------------

WahSetBitIterator::WahSetBitIterator(const WahBitmap& bm)
    : decoder_(bm), logical_size_(bm.size()) {}

bool WahSetBitIterator::Next(uint64_t* pos) {
  while (pending_ == 0) {
    if (decoder_.exhausted()) return false;
    if (decoder_.is_fill() && !decoder_.fill_value()) {
      uint64_t groups = decoder_.remaining_groups();
      group_start_ += groups * kWahGroupBits;
      decoder_.Consume(groups);
    } else {
      pending_ = decoder_.group_payload();
      group_start_ += kWahGroupBits;
      decoder_.Consume(1);
    }
  }
  uint64_t bit = static_cast<uint64_t>(std::countr_zero(pending_));
  pending_ &= pending_ - 1;
  *pos = group_start_ - kWahGroupBits + bit;
  CODS_DCHECK(*pos < logical_size_);
  return true;
}

// ---- WahRunIterator -------------------------------------------------------

WahRunIterator::WahRunIterator(const WahBitmap& bm)
    : decoder_(bm), logical_size_(bm.size()) {}

bool WahRunIterator::NextPrimitive(bool* value, uint64_t* length) {
  while (true) {
    if (group_bits_left_ > 0) {
      bool bit = group_ & 1;
      uint64_t x = bit ? ~group_ : group_;
      uint64_t run = x == 0 ? 64 : static_cast<uint64_t>(std::countr_zero(x));
      if (run > group_bits_left_) run = group_bits_left_;
      group_ >>= run;
      group_bits_left_ -= run;
      *value = bit;
      *length = run;
      return true;
    }
    if (decoder_.exhausted()) return false;
    if (decoder_.is_fill()) {
      uint64_t groups = decoder_.remaining_groups();
      *value = decoder_.fill_value();
      *length = groups * kWahGroupBits;
      decoder_.Consume(groups);
      emitted_or_buffered_ += *length;
      return true;
    }
    group_ = decoder_.group_payload();
    uint64_t remaining_bits = logical_size_ - emitted_or_buffered_;
    group_bits_left_ =
        remaining_bits < kWahGroupBits ? remaining_bits : kWahGroupBits;
    emitted_or_buffered_ += group_bits_left_;
    decoder_.Consume(1);
    if (group_bits_left_ == 0) {
      // Logical size is an exact multiple of the group size and this was
      // a phantom empty tail; keep looking.
      continue;
    }
  }
}

bool WahRunIterator::Next(Run* run) {
  if (!have_carry_) {
    if (!NextPrimitive(&carry_value_, &carry_length_)) return false;
    have_carry_ = true;
  }
  bool v;
  uint64_t l;
  while (NextPrimitive(&v, &l)) {
    if (v == carry_value_) {
      carry_length_ += l;
    } else {
      run->value = carry_value_;
      run->start = pos_;
      run->length = carry_length_;
      pos_ += carry_length_;
      carry_value_ = v;
      carry_length_ = l;
      return true;
    }
  }
  run->value = carry_value_;
  run->start = pos_;
  run->length = carry_length_;
  pos_ += carry_length_;
  have_carry_ = false;
  return true;
}

}  // namespace cods

// Logical operations on WAH-compressed bitmaps, executed directly on the
// compressed code words (no decompression). AND with a zero fill and OR
// with a one fill skip whole fills without touching the other operand's
// payload bits, which is what makes bitmap algebra on compressed columns
// cheap (Wu et al., TODS 2006).

#ifndef CODS_BITMAP_WAH_OPS_H_
#define CODS_BITMAP_WAH_OPS_H_

#include "bitmap/wah_bitmap.h"

namespace cods {

/// a AND b. Requires a.size() == b.size().
WahBitmap WahAnd(const WahBitmap& a, const WahBitmap& b);

/// a OR b. Requires a.size() == b.size().
WahBitmap WahOr(const WahBitmap& a, const WahBitmap& b);

/// a XOR b. Requires a.size() == b.size().
WahBitmap WahXor(const WahBitmap& a, const WahBitmap& b);

/// a AND NOT b. Requires a.size() == b.size().
WahBitmap WahAndNot(const WahBitmap& a, const WahBitmap& b);

/// NOT a (complement of every bit up to a.size()).
WahBitmap WahNot(const WahBitmap& a);

/// Number of set bits in a AND b, without materializing the result.
uint64_t WahAndCount(const WahBitmap& a, const WahBitmap& b);

/// True if a AND b has at least one set bit (early-exit intersection).
bool WahIntersects(const WahBitmap& a, const WahBitmap& b);

}  // namespace cods

#endif  // CODS_BITMAP_WAH_OPS_H_

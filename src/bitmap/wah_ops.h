// Logical operations on WAH-compressed bitmaps, executed directly on the
// compressed code words (no decompression). AND with a zero fill and OR
// with a one fill skip whole fills without touching the other operand's
// payload bits, which is what makes bitmap algebra on compressed columns
// cheap (Wu et al., TODS 2006).
//
// Two families of kernels live here:
//
//  * Pairwise ops (WahAnd/WahOr/...): one streaming merge of two
//    decoders, emitting fills and combined literal groups.
//
//  * Multi-operand ops (WahOrMany/WahAndMany and their *Count
//    variants): a single-pass k-way merge over one WahDecoder per
//    operand. Instead of left-folding k-1 pairwise ops — which decodes
//    and re-encodes k-1 intermediate bitmaps, O(k·n) work and k-1
//    allocations — the k-way kernel walks all operands in lockstep once
//    and appends straight into the final result:
//
//      - Annihilation: a one-fill (OR) / zero-fill (AND) on ANY operand
//        determines the output for its whole span. The kernel takes the
//        WIDEST annihilating fill in sight and gallops every other
//        decoder across it in whole-run steps (O(runs skipped), no
//        payload work).
//      - Identity fills: when every operand is sitting on an identity
//        fill (zero for OR, one for AND), the minimum span is emitted as
//        one output fill.
//      - Literal step: otherwise one 63-bit group is combined across the
//        k operands with a flat OR/AND reduction.
//
//    The *Count variants run the same merge but only accumulate
//    popcounts — selectivity estimation and validation never materialize
//    a result bitmap.
//
// The in-place WahBitmap::OrWith/AndWith members are also implemented
// here: they keep the fold-accumulator pattern O(1) in the homogeneous
// cases (empty accumulator, saturated accumulator, homogeneous operand)
// and otherwise run one streaming merge into a recycled thread-local
// buffer that is swapped in as the accumulator's new representation —
// the displaced word vector becomes the next call's buffer, so
// fold-shaped loops reach a steady state with no per-step allocation.

#ifndef CODS_BITMAP_WAH_OPS_H_
#define CODS_BITMAP_WAH_OPS_H_

#include <vector>

#include "bitmap/wah_bitmap.h"

namespace cods {

/// a AND b. Requires a.size() == b.size().
WahBitmap WahAnd(const WahBitmap& a, const WahBitmap& b);

/// a OR b. Requires a.size() == b.size().
WahBitmap WahOr(const WahBitmap& a, const WahBitmap& b);

/// a XOR b. Requires a.size() == b.size().
WahBitmap WahXor(const WahBitmap& a, const WahBitmap& b);

/// a AND NOT b. Requires a.size() == b.size().
WahBitmap WahAndNot(const WahBitmap& a, const WahBitmap& b);

/// NOT a (complement of every bit up to a.size()).
WahBitmap WahNot(const WahBitmap& a);

/// Number of set bits in a AND b, without materializing the result.
uint64_t WahAndCount(const WahBitmap& a, const WahBitmap& b);

/// True if a AND b has at least one set bit (early-exit intersection).
bool WahIntersects(const WahBitmap& a, const WahBitmap& b);

// ---- Multi-operand kernels -------------------------------------------------
//
// All operands must have size() == `size`. `size` also defines the
// result for the empty operand list: OR of nothing is all zeros, AND of
// nothing is all ones (the identities of the respective folds).

/// Union of all operands in one pass.
WahBitmap WahOrMany(const std::vector<const WahBitmap*>& operands,
                    uint64_t size);
WahBitmap WahOrMany(const std::vector<WahBitmap>& operands, uint64_t size);

/// Intersection of all operands in one pass.
WahBitmap WahAndMany(const std::vector<const WahBitmap*>& operands,
                     uint64_t size);
WahBitmap WahAndMany(const std::vector<WahBitmap>& operands, uint64_t size);

/// Number of set bits of the union, never materializing it.
uint64_t WahOrManyCount(const std::vector<const WahBitmap*>& operands,
                        uint64_t size);
uint64_t WahOrManyCount(const std::vector<WahBitmap>& operands,
                        uint64_t size);

/// Number of set bits of the intersection, never materializing it.
uint64_t WahAndManyCount(const std::vector<const WahBitmap*>& operands,
                         uint64_t size);
uint64_t WahAndManyCount(const std::vector<WahBitmap>& operands,
                         uint64_t size);

}  // namespace cods

#endif  // CODS_BITMAP_WAH_OPS_H_

#include "bitmap/rle.h"

#include <algorithm>

#include "common/logging.h"

namespace cods {

RleVector RleVector::FromRuns(const std::vector<Run>& runs) {
  RleVector out;
  for (const Run& r : runs) {
    CODS_CHECK(r.length > 0) << "zero-length RLE run";
    out.AppendRun(r.value, r.length);
  }
  return out;
}

RleVector RleVector::Encode(const std::vector<uint32_t>& values) {
  RleVector out;
  for (uint32_t v : values) out.Append(v);
  return out;
}

void RleVector::Append(uint32_t value) { AppendRun(value, 1); }

void RleVector::AppendRun(uint32_t value, uint64_t count) {
  if (count == 0) return;
  if (!runs_.empty() && runs_.back().value == value) {
    runs_.back().length += count;
  } else {
    starts_.push_back(size_);
    runs_.push_back(Run{value, count});
  }
  size_ += count;
}

uint32_t RleVector::Get(uint64_t pos) const {
  CODS_DCHECK(pos < size_);
  auto it = std::upper_bound(starts_.begin(), starts_.end(), pos);
  size_t idx = static_cast<size_t>(it - starts_.begin()) - 1;
  return runs_[idx].value;
}

std::vector<uint32_t> RleVector::Decode() const {
  std::vector<uint32_t> out;
  out.reserve(size_);
  for (const Run& r : runs_) {
    out.insert(out.end(), r.length, r.value);
  }
  return out;
}

}  // namespace cods

// Uncompressed bitmap used (a) as a correctness oracle in tests and
// (b) as the baseline in the compression ablation benchmark (A1 in
// DESIGN.md): what column operations cost when bitmaps are stored verbatim.

#ifndef CODS_BITMAP_PLAIN_BITMAP_H_
#define CODS_BITMAP_PLAIN_BITMAP_H_

#include <cstdint>
#include <vector>

#include "bitmap/wah_bitmap.h"

namespace cods {

/// Fixed-size flat bitmap backed by a uint64_t array.
class PlainBitmap {
 public:
  PlainBitmap() = default;
  /// All-zero bitmap of `size` bits.
  explicit PlainBitmap(uint64_t size)
      : size_(size), words_((size + 63) / 64, 0) {}

  /// Converts from a WAH bitmap (decompression).
  static PlainBitmap FromWah(const WahBitmap& wah);

  uint64_t size() const { return size_; }

  void Set(uint64_t pos);
  void Clear(uint64_t pos);
  bool Get(uint64_t pos) const;

  uint64_t CountOnes() const;

  /// Bytes of backing storage (for compression-ratio reporting).
  uint64_t SizeBytes() const { return words_.size() * sizeof(uint64_t); }

  /// Converts to WAH (compression).
  WahBitmap ToWah() const;

  /// Word-wise logical ops; sizes must match.
  PlainBitmap And(const PlainBitmap& other) const;
  PlainBitmap Or(const PlainBitmap& other) const;
  PlainBitmap Xor(const PlainBitmap& other) const;

  const std::vector<uint64_t>& words() const { return words_; }

 private:
  uint64_t size_ = 0;
  std::vector<uint64_t> words_;
};

}  // namespace cods

#endif  // CODS_BITMAP_PLAIN_BITMAP_H_

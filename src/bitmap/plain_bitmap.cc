#include "bitmap/plain_bitmap.h"

#include <bit>

namespace cods {

PlainBitmap PlainBitmap::FromWah(const WahBitmap& wah) {
  PlainBitmap out(wah.size());
  WahSetBitIterator it(wah);
  uint64_t pos;
  while (it.Next(&pos)) out.Set(pos);
  return out;
}

void PlainBitmap::Set(uint64_t pos) {
  CODS_DCHECK(pos < size_);
  words_[pos / 64] |= uint64_t{1} << (pos % 64);
}

void PlainBitmap::Clear(uint64_t pos) {
  CODS_DCHECK(pos < size_);
  words_[pos / 64] &= ~(uint64_t{1} << (pos % 64));
}

bool PlainBitmap::Get(uint64_t pos) const {
  CODS_DCHECK(pos < size_);
  return (words_[pos / 64] >> (pos % 64)) & 1;
}

uint64_t PlainBitmap::CountOnes() const {
  uint64_t ones = 0;
  for (uint64_t w : words_) ones += static_cast<uint64_t>(std::popcount(w));
  return ones;
}

WahBitmap PlainBitmap::ToWah() const {
  WahBitmap out;
  for (uint64_t pos = 0; pos < size_;) {
    uint64_t word = words_[pos / 64];
    uint64_t in_word = pos % 64;
    bool bit = (word >> in_word) & 1;
    uint64_t x = (bit ? ~word : word) >> in_word;
    uint64_t run = x == 0 ? 64 - in_word
                          : static_cast<uint64_t>(std::countr_zero(x));
    if (pos + run > size_) run = size_ - pos;
    out.AppendRun(bit, run);
    pos += run;
  }
  return out;
}

PlainBitmap PlainBitmap::And(const PlainBitmap& other) const {
  CODS_CHECK(size_ == other.size_);
  PlainBitmap out(size_);
  for (size_t i = 0; i < words_.size(); ++i) {
    out.words_[i] = words_[i] & other.words_[i];
  }
  return out;
}

PlainBitmap PlainBitmap::Or(const PlainBitmap& other) const {
  CODS_CHECK(size_ == other.size_);
  PlainBitmap out(size_);
  for (size_t i = 0; i < words_.size(); ++i) {
    out.words_[i] = words_[i] | other.words_[i];
  }
  return out;
}

PlainBitmap PlainBitmap::Xor(const PlainBitmap& other) const {
  CODS_CHECK(size_ == other.size_);
  PlainBitmap out(size_);
  for (size_t i = 0; i < words_.size(); ++i) {
    out.words_[i] = words_[i] ^ other.words_[i];
  }
  return out;
}

}  // namespace cods

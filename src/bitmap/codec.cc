#include "bitmap/codec.h"

#include <algorithm>
#include <bit>
#include <sstream>

#include "bitmap/wah_filter.h"
#include "bitmap/wah_ops.h"

namespace cods {

namespace {

inline uint64_t LowBits(uint64_t n) {
  return n >= 64 ? ~uint64_t{0} : (uint64_t{1} << n) - 1;
}

inline uint64_t DenseWordCount(uint64_t size) { return (size + 63) / 64; }

// 63-bit group window helpers over a dense word array. A WAH group at
// index g occupies bits [63g, 63g + 63) and straddles at most two words.

inline uint64_t Extract63(const uint64_t* words, size_t nwords,
                          uint64_t bit_off) {
  size_t q = bit_off >> 6;
  unsigned r = bit_off & 63;
  if (q >= nwords) return 0;
  uint64_t lo = words[q] >> r;
  if (r != 0 && q + 1 < nwords) lo |= words[q + 1] << (64 - r);
  return lo & wah::kPayloadMask;
}

inline void Deposit63(uint64_t* words, size_t nwords, uint64_t bit_off,
                      uint64_t payload) {
  size_t q = bit_off >> 6;
  unsigned r = bit_off & 63;
  words[q] |= payload << r;
  if (r != 0 && q + 1 < nwords) words[q + 1] |= payload >> (64 - r);
}

// Clears, within the 63-bit window at bit_off, the bits that are zero in
// `payload` (dense &= literal group).
inline void MaskGroup63(uint64_t* words, size_t nwords, uint64_t bit_off,
                        uint64_t payload) {
  uint64_t inv = (~payload) & wah::kPayloadMask;
  size_t q = bit_off >> 6;
  unsigned r = bit_off & 63;
  words[q] &= ~(inv << r);
  if (r != 0 && q + 1 < nwords) words[q + 1] &= ~(inv >> (64 - r));
}

// Sets the dense bits in [start, end).
void FillRange(uint64_t* words, uint64_t start, uint64_t end) {
  if (start >= end) return;
  size_t qs = start >> 6, qe = (end - 1) >> 6;
  uint64_t first = ~uint64_t{0} << (start & 63);
  uint64_t last = LowBits(((end - 1) & 63) + 1);
  if (qs == qe) {
    words[qs] |= first & last;
    return;
  }
  words[qs] |= first;
  for (size_t q = qs + 1; q < qe; ++q) words[q] = ~uint64_t{0};
  words[qe] |= last;
}

// Clears the dense bits in [start, end).
void ZeroRange(uint64_t* words, uint64_t start, uint64_t end) {
  if (start >= end) return;
  size_t qs = start >> 6, qe = (end - 1) >> 6;
  uint64_t first = ~uint64_t{0} << (start & 63);
  uint64_t last = LowBits(((end - 1) & 63) + 1);
  if (qs == qe) {
    words[qs] &= ~(first & last);
    return;
  }
  words[qs] &= ~first;
  for (size_t q = qs + 1; q < qe; ++q) words[q] = 0;
  words[qe] &= ~last;
}

// Popcount of the dense bits in [start, end).
uint64_t CountRange(const uint64_t* words, uint64_t start, uint64_t end) {
  if (start >= end) return 0;
  size_t qs = start >> 6, qe = (end - 1) >> 6;
  uint64_t first = ~uint64_t{0} << (start & 63);
  uint64_t last = LowBits(((end - 1) & 63) + 1);
  if (qs == qe) {
    return static_cast<uint64_t>(std::popcount(words[qs] & first & last));
  }
  uint64_t ones = static_cast<uint64_t>(std::popcount(words[qs] & first));
  for (size_t q = qs + 1; q < qe; ++q) {
    ones += static_cast<uint64_t>(std::popcount(words[q]));
  }
  ones += static_cast<uint64_t>(std::popcount(words[qe] & last));
  return ones;
}

uint64_t CountWords(const std::vector<uint64_t>& words) {
  uint64_t ones = 0;
  for (uint64_t w : words) ones += static_cast<uint64_t>(std::popcount(w));
  return ones;
}

// Canonical WAH encode of a dense word span, one 63-bit group per step
// (AppendRun for homogeneous groups, AppendBits otherwise — both O(1)
// per group, and the canonical append API coalesces adjacent fills), so
// the output is representation-identical to any other canonical producer
// of the same content. Group-wise beats run-wise here: a dense random
// span has ~2-bit runs, and per-run appends made this the bottleneck of
// every kernel that re-encodes a dense accumulator.
WahBitmap DenseToWah(const uint64_t* words, uint64_t size) {
  WahBitmap out;
  size_t nwords = (size + 63) / 64;
  uint64_t pos = 0;
  for (; pos + kWahGroupBits <= size; pos += kWahGroupBits) {
    uint64_t payload = Extract63(words, nwords, pos);
    if (payload == 0) {
      out.AppendRun(false, kWahGroupBits);
    } else if (payload == wah::kPayloadMask) {
      out.AppendRun(true, kWahGroupBits);
    } else {
      out.AppendBits(payload, kWahGroupBits);
    }
  }
  if (pos < size) out.AppendBits(Extract63(words, nwords, pos), size - pos);
  return out;
}

// Expands a WAH bitmap's set bits into pre-zeroed dense words (OR
// semantics: existing bits survive).
void OrWahIntoDense(const WahBitmap& wah, uint64_t* words, size_t nwords) {
  WahDecoder dec(wah);
  uint64_t offset = 0;
  while (!dec.exhausted()) {
    if (dec.is_fill()) {
      uint64_t span = dec.remaining_groups() * kWahGroupBits;
      if (dec.fill_value()) {
        uint64_t end = std::min(offset + span, wah.size());
        FillRange(words, offset, end);
      }
      offset += span;
      dec.Consume(dec.remaining_groups());
    } else {
      Deposit63(words, nwords, offset, dec.group_payload());
      offset += kWahGroupBits;
      dec.Consume(1);
    }
  }
}

// dense &= wah (0-fills clear ranges, literals mask groups).
void AndWahIntoDense(const WahBitmap& wah, uint64_t* words, size_t nwords) {
  WahDecoder dec(wah);
  uint64_t offset = 0;
  while (!dec.exhausted()) {
    if (dec.is_fill()) {
      uint64_t span = dec.remaining_groups() * kWahGroupBits;
      if (!dec.fill_value()) {
        uint64_t end = std::min(offset + span, wah.size());
        ZeroRange(words, offset, end);
      }
      offset += span;
      dec.Consume(dec.remaining_groups());
    } else {
      MaskGroup63(words, nwords, offset, dec.group_payload());
      offset += kWahGroupBits;
      dec.Consume(1);
    }
  }
}

// |wah & dense| on the compressed walk: 1-fills popcount a dense range,
// literal groups popcount payload & window.
uint64_t CountWahAndDense(const WahBitmap& wah, const uint64_t* words,
                          size_t nwords) {
  WahDecoder dec(wah);
  uint64_t offset = 0, ones = 0;
  while (!dec.exhausted()) {
    if (dec.is_fill()) {
      uint64_t span = dec.remaining_groups() * kWahGroupBits;
      if (dec.fill_value()) {
        uint64_t end = std::min(offset + span, wah.size());
        ones += CountRange(words, offset, end);
      }
      offset += span;
      dec.Consume(dec.remaining_groups());
    } else {
      ones += static_cast<uint64_t>(std::popcount(
          dec.group_payload() & Extract63(words, nwords, offset)));
      offset += kWahGroupBits;
      dec.Consume(1);
    }
  }
  return ones;
}

// Galloping lower-bound: exponential probe from `from`, then binary
// search inside the bracketing window.
size_t GallopTo(const std::vector<uint32_t>& v, size_t from, uint32_t x) {
  size_t offset = 1, lo = from;
  while (from + offset < v.size() && v[from + offset] < x) {
    lo = from + offset;
    offset <<= 1;
  }
  size_t hi = std::min(from + offset + 1, v.size());
  return static_cast<size_t>(
      std::lower_bound(v.begin() + static_cast<long>(lo),
                       v.begin() + static_cast<long>(hi), x) -
      v.begin());
}

// Sorted-set intersection; galloping when one side is much smaller.
// `emit(pos)` is called for each common position in increasing order.
template <typename Emit>
void IntersectArrays(const std::vector<uint32_t>& a,
                     const std::vector<uint32_t>& b, Emit&& emit) {
  const std::vector<uint32_t>* small = &a;
  const std::vector<uint32_t>* large = &b;
  if (small->size() > large->size()) std::swap(small, large);
  if (small->size() * 8 < large->size()) {
    size_t j = 0;
    for (uint32_t x : *small) {
      j = GallopTo(*large, j, x);
      if (j == large->size()) break;
      if ((*large)[j] == x) emit(x);
    }
    return;
  }
  size_t i = 0, j = 0;
  while (i < a.size() && j < b.size()) {
    uint32_t x = a[i], y = b[j];
    if (x < y) {
      ++i;
    } else if (y < x) {
      ++j;
    } else {
      emit(x);
      ++i;
      ++j;
    }
  }
}

// Walks sorted positions against a WAH bitmap's runs, emitting the
// positions whose bit is set. Shared by the AND-materialize and
// AND-count array×WAH kernels.
template <typename Emit>
void IntersectPositionsWithWah(const std::vector<uint32_t>& positions,
                               const WahBitmap& wah, Emit&& emit) {
  WahDecoder dec(wah);
  uint64_t offset = 0;
  size_t i = 0;
  const size_t n = positions.size();
  while (!dec.exhausted() && i < n) {
    if (dec.is_fill()) {
      uint64_t end = offset + dec.remaining_groups() * kWahGroupBits;
      if (dec.fill_value()) {
        while (i < n && positions[i] < end) emit(positions[i++]);
      } else if (end > positions[i]) {
        i = GallopTo(positions, i,
                     end > UINT32_MAX ? UINT32_MAX
                                      : static_cast<uint32_t>(end));
        // GallopTo finds the first position >= end except when end
        // saturates; positions are < 2^32 so saturation only occurs
        // past the last one.
        if (end > UINT32_MAX) i = n;
      }
      offset = end;
      dec.Consume(dec.remaining_groups());
    } else {
      uint64_t payload = dec.group_payload();
      uint64_t end = offset + kWahGroupBits;
      while (i < n && positions[i] < end) {
        if ((payload >> (positions[i] - offset)) & 1) emit(positions[i]);
        ++i;
      }
      offset = end;
      dec.Consume(1);
    }
  }
}

// Thread-local dense accumulator for the k-way union kernels; reused
// across calls so steady-state fan-outs stop allocating.
std::vector<uint64_t>& DenseScratch() {
  thread_local std::vector<uint64_t> scratch;
  return scratch;
}

void OrOperandIntoDense(const ValueBitmap& vb, uint64_t* words,
                        size_t nwords) {
  switch (vb.rep()) {
    case BitmapRep::kArray:
      for (uint32_t p : vb.array_positions()) {
        words[p >> 6] |= uint64_t{1} << (p & 63);
      }
      return;
    case BitmapRep::kWah:
      OrWahIntoDense(vb.wah(), words, nwords);
      return;
    case BitmapRep::kBitset: {
      const std::vector<uint64_t>& src = vb.bitset_words();
      for (size_t i = 0; i < src.size(); ++i) words[i] |= src[i];
      return;
    }
  }
}

// Accumulates the union of all operands into the thread-local dense
// scratch; returns the scratch. Shared by CodecOrManyWah / -Count.
std::vector<uint64_t>& AccumulateUnion(
    const std::vector<const ValueBitmap*>& operands, uint64_t size) {
  std::vector<uint64_t>& acc = DenseScratch();
  acc.assign(DenseWordCount(size), 0);
  for (const ValueBitmap* vb : operands) {
    CODS_DCHECK(vb->size() == size);
    if (vb->IsAllZeros()) continue;
    OrOperandIntoDense(*vb, acc.data(), acc.size());
  }
  return acc;
}

bool AllWah(const std::vector<const ValueBitmap*>& operands) {
  for (const ValueBitmap* vb : operands) {
    if (vb->rep() != BitmapRep::kWah) return false;
  }
  return true;
}

WahBitmap MakeWahFill(bool value, uint64_t size) {
  WahBitmap bm;
  bm.AppendRun(value, size);
  return bm;
}

ValueBitmap AllZeros(uint64_t size) {
  return ValueBitmap::FromWah(MakeWahFill(false, size));
}

}  // namespace

const char* BitmapRepName(BitmapRep rep) {
  switch (rep) {
    case BitmapRep::kArray:
      return "array";
    case BitmapRep::kWah:
      return "wah";
    case BitmapRep::kBitset:
      return "bitset";
  }
  return "?";
}

BitmapRep ChooseBitmapRep(uint64_t ones, uint64_t size) {
  CODS_DCHECK(ones <= size);
  if (ones == 0 || ones == size) return BitmapRep::kWah;
  if (size <= (uint64_t{1} << 32) && ones <= size / 64) {
    return BitmapRep::kArray;
  }
  if (ones >= (size + 3) / 4) return BitmapRep::kBitset;
  return BitmapRep::kWah;
}

CodecStats& GlobalCodecStats() {
  static CodecStats stats;
  return stats;
}

// ---- ValueBitmap construction --------------------------------------------

ValueBitmap ValueBitmap::FromWah(WahBitmap wah) {
  ValueBitmap vb;
  vb.size_ = wah.size();
  vb.ones_ = wah.CountOnes();
  vb.rep_ = ChooseBitmapRep(vb.ones_, vb.size_);
  switch (vb.rep_) {
    case BitmapRep::kArray: {
      vb.positions_.reserve(vb.ones_);
      WahSetBitIterator it(wah);
      uint64_t pos;
      while (it.Next(&pos)) {
        vb.positions_.push_back(static_cast<uint32_t>(pos));
      }
      GlobalCodecStats().array_built.fetch_add(1, std::memory_order_relaxed);
      break;
    }
    case BitmapRep::kWah:
      vb.wah_ = std::move(wah);
      GlobalCodecStats().wah_built.fetch_add(1, std::memory_order_relaxed);
      break;
    case BitmapRep::kBitset: {
      vb.words_.assign(DenseWordCount(vb.size_), 0);
      OrWahIntoDense(wah, vb.words_.data(), vb.words_.size());
      GlobalCodecStats().bitset_built.fetch_add(1, std::memory_order_relaxed);
      break;
    }
  }
  return vb;
}

ValueBitmap ValueBitmap::FromPositions(std::vector<uint32_t> positions,
                                       uint64_t size) {
  ValueBitmap vb;
  vb.size_ = size;
  vb.ones_ = positions.size();
  vb.rep_ = ChooseBitmapRep(vb.ones_, size);
  switch (vb.rep_) {
    case BitmapRep::kArray:
      vb.positions_ = std::move(positions);
      GlobalCodecStats().array_built.fetch_add(1, std::memory_order_relaxed);
      break;
    case BitmapRep::kWah: {
      for (uint32_t p : positions) vb.wah_.AppendSetBit(p);
      vb.wah_.AppendRun(false, size - vb.wah_.size());
      GlobalCodecStats().wah_built.fetch_add(1, std::memory_order_relaxed);
      break;
    }
    case BitmapRep::kBitset: {
      vb.words_.assign(DenseWordCount(size), 0);
      for (uint32_t p : positions) {
        vb.words_[p >> 6] |= uint64_t{1} << (p & 63);
      }
      GlobalCodecStats().bitset_built.fetch_add(1, std::memory_order_relaxed);
      break;
    }
  }
  return vb;
}

ValueBitmap ValueBitmap::FromDenseWords(std::vector<uint64_t> words,
                                        uint64_t size) {
  CODS_DCHECK(words.size() == DenseWordCount(size));
  ValueBitmap vb;
  vb.size_ = size;
  vb.ones_ = CountWords(words);
  vb.rep_ = ChooseBitmapRep(vb.ones_, size);
  switch (vb.rep_) {
    case BitmapRep::kArray: {
      vb.positions_.reserve(vb.ones_);
      for (size_t w = 0; w < words.size(); ++w) {
        uint64_t word = words[w];
        while (word != 0) {
          vb.positions_.push_back(static_cast<uint32_t>(
              w * 64 + static_cast<uint64_t>(std::countr_zero(word))));
          word &= word - 1;
        }
      }
      GlobalCodecStats().array_built.fetch_add(1, std::memory_order_relaxed);
      break;
    }
    case BitmapRep::kWah:
      vb.wah_ = DenseToWah(words.data(), size);
      GlobalCodecStats().wah_built.fetch_add(1, std::memory_order_relaxed);
      break;
    case BitmapRep::kBitset:
      vb.words_ = std::move(words);
      GlobalCodecStats().bitset_built.fetch_add(1, std::memory_order_relaxed);
      break;
  }
  return vb;
}

Result<ValueBitmap> ValueBitmap::FromRawParts(BitmapRep rep, uint64_t size,
                                              std::vector<uint32_t> positions,
                                              WahBitmap wah,
                                              std::vector<uint64_t> words) {
  ValueBitmap vb;
  vb.rep_ = rep;
  vb.size_ = size;
  switch (rep) {
    case BitmapRep::kArray: {
      uint32_t prev = 0;
      for (size_t i = 0; i < positions.size(); ++i) {
        if (positions[i] >= size || (i > 0 && positions[i] <= prev)) {
          return Status::Corruption(
              "array container positions not strictly increasing in range");
        }
        prev = positions[i];
      }
      vb.ones_ = positions.size();
      vb.positions_ = std::move(positions);
      break;
    }
    case BitmapRep::kWah:
      if (wah.size() != size) {
        return Status::Corruption("WAH container size mismatch");
      }
      vb.ones_ = wah.CountOnes();
      vb.wah_ = std::move(wah);
      break;
    case BitmapRep::kBitset: {
      if (words.size() != DenseWordCount(size)) {
        return Status::Corruption("bitset container word count mismatch");
      }
      if (size % 64 != 0 && !words.empty() &&
          (words.back() & ~LowBits(size % 64)) != 0) {
        return Status::Corruption("bitset container has bits beyond size");
      }
      vb.ones_ = CountWords(words);
      vb.words_ = std::move(words);
      break;
    }
    default:
      return Status::Corruption("unknown bitmap representation tag");
  }
  if (ChooseBitmapRep(vb.ones_, size) != rep) {
    return Status::Corruption(
        std::string("non-canonical bitmap representation: ") +
        BitmapRepName(rep) + " holding " + std::to_string(vb.ones_) + "/" +
        std::to_string(size) + " bits");
  }
  return vb;
}

// ---- ValueBitmap inspection ----------------------------------------------

bool ValueBitmap::Get(uint64_t pos) const {
  CODS_DCHECK(pos < size_);
  switch (rep_) {
    case BitmapRep::kArray:
      return std::binary_search(positions_.begin(), positions_.end(),
                                static_cast<uint32_t>(pos));
    case BitmapRep::kWah:
      return wah_.Get(pos);
    case BitmapRep::kBitset:
      return (words_[pos / 64] >> (pos % 64)) & 1;
  }
  return false;
}

uint64_t ValueBitmap::FirstSetBit() const {
  switch (rep_) {
    case BitmapRep::kArray:
      return positions_.empty() ? size_ : positions_.front();
    case BitmapRep::kWah:
      return wah_.FirstSetBit();
    case BitmapRep::kBitset:
      for (size_t w = 0; w < words_.size(); ++w) {
        if (words_[w] != 0) {
          return w * 64 + static_cast<uint64_t>(std::countr_zero(words_[w]));
        }
      }
      return size_;
  }
  return size_;
}

std::vector<uint64_t> ValueBitmap::SetPositions() const {
  std::vector<uint64_t> out;
  out.reserve(ones_);
  ForEachSetBit([&out](uint64_t pos) { out.push_back(pos); });
  return out;
}

WahBitmap ValueBitmap::ToWah() const {
  switch (rep_) {
    case BitmapRep::kArray: {
      WahBitmap out;
      for (uint32_t p : positions_) out.AppendSetBit(p);
      out.AppendRun(false, size_ - out.size());
      return out;
    }
    case BitmapRep::kWah:
      return wah_;
    case BitmapRep::kBitset:
      return DenseToWah(words_.data(), size_);
  }
  return WahBitmap();
}

void ValueBitmap::AppendToWah(WahBitmap* out) const {
  switch (rep_) {
    case BitmapRep::kArray: {
      uint64_t base = out->size();
      for (uint32_t p : positions_) out->AppendSetBit(base + p);
      out->AppendRun(false, base + size_ - out->size());
      return;
    }
    case BitmapRep::kWah:
      out->Concat(wah_);
      return;
    case BitmapRep::kBitset: {
      for (uint64_t off = 0; off < size_; off += kWahGroupBits) {
        uint64_t nbits = std::min(kWahGroupBits, size_ - off);
        out->AppendBits(Extract63(words_.data(), words_.size(), off), nbits);
      }
      return;
    }
  }
}

uint64_t ValueBitmap::SizeBytes() const {
  switch (rep_) {
    case BitmapRep::kArray:
      return positions_.size() * sizeof(uint32_t);
    case BitmapRep::kWah:
      return wah_.SizeBytes();
    case BitmapRep::kBitset:
      return words_.size() * sizeof(uint64_t);
  }
  return 0;
}

bool ValueBitmap::Equals(const ValueBitmap& other) const {
  if (rep_ != other.rep_ || size_ != other.size_ || ones_ != other.ones_) {
    return false;
  }
  switch (rep_) {
    case BitmapRep::kArray:
      return positions_ == other.positions_;
    case BitmapRep::kWah:
      return wah_ == other.wah_;
    case BitmapRep::kBitset:
      return words_ == other.words_;
  }
  return false;
}

std::string ValueBitmap::ToString() const {
  std::ostringstream out;
  out << BitmapRepName(rep_) << "(" << ones_ << "/" << size_ << ")";
  return out.str();
}

Status ValueBitmap::Validate(uint64_t expected_size) const {
  if (size_ != expected_size) {
    return Status::Corruption("value bitmap covers " + std::to_string(size_) +
                              " rows, expected " +
                              std::to_string(expected_size));
  }
  switch (rep_) {
    case BitmapRep::kArray: {
      uint32_t prev = 0;
      for (size_t i = 0; i < positions_.size(); ++i) {
        if (positions_[i] >= size_ || (i > 0 && positions_[i] <= prev)) {
          return Status::Corruption("array container positions invalid");
        }
        prev = positions_[i];
      }
      if (ones_ != positions_.size()) {
        return Status::Corruption("array container popcount mismatch");
      }
      break;
    }
    case BitmapRep::kWah:
      if (wah_.size() != size_ || wah_.CountOnes() != ones_) {
        return Status::Corruption("WAH container popcount mismatch");
      }
      break;
    case BitmapRep::kBitset: {
      if (words_.size() != DenseWordCount(size_)) {
        return Status::Corruption("bitset container word count mismatch");
      }
      if (size_ % 64 != 0 && !words_.empty() &&
          (words_.back() & ~LowBits(size_ % 64)) != 0) {
        return Status::Corruption("bitset container has bits beyond size");
      }
      if (ones_ != CountWords(words_)) {
        return Status::Corruption("bitset container popcount mismatch");
      }
      break;
    }
  }
  if (ChooseBitmapRep(ones_, size_) != rep_) {
    return Status::Corruption(
        std::string("non-canonical representation ") + BitmapRepName(rep_) +
        " for " + std::to_string(ones_) + "/" + std::to_string(size_));
  }
  return Status::OK();
}

// ---- Pairwise kernels ----------------------------------------------------

uint64_t CodecAndCount(const ValueBitmap& a, const ValueBitmap& b) {
  CODS_DCHECK(a.size() == b.size());
  if (a.IsAllZeros() || b.IsAllZeros()) return 0;
  if (a.IsAllOnes()) return b.CountOnes();
  if (b.IsAllOnes()) return a.CountOnes();
  const ValueBitmap* x = &a;
  const ValueBitmap* y = &b;
  // Normalize the dispatch to rep(x) <= rep(y): array < wah < bitset.
  if (static_cast<uint8_t>(x->rep()) > static_cast<uint8_t>(y->rep())) {
    std::swap(x, y);
  }
  uint64_t count = 0;
  switch (x->rep()) {
    case BitmapRep::kArray:
      switch (y->rep()) {
        case BitmapRep::kArray:
          IntersectArrays(x->array_positions(), y->array_positions(),
                          [&count](uint32_t) { ++count; });
          return count;
        case BitmapRep::kWah:
          IntersectPositionsWithWah(x->array_positions(), y->wah(),
                                    [&count](uint32_t) { ++count; });
          return count;
        case BitmapRep::kBitset: {
          const std::vector<uint64_t>& words = y->bitset_words();
          for (uint32_t p : x->array_positions()) {
            count += (words[p >> 6] >> (p & 63)) & 1;
          }
          return count;
        }
      }
      return 0;
    case BitmapRep::kWah:
      if (y->rep() == BitmapRep::kWah) return WahAndCount(x->wah(), y->wah());
      return CountWahAndDense(x->wah(), y->bitset_words().data(),
                              y->bitset_words().size());
    case BitmapRep::kBitset: {
      const std::vector<uint64_t>& wa = x->bitset_words();
      const std::vector<uint64_t>& wb = y->bitset_words();
      for (size_t i = 0; i < wa.size(); ++i) {
        count += static_cast<uint64_t>(std::popcount(wa[i] & wb[i]));
      }
      return count;
    }
  }
  return 0;
}

ValueBitmap CodecAnd(const ValueBitmap& a, const ValueBitmap& b) {
  CODS_DCHECK(a.size() == b.size());
  if (a.IsAllZeros() || b.IsAllZeros()) return AllZeros(a.size());
  if (a.IsAllOnes()) return b;
  if (b.IsAllOnes()) return a;
  const ValueBitmap* x = &a;
  const ValueBitmap* y = &b;
  if (static_cast<uint8_t>(x->rep()) > static_cast<uint8_t>(y->rep())) {
    std::swap(x, y);
  }
  if (x->rep() == BitmapRep::kArray) {
    // The intersection is a subset of the sparse side, so it stays
    // array-eligible; collect positions directly.
    std::vector<uint32_t> out;
    switch (y->rep()) {
      case BitmapRep::kArray:
        IntersectArrays(x->array_positions(), y->array_positions(),
                        [&out](uint32_t p) { out.push_back(p); });
        break;
      case BitmapRep::kWah:
        IntersectPositionsWithWah(x->array_positions(), y->wah(),
                                  [&out](uint32_t p) { out.push_back(p); });
        break;
      case BitmapRep::kBitset: {
        const std::vector<uint64_t>& words = y->bitset_words();
        for (uint32_t p : x->array_positions()) {
          if ((words[p >> 6] >> (p & 63)) & 1) out.push_back(p);
        }
        break;
      }
    }
    return ValueBitmap::FromPositions(std::move(out), a.size());
  }
  if (x->rep() == BitmapRep::kWah && y->rep() == BitmapRep::kWah) {
    return ValueBitmap::FromWah(WahAnd(x->wah(), y->wah()));
  }
  // At least one bitset: run word-parallel over a dense copy.
  std::vector<uint64_t> words;
  if (x->rep() == BitmapRep::kBitset) {
    words = x->bitset_words();
    if (y->rep() == BitmapRep::kBitset) {
      const std::vector<uint64_t>& wb = y->bitset_words();
      for (size_t i = 0; i < words.size(); ++i) words[i] &= wb[i];
    } else {
      AndWahIntoDense(y->wah(), words.data(), words.size());
    }
  } else {
    words = y->bitset_words();
    AndWahIntoDense(x->wah(), words.data(), words.size());
  }
  return ValueBitmap::FromDenseWords(std::move(words), a.size());
}

ValueBitmap CodecOr(const ValueBitmap& a, const ValueBitmap& b) {
  CODS_DCHECK(a.size() == b.size());
  if (a.IsAllZeros()) return b;
  if (b.IsAllZeros()) return a;
  if (a.IsAllOnes()) return a;
  if (b.IsAllOnes()) return b;
  const ValueBitmap* x = &a;
  const ValueBitmap* y = &b;
  if (static_cast<uint8_t>(x->rep()) > static_cast<uint8_t>(y->rep())) {
    std::swap(x, y);
  }
  if (x->rep() == BitmapRep::kArray && y->rep() == BitmapRep::kArray) {
    std::vector<uint32_t> out;
    out.reserve(x->array_positions().size() + y->array_positions().size());
    std::set_union(x->array_positions().begin(), x->array_positions().end(),
                   y->array_positions().begin(), y->array_positions().end(),
                   std::back_inserter(out));
    return ValueBitmap::FromPositions(std::move(out), a.size());
  }
  if (x->rep() == BitmapRep::kWah && y->rep() == BitmapRep::kWah) {
    return ValueBitmap::FromWah(WahOr(x->wah(), y->wah()));
  }
  // Mixed: accumulate into dense words.
  std::vector<uint64_t> words;
  if (y->rep() == BitmapRep::kBitset) {
    words = y->bitset_words();
  } else {
    words.assign(DenseWordCount(a.size()), 0);
    OrOperandIntoDense(*y, words.data(), words.size());
  }
  OrOperandIntoDense(*x, words.data(), words.size());
  return ValueBitmap::FromDenseWords(std::move(words), a.size());
}

ValueBitmap CodecNot(const ValueBitmap& a) {
  switch (a.rep()) {
    case BitmapRep::kArray: {
      // ~sparse is dense: start from all-ones and clear the positions.
      std::vector<uint64_t> words(DenseWordCount(a.size()), ~uint64_t{0});
      if (a.size() % 64 != 0 && !words.empty()) {
        words.back() = LowBits(a.size() % 64);
      }
      for (uint32_t p : a.array_positions()) {
        words[p >> 6] &= ~(uint64_t{1} << (p & 63));
      }
      return ValueBitmap::FromDenseWords(std::move(words), a.size());
    }
    case BitmapRep::kWah:
      return ValueBitmap::FromWah(WahNot(a.wah()));
    case BitmapRep::kBitset: {
      std::vector<uint64_t> words(a.bitset_words());
      for (uint64_t& w : words) w = ~w;
      if (a.size() % 64 != 0 && !words.empty()) {
        words.back() &= LowBits(a.size() % 64);
      }
      return ValueBitmap::FromDenseWords(std::move(words), a.size());
    }
  }
  return ValueBitmap();
}

// ---- Interchange kernels (ValueBitmap x WAH selection) -------------------

WahBitmap CodecAndWah(const ValueBitmap& a, const WahBitmap& selection) {
  CODS_DCHECK(a.size() == selection.size());
  if (a.IsAllZeros() || selection.IsAllZeros()) {
    return MakeWahFill(false, a.size());
  }
  if (a.IsAllOnes()) return selection;
  if (selection.IsAllOnes()) return a.ToWah();
  switch (a.rep()) {
    case BitmapRep::kArray: {
      WahBitmap out;
      IntersectPositionsWithWah(a.array_positions(), selection,
                                [&out](uint32_t p) { out.AppendSetBit(p); });
      out.AppendRun(false, a.size() - out.size());
      return out;
    }
    case BitmapRep::kWah:
      return WahAnd(a.wah(), selection);
    case BitmapRep::kBitset: {
      // Stream the selection's runs, masking through the dense words.
      const std::vector<uint64_t>& words = a.bitset_words();
      WahBitmap out;
      WahDecoder dec(selection);
      uint64_t offset = 0;
      while (!dec.exhausted() && offset < a.size()) {
        if (dec.is_fill()) {
          uint64_t span = dec.remaining_groups() * kWahGroupBits;
          uint64_t end = std::min(offset + span, a.size());
          if (dec.fill_value()) {
            for (uint64_t off = offset; off < end; off += kWahGroupBits) {
              uint64_t nbits = std::min(kWahGroupBits, end - off);
              out.AppendBits(Extract63(words.data(), words.size(), off),
                             nbits);
            }
          } else {
            out.AppendRun(false, end - offset);
          }
          offset += span;
          dec.Consume(dec.remaining_groups());
        } else {
          uint64_t nbits = std::min(kWahGroupBits, a.size() - offset);
          out.AppendBits(dec.group_payload() &
                             Extract63(words.data(), words.size(), offset),
                         nbits);
          offset += kWahGroupBits;
          dec.Consume(1);
        }
      }
      return out;
    }
  }
  return WahBitmap();
}

uint64_t CodecAndCountWah(const ValueBitmap& a, const WahBitmap& selection) {
  CODS_DCHECK(a.size() == selection.size());
  if (a.IsAllZeros() || selection.IsAllZeros()) return 0;
  if (a.IsAllOnes()) return selection.CountOnes();
  if (selection.IsAllOnes()) return a.CountOnes();
  switch (a.rep()) {
    case BitmapRep::kArray: {
      uint64_t count = 0;
      IntersectPositionsWithWah(a.array_positions(), selection,
                                [&count](uint32_t) { ++count; });
      return count;
    }
    case BitmapRep::kWah:
      return WahAndCount(a.wah(), selection);
    case BitmapRep::kBitset:
      return CountWahAndDense(selection, a.bitset_words().data(),
                              a.bitset_words().size());
  }
  return 0;
}

// ---- k-way kernels -------------------------------------------------------

WahBitmap CodecOrManyWah(const std::vector<const ValueBitmap*>& operands,
                         uint64_t size) {
  if (operands.empty()) return MakeWahFill(false, size);
  if (operands.size() == 1) return operands[0]->ToWah();
  if (AllWah(operands)) {
    std::vector<const WahBitmap*> wahs;
    wahs.reserve(operands.size());
    for (const ValueBitmap* vb : operands) wahs.push_back(&vb->wah());
    return WahOrMany(wahs, size);
  }
  std::vector<uint64_t>& acc = AccumulateUnion(operands, size);
  return DenseToWah(acc.data(), size);
}

uint64_t CodecOrManyCount(const std::vector<const ValueBitmap*>& operands,
                          uint64_t size) {
  if (operands.empty()) return 0;
  if (operands.size() == 1) return operands[0]->CountOnes();
  if (AllWah(operands)) {
    std::vector<const WahBitmap*> wahs;
    wahs.reserve(operands.size());
    for (const ValueBitmap* vb : operands) wahs.push_back(&vb->wah());
    return WahOrManyCount(wahs, size);
  }
  return CountWords(AccumulateUnion(operands, size));
}

// ---- Position filter -----------------------------------------------------

ValueBitmap CodecFilter(const WahPositionFilter& filter,
                        const ValueBitmap& vb) {
  CODS_DCHECK(vb.size() == filter.domain());
  switch (vb.rep()) {
    case BitmapRep::kArray: {
      std::vector<uint32_t> out;
      out.reserve(vb.array_positions().size());
      for (uint32_t p : vb.array_positions()) {
        if (filter.Contains(p)) {
          out.push_back(static_cast<uint32_t>(filter.Rank(p)));
        }
      }
      return ValueBitmap::FromPositions(std::move(out),
                                        filter.num_positions());
    }
    case BitmapRep::kWah:
      return ValueBitmap::FromWah(filter.Filter(vb.wah()));
    case BitmapRep::kBitset: {
      std::vector<uint64_t> out(DenseWordCount(filter.num_positions()), 0);
      vb.ForEachSetBit([&](uint64_t p) {
        if (filter.Contains(p)) {
          uint64_t r = filter.Rank(p);
          out[r >> 6] |= uint64_t{1} << (r & 63);
        }
      });
      return ValueBitmap::FromDenseWords(std::move(out),
                                         filter.num_positions());
    }
  }
  return ValueBitmap();
}

std::vector<ValueBitmap> ToValueBitmaps(std::vector<WahBitmap> wahs) {
  std::vector<ValueBitmap> out;
  out.reserve(wahs.size());
  for (WahBitmap& wah : wahs) {
    out.push_back(ValueBitmap::FromWah(std::move(wah)));
  }
  return out;
}

}  // namespace cods

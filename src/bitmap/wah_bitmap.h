// Word-Aligned Hybrid (WAH) compressed bitmap, after Wu, Otoo &
// Shoshani, "Optimizing Bitmap Indices With Efficient Compression",
// TODS 31(1), 2006 — the compression scheme CODS stores all columns in.
//
// We use 64-bit code words with 63-bit payload groups:
//   * literal word: MSB = 0, low 63 bits hold one group of bitmap bits;
//   * fill word:    MSB = 1, bit 62 is the fill value, low 62 bits count
//                   how many consecutive 63-bit groups the fill covers.
//
// The bitmap is append-only (bits are appended at increasing positions)
// and kept in canonical form: adjacent equal fills are merged and a
// completed all-zero / all-one literal group is converted into (or merged
// with) a fill. Two bitmaps with the same logical content built through
// the append API therefore have identical words, which makes equality a
// cheap memcmp. Logical operations (bitmap/wah_ops.h) and the position
// filter (bitmap/wah_filter.h) consume and produce compressed words
// directly; nothing in this library ever materializes the uncompressed
// bit vector.

#ifndef CODS_BITMAP_WAH_BITMAP_H_
#define CODS_BITMAP_WAH_BITMAP_H_

#include <cstdint>
#include <string>
#include <utility>
#include <vector>

#include "common/logging.h"
#include "common/result.h"

namespace cods {

/// Number of payload bits per WAH group.
inline constexpr uint64_t kWahGroupBits = 63;

namespace wah {

inline constexpr uint64_t kFillFlag = uint64_t{1} << 63;
inline constexpr uint64_t kFillValueBit = uint64_t{1} << 62;
inline constexpr uint64_t kPayloadMask = (uint64_t{1} << 63) - 1;
inline constexpr uint64_t kFillCountMask = (uint64_t{1} << 62) - 1;

inline bool IsFill(uint64_t word) { return (word & kFillFlag) != 0; }
inline bool FillValue(uint64_t word) { return (word & kFillValueBit) != 0; }
inline uint64_t FillGroups(uint64_t word) { return word & kFillCountMask; }
inline uint64_t Literal(uint64_t word) { return word & kPayloadMask; }
inline uint64_t MakeFill(bool value, uint64_t groups) {
  return kFillFlag | (value ? kFillValueBit : 0) | groups;
}

}  // namespace wah

/// An append-only WAH-compressed bitmap.
class WahBitmap {
 public:
  /// Constructs an empty bitmap (zero bits).
  WahBitmap() = default;

  WahBitmap(const WahBitmap&) = default;
  WahBitmap& operator=(const WahBitmap&) = default;
  WahBitmap(WahBitmap&&) noexcept = default;
  WahBitmap& operator=(WahBitmap&&) noexcept = default;

  /// Builds a bitmap of `size` bits whose set positions are exactly
  /// `set_positions` (which must be strictly increasing and < size).
  static WahBitmap FromPositions(const std::vector<uint64_t>& set_positions,
                                 uint64_t size);

  /// Builds from a bool vector (test convenience).
  static WahBitmap FromBools(const std::vector<bool>& bits);

  /// Reassembles a bitmap from its raw representation (persistence
  /// path). Validates structural consistency: word kinds, bit counts,
  /// tail bounds; does NOT require canonical form, so bitmaps written by
  /// other producers load too.
  static Result<WahBitmap> FromRawParts(std::vector<uint64_t> words,
                                        uint64_t tail, uint64_t tail_bits,
                                        uint64_t num_bits);

  // ---- Appending -------------------------------------------------------

  /// Appends a single bit at the end.
  void AppendBit(bool value);

  /// Appends `count` copies of `value`.
  void AppendRun(bool value, uint64_t count);

  /// Appends zeros up to position `pos`, then a set bit, leaving the
  /// bitmap `pos + 1` bits long. Requires pos >= size().
  void AppendSetBit(uint64_t pos);

  /// Appends 63 bits given as a literal payload (low 63 bits of `payload`).
  /// Requires the current size to be a multiple of 63 (i.e. group aligned).
  void AppendGroup(uint64_t payload);

  /// Appends the low `nbits` (<= 63) bits of `payload`, at any alignment.
  /// The group-straddling shift is done word-at-a-time, so appending a
  /// whole group costs O(1) regardless of its bit pattern.
  void AppendBits(uint64_t payload, uint64_t nbits);

  /// Appends the full content of `other` after this bitmap's bits. When
  /// this bitmap is group-aligned (size() % 63 == 0) the code words of
  /// `other` are spliced in directly — O(#words of other), no per-bit
  /// re-canonicalization; otherwise each group is shifted in via
  /// AppendBits (still O(1) per group).
  void Concat(const WahBitmap& other);

  /// Capacity hint for append-heavy builders: reserves room for `words`
  /// compressed code words.
  void Reserve(uint64_t words) { words_.reserve(words); }

  /// Resets to an empty bitmap, retaining the word vector's capacity
  /// (builders that recycle a bitmap as an output buffer stop
  /// allocating once it reaches steady-state size).
  void Clear() {
    words_.clear();
    tail_ = 0;
    tail_bits_ = 0;
    num_bits_ = 0;
    ones_ = 0;
  }

  /// Swaps the full representation with `other`. O(1).
  void Swap(WahBitmap& other) noexcept {
    words_.swap(other.words_);
    std::swap(tail_, other.tail_);
    std::swap(tail_bits_, other.tail_bits_);
    std::swap(num_bits_, other.num_bits_);
    std::swap(ones_, other.ones_);
  }

  // ---- Mutating logical ops (implemented in bitmap/wah_ops.cc) ---------
  //
  // Fold-accumulator convenience for callers that cannot batch their
  // operands into a WahOrMany/WahAndMany call. O(1) when either side is
  // a homogeneous fill (an untouched or saturated/annihilated
  // accumulator, a homogeneous operand). Otherwise one streaming merge
  // into a recycled thread-local buffer that is swapped in as the new
  // representation; the displaced accumulator vector becomes the next
  // call's buffer, so fold loops stop allocating once the buffer
  // reaches steady-state capacity.

  /// this |= other. Requires equal sizes.
  void OrWith(const WahBitmap& other);

  /// this &= other. Requires equal sizes.
  void AndWith(const WahBitmap& other);

  // ---- Inspection ------------------------------------------------------

  /// Logical length in bits.
  uint64_t size() const { return num_bits_; }
  bool empty() const { return num_bits_ == 0; }

  /// Value of the bit at `pos`. O(#code words); intended for tests and
  /// point lookups, not bulk scans (use iterators for those).
  bool Get(uint64_t pos) const;

  /// Number of set bits. O(1): the count is maintained incrementally by
  /// every append path (and computed once in FromRawParts), so the
  /// per-value popcount histograms the query layer reads are free.
  uint64_t CountOnes() const { return ones_; }

  /// Position of the first set bit, or size() if none. Used by the
  /// decomposition "distinction" step.
  uint64_t FirstSetBit() const;

  /// True iff no bit is set. O(1) via the cached popcount.
  bool IsAllZeros() const { return ones_ == 0; }

  /// True iff every bit is set. O(1) via the cached popcount.
  bool IsAllOnes() const { return ones_ == num_bits_; }

  /// Compressed size in bytes (code words + active tail group).
  uint64_t SizeBytes() const { return (words_.size() + 1) * sizeof(uint64_t); }

  /// Number of compressed code words.
  uint64_t NumWords() const { return words_.size(); }

  const std::vector<uint64_t>& words() const { return words_; }
  uint64_t tail() const { return tail_; }
  uint64_t tail_bits() const { return tail_bits_; }

  /// Content equality. Because append keeps canonical form, this is a
  /// straight comparison of the representation.
  bool Equals(const WahBitmap& other) const {
    return num_bits_ == other.num_bits_ && tail_ == other.tail_ &&
           words_ == other.words_;
  }
  friend bool operator==(const WahBitmap& a, const WahBitmap& b) {
    return a.Equals(b);
  }

  /// Debug rendering, e.g. "[F0x3|L:101..|F1x2] tail=01 (197 bits)".
  std::string ToString() const;

  /// Decompresses into a bool vector (test oracle only).
  std::vector<bool> ToBools() const;

  /// Collects the positions of all set bits.
  std::vector<uint64_t> SetPositions() const;

 private:
  friend class WahDecoder;

  // Flushes the completed 63-bit tail group into words_, merging with a
  // trailing fill when the group is homogeneous.
  void FlushTailGroup();
  // Appends `groups` full fill groups of `value` directly to words_.
  void AppendFillGroups(bool value, uint64_t groups);

  std::vector<uint64_t> words_;
  uint64_t tail_ = 0;       // bits of the current partial group (LSB-first)
  uint64_t tail_bits_ = 0;  // how many bits of tail_ are valid (0..62)
  uint64_t num_bits_ = 0;   // logical size
  uint64_t ones_ = 0;       // cached popcount, maintained on every append
};

/// Streaming run decoder over a WahBitmap. Exposes the bitmap as a
/// sequence of "runs": either one literal 63-bit group or a fill covering
/// `remaining_groups()` groups. The final partial group (if any) is
/// exposed as a literal group whose bits above the logical size are zero;
/// callers that care about exact sizes should track bit counts themselves
/// (the logical ops do).
class WahDecoder {
 public:
  explicit WahDecoder(const WahBitmap& bm);

  /// True when all groups (including the partial tail) are consumed.
  bool exhausted() const { return exhausted_; }

  /// Whether the current run is a fill.
  bool is_fill() const { return is_fill_; }
  /// Fill value of the current fill run.
  bool fill_value() const { return fill_value_; }
  /// Groups remaining in the current run (>= 1 unless exhausted).
  uint64_t remaining_groups() const { return remaining_groups_; }
  /// Payload of the current group: the literal payload, or the expanded
  /// fill pattern (all zeros / all ones).
  uint64_t group_payload() const;

  /// Consumes `groups` groups from the current run. Must be
  /// <= remaining_groups(); advances to the next code word as needed.
  void Consume(uint64_t groups);

 private:
  void LoadNext();

  const WahBitmap* bm_;
  size_t word_index_ = 0;
  bool tail_emitted_ = false;
  bool exhausted_ = false;
  bool is_fill_ = false;
  bool fill_value_ = false;
  uint64_t remaining_groups_ = 0;
  uint64_t literal_ = 0;
};

/// Iterates the positions of set bits of a WahBitmap in increasing order,
/// skipping zero fills in O(1) per fill word.
class WahSetBitIterator {
 public:
  explicit WahSetBitIterator(const WahBitmap& bm);

  /// Stores the next set position in *pos and returns true, or returns
  /// false when the iteration is done.
  bool Next(uint64_t* pos);

 private:
  WahDecoder decoder_;
  uint64_t group_start_ = 0;   // bit offset of the current group
  uint64_t pending_ = 0;       // unread set bits of the current group
  uint64_t logical_size_;
};

/// Iterates maximal runs of consecutive equal bits as (value, start,
/// length) triples. Used by the row-order column scanner.
class WahRunIterator {
 public:
  explicit WahRunIterator(const WahBitmap& bm);

  struct Run {
    bool value;
    uint64_t start;
    uint64_t length;
  };

  /// Fetches the next maximal run; false at end.
  bool Next(Run* run);

 private:
  // Pulls the next primitive (non-maximal) run from the decoder.
  bool NextPrimitive(bool* value, uint64_t* length);

  WahDecoder decoder_;
  uint64_t pos_ = 0;
  uint64_t logical_size_;
  uint64_t emitted_or_buffered_ = 0;  // bits pulled from the decoder so far
  uint64_t group_bits_left_ = 0;  // unread bits in current literal group
  uint64_t group_ = 0;
  bool have_carry_ = false;
  bool carry_value_ = false;
  uint64_t carry_length_ = 0;
};

}  // namespace cods

#endif  // CODS_BITMAP_WAH_BITMAP_H_

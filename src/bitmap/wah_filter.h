// "Bitmap filtering" (CODS §2.4, step 2): shrink a bitmap by keeping only
// the bits at a sorted list of positions. This is the core primitive of
// the decomposition operator — the new table's bitmaps are produced
// directly from the old table's compressed bitmaps, without decompressing
// either side: fills translate to runs in the output, and only literal
// groups that actually contain probed positions are touched.

#ifndef CODS_BITMAP_WAH_FILTER_H_
#define CODS_BITMAP_WAH_FILTER_H_

#include <cstdint>
#include <vector>

#include "bitmap/wah_bitmap.h"

namespace cods {

/// Returns a bitmap B' of length positions.size() with
/// B'[j] = src[positions[j]].
///
/// `positions` must be strictly increasing and every element must be
/// < src.size(). Runs in O(#code words of src + positions.size()).
WahBitmap WahFilterPositions(const WahBitmap& src,
                             const std::vector<uint64_t>& positions);

/// Returns a bitmap of length `row_count` whose bit r is src[take[r]],
/// where `take` need NOT be sorted (gather). Costs one pass over the
/// compressed words per *sorted run* of take; used by tests as a
/// reference and by the general mergence for small inputs.
WahBitmap WahGatherPositions(const WahBitmap& src,
                             const std::vector<uint64_t>& take);

/// Reusable position filter for shrinking MANY bitmaps by the SAME
/// position list (the decomposition case: every bitmap of every affected
/// column is filtered by one distinction list).
///
/// WahFilterPositions costs O(code words + |positions|) per bitmap; over
/// a column with v bitmaps that is O(v·|positions|), which dominates at
/// high cardinality. This class builds a membership-plus-rank index over
/// the position list once (O(domain/64) space) and then filters each
/// bitmap in O(set bits + output runs): each set bit of the source maps
/// to its rank in the position list in O(1).
class WahPositionFilter {
 public:
  /// `positions` must be strictly increasing, all < domain.
  WahPositionFilter(const std::vector<uint64_t>& positions, uint64_t domain);

  /// Returns B' of length positions.size() with B'[j] = src[positions[j]].
  /// src.size() must equal the domain.
  WahBitmap Filter(const WahBitmap& src) const;

  /// True if `pos` is in the position list.
  bool Contains(uint64_t pos) const;
  /// Rank of `pos` in the position list (index j with positions[j] ==
  /// pos). Requires Contains(pos).
  uint64_t Rank(uint64_t pos) const;

  uint64_t domain() const { return domain_; }
  uint64_t num_positions() const { return num_positions_; }

 private:
  uint64_t domain_ = 0;
  uint64_t num_positions_ = 0;
  std::vector<uint64_t> member_words_;  // membership bitset over [0,domain)
  std::vector<uint64_t> rank_prefix_;   // ranks before each 64-bit word
};

}  // namespace cods

#endif  // CODS_BITMAP_WAH_FILTER_H_

#include "bitmap/wah_filter.h"

#include <bit>

namespace cods {

WahBitmap WahFilterPositions(const WahBitmap& src,
                             const std::vector<uint64_t>& positions) {
  WahBitmap out;
  if (positions.empty()) return out;
  CODS_CHECK(positions.back() < src.size())
      << "position list reaches past the bitmap (" << positions.back()
      << " >= " << src.size() << ")";
  WahDecoder dec(src);
  uint64_t offset = 0;  // bit offset of the current run within src
  size_t i = 0;
  const size_t n = positions.size();
  while (i < n && !dec.exhausted()) {
    if (dec.is_fill()) {
      uint64_t groups = dec.remaining_groups();
      uint64_t span = groups * kWahGroupBits;
      uint64_t end = offset + span;
      size_t j = i;
      while (j < n && positions[j] < end) ++j;
      if (j > i) {
        out.AppendRun(dec.fill_value(), j - i);
        i = j;
      }
      dec.Consume(groups);
      offset = end;
    } else {
      uint64_t payload = dec.group_payload();
      uint64_t end = offset + kWahGroupBits;
      while (i < n && positions[i] < end) {
        CODS_DCHECK(positions[i] >= offset);
        out.AppendBit((payload >> (positions[i] - offset)) & 1);
        ++i;
      }
      dec.Consume(1);
      offset = end;
    }
  }
  CODS_CHECK(i == n) << "position list reaches past the bitmap ("
                     << positions.back() << " >= " << src.size() << ")";
  return out;
}

WahPositionFilter::WahPositionFilter(const std::vector<uint64_t>& positions,
                                     uint64_t domain)
    : domain_(domain),
      num_positions_(positions.size()),
      member_words_((domain + 63) / 64, 0),
      rank_prefix_((domain + 63) / 64 + 1, 0) {
  for (size_t i = 0; i < positions.size(); ++i) {
    uint64_t pos = positions[i];
    CODS_CHECK(pos < domain) << "position " << pos << " outside domain "
                             << domain;
    if (i > 0) {
      CODS_DCHECK(positions[i - 1] < pos);
    }
    member_words_[pos / 64] |= uint64_t{1} << (pos % 64);
  }
  uint64_t running = 0;
  for (size_t w = 0; w < member_words_.size(); ++w) {
    rank_prefix_[w] = running;
    running += static_cast<uint64_t>(std::popcount(member_words_[w]));
  }
  rank_prefix_[member_words_.size()] = running;
  CODS_CHECK(running == num_positions_);
}

bool WahPositionFilter::Contains(uint64_t pos) const {
  CODS_DCHECK(pos < domain_);
  return (member_words_[pos / 64] >> (pos % 64)) & 1;
}

uint64_t WahPositionFilter::Rank(uint64_t pos) const {
  CODS_DCHECK(Contains(pos));
  uint64_t word = member_words_[pos / 64] & ((uint64_t{1} << (pos % 64)) - 1);
  return rank_prefix_[pos / 64] +
         static_cast<uint64_t>(std::popcount(word));
}

WahBitmap WahPositionFilter::Filter(const WahBitmap& src) const {
  CODS_CHECK(src.size() == domain_)
      << "filter domain " << domain_ << " != bitmap size " << src.size();
  WahBitmap out;
  WahSetBitIterator it(src);
  uint64_t pos;
  while (it.Next(&pos)) {
    if (Contains(pos)) {
      out.AppendSetBit(Rank(pos));
    }
  }
  out.AppendRun(false, num_positions_ - out.size());
  return out;
}

WahBitmap WahGatherPositions(const WahBitmap& src,
                             const std::vector<uint64_t>& take) {
  WahBitmap out;
  // Process maximal sorted runs of `take` with the streaming filter; a
  // fully sorted input degenerates to one WahFilterPositions call.
  size_t start = 0;
  while (start < take.size()) {
    size_t end = start + 1;
    while (end < take.size() && take[end] > take[end - 1]) ++end;
    std::vector<uint64_t> chunk(take.begin() + static_cast<ptrdiff_t>(start),
                                take.begin() + static_cast<ptrdiff_t>(end));
    WahBitmap part = WahFilterPositions(src, chunk);
    out.Concat(part);
    start = end;
  }
  return out;
}

}  // namespace cods

// Density-adaptive per-value bitmap codec (Roaring-style containers).
//
// A dictionary column stores one bitmap per distinct value, and their
// densities span orders of magnitude: in a high-cardinality dictionary
// most values mark a handful of rows (the bitmap is almost all zero
// fill), while a skewed column has a few values covering most rows. One
// representation cannot be optimal for both, so `ValueBitmap` picks one
// of three per value:
//
//   * kArray  — sorted uint32_t positions, for sparse values. AND/OR
//               become galloping sorted-set merges over just the set
//               positions; a position filter is a per-element rank.
//   * kWah    — the paper's WAH runs (bitmap/wah_bitmap.h), for the
//               mixed regime and as the interchange form every kernel
//               can produce and consume.
//   * kBitset — raw uint64_t words, for dense values. AND/OR/count are
//               word-parallel loops the compiler auto-vectorizes;
//               std::popcount does the counting.
//
// Determinism contract (extends the canonical-form contract of
// WahBitmap): the representation is a pure function of
// (popcount, size) — ChooseBitmapRep — and every constructor routes
// through it, so two ValueBitmaps holding the same row set are
// representation-identical no matter which thread count or code path
// built them. Equality therefore stays a payload comparison, and the
// staged-commit / parallel-build bit-identity proofs carry over
// unchanged.
//
// Every container caches its popcount; CountOnes is O(1) everywhere
// (these are the exact histograms the cost advisor and the future
// planner read).

#ifndef CODS_BITMAP_CODEC_H_
#define CODS_BITMAP_CODEC_H_

#include <atomic>
#include <bit>
#include <cstdint>
#include <string>
#include <vector>

#include "bitmap/wah_bitmap.h"
#include "common/logging.h"
#include "common/result.h"

namespace cods {

class WahPositionFilter;

/// The three container kinds. Values are the serde v3 wire tags.
enum class BitmapRep : uint8_t { kArray = 0, kWah = 1, kBitset = 2 };

const char* BitmapRepName(BitmapRep rep);

/// The deterministic density rule. Pure in (ones, size):
///   * homogeneous (ones == 0 or ones == size) -> kWah: one fill word
///     beats both an empty position list's header and a solid bitset;
///   * ones <= size/64 -> kArray: 4 bytes per position is at most half
///     the bitset's bytes, and kernels touch only set positions;
///   * ones >= (size+3)/4 -> kBitset: at >= 25% density WAH literals
///     dominate anyway, so drop to raw words and vectorize;
///   * otherwise -> kWah.
/// Positions are stored as uint32_t, so bitmaps longer than 2^32 bits
/// never choose kArray.
BitmapRep ChooseBitmapRep(uint64_t ones, uint64_t size);

/// Process-wide codec observability (cods_shell `.stats`). Relaxed
/// atomics: counts are advisory, never synchronization.
struct CodecStats {
  std::atomic<uint64_t> popcount_hits{0};  // O(1) CountOnes served
  std::atomic<uint64_t> array_built{0};
  std::atomic<uint64_t> wah_built{0};
  std::atomic<uint64_t> bitset_built{0};
};
CodecStats& GlobalCodecStats();

/// One per-value bitmap behind the density-adaptive codec.
class ValueBitmap {
 public:
  /// Empty bitmap (zero bits), kWah representation.
  ValueBitmap() = default;

  ValueBitmap(const ValueBitmap&) = default;
  ValueBitmap& operator=(const ValueBitmap&) = default;
  ValueBitmap(ValueBitmap&&) noexcept = default;
  ValueBitmap& operator=(ValueBitmap&&) noexcept = default;

  /// Wraps a WAH bitmap, re-encoding into the density-chosen container.
  static ValueBitmap FromWah(WahBitmap wah);

  /// Builds from strictly increasing set positions (< size).
  static ValueBitmap FromPositions(std::vector<uint32_t> positions,
                                   uint64_t size);

  /// Builds from `(size + 63) / 64` dense words; bits at and above
  /// `size` must be zero.
  static ValueBitmap FromDenseWords(std::vector<uint64_t> words,
                                    uint64_t size);

  /// Persistence path: reassembles from a representation tag and its raw
  /// payload (exactly one of the three payloads is non-empty, matching
  /// `rep`). Validates structural soundness AND that `rep` is the one
  /// ChooseBitmapRep picks for the payload's density — a foreign or
  /// corrupted image cannot smuggle in a non-canonical container.
  static Result<ValueBitmap> FromRawParts(BitmapRep rep, uint64_t size,
                                          std::vector<uint32_t> positions,
                                          WahBitmap wah,
                                          std::vector<uint64_t> words);

  // ---- Inspection ------------------------------------------------------

  BitmapRep rep() const { return rep_; }
  uint64_t size() const { return size_; }
  bool empty() const { return size_ == 0; }

  /// O(1): cached at construction for every representation.
  uint64_t CountOnes() const {
    GlobalCodecStats().popcount_hits.fetch_add(1, std::memory_order_relaxed);
    return ones_;
  }
  bool IsAllZeros() const { return ones_ == 0; }
  bool IsAllOnes() const { return ones_ == size_; }

  /// Value of the bit at `pos`. O(log ones) for kArray, O(1) for
  /// kBitset, O(words) for kWah.
  bool Get(uint64_t pos) const;

  /// Position of the first set bit, or size() if none.
  uint64_t FirstSetBit() const;

  /// Positions of all set bits, increasing.
  std::vector<uint64_t> SetPositions() const;

  /// Calls `fn(uint64_t pos)` for each set bit in increasing order.
  template <typename Fn>
  void ForEachSetBit(Fn&& fn) const {
    switch (rep_) {
      case BitmapRep::kArray:
        for (uint32_t p : positions_) fn(static_cast<uint64_t>(p));
        return;
      case BitmapRep::kWah: {
        WahSetBitIterator it(wah_);
        uint64_t pos;
        while (it.Next(&pos)) fn(pos);
        return;
      }
      case BitmapRep::kBitset:
        for (size_t w = 0; w < words_.size(); ++w) {
          uint64_t word = words_[w];
          while (word != 0) {
            fn(w * 64 + static_cast<uint64_t>(std::countr_zero(word)));
            word &= word - 1;
          }
        }
        return;
    }
  }

  /// Re-encodes into the canonical WAH interchange form.
  WahBitmap ToWah() const;

  /// Appends this bitmap's full content after `out`'s bits (the UNION
  /// concatenation path). Equivalent to out->Concat(ToWah()) without
  /// materializing the intermediate.
  void AppendToWah(WahBitmap* out) const;

  /// Bytes of the active container's payload.
  uint64_t SizeBytes() const;

  /// Bytes a raw bitset of this size would take (the `.stats`
  /// compression-ratio denominator).
  uint64_t DenseSizeBytes() const { return ((size_ + 63) / 64) * 8; }

  /// Content equality. Because the representation is a pure function of
  /// content, this compares rep + payload directly.
  bool Equals(const ValueBitmap& other) const;
  friend bool operator==(const ValueBitmap& a, const ValueBitmap& b) {
    return a.Equals(b);
  }

  std::string ToString() const;

  /// Structural + canonical-form check (ValidateInvariants, serde):
  /// expected size, in-range sorted-unique positions / zeroed bitset
  /// slack, cached popcount consistent, representation the one
  /// ChooseBitmapRep mandates.
  Status Validate(uint64_t expected_size) const;

  // ---- Payload accessors (kernels, serde) ------------------------------

  const std::vector<uint32_t>& array_positions() const {
    CODS_DCHECK(rep_ == BitmapRep::kArray);
    return positions_;
  }
  const WahBitmap& wah() const {
    CODS_DCHECK(rep_ == BitmapRep::kWah);
    return wah_;
  }
  const std::vector<uint64_t>& bitset_words() const {
    CODS_DCHECK(rep_ == BitmapRep::kBitset);
    return words_;
  }

 private:
  BitmapRep rep_ = BitmapRep::kWah;
  uint64_t size_ = 0;
  uint64_t ones_ = 0;
  std::vector<uint32_t> positions_;  // kArray: sorted set positions
  WahBitmap wah_;                    // kWah
  std::vector<uint64_t> words_;      // kBitset: (size+63)/64 words
};

// ---- Kernels (specialized per representation pair) -----------------------
//
// All pairwise kernels require a.size() == b.size(). Results are
// ValueBitmaps in their own density-chosen representation; the *Wah
// variants produce canonical WAH directly for callers on the interchange
// form (query selections).

ValueBitmap CodecAnd(const ValueBitmap& a, const ValueBitmap& b);
ValueBitmap CodecOr(const ValueBitmap& a, const ValueBitmap& b);
ValueBitmap CodecNot(const ValueBitmap& a);

/// |a & b| without materializing — the GROUP BY / join-classification
/// histogram kernel: galloping for array pairs, word-AND + popcount for
/// bitset pairs, run-walks against WAH.
uint64_t CodecAndCount(const ValueBitmap& a, const ValueBitmap& b);

/// a & selection as canonical WAH (the WHERE-narrowing path).
WahBitmap CodecAndWah(const ValueBitmap& a, const WahBitmap& selection);

/// |a & selection| without materializing.
uint64_t CodecAndCountWah(const ValueBitmap& a, const WahBitmap& selection);

/// k-way union over value bitmaps into canonical WAH (EvalLeafBitmap:
/// the per-predicate OR over qualifying values). All-WAH operand sets
/// take the single-pass heap merge; any array/bitset operand switches to
/// a dense word accumulator (scatter for arrays, word-OR for bitsets,
/// run-deposit for WAH) re-encoded canonically, so the result is
/// bit-identical either way.
WahBitmap CodecOrManyWah(const std::vector<const ValueBitmap*>& operands,
                         uint64_t size);

/// Count-only k-way union (the ValidateInvariants coverage check).
uint64_t CodecOrManyCount(const std::vector<const ValueBitmap*>& operands,
                          uint64_t size);

/// Row-subset projection through a position filter (PARTITION / SELECT
/// materialization): keeps the bits at the filter's positions, re-based
/// onto the filtered domain. Per-element Contains/Rank for arrays and
/// bitset set-bits; the compressed-domain WahPositionFilter::Filter for
/// WAH.
ValueBitmap CodecFilter(const WahPositionFilter& filter,
                        const ValueBitmap& vb);

/// Converts a freshly built WAH vector into codec form (serial; callers
/// with an ExecContext parallelize per element themselves).
std::vector<ValueBitmap> ToValueBitmaps(std::vector<WahBitmap> wahs);

}  // namespace cods

#endif  // CODS_BITMAP_CODEC_H_

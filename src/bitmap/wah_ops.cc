#include "bitmap/wah_ops.h"

#include <bit>

namespace cods {

namespace {

enum class OpKind { kAnd, kOr, kXor, kAndNot };

inline uint64_t ApplyOp(OpKind op, uint64_t x, uint64_t y) {
  switch (op) {
    case OpKind::kAnd:
      return x & y;
    case OpKind::kOr:
      return x | y;
    case OpKind::kXor:
      return x ^ y;
    case OpKind::kAndNot:
      return x & ~y;
  }
  return 0;
}

// Consumes `groups` groups from `dec`, crossing run boundaries as needed.
void ConsumeAcross(WahDecoder& dec, uint64_t groups) {
  while (groups > 0) {
    CODS_DCHECK(!dec.exhausted());
    uint64_t take = dec.remaining_groups();
    if (take > groups) take = groups;
    dec.Consume(take);
    groups -= take;
  }
}

// Shared driver for the binary operations. `emit` is called with either
// (fill_value, group_count) runs or literal payloads; this keeps the
// fill-skipping logic in one place. We instantiate it twice: once
// building an output bitmap, once only counting.
template <typename FillSink, typename LiteralSink>
void RunBinaryOp(const WahBitmap& a, const WahBitmap& b, OpKind op,
                 FillSink&& emit_fill, LiteralSink&& emit_literal) {
  CODS_CHECK(a.size() == b.size())
      << "WAH binary op on different sizes: " << a.size() << " vs "
      << b.size();
  uint64_t bits_left = a.size();
  WahDecoder da(a);
  WahDecoder db(b);
  while (bits_left > 0) {
    CODS_DCHECK(!da.exhausted() && !db.exhausted());
    // Fast paths: a zero fill annihilates AND/ANDNOT; a one fill
    // saturates OR. These skip whole runs of the other operand.
    if (da.is_fill() || db.is_fill()) {
      bool a_is_zero_fill = da.is_fill() && !da.fill_value();
      bool b_is_zero_fill = db.is_fill() && !db.fill_value();
      bool a_is_one_fill = da.is_fill() && da.fill_value();
      bool b_is_one_fill = db.is_fill() && db.fill_value();
      uint64_t skip = 0;
      bool out_value = false;
      bool take_from_a = false;
      if ((op == OpKind::kAnd || op == OpKind::kAndNot) && a_is_zero_fill) {
        skip = da.remaining_groups();
        out_value = false;
        take_from_a = true;
      } else if (op == OpKind::kAnd && b_is_zero_fill) {
        skip = db.remaining_groups();
        out_value = false;
        take_from_a = false;
      } else if (op == OpKind::kAndNot && b_is_one_fill) {
        skip = db.remaining_groups();
        out_value = false;
        take_from_a = false;
      } else if (op == OpKind::kOr && a_is_one_fill) {
        skip = da.remaining_groups();
        out_value = true;
        take_from_a = true;
      } else if (op == OpKind::kOr && b_is_one_fill) {
        skip = db.remaining_groups();
        out_value = true;
        take_from_a = false;
      }
      if (skip > 0) {
        emit_fill(out_value, skip);
        if (take_from_a) {
          da.Consume(skip);
          ConsumeAcross(db, skip);
        } else {
          db.Consume(skip);
          ConsumeAcross(da, skip);
        }
        bits_left -= skip * kWahGroupBits;
        continue;
      }
    }
    if (da.is_fill() && db.is_fill()) {
      uint64_t groups = da.remaining_groups() < db.remaining_groups()
                            ? da.remaining_groups()
                            : db.remaining_groups();
      bool value = ApplyOp(op, da.fill_value() ? 1 : 0,
                           db.fill_value() ? 1 : 0) != 0;
      emit_fill(value, groups);
      da.Consume(groups);
      db.Consume(groups);
      bits_left -= groups * kWahGroupBits;
      continue;
    }
    uint64_t payload = ApplyOp(op, da.group_payload(), db.group_payload()) &
                       wah::kPayloadMask;
    uint64_t bits = bits_left < kWahGroupBits ? bits_left : kWahGroupBits;
    emit_literal(payload, bits);
    da.Consume(1);
    db.Consume(1);
    bits_left -= bits;
  }
}

WahBitmap BinaryOp(const WahBitmap& a, const WahBitmap& b, OpKind op) {
  WahBitmap out;
  RunBinaryOp(
      a, b, op,
      [&](bool value, uint64_t groups) {
        out.AppendRun(value, groups * kWahGroupBits);
      },
      [&](uint64_t payload, uint64_t bits) { out.AppendBits(payload, bits); });
  return out;
}

// Shared driver for the k-way operations; `op` must be kAnd or kOr.
// Walks one decoder per operand in lockstep and emits (fill value, group
// count) runs or combined literal payloads, exactly like RunBinaryOp but
// for arbitrary k. Callers handle k == 0 and k == 1 themselves.
template <typename FillSink, typename LiteralSink>
void RunManyOp(const std::vector<const WahBitmap*>& operands, OpKind op,
               uint64_t size, FillSink&& emit_fill,
               LiteralSink&& emit_literal) {
  const bool is_or = op == OpKind::kOr;
  // The fill value that determines the output regardless of the other
  // operands (OR: ones; AND: zeros). Identity fills are its complement.
  const bool annihilator = is_or;
  std::vector<WahDecoder> decs;
  decs.reserve(operands.size());
  for (const WahBitmap* bm : operands) decs.emplace_back(*bm);
  uint64_t bits_left = size;
  while (bits_left > 0) {
    uint64_t annihilate = 0;  // widest annihilating fill in sight
    uint64_t min_fill = ~uint64_t{0};
    bool all_fills = true;
    for (const WahDecoder& d : decs) {
      CODS_DCHECK(!d.exhausted());
      if (d.is_fill()) {
        if (d.fill_value() == annihilator &&
            d.remaining_groups() > annihilate) {
          annihilate = d.remaining_groups();
        }
        if (d.remaining_groups() < min_fill) min_fill = d.remaining_groups();
      } else {
        all_fills = false;
      }
    }
    if (annihilate > 0) {
      // Galloping skip: every other operand crosses `annihilate` groups
      // in whole-run steps without touching payload bits.
      emit_fill(annihilator, annihilate);
      for (WahDecoder& d : decs) ConsumeAcross(d, annihilate);
      bits_left -= annihilate * kWahGroupBits;
      continue;
    }
    if (all_fills) {
      // No annihilator in sight, so every fill carries the identity
      // value; the shortest one bounds the homogeneous span.
      emit_fill(!annihilator, min_fill);
      for (WahDecoder& d : decs) d.Consume(min_fill);
      bits_left -= min_fill * kWahGroupBits;
      continue;
    }
    uint64_t acc = is_or ? 0 : wah::kPayloadMask;
    if (is_or) {
      for (WahDecoder& d : decs) {
        acc |= d.group_payload();
        d.Consume(1);
      }
    } else {
      for (WahDecoder& d : decs) {
        acc &= d.group_payload();
        d.Consume(1);
      }
    }
    uint64_t bits = bits_left < kWahGroupBits ? bits_left : kWahGroupBits;
    emit_literal(acc & wah::kPayloadMask, bits);
    bits_left -= bits;
  }
}

// Size validation shared by the general merge and the k<=1 fast paths
// (the fold this replaces CHECK-ed every operand, so these do too).
void CheckOperandSizes(const std::vector<const WahBitmap*>& operands,
                       uint64_t size) {
  for (const WahBitmap* bm : operands) {
    CODS_CHECK(bm->size() == size)
        << "WAH k-way op operand of size " << bm->size() << ", want "
        << size;
  }
}

std::vector<const WahBitmap*> PointersTo(const std::vector<WahBitmap>& bms) {
  std::vector<const WahBitmap*> out;
  out.reserve(bms.size());
  for (const WahBitmap& bm : bms) out.push_back(&bm);
  return out;
}

WahBitmap ManyOp(const std::vector<const WahBitmap*>& operands, OpKind op,
                 uint64_t size) {
  CheckOperandSizes(operands, size);
  WahBitmap out;
  if (operands.empty()) {
    out.AppendRun(op == OpKind::kAnd, size);
    return out;
  }
  if (operands.size() == 1) return *operands[0];
  uint64_t max_words = 0;
  for (const WahBitmap* bm : operands) {
    if (bm->NumWords() > max_words) max_words = bm->NumWords();
  }
  out.Reserve(max_words);
  RunManyOp(
      operands, op, size,
      [&](bool value, uint64_t groups) {
        out.AppendRun(value, groups * kWahGroupBits);
      },
      [&](uint64_t payload, uint64_t bits) { out.AppendBits(payload, bits); });
  return out;
}

uint64_t ManyOpCount(const std::vector<const WahBitmap*>& operands, OpKind op,
                     uint64_t size) {
  CheckOperandSizes(operands, size);
  if (operands.empty()) return op == OpKind::kAnd ? size : 0;
  if (operands.size() == 1) return operands[0]->CountOnes();
  uint64_t ones = 0;
  RunManyOp(
      operands, op, size,
      [&](bool value, uint64_t groups) {
        if (value) ones += groups * kWahGroupBits;
      },
      [&](uint64_t payload, uint64_t bits) {
        if (bits < kWahGroupBits) payload &= (uint64_t{1} << bits) - 1;
        ones += static_cast<uint64_t>(std::popcount(payload));
      });
  return ones;
}

}  // namespace

WahBitmap WahAnd(const WahBitmap& a, const WahBitmap& b) {
  return BinaryOp(a, b, OpKind::kAnd);
}

WahBitmap WahOr(const WahBitmap& a, const WahBitmap& b) {
  return BinaryOp(a, b, OpKind::kOr);
}

WahBitmap WahXor(const WahBitmap& a, const WahBitmap& b) {
  return BinaryOp(a, b, OpKind::kXor);
}

WahBitmap WahAndNot(const WahBitmap& a, const WahBitmap& b) {
  return BinaryOp(a, b, OpKind::kAndNot);
}

WahBitmap WahNot(const WahBitmap& a) {
  WahBitmap out;
  uint64_t bits_left = a.size();
  WahDecoder dec(a);
  while (bits_left > 0) {
    CODS_DCHECK(!dec.exhausted());
    if (dec.is_fill()) {
      uint64_t groups = dec.remaining_groups();
      out.AppendRun(!dec.fill_value(), groups * kWahGroupBits);
      dec.Consume(groups);
      bits_left -= groups * kWahGroupBits;
    } else {
      uint64_t bits = bits_left < kWahGroupBits ? bits_left : kWahGroupBits;
      out.AppendBits(~dec.group_payload(), bits);
      dec.Consume(1);
      bits_left -= bits;
    }
  }
  return out;
}

uint64_t WahAndCount(const WahBitmap& a, const WahBitmap& b) {
  uint64_t ones = 0;
  RunBinaryOp(
      a, b, OpKind::kAnd,
      [&](bool value, uint64_t groups) {
        if (value) ones += groups * kWahGroupBits;
      },
      [&](uint64_t payload, uint64_t bits) {
        if (bits < kWahGroupBits) payload &= (uint64_t{1} << bits) - 1;
        ones += static_cast<uint64_t>(std::popcount(payload));
      });
  return ones;
}

WahBitmap WahOrMany(const std::vector<const WahBitmap*>& operands,
                    uint64_t size) {
  return ManyOp(operands, OpKind::kOr, size);
}

WahBitmap WahAndMany(const std::vector<const WahBitmap*>& operands,
                     uint64_t size) {
  return ManyOp(operands, OpKind::kAnd, size);
}

uint64_t WahOrManyCount(const std::vector<const WahBitmap*>& operands,
                        uint64_t size) {
  return ManyOpCount(operands, OpKind::kOr, size);
}

uint64_t WahAndManyCount(const std::vector<const WahBitmap*>& operands,
                         uint64_t size) {
  return ManyOpCount(operands, OpKind::kAnd, size);
}

WahBitmap WahOrMany(const std::vector<WahBitmap>& operands, uint64_t size) {
  return ManyOp(PointersTo(operands), OpKind::kOr, size);
}

WahBitmap WahAndMany(const std::vector<WahBitmap>& operands, uint64_t size) {
  return ManyOp(PointersTo(operands), OpKind::kAnd, size);
}

uint64_t WahOrManyCount(const std::vector<WahBitmap>& operands,
                        uint64_t size) {
  return ManyOpCount(PointersTo(operands), OpKind::kOr, size);
}

uint64_t WahAndManyCount(const std::vector<WahBitmap>& operands,
                         uint64_t size) {
  return ManyOpCount(PointersTo(operands), OpKind::kAnd, size);
}

void WahBitmap::OrWith(const WahBitmap& other) {
  CODS_CHECK(size() == other.size())
      << "WAH OrWith on different sizes: " << size() << " vs "
      << other.size();
  if (other.IsAllZeros() || IsAllOnes()) return;
  if (IsAllZeros() || other.IsAllOnes()) {
    *this = other;
    return;
  }
  *this = WahOr(*this, other);
}

void WahBitmap::AndWith(const WahBitmap& other) {
  CODS_CHECK(size() == other.size())
      << "WAH AndWith on different sizes: " << size() << " vs "
      << other.size();
  if (other.IsAllOnes() || IsAllZeros()) return;
  if (IsAllOnes() || other.IsAllZeros()) {
    *this = other;
    return;
  }
  *this = WahAnd(*this, other);
}

bool WahIntersects(const WahBitmap& a, const WahBitmap& b) {
  CODS_CHECK(a.size() == b.size());
  uint64_t bits_left = a.size();
  WahDecoder da(a);
  WahDecoder db(b);
  while (bits_left > 0) {
    CODS_DCHECK(!da.exhausted() && !db.exhausted());
    if (da.is_fill() && !da.fill_value()) {
      uint64_t groups = da.remaining_groups();
      da.Consume(groups);
      ConsumeAcross(db, groups);
      bits_left -= groups * kWahGroupBits;
      continue;
    }
    if (db.is_fill() && !db.fill_value()) {
      uint64_t groups = db.remaining_groups();
      db.Consume(groups);
      ConsumeAcross(da, groups);
      bits_left -= groups * kWahGroupBits;
      continue;
    }
    uint64_t bits = bits_left < kWahGroupBits ? bits_left : kWahGroupBits;
    uint64_t payload = da.group_payload() & db.group_payload();
    if (bits < kWahGroupBits) payload &= (uint64_t{1} << bits) - 1;
    if (payload != 0) return true;
    da.Consume(1);
    db.Consume(1);
    bits_left -= bits;
  }
  return false;
}

}  // namespace cods

#include "bitmap/wah_ops.h"

#include <bit>

namespace cods {

namespace {

enum class OpKind { kAnd, kOr, kXor, kAndNot };

inline uint64_t ApplyOp(OpKind op, uint64_t x, uint64_t y) {
  switch (op) {
    case OpKind::kAnd:
      return x & y;
    case OpKind::kOr:
      return x | y;
    case OpKind::kXor:
      return x ^ y;
    case OpKind::kAndNot:
      return x & ~y;
  }
  return 0;
}

// Consumes `groups` groups from `dec`, crossing run boundaries as needed.
void ConsumeAcross(WahDecoder& dec, uint64_t groups) {
  while (groups > 0) {
    CODS_DCHECK(!dec.exhausted());
    uint64_t take = dec.remaining_groups();
    if (take > groups) take = groups;
    dec.Consume(take);
    groups -= take;
  }
}

// Shared driver for the binary operations. `emit` is called with either
// (fill_value, group_count) runs or literal payloads; this keeps the
// fill-skipping logic in one place. We instantiate it twice: once
// building an output bitmap, once only counting.
template <typename FillSink, typename LiteralSink>
void RunBinaryOp(const WahBitmap& a, const WahBitmap& b, OpKind op,
                 FillSink&& emit_fill, LiteralSink&& emit_literal) {
  CODS_CHECK(a.size() == b.size())
      << "WAH binary op on different sizes: " << a.size() << " vs "
      << b.size();
  uint64_t bits_left = a.size();
  WahDecoder da(a);
  WahDecoder db(b);
  while (bits_left > 0) {
    CODS_DCHECK(!da.exhausted() && !db.exhausted());
    // Fast paths: a zero fill annihilates AND/ANDNOT; a one fill
    // saturates OR. These skip whole runs of the other operand.
    if (da.is_fill() || db.is_fill()) {
      bool a_is_zero_fill = da.is_fill() && !da.fill_value();
      bool b_is_zero_fill = db.is_fill() && !db.fill_value();
      bool a_is_one_fill = da.is_fill() && da.fill_value();
      bool b_is_one_fill = db.is_fill() && db.fill_value();
      uint64_t skip = 0;
      bool out_value = false;
      bool take_from_a = false;
      if ((op == OpKind::kAnd || op == OpKind::kAndNot) && a_is_zero_fill) {
        skip = da.remaining_groups();
        out_value = false;
        take_from_a = true;
      } else if (op == OpKind::kAnd && b_is_zero_fill) {
        skip = db.remaining_groups();
        out_value = false;
        take_from_a = false;
      } else if (op == OpKind::kAndNot && b_is_one_fill) {
        skip = db.remaining_groups();
        out_value = false;
        take_from_a = false;
      } else if (op == OpKind::kOr && a_is_one_fill) {
        skip = da.remaining_groups();
        out_value = true;
        take_from_a = true;
      } else if (op == OpKind::kOr && b_is_one_fill) {
        skip = db.remaining_groups();
        out_value = true;
        take_from_a = false;
      }
      if (skip > 0) {
        emit_fill(out_value, skip);
        if (take_from_a) {
          da.Consume(skip);
          ConsumeAcross(db, skip);
        } else {
          db.Consume(skip);
          ConsumeAcross(da, skip);
        }
        bits_left -= skip * kWahGroupBits;
        continue;
      }
    }
    if (da.is_fill() && db.is_fill()) {
      uint64_t groups = da.remaining_groups() < db.remaining_groups()
                            ? da.remaining_groups()
                            : db.remaining_groups();
      bool value = ApplyOp(op, da.fill_value() ? 1 : 0,
                           db.fill_value() ? 1 : 0) != 0;
      emit_fill(value, groups);
      da.Consume(groups);
      db.Consume(groups);
      bits_left -= groups * kWahGroupBits;
      continue;
    }
    uint64_t payload = ApplyOp(op, da.group_payload(), db.group_payload()) &
                       wah::kPayloadMask;
    uint64_t bits = bits_left < kWahGroupBits ? bits_left : kWahGroupBits;
    emit_literal(payload, bits);
    da.Consume(1);
    db.Consume(1);
    bits_left -= bits;
  }
}

WahBitmap BinaryOp(const WahBitmap& a, const WahBitmap& b, OpKind op) {
  WahBitmap out;
  RunBinaryOp(
      a, b, op,
      [&](bool value, uint64_t groups) {
        out.AppendRun(value, groups * kWahGroupBits);
      },
      [&](uint64_t payload, uint64_t bits) {
        if (bits == kWahGroupBits) {
          out.AppendGroup(payload);
        } else {
          // Final partial group: mask garbage above the logical size.
          payload &= (uint64_t{1} << bits) - 1;
          for (uint64_t consumed = 0; consumed < bits;) {
            bool bit = (payload >> consumed) & 1;
            uint64_t x = (bit ? ~payload : payload) >> consumed;
            uint64_t run =
                x == 0 ? 64 : static_cast<uint64_t>(std::countr_zero(x));
            if (run > bits - consumed) run = bits - consumed;
            out.AppendRun(bit, run);
            consumed += run;
          }
        }
      });
  return out;
}

}  // namespace

WahBitmap WahAnd(const WahBitmap& a, const WahBitmap& b) {
  return BinaryOp(a, b, OpKind::kAnd);
}

WahBitmap WahOr(const WahBitmap& a, const WahBitmap& b) {
  return BinaryOp(a, b, OpKind::kOr);
}

WahBitmap WahXor(const WahBitmap& a, const WahBitmap& b) {
  return BinaryOp(a, b, OpKind::kXor);
}

WahBitmap WahAndNot(const WahBitmap& a, const WahBitmap& b) {
  return BinaryOp(a, b, OpKind::kAndNot);
}

WahBitmap WahNot(const WahBitmap& a) {
  WahBitmap out;
  uint64_t bits_left = a.size();
  WahDecoder dec(a);
  while (bits_left > 0) {
    CODS_DCHECK(!dec.exhausted());
    if (dec.is_fill()) {
      uint64_t groups = dec.remaining_groups();
      out.AppendRun(!dec.fill_value(), groups * kWahGroupBits);
      dec.Consume(groups);
      bits_left -= groups * kWahGroupBits;
    } else {
      uint64_t bits = bits_left < kWahGroupBits ? bits_left : kWahGroupBits;
      uint64_t payload = ~dec.group_payload() & ((bits == kWahGroupBits)
                                                     ? wah::kPayloadMask
                                                     : (uint64_t{1} << bits) -
                                                           1);
      if (bits == kWahGroupBits) {
        out.AppendGroup(payload);
      } else {
        for (uint64_t consumed = 0; consumed < bits;) {
          bool bit = (payload >> consumed) & 1;
          uint64_t x = (bit ? ~payload : payload) >> consumed;
          uint64_t run =
              x == 0 ? 64 : static_cast<uint64_t>(std::countr_zero(x));
          if (run > bits - consumed) run = bits - consumed;
          out.AppendRun(bit, run);
          consumed += run;
        }
      }
      dec.Consume(1);
      bits_left -= bits;
    }
  }
  return out;
}

uint64_t WahAndCount(const WahBitmap& a, const WahBitmap& b) {
  uint64_t ones = 0;
  RunBinaryOp(
      a, b, OpKind::kAnd,
      [&](bool value, uint64_t groups) {
        if (value) ones += groups * kWahGroupBits;
      },
      [&](uint64_t payload, uint64_t bits) {
        if (bits < kWahGroupBits) payload &= (uint64_t{1} << bits) - 1;
        ones += static_cast<uint64_t>(std::popcount(payload));
      });
  return ones;
}

bool WahIntersects(const WahBitmap& a, const WahBitmap& b) {
  CODS_CHECK(a.size() == b.size());
  uint64_t bits_left = a.size();
  WahDecoder da(a);
  WahDecoder db(b);
  while (bits_left > 0) {
    CODS_DCHECK(!da.exhausted() && !db.exhausted());
    if (da.is_fill() && !da.fill_value()) {
      uint64_t groups = da.remaining_groups();
      da.Consume(groups);
      ConsumeAcross(db, groups);
      bits_left -= groups * kWahGroupBits;
      continue;
    }
    if (db.is_fill() && !db.fill_value()) {
      uint64_t groups = db.remaining_groups();
      db.Consume(groups);
      ConsumeAcross(da, groups);
      bits_left -= groups * kWahGroupBits;
      continue;
    }
    uint64_t bits = bits_left < kWahGroupBits ? bits_left : kWahGroupBits;
    uint64_t payload = da.group_payload() & db.group_payload();
    if (bits < kWahGroupBits) payload &= (uint64_t{1} << bits) - 1;
    if (payload != 0) return true;
    da.Consume(1);
    db.Consume(1);
    bits_left -= bits;
  }
  return false;
}

}  // namespace cods

#include "bitmap/wah_ops.h"

#include <algorithm>
#include <bit>
#include <queue>
#include <utility>

namespace cods {

namespace {

enum class OpKind { kAnd, kOr, kXor, kAndNot };

inline uint64_t ApplyOp(OpKind op, uint64_t x, uint64_t y) {
  switch (op) {
    case OpKind::kAnd:
      return x & y;
    case OpKind::kOr:
      return x | y;
    case OpKind::kXor:
      return x ^ y;
    case OpKind::kAndNot:
      return x & ~y;
  }
  return 0;
}

// Consumes `groups` groups from `dec`, crossing run boundaries as needed.
void ConsumeAcross(WahDecoder& dec, uint64_t groups) {
  while (groups > 0) {
    CODS_DCHECK(!dec.exhausted());
    uint64_t take = dec.remaining_groups();
    if (take > groups) take = groups;
    dec.Consume(take);
    groups -= take;
  }
}

// Shared driver for the binary operations. `emit` is called with either
// (fill_value, group_count) runs or literal payloads; this keeps the
// fill-skipping logic in one place. We instantiate it twice: once
// building an output bitmap, once only counting.
template <typename FillSink, typename LiteralSink>
void RunBinaryOp(const WahBitmap& a, const WahBitmap& b, OpKind op,
                 FillSink&& emit_fill, LiteralSink&& emit_literal) {
  CODS_CHECK(a.size() == b.size())
      << "WAH binary op on different sizes: " << a.size() << " vs "
      << b.size();
  uint64_t bits_left = a.size();
  WahDecoder da(a);
  WahDecoder db(b);
  while (bits_left > 0) {
    CODS_DCHECK(!da.exhausted() && !db.exhausted());
    // Fast paths: a zero fill annihilates AND/ANDNOT; a one fill
    // saturates OR. These skip whole runs of the other operand.
    if (da.is_fill() || db.is_fill()) {
      bool a_is_zero_fill = da.is_fill() && !da.fill_value();
      bool b_is_zero_fill = db.is_fill() && !db.fill_value();
      bool a_is_one_fill = da.is_fill() && da.fill_value();
      bool b_is_one_fill = db.is_fill() && db.fill_value();
      uint64_t skip = 0;
      bool out_value = false;
      bool take_from_a = false;
      if ((op == OpKind::kAnd || op == OpKind::kAndNot) && a_is_zero_fill) {
        skip = da.remaining_groups();
        out_value = false;
        take_from_a = true;
      } else if (op == OpKind::kAnd && b_is_zero_fill) {
        skip = db.remaining_groups();
        out_value = false;
        take_from_a = false;
      } else if (op == OpKind::kAndNot && b_is_one_fill) {
        skip = db.remaining_groups();
        out_value = false;
        take_from_a = false;
      } else if (op == OpKind::kOr && a_is_one_fill) {
        skip = da.remaining_groups();
        out_value = true;
        take_from_a = true;
      } else if (op == OpKind::kOr && b_is_one_fill) {
        skip = db.remaining_groups();
        out_value = true;
        take_from_a = false;
      }
      if (skip > 0) {
        emit_fill(out_value, skip);
        if (take_from_a) {
          da.Consume(skip);
          ConsumeAcross(db, skip);
        } else {
          db.Consume(skip);
          ConsumeAcross(da, skip);
        }
        bits_left -= skip * kWahGroupBits;
        continue;
      }
    }
    if (da.is_fill() && db.is_fill()) {
      uint64_t groups = da.remaining_groups() < db.remaining_groups()
                            ? da.remaining_groups()
                            : db.remaining_groups();
      bool value = ApplyOp(op, da.fill_value() ? 1 : 0,
                           db.fill_value() ? 1 : 0) != 0;
      emit_fill(value, groups);
      da.Consume(groups);
      db.Consume(groups);
      bits_left -= groups * kWahGroupBits;
      continue;
    }
    uint64_t payload = ApplyOp(op, da.group_payload(), db.group_payload()) &
                       wah::kPayloadMask;
    uint64_t bits = bits_left < kWahGroupBits ? bits_left : kWahGroupBits;
    emit_literal(payload, bits);
    da.Consume(1);
    db.Consume(1);
    bits_left -= bits;
  }
}

WahBitmap BinaryOp(const WahBitmap& a, const WahBitmap& b, OpKind op) {
  WahBitmap out;
  RunBinaryOp(
      a, b, op,
      [&](bool value, uint64_t groups) {
        out.AppendRun(value, groups * kWahGroupBits);
      },
      [&](uint64_t payload, uint64_t bits) { out.AppendBits(payload, bits); });
  return out;
}

// Shared driver for the k-way operations; `op` must be kAnd or kOr.
// Emits (fill value, group count) runs or combined literal payloads,
// exactly like RunBinaryOp but for arbitrary k.
//
// Event-driven merge: instead of touching all k decoders per 63-bit
// group (O(k) even when k-1 operands sit in megabit identity fills),
// each operand lives in exactly one of two places:
//
//   * `active` — its current run is a literal group, so it must be
//     combined into every output group until the run ends;
//   * the min-heap — it is parked inside a fill, keyed by the absolute
//     group index where that fill ends. Identity fills contribute
//     nothing until they end; annihilating fills trigger a galloping
//     skip to their end the moment they are classified.
//
// The literal step therefore costs O(|active|), and an operand's decoder
// is only advanced when the cursor actually reaches the end of its
// current run (O(log k) heap work per run). This is what keeps the
// k-way kernel ahead of the pairwise fold for very wide unions (k ≳ 64)
// with literal-heavy operands. Callers handle k == 0 and k == 1.
template <typename FillSink, typename LiteralSink>
void RunManyOp(const std::vector<const WahBitmap*>& operands, OpKind op,
               uint64_t size, FillSink&& emit_fill,
               LiteralSink&& emit_literal) {
  const bool is_or = op == OpKind::kOr;
  // The fill value that determines the output regardless of the other
  // operands (OR: ones; AND: zeros). Identity fills are its complement.
  const bool annihilator = is_or;
  const uint32_t k = static_cast<uint32_t>(operands.size());
  // Minimum fill length (in groups) worth parking in the heap; below it
  // the per-group identity combine is cheaper than push + pop + advance.
  constexpr uint64_t kParkThreshold = 8;

  struct OpState {
    WahDecoder dec;
    uint64_t pos;  // groups consumed so far (current run starts here)
    explicit OpState(const WahBitmap& bm) : dec(bm), pos(0) {}
  };
  std::vector<OpState> ops;
  ops.reserve(k);
  for (const WahBitmap* bm : operands) ops.emplace_back(*bm);

  // Consumes groups until `st` is positioned at group `target` (which
  // may land in the middle of a fill).
  auto advance_to = [](OpState& st, uint64_t target) {
    while (st.pos < target) {
      CODS_DCHECK(!st.dec.exhausted());
      uint64_t avail = st.dec.remaining_groups();
      uint64_t want = target - st.pos;
      uint64_t take = avail < want ? avail : want;
      st.dec.Consume(take);
      st.pos += take;
    }
  };

  // Min-heap of (fill end, operand) for parked operands.
  using HeapEntry = std::pair<uint64_t, uint32_t>;
  std::priority_queue<HeapEntry, std::vector<HeapEntry>,
                      std::greater<HeapEntry>>
      parked;
  std::vector<uint32_t> active, reexamine;
  active.reserve(k);
  reexamine.reserve(k);
  for (uint32_t i = 0; i < k; ++i) reexamine.push_back(i);

  uint64_t g = 0;  // cursor, in absolute groups
  uint64_t bits_left = size;
  while (bits_left > 0) {
    // Classify operands whose current run starts (or resumes) at the
    // cursor. Annihilating fills record the farthest skip target. Short
    // fills are NOT worth the heap round trip: they stay in the active
    // list, where group_payload() expands them to the fill pattern and
    // the combine handles them like literals.
    uint64_t ann_end = 0;
    for (uint32_t i : reexamine) {
      OpState& st = ops[i];
      CODS_DCHECK(st.pos == g);
      CODS_DCHECK(!st.dec.exhausted());
      if (st.dec.is_fill() && st.dec.remaining_groups() >= kParkThreshold) {
        uint64_t end = st.pos + st.dec.remaining_groups();
        if (st.dec.fill_value() == annihilator && end > ann_end) {
          ann_end = end;
        }
        parked.push({end, i});
      } else {
        active.push_back(i);
      }
    }
    reexamine.clear();

    if (ann_end > g) {
      // Galloping skip: the output is the annihilator value up to
      // ann_end regardless of every other operand; only operands whose
      // current run ends inside the span advance their decoders (in
      // whole-run steps), everyone else stays parked.
      emit_fill(annihilator, ann_end - g);
      bits_left -= (ann_end - g) * kWahGroupBits;
      for (uint32_t i : active) {
        advance_to(ops[i], ann_end);
        reexamine.push_back(i);
      }
      active.clear();
      g = ann_end;
      while (!parked.empty() && parked.top().first <= g) {
        uint32_t i = parked.top().second;
        parked.pop();
        advance_to(ops[i], g);
        reexamine.push_back(i);
      }
      continue;
    }

    if (active.empty()) {
      // Everyone is inside an identity fill; the earliest fill end
      // bounds the homogeneous span.
      CODS_DCHECK(!parked.empty());
      uint64_t next_end = parked.top().first;
      emit_fill(!annihilator, next_end - g);
      bits_left -= (next_end - g) * kWahGroupBits;
      g = next_end;
      while (!parked.empty() && parked.top().first <= g) {
        uint32_t i = parked.top().second;
        parked.pop();
        advance_to(ops[i], g);
        reexamine.push_back(i);
      }
      continue;
    }

    // Literal step: only the active operands carry payload bits; parked
    // identity fills contribute the reduction identity.
    uint64_t acc = is_or ? 0 : wah::kPayloadMask;
    if (is_or) {
      for (uint32_t i : active) acc |= ops[i].dec.group_payload();
    } else {
      for (uint32_t i : active) acc &= ops[i].dec.group_payload();
    }
    uint64_t bits = bits_left < kWahGroupBits ? bits_left : kWahGroupBits;
    emit_literal(acc & wah::kPayloadMask, bits);
    bits_left -= bits;
    g += 1;
    // Advance the active operands one group. The common case (operand
    // stays active) leaves `active` untouched; it is compacted only when
    // somebody actually parks or exhausts.
    bool changed = false;
    for (uint32_t& slot : active) {
      OpState& st = ops[slot];
      st.dec.Consume(1);
      st.pos += 1;
      if (st.dec.exhausted()) {  // only at bits_left == 0
        slot = UINT32_MAX;
        changed = true;
      } else if (st.dec.is_fill() &&
                 st.dec.remaining_groups() >= kParkThreshold) {
        reexamine.push_back(slot);
        slot = UINT32_MAX;
        changed = true;
      }
    }
    if (changed) {
      active.erase(std::remove(active.begin(), active.end(), UINT32_MAX),
                   active.end());
    }
    while (!parked.empty() && parked.top().first <= g) {
      uint32_t i = parked.top().second;
      parked.pop();
      advance_to(ops[i], g);
      reexamine.push_back(i);
    }
  }
}

// Cache-blocked alternative to the event-driven merge for the regime
// where it goes memory-bound: many operands (k ≳ 16) whose runs are
// short and uniformly scattered, so nearly every operand is in the
// active list for nearly every group and the per-group reduction costs
// O(k) with no fills to skip. Instead of merging run streams, each
// operand deposits its groups into a 63-bit-per-slot accumulator block
// that stays L1-resident across all k operands (one operand's pass over
// a 4 KB block is a handful of cache lines, revisited k times while
// hot), and the block is re-emitted through the same canonical sinks —
// so the output is bit-identical to the heap merge's.
template <typename FillSink, typename LiteralSink>
void RunManyOpBlocked(const std::vector<const WahBitmap*>& operands,
                      OpKind op, uint64_t size, FillSink&& emit_fill,
                      LiteralSink&& emit_literal) {
  const bool is_or = op == OpKind::kOr;
  const uint64_t identity = is_or ? 0 : wah::kPayloadMask;
  // 512 slots * 8 B = 4 KB accumulator: small enough to stay in L1 while
  // every operand revisits it, large enough to amortize the per-operand
  // loop overhead.
  constexpr uint64_t kBlockGroups = 512;

  std::vector<WahDecoder> decs;
  decs.reserve(operands.size());
  for (const WahBitmap* bm : operands) decs.emplace_back(*bm);

  const uint64_t total_groups = (size + kWahGroupBits - 1) / kWahGroupBits;
  std::vector<uint64_t> acc(
      static_cast<size_t>(std::min(kBlockGroups, total_groups)));
  uint64_t bits_left = size;
  for (uint64_t g0 = 0; g0 < total_groups; g0 += kBlockGroups) {
    const uint64_t ng = std::min(kBlockGroups, total_groups - g0);
    std::fill(acc.begin(), acc.begin() + static_cast<long>(ng), identity);
    for (WahDecoder& dec : decs) {
      uint64_t g = 0;
      while (g < ng) {
        CODS_DCHECK(!dec.exhausted());
        if (dec.is_fill()) {
          uint64_t take = std::min(dec.remaining_groups(), ng - g);
          if (dec.fill_value() == is_or) {
            // Annihilator fill: saturates OR / clears AND over the span.
            std::fill(acc.begin() + static_cast<long>(g),
                      acc.begin() + static_cast<long>(g + take),
                      is_or ? wah::kPayloadMask : uint64_t{0});
          }
          dec.Consume(take);
          g += take;
        } else {
          if (is_or) {
            acc[g] |= dec.group_payload();
          } else {
            acc[g] &= dec.group_payload();
          }
          dec.Consume(1);
          ++g;
        }
      }
    }
    // Emit the block: homogeneous spans as fills (batched so the sink's
    // AppendRun merges them in one step), everything else as literals.
    uint64_t g = 0;
    while (g < ng) {
      uint64_t payload = acc[g] & wah::kPayloadMask;
      bool homogeneous = payload == 0 || payload == wah::kPayloadMask;
      if (homogeneous && bits_left >= kWahGroupBits) {
        uint64_t run = 1;
        while (g + run < ng &&
               (acc[g + run] & wah::kPayloadMask) == payload &&
               bits_left >= (run + 1) * kWahGroupBits) {
          ++run;
        }
        emit_fill(payload != 0, run);
        bits_left -= run * kWahGroupBits;
        g += run;
      } else {
        uint64_t bits = bits_left < kWahGroupBits ? bits_left : kWahGroupBits;
        emit_literal(payload, bits);
        bits_left -= bits;
        ++g;
      }
    }
  }
  CODS_DCHECK(bits_left == 0);
}

// Routes between the event-driven merge and the cache-blocked pass. The
// blocked path wins when the operand set is wide AND literal-heavy
// (scattered short runs): total compressed words per output group is a
// direct proxy for the average active-list size the heap merge would
// grind through. Fill-heavy (clustered) operand sets stay on the heap
// merge, whose galloping skips are unbeatable there. Pure function of
// the operand stats, so the choice is deterministic — and both paths
// emit identical canonical words anyway.
bool UseBlockedManyOp(const std::vector<const WahBitmap*>& operands,
                      uint64_t size) {
  if (operands.size() < 16) return false;
  uint64_t total_groups = (size + kWahGroupBits - 1) / kWahGroupBits;
  if (total_groups == 0) return false;
  uint64_t total_words = 0;
  for (const WahBitmap* bm : operands) total_words += bm->NumWords();
  return total_words >= 4 * total_groups;
}

// Size validation shared by the general merge and the k<=1 fast paths
// (the fold this replaces CHECK-ed every operand, so these do too).
void CheckOperandSizes(const std::vector<const WahBitmap*>& operands,
                       uint64_t size) {
  for (const WahBitmap* bm : operands) {
    CODS_CHECK(bm->size() == size)
        << "WAH k-way op operand of size " << bm->size() << ", want "
        << size;
  }
}

std::vector<const WahBitmap*> PointersTo(const std::vector<WahBitmap>& bms) {
  std::vector<const WahBitmap*> out;
  out.reserve(bms.size());
  for (const WahBitmap& bm : bms) out.push_back(&bm);
  return out;
}

WahBitmap ManyOp(const std::vector<const WahBitmap*>& operands, OpKind op,
                 uint64_t size) {
  CheckOperandSizes(operands, size);
  WahBitmap out;
  if (operands.empty()) {
    out.AppendRun(op == OpKind::kAnd, size);
    return out;
  }
  if (operands.size() == 1) return *operands[0];
  uint64_t max_words = 0;
  for (const WahBitmap* bm : operands) {
    if (bm->NumWords() > max_words) max_words = bm->NumWords();
  }
  out.Reserve(max_words);
  auto emit_fill = [&](bool value, uint64_t groups) {
    out.AppendRun(value, groups * kWahGroupBits);
  };
  auto emit_literal = [&](uint64_t payload, uint64_t bits) {
    out.AppendBits(payload, bits);
  };
  if (UseBlockedManyOp(operands, size)) {
    RunManyOpBlocked(operands, op, size, emit_fill, emit_literal);
  } else {
    RunManyOp(operands, op, size, emit_fill, emit_literal);
  }
  return out;
}

uint64_t ManyOpCount(const std::vector<const WahBitmap*>& operands, OpKind op,
                     uint64_t size) {
  CheckOperandSizes(operands, size);
  if (operands.empty()) return op == OpKind::kAnd ? size : 0;
  if (operands.size() == 1) return operands[0]->CountOnes();
  uint64_t ones = 0;
  auto emit_fill = [&](bool value, uint64_t groups) {
    if (value) ones += groups * kWahGroupBits;
  };
  auto emit_literal = [&](uint64_t payload, uint64_t bits) {
    if (bits < kWahGroupBits) payload &= (uint64_t{1} << bits) - 1;
    ones += static_cast<uint64_t>(std::popcount(payload));
  };
  if (UseBlockedManyOp(operands, size)) {
    RunManyOpBlocked(operands, op, size, emit_fill, emit_literal);
  } else {
    RunManyOp(operands, op, size, emit_fill, emit_literal);
  }
  return ones;
}

}  // namespace

WahBitmap WahAnd(const WahBitmap& a, const WahBitmap& b) {
  return BinaryOp(a, b, OpKind::kAnd);
}

WahBitmap WahOr(const WahBitmap& a, const WahBitmap& b) {
  return BinaryOp(a, b, OpKind::kOr);
}

WahBitmap WahXor(const WahBitmap& a, const WahBitmap& b) {
  return BinaryOp(a, b, OpKind::kXor);
}

WahBitmap WahAndNot(const WahBitmap& a, const WahBitmap& b) {
  return BinaryOp(a, b, OpKind::kAndNot);
}

WahBitmap WahNot(const WahBitmap& a) {
  WahBitmap out;
  uint64_t bits_left = a.size();
  WahDecoder dec(a);
  while (bits_left > 0) {
    CODS_DCHECK(!dec.exhausted());
    if (dec.is_fill()) {
      uint64_t groups = dec.remaining_groups();
      out.AppendRun(!dec.fill_value(), groups * kWahGroupBits);
      dec.Consume(groups);
      bits_left -= groups * kWahGroupBits;
    } else {
      uint64_t bits = bits_left < kWahGroupBits ? bits_left : kWahGroupBits;
      out.AppendBits(~dec.group_payload(), bits);
      dec.Consume(1);
      bits_left -= bits;
    }
  }
  return out;
}

uint64_t WahAndCount(const WahBitmap& a, const WahBitmap& b) {
  uint64_t ones = 0;
  RunBinaryOp(
      a, b, OpKind::kAnd,
      [&](bool value, uint64_t groups) {
        if (value) ones += groups * kWahGroupBits;
      },
      [&](uint64_t payload, uint64_t bits) {
        if (bits < kWahGroupBits) payload &= (uint64_t{1} << bits) - 1;
        ones += static_cast<uint64_t>(std::popcount(payload));
      });
  return ones;
}

WahBitmap WahOrMany(const std::vector<const WahBitmap*>& operands,
                    uint64_t size) {
  return ManyOp(operands, OpKind::kOr, size);
}

WahBitmap WahAndMany(const std::vector<const WahBitmap*>& operands,
                     uint64_t size) {
  return ManyOp(operands, OpKind::kAnd, size);
}

uint64_t WahOrManyCount(const std::vector<const WahBitmap*>& operands,
                        uint64_t size) {
  return ManyOpCount(operands, OpKind::kOr, size);
}

uint64_t WahAndManyCount(const std::vector<const WahBitmap*>& operands,
                         uint64_t size) {
  return ManyOpCount(operands, OpKind::kAnd, size);
}

WahBitmap WahOrMany(const std::vector<WahBitmap>& operands, uint64_t size) {
  return ManyOp(PointersTo(operands), OpKind::kOr, size);
}

WahBitmap WahAndMany(const std::vector<WahBitmap>& operands, uint64_t size) {
  return ManyOp(PointersTo(operands), OpKind::kAnd, size);
}

uint64_t WahOrManyCount(const std::vector<WahBitmap>& operands,
                        uint64_t size) {
  return ManyOpCount(PointersTo(operands), OpKind::kOr, size);
}

uint64_t WahAndManyCount(const std::vector<WahBitmap>& operands,
                         uint64_t size) {
  return ManyOpCount(PointersTo(operands), OpKind::kAnd, size);
}

namespace {

// Output buffer for the in-place merges. After a merge the pre-merge
// accumulator representation is swapped in here, so its word vector is
// recycled as the next call's output buffer — a fold loop allocates only
// while the buffer is still growing toward its steady-state capacity.
// Thread-local, so concurrent folds (e.g. per-column ParallelFor grains)
// each own a buffer.
WahBitmap& InPlaceScratch() {
  static thread_local WahBitmap scratch;
  return scratch;
}

// One streaming merge of `a op b` into the recycled buffer; the result
// is swapped into `a`. Safe for aliasing (a == &b): both sides are read
// through independent decoders and the output lives in the buffer.
void MergeInPlace(WahBitmap* a, const WahBitmap& b, OpKind op) {
  WahBitmap& out = InPlaceScratch();
  out.Clear();
  out.Reserve(a->NumWords() + b.NumWords());
  RunBinaryOp(
      *a, b, op,
      [&](bool value, uint64_t groups) {
        out.AppendRun(value, groups * kWahGroupBits);
      },
      [&](uint64_t payload, uint64_t bits) { out.AppendBits(payload, bits); });
  a->Swap(out);
}

}  // namespace

void WahBitmap::OrWith(const WahBitmap& other) {
  CODS_CHECK(size() == other.size())
      << "WAH OrWith on different sizes: " << size() << " vs "
      << other.size();
  if (other.IsAllZeros() || IsAllOnes()) return;
  if (IsAllZeros() || other.IsAllOnes()) {
    *this = other;
    return;
  }
  MergeInPlace(this, other, OpKind::kOr);
}

void WahBitmap::AndWith(const WahBitmap& other) {
  CODS_CHECK(size() == other.size())
      << "WAH AndWith on different sizes: " << size() << " vs "
      << other.size();
  if (other.IsAllOnes() || IsAllZeros()) return;
  if (IsAllOnes() || other.IsAllZeros()) {
    *this = other;
    return;
  }
  MergeInPlace(this, other, OpKind::kAnd);
}

bool WahIntersects(const WahBitmap& a, const WahBitmap& b) {
  CODS_CHECK(a.size() == b.size());
  uint64_t bits_left = a.size();
  WahDecoder da(a);
  WahDecoder db(b);
  while (bits_left > 0) {
    CODS_DCHECK(!da.exhausted() && !db.exhausted());
    if (da.is_fill() && !da.fill_value()) {
      uint64_t groups = da.remaining_groups();
      da.Consume(groups);
      ConsumeAcross(db, groups);
      bits_left -= groups * kWahGroupBits;
      continue;
    }
    if (db.is_fill() && !db.fill_value()) {
      uint64_t groups = db.remaining_groups();
      db.Consume(groups);
      ConsumeAcross(da, groups);
      bits_left -= groups * kWahGroupBits;
      continue;
    }
    uint64_t bits = bits_left < kWahGroupBits ? bits_left : kWahGroupBits;
    uint64_t payload = da.group_payload() & db.group_payload();
    if (bits < kWahGroupBits) payload &= (uint64_t{1} << bits) - 1;
    if (payload != 0) return true;
    da.Consume(1);
    db.Consume(1);
    bits_left -= bits;
  }
  return false;
}

}  // namespace cods

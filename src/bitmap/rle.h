// Run-length encoding for value-id sequences. CODS §2.2 notes that
// run-length encoding is used for sorted columns instead of bitmaps; the
// column store picks this codec when a column is declared sorted.

#ifndef CODS_BITMAP_RLE_H_
#define CODS_BITMAP_RLE_H_

#include <cstddef>
#include <cstdint>
#include <vector>

namespace cods {

/// Run-length-encoded sequence of uint32 value ids.
class RleVector {
 public:
  struct Run {
    uint32_t value;
    uint64_t length;
  };

  RleVector() = default;

  /// Encodes a full sequence.
  static RleVector Encode(const std::vector<uint32_t>& values);

  /// Reassembles from a run list (persistence path). Adjacent equal runs
  /// are merged; zero-length runs are rejected.
  static RleVector FromRuns(const std::vector<Run>& runs);

  /// Appends one value (extends the last run when equal).
  void Append(uint32_t value);
  /// Appends `count` copies of `value`.
  void AppendRun(uint32_t value, uint64_t count);

  /// Logical number of elements.
  uint64_t size() const { return size_; }
  /// Number of runs.
  size_t NumRuns() const { return runs_.size(); }

  /// Element at `pos` (binary search over run start offsets).
  uint32_t Get(uint64_t pos) const;

  /// Decodes the full sequence.
  std::vector<uint32_t> Decode() const;

  /// Encoded footprint in bytes.
  uint64_t SizeBytes() const {
    return runs_.size() * (sizeof(Run) + sizeof(uint64_t));
  }

  const std::vector<Run>& runs() const { return runs_; }
  /// Start offset of run i (parallel to runs()).
  const std::vector<uint64_t>& starts() const { return starts_; }

 private:
  std::vector<Run> runs_;
  std::vector<uint64_t> starts_;
  uint64_t size_ = 0;
};

}  // namespace cods

#endif  // CODS_BITMAP_RLE_H_

// Evolution status tracking — the demo's "Data Evolution Status" pane
// (§3). Operators report each internal step ("distinction", "filtering",
// "reuse", ...) with wall-clock timings; observers log them, record them
// for display, or ignore them.

#ifndef CODS_EVOLUTION_OBSERVER_H_
#define CODS_EVOLUTION_OBSERVER_H_

#include <mutex>
#include <string>
#include <vector>

#include "common/stopwatch.h"

namespace cods {

/// Receives step-by-step progress of an evolution operator.
class EvolutionObserver {
 public:
  virtual ~EvolutionObserver() = default;

  /// A step of `op` started (e.g. op="DECOMPOSE R", step="distinction").
  virtual void OnStepBegin(const std::string& op, const std::string& step,
                           const std::string& detail) = 0;

  /// The most recently begun step of `op` finished.
  virtual void OnStepEnd(const std::string& op, const std::string& step,
                         double seconds) = 0;
};

/// Observer that prints steps to the log (demo mode).
class LoggingObserver : public EvolutionObserver {
 public:
  void OnStepBegin(const std::string& op, const std::string& step,
                   const std::string& detail) override;
  void OnStepEnd(const std::string& op, const std::string& step,
                 double seconds) override;
};

/// Observer that records steps for later inspection (tests, UIs).
class RecordingObserver : public EvolutionObserver {
 public:
  struct Step {
    std::string op;
    std::string step;
    std::string detail;
    double seconds = 0;
  };

  void OnStepBegin(const std::string& op, const std::string& step,
                   const std::string& detail) override;
  void OnStepEnd(const std::string& op, const std::string& step,
                 double seconds) override;

  const std::vector<Step>& steps() const { return steps_; }
  /// True if a step with the given name was recorded for any op.
  bool HasStep(const std::string& step) const;
  /// Sum of seconds across all recorded steps.
  double TotalSeconds() const;

 private:
  std::vector<Step> steps_;
};

/// Serializes callbacks onto a wrapped observer. Planned script
/// execution (engine.h ApplyAllPlanned) overlaps independent operators,
/// so their step reports arrive concurrently; observers written for
/// serial execution stay correct behind this adapter. Interleaving
/// across operators is scheduling-dependent; per-operator step order is
/// preserved.
class SerializedObserver : public EvolutionObserver {
 public:
  explicit SerializedObserver(EvolutionObserver* wrapped)
      : wrapped_(wrapped) {}

  void OnStepBegin(const std::string& op, const std::string& step,
                   const std::string& detail) override;
  void OnStepEnd(const std::string& op, const std::string& step,
                 double seconds) override;

 private:
  EvolutionObserver* wrapped_;
  std::mutex mu_;
};

/// RAII step reporter: begin on construction, end (with elapsed time) on
/// destruction. Null observers are allowed and make this a no-op.
class ScopedStep {
 public:
  ScopedStep(EvolutionObserver* observer, std::string op, std::string step,
             std::string detail = "");
  ~ScopedStep();

  ScopedStep(const ScopedStep&) = delete;
  ScopedStep& operator=(const ScopedStep&) = delete;

 private:
  EvolutionObserver* observer_;
  std::string op_;
  std::string step_;
  Stopwatch watch_;
};

}  // namespace cods

#endif  // CODS_EVOLUTION_OBSERVER_H_

#include "evolution/simple_ops.h"

#include "bitmap/codec.h"
#include "bitmap/wah_filter.h"
#include "bitmap/wah_ops.h"
#include "exec/exec.h"
#include "exec/parallel_build.h"
#include "storage/value_compare.h"

namespace cods {

Result<std::shared_ptr<const Table>> MakeEmptyTable(const std::string& name,
                                                    const Schema& schema) {
  std::vector<std::shared_ptr<const Column>> cols;
  for (const ColumnSpec& spec : schema.columns()) {
    cols.push_back(Column::FromVids(spec.type, Dictionary(), {}));
  }
  return Table::Make(name, schema, std::move(cols), 0);
}

std::shared_ptr<const Table> ReencodeRleToWah(const Table& table) {
  bool any = false;
  for (size_t i = 0; i < table.num_columns(); ++i) {
    if (table.column(i)->encoding() == ColumnEncoding::kRle) {
      any = true;
      break;
    }
  }
  if (!any) return nullptr;
  std::vector<std::shared_ptr<const Column>> cols;
  cols.reserve(table.num_columns());
  for (size_t i = 0; i < table.num_columns(); ++i) {
    const auto& col = table.column(i);
    cols.push_back(col->encoding() == ColumnEncoding::kRle
                       ? std::shared_ptr<const Column>(
                             col->WithEncoding(ColumnEncoding::kWahBitmap))
                       : col);
  }
  auto table_result = Table::Make(table.name(), table.schema(),
                                  std::move(cols), table.rows());
  CODS_CHECK(table_result.ok()) << table_result.status().ToString();
  return table_result.ValueOrDie();
}

Result<std::shared_ptr<const Table>> CopyTableOp(const Table& src,
                                                 const std::string& name,
                                                 bool deep) {
  if (!deep) {
    return src.WithName(name);
  }
  // Deep copy: physically duplicate every bitmap's words by value.
  std::vector<std::shared_ptr<const Column>> cols;
  for (size_t i = 0; i < src.num_columns(); ++i) {
    const Column& c = *src.column(i);
    if (c.encoding() == ColumnEncoding::kWahBitmap) {
      std::vector<ValueBitmap> copies = c.bitmaps();  // value copy
      cols.push_back(Column::FromValueBitmaps(c.type(), c.dict(),
                                              std::move(copies), c.rows()));
    } else {
      cols.push_back(Column::FromVidsRle(c.type(), c.dict(),
                                         c.DecodeVids()));
    }
  }
  return Table::Make(name, src.schema(), std::move(cols), src.rows());
}

Result<std::shared_ptr<const Table>> UnionTablesOp(
    const Table& a, const Table& b, const std::string& name,
    EvolutionObserver* observer, const ExecContext* ctx) {
  if (!a.schema().SameLayout(b.schema())) {
    return Status::InvalidArgument(
        "UNION TABLES requires identical column names and types");
  }
  if (auto a2 = ReencodeRleToWah(a)) {
    return UnionTablesOp(*a2, b, name, observer, ctx);
  }
  if (auto b2 = ReencodeRleToWah(b)) {
    return UnionTablesOp(a, *b2, name, observer, ctx);
  }
  ExecContext exec = ResolveContext(ctx);
  const std::string op = "UNION " + a.name() + "∪" + b.name();
  const uint64_t out_rows = a.rows() + b.rows();
  std::vector<std::shared_ptr<const Column>> cols(a.num_columns());
  ScopedStep step(observer, op, "concat",
                  "concatenating compressed bitmaps of " +
                      std::to_string(a.num_columns()) + " columns");
  // Outer grain: one task per column. The dictionary merge is serial per
  // column (GetOrInsert mutates), but the per-value prefix/concat
  // assembly nests a second ParallelFor over output vids.
  CODS_RETURN_NOT_OK(ParallelFor(
      exec, 0, a.num_columns(), 1, [&](uint64_t i) -> Status {
        const Column& ca = *a.column(i);
        const Column& cb = *b.column(i);
        if (ca.encoding() != ColumnEncoding::kWahBitmap ||
            cb.encoding() != ColumnEncoding::kWahBitmap) {
          return Status::InvalidArgument(
              "UNION TABLES requires WAH-encoded columns");
        }
        // Output dictionary: a's values first, then b's new values.
        Dictionary dict = ca.dict();
        std::vector<Vid> b_to_out(cb.distinct_count());
        // Inverse map: which b vid (if any) extends each output vid.
        std::vector<Vid> b_of_out(ca.distinct_count() + cb.distinct_count(),
                                  kNoVid);
        for (Vid v = 0; v < cb.distinct_count(); ++v) {
          b_to_out[v] = dict.GetOrInsert(cb.dict().value(v));
          b_of_out[b_to_out[v]] = v;
        }
        std::vector<WahBitmap> bitmaps(dict.size());
        CODS_RETURN_NOT_OK(ParallelFor(
            exec, 0, dict.size(), 16, [&](uint64_t v) {
              // Prefix: a's bitmap (values absent from a are zero runs).
              if (v < ca.distinct_count()) {
                ca.bitmap(static_cast<Vid>(v)).AppendToWah(&bitmaps[v]);
              } else {
                bitmaps[v].AppendRun(false, a.rows());
              }
              // Suffix: b's bitmap streamed onto the compressed form
              // (WAH containers splice code words when a.rows() is
              // group-aligned; array/bitset containers append their
              // groups without materializing an intermediate).
              if (b_of_out[v] != kNoVid) {
                cb.bitmap(b_of_out[v]).AppendToWah(&bitmaps[v]);
              } else {
                bitmaps[v].AppendRun(false, b.rows());
              }
              return Status::OK();
            }));
        cols[i] = Column::FromBitmaps(ca.type(), std::move(dict),
                                      std::move(bitmaps), out_rows, &exec);
        return Status::OK();
      }));
  // Keys rarely survive a union (duplicates may appear); drop them.
  CODS_ASSIGN_OR_RETURN(Schema schema,
                        Schema::Make(a.schema().columns(), {}));
  return Table::Make(name, std::move(schema), std::move(cols), out_rows);
}

Result<PartitionResult> PartitionTableOp(
    const Table& src, const std::string& name1, const std::string& name2,
    const std::string& column, CompareOp op, const Value& literal,
    EvolutionObserver* observer, const ExecContext* ctx) {
  if (auto converted = ReencodeRleToWah(src)) {
    return PartitionTableOp(*converted, name1, name2, column, op, literal,
                            observer, ctx);
  }
  ExecContext exec = ResolveContext(ctx);
  const std::string opname = "PARTITION " + src.name();
  CODS_ASSIGN_OR_RETURN(auto pred_col, src.ColumnByName(column));
  // Selection bitmap: single-pass k-way union of the bitmaps of
  // qualifying dictionary values, evaluated on compressed words.
  WahBitmap selection;
  {
    ScopedStep step(observer, opname, "select",
                    column + " " + std::string(CompareOpToString(op)) + " " +
                        literal.ToString());
    std::vector<const ValueBitmap*> qualifying;
    for (Vid v = 0; v < pred_col->distinct_count(); ++v) {
      if (EvalCompare(pred_col->dict().value(v), op, literal)) {
        qualifying.push_back(&pred_col->bitmap(v));
      }
    }
    selection = CodecOrManyWah(qualifying, src.rows());
  }
  std::vector<uint64_t> pos1 = selection.SetPositions();
  std::vector<uint64_t> pos2 = WahNot(selection).SetPositions();

  auto build_side = [&](const std::string& name,
                        const std::vector<uint64_t>& positions)
      -> Result<std::shared_ptr<const Table>> {
    WahPositionFilter filter(positions, src.rows());
    std::vector<std::shared_ptr<const Column>> cols(src.num_columns());
    // Column tasks nest the per-vid filter tasks inside
    // FilterColumnBitmaps.
    CODS_RETURN_NOT_OK(ParallelFor(
        exec, 0, src.num_columns(), 1, [&](uint64_t i) -> Status {
          CODS_ASSIGN_OR_RETURN(
              cols[i], FilterColumnBitmaps(exec, *src.column(i), filter,
                                           "PARTITION TABLE"));
          return Status::OK();
        }));
    return Table::Make(name, src.schema(), std::move(cols),
                       positions.size());
  };

  PartitionResult result;
  {
    ScopedStep step(observer, opname, "filtering",
                    std::to_string(pos1.size()) + " + " +
                        std::to_string(pos2.size()) + " rows");
    CODS_ASSIGN_OR_RETURN(result.matching, build_side(name1, pos1));
    CODS_ASSIGN_OR_RETURN(result.rest, build_side(name2, pos2));
  }
  return result;
}

Result<std::shared_ptr<const Table>> AddColumnOp(const Table& src,
                                                 const ColumnSpec& spec,
                                                 const Value& default_value) {
  CODS_ASSIGN_OR_RETURN(DataType vtype, default_value.type());
  if (vtype != spec.type) {
    return Status::TypeError("default value type does not match column type");
  }
  CODS_ASSIGN_OR_RETURN(Schema schema, src.schema().AddColumn(spec));
  Dictionary dict;
  dict.GetOrInsert(default_value);
  WahBitmap all_ones;
  all_ones.AppendRun(true, src.rows());
  std::vector<WahBitmap> bitmaps;
  bitmaps.push_back(std::move(all_ones));
  std::vector<std::shared_ptr<const Column>> cols;
  for (size_t i = 0; i < src.num_columns(); ++i) cols.push_back(src.column(i));
  cols.push_back(Column::FromBitmaps(spec.type, std::move(dict),
                                     std::move(bitmaps), src.rows()));
  return Table::Make(src.name(), std::move(schema), std::move(cols),
                     src.rows());
}

Result<std::shared_ptr<const Table>> AddColumnWithDataOp(
    const Table& src, const ColumnSpec& spec,
    const std::vector<Value>& values) {
  if (values.size() != src.rows()) {
    return Status::InvalidArgument(
        "ADD COLUMN data has " + std::to_string(values.size()) +
        " values for " + std::to_string(src.rows()) + " rows");
  }
  CODS_ASSIGN_OR_RETURN(Schema schema, src.schema().AddColumn(spec));
  Dictionary dict;
  std::vector<Vid> vids;
  vids.reserve(values.size());
  for (const Value& v : values) {
    CODS_ASSIGN_OR_RETURN(DataType vtype, v.type());
    if (vtype != spec.type) {
      return Status::TypeError("value " + v.ToString() +
                               " does not match new column type");
    }
    vids.push_back(dict.GetOrInsert(v));
  }
  std::vector<std::shared_ptr<const Column>> cols;
  for (size_t i = 0; i < src.num_columns(); ++i) cols.push_back(src.column(i));
  cols.push_back(Column::FromVids(spec.type, std::move(dict), vids));
  return Table::Make(src.name(), std::move(schema), std::move(cols),
                     src.rows());
}

Result<std::shared_ptr<const Table>> DropColumnOp(const Table& src,
                                                  const std::string& column) {
  CODS_ASSIGN_OR_RETURN(Schema schema, src.schema().DropColumn(column));
  CODS_ASSIGN_OR_RETURN(size_t idx, src.schema().ColumnIndex(column));
  std::vector<std::shared_ptr<const Column>> cols;
  for (size_t i = 0; i < src.num_columns(); ++i) {
    if (i != idx) cols.push_back(src.column(i));
  }
  return Table::Make(src.name(), std::move(schema), std::move(cols),
                     src.rows());
}

Result<std::shared_ptr<const Table>> RenameColumnOp(const Table& src,
                                                    const std::string& from,
                                                    const std::string& to) {
  CODS_ASSIGN_OR_RETURN(Schema schema, src.schema().RenameColumn(from, to));
  std::vector<std::shared_ptr<const Column>> cols;
  for (size_t i = 0; i < src.num_columns(); ++i) cols.push_back(src.column(i));
  return Table::Make(src.name(), std::move(schema), std::move(cols),
                     src.rows());
}

}  // namespace cods

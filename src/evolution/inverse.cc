#include "evolution/inverse.h"

#include <algorithm>

namespace cods {

bool IsInvertible(SmoKind kind) {
  switch (kind) {
    case SmoKind::kCreateTable:
    case SmoKind::kRenameTable:
    case SmoKind::kCopyTable:
    case SmoKind::kPartitionTable:
    case SmoKind::kDecomposeTable:
    case SmoKind::kMergeTables:
    case SmoKind::kAddColumn:
    case SmoKind::kRenameColumn:
      return true;
    case SmoKind::kDropTable:
    case SmoKind::kDropColumn:
    case SmoKind::kUnionTables:
      return false;
  }
  return false;
}

namespace {

// Inverse of MERGE S,T INTO R: decompose R back into the original S and
// T, reading their column lists and keys from the pre-merge catalog.
Result<Smo> InvertMerge(const Smo& smo, const TableStore& pre_state) {
  CODS_ASSIGN_OR_RETURN(auto s, pre_state.GetTable(smo.table));
  CODS_ASSIGN_OR_RETURN(auto t, pre_state.GetTable(smo.table2));
  return Smo::DecomposeTable(smo.out1, smo.table, s->schema().ColumnNames(),
                             s->schema().key(), smo.table2,
                             t->schema().ColumnNames(), t->schema().key());
}

// Inverse of DECOMPOSE R INTO S,T: merge S and T back on the common
// attributes.
Result<Smo> InvertDecompose(const Smo& smo, const TableStore& pre_state) {
  CODS_ASSIGN_OR_RETURN(auto r, pre_state.GetTable(smo.table));
  std::vector<std::string> common;
  for (const std::string& c : smo.columns1) {
    if (std::find(smo.columns2.begin(), smo.columns2.end(), c) !=
        smo.columns2.end()) {
      common.push_back(c);
    }
  }
  if (common.empty()) {
    return Status::ConstraintViolation(
        "decomposition outputs share no attributes; cannot derive a "
        "merging inverse");
  }
  return Smo::MergeTables(smo.out1, smo.out2, smo.table, common,
                          r->schema().key());
}

}  // namespace

Result<Smo> InvertSmo(const Smo& smo, const TableStore& pre_state) {
  switch (smo.kind) {
    case SmoKind::kCreateTable:
      return Smo::DropTable(smo.out1);
    case SmoKind::kRenameTable:
      return Smo::RenameTable(smo.new_name, smo.table);
    case SmoKind::kCopyTable:
      return Smo::DropTable(smo.out1);
    case SmoKind::kPartitionTable:
      // The parts carry disjoint row sets; their union restores the
      // original multiset (row order may differ).
      return Smo::UnionTables(smo.out1, smo.out2, smo.table);
    case SmoKind::kDecomposeTable:
      return InvertDecompose(smo, pre_state);
    case SmoKind::kMergeTables:
      return InvertMerge(smo, pre_state);
    case SmoKind::kAddColumn:
      return Smo::DropColumn(smo.table, smo.column);
    case SmoKind::kRenameColumn:
      return Smo::RenameColumn(smo.table, smo.new_name, smo.column);
    case SmoKind::kDropTable:
      return Status::ConstraintViolation(
          "DROP TABLE discards data and has no inverse");
    case SmoKind::kDropColumn:
      return Status::ConstraintViolation(
          "DROP COLUMN discards data and has no inverse");
    case SmoKind::kUnionTables:
      return Status::ConstraintViolation(
          "UNION TABLES forgets the partition boundary and has no "
          "inverse");
  }
  return Status::NotImplemented("unknown SMO kind");
}

Status EvolutionLog::Record(const Smo& smo, const TableStore& pre_state) {
  CODS_ASSIGN_OR_RETURN(Smo inverse, InvertSmo(smo, pre_state));
  applied_.push_back(smo);
  inverses_.push_back(std::move(inverse));
  return Status::OK();
}

std::vector<Smo> EvolutionLog::UndoScript() const {
  std::vector<Smo> out(inverses_.rbegin(), inverses_.rend());
  return out;
}

void EvolutionLog::Clear() {
  applied_.clear();
  inverses_.clear();
}

}  // namespace cods

// Inverse Schema Modification Operators, after the PRISM workbench's
// notion of information-preserving schema evolution [Curino et al.,
// VLDB 2008]: for an SMO applied to a given database state, derive the
// SMO that undoes it. Lossy operators (DROP TABLE, DROP COLUMN, UNION —
// which forgets the partition boundary) have no inverse and report
// ConstraintViolation.
//
// Inverses may depend on the catalog state *before* the operator runs
// (e.g. undoing MERGE TABLES requires the original tables' column lists
// and keys), so InvertSmo takes the pre-application catalog.

#ifndef CODS_EVOLUTION_INVERSE_H_
#define CODS_EVOLUTION_INVERSE_H_

#include <vector>

#include "evolution/smo.h"
#include "storage/catalog.h"

namespace cods {

/// True if `smo`'s effect can be undone by another SMO.
bool IsInvertible(SmoKind kind);

/// Returns the SMO that undoes `smo`, given the catalog as it is BEFORE
/// `smo` is applied. Fails with ConstraintViolation for lossy operators
/// and with the usual lookup errors when `smo` references missing
/// tables/columns.
Result<Smo> InvertSmo(const Smo& smo, const TableStore& pre_state);

/// Records applied operators together with their inverses (captured
/// against the pre-application state) and can emit the undo script.
class EvolutionLog {
 public:
  /// Captures the inverse of `smo` against `pre_state`, then remembers
  /// both. Fails (and records nothing) if `smo` is not invertible —
  /// callers that allow lossy ops should check IsInvertible first.
  Status Record(const Smo& smo, const TableStore& pre_state);

  /// Operators recorded so far, oldest first.
  const std::vector<Smo>& applied() const { return applied_; }

  /// The script that undoes everything recorded, newest first.
  std::vector<Smo> UndoScript() const;

  size_t size() const { return applied_.size(); }
  void Clear();

 private:
  std::vector<Smo> applied_;
  std::vector<Smo> inverses_;
};

}  // namespace cods

#endif  // CODS_EVOLUTION_INVERSE_H_

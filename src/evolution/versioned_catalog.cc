#include "evolution/versioned_catalog.h"

#include <unordered_set>

namespace cods {

uint64_t VersionedCatalog::Commit(const std::string& message) {
  Snapshot snap;
  snap.message = message;
  for (const std::string& name : working_.TableNames()) {
    snap.tables.emplace(name, working_.GetTable(name).ValueOrDie());
  }
  versions_.push_back(std::move(snap));
  return versions_.size();  // 1-based id
}

Result<const VersionedCatalog::Snapshot*> VersionedCatalog::FindVersion(
    uint64_t version) const {
  if (version == 0 || version > versions_.size()) {
    return Status::OutOfRange("no version " + std::to_string(version) +
                              " (have 1.." +
                              std::to_string(versions_.size()) + ")");
  }
  return &versions_[version - 1];
}

std::vector<VersionedCatalog::VersionInfo> VersionedCatalog::History()
    const {
  std::vector<VersionInfo> out;
  out.reserve(versions_.size());
  for (size_t i = 0; i < versions_.size(); ++i) {
    VersionInfo info;
    info.id = i + 1;
    info.message = versions_[i].message;
    for (const auto& [name, table] : versions_[i].tables) {
      info.table_names.push_back(name);
      info.total_rows += table->rows();
    }
    out.push_back(std::move(info));
  }
  return out;
}

Result<std::shared_ptr<const Table>> VersionedCatalog::GetTableAt(
    uint64_t version, const std::string& name) const {
  CODS_ASSIGN_OR_RETURN(const Snapshot* snap, FindVersion(version));
  auto it = snap->tables.find(name);
  if (it == snap->tables.end()) {
    return Status::KeyError("no table '" + name + "' in version " +
                            std::to_string(version));
  }
  return it->second;
}

Result<std::vector<std::string>> VersionedCatalog::TableNamesAt(
    uint64_t version) const {
  CODS_ASSIGN_OR_RETURN(const Snapshot* snap, FindVersion(version));
  std::vector<std::string> names;
  names.reserve(snap->tables.size());
  for (const auto& [name, _] : snap->tables) names.push_back(name);
  return names;
}

Status VersionedCatalog::Checkout(uint64_t version) {
  CODS_ASSIGN_OR_RETURN(const Snapshot* snap, FindVersion(version));
  Catalog fresh;
  for (const auto& [name, table] : snap->tables) {
    CODS_RETURN_NOT_OK(fresh.AddTable(table));
  }
  working_ = std::move(fresh);
  return Status::OK();
}

VersionedCatalog::StorageStats VersionedCatalog::ComputeStorageStats()
    const {
  StorageStats stats;
  std::unordered_set<const Column*> seen;
  auto account = [&](const std::shared_ptr<const Table>& table) {
    for (size_t i = 0; i < table->num_columns(); ++i) {
      const Column* col = table->column(i).get();
      stats.naive_bytes += col->SizeBytes();
      if (seen.insert(col).second) {
        stats.unique_bytes += col->SizeBytes();
      }
    }
  };
  for (const Snapshot& snap : versions_) {
    for (const auto& [_, table] : snap.tables) account(table);
  }
  for (const std::string& name : working_.TableNames()) {
    account(working_.GetTable(name).ValueOrDie());
  }
  return stats;
}

}  // namespace cods

// Multi-way decomposition. §2.4: "Decomposing a table into multiple
// tables can be done by recursively executing this operation." This
// helper runs that recursion: R is split into N output tables by a
// chain of binary lossless-join decompositions, reusing unchanged
// columns at every step.

#ifndef CODS_EVOLUTION_MULTI_DECOMPOSE_H_
#define CODS_EVOLUTION_MULTI_DECOMPOSE_H_

#include <memory>
#include <string>
#include <vector>

#include "evolution/decompose.h"

namespace cods {

/// One output table of a multi-way decomposition.
struct DecomposeOutput {
  std::string name;
  std::vector<std::string> columns;
  /// Declared key of this output. For every output except the one that
  /// keeps R's multiplicity (the "fact" side), the common attributes
  /// shared with the rest must form its key in R.
  std::vector<std::string> key;
};

/// Decomposes `r` into outputs.size() tables (>= 2) by recursion:
/// outputs[i] (for i >= 1) is split off the remainder in order, and
/// outputs[0] receives what is left — it is the side whose multiplicity
/// matches R (columns reused, never rewritten).
///
/// Each binary step must itself be a lossless-join decomposition; the
/// usual preconditions (coverage, shared attributes, key declarations)
/// apply stepwise, and options.validate_fd checks them on the data.
Result<std::vector<std::shared_ptr<const Table>>> CodsDecomposeMulti(
    const Table& r, const std::vector<DecomposeOutput>& outputs,
    EvolutionObserver* observer = nullptr,
    const DecomposeOptions& options = {});

}  // namespace cods

#endif  // CODS_EVOLUTION_MULTI_DECOMPOSE_H_

#include "evolution/multi_decompose.h"

#include <algorithm>
#include <unordered_set>

namespace cods {

Result<std::vector<std::shared_ptr<const Table>>> CodsDecomposeMulti(
    const Table& r, const std::vector<DecomposeOutput>& outputs,
    EvolutionObserver* observer, const DecomposeOptions& options) {
  if (outputs.size() < 2) {
    return Status::InvalidArgument(
        "multi-way decomposition needs at least two outputs");
  }
  // Coverage check up front for a better error than a late step failure.
  for (const ColumnSpec& spec : r.schema().columns()) {
    bool covered = false;
    for (const DecomposeOutput& out : outputs) {
      if (std::find(out.columns.begin(), out.columns.end(), spec.name) !=
          out.columns.end()) {
        covered = true;
        break;
      }
    }
    if (!covered) {
      return Status::ConstraintViolation("column '" + spec.name +
                                         "' appears in no output table");
    }
  }

  std::vector<std::shared_ptr<const Table>> result(outputs.size());

  // Recursion state: `remainder` holds output[0]'s columns plus the
  // columns of all not-yet-split outputs.
  std::shared_ptr<const Table> remainder = r.WithName(outputs[0].name);
  for (size_t i = outputs.size(); i-- > 1;) {
    const DecomposeOutput& out = outputs[i];
    // The S side of this binary step: everything in the remainder except
    // out's exclusive columns (shared columns stay on both sides so the
    // join attributes exist).
    std::unordered_set<std::string> out_cols(out.columns.begin(),
                                             out.columns.end());
    std::unordered_set<std::string> keep_needed;
    for (size_t j = 0; j < i; ++j) {
      for (const std::string& c : outputs[j].columns) keep_needed.insert(c);
    }
    std::vector<std::string> s_columns;
    for (const ColumnSpec& spec : remainder->schema().columns()) {
      if (!out_cols.count(spec.name) || keep_needed.count(spec.name)) {
        s_columns.push_back(spec.name);
      }
    }
    const std::string step_name =
        i == 1 ? outputs[0].name
               : outputs[0].name + "__rest" + std::to_string(i);
    CODS_ASSIGN_OR_RETURN(
        DecomposeResult step,
        CodsDecompose(*remainder, step_name, s_columns,
                      i == 1 ? outputs[0].key : std::vector<std::string>{},
                      out.name, out.columns, out.key, observer, options));
    result[i] = step.t;
    remainder = step.s;
  }
  result[0] = remainder;
  return result;
}

}  // namespace cods

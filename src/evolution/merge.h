// MERGE TABLES (CODS §2.5): data-level equi-join of two tables into one.
//
// Key–foreign-key mergence (§2.5.1): when the join attributes comprise
// the key of T, every column of S is reused by pointer and only T's
// non-key columns are generated for the output. Instead of random-access
// OR-combination per value vector, a single sequential scan of S's key
// column appends bits to per-value output builders in increasing row
// order — same result, sequential access (the optimization the paper
// describes).
//
// General mergence (§2.5.2): any equi-join, neither side reusable.
// Two passes over the join attributes:
//   pass 1 counts occurrences n1(v), n2(v) of each distinct join value;
//   v occupies n1·n2 consecutive output rows (output clustered by join
//   value), so the join-attribute bitmaps are pure fill runs;
//   pass 2 lays S's non-join values out consecutively (each S row's value
//   repeated n2 times) and T's at constant stride n2, appending bits in
//   increasing position — compressed output built directly.

#ifndef CODS_EVOLUTION_MERGE_H_
#define CODS_EVOLUTION_MERGE_H_

#include <memory>
#include <string>
#include <vector>

#include "evolution/observer.h"
#include "exec/exec.h"
#include "storage/table.h"

namespace cods {

/// Options controlling mergence.
struct MergeOptions {
  /// Verify on the data that the join attributes form a key of the reused
  /// side's counterpart before taking the key–FK fast path.
  bool validate_key = false;
  /// Force the general two-pass algorithm even when the key–FK fast path
  /// applies (used by the ablation benchmark).
  bool force_general = false;
  /// Execution context for the parallel phases. nullptr: process default.
  const ExecContext* exec = nullptr;
};

/// Result of a mergence.
struct MergeResult {
  std::shared_ptr<const Table> table;
  /// True when the key–foreign-key fast path was taken.
  bool used_key_fk = false;
};

/// Merges `s` and `t` on `join_columns` into a table named `out_name`
/// with declared key `out_key`. Output columns: all of S, then T's
/// non-join columns.
///
/// Dispatch: if the join attributes are T's declared key (or S's — the
/// inputs are swapped internally, changing the output column order to all
/// of T then S's non-join columns), the key–FK path runs; otherwise the
/// general two-pass algorithm.
Result<MergeResult> CodsMerge(const Table& s, const Table& t,
                              const std::vector<std::string>& join_columns,
                              const std::vector<std::string>& out_key,
                              const std::string& out_name,
                              EvolutionObserver* observer = nullptr,
                              const MergeOptions& options = {});

/// The key–FK path directly (join attributes must be a key of `t`).
Result<std::shared_ptr<const Table>> CodsMergeKeyFk(
    const Table& s, const Table& t,
    const std::vector<std::string>& join_columns,
    const std::vector<std::string>& out_key, const std::string& out_name,
    EvolutionObserver* observer = nullptr, const ExecContext* ctx = nullptr);

/// The general two-pass path directly.
Result<std::shared_ptr<const Table>> CodsMergeGeneral(
    const Table& s, const Table& t,
    const std::vector<std::string>& join_columns,
    const std::vector<std::string>& out_key, const std::string& out_name,
    EvolutionObserver* observer = nullptr, const ExecContext* ctx = nullptr);

}  // namespace cods

#endif  // CODS_EVOLUTION_MERGE_H_

// Versioned catalog: cheap snapshots of the whole database across schema
// versions. Because tables and columns are immutable and shared by
// pointer, committing a version costs O(#tables) pointers, not a data
// copy — the Wikipedia-style "170 schema versions in 5 years" history
// from the paper's introduction becomes affordable to keep online, and
// any old version stays queryable.

#ifndef CODS_EVOLUTION_VERSIONED_CATALOG_H_
#define CODS_EVOLUTION_VERSIONED_CATALOG_H_

#include <map>
#include <string>
#include <vector>

#include "storage/catalog.h"

namespace cods {

/// A catalog plus an append-only history of committed versions.
class VersionedCatalog {
 public:
  /// Metadata of one committed version.
  struct VersionInfo {
    uint64_t id = 0;
    std::string message;
    std::vector<std::string> table_names;
    uint64_t total_rows = 0;
  };

  VersionedCatalog() = default;

  VersionedCatalog(const VersionedCatalog&) = delete;
  VersionedCatalog& operator=(const VersionedCatalog&) = delete;

  /// The mutable working catalog (apply SMOs against this).
  Catalog* working() { return &working_; }
  const Catalog& working() const { return working_; }

  /// Snapshots the working catalog as a new version; returns its id
  /// (ids start at 1 and increase).
  uint64_t Commit(const std::string& message);

  /// Number of committed versions.
  size_t num_versions() const { return versions_.size(); }

  /// Metadata for every committed version, oldest first.
  std::vector<VersionInfo> History() const;

  /// A table as of a committed version.
  Result<std::shared_ptr<const Table>> GetTableAt(
      uint64_t version, const std::string& name) const;

  /// Table names as of a committed version.
  Result<std::vector<std::string>> TableNamesAt(uint64_t version) const;

  /// Replaces the working catalog with the state of `version` (the
  /// history itself is untouched, so this models "git checkout").
  Status Checkout(uint64_t version);

  /// Storage accounting: bytes of unique column data reachable from all
  /// versions (columns shared between versions counted once), and the
  /// bytes a naive copy-per-version scheme would hold.
  struct StorageStats {
    uint64_t unique_bytes = 0;
    uint64_t naive_bytes = 0;
  };
  StorageStats ComputeStorageStats() const;

 private:
  struct Snapshot {
    std::string message;
    std::map<std::string, std::shared_ptr<const Table>> tables;
  };

  Result<const Snapshot*> FindVersion(uint64_t version) const;

  Catalog working_;
  std::vector<Snapshot> versions_;
};

}  // namespace cods

#endif  // CODS_EVOLUTION_VERSIONED_CATALOG_H_

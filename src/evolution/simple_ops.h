// The structurally simple SMOs of Table 1: CREATE / DROP / RENAME TABLE
// are catalog-only; COPY shares immutable columns; UNION and PARTITION
// move data but never change values — UNION concatenates compressed
// bitmaps, PARTITION splits them with the same position-filter primitive
// decomposition uses; ADD / DROP / RENAME COLUMN touch only the affected
// column.

#ifndef CODS_EVOLUTION_SIMPLE_OPS_H_
#define CODS_EVOLUTION_SIMPLE_OPS_H_

#include <memory>
#include <string>

#include "evolution/observer.h"
#include "evolution/smo.h"
#include "exec/exec.h"
#include "storage/table.h"

namespace cods {

/// Creates an empty table with the given schema.
Result<std::shared_ptr<const Table>> MakeEmptyTable(const std::string& name,
                                                    const Schema& schema);

/// Returns a copy of `table` whose RLE columns are re-encoded as WAH
/// bitmaps (bitmap columns are shared untouched), or nullptr when no
/// column needed conversion. The bitmap-domain operators use this to
/// accept tables with sorted (RLE) columns transparently.
std::shared_ptr<const Table> ReencodeRleToWah(const Table& table);

/// Copies `src` under a new name. With `deep` the bitmap storage is
/// physically duplicated (real data movement); otherwise the immutable
/// columns are shared, making the copy O(#columns).
Result<std::shared_ptr<const Table>> CopyTableOp(const Table& src,
                                                 const std::string& name,
                                                 bool deep = false);

/// UNION TABLES: concatenates the tuples of `a` and `b` (same layout)
/// into one table. Per value, the output bitmap is the concatenation of
/// the input bitmaps — executed on compressed words.
Result<std::shared_ptr<const Table>> UnionTablesOp(
    const Table& a, const Table& b, const std::string& name,
    EvolutionObserver* observer = nullptr, const ExecContext* ctx = nullptr);

/// PARTITION TABLE: splits `src` into rows satisfying
/// `column compare_op literal` (first output) and the rest (second).
/// The selection bitmap is an OR of value bitmaps whose dictionary entry
/// satisfies the predicate; both outputs are produced by position
/// filtering.
struct PartitionResult {
  std::shared_ptr<const Table> matching;
  std::shared_ptr<const Table> rest;
};
Result<PartitionResult> PartitionTableOp(
    const Table& src, const std::string& name1, const std::string& name2,
    const std::string& column, CompareOp op, const Value& literal,
    EvolutionObserver* observer = nullptr, const ExecContext* ctx = nullptr);

/// ADD COLUMN with a constant default: the new column is one dictionary
/// entry whose bitmap is a single one-fill — O(1) in the table size.
Result<std::shared_ptr<const Table>> AddColumnOp(const Table& src,
                                                 const ColumnSpec& spec,
                                                 const Value& default_value);

/// ADD COLUMN with per-row data supplied by the user (demo's "load from
/// user input").
Result<std::shared_ptr<const Table>> AddColumnWithDataOp(
    const Table& src, const ColumnSpec& spec,
    const std::vector<Value>& values);

/// DROP COLUMN: drops the column; all other columns are untouched.
Result<std::shared_ptr<const Table>> DropColumnOp(const Table& src,
                                                  const std::string& column);

/// RENAME COLUMN: schema-only change.
Result<std::shared_ptr<const Table>> RenameColumnOp(const Table& src,
                                                    const std::string& from,
                                                    const std::string& to);

}  // namespace cods

#endif  // CODS_EVOLUTION_SIMPLE_OPS_H_

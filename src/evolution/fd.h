// Functional-dependency and key checks over column tables. The
// decomposition operator's correctness rests on §2.4's two properties:
// a lossless-join decomposition requires the common attributes to hold a
// candidate key of one output, which in turn means the changed table's
// non-key attributes are functionally dependent on its key in R. These
// helpers let the engine verify those preconditions instead of trusting
// declarations.

#ifndef CODS_EVOLUTION_FD_H_
#define CODS_EVOLUTION_FD_H_

#include <string>
#include <vector>

#include "storage/table.h"

namespace cods {

/// True iff `lhs -> rhs` holds in `table` (every distinct lhs tuple
/// co-occurs with exactly one rhs tuple). O(rows) with hashing.
Result<bool> FunctionalDependencyHolds(const Table& table,
                                       const std::vector<std::string>& lhs,
                                       const std::vector<std::string>& rhs);

/// True iff `columns` is a candidate key of `table` (no duplicate
/// projections).
Result<bool> IsCandidateKey(const Table& table,
                            const std::vector<std::string>& columns);

/// Checks that decomposing `table` into (s_columns) and (t_columns) is
/// lossless: the column sets cover the schema, their intersection is
/// non-empty, and the intersection functionally determines at least one
/// side's remaining attributes. Returns which side is unchanged:
/// +1 when the intersection is a key for the T side (S unchanged),
/// -1 when it is a key for the S side (T unchanged), or an error.
Result<int> CheckLosslessDecomposition(
    const Table& table, const std::vector<std::string>& s_columns,
    const std::vector<std::string>& t_columns);

}  // namespace cods

#endif  // CODS_EVOLUTION_FD_H_

#include "evolution/advisor.h"

#include <algorithm>
#include <sstream>

namespace cods {

const char* EvolutionStrategyToString(EvolutionStrategy strategy) {
  switch (strategy) {
    case EvolutionStrategy::kDataLevel:
      return "data-level (CODS)";
    case EvolutionStrategy::kQueryLevel:
      return "query-level (SQL)";
  }
  return "?";
}

double EvolutionCostEstimate::Advantage() const {
  uint64_t data = data_level_total();
  if (data == 0) data = 1;
  return static_cast<double>(query_level_total()) /
         static_cast<double>(data);
}

EvolutionStrategy EvolutionCostEstimate::Recommendation() const {
  return data_level_total() <= query_level_total()
             ? EvolutionStrategy::kDataLevel
             : EvolutionStrategy::kQueryLevel;
}

std::string EvolutionCostEstimate::ToString() const {
  std::ostringstream out;
  out << "data-level:  read " << data_level_read_bytes << " B, write "
      << data_level_write_bytes << " B (total " << data_level_total()
      << " B)\n";
  out << "query-level: read " << query_level_read_bytes << " B, write "
      << query_level_write_bytes << " B (total " << query_level_total()
      << " B)\n";
  out << "recommendation: " << EvolutionStrategyToString(Recommendation())
      << " (" << Advantage() << "x less traffic than query-level)";
  return out.str();
}

uint64_t EstimateTupleBytes(const Table& table) {
  // Per value: 1 tag byte + payload. Strings use the average dictionary
  // entry length; numbers are 8 bytes.
  uint64_t bytes = 4;  // arity prefix
  for (size_t c = 0; c < table.num_columns(); ++c) {
    const Column& col = *table.column(c);
    if (col.type() == DataType::kString) {
      uint64_t total_len = 0;
      for (const Value& v : col.dict().values()) total_len += v.str().size();
      uint64_t avg =
          col.dict().empty() ? 0 : total_len / col.dict().size();
      bytes += 1 + 4 + avg;
    } else {
      bytes += 1 + 8;
    }
  }
  return bytes;
}

namespace {

// Compressed bytes of the named columns.
Result<uint64_t> ColumnsBytes(const Table& table,
                              const std::vector<std::string>& names) {
  uint64_t bytes = 0;
  for (const std::string& n : names) {
    CODS_ASSIGN_OR_RETURN(auto col, table.ColumnByName(n));
    bytes += col->SizeBytes();
  }
  return bytes;
}

}  // namespace

Result<EvolutionCostEstimate> EstimateDecompose(
    const Table& r, const std::vector<std::string>& s_columns,
    const std::vector<std::string>& t_columns) {
  std::vector<std::string> common;
  for (const std::string& c : s_columns) {
    if (std::find(t_columns.begin(), t_columns.end(), c) !=
        t_columns.end()) {
      common.push_back(c);
    }
  }
  if (common.empty()) {
    return Status::ConstraintViolation(
        "decomposition outputs share no attributes");
  }
  CODS_ASSIGN_OR_RETURN(auto key_col, r.ColumnByName(common.front()));
  uint64_t distinct = key_col->distinct_count();

  EvolutionCostEstimate est;
  // Data level: read the generated side's compressed columns (the
  // unchanged side is pointer-reused: zero bytes), write the shrunken
  // bitmaps — approximated by scaling by |T| / |R|.
  CODS_ASSIGN_OR_RETURN(uint64_t t_bytes, ColumnsBytes(r, t_columns));
  est.data_level_read_bytes = t_bytes;
  double shrink = r.rows() == 0
                      ? 0.0
                      : static_cast<double>(distinct) /
                            static_cast<double>(r.rows());
  est.data_level_write_bytes =
      static_cast<uint64_t>(static_cast<double>(t_bytes) * shrink) + 1;

  // Query level: materialize every tuple of R (decompress), write S
  // verbatim as tuples, dedup + write T, then re-encode both outputs.
  uint64_t tuple_bytes = EstimateTupleBytes(r);
  est.query_level_read_bytes = r.rows() * tuple_bytes;
  CODS_ASSIGN_OR_RETURN(uint64_t s_bytes, ColumnsBytes(r, s_columns));
  est.query_level_write_bytes =
      r.rows() * tuple_bytes        // S tuples (same multiplicity as R)
      + distinct * tuple_bytes      // T tuples
      + s_bytes                     // re-encode S columns
      + est.data_level_write_bytes; // re-encode T columns
  return est;
}

Result<EvolutionCostEstimate> EstimateMerge(
    const Table& s, const Table& t,
    const std::vector<std::string>& join_columns) {
  EvolutionCostEstimate est;
  // Data level: scan S's key column + all of T compressed; write T's
  // non-key columns stretched to |S| rows; S's columns are reused.
  CODS_ASSIGN_OR_RETURN(uint64_t s_key_bytes,
                        ColumnsBytes(s, join_columns));
  est.data_level_read_bytes = s_key_bytes + t.SizeBytes();
  uint64_t t_payload_bytes = t.SizeBytes();
  for (const std::string& j : join_columns) {
    CODS_ASSIGN_OR_RETURN(auto col, t.ColumnByName(j));
    t_payload_bytes -= std::min(t_payload_bytes, col->SizeBytes());
  }
  double stretch = t.rows() == 0 ? 1.0
                                 : static_cast<double>(s.rows()) /
                                       static_cast<double>(t.rows());
  est.data_level_write_bytes =
      static_cast<uint64_t>(static_cast<double>(t_payload_bytes) *
                            stretch) +
      1;

  // Query level: materialize both inputs, write the join result as
  // tuples, re-encode everything.
  uint64_t s_tuple = EstimateTupleBytes(s);
  uint64_t t_tuple = EstimateTupleBytes(t);
  est.query_level_read_bytes = s.rows() * s_tuple + t.rows() * t_tuple;
  uint64_t out_tuple = s_tuple + t_tuple;  // joined width (join col dup ok)
  est.query_level_write_bytes =
      s.rows() * out_tuple + s.SizeBytes() + est.data_level_write_bytes;
  return est;
}

}  // namespace cods

#include "evolution/fd.h"

#include <algorithm>
#include <unordered_map>
#include <unordered_set>

#include "common/logging.h"

namespace cods {

namespace {

// Decodes the named columns into row-major vid tuples packed as vectors.
Result<std::vector<std::vector<Vid>>> DecodeColumns(
    const Table& table, const std::vector<std::string>& names) {
  std::vector<std::vector<Vid>> out;
  out.reserve(names.size());
  for (const std::string& n : names) {
    CODS_ASSIGN_OR_RETURN(auto col, table.ColumnByName(n));
    out.push_back(col->DecodeVids());
  }
  return out;
}

uint64_t TupleHash(const std::vector<std::vector<Vid>>& cols, uint64_t row) {
  uint64_t h = 0x9e3779b97f4a7c15ull;
  for (const auto& c : cols) {
    h ^= c[row] + 0x9e3779b97f4a7c15ull + (h << 6) + (h >> 2);
  }
  return h;
}

bool TupleEqual(const std::vector<std::vector<Vid>>& cols, uint64_t a,
                uint64_t b) {
  for (const auto& c : cols) {
    if (c[a] != c[b]) return false;
  }
  return true;
}

}  // namespace

Result<bool> FunctionalDependencyHolds(const Table& table,
                                       const std::vector<std::string>& lhs,
                                       const std::vector<std::string>& rhs) {
  if (lhs.empty()) {
    return Status::InvalidArgument("empty FD left-hand side");
  }
  CODS_ASSIGN_OR_RETURN(auto lhs_cols, DecodeColumns(table, lhs));
  CODS_ASSIGN_OR_RETURN(auto rhs_cols, DecodeColumns(table, rhs));
  // Map each distinct lhs tuple to the first row holding it, then check
  // that every later row with the same lhs agrees on rhs.
  auto hash = [&](uint64_t row) { return TupleHash(lhs_cols, row); };
  auto eq = [&](uint64_t a, uint64_t b) { return TupleEqual(lhs_cols, a, b); };
  std::unordered_map<uint64_t, uint64_t, decltype(hash), decltype(eq)>
      first_row(/*bucket_count=*/1024, hash, eq);
  for (uint64_t r = 0; r < table.rows(); ++r) {
    auto [it, inserted] = first_row.try_emplace(r, r);
    if (!inserted) {
      if (!TupleEqual(rhs_cols, it->second, r)) return false;
    }
  }
  return true;
}

Result<bool> IsCandidateKey(const Table& table,
                            const std::vector<std::string>& columns) {
  if (columns.empty()) {
    return Status::InvalidArgument("empty key column list");
  }
  CODS_ASSIGN_OR_RETURN(auto cols, DecodeColumns(table, columns));
  auto hash = [&](uint64_t row) { return TupleHash(cols, row); };
  auto eq = [&](uint64_t a, uint64_t b) { return TupleEqual(cols, a, b); };
  std::unordered_set<uint64_t, decltype(hash), decltype(eq)> seen(
      /*bucket_count=*/1024, hash, eq);
  for (uint64_t r = 0; r < table.rows(); ++r) {
    if (!seen.insert(r).second) return false;
  }
  return true;
}

Result<int> CheckLosslessDecomposition(
    const Table& table, const std::vector<std::string>& s_columns,
    const std::vector<std::string>& t_columns) {
  // Coverage: every schema column appears in s_columns or t_columns.
  for (const ColumnSpec& spec : table.schema().columns()) {
    bool in_s = std::find(s_columns.begin(), s_columns.end(), spec.name) !=
                s_columns.end();
    bool in_t = std::find(t_columns.begin(), t_columns.end(), spec.name) !=
                t_columns.end();
    if (!in_s && !in_t) {
      return Status::ConstraintViolation(
          "column '" + spec.name + "' appears in neither output table");
    }
  }
  // Intersection (the join attributes).
  std::vector<std::string> common;
  for (const std::string& c : s_columns) {
    if (std::find(t_columns.begin(), t_columns.end(), c) !=
        t_columns.end()) {
      common.push_back(c);
    }
  }
  if (common.empty()) {
    return Status::ConstraintViolation(
        "decomposition outputs share no attributes; join would be a "
        "cartesian product");
  }
  // Rest of each side.
  auto rest = [&](const std::vector<std::string>& side) {
    std::vector<std::string> out;
    for (const std::string& c : side) {
      if (std::find(common.begin(), common.end(), c) == common.end()) {
        out.push_back(c);
      }
    }
    return out;
  };
  std::vector<std::string> s_rest = rest(s_columns);
  std::vector<std::string> t_rest = rest(t_columns);
  // common -> t_rest means the common attrs are a key of T (after
  // dedup), i.e. S is unchanged.
  if (t_rest.empty()) {
    // T is just the common attrs; trivially functionally determined.
    return +1;
  }
  CODS_ASSIGN_OR_RETURN(bool t_fd,
                        FunctionalDependencyHolds(table, common, t_rest));
  if (t_fd) return +1;
  if (s_rest.empty()) return -1;
  CODS_ASSIGN_OR_RETURN(bool s_fd,
                        FunctionalDependencyHolds(table, common, s_rest));
  if (s_fd) return -1;
  return Status::ConstraintViolation(
      "decomposition is lossy: the shared attributes determine neither "
      "side's remaining attributes");
}

}  // namespace cods

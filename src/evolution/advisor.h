// Evolution cost advisor. The paper argues CODS "guides the choice
// between row oriented databases and column oriented databases when
// schema changes are potentially wanted" — this module turns that into
// an API: given a table and a planned DECOMPOSE or MERGE, estimate the
// bytes each execution strategy touches and recommend one.
//
// The estimates are intentionally simple traffic models (bytes read +
// bytes written), not calibrated latencies; they capture the structural
// asymmetry that makes data-level evolution win — unchanged columns cost
// zero and compressed bitmaps are far smaller than materialized tuples.

#ifndef CODS_EVOLUTION_ADVISOR_H_
#define CODS_EVOLUTION_ADVISOR_H_

#include <string>
#include <vector>

#include "storage/table.h"

namespace cods {

/// Execution strategy for one evolution.
enum class EvolutionStrategy {
  kDataLevel,   // CODS: operate on compressed bitmaps
  kQueryLevel,  // materialize tuples, run SQL-shaped plan, re-encode
};

const char* EvolutionStrategyToString(EvolutionStrategy strategy);

/// Byte-traffic estimate for one evolution under both strategies.
struct EvolutionCostEstimate {
  uint64_t data_level_read_bytes = 0;
  uint64_t data_level_write_bytes = 0;
  uint64_t query_level_read_bytes = 0;
  uint64_t query_level_write_bytes = 0;

  uint64_t data_level_total() const {
    return data_level_read_bytes + data_level_write_bytes;
  }
  uint64_t query_level_total() const {
    return query_level_read_bytes + query_level_write_bytes;
  }
  /// How many times more bytes the query-level strategy touches.
  double Advantage() const;
  /// The cheaper strategy.
  EvolutionStrategy Recommendation() const;
  /// Multi-line human-readable report.
  std::string ToString() const;
};

/// Estimates decomposing `r` into (s_columns) and (t_columns), where the
/// common attributes key the T side.
Result<EvolutionCostEstimate> EstimateDecompose(
    const Table& r, const std::vector<std::string>& s_columns,
    const std::vector<std::string>& t_columns);

/// Estimates merging s ⋈ t on `join_columns` (key–FK shape: the join
/// attributes key `t`).
Result<EvolutionCostEstimate> EstimateMerge(
    const Table& s, const Table& t,
    const std::vector<std::string>& join_columns);

/// Average serialized width of one materialized tuple of `table`
/// (exposed for tests; drives the query-level read estimate).
uint64_t EstimateTupleBytes(const Table& table);

}  // namespace cods

#endif  // CODS_EVOLUTION_ADVISOR_H_

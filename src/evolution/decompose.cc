#include "evolution/decompose.h"

#include <algorithm>
#include <unordered_map>

#include "bitmap/wah_filter.h"
#include "evolution/fd.h"
#include "exec/exec.h"
#include "exec/parallel_build.h"

namespace cods {

Result<std::vector<uint64_t>> DistinctionPositions(
    const Table& table, const std::vector<std::string>& key_columns,
    const ExecContext* ctx) {
  ExecContext exec = ResolveContext(ctx);
  if (key_columns.empty()) {
    return Status::InvalidArgument("distinction needs at least one column");
  }
  std::vector<uint64_t> positions;
  if (key_columns.size() == 1) {
    CODS_ASSIGN_OR_RETURN(auto col, table.ColumnByName(key_columns[0]));
    if (col->encoding() == ColumnEncoding::kRle) {
      // RLE fast path: first occurrence per value off the run list,
      // O(#runs).
      std::vector<bool> seen(col->distinct_count(), false);
      uint64_t offset = 0;
      for (const RleVector::Run& run : col->rle().runs()) {
        if (!seen[run.value]) {
          seen[run.value] = true;
          positions.push_back(offset);
        }
        offset += run.length;
      }
    } else {
      // Single-attribute key: the bitmap index *is* the distinct-value
      // index. One representative per value = first set bit per bitmap;
      // never decompresses. The per-vid probes are independent, so they
      // run in parallel into a pre-sized slot array that is compacted in
      // vid order (the sort below erases any ordering effect anyway).
      std::vector<uint64_t> first(col->distinct_count());
      Status st = ParallelFor(
          exec, 0, col->distinct_count(), 64, [&](uint64_t vid) {
            first[vid] = col->bitmap(static_cast<Vid>(vid)).FirstSetBit();
            return Status::OK();
          });
      CODS_CHECK(st.ok()) << st.ToString();
      positions.reserve(col->distinct_count());
      for (uint64_t f : first) {
        if (f < table.rows()) positions.push_back(f);
      }
    }
  } else {
    // Composite key: sequential scan with a hash on vid tuples.
    std::vector<std::vector<Vid>> cols;
    cols.reserve(key_columns.size());
    for (const std::string& name : key_columns) {
      CODS_ASSIGN_OR_RETURN(auto col, table.ColumnByName(name));
      cols.push_back(col->DecodeVids());
    }
    auto hash = [&](uint64_t row) {
      uint64_t h = 0x9e3779b97f4a7c15ull;
      for (const auto& c : cols) {
        h ^= c[row] + 0x9e3779b97f4a7c15ull + (h << 6) + (h >> 2);
      }
      return h;
    };
    auto eq = [&](uint64_t a, uint64_t b) {
      for (const auto& c : cols) {
        if (c[a] != c[b]) return false;
      }
      return true;
    };
    std::unordered_map<uint64_t, uint64_t, decltype(hash), decltype(eq)>
        first_row(/*bucket_count=*/1024, hash, eq);
    for (uint64_t r = 0; r < table.rows(); ++r) {
      first_row.try_emplace(r, r);
    }
    positions.reserve(first_row.size());
    // cods-lint: allow(unordered-iteration): the collected positions are
    // sorted two lines down, so hash order never reaches the output.
    for (const auto& [_, row] : first_row) positions.push_back(row);
  }
  std::sort(positions.begin(), positions.end());
  return positions;
}

Result<DecomposeResult> CodsDecompose(
    const Table& r, const std::string& s_name,
    const std::vector<std::string>& s_columns,
    const std::vector<std::string>& s_key, const std::string& t_name,
    const std::vector<std::string>& t_columns,
    const std::vector<std::string>& t_key, EvolutionObserver* observer,
    const DecomposeOptions& options) {
  const std::string op = "DECOMPOSE " + r.name();

  // ---- Decide which output is unchanged (Property 1). -------------------
  // The common attributes must be a key of the *changed* table. We accept
  // the declaration through t_key/s_key; with validate_fd we confirm (or
  // discover) it from the data.
  std::vector<std::string> common;
  for (const std::string& c : s_columns) {
    if (std::find(t_columns.begin(), t_columns.end(), c) !=
        t_columns.end()) {
      common.push_back(c);
    }
  }
  if (common.empty()) {
    return Status::ConstraintViolation(
        "outputs of a lossless-join decomposition must share attributes");
  }
  for (const ColumnSpec& spec : r.schema().columns()) {
    bool covered =
        std::find(s_columns.begin(), s_columns.end(), spec.name) !=
            s_columns.end() ||
        std::find(t_columns.begin(), t_columns.end(), spec.name) !=
            t_columns.end();
    if (!covered) {
      return Status::ConstraintViolation("column '" + spec.name +
                                         "' missing from both outputs");
    }
  }

  auto set_equal = [](std::vector<std::string> a,
                      std::vector<std::string> b) {
    std::sort(a.begin(), a.end());
    std::sort(b.begin(), b.end());
    return a == b;
  };

  // +1: S unchanged / T generated; -1: T unchanged / S generated.
  int unchanged_side = 0;
  if (set_equal(t_key, common)) {
    unchanged_side = +1;
  } else if (set_equal(s_key, common)) {
    unchanged_side = -1;
  }
  if (options.validate_fd || unchanged_side == 0) {
    ScopedStep step(observer, op, "validate",
                    "checking lossless-join precondition on data");
    CODS_ASSIGN_OR_RETURN(int side,
                          CheckLosslessDecomposition(r, s_columns, t_columns));
    if (unchanged_side == 0) {
      unchanged_side = side;
    } else if (unchanged_side != side) {
      // The declared key side disagrees with the data; re-check the
      // declared direction explicitly before failing.
      const auto& changed_cols = unchanged_side > 0 ? t_columns : s_columns;
      std::vector<std::string> rest;
      for (const std::string& c : changed_cols) {
        if (std::find(common.begin(), common.end(), c) == common.end()) {
          rest.push_back(c);
        }
      }
      if (!rest.empty()) {
        CODS_ASSIGN_OR_RETURN(bool holds,
                              FunctionalDependencyHolds(r, common, rest));
        if (!holds) {
          return Status::ConstraintViolation(
              "declared key does not functionally determine the changed "
              "table's attributes");
        }
      }
    }
  }

  // Normalize: `u_*` is the unchanged output, `g_*` the generated one.
  const bool s_unchanged = unchanged_side > 0;
  const std::string& u_name = s_unchanged ? s_name : t_name;
  const std::string& g_name = s_unchanged ? t_name : s_name;
  const std::vector<std::string>& u_columns =
      s_unchanged ? s_columns : t_columns;
  const std::vector<std::string>& g_columns =
      s_unchanged ? t_columns : s_columns;
  const std::vector<std::string>& u_key = s_unchanged ? s_key : t_key;
  const std::vector<std::string>& g_key = s_unchanged ? t_key : s_key;

  DecomposeResult result;

  // ---- Unchanged output: reuse R's columns by pointer. -------------------
  {
    ScopedStep step(observer, op, "reuse",
                    u_name + " reuses " + std::to_string(u_columns.size()) +
                        " columns of " + r.name());
    std::vector<ColumnSpec> specs;
    std::vector<std::shared_ptr<const Column>> cols;
    for (const std::string& name : u_columns) {
      CODS_ASSIGN_OR_RETURN(size_t idx, r.schema().ColumnIndex(name));
      specs.push_back(r.schema().column(idx));
      cols.push_back(r.column(idx));
    }
    CODS_ASSIGN_OR_RETURN(Schema u_schema,
                          Schema::Make(std::move(specs), u_key));
    CODS_ASSIGN_OR_RETURN(
        auto u_table,
        Table::Make(u_name, std::move(u_schema), std::move(cols), r.rows()));
    (s_unchanged ? result.s : result.t) = std::move(u_table);
  }

  // ---- Step 1: distinction. ----------------------------------------------
  std::vector<uint64_t> positions;
  {
    ScopedStep step(observer, op, "distinction",
                    "one representative row per distinct (" +
                        [&] {
                          std::string out;
                          for (size_t i = 0; i < common.size(); ++i) {
                            if (i > 0) out += ", ";
                            out += common[i];
                          }
                          return out;
                        }() +
                        ")");
    CODS_ASSIGN_OR_RETURN(positions,
                          DistinctionPositions(r, common, options.exec));
  }
  result.distinct_keys = positions.size();

  // ---- Step 2: bitmap filtering. -----------------------------------------
  {
    ScopedStep step(observer, op, "filtering",
                    "shrinking bitmaps of " +
                        std::to_string(g_columns.size()) + " columns to " +
                        std::to_string(positions.size()) + " positions");
    // One rank index over the position list, shared by every bitmap of
    // every generated column: aggregate filtering cost is O(rows +
    // total code words), independent of the number of distinct values.
    WahPositionFilter filter(positions, r.rows());
    std::vector<ColumnSpec> specs;
    std::vector<std::shared_ptr<const Column>> cols;
    for (const std::string& name : g_columns) {
      CODS_ASSIGN_OR_RETURN(size_t idx, r.schema().ColumnIndex(name));
      specs.push_back(r.schema().column(idx));
      const Column& src = *r.column(idx);
      if (src.encoding() == ColumnEncoding::kRle) {
        // RLE-native filtering: two-pointer walk over (runs, positions)
        // emits the filtered sequence as runs; the output keeps the RLE
        // encoding (sortedness is preserved by position filtering).
        RleVector out;
        size_t i = 0;
        uint64_t offset = 0;
        for (const RleVector::Run& run : src.rle().runs()) {
          uint64_t end = offset + run.length;
          uint64_t taken = 0;
          while (i < positions.size() && positions[i] < end) {
            ++i;
            ++taken;
          }
          out.AppendRun(run.value, taken);
          offset = end;
        }
        cols.push_back(Column::FromRle(src.type(), src.dict(),
                                       std::move(out)));
        continue;
      }
      // Per-value filtering is independent: one shared read-only rank
      // index, one output slot per vid (inside FilterColumnBitmaps).
      ExecContext exec = ResolveContext(options.exec);
      CODS_ASSIGN_OR_RETURN(
          auto filtered_col,
          FilterColumnBitmaps(exec, src, filter, "DECOMPOSE"));
      cols.push_back(std::move(filtered_col));
    }
    CODS_ASSIGN_OR_RETURN(Schema g_schema,
                          Schema::Make(std::move(specs), g_key));
    CODS_ASSIGN_OR_RETURN(auto g_table,
                          Table::Make(g_name, std::move(g_schema),
                                      std::move(cols), positions.size()));
    (s_unchanged ? result.t : result.s) = std::move(g_table);
  }
  return result;
}

}  // namespace cods

// The CODS evolution engine: interprets Schema Modification Operators
// against a catalog, executing data evolution at the data level. This is
// the component behind the demo's "execution" button.

#ifndef CODS_EVOLUTION_ENGINE_H_
#define CODS_EVOLUTION_ENGINE_H_

#include <vector>

#include "evolution/decompose.h"
#include "evolution/merge.h"
#include "evolution/observer.h"
#include "evolution/simple_ops.h"
#include "evolution/smo.h"
#include "exec/exec.h"
#include "storage/catalog.h"

namespace cods {

/// Engine options.
struct EngineOptions {
  /// Check lossless-join / key preconditions on the data before running
  /// DECOMPOSE and the key–FK mergence path.
  bool validate_preconditions = false;
  /// Run Table::ValidateInvariants on every produced table (tests).
  bool validate_outputs = false;
  /// COPY TABLE physically duplicates storage instead of sharing it.
  bool deep_copy = false;
  /// Worker threads for the data-movement phases of DECOMPOSE / MERGE /
  /// UNION / PARTITION and output validation. 0: process default
  /// (CODS_THREADS env var, else hardware concurrency); 1: strictly
  /// serial. Results are bit-identical at every thread count.
  int num_threads = 0;
};

/// Applies SMOs to a catalog.
///
/// Catalog effects per operator:
///   CREATE/COPY add a table; DROP removes one; RENAME renames in place.
///   DECOMPOSE replaces the input with its two outputs; MERGE and UNION
///   replace their two inputs with the output; PARTITION replaces the
///   input with the two parts; the column operators replace the input
///   table with its new version under the same name.
class EvolutionEngine {
 public:
  explicit EvolutionEngine(Catalog* catalog,
                           EvolutionObserver* observer = nullptr,
                           EngineOptions options = {});

  /// Executes one operator.
  Status Apply(const Smo& smo);

  /// Executes a script; stops at the first failure.
  Status ApplyAll(const std::vector<Smo>& script);

  Catalog* catalog() { return catalog_; }

 private:
  Status ApplyCreateTable(const Smo& smo);
  Status ApplyDecompose(const Smo& smo);
  Status ApplyMerge(const Smo& smo);
  Status ApplyUnion(const Smo& smo);
  Status ApplyPartition(const Smo& smo);
  Status ApplyColumnOp(const Smo& smo);

  // Validates a produced table when validate_outputs is on.
  Status MaybeValidate(const Table& table);

  Catalog* catalog_;
  EvolutionObserver* observer_;
  EngineOptions options_;
  ExecContext exec_ctx_;
};

}  // namespace cods

#endif  // CODS_EVOLUTION_ENGINE_H_

// The CODS evolution engine: interprets Schema Modification Operators
// against a catalog, executing data evolution at the data level. This is
// the component behind the demo's "execution" button.
//
// Two script execution modes:
//   * ApplyAll — strictly serial, one operator at a time.
//   * ApplyAllPlanned — plans the script into a dependency DAG over the
//     operators' table read/write sets (plan/script_planner.h), runs it
//     on the exec-layer TaskGraph so independent operators overlap, and
//     commits each operator's privately staged catalog effects in script
//     order. The final catalog — schemas and per-column WAH code words —
//     is bit-identical to serial ApplyAll at every thread count, and a
//     mid-script failure leaves exactly the serial prefix committed with
//     the same error Status.

#ifndef CODS_EVOLUTION_ENGINE_H_
#define CODS_EVOLUTION_ENGINE_H_

#include <vector>

#include "evolution/decompose.h"
#include "evolution/merge.h"
#include "evolution/observer.h"
#include "evolution/simple_ops.h"
#include "evolution/smo.h"
#include "exec/exec.h"
#include "exec/task_graph.h"
#include "storage/catalog.h"

namespace cods {

class ScriptLog;        // common/script_log.h (durability's WalWriter)
class SnapshotCatalog;  // concurrency/snapshot_catalog.h
class StagedCatalog;    // plan/staged_catalog.h
struct CatalogEffect;   // plan/staged_catalog.h

/// Engine options.
struct EngineOptions {
  /// Check lossless-join / key preconditions on the data before running
  /// DECOMPOSE and the key–FK mergence path.
  bool validate_preconditions = false;
  /// Run Table::ValidateInvariants on every produced table (tests).
  bool validate_outputs = false;
  /// COPY TABLE physically duplicates storage instead of sharing it.
  bool deep_copy = false;
  /// ApplyAll routes whole scripts through the planner + task graph
  /// (ApplyAllPlanned) instead of the serial loop. Single-operator
  /// Apply calls are unaffected.
  bool plan_scripts = false;
  /// Worker threads for the data-movement phases of DECOMPOSE / MERGE /
  /// UNION / PARTITION, output validation, and — in planned mode — the
  /// script-level task graph. 0: process default (CODS_THREADS env var,
  /// else hardware concurrency); 1: strictly serial. Results are
  /// bit-identical at every thread count.
  int num_threads = 0;
  /// Log-before-apply: when set, Apply / ApplyAll / ApplyAllPlanned wrap
  /// every script in WAL BEGIN / STATEMENT* / COMMIT records (the
  /// statements logged BEFORE any catalog mutation, the commit fsync'd
  /// after), so a crash-recovered catalog replays to exactly the
  /// committed prefix. The commit record counts the statements that
  /// succeeded, which keeps mid-script failures replayable. A WAL write
  /// failure outranks the script's own status. Owned by the caller
  /// (durability/db.h).
  ///
  /// In snapshot-commit mode (engine bound to a SnapshotCatalog) the
  /// whole script is instead logged inside the commit critical section,
  /// after conflict validation and strictly before the root swap: an
  /// aborted script never reaches the log, and a root can only become
  /// visible to readers once the script producing it is fsync-durable.
  ScriptLog* wal = nullptr;
};

/// Applies SMOs to a catalog.
///
/// Catalog effects per operator:
///   CREATE/COPY add a table; DROP removes one; RENAME renames in place.
///   DECOMPOSE replaces the input with its two outputs; MERGE and UNION
///   replace their two inputs with the output; PARTITION replaces the
///   input with the two parts; the column operators replace the input
///   table with its new version under the same name.
class EvolutionEngine {
 public:
  explicit EvolutionEngine(Catalog* catalog,
                           EvolutionObserver* observer = nullptr,
                           EngineOptions options = {});

  /// Snapshot-commit mode: scripts stage against the catalog's current
  /// root (readers keep serving pinned snapshots, unblocked) and commit
  /// through SnapshotCatalog's first-writer-wins protocol — a competing
  /// committed writer aborts the script with kAborted unless the write
  /// sets are disjoint, in which case the effects rebase cleanly. Both
  /// the serial path and the planned task graph stage the same way; only
  /// the commit differs from Catalog mode.
  explicit EvolutionEngine(SnapshotCatalog* snapshots,
                           EvolutionObserver* observer = nullptr,
                           EngineOptions options = {});

  /// Executes one operator.
  Status Apply(const Smo& smo);

  /// Executes a script; stops at the first failure. Routes through
  /// ApplyAllPlanned when options.plan_scripts is set.
  Status ApplyAll(const std::vector<Smo>& script);

  /// Executes a script through the planner + task graph: independent
  /// operators overlap on num_threads workers, each operator's catalog
  /// effects are staged privately, and the effects commit in script
  /// order — so on success the catalog is bit-identical to serial
  /// ApplyAll, and on failure exactly the operators preceding the first
  /// failing SCRIPT POSITION are committed and that operator's Status
  /// is returned (operators with no path from the failure may have run;
  /// their staged effects are discarded). Fills `stats` (optional) with
  /// the task-graph execution statistics.
  Status ApplyAllPlanned(const std::vector<Smo>& script,
                         TaskGraphStats* stats = nullptr);

  /// The bound catalog (null in snapshot-commit mode).
  Catalog* catalog() { return catalog_; }
  /// The bound snapshot catalog (null in Catalog mode).
  SnapshotCatalog* snapshots() { return snapshots_; }

 private:
  // The planned and snapshot execution cores below are declared here but
  // DEFINED one layer up (plan/engine_planned.cc and
  // concurrency/engine_snapshot.cc): evolution sits below plan and
  // concurrency in the architecture, so the integration glue that needs
  // their types lives with them and this header only forward-declares.

  // Unlogged execution cores; `applied` (optional) receives the number
  // of operators whose effects reached the catalog.
  Status RunSerial(const std::vector<Smo>& script, size_t* applied);
  Status RunPlanned(const std::vector<Smo>& script, TaskGraphStats* stats,
                    size_t* applied);
  // The log-before-apply wrapper around either core (Catalog mode).
  Status RunLogged(const std::vector<Smo>& script, TaskGraphStats* stats,
                   bool planned);
  // Snapshot-commit core: stages the script against the current root,
  // then commits the applied prefix's effects (WAL-logging, when
  // configured, inside the commit critical section before the swap).
  Status RunSnapshot(const std::vector<Smo>& script, TaskGraphStats* stats,
                     bool planned);
  // Stages a script against `staged` without committing anything:
  // serial loop or planner + task graph. On return `effects[i]` holds
  // operator i's staged effects, `applied` the length of the commit
  // prefix (every operator before the first script-order failure), and
  // the returned Status is that first failure (OK when all ran).
  Status StageScript(StagedCatalog* staged, const std::vector<Smo>& script,
                     bool planned, TaskGraphStats* stats,
                     std::vector<std::vector<CatalogEffect>>* effects,
                     size_t* applied);
  // Operator interpreters, parameterized over the table store so the
  // same code runs directly on the catalog (Apply) and on a staged
  // overlay (ApplyAllPlanned). `observer` rather than the member so
  // planned execution can substitute a serializing adapter.
  Status ApplyTo(TableStore& store, const Smo& smo,
                 EvolutionObserver* observer);
  Status ApplyCreateTable(TableStore& store, const Smo& smo);
  Status ApplyDecompose(TableStore& store, const Smo& smo,
                        EvolutionObserver* observer);
  Status ApplyMerge(TableStore& store, const Smo& smo,
                    EvolutionObserver* observer);
  Status ApplyUnion(TableStore& store, const Smo& smo,
                    EvolutionObserver* observer);
  Status ApplyPartition(TableStore& store, const Smo& smo,
                        EvolutionObserver* observer);
  Status ApplyColumnOp(TableStore& store, const Smo& smo);

  // Validates a produced table when validate_outputs is on.
  Status MaybeValidate(const Table& table);

  Catalog* catalog_;            // exactly one of catalog_ /
  SnapshotCatalog* snapshots_;  // snapshots_ is non-null
  EvolutionObserver* observer_;
  EngineOptions options_;
  ExecContext exec_ctx_;
};

}  // namespace cods

#endif  // CODS_EVOLUTION_ENGINE_H_

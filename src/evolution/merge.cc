#include "evolution/merge.h"

#include <algorithm>
#include <limits>
#include <unordered_map>

#include "evolution/fd.h"
#include "evolution/simple_ops.h"
#include "exec/exec.h"
#include "exec/parallel_build.h"

namespace cods {

namespace {

// Maps every vid of `from` to the vid of the equal value in `to`, or
// kNoVid when the value is absent there. Dictionary-level join: O(v).
std::vector<Vid> TranslateDict(const Dictionary& from, const Dictionary& to) {
  std::vector<Vid> out(from.size(), kNoVid);
  for (Vid vid = 0; vid < from.size(); ++vid) {
    std::optional<Vid> mapped = to.Lookup(from.value(vid));
    if (mapped.has_value()) out[vid] = *mapped;
  }
  return out;
}

Result<std::vector<size_t>> ResolveIndices(
    const Schema& schema, const std::vector<std::string>& names) {
  std::vector<size_t> out;
  out.reserve(names.size());
  for (const std::string& n : names) {
    CODS_ASSIGN_OR_RETURN(size_t idx, schema.ColumnIndex(n));
    out.push_back(idx);
  }
  return out;
}

// Appends `count` one-bits at [start, start+count) to a builder bitmap
// whose current size must be <= start (zero-padding the gap).
void AppendOnesAt(WahBitmap* bm, uint64_t start, uint64_t count) {
  CODS_DCHECK(bm->size() <= start);
  bm->AppendRun(false, start - bm->size());
  bm->AppendRun(true, count);
}

// Pads every builder to `rows` and wraps them in a Column.
std::shared_ptr<const Column> FinishColumn(DataType type,
                                           const Dictionary& dict,
                                           std::vector<WahBitmap> builders,
                                           uint64_t rows) {
  for (WahBitmap& bm : builders) {
    bm.AppendRun(false, rows - bm.size());
  }
  return Column::FromBitmaps(type, dict, std::move(builders), rows);
}

// Hash map over vid tuples stored row-major in `cols`.
struct TupleHasher {
  const std::vector<std::vector<Vid>>* cols;
  size_t operator()(uint64_t row) const {
    uint64_t h = 0x9e3779b97f4a7c15ull;
    for (const auto& c : *cols) {
      h ^= c[row] + 0x9e3779b97f4a7c15ull + (h << 6) + (h >> 2);
    }
    return static_cast<size_t>(h);
  }
};
struct TupleEq {
  const std::vector<std::vector<Vid>>* cols;
  bool operator()(uint64_t a, uint64_t b) const {
    for (const auto& c : *cols) {
      if (c[a] != c[b]) return false;
    }
    return true;
  }
};

}  // namespace

// ---- Key–foreign-key mergence (§2.5.1) -------------------------------------

Result<std::shared_ptr<const Table>> CodsMergeKeyFk(
    const Table& s, const Table& t,
    const std::vector<std::string>& join_columns,
    const std::vector<std::string>& out_key, const std::string& out_name,
    EvolutionObserver* observer, const ExecContext* ctx) {
  if (auto s2 = ReencodeRleToWah(s)) {
    return CodsMergeKeyFk(*s2, t, join_columns, out_key, out_name,
                          observer, ctx);
  }
  if (auto t2 = ReencodeRleToWah(t)) {
    return CodsMergeKeyFk(s, *t2, join_columns, out_key, out_name,
                          observer, ctx);
  }
  ExecContext exec = ResolveContext(ctx);
  const std::string op = "MERGE " + s.name() + "⋈" + t.name();
  CODS_ASSIGN_OR_RETURN(std::vector<size_t> sj,
                        ResolveIndices(s.schema(), join_columns));
  CODS_ASSIGN_OR_RETURN(std::vector<size_t> tj,
                        ResolveIndices(t.schema(), join_columns));
  std::vector<size_t> t_payload;
  for (size_t i = 0; i < t.schema().num_columns(); ++i) {
    if (std::find(tj.begin(), tj.end(), i) == tj.end()) {
      t_payload.push_back(i);
    }
  }

  // Map each S row to the T row holding its key.
  std::vector<uint64_t> t_row_of_s_row(s.rows());
  {
    ScopedStep step(observer, op, "key lookup",
                    "sequential scan of " + s.name() +
                        "'s key, resolving rows of " + t.name());
    if (sj.size() == 1) {
      // Single-attribute key: T's bitmap index gives the row of each key
      // value as the (single) set bit of its vector — compressed-native.
      const Column& su = *s.column(sj[0]);
      const Column& tu = *t.column(tj[0]);
      std::vector<Vid> trans = TranslateDict(su.dict(), tu.dict());
      std::vector<uint64_t> t_row_of_tvid(tu.distinct_count());
      Status probe_st = ParallelFor(
          exec, 0, tu.distinct_count(), 64, [&](uint64_t v) {
            t_row_of_tvid[v] = tu.bitmap(static_cast<Vid>(v)).FirstSetBit();
            return Status::OK();
          });
      CODS_CHECK(probe_st.ok()) << probe_st.ToString();
      std::vector<Vid> svids = su.DecodeVids(&exec);
      // Row-chunked resolution; each chunk reports its first violation,
      // and chunk-order aggregation makes the returned error the first
      // violating row, exactly as in the serial scan.
      CODS_RETURN_NOT_OK(ParallelForChunked(
          exec, 0, s.rows(), 4096,
          [&](uint64_t lo, uint64_t hi) -> Status {
            for (uint64_t j = lo; j < hi; ++j) {
              Vid tvid = trans[svids[j]];
              if (tvid == kNoVid) {
                return Status::ConstraintViolation(
                    "foreign key violation: value " +
                    su.dict().value(svids[j]).ToString() + " of " +
                    s.name() + " has no match in " + t.name());
              }
              t_row_of_s_row[j] = t_row_of_tvid[tvid];
            }
            return Status::OK();
          }));
    } else {
      // Composite key: hash T's key tuples to rows, then translate S's
      // tuples into T's vid space and probe.
      std::vector<std::vector<Vid>> t_cols;
      for (size_t idx : tj) t_cols.push_back(t.column(idx)->DecodeVids());
      TupleHasher hasher{&t_cols};
      TupleEq eq{&t_cols};
      std::unordered_map<uint64_t, uint64_t, TupleHasher, TupleEq> t_map(
          1024, hasher, eq);
      for (uint64_t r = 0; r < t.rows(); ++r) {
        auto [it, inserted] = t_map.try_emplace(r, r);
        if (!inserted) {
          return Status::ConstraintViolation(
              "join attributes are not a key of " + t.name());
        }
      }
      std::vector<std::vector<Vid>> s_cols;
      std::vector<std::vector<Vid>> trans;
      for (size_t c = 0; c < sj.size(); ++c) {
        s_cols.push_back(s.column(sj[c])->DecodeVids());
        trans.push_back(TranslateDict(s.column(sj[c])->dict(),
                                      t.column(tj[c])->dict()));
      }
      // Probe by writing the translated tuple into scratch row t.rows()
      // of the decoded T columns (extend by one slot).
      for (auto& c : t_cols) c.push_back(0);
      const uint64_t scratch = t.rows();
      for (uint64_t j = 0; j < s.rows(); ++j) {
        bool ok = true;
        for (size_t c = 0; c < sj.size(); ++c) {
          Vid tv = trans[c][s_cols[c][j]];
          if (tv == kNoVid) {
            ok = false;
            break;
          }
          t_cols[c][scratch] = tv;
        }
        auto it = ok ? t_map.find(scratch) : t_map.end();
        if (it == t_map.end()) {
          return Status::ConstraintViolation(
              "foreign key violation: row " + std::to_string(j) + " of " +
              s.name() + " has no match in " + t.name());
        }
        t_row_of_s_row[j] = it->second;
      }
    }
  }

  // Generate T's non-key columns for the output by appending, in S's row
  // order, each row's bit to the builder of its value.
  std::vector<ColumnSpec> specs = s.schema().columns();
  std::vector<std::shared_ptr<const Column>> out_cols;
  {
    ScopedStep step(observer, op, "reuse",
                    "reusing all " + std::to_string(s.num_columns()) +
                        " columns of " + s.name());
    for (size_t i = 0; i < s.num_columns(); ++i) out_cols.push_back(s.column(i));
  }
  {
    ScopedStep step(observer, op, "append",
                    "generating " + std::to_string(t_payload.size()) +
                        " columns over " + std::to_string(s.rows()) +
                        " rows");
    // One pass per payload column: materialize the output row → vid map
    // (a gather through t_row_of_s_row, row-chunk parallel), then build
    // the value bitmaps with the chunked parallel builder — maximal runs
    // of S rows mapping to the same value still append as single fills,
    // so S clustered by its FK degenerates to a handful of fill appends
    // per value, at every thread count.
    std::vector<Vid> out_vid_of_row(s.rows());
    for (size_t p = 0; p < t_payload.size(); ++p) {
      const Column& src = *t.column(t_payload[p]);
      std::vector<Vid> vids = src.DecodeVids(&exec);
      Status st = ParallelForChunked(
          exec, 0, s.rows(), 4096, [&](uint64_t lo, uint64_t hi) {
            for (uint64_t j = lo; j < hi; ++j) {
              out_vid_of_row[j] = vids[t_row_of_s_row[j]];
            }
            return Status::OK();
          });
      CODS_CHECK(st.ok()) << st.ToString();
      std::vector<WahBitmap> bitmaps = BuildValueBitmaps(
          exec, out_vid_of_row.data(), s.rows(), src.distinct_count());
      specs.push_back(t.schema().column(t_payload[p]));
      out_cols.push_back(Column::FromBitmaps(
          src.type(), src.dict(), std::move(bitmaps), s.rows(), &exec));
    }
  }
  CODS_ASSIGN_OR_RETURN(Schema out_schema,
                        Schema::Make(std::move(specs), out_key));
  return Table::Make(out_name, std::move(out_schema), std::move(out_cols),
                     s.rows());
}

// ---- General mergence (§2.5.2) ---------------------------------------------

Result<std::shared_ptr<const Table>> CodsMergeGeneral(
    const Table& s, const Table& t,
    const std::vector<std::string>& join_columns,
    const std::vector<std::string>& out_key, const std::string& out_name,
    EvolutionObserver* observer, const ExecContext* ctx) {
  if (auto s2 = ReencodeRleToWah(s)) {
    return CodsMergeGeneral(*s2, t, join_columns, out_key, out_name,
                            observer, ctx);
  }
  if (auto t2 = ReencodeRleToWah(t)) {
    return CodsMergeGeneral(s, *t2, join_columns, out_key, out_name,
                            observer, ctx);
  }
  ExecContext exec = ResolveContext(ctx);
  const std::string op = "MERGE(general) " + s.name() + "⋈" + t.name();
  CODS_ASSIGN_OR_RETURN(std::vector<size_t> sj,
                        ResolveIndices(s.schema(), join_columns));
  CODS_ASSIGN_OR_RETURN(std::vector<size_t> tj,
                        ResolveIndices(t.schema(), join_columns));

  // Per-tuple state built by pass 1.
  uint64_t num_tuples = 0;
  std::vector<std::vector<Vid>> tuple_svids(sj.size());  // per join col
  std::vector<uint64_t> n1, n2;
  // Flat row buckets grouped by tuple.
  std::vector<uint64_t> s_start{0}, t_start{0};
  std::vector<uint64_t> s_rows_flat, t_rows_flat;

  {
    ScopedStep step(observer, op, "pass1",
                    "counting occurrences of each distinct join value");
    if (sj.size() == 1) {
      // Single join attribute: counts are bitmap popcounts and buckets
      // are set-position streams — all on compressed words.
      const Column& su = *s.column(sj[0]);
      const Column& tu = *t.column(tj[0]);
      std::vector<Vid> trans = TranslateDict(su.dict(), tu.dict());
      for (Vid sv = 0; sv < su.distinct_count(); ++sv) {
        Vid tv = trans[sv];
        if (tv == kNoVid) continue;
        uint64_t c1 = su.bitmap(sv).CountOnes();
        uint64_t c2 = tu.bitmap(tv).CountOnes();
        if (c1 == 0 || c2 == 0) continue;
        tuple_svids[0].push_back(sv);
        n1.push_back(c1);
        n2.push_back(c2);
        su.bitmap(sv).ForEachSetBit(
            [&](uint64_t pos) { s_rows_flat.push_back(pos); });
        s_start.push_back(s_rows_flat.size());
        tu.bitmap(tv).ForEachSetBit(
            [&](uint64_t pos) { t_rows_flat.push_back(pos); });
        t_start.push_back(t_rows_flat.size());
        ++num_tuples;
      }
    } else {
      // Composite join: hash-group S's tuples, then T's (translated into
      // S's vid space), and keep tuples present on both sides.
      std::vector<std::vector<Vid>> s_cols, t_cols_translated;
      for (size_t c = 0; c < sj.size(); ++c) {
        s_cols.push_back(s.column(sj[c])->DecodeVids());
        std::vector<Vid> raw = t.column(tj[c])->DecodeVids();
        std::vector<Vid> trans = TranslateDict(t.column(tj[c])->dict(),
                                               s.column(sj[c])->dict());
        for (Vid& v : raw) v = (v == kNoVid) ? kNoVid : trans[v];
        t_cols_translated.push_back(std::move(raw));
      }
      TupleHasher hasher{&s_cols};
      TupleEq eq{&s_cols};
      std::unordered_map<uint64_t, uint64_t, TupleHasher, TupleEq> tuple_id(
          1024, hasher, eq);
      std::vector<uint64_t> s_tuple_of_row(s.rows());
      std::vector<uint64_t> count1;
      for (uint64_t r = 0; r < s.rows(); ++r) {
        auto [it, inserted] = tuple_id.try_emplace(r, count1.size());
        if (inserted) count1.push_back(0);
        s_tuple_of_row[r] = it->second;
        ++count1[it->second];
      }
      const uint64_t total_s_tuples = count1.size();
      // T side: probe via a scratch row appended to s_cols.
      for (auto& c : s_cols) c.push_back(0);
      const uint64_t scratch = s.rows();
      std::vector<uint64_t> count2(total_s_tuples, 0);
      std::vector<uint64_t> t_tuple_of_row(t.rows(), UINT64_MAX);
      for (uint64_t r = 0; r < t.rows(); ++r) {
        bool ok = true;
        for (size_t c = 0; c < sj.size(); ++c) {
          Vid v = t_cols_translated[c][r];
          if (v == kNoVid) {
            ok = false;
            break;
          }
          s_cols[c][scratch] = v;
        }
        if (!ok) continue;
        auto it = tuple_id.find(scratch);
        if (it == tuple_id.end() || it->second >= total_s_tuples) continue;
        t_tuple_of_row[r] = it->second;
        ++count2[it->second];
      }
      // Keep tuples with matches on both sides; renumber densely.
      std::vector<uint64_t> dense(total_s_tuples, UINT64_MAX);
      std::vector<uint64_t> first_s_row(total_s_tuples, 0);
      for (uint64_t r = 0; r < s.rows(); ++r) {
        uint64_t k0 = s_tuple_of_row[r];
        if (count2[k0] == 0 || dense[k0] != UINT64_MAX) continue;
        dense[k0] = num_tuples++;
        first_s_row[dense[k0]] = r;
        n1.push_back(count1[k0]);
        n2.push_back(count2[k0]);
      }
      for (size_t c = 0; c < sj.size(); ++c) {
        tuple_svids[c].resize(num_tuples);
        for (uint64_t k = 0; k < num_tuples; ++k) {
          tuple_svids[c][k] = s_cols[c][first_s_row[k]];
        }
      }
      // Counting-sort rows into flat buckets grouped by dense tuple id.
      s_start.assign(num_tuples + 1, 0);
      t_start.assign(num_tuples + 1, 0);
      for (uint64_t r = 0; r < s.rows(); ++r) {
        uint64_t k0 = s_tuple_of_row[r];
        if (count2[k0] > 0) ++s_start[dense[k0] + 1];
      }
      for (uint64_t r = 0; r < t.rows(); ++r) {
        if (t_tuple_of_row[r] != UINT64_MAX) {
          ++t_start[dense[t_tuple_of_row[r]] + 1];
        }
      }
      for (uint64_t k = 0; k < num_tuples; ++k) {
        s_start[k + 1] += s_start[k];
        t_start[k + 1] += t_start[k];
      }
      s_rows_flat.resize(s_start[num_tuples]);
      t_rows_flat.resize(t_start[num_tuples]);
      std::vector<uint64_t> s_fill(s_start.begin(), s_start.end() - 1);
      std::vector<uint64_t> t_fill(t_start.begin(), t_start.end() - 1);
      for (uint64_t r = 0; r < s.rows(); ++r) {
        uint64_t k0 = s_tuple_of_row[r];
        if (count2[k0] > 0) s_rows_flat[s_fill[dense[k0]]++] = r;
      }
      for (uint64_t r = 0; r < t.rows(); ++r) {
        if (t_tuple_of_row[r] != UINT64_MAX) {
          t_rows_flat[t_fill[dense[t_tuple_of_row[r]]]++] = r;
        }
      }
    }
  }

  // Output offsets: tuple k occupies [off[k], off[k] + n1*n2).
  std::vector<uint64_t> off(num_tuples + 1, 0);
  for (uint64_t k = 0; k < num_tuples; ++k) {
    off[k + 1] = off[k] + n1[k] * n2[k];
  }
  const uint64_t out_rows = off[num_tuples];

  std::vector<ColumnSpec> specs;
  std::vector<std::shared_ptr<const Column>> out_cols;
  {
    ScopedStep step(observer, op, "pass2",
                    "emitting " + std::to_string(out_rows) +
                        " rows clustered by join value");
    // Non-join columns are built by materializing the output row → vid
    // map (tuple-chunk parallel: tuple k owns the disjoint output range
    // [off[k], off[k+1])) and handing it to the chunked parallel bitmap
    // builder. One map array is reused across columns to bound memory at
    // O(out_rows) regardless of arity.
    std::vector<Vid> out_vid_of_row;
    auto build_mapped =
        [&](const Column& src,
            const std::function<void(uint64_t)>& fill_tuple) {
          if (out_vid_of_row.size() < out_rows) {
            out_vid_of_row.resize(out_rows);
          }
          Status st = ParallelFor(exec, 0, num_tuples, 64, [&](uint64_t k) {
            fill_tuple(k);
            return Status::OK();
          });
          CODS_CHECK(st.ok()) << st.ToString();
          std::vector<WahBitmap> bitmaps = BuildValueBitmaps(
              exec, out_vid_of_row.data(), out_rows, src.distinct_count());
          out_cols.push_back(Column::FromBitmaps(
              src.type(), src.dict(), std::move(bitmaps), out_rows, &exec));
        };
    // S's columns (join columns become fill runs; non-join columns are
    // laid out consecutively, each S row's value repeated n2 times).
    for (size_t i = 0; i < s.num_columns(); ++i) {
      const Column& src = *s.column(i);
      specs.push_back(s.schema().column(i));
      auto join_pos = std::find(sj.begin(), sj.end(), i);
      if (join_pos != sj.end()) {
        // Join column: one fill run per tuple — cheap enough serially.
        size_t c = static_cast<size_t>(join_pos - sj.begin());
        std::vector<WahBitmap> builders(src.distinct_count());
        for (uint64_t k = 0; k < num_tuples; ++k) {
          AppendOnesAt(&builders[tuple_svids[c][k]], off[k],
                       n1[k] * n2[k]);
        }
        out_cols.push_back(FinishColumn(src.type(), src.dict(),
                                        std::move(builders), out_rows));
        continue;
      }
      std::vector<Vid> svids = src.DecodeVids(&exec);
      build_mapped(src, [&](uint64_t k) {
        for (uint64_t i1 = 0; i1 < n1[k]; ++i1) {
          Vid v = svids[s_rows_flat[s_start[k] + i1]];
          uint64_t base = off[k] + i1 * n2[k];
          for (uint64_t j1 = 0; j1 < n2[k]; ++j1) {
            out_vid_of_row[base + j1] = v;
          }
        }
      });
    }
    // T's non-join columns: strided placement with distance n2.
    for (size_t i = 0; i < t.num_columns(); ++i) {
      if (std::find(tj.begin(), tj.end(), i) != tj.end()) continue;
      const Column& src = *t.column(i);
      specs.push_back(t.schema().column(i));
      std::vector<Vid> tvids = src.DecodeVids(&exec);
      build_mapped(src, [&](uint64_t k) {
        for (uint64_t i1 = 0; i1 < n1[k]; ++i1) {
          uint64_t base = off[k] + i1 * n2[k];
          for (uint64_t j1 = 0; j1 < n2[k]; ++j1) {
            out_vid_of_row[base + j1] =
                tvids[t_rows_flat[t_start[k] + j1]];
          }
        }
      });
    }
  }
  CODS_ASSIGN_OR_RETURN(Schema out_schema,
                        Schema::Make(std::move(specs), out_key));
  return Table::Make(out_name, std::move(out_schema), std::move(out_cols),
                     out_rows);
}

// ---- Dispatcher -------------------------------------------------------------

Result<MergeResult> CodsMerge(const Table& s, const Table& t,
                              const std::vector<std::string>& join_columns,
                              const std::vector<std::string>& out_key,
                              const std::string& out_name,
                              EvolutionObserver* observer,
                              const MergeOptions& options) {
  MergeResult result;
  if (!options.force_general) {
    bool t_keyed = t.schema().IsKey(join_columns);
    bool s_keyed = s.schema().IsKey(join_columns);
    if (options.validate_key && (t_keyed || s_keyed)) {
      const Table& keyed = t_keyed ? t : s;
      CODS_ASSIGN_OR_RETURN(bool really,
                            IsCandidateKey(keyed, join_columns));
      if (!really) {
        return Status::ConstraintViolation(
            "declared key of " + keyed.name() +
            " has duplicates; refusing key–FK mergence");
      }
    }
    if (t_keyed) {
      CODS_ASSIGN_OR_RETURN(result.table,
                            CodsMergeKeyFk(s, t, join_columns, out_key,
                                           out_name, observer, options.exec));
      result.used_key_fk = true;
      return result;
    }
    if (s_keyed) {
      // Swap sides: S becomes the reusable one... i.e. T is scanned and
      // S provides the keyed lookup. Output column order: all of T, then
      // S's non-join columns.
      CODS_ASSIGN_OR_RETURN(result.table,
                            CodsMergeKeyFk(t, s, join_columns, out_key,
                                           out_name, observer, options.exec));
      result.used_key_fk = true;
      return result;
    }
  }
  CODS_ASSIGN_OR_RETURN(result.table,
                        CodsMergeGeneral(s, t, join_columns, out_key,
                                         out_name, observer, options.exec));
  return result;
}

}  // namespace cods

// DECOMPOSE TABLE (CODS §2.4): lossless-join decomposition of R into S
// and T executed at the data level.
//
//   Property 1 — at least one output table (here S) is unchanged, so its
//   columns are reused from R by pointer: zero data work.
//   Property 2 — T's non-key attributes are functionally dependent on its
//   key in R, so one representative row per distinct key suffices.
//
//   Step 1 "distinction": build the sorted list of representative row
//   positions, one per distinct value combination of T's key. For a
//   single-attribute key this never leaves the compressed domain: the
//   representative of value v is FirstSetBit of v's bitmap.
//   Step 2 "bitmap filtering": every bitmap of every T attribute is
//   shrunk to the positions in the list, directly compressed-to-
//   compressed (bitmap/wah_filter.h).

#ifndef CODS_EVOLUTION_DECOMPOSE_H_
#define CODS_EVOLUTION_DECOMPOSE_H_

#include <memory>
#include <string>
#include <vector>

#include "evolution/observer.h"
#include "exec/exec.h"
#include "storage/table.h"

namespace cods {

/// Options controlling the decomposition operator.
struct DecomposeOptions {
  /// Verify the lossless-join precondition by checking the functional
  /// dependency on the data (O(rows)) instead of trusting the key
  /// declaration.
  bool validate_fd = false;
  /// Execution context for the parallel phases (distinction and bitmap
  /// filtering). nullptr: the process default.
  const ExecContext* exec = nullptr;
};

/// Result of a decomposition: S reuses R's columns, T is generated.
struct DecomposeResult {
  std::shared_ptr<const Table> s;
  std::shared_ptr<const Table> t;
  /// Number of distinct key combinations found by distinction
  /// (== t->rows()).
  uint64_t distinct_keys = 0;
};

/// Decomposes `r` into S(s_columns) and T(t_columns).
///
/// The common columns of the two outputs are the join attributes; they
/// must form a key of one output (declared via `t_key` / `s_key`, or
/// discovered from the data when options.validate_fd is set). The table
/// whose remaining attributes are functionally determined is generated;
/// the other is reused.
///
/// Keys: `s_key` / `t_key` become the declared keys of the outputs.
Result<DecomposeResult> CodsDecompose(
    const Table& r, const std::string& s_name,
    const std::vector<std::string>& s_columns,
    const std::vector<std::string>& s_key, const std::string& t_name,
    const std::vector<std::string>& t_columns,
    const std::vector<std::string>& t_key,
    EvolutionObserver* observer = nullptr,
    const DecomposeOptions& options = {});

/// The "distinction" step alone (exposed for tests and benches): returns
/// the sorted positions of one representative row of `table` per
/// distinct value combination of `key_columns`.
Result<std::vector<uint64_t>> DistinctionPositions(
    const Table& table, const std::vector<std::string>& key_columns,
    const ExecContext* ctx = nullptr);

}  // namespace cods

#endif  // CODS_EVOLUTION_DECOMPOSE_H_

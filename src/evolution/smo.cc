#include "evolution/smo.h"

#include <algorithm>
#include <sstream>

#include "common/string_util.h"
#include "storage/value_compare.h"

namespace cods {

namespace {

std::string FormatSchemaForScript(const Schema& schema) {
  std::string out = "(";
  for (size_t i = 0; i < schema.num_columns(); ++i) {
    if (i > 0) out += ", ";
    out += schema.column(i).name;
    out += " ";
    out += DataTypeToString(schema.column(i).type);
    if (schema.column(i).sorted) out += " SORTED";
  }
  if (!schema.key().empty()) {
    out += ", KEY(" + Join(schema.key(), ", ") + ")";
  }
  out += ")";
  return out;
}

std::vector<std::string> SortedUnique(std::vector<std::string> names) {
  std::sort(names.begin(), names.end());
  names.erase(std::unique(names.begin(), names.end()), names.end());
  return names;
}

}  // namespace

const char* SmoKindToString(SmoKind kind) {
  switch (kind) {
    case SmoKind::kCreateTable:
      return "CREATE TABLE";
    case SmoKind::kDropTable:
      return "DROP TABLE";
    case SmoKind::kRenameTable:
      return "RENAME TABLE";
    case SmoKind::kCopyTable:
      return "COPY TABLE";
    case SmoKind::kUnionTables:
      return "UNION TABLES";
    case SmoKind::kPartitionTable:
      return "PARTITION TABLE";
    case SmoKind::kDecomposeTable:
      return "DECOMPOSE TABLE";
    case SmoKind::kMergeTables:
      return "MERGE TABLES";
    case SmoKind::kAddColumn:
      return "ADD COLUMN";
    case SmoKind::kDropColumn:
      return "DROP COLUMN";
    case SmoKind::kRenameColumn:
      return "RENAME COLUMN";
  }
  return "?";
}

Smo Smo::CreateTable(std::string name, Schema schema) {
  Smo smo;
  smo.kind = SmoKind::kCreateTable;
  smo.out1 = std::move(name);
  smo.schema = std::move(schema);
  return smo;
}

Smo Smo::DropTable(std::string name) {
  Smo smo;
  smo.kind = SmoKind::kDropTable;
  smo.table = std::move(name);
  return smo;
}

Smo Smo::RenameTable(std::string from, std::string to) {
  Smo smo;
  smo.kind = SmoKind::kRenameTable;
  smo.table = std::move(from);
  smo.new_name = std::move(to);
  return smo;
}

Smo Smo::CopyTable(std::string from, std::string to) {
  Smo smo;
  smo.kind = SmoKind::kCopyTable;
  smo.table = std::move(from);
  smo.out1 = std::move(to);
  return smo;
}

Smo Smo::UnionTables(std::string a, std::string b, std::string out) {
  Smo smo;
  smo.kind = SmoKind::kUnionTables;
  smo.table = std::move(a);
  smo.table2 = std::move(b);
  smo.out1 = std::move(out);
  return smo;
}

Smo Smo::PartitionTable(std::string table, std::string out1,
                        std::string out2, std::string column, CompareOp op,
                        Value literal) {
  Smo smo;
  smo.kind = SmoKind::kPartitionTable;
  smo.table = std::move(table);
  smo.out1 = std::move(out1);
  smo.out2 = std::move(out2);
  smo.column = std::move(column);
  smo.compare_op = op;
  smo.literal = std::move(literal);
  return smo;
}

Smo Smo::DecomposeTable(std::string table, std::string s_name,
                        std::vector<std::string> s_columns,
                        std::vector<std::string> s_key, std::string t_name,
                        std::vector<std::string> t_columns,
                        std::vector<std::string> t_key) {
  Smo smo;
  smo.kind = SmoKind::kDecomposeTable;
  smo.table = std::move(table);
  smo.out1 = std::move(s_name);
  smo.columns1 = std::move(s_columns);
  smo.key1 = std::move(s_key);
  smo.out2 = std::move(t_name);
  smo.columns2 = std::move(t_columns);
  smo.key2 = std::move(t_key);
  return smo;
}

Smo Smo::MergeTables(std::string s, std::string t, std::string out,
                     std::vector<std::string> join_columns,
                     std::vector<std::string> out_key) {
  Smo smo;
  smo.kind = SmoKind::kMergeTables;
  smo.table = std::move(s);
  smo.table2 = std::move(t);
  smo.out1 = std::move(out);
  smo.columns1 = std::move(join_columns);
  smo.key1 = std::move(out_key);
  return smo;
}

Smo Smo::AddColumn(std::string table, ColumnSpec spec, Value default_value) {
  Smo smo;
  smo.kind = SmoKind::kAddColumn;
  smo.table = std::move(table);
  smo.column = spec.name;
  smo.column_spec = std::move(spec);
  smo.default_value = std::move(default_value);
  return smo;
}

Smo Smo::DropColumn(std::string table, std::string column) {
  Smo smo;
  smo.kind = SmoKind::kDropColumn;
  smo.table = std::move(table);
  smo.column = std::move(column);
  return smo;
}

Smo Smo::RenameColumn(std::string table, std::string from, std::string to) {
  Smo smo;
  smo.kind = SmoKind::kRenameColumn;
  smo.table = std::move(table);
  smo.column = std::move(from);
  smo.new_name = std::move(to);
  return smo;
}

std::string Smo::ToString() const {
  std::ostringstream out;
  switch (kind) {
    case SmoKind::kCreateTable:
      out << "CREATE TABLE " << out1 << " " << FormatSchemaForScript(schema);
      break;
    case SmoKind::kDropTable:
      out << "DROP TABLE " << table;
      break;
    case SmoKind::kRenameTable:
      out << "RENAME TABLE " << table << " TO " << new_name;
      break;
    case SmoKind::kCopyTable:
      out << "COPY TABLE " << table << " TO " << out1;
      break;
    case SmoKind::kUnionTables:
      out << "UNION TABLES " << table << ", " << table2 << " INTO " << out1;
      break;
    case SmoKind::kPartitionTable:
      out << "PARTITION TABLE " << table << " INTO " << out1 << ", " << out2
          << " WHERE " << column << " " << CompareOpToString(compare_op)
          << " " << FormatScriptLiteral(literal);
      break;
    case SmoKind::kDecomposeTable:
      out << "DECOMPOSE TABLE " << table << " INTO " << out1 << "("
          << Join(columns1, ", ") << ")";
      if (!key1.empty()) out << " KEY(" << Join(key1, ", ") << ")";
      out << ", " << out2 << "(" << Join(columns2, ", ") << ")";
      if (!key2.empty()) out << " KEY(" << Join(key2, ", ") << ")";
      break;
    case SmoKind::kMergeTables:
      out << "MERGE TABLES " << table << ", " << table2 << " INTO " << out1
          << " ON (" << Join(columns1, ", ") << ")";
      if (!key1.empty()) out << " KEY(" << Join(key1, ", ") << ")";
      break;
    case SmoKind::kAddColumn:
      out << "ADD COLUMN " << column << " "
          << DataTypeToString(column_spec.type) << " TO " << table
          << " DEFAULT " << FormatScriptLiteral(default_value);
      break;
    case SmoKind::kDropColumn:
      out << "DROP COLUMN " << column << " FROM " << table;
      break;
    case SmoKind::kRenameColumn:
      out << "RENAME COLUMN " << column << " TO " << new_name << " IN "
          << table;
      break;
  }
  return out.str();
}

std::vector<std::string> Smo::ReadTables() const {
  switch (kind) {
    case SmoKind::kCreateTable:
    case SmoKind::kDropTable:
    case SmoKind::kRenameTable:
      return {};
    case SmoKind::kCopyTable:
    case SmoKind::kPartitionTable:
    case SmoKind::kDecomposeTable:
    case SmoKind::kAddColumn:
    case SmoKind::kDropColumn:
    case SmoKind::kRenameColumn:
      return {table};
    case SmoKind::kUnionTables:
    case SmoKind::kMergeTables:
      return SortedUnique({table, table2});
  }
  return {};
}

std::vector<std::string> Smo::WriteTables() const {
  switch (kind) {
    case SmoKind::kCreateTable:
      return {out1};
    case SmoKind::kDropTable:
      return {table};
    case SmoKind::kRenameTable:
      return SortedUnique({table, new_name});
    case SmoKind::kCopyTable:
      return {out1};
    case SmoKind::kUnionTables:
    case SmoKind::kMergeTables:
      // The two inputs are dropped and replaced by the output.
      return SortedUnique({table, table2, out1});
    case SmoKind::kPartitionTable:
    case SmoKind::kDecomposeTable:
      // The input is dropped and replaced by the two outputs.
      return SortedUnique({table, out1, out2});
    case SmoKind::kAddColumn:
    case SmoKind::kDropColumn:
    case SmoKind::kRenameColumn:
      // The table is replaced by its new version under the same name.
      return {table};
  }
  return {};
}

}  // namespace cods

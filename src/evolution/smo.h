// Schema Modification Operators (Table 1 of the paper, after the PRISM
// workbench): the user-facing description of a schema update. The
// EvolutionEngine interprets these against a Catalog, performing
// data-level data evolution.

#ifndef CODS_EVOLUTION_SMO_H_
#define CODS_EVOLUTION_SMO_H_

#include <string>
#include <vector>

#include "common/compare.h"  // CompareOp lives in common/ (back-compat: it
                             // was declared here before the query layer
                             // also needed it)
#include "storage/schema.h"
#include "storage/value.h"

namespace cods {

/// The eleven SMOs of Table 1.
enum class SmoKind {
  kCreateTable,
  kDropTable,
  kRenameTable,
  kCopyTable,
  kUnionTables,
  kPartitionTable,
  kDecomposeTable,
  kMergeTables,
  kAddColumn,
  kDropColumn,
  kRenameColumn,
};

const char* SmoKindToString(SmoKind kind);

/// One schema modification operator with its parameters. Unused fields
/// are ignored by kinds that do not need them; the factory functions
/// below construct well-formed instances.
struct Smo {
  SmoKind kind = SmoKind::kCreateTable;

  std::string table;   // primary input table
  std::string table2;  // second input (MERGE, UNION)
  std::string out1;    // first output table
  std::string out2;    // second output (DECOMPOSE, PARTITION)

  Schema schema;  // CREATE TABLE

  std::vector<std::string> columns1;  // DECOMPOSE: S's columns; MERGE: join
  std::vector<std::string> columns2;  // DECOMPOSE: T's columns
  std::vector<std::string> key1;      // declared key of out1
  std::vector<std::string> key2;      // declared key of out2

  std::string column;    // column ops: target column
  std::string new_name;  // RENAME TABLE/COLUMN target name
  ColumnSpec column_spec;  // ADD COLUMN: new column declaration
  Value default_value;     // ADD COLUMN: fill value

  // PARTITION TABLE condition: rows with `column op literal` go to out1,
  // the rest to out2.
  CompareOp compare_op = CompareOp::kEq;
  Value literal;

  // ---- Factories ---------------------------------------------------------
  static Smo CreateTable(std::string name, Schema schema);
  static Smo DropTable(std::string name);
  static Smo RenameTable(std::string from, std::string to);
  static Smo CopyTable(std::string from, std::string to);
  static Smo UnionTables(std::string a, std::string b, std::string out);
  static Smo PartitionTable(std::string table, std::string out1,
                            std::string out2, std::string column,
                            CompareOp op, Value literal);
  static Smo DecomposeTable(std::string table, std::string s_name,
                            std::vector<std::string> s_columns,
                            std::vector<std::string> s_key,
                            std::string t_name,
                            std::vector<std::string> t_columns,
                            std::vector<std::string> t_key);
  static Smo MergeTables(std::string s, std::string t, std::string out,
                         std::vector<std::string> join_columns,
                         std::vector<std::string> out_key);
  static Smo AddColumn(std::string table, ColumnSpec spec,
                       Value default_value);
  static Smo DropColumn(std::string table, std::string column);
  static Smo RenameColumn(std::string table, std::string from,
                          std::string to);

  /// Renders the operator in the script syntax of smo/parser.h. The
  /// output re-parses to an equivalent operator (string literals are
  /// quoted, doubles print with round-trip precision), which the shell
  /// and the plan printer rely on.
  std::string ToString() const;

  // ---- Table sets (the script planner's conflict analysis) ---------------
  //
  // ReadTables: tables whose data this operator consumes. WriteTables:
  // tables this operator creates, replaces, drops, or whose name it
  // claims (the engine's existence checks consult exactly these names).
  // Two SMOs of a script may run concurrently iff neither writes a
  // table the other reads or writes. Both sets are sorted and deduped.

  std::vector<std::string> ReadTables() const;
  std::vector<std::string> WriteTables() const;
};

}  // namespace cods

#endif  // CODS_EVOLUTION_SMO_H_

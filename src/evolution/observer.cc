#include "evolution/observer.h"

#include "common/logging.h"

namespace cods {

void LoggingObserver::OnStepBegin(const std::string& op,
                                  const std::string& step,
                                  const std::string& detail) {
  CODS_LOG(Info) << "[" << op << "] " << step
                 << (detail.empty() ? "" : (": " + detail));
}

void LoggingObserver::OnStepEnd(const std::string& op,
                                const std::string& step, double seconds) {
  CODS_LOG(Info) << "[" << op << "] " << step << " done in " << seconds
                 << "s";
}

void RecordingObserver::OnStepBegin(const std::string& op,
                                    const std::string& step,
                                    const std::string& detail) {
  steps_.push_back(Step{op, step, detail, 0});
}

void RecordingObserver::OnStepEnd(const std::string& op,
                                  const std::string& step, double seconds) {
  // Attach the timing to the most recent matching begin.
  for (auto it = steps_.rbegin(); it != steps_.rend(); ++it) {
    if (it->op == op && it->step == step) {
      it->seconds = seconds;
      return;
    }
  }
}

bool RecordingObserver::HasStep(const std::string& step) const {
  for (const Step& s : steps_) {
    if (s.step == step) return true;
  }
  return false;
}

double RecordingObserver::TotalSeconds() const {
  double total = 0;
  for (const Step& s : steps_) total += s.seconds;
  return total;
}

void SerializedObserver::OnStepBegin(const std::string& op,
                                     const std::string& step,
                                     const std::string& detail) {
  std::lock_guard<std::mutex> lock(mu_);
  wrapped_->OnStepBegin(op, step, detail);
}

void SerializedObserver::OnStepEnd(const std::string& op,
                                   const std::string& step, double seconds) {
  std::lock_guard<std::mutex> lock(mu_);
  wrapped_->OnStepEnd(op, step, seconds);
}

ScopedStep::ScopedStep(EvolutionObserver* observer, std::string op,
                       std::string step, std::string detail)
    : observer_(observer), op_(std::move(op)), step_(std::move(step)) {
  if (observer_ != nullptr) {
    observer_->OnStepBegin(op_, step_, detail);
  }
}

ScopedStep::~ScopedStep() {
  if (observer_ != nullptr) {
    observer_->OnStepEnd(op_, step_, watch_.ElapsedSeconds());
  }
}

}  // namespace cods

#include "evolution/engine.h"

#include "common/script_log.h"

namespace cods {

EvolutionEngine::EvolutionEngine(Catalog* catalog,
                                 EvolutionObserver* observer,
                                 EngineOptions options)
    : catalog_(catalog),
      snapshots_(nullptr),
      observer_(observer),
      options_(options),
      exec_ctx_(options.num_threads) {
  CODS_CHECK(catalog_ != nullptr);
}

Status EvolutionEngine::MaybeValidate(const Table& table) {
  if (!options_.validate_outputs) return Status::OK();
  return table.ValidateInvariants(&exec_ctx_)
      .WithContext("output table '" + table.name() + "'");
}

Status EvolutionEngine::Apply(const Smo& smo) {
  if (snapshots_ != nullptr) {
    return RunSnapshot({smo}, nullptr, /*planned=*/false);
  }
  if (options_.wal != nullptr) {
    return RunLogged({smo}, nullptr, /*planned=*/false);
  }
  return ApplyTo(*catalog_, smo, observer_);
}

Status EvolutionEngine::ApplyTo(TableStore& store, const Smo& smo,
                                EvolutionObserver* observer) {
  switch (smo.kind) {
    case SmoKind::kCreateTable:
      return ApplyCreateTable(store, smo);
    case SmoKind::kDropTable:
      return store.DropTable(smo.table);
    case SmoKind::kRenameTable:
      return store.RenameTable(smo.table, smo.new_name);
    case SmoKind::kCopyTable: {
      CODS_ASSIGN_OR_RETURN(auto src, store.GetTable(smo.table));
      CODS_ASSIGN_OR_RETURN(auto copy,
                            CopyTableOp(*src, smo.out1, options_.deep_copy));
      return store.AddTable(std::move(copy));
    }
    case SmoKind::kUnionTables:
      return ApplyUnion(store, smo, observer);
    case SmoKind::kPartitionTable:
      return ApplyPartition(store, smo, observer);
    case SmoKind::kDecomposeTable:
      return ApplyDecompose(store, smo, observer);
    case SmoKind::kMergeTables:
      return ApplyMerge(store, smo, observer);
    case SmoKind::kAddColumn:
    case SmoKind::kDropColumn:
    case SmoKind::kRenameColumn:
      return ApplyColumnOp(store, smo);
  }
  return Status::NotImplemented("unknown SMO kind");
}

Status EvolutionEngine::ApplyAll(const std::vector<Smo>& script) {
  if (snapshots_ != nullptr) {
    return RunSnapshot(script, nullptr, options_.plan_scripts);
  }
  if (options_.wal != nullptr) {
    return RunLogged(script, nullptr, options_.plan_scripts);
  }
  if (options_.plan_scripts) return ApplyAllPlanned(script);
  return RunSerial(script, nullptr);
}

Status EvolutionEngine::RunSerial(const std::vector<Smo>& script,
                                  size_t* applied) {
  for (const Smo& smo : script) {
    CODS_RETURN_NOT_OK(
        ApplyTo(*catalog_, smo, observer_).WithContext(smo.ToString()));
    if (applied != nullptr) ++*applied;
  }
  return Status::OK();
}

Status EvolutionEngine::RunLogged(const std::vector<Smo>& script,
                                  TaskGraphStats* stats, bool planned) {
  if (script.empty()) return Status::OK();
  ScriptLog& wal = *options_.wal;
  // Log the whole script before touching the catalog: an I/O failure
  // here aborts with the catalog untouched, and the torn record tail is
  // exactly what recovery truncates away.
  CODS_RETURN_NOT_OK(wal.BeginScript());
  for (const Smo& smo : script) {
    CODS_RETURN_NOT_OK(wal.AppendStatement(smo.ToString()));
  }
  size_t applied = 0;
  Status run = planned ? RunPlanned(script, stats, &applied)
                       : RunSerial(script, &applied);
  // Commit (append + fsync) even when the script failed mid-way: the
  // catalog holds the prefix, and the commit's applied count makes
  // recovery reproduce exactly that prefix. A durability failure
  // outranks the script's own status — the caller must not treat the
  // result as acknowledged.
  CODS_RETURN_NOT_OK(
      wal.CommitScript(static_cast<uint32_t>(applied)));
  return run;
}

Status EvolutionEngine::ApplyAllPlanned(const std::vector<Smo>& script,
                                        TaskGraphStats* stats) {
  if (snapshots_ != nullptr) return RunSnapshot(script, stats, true);
  if (options_.wal != nullptr) return RunLogged(script, stats, true);
  return RunPlanned(script, stats, nullptr);
}

Status EvolutionEngine::ApplyCreateTable(TableStore& store, const Smo& smo) {
  CODS_ASSIGN_OR_RETURN(auto table, MakeEmptyTable(smo.out1, smo.schema));
  return store.AddTable(std::move(table));
}

Status EvolutionEngine::ApplyDecompose(TableStore& store, const Smo& smo,
                                       EvolutionObserver* observer) {
  CODS_ASSIGN_OR_RETURN(auto r, store.GetTable(smo.table));
  if (smo.out1 != smo.table && store.HasTable(smo.out1)) {
    return Status::AlreadyExists("table '" + smo.out1 + "' already exists");
  }
  if (smo.out2 != smo.table && store.HasTable(smo.out2)) {
    return Status::AlreadyExists("table '" + smo.out2 + "' already exists");
  }
  DecomposeOptions opts;
  opts.validate_fd = options_.validate_preconditions;
  opts.exec = &exec_ctx_;
  CODS_ASSIGN_OR_RETURN(
      DecomposeResult result,
      CodsDecompose(*r, smo.out1, smo.columns1, smo.key1, smo.out2,
                    smo.columns2, smo.key2, observer, opts));
  CODS_RETURN_NOT_OK(MaybeValidate(*result.s));
  CODS_RETURN_NOT_OK(MaybeValidate(*result.t));
  CODS_RETURN_NOT_OK(store.DropTable(smo.table));
  store.PutTable(std::move(result.s));
  store.PutTable(std::move(result.t));
  return Status::OK();
}

Status EvolutionEngine::ApplyMerge(TableStore& store, const Smo& smo,
                                   EvolutionObserver* observer) {
  CODS_ASSIGN_OR_RETURN(auto s, store.GetTable(smo.table));
  CODS_ASSIGN_OR_RETURN(auto t, store.GetTable(smo.table2));
  if (smo.out1 != smo.table && smo.out1 != smo.table2 &&
      store.HasTable(smo.out1)) {
    return Status::AlreadyExists("table '" + smo.out1 + "' already exists");
  }
  MergeOptions opts;
  opts.validate_key = options_.validate_preconditions;
  opts.exec = &exec_ctx_;
  CODS_ASSIGN_OR_RETURN(MergeResult result,
                        CodsMerge(*s, *t, smo.columns1, smo.key1, smo.out1,
                                  observer, opts));
  CODS_RETURN_NOT_OK(MaybeValidate(*result.table));
  CODS_RETURN_NOT_OK(store.DropTable(smo.table));
  CODS_RETURN_NOT_OK(store.DropTable(smo.table2));
  store.PutTable(std::move(result.table));
  return Status::OK();
}

Status EvolutionEngine::ApplyUnion(TableStore& store, const Smo& smo,
                                   EvolutionObserver* observer) {
  CODS_ASSIGN_OR_RETURN(auto a, store.GetTable(smo.table));
  CODS_ASSIGN_OR_RETURN(auto b, store.GetTable(smo.table2));
  if (smo.out1 != smo.table && smo.out1 != smo.table2 &&
      store.HasTable(smo.out1)) {
    return Status::AlreadyExists("table '" + smo.out1 + "' already exists");
  }
  CODS_ASSIGN_OR_RETURN(
      auto out, UnionTablesOp(*a, *b, smo.out1, observer, &exec_ctx_));
  CODS_RETURN_NOT_OK(MaybeValidate(*out));
  CODS_RETURN_NOT_OK(store.DropTable(smo.table));
  CODS_RETURN_NOT_OK(store.DropTable(smo.table2));
  store.PutTable(std::move(out));
  return Status::OK();
}

Status EvolutionEngine::ApplyPartition(TableStore& store, const Smo& smo,
                                       EvolutionObserver* observer) {
  CODS_ASSIGN_OR_RETURN(auto src, store.GetTable(smo.table));
  if (smo.out1 != smo.table && store.HasTable(smo.out1)) {
    return Status::AlreadyExists("table '" + smo.out1 + "' already exists");
  }
  if (smo.out2 != smo.table && store.HasTable(smo.out2)) {
    return Status::AlreadyExists("table '" + smo.out2 + "' already exists");
  }
  CODS_ASSIGN_OR_RETURN(
      PartitionResult result,
      PartitionTableOp(*src, smo.out1, smo.out2, smo.column, smo.compare_op,
                       smo.literal, observer, &exec_ctx_));
  CODS_RETURN_NOT_OK(MaybeValidate(*result.matching));
  CODS_RETURN_NOT_OK(MaybeValidate(*result.rest));
  CODS_RETURN_NOT_OK(store.DropTable(smo.table));
  store.PutTable(std::move(result.matching));
  store.PutTable(std::move(result.rest));
  return Status::OK();
}

Status EvolutionEngine::ApplyColumnOp(TableStore& store, const Smo& smo) {
  CODS_ASSIGN_OR_RETURN(auto src, store.GetTable(smo.table));
  std::shared_ptr<const Table> out;
  switch (smo.kind) {
    case SmoKind::kAddColumn: {
      CODS_ASSIGN_OR_RETURN(
          out, AddColumnOp(*src, smo.column_spec, smo.default_value));
      break;
    }
    case SmoKind::kDropColumn: {
      CODS_ASSIGN_OR_RETURN(out, DropColumnOp(*src, smo.column));
      break;
    }
    case SmoKind::kRenameColumn: {
      CODS_ASSIGN_OR_RETURN(out,
                            RenameColumnOp(*src, smo.column, smo.new_name));
      break;
    }
    default:
      return Status::InvalidArgument("not a column operator");
  }
  CODS_RETURN_NOT_OK(MaybeValidate(*out));
  store.PutTable(std::move(out));
  return Status::OK();
}

}  // namespace cods

#include "evolution/engine.h"

namespace cods {

EvolutionEngine::EvolutionEngine(Catalog* catalog,
                                 EvolutionObserver* observer,
                                 EngineOptions options)
    : catalog_(catalog),
      observer_(observer),
      options_(options),
      exec_ctx_(options.num_threads) {
  CODS_CHECK(catalog_ != nullptr);
}

Status EvolutionEngine::MaybeValidate(const Table& table) {
  if (!options_.validate_outputs) return Status::OK();
  return table.ValidateInvariants(&exec_ctx_)
      .WithContext("output table '" + table.name() + "'");
}

Status EvolutionEngine::Apply(const Smo& smo) {
  switch (smo.kind) {
    case SmoKind::kCreateTable:
      return ApplyCreateTable(smo);
    case SmoKind::kDropTable:
      return catalog_->DropTable(smo.table);
    case SmoKind::kRenameTable:
      return catalog_->RenameTable(smo.table, smo.new_name);
    case SmoKind::kCopyTable: {
      CODS_ASSIGN_OR_RETURN(auto src, catalog_->GetTable(smo.table));
      CODS_ASSIGN_OR_RETURN(auto copy,
                            CopyTableOp(*src, smo.out1, options_.deep_copy));
      return catalog_->AddTable(std::move(copy));
    }
    case SmoKind::kUnionTables:
      return ApplyUnion(smo);
    case SmoKind::kPartitionTable:
      return ApplyPartition(smo);
    case SmoKind::kDecomposeTable:
      return ApplyDecompose(smo);
    case SmoKind::kMergeTables:
      return ApplyMerge(smo);
    case SmoKind::kAddColumn:
    case SmoKind::kDropColumn:
    case SmoKind::kRenameColumn:
      return ApplyColumnOp(smo);
  }
  return Status::NotImplemented("unknown SMO kind");
}

Status EvolutionEngine::ApplyAll(const std::vector<Smo>& script) {
  for (const Smo& smo : script) {
    CODS_RETURN_NOT_OK(Apply(smo).WithContext(smo.ToString()));
  }
  return Status::OK();
}

Status EvolutionEngine::ApplyCreateTable(const Smo& smo) {
  CODS_ASSIGN_OR_RETURN(auto table, MakeEmptyTable(smo.out1, smo.schema));
  return catalog_->AddTable(std::move(table));
}

Status EvolutionEngine::ApplyDecompose(const Smo& smo) {
  CODS_ASSIGN_OR_RETURN(auto r, catalog_->GetTable(smo.table));
  if (smo.out1 != smo.table && catalog_->HasTable(smo.out1)) {
    return Status::AlreadyExists("table '" + smo.out1 + "' already exists");
  }
  if (smo.out2 != smo.table && catalog_->HasTable(smo.out2)) {
    return Status::AlreadyExists("table '" + smo.out2 + "' already exists");
  }
  DecomposeOptions opts;
  opts.validate_fd = options_.validate_preconditions;
  opts.exec = &exec_ctx_;
  CODS_ASSIGN_OR_RETURN(
      DecomposeResult result,
      CodsDecompose(*r, smo.out1, smo.columns1, smo.key1, smo.out2,
                    smo.columns2, smo.key2, observer_, opts));
  CODS_RETURN_NOT_OK(MaybeValidate(*result.s));
  CODS_RETURN_NOT_OK(MaybeValidate(*result.t));
  CODS_RETURN_NOT_OK(catalog_->DropTable(smo.table));
  catalog_->PutTable(std::move(result.s));
  catalog_->PutTable(std::move(result.t));
  return Status::OK();
}

Status EvolutionEngine::ApplyMerge(const Smo& smo) {
  CODS_ASSIGN_OR_RETURN(auto s, catalog_->GetTable(smo.table));
  CODS_ASSIGN_OR_RETURN(auto t, catalog_->GetTable(smo.table2));
  if (smo.out1 != smo.table && smo.out1 != smo.table2 &&
      catalog_->HasTable(smo.out1)) {
    return Status::AlreadyExists("table '" + smo.out1 + "' already exists");
  }
  MergeOptions opts;
  opts.validate_key = options_.validate_preconditions;
  opts.exec = &exec_ctx_;
  CODS_ASSIGN_OR_RETURN(MergeResult result,
                        CodsMerge(*s, *t, smo.columns1, smo.key1, smo.out1,
                                  observer_, opts));
  CODS_RETURN_NOT_OK(MaybeValidate(*result.table));
  CODS_RETURN_NOT_OK(catalog_->DropTable(smo.table));
  CODS_RETURN_NOT_OK(catalog_->DropTable(smo.table2));
  catalog_->PutTable(std::move(result.table));
  return Status::OK();
}

Status EvolutionEngine::ApplyUnion(const Smo& smo) {
  CODS_ASSIGN_OR_RETURN(auto a, catalog_->GetTable(smo.table));
  CODS_ASSIGN_OR_RETURN(auto b, catalog_->GetTable(smo.table2));
  if (smo.out1 != smo.table && smo.out1 != smo.table2 &&
      catalog_->HasTable(smo.out1)) {
    return Status::AlreadyExists("table '" + smo.out1 + "' already exists");
  }
  CODS_ASSIGN_OR_RETURN(
      auto out, UnionTablesOp(*a, *b, smo.out1, observer_, &exec_ctx_));
  CODS_RETURN_NOT_OK(MaybeValidate(*out));
  CODS_RETURN_NOT_OK(catalog_->DropTable(smo.table));
  CODS_RETURN_NOT_OK(catalog_->DropTable(smo.table2));
  catalog_->PutTable(std::move(out));
  return Status::OK();
}

Status EvolutionEngine::ApplyPartition(const Smo& smo) {
  CODS_ASSIGN_OR_RETURN(auto src, catalog_->GetTable(smo.table));
  if (smo.out1 != smo.table && catalog_->HasTable(smo.out1)) {
    return Status::AlreadyExists("table '" + smo.out1 + "' already exists");
  }
  if (smo.out2 != smo.table && catalog_->HasTable(smo.out2)) {
    return Status::AlreadyExists("table '" + smo.out2 + "' already exists");
  }
  CODS_ASSIGN_OR_RETURN(
      PartitionResult result,
      PartitionTableOp(*src, smo.out1, smo.out2, smo.column, smo.compare_op,
                       smo.literal, observer_, &exec_ctx_));
  CODS_RETURN_NOT_OK(MaybeValidate(*result.matching));
  CODS_RETURN_NOT_OK(MaybeValidate(*result.rest));
  CODS_RETURN_NOT_OK(catalog_->DropTable(smo.table));
  catalog_->PutTable(std::move(result.matching));
  catalog_->PutTable(std::move(result.rest));
  return Status::OK();
}

Status EvolutionEngine::ApplyColumnOp(const Smo& smo) {
  CODS_ASSIGN_OR_RETURN(auto src, catalog_->GetTable(smo.table));
  std::shared_ptr<const Table> out;
  switch (smo.kind) {
    case SmoKind::kAddColumn: {
      CODS_ASSIGN_OR_RETURN(
          out, AddColumnOp(*src, smo.column_spec, smo.default_value));
      break;
    }
    case SmoKind::kDropColumn: {
      CODS_ASSIGN_OR_RETURN(out, DropColumnOp(*src, smo.column));
      break;
    }
    case SmoKind::kRenameColumn: {
      CODS_ASSIGN_OR_RETURN(out,
                            RenameColumnOp(*src, smo.column, smo.new_name));
      break;
    }
    default:
      return Status::InvalidArgument("not a column operator");
  }
  CODS_RETURN_NOT_OK(MaybeValidate(*out));
  catalog_->PutTable(std::move(out));
  return Status::OK();
}

}  // namespace cods
